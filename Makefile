# Convenience targets for the s3wlan reproduction.

GO ?= go

.PHONY: all build vet test race chaos bench experiments analyses ablations clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Churn + fault-injection soak of the live controller (smoke check).
CHAOS_DUR ?= 5s
chaos:
	$(GO) run ./cmd/s3proto -chaos -chaos-dur $(CHAOS_DUR) -policy llf

# One benchmark per paper table/figure plus module micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation figures on the default campus.
experiments:
	$(GO) run ./cmd/s3sim -generate -all

# Regenerate the measurement study (Figs 2-8, Table I).
analyses:
	$(GO) run ./cmd/s3analyze -generate -all

ablations:
	$(GO) run ./cmd/s3sim -generate -ablation all

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
