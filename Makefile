# Convenience targets for the s3wlan reproduction.

GO ?= go

.PHONY: all build vet test race chaos federation-chaos overload-soak flight-smoke bench experiments analyses ablations clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Churn + fault-injection soak of the live controller (smoke check).
CHAOS_DUR ?= 5s
chaos:
	$(GO) run ./cmd/s3proto -chaos -chaos-dur $(CHAOS_DUR) -policy llf

# Cluster partition/kill/rejoin chaos: the 3-node kill -9 + oracle-replay
# suite under the race detector, then the failover/replication-lag bench.
FED_BENCH ?= BENCH_fed.json
federation-chaos:
	$(GO) test -race -count=1 -v -run 'TestFederationChaos|TestFederationTornTail|TestRelayPartitioned|TestClusterSettles' ./internal/federation
	FED_BENCH_JSON=$(abspath $(FED_BENCH)) $(GO) test -count=1 -run TestFedBenchJSON -v ./internal/federation

# Flash-crowd overload soak under -race: admission shedding, panic
# containment, breaker trip/probe, shed-conservation oracle, and the
# scripted-fault soak with its SLOs; then emit the soak's measured
# numbers to $(OVERLOAD_BENCH).
OVERLOAD_BENCH ?= BENCH_overload.json
overload-soak:
	$(GO) test -race -count=1 -v -run 'TestAdmission|TestShed|TestHelloTimeout|TestPanicContainment|TestOverloadSoak|TestBreaker|TestReportQueue' ./internal/protocol ./internal/federation
	$(GO) test -race -count=1 -v ./internal/faults ./internal/protocol/faultconn ./internal/journal/faultfile
	OVERLOAD_BENCH_JSON=$(abspath $(OVERLOAD_BENCH)) $(GO) test -count=1 -run TestOverloadBenchJSON -v ./internal/protocol

# Record a chaos soak into a flight ring, then decode and health-check it.
FLIGHT_DIR ?= /tmp/s3flight
flight-smoke:
	rm -rf $(FLIGHT_DIR)
	$(GO) run ./cmd/s3proto -chaos -chaos-dur $(CHAOS_DUR) -flight-dir $(FLIGHT_DIR) -flight-every 100ms
	$(GO) run ./cmd/s3diag -dir $(FLIGHT_DIR) -check
	$(GO) run ./cmd/s3diag -dir $(FLIGHT_DIR) -format summary -match protocol.

# One benchmark per paper table/figure plus module micro-benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation figures on the default campus.
experiments:
	$(GO) run ./cmd/s3sim -generate -all

# Regenerate the measurement study (Figs 2-8, Table I).
analyses:
	$(GO) run ./cmd/s3analyze -generate -all

ablations:
	$(GO) run ./cmd/s3sim -generate -ablation all

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
