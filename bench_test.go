// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artifact on a fixed-
// seed campus and reports the headline number via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces every result (see EXPERIMENTS.md for paper-vs-measured).
// Sweep benchmarks run on the internal/runner worker pool (all cores) and
// additionally report per-stage wall time (training, simulation, batch
// placement) as <stage>-ms/op, read from internal/obs snapshot deltas.
package s3wlan_test

import (
	"sync"
	"testing"

	"github.com/s3wlan/s3wlan/internal/analysis"
	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/experiments"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// benchCampus is the fixed-seed campus shared by the measurement-study
// benchmarks (Figs. 2–8, Table I).
func benchCampusConfig() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 300
	cfg.Buildings = 6
	cfg.APsPerBuilding = 4
	cfg.Days = 14
	return cfg
}

var (
	benchOnce     sync.Once
	benchTrace    *trace.Trace
	benchProfiles *apps.ProfileStore
	benchData     *experiments.Data
	benchErr      error
)

func benchSetup(b *testing.B) (*trace.Trace, *apps.ProfileStore, *experiments.Data) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := benchCampusConfig()
		benchTrace, _, benchErr = synth.Generate(cfg)
		if benchErr != nil {
			return
		}
		benchProfiles = apps.BuildProfiles(benchTrace.Flows, cfg.Epoch, apps.NewClassifier())
		benchData, benchErr = experiments.Prepare(cfg, 11)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchTrace, benchProfiles, benchData
}

// reportStages attaches per-stage wall time to a benchmark: the delta of
// each named obs histogram across the timed section, divided by b.N.
// before must be an obs.TakeSnapshot() taken right after b.ResetTimer().
func reportStages(b *testing.B, before obs.Snapshot, stages ...string) {
	b.Helper()
	after := obs.TakeSnapshot()
	for _, s := range stages {
		delta := after.Histograms[s].TotalMS - before.Histograms[s].TotalMS
		b.ReportMetric(delta/float64(b.N), s+"-ms/op")
	}
}

// BenchmarkFig2 regenerates the CDF of the normalized balance index under
// LLF (peak vs average hours).
func BenchmarkFig2(b *testing.B) {
	tr, _, _ := benchSetup(b)
	var unbalanced float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Fig2(tr, 0)
		if err != nil {
			b.Fatal(err)
		}
		unbalanced = res.UnbalancedAverage
	}
	b.ReportMetric(unbalanced*100, "%unbalanced-avg-hours")
}

// BenchmarkFig3 regenerates the variance-of-balance CDFs (churn removed).
func BenchmarkFig3(b *testing.B) {
	tr, _, _ := benchSetup(b)
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Fig3(tr, nil)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.FracSmall10Min
	}
	b.ReportMetric(frac*100, "%S<0.02@10min")
}

// BenchmarkFig4 regenerates the user-count vs traffic balance example day.
func BenchmarkFig4(b *testing.B) {
	tr, _, _ := benchSetup(b)
	var corr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Fig4(tr, 0, 1, 600)
		if err != nil {
			b.Fatal(err)
		}
		corr = res.Correlation
	}
	b.ReportMetric(corr, "pearson-r")
}

// BenchmarkFig5 regenerates the co-leaving fraction CDFs.
func BenchmarkFig5(b *testing.B) {
	tr, _, _ := benchSetup(b)
	var median float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Fig5(tr, nil)
		if err != nil {
			b.Fatal(err)
		}
		median = res.MedianFraction10Min
	}
	b.ReportMetric(median, "median-coleave-frac")
}

// BenchmarkFig6 regenerates the NMI-vs-history analysis.
func BenchmarkFig6(b *testing.B) {
	_, profiles, _ := benchSetup(b)
	var plateau float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Fig6(profiles, 10)
		if err != nil {
			b.Fatal(err)
		}
		plateau = float64(res.PlateauAge)
	}
	b.ReportMetric(plateau, "plateau-days")
}

// BenchmarkFig7 regenerates the gap-statistic curve (optimal k).
func BenchmarkFig7(b *testing.B) {
	_, profiles, _ := benchSetup(b)
	var k float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Fig7(profiles, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		k = float64(res.OptimalK)
	}
	b.ReportMetric(k, "optimal-k")
}

// BenchmarkFig8 regenerates the four cluster centroids.
func BenchmarkFig8(b *testing.B) {
	_, profiles, _ := benchSetup(b)
	var groups float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Fig8(profiles, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
		groups = float64(res.K)
	}
	b.ReportMetric(groups, "groups")
}

// BenchmarkTable1 regenerates the type co-leave probability matrix.
func BenchmarkTable1(b *testing.B) {
	tr, profiles, _ := benchSetup(b)
	fig8, err := analysis.Fig8(profiles, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	var diagDominant float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := analysis.Table1(tr, fig8, 300, 600)
		if err != nil {
			b.Fatal(err)
		}
		if res.DiagonalDominant {
			diagDominant = 1
		}
	}
	b.ReportMetric(diagDominant, "diag-dominant")
}

// BenchmarkFig10 regenerates the co-leave-interval sweep (best interval).
func BenchmarkFig10(b *testing.B) {
	_, _, data := benchSetup(b)
	var best float64
	b.ResetTimer()
	before := obs.TakeSnapshot()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(data, []int64{60, 300, 600}, []float64{0.3})
		if err != nil {
			b.Fatal(err)
		}
		best = float64(res.BestInterval) / 60
	}
	reportStages(b, before, "society.train", "wlan.simulate")
	b.ReportMetric(best, "best-interval-min")
}

// BenchmarkFig11 regenerates the history-length sweep (plateau).
func BenchmarkFig11(b *testing.B) {
	_, _, data := benchSetup(b)
	var plateau float64
	b.ResetTimer()
	before := obs.TakeSnapshot()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(data, []int{1, 5, 9, 11}, []float64{0.3})
		if err != nil {
			b.Fatal(err)
		}
		plateau = float64(res.PlateauDays)
	}
	reportStages(b, before, "society.train", "wlan.simulate")
	b.ReportMetric(plateau, "plateau-days")
}

// BenchmarkFig12 regenerates the headline S³-vs-LLF comparison.
func BenchmarkFig12(b *testing.B) {
	_, _, data := benchSetup(b)
	var gain, peakGain, errBar float64
	b.ResetTimer()
	before := obs.TakeSnapshot()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(data)
		if err != nil {
			b.Fatal(err)
		}
		gain = res.GainPercent
		peakGain = res.LeavePeakGainPercent
		errBar = res.ErrorBarReductionPercent
	}
	reportStages(b, before, "society.train", "wlan.simulate", "core.batch.place")
	b.ReportMetric(gain, "%gain")
	b.ReportMetric(peakGain, "%peak-gain")
	b.ReportMetric(errBar, "%errbar-reduction")
}

// BenchmarkAblationStaleness regenerates the load-report staleness study.
func BenchmarkAblationStaleness(b *testing.B) {
	_, _, data := benchSetup(b)
	var staleGain float64
	b.ResetTimer()
	before := obs.TakeSnapshot()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationStaleness(data, []int64{0, 300})
		if err != nil {
			b.Fatal(err)
		}
		staleGain = (res.S3Means[1] - res.LLFMeans[1]) / res.LLFMeans[1] * 100
	}
	reportStages(b, before, "wlan.simulate")
	b.ReportMetric(staleGain, "%gain@300s")
}

// BenchmarkAblationBaselines regenerates the baseline panel.
func BenchmarkAblationBaselines(b *testing.B) {
	_, _, data := benchSetup(b)
	var s3 float64
	b.ResetTimer()
	before := obs.TakeSnapshot()
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationBaselines(data)
		if err != nil {
			b.Fatal(err)
		}
		s3 = res.S3Mean
	}
	reportStages(b, before, "wlan.simulate")
	b.ReportMetric(s3, "s3-balance")
}
