// Command s3analyze reproduces the paper's measurement study (Section III)
// on a trace: Figs. 2–8 and Table I.
//
// Usage:
//
//	s3analyze -trace campus.jsonl -all
//	s3analyze -trace campus.jsonl -fig 5
//	s3analyze -generate -fig 7          # generate a default campus first
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/s3wlan/s3wlan/internal/analysis"
	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3analyze:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("s3analyze", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "input trace (JSON-lines); empty with -generate")
		generate  = fs.Bool("generate", false, "generate the default synthetic campus instead of reading a trace")
		seed      = fs.Int64("seed", 1, "seed for -generate and clustering")
		fig       = fs.Int("fig", 0, "figure to reproduce (2-8); 0 with -all")
		table     = fs.Int("table", 0, "table to reproduce (1)")
		all       = fs.Bool("all", false, "run every analysis")
		epoch     = fs.Int64("epoch", 0, "trace epoch (Unix seconds of day 0)")
		csvDir    = fs.String("csvdir", "", "also write each result as CSV into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *fig == 0 && *table == 0 {
		return errors.New("nothing to do: pass -all, -fig N or -table 1")
	}

	tr, err := loadOrGenerate(*tracePath, *generate, *seed)
	if err != nil {
		return err
	}
	profiles := apps.BuildProfiles(tr.Flows, *epoch, apps.NewClassifier())

	runFig := func(n int) bool { return *all || *fig == n }

	writeCSV := func(name string, result interface{ WriteCSV(io.Writer) error }) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return result.WriteCSV(f)
	}

	if runFig(2) {
		res, err := analysis.Fig2(tr, *epoch)
		if err != nil {
			return fmt.Errorf("fig 2: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig2", res); err != nil {
			return fmt.Errorf("fig 2 csv: %w", err)
		}
	}
	if runFig(3) {
		res, err := analysis.Fig3(tr, nil)
		if err != nil {
			return fmt.Errorf("fig 3: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig3", res); err != nil {
			return fmt.Errorf("fig 3 csv: %w", err)
		}
	}
	if runFig(4) {
		res, err := analysis.Fig4(tr, *epoch, 1, 600)
		if err != nil {
			return fmt.Errorf("fig 4: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig4", res); err != nil {
			return fmt.Errorf("fig 4 csv: %w", err)
		}
	}
	if runFig(5) {
		res, err := analysis.Fig5(tr, nil)
		if err != nil {
			return fmt.Errorf("fig 5: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig5", res); err != nil {
			return fmt.Errorf("fig 5 csv: %w", err)
		}
	}
	if runFig(6) {
		res, err := analysis.Fig6(profiles, 30)
		if err != nil {
			return fmt.Errorf("fig 6: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig6", res); err != nil {
			return fmt.Errorf("fig 6 csv: %w", err)
		}
	}
	if runFig(7) {
		res, err := analysis.Fig7(profiles, 10, *seed)
		if err != nil {
			return fmt.Errorf("fig 7: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig7", res); err != nil {
			return fmt.Errorf("fig 7 csv: %w", err)
		}
	}
	needFig8 := runFig(8) || *all || *table == 1
	var fig8 *analysis.Fig8Result
	if needFig8 {
		fig8, err = analysis.Fig8(profiles, 4, *seed)
		if err != nil {
			return fmt.Errorf("fig 8: %w", err)
		}
	}
	if runFig(8) {
		fmt.Fprintln(out, fig8.Render())
		if err := writeCSV("fig8", fig8); err != nil {
			return fmt.Errorf("fig 8 csv: %w", err)
		}
	}
	if *all || *table == 1 {
		res, err := analysis.Table1(tr, fig8, 300, 600)
		if err != nil {
			return fmt.Errorf("table 1: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("table1", res); err != nil {
			return fmt.Errorf("table 1 csv: %w", err)
		}
	}
	return nil
}

func loadOrGenerate(path string, generate bool, seed int64) (*trace.Trace, error) {
	if generate {
		cfg := synth.DefaultConfig()
		cfg.Seed = seed
		tr, _, err := synth.Generate(cfg)
		return tr, err
	}
	if path == "" {
		return nil, errors.New("pass -trace <file> or -generate")
	}
	return trace.LoadFile(path)
}
