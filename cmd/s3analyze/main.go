// Command s3analyze reproduces the paper's measurement study (Section III)
// on a trace: Figs. 2–8 and Table I. With -all the independent figures
// fan out over a worker pool (-workers); each figure renders into its own
// buffer and the buffers print in figure order, so parallel output is
// byte-identical to a serial run.
//
// Usage:
//
//	s3analyze -trace campus.jsonl -all
//	s3analyze -trace campus.jsonl -fig 5
//	s3analyze -generate -fig 7               # generate a default campus first
//	s3analyze -generate -all -workers 8 -progress -obs obs.json
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/s3wlan/s3wlan/internal/analysis"
	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/runner"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3analyze:", err)
		os.Exit(1)
	}
}

// writeObs dumps the process's observability registry as JSON to path
// ("-" writes to w, the command's stdout).
func writeObs(path string, w io.Writer) error {
	if path == "-" {
		return obs.WriteJSON(w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("s3analyze", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "input trace (JSON-lines); empty with -generate")
		generate  = fs.Bool("generate", false, "generate the default synthetic campus instead of reading a trace")
		seed      = fs.Int64("seed", 1, "seed for -generate and clustering")
		fig       = fs.Int("fig", 0, "figure to reproduce (2-8); 0 with -all")
		table     = fs.Int("table", 0, "table to reproduce (1)")
		all       = fs.Bool("all", false, "run every analysis")
		epoch     = fs.Int64("epoch", 0, "trace epoch (Unix seconds of day 0)")
		csvDir    = fs.String("csvdir", "", "also write each result as CSV into this directory")

		workers    = fs.Int("workers", 0, "parallel figure workers (0 = GOMAXPROCS; 1 = serial)")
		progress   = fs.Bool("progress", false, "report per-figure progress to stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		obsPath    = fs.String("obs", "", `write observability counters/timers as JSON to this file ("-" = stdout)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *fig == 0 && *table == 0 {
		return errors.New("nothing to do: pass -all, -fig N or -table 1")
	}

	stopProfiling, err := obs.StartProfiling(obs.ProfileConfig{
		CPUFile: *cpuprofile, MemFile: *memprofile, HTTPAddr: *pprofAddr,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiling(); perr != nil && err == nil {
			err = perr
		}
		if *obsPath != "" {
			if oerr := writeObs(*obsPath, out); oerr != nil && err == nil {
				err = oerr
			}
		}
	}()

	tr, err := loadOrGenerate(*tracePath, *generate, *seed)
	if err != nil {
		return err
	}
	profiles := apps.BuildProfiles(tr.Flows, *epoch, apps.NewClassifier())

	runFig := func(n int) bool { return *all || *fig == n }

	writeCSV := func(name string, result interface{ WriteCSV(io.Writer) error }) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return result.WriteCSV(f)
	}

	// Each figure job renders into its own buffer; the buffers print in
	// submission order after the pool drains, so output order (and every
	// byte of it) matches a serial run.
	type figJob struct {
		name string
		run  func(w io.Writer) error
	}
	var jobs []figJob
	addFig := func(name string, f func(w io.Writer) error) {
		jobs = append(jobs, figJob{name: name, run: f})
	}

	if runFig(2) {
		addFig("fig2", func(w io.Writer) error {
			res, err := analysis.Fig2(tr, *epoch)
			if err != nil {
				return fmt.Errorf("fig 2: %w", err)
			}
			fmt.Fprintln(w, res.Render())
			if err := writeCSV("fig2", res); err != nil {
				return fmt.Errorf("fig 2 csv: %w", err)
			}
			return nil
		})
	}
	if runFig(3) {
		addFig("fig3", func(w io.Writer) error {
			res, err := analysis.Fig3(tr, nil)
			if err != nil {
				return fmt.Errorf("fig 3: %w", err)
			}
			fmt.Fprintln(w, res.Render())
			if err := writeCSV("fig3", res); err != nil {
				return fmt.Errorf("fig 3 csv: %w", err)
			}
			return nil
		})
	}
	if runFig(4) {
		addFig("fig4", func(w io.Writer) error {
			res, err := analysis.Fig4(tr, *epoch, 1, 600)
			if err != nil {
				return fmt.Errorf("fig 4: %w", err)
			}
			fmt.Fprintln(w, res.Render())
			if err := writeCSV("fig4", res); err != nil {
				return fmt.Errorf("fig 4 csv: %w", err)
			}
			return nil
		})
	}
	if runFig(5) {
		addFig("fig5", func(w io.Writer) error {
			res, err := analysis.Fig5(tr, nil)
			if err != nil {
				return fmt.Errorf("fig 5: %w", err)
			}
			fmt.Fprintln(w, res.Render())
			if err := writeCSV("fig5", res); err != nil {
				return fmt.Errorf("fig 5 csv: %w", err)
			}
			return nil
		})
	}
	if runFig(6) {
		addFig("fig6", func(w io.Writer) error {
			res, err := analysis.Fig6(profiles, 30)
			if err != nil {
				return fmt.Errorf("fig 6: %w", err)
			}
			fmt.Fprintln(w, res.Render())
			if err := writeCSV("fig6", res); err != nil {
				return fmt.Errorf("fig 6 csv: %w", err)
			}
			return nil
		})
	}
	if runFig(7) {
		addFig("fig7", func(w io.Writer) error {
			res, err := analysis.Fig7(profiles, 10, *seed)
			if err != nil {
				return fmt.Errorf("fig 7: %w", err)
			}
			fmt.Fprintln(w, res.Render())
			if err := writeCSV("fig7", res); err != nil {
				return fmt.Errorf("fig 7 csv: %w", err)
			}
			return nil
		})
	}
	// Table I consumes the Fig 8 clustering, so the two stay one job.
	if runFig(8) || *table == 1 {
		showFig8 := runFig(8)
		showTable := *all || *table == 1
		addFig("fig8+table1", func(w io.Writer) error {
			fig8, err := analysis.Fig8(profiles, 4, *seed)
			if err != nil {
				return fmt.Errorf("fig 8: %w", err)
			}
			if showFig8 {
				fmt.Fprintln(w, fig8.Render())
				if err := writeCSV("fig8", fig8); err != nil {
					return fmt.Errorf("fig 8 csv: %w", err)
				}
			}
			if showTable {
				res, err := analysis.Table1(tr, fig8, 300, 600)
				if err != nil {
					return fmt.Errorf("table 1: %w", err)
				}
				fmt.Fprintln(w, res.Render())
				if err := writeCSV("table1", res); err != nil {
					return fmt.Errorf("table 1 csv: %w", err)
				}
			}
			return nil
		})
	}

	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	rcfg := runner.Config{Workers: *workers, Progress: progressW, Label: "analyze", Seed: *seed}
	outputs, _, err := runner.Map(rcfg, jobs, func(_ *runner.Ctx, j figJob) ([]byte, error) {
		var buf bytes.Buffer
		if err := j.run(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		return err
	}
	for _, b := range outputs {
		if _, err := out.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func loadOrGenerate(path string, generate bool, seed int64) (*trace.Trace, error) {
	if generate {
		cfg := synth.DefaultConfig()
		cfg.Seed = seed
		tr, _, err := synth.Generate(cfg)
		return tr, err
	}
	if path == "" {
		return nil, errors.New("pass -trace <file> or -generate")
	}
	return trace.LoadFile(path)
}
