package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func writeSmallTrace(t *testing.T) string {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 120
	cfg.Buildings = 3
	cfg.APsPerBuilding = 3
	cfg.Days = 8
	tr, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAnalyses(t *testing.T) {
	path := writeSmallTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-all"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig 2", "Fig 3", "Fig 4", "Fig 5",
		"Fig 6", "Fig 7", "Fig 8", "Table I"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSingleFigure(t *testing.T) {
	path := writeSmallTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-fig", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 5") {
		t.Error("missing Fig 5")
	}
	if strings.Contains(buf.String(), "Fig 2") {
		t.Error("unexpected Fig 2")
	}
}

func TestRunNothingToDo(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no action should error")
	}
}

func TestRunMissingTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "2"}, &buf); err == nil {
		t.Error("missing trace should error")
	}
	if err := run([]string{"-trace", "/nonexistent.jsonl", "-fig", "2"}, &buf); err == nil {
		t.Error("unreadable trace should error")
	}
}
