// Command s3diag decodes a flight-recorder ring (internal/obs/flight,
// written by s3proto/s3sim -flight-dir) into per-metric time series, so
// the minutes before an incident — a kill -9 in a chaos soak, a stall
// in a long -drive run — can be reconstructed after the fact.
//
// Usage:
//
//	s3diag -dir /var/lib/s3/flight                      # per-metric summary
//	s3diag -dir flight -format csv > series.csv         # long-form time series
//	s3diag -dir flight -format json                     # decoded samples as JSON
//	s3diag -dir flight -format rates -window 10s        # windowed counter rates
//	s3diag -dir flight -match journal.                  # only journal.* columns
//	s3diag -dir flight -check                           # CI: decode + monotone counters
//
// Columns are the registry's flattened series: counters and gauges by
// name; a timer or histogram x contributes x#count, x#ns, x#max and
// x#b<i> bucket columns (decade buckets from 10µs up; see
// docs/OBSERVABILITY.md). -check exits non-zero if the ring fails to
// decode, holds fewer than two samples, or any cumulative column
// decreases outside a full-snapshot boundary (a process restart).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/s3wlan/s3wlan/internal/obs/flight"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3diag:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("s3diag", flag.ContinueOnError)
	var (
		dir    = fs.String("dir", "", "flight-recorder ring directory")
		format = fs.String("format", "summary", "output: summary, csv, json or rates")
		match  = fs.String("match", "", "only columns containing this substring")
		window = fs.Duration("window", 10*time.Second, "rates: bucketing window")
		check  = fs.Bool("check", false, "verify the ring: decodable, ≥2 samples, cumulative columns monotone (CI)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		if fs.NArg() == 1 {
			*dir = fs.Arg(0)
		} else {
			return fmt.Errorf("pass -dir <flight ring directory>")
		}
	}

	ring, err := flight.Decode(*dir)
	if err != nil {
		return err
	}
	if len(ring.Samples) == 0 {
		return fmt.Errorf("%s: no decodable flight samples", *dir)
	}
	cols := ring.Columns()
	if *match != "" {
		kept := cols[:0]
		for _, c := range cols {
			if strings.Contains(c, *match) {
				kept = append(kept, c)
			}
		}
		cols = kept
	}

	if *check {
		return runCheck(ring, out)
	}
	switch *format {
	case "summary":
		return writeSummary(ring, cols, out)
	case "csv":
		return writeCSV(ring, cols, out)
	case "json":
		return writeJSON(ring, cols, out)
	case "rates":
		return writeRates(ring, cols, *window, out)
	}
	return fmt.Errorf("unknown format %q (want summary, csv, json or rates)", *format)
}

// cumulative reports whether a column only moves up (counter-like), per
// the kinds recorded in the ring's full snapshots.
func cumulative(ring *flight.Ring, col string) bool { return ring.Kinds[col] == "c" }

// runCheck is the CI smoke contract: the ring decoded (we got here),
// carries at least two samples, and no cumulative column ever decreases
// except across a full-snapshot boundary (process restart).
func runCheck(ring *flight.Ring, out io.Writer) error {
	if len(ring.Samples) < 2 {
		return fmt.Errorf("check: only %d sample(s); want at least 2", len(ring.Samples))
	}
	violations := 0
	for _, col := range ring.Columns() {
		if !cumulative(ring, col) {
			continue
		}
		prev := int64(0)
		for i, s := range ring.Samples {
			v, ok := s.V[col]
			if !ok {
				continue
			}
			if v < prev && !s.Full {
				fmt.Fprintf(out, "check: %s decreased %d -> %d at sample %d (%s)\n",
					col, prev, v, i, s.T.Format(time.RFC3339))
				violations++
			}
			prev = v
		}
	}
	if violations > 0 {
		return fmt.Errorf("check: %d monotonicity violation(s)", violations)
	}
	span := ring.Samples[len(ring.Samples)-1].T.Sub(ring.Samples[0].T)
	fmt.Fprintf(out, "check ok: %d samples over %v, %d columns, %d segments (corrupt %d, torn %d)\n",
		len(ring.Samples), span.Round(time.Millisecond), len(ring.Columns()),
		ring.Stats.Segments, ring.Stats.CorruptFrames, ring.Stats.TornTails)
	return nil
}

// writeSummary prints one line per column: kind, sample count, min,
// max, last — and for cumulative columns the overall rate per second.
func writeSummary(ring *flight.Ring, cols []string, out io.Writer) error {
	first, last := ring.Samples[0], ring.Samples[len(ring.Samples)-1]
	span := last.T.Sub(first.T)
	fmt.Fprintf(out, "flight ring: %d samples, %v (%s .. %s), %d segments (corrupt %d, torn %d)\n\n",
		len(ring.Samples), span.Round(time.Millisecond),
		first.T.Format(time.RFC3339), last.T.Format(time.RFC3339),
		ring.Stats.Segments, ring.Stats.CorruptFrames, ring.Stats.TornTails)
	fmt.Fprintf(out, "%-44s %-5s %8s %12s %12s %12s %12s\n",
		"column", "kind", "samples", "min", "max", "last", "rate/s")
	for _, col := range cols {
		var n int
		var minV, maxV, lastV, firstV int64
		seen := false
		for _, s := range ring.Samples {
			v, ok := s.V[col]
			if !ok {
				continue
			}
			n++
			if !seen {
				minV, maxV, firstV, seen = v, v, v, true
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			lastV = v
		}
		if !seen {
			continue
		}
		kind := "gauge"
		rate := ""
		if cumulative(ring, col) {
			kind = "cum"
			if span > 0 {
				rate = fmt.Sprintf("%.2f", float64(lastV-firstV)/span.Seconds())
			}
		}
		fmt.Fprintf(out, "%-44s %-5s %8d %12d %12d %12d %12s\n",
			col, kind, n, minV, maxV, lastV, rate)
	}
	return nil
}

// writeCSV emits the long-form series: unix_ms,column,value.
func writeCSV(ring *flight.Ring, cols []string, out io.Writer) error {
	keep := make(map[string]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	if _, err := fmt.Fprintln(out, "unix_ms,column,value"); err != nil {
		return err
	}
	for _, s := range ring.Samples {
		names := make([]string, 0, len(s.V))
		for name := range s.V {
			if keep[name] {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := fmt.Fprintf(out, "%d,%s,%d\n", s.T.UnixMilli(), name, s.V[name]); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonSample is the -format json shape of one sample.
type jsonSample struct {
	UnixMS int64            `json:"unix_ms"`
	Full   bool             `json:"full,omitempty"`
	Values map[string]int64 `json:"values"`
}

// writeJSON emits the decoded samples (filtered to cols) as a JSON
// array.
func writeJSON(ring *flight.Ring, cols []string, out io.Writer) error {
	keep := make(map[string]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	samples := make([]jsonSample, 0, len(ring.Samples))
	for _, s := range ring.Samples {
		js := jsonSample{UnixMS: s.T.UnixMilli(), Full: s.Full, Values: make(map[string]int64)}
		for name, v := range s.V {
			if keep[name] {
				js.Values[name] = v
			}
		}
		samples = append(samples, js)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(samples)
}

// writeRates buckets cumulative columns into fixed windows and emits
// window_start_ms,column,rate_per_s — the post-hoc equivalent of a
// Prometheus rate() query.
func writeRates(ring *flight.Ring, cols []string, window time.Duration, out io.Writer) error {
	if window <= 0 {
		return fmt.Errorf("rates: -window must be positive")
	}
	if _, err := fmt.Fprintln(out, "window_start_ms,column,rate_per_s"); err != nil {
		return err
	}
	start := ring.Samples[0].T
	for _, col := range cols {
		if !cumulative(ring, col) {
			continue
		}
		// Walk samples window by window; within each window the rate is
		// (last-first)/elapsed between the window's boundary samples.
		winStart := start
		var haveBase bool
		var base int64
		var lastV int64
		var lastT time.Time
		flush := func(end time.Time) error {
			if !haveBase || !lastT.After(winStart) {
				return nil
			}
			elapsed := lastT.Sub(winStart).Seconds()
			if elapsed <= 0 {
				return nil
			}
			_, err := fmt.Fprintf(out, "%d,%s,%.3f\n",
				winStart.UnixMilli(), col, float64(lastV-base)/elapsed)
			return err
		}
		for _, s := range ring.Samples {
			v, ok := s.V[col]
			if !ok {
				continue
			}
			for s.T.Sub(winStart) >= window {
				if err := flush(winStart.Add(window)); err != nil {
					return err
				}
				winStart = winStart.Add(window)
				base, haveBase = lastV, true
			}
			if !haveBase {
				base, haveBase = v, true
			}
			lastV, lastT = v, s.T
		}
		if err := flush(lastT); err != nil {
			return err
		}
	}
	return nil
}
