package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/obs/flight"
)

// writeRing hand-crafts a ring with controlled timestamps (1s apart): a
// counter climbing 0→3 and a gauge descending 10→7, five samples.
func writeRing(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	frames := [][]byte{
		[]byte(`{"t":1000,"full":true,"v":{"diag.count":0,"diag.gauge":10},"k":{"diag.count":"c","diag.gauge":"g"}}`),
		[]byte(`{"t":2000,"v":{"diag.count":1,"diag.gauge":-1}}`),
		[]byte(`{"t":3000,"v":{"diag.count":1,"diag.gauge":-1}}`),
		[]byte(`{"t":4000,"v":{"diag.count":1,"diag.gauge":-1}}`),
		[]byte(`{"t":5000,"v":{}}`),
	}
	var raw []byte
	for _, f := range frames {
		raw = append(raw, journal.EncodeFrame(f)...)
	}
	if err := os.WriteFile(filepath.Join(dir, "flight-0000000001.fr"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// recordRing produces a ring through the real recorder (timestamps are
// wall-clock, so only decode-level properties are asserted on it).
func recordRing(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	reg := &obs.Registry{}
	c := reg.GetCounter("diag.count", "test counter")
	rec, err := flight.Start(flight.Options{Dir: dir, Registry: reg, Every: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		c.Inc()
		rec.Sample()
	}
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSummary(t *testing.T) {
	dir := writeRing(t)
	var buf bytes.Buffer
	if err := run([]string{"-dir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"flight ring:", "diag.count", "diag.gauge", "cum", "gauge"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSVAndMatch(t *testing.T) {
	dir := writeRing(t)
	var buf bytes.Buffer
	if err := run([]string{"-dir", dir, "-format", "csv", "-match", "diag.count"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "unix_ms,column,value" {
		t.Fatalf("csv header = %q", lines[0])
	}
	// 5 samples (initial full + 3 + stop), one matching column each.
	if len(lines) != 6 {
		t.Fatalf("csv rows = %d, want 6:\n%s", len(lines), buf.String())
	}
	if !strings.HasSuffix(lines[len(lines)-1], ",diag.count,3") {
		t.Errorf("last row = %q, want final value 3", lines[len(lines)-1])
	}
	for _, ln := range lines[1:] {
		if strings.Contains(ln, "diag.gauge") {
			t.Errorf("-match leaked other column: %q", ln)
		}
	}
}

func TestJSON(t *testing.T) {
	dir := writeRing(t)
	var buf bytes.Buffer
	if err := run([]string{"-dir", dir, "-format", "json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var samples []struct {
		UnixMS int64            `json:"unix_ms"`
		Values map[string]int64 `json:"values"`
	}
	if err := json.Unmarshal(buf.Bytes(), &samples); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Values["diag.count"] != 3 || last.Values["diag.gauge"] != 7 {
		t.Errorf("final values = %v", last.Values)
	}
}

func TestRates(t *testing.T) {
	dir := writeRing(t)
	var buf bytes.Buffer
	if err := run([]string{"-dir", dir, "-format", "rates", "-window", "2s"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "window_start_ms,column,rate_per_s" {
		t.Fatalf("rates header = %q", lines[0])
	}
	found := false
	for _, ln := range lines[1:] {
		if strings.Contains(ln, "diag.gauge") {
			t.Errorf("rates emitted for a gauge: %q", ln)
		}
		if strings.Contains(ln, "diag.count") {
			found = true
		}
	}
	if !found {
		t.Errorf("no rate rows for diag.count:\n%s", buf.String())
	}
}

func TestCheckOK(t *testing.T) {
	dir := recordRing(t)
	var buf bytes.Buffer
	if err := run([]string{"-dir", dir, "-check"}, &buf); err != nil {
		t.Fatalf("check on a clean ring: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "check ok:") {
		t.Errorf("check output = %q", buf.String())
	}
}

// TestCheckCatchesRegression hand-crafts a ring whose cumulative column
// decreases without a full-snapshot boundary; -check must fail.
func TestCheckCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	frames := [][]byte{
		[]byte(`{"t":1000,"full":true,"v":{"bad.count":10},"k":{"bad.count":"c"}}`),
		[]byte(`{"t":2000,"v":{"bad.count":-5}}`),
	}
	var raw []byte
	for _, f := range frames {
		raw = append(raw, journal.EncodeFrame(f)...)
	}
	if err := os.WriteFile(filepath.Join(dir, "flight-0000000001.fr"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-dir", dir, "-check"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "monotonicity") {
		t.Fatalf("check err = %v, want monotonicity violation\n%s", err, buf.String())
	}
}

func TestEmptyRingFails(t *testing.T) {
	if err := run([]string{"-dir", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty ring must be an error")
	}
}

func TestPositionalDir(t *testing.T) {
	dir := recordRing(t)
	var buf bytes.Buffer
	if err := run([]string{dir}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "diag.count") {
		t.Errorf("positional dir output:\n%s", buf.String())
	}
}
