// Command s3gen generates a synthetic enterprise-WLAN campus trace with
// the social structure of the S³ study and writes it as JSON-lines.
//
// Usage:
//
//	s3gen -out campus.jsonl [-seed 1] [-users 600] [-buildings 10]
//	      [-aps 4] [-days 31]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3gen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("s3gen", flag.ContinueOnError)
	var (
		outPath   = fs.String("out", "campus.jsonl", "output trace path (JSON-lines)")
		seed      = fs.Int64("seed", 1, "generator seed")
		users     = fs.Int("users", 600, "population size")
		buildings = fs.Int("buildings", 10, "number of buildings (one controller each)")
		aps       = fs.Int("aps", 4, "APs per building")
		days      = fs.Int("days", 31, "trace length in days")
		capacity  = fs.Float64("capacity", 12e6, "AP capacity, bytes/second")
		preset    = fs.String("preset", "campus", "scenario preset: campus, office or conference")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := synth.Preset(*preset)
	if err != nil {
		return err
	}
	// Explicit flags override the preset where the user set them.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "users":
			cfg.Users = *users
		case "buildings":
			cfg.Buildings = *buildings
		case "aps":
			cfg.APsPerBuilding = *aps
		case "capacity":
			cfg.APCapacityBps = *capacity
		}
	})
	cfg.Seed = *seed
	cfg.Days = *days

	tr, truth, err := synth.Generate(cfg)
	if err != nil {
		return err
	}
	if err := trace.SaveFile(*outPath, tr); err != nil {
		return err
	}
	start, end := tr.TimeRange()
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	fmt.Fprintf(out, "  users:       %d (%d groups)\n", len(tr.Users()), len(truth.Groups))
	fmt.Fprintf(out, "  topology:    %d buildings, %d APs\n",
		*buildings, len(tr.Topology.APs))
	fmt.Fprintf(out, "  sessions:    %d\n", len(tr.Sessions))
	fmt.Fprintf(out, "  flows:       %d\n", len(tr.Flows))
	fmt.Fprintf(out, "  time range:  %s .. %s\n",
		trace.FormatTime(start), trace.FormatTime(end))
	return nil
}
