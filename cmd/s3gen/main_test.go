package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func TestRunGeneratesTrace(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "campus.jsonl")
	var buf bytes.Buffer
	err := run([]string{
		"-out", out, "-users", "40", "-buildings", "2", "-aps", "2",
		"-days", "4", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sessions:") {
		t.Errorf("summary missing: %s", buf.String())
	}
	tr, err := trace.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
	if len(tr.Topology.APs) != 4 {
		t.Errorf("APs = %d, want 4", len(tr.Topology.APs))
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-users", "0"}, &buf); err == nil {
		t.Error("invalid config should error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("unknown flag should error")
	}
}
