// Command s3model trains, persists and inspects sociality models — the
// operator-facing lifecycle around the learning pipeline.
//
// Usage:
//
//	s3model -train -trace campus.jsonl -out model.json      # batch train
//	s3model -train -generate -out model.json                # from synthetic campus
//	s3model -inspect model.json                             # structure report
//	s3model -train -generate -cpuprofile cpu.prof -obs -    # profile training
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/s3wlan/s3wlan/internal/analysis"
	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3model:", err)
		os.Exit(1)
	}
}

// writeDOT renders the model's θ-graph to a Graphviz file.
func writeDOT(path string, model *society.Model, threshold float64) (err error) {
	g := socialgraph.New()
	for p := range model.PairProb {
		if theta := model.Index(p.A, p.B); theta > threshold {
			g.AddEdge(p.A, p.B, theta)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return g.WriteDOT(f, "s3")
}

// writeObs dumps the process's observability registry as JSON to path
// ("-" writes to w, the command's stdout).
func writeObs(path string, w io.Writer) error {
	if path == "-" {
		return obs.WriteJSON(w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("s3model", flag.ContinueOnError)
	var (
		train     = fs.Bool("train", false, "train a model")
		inspect   = fs.String("inspect", "", "inspect a saved model")
		tracePath = fs.String("trace", "", "training trace (JSON-lines)")
		generate  = fs.Bool("generate", false, "train on the default synthetic campus")
		outPath   = fs.String("out", "model.json", "output model path for -train")
		seed      = fs.Int64("seed", 1, "seed for -generate and clustering")
		epoch     = fs.Int64("epoch", 0, "trace epoch (Unix seconds of day 0)")
		window    = fs.Int64("window", 300, "co-leave extraction window, seconds")
		alpha     = fs.Float64("alpha", 0.3, "type-prior coefficient α")
		history   = fs.Int("history", 15, "training history in days (0 = all)")
		threshold = fs.Float64("threshold", 0.3, "close-relationship θ cut for -inspect")
		dotPath   = fs.String("dot", "", "also write the θ-graph as Graphviz DOT (with -inspect)")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		obsPath    = fs.String("obs", "", `write observability counters/timers as JSON to this file ("-" = stdout)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProfiling, err := obs.StartProfiling(obs.ProfileConfig{
		CPUFile: *cpuprofile, MemFile: *memprofile, HTTPAddr: *pprofAddr,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiling(); perr != nil && err == nil {
			err = perr
		}
		if *obsPath != "" {
			if oerr := writeObs(*obsPath, out); oerr != nil && err == nil {
				err = oerr
			}
		}
	}()

	switch {
	case *train:
		var tr *trace.Trace
		var err error
		switch {
		case *generate:
			cfg := synth.DefaultConfig()
			cfg.Seed = *seed
			tr, _, err = synth.Generate(cfg)
		case *tracePath != "":
			tr, err = trace.LoadFile(*tracePath)
		default:
			return errors.New("pass -trace <file> or -generate")
		}
		if err != nil {
			return err
		}
		profiles := apps.BuildProfiles(tr.Flows, *epoch, apps.NewClassifier())
		cfg := society.DefaultConfig()
		cfg.CoLeaveWindowSeconds = *window
		cfg.Alpha = *alpha
		cfg.HistoryDays = *history
		cfg.Seed = *seed
		model, err := society.Train(tr, profiles, cfg)
		if err != nil {
			return err
		}
		if err := society.SaveModel(*outPath, model); err != nil {
			return err
		}
		fmt.Fprintf(out, "trained on %d sessions: %d pair relationships, %d usage types\n",
			len(tr.Sessions), len(model.PairProb), model.K())
		fmt.Fprintf(out, "wrote %s\n", *outPath)
		return nil

	case *inspect != "":
		model, err := society.LoadModel(*inspect)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "model: %d pair relationships, %d usage types, α=%.2f\n",
			len(model.PairProb), model.K(), model.Alpha)
		report, err := analysis.BuildSocialReport(model, *threshold)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, report.Render())
		if *dotPath != "" {
			if err := writeDOT(*dotPath, model, *threshold); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *dotPath)
		}
		return nil

	default:
		return errors.New("nothing to do: pass -train or -inspect <model>")
	}
}
