package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTrainAndInspect(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "m.json")
	var buf bytes.Buffer
	err := run([]string{"-train", "-generate", "-seed", "3", "-out", model}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pair relationships") {
		t.Errorf("train output: %s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-inspect", model}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Social graph") {
		t.Errorf("inspect output: %s", buf.String())
	}
	if !strings.Contains(buf.String(), "clustering coefficient") {
		t.Errorf("missing structure stats: %s", buf.String())
	}
}

func TestRunNothingToDo(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no action should error")
	}
}

func TestTrainNeedsInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-train"}, &buf); err == nil {
		t.Error("train without input should error")
	}
}

func TestInspectMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-inspect", "/nonexistent.json"}, &buf); err == nil {
		t.Error("missing model should error")
	}
}

func TestInspectWithDOT(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "m.json")
	dot := filepath.Join(dir, "g.dot")
	var buf bytes.Buffer
	if err := run([]string{"-train", "-generate", "-out", model}, &buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-inspect", model, "-dot", dot}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph \"s3\"") {
		t.Errorf("DOT content wrong: %.100s", data)
	}
}
