// Command s3proto runs the S³ prototype: a WLAN controller speaking the
// JSON-lines protocol over TCP, either as a standalone server or as a
// self-contained demo that also spins up AP agents and stations.
//
// Usage:
//
//	s3proto -listen 127.0.0.1:7788 -policy s3     # standalone controller
//	s3proto -demo                                  # end-to-end demo
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"time"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3proto:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("s3proto", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:0", "controller listen address")
		policy  = fs.String("policy", "s3", "association policy: s3 or llf")
		demo    = fs.Bool("demo", false, "run the self-contained demo (controller + APs + stations)")
		verbose = fs.Bool("v", false, "log controller decisions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	selector, err := buildSelector(*policy)
	if err != nil {
		return err
	}
	var opts []protocol.ControllerOption
	if *verbose {
		opts = append(opts, protocol.WithLogger(log.New(out, "controller: ", log.Ltime)))
	}
	ctl, err := protocol.NewController(selector, opts...)
	if err != nil {
		return err
	}
	addr, err := ctl.Listen(*listen)
	if err != nil {
		return err
	}
	defer ctl.Close()
	fmt.Fprintf(out, "controller (%s policy) listening on %s\n", selector.Name(), addr)

	if *demo {
		return runDemo(ctl, addr, out)
	}

	// Standalone: serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Fprintln(out, "shutting down")
	return nil
}

// buildSelector returns the requested policy. The S³ policy is trained on
// a small generated campus so the demo has a sociality model to work
// with; a production deployment would train on the site's own history.
func buildSelector(policy string) (wlan.Selector, error) {
	switch policy {
	case "llf":
		return baseline.LLF{}, nil
	case "s3":
		cfg := synth.DefaultConfig()
		cfg.Users = 120
		cfg.Buildings = 2
		cfg.APsPerBuilding = 3
		cfg.Days = 10
		tr, _, err := synth.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("generate training campus: %w", err)
		}
		profiles := apps.BuildProfiles(tr.Flows, cfg.Epoch, apps.NewClassifier())
		model, err := society.Train(tr, profiles, society.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("train sociality model: %w", err)
		}
		return core.NewSelector(model, core.DefaultSelectorConfig())
	default:
		return nil, fmt.Errorf("unknown policy %q (want s3 or llf)", policy)
	}
}

// runDemo registers AP agents and walks a handful of stations through the
// association lifecycle, printing the controller's state.
func runDemo(ctl *protocol.Controller, addr string, out io.Writer) error {
	const timeout = 5 * time.Second
	for i, capacity := range []float64{10e6, 10e6, 10e6} {
		agent, err := protocol.DialAP(addr,
			trace.APID(fmt.Sprintf("ap-%d", i)), capacity, timeout)
		if err != nil {
			return err
		}
		defer agent.Close()
		if err := agent.Report(0); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "registered 3 APs")

	stations := make([]*protocol.Station, 0, 6)
	for i := 0; i < 6; i++ {
		st, err := protocol.DialStation(addr,
			trace.UserID(fmt.Sprintf("user-%04d", i)), timeout)
		if err != nil {
			return err
		}
		defer st.Close()
		ap, err := st.Associate(50e3)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "station user-%04d -> %s\n", i, ap)
		if err := st.SendTraffic(1 << 20); err != nil {
			return err
		}
		stations = append(stations, st)
	}

	// Two stations leave together (a co-leaving).
	for _, st := range stations[:2] {
		if err := st.Disassociate(); err != nil {
			return err
		}
	}
	time.Sleep(100 * time.Millisecond) // let the controller settle

	fmt.Fprintln(out, "\ncontroller state after co-leaving:")
	snap := ctl.Snapshot()
	for _, id := range []trace.APID{"ap-0", "ap-1", "ap-2"} {
		st := snap[id]
		fmt.Fprintf(out, "  %s: %d users, %d bytes served\n",
			id, len(st.Users), st.ServedBytes)
	}
	return nil
}
