// Command s3proto runs the S³ prototype: a WLAN controller speaking the
// JSON-lines protocol over TCP, either as a standalone server, a
// self-contained demo that also spins up AP agents and stations, or a
// chaos soak that subjects the controller to connection faults and
// churn.
//
// Usage:
//
//	s3proto -listen 127.0.0.1:7788 -policy s3     # standalone controller
//	s3proto -policy s3-live -refresh-every 5s     # learn sociality live
//	s3proto -demo                                  # end-to-end demo
//	s3proto -chaos -chaos-dur 5s                   # churn + fault soak
//	s3proto -journal /var/lib/s3/journal           # crash-safe state
//	s3proto -drive 127.0.0.1:7788 -drive-hold 30s  # load a running controller
//	s3proto -journal dir -recover-check 8          # assert recovery (CI)
//	s3proto -pprof localhost:6060                  # pprof + Prometheus /metrics
//	s3proto -flight-dir /var/lib/s3/flight         # always-on flight recorder
//	s3proto -cluster /srv/s3 -node-id alpha -peers alpha,beta,gamma
//	                                               # one replica of a federated cluster
//	s3proto -fed-status /srv/s3                    # per-group lease status (JSON)
//	s3proto -max-conns 256 -assoc-rate 500         # admission control: shed excess with MsgBusy
//	s3proto -cluster ... -breaker-failures 5 -breaker-cooldown 1s
//	                                               # relay circuit breaker budget/cooldown
//
// With -cluster the controller becomes one replica of an N-node
// federation jointly owning the AP space (internal/federation): AP and
// user IDs hash onto federation groups, each group has one owner at a
// time (arbitrated through lease files under the shared -cluster root),
// every replica relays traffic it does not own to the owner, followers
// mirror each group's journal in real time, and an expired lease fails
// the group over to a caught-up follower within one -lease-ttl. The
// -fsync and -checkpoint-every flags govern the per-group journals;
// -ownership overrides the round-robin home map derived from -peers.
//
// With -journal the controller appends every domain mutation to a
// write-ahead journal (internal/journal) and checkpoints its full state
// every -checkpoint-every records; restarted with the same directory it
// resumes with believed loads, assignments and the θ-graph intact. The
// -fsync flag picks the durability/throughput trade-off.
//
// With -pprof the debug HTTP server also serves /metrics in Prometheus
// text format (every internal/obs counter, gauge and histogram). With
// -flight-dir a background flight recorder (internal/obs/flight)
// delta-encodes periodic snapshots of the whole metric registry into a
// bounded on-disk ring that survives kill -9; decode it with s3diag.
// See docs/OBSERVABILITY.md for the full metric catalog.
//
// The s3-live policy runs the incremental social-state engine
// (internal/society/incremental) in the control loop: the controller's
// association events feed the engine, the engine publishes immutable θ
// snapshots on a refresh tick, and the S³ selector reads them lock-free.
// The type prior is seeded from a batch-trained model; P(L|E) is learned
// live from the deployment's own co-leavings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/federation"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/obs/flight"
	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/protocol/faultconn"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/society/incremental"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3proto:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("s3proto", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "controller listen address (binary codec, auto-detects JSON peers)")
		jsonPort = fs.String("json-port", "", "extra JSON-only debug/compat listen address (binary frames rejected)")
		policy   = fs.String("policy", "s3", "association policy: s3, s3-live or llf")
		refEvery = fs.Duration("refresh-every", 5*time.Second, "s3-live: periodic snapshot refresh interval")
		refEvts  = fs.Int("refresh-events", 256, "s3-live: also refresh after this many association events (0 = periodic only)")
		demo     = fs.Bool("demo", false, "run the self-contained demo (controller + APs + stations)")
		chaos    = fs.Bool("chaos", false, "run the churn soak: faulty connections, agent kills, station churn")
		chaosDur = fs.Duration("chaos-dur", 5*time.Second, "chaos soak duration")
		chaosAPs = fs.Int("chaos-aps", 4, "chaos soak AP agent count")
		chaosStn = fs.Int("chaos-stations", 16, "chaos soak station count")
		seed     = fs.Int64("seed", 1, "chaos fault-schedule seed")
		shards   = fs.Int("shards", 0, "association-domain shards (<=1 = one lock domain; decisions are shard-count independent)")
		verbose  = fs.Bool("v", false, "log controller decisions")

		maxConns   = fs.Int("max-conns", 0, "admission: cap on concurrent peer connections; excess get MsgBusy (0 = unlimited)")
		assocRate  = fs.Float64("assoc-rate", 0, "admission: association requests admitted per second; excess get MsgBusy (0 = unlimited)")
		assocBurst = fs.Int("assoc-burst", 0, "admission: association token-bucket burst (0 = derive from -assoc-rate)")
		brkFails   = fs.Int("breaker-failures", 5, "cluster: consecutive relay failures that trip a group's circuit breaker")
		brkCool    = fs.Duration("breaker-cooldown", time.Second, "cluster: how long a tripped relay breaker fast-refuses before probing")

		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof and Prometheus /metrics on this address (e.g. localhost:6060)")
		flightDir   = fs.String("flight-dir", "", "flight-recorder ring directory (empty = off); decode with s3diag")
		flightEvery = fs.Duration("flight-every", time.Second, "flight recorder sampling period")
		flightMax   = fs.Int64("flight-max-bytes", flight.DefaultMaxBytes, "flight ring disk budget in bytes")

		journalDir = fs.String("journal", "", "write-ahead journal directory (empty = no durability)")
		fsyncMode  = fs.String("fsync", "always", "journal fsync policy: always, interval or off")
		ckptEvery  = fs.Int("checkpoint-every", 1024, "journal: checkpoint and rotate after this many records (0 = never)")
		recovChk   = fs.Int("recover-check", -1, "recover from -journal, assert this many recovered assignments, then exit (CI)")

		driveAddr = fs.String("drive", "", "drive a running controller at this address: register APs, associate stations, hold")
		driveAPs  = fs.Int("drive-aps", 3, "drive mode: AP agent count")
		driveStns = fs.Int("drive-stations", 8, "drive mode: station count")
		driveHold = fs.Duration("drive-hold", time.Minute, "drive mode: how long to hold connections open")

		clusterRoot = fs.String("cluster", "", "federation cluster root directory (enables cluster mode; requires -node-id and -peers or -ownership)")
		nodeID      = fs.String("node-id", "", "cluster: this replica's name in the ownership map")
		peers       = fs.String("peers", "", "cluster: comma-separated replica names; home groups assigned round-robin unless -ownership")
		ownSpec     = fs.String("ownership", "", "cluster: explicit group=node home map, e.g. 0=alpha,1=beta,2=alpha")
		fedGroups   = fs.Int("fed-groups", 0, "cluster: federation group count (default: number of peers)")
		leaseTTL    = fs.Duration("lease-ttl", 2*time.Second, "cluster: group lease TTL; a silent owner is failed over after this long")
		clusterHold = fs.Duration("cluster-hold", 0, "cluster: exit after this long instead of waiting for a signal (tests/CI)")
		fedStatus   = fs.String("fed-status", "", "print a cluster root's per-group lease status as JSON, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Observability first, so every mode — server, chaos, demo, drive —
	// carries the pprof+/metrics surface and the flight recorder.
	stopProfiling, err := obs.StartProfiling(obs.ProfileConfig{HTTPAddr: *pprofAddr})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiling(); perr != nil && err == nil {
			err = perr
		}
	}()
	if *flightDir != "" {
		rec, ferr := flight.Start(flight.Options{
			Dir:      *flightDir,
			Every:    *flightEvery,
			MaxBytes: *flightMax,
		})
		if ferr != nil {
			return ferr
		}
		defer func() {
			if serr := rec.Stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	if *fedStatus != "" {
		return runFedStatus(*fedStatus, out)
	}
	if *driveAddr != "" {
		return runDrive(*driveAddr, *driveAPs, *driveStns, *driveHold, out)
	}

	selector, engine, err := buildSelector(*policy, *refEvts)
	if err != nil {
		return err
	}
	opts := []protocol.ControllerOption{protocol.WithShards(*shards)}
	if *maxConns > 0 || *assocRate > 0 {
		opts = append(opts, protocol.WithAdmission(protocol.Admission{
			MaxConns:   *maxConns,
			AssocRate:  *assocRate,
			AssocBurst: *assocBurst,
		}))
	}
	if *verbose {
		opts = append(opts, protocol.WithLogger(log.New(out, "controller: ", log.Ltime)))
	}
	if engine != nil {
		opts = append(opts,
			protocol.WithObserver(engine),
			protocol.WithRefresher(func() { engine.Refresh() }, *refEvery))
	}

	if *clusterRoot != "" {
		if *journalDir != "" {
			return fmt.Errorf("-cluster manages one journal per group under the cluster root; drop -journal (-fsync and -checkpoint-every still apply)")
		}
		pol, err := journal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		return runCluster(clusterConfig{
			root:      *clusterRoot,
			nodeID:    *nodeID,
			peers:     *peers,
			ownSpec:   *ownSpec,
			groups:    *fedGroups,
			listen:    *listen,
			ttl:       *leaseTTL,
			hold:      *clusterHold,
			fsync:     pol,
			ckptEvery: *ckptEvery,
			brkFails:  *brkFails,
			brkCool:   *brkCool,
			verbose:   *verbose,
		}, selector, opts, out)
	}

	if *journalDir != "" {
		pol, err := journal.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		opts = append(opts, protocol.WithJournal(*journalDir, journal.Options{
			Fsync:           pol,
			CheckpointEvery: *ckptEvery,
		}))
	}

	if *recovChk >= 0 {
		if *journalDir == "" {
			return fmt.Errorf("-recover-check requires -journal")
		}
		ctl, err := protocol.NewController(selector, opts...)
		if err != nil {
			return err
		}
		rec := ctl.Recovery()
		writeRecovery(out, rec)
		if err := ctl.Close(); err != nil {
			return err
		}
		if rec.Assignments != *recovChk {
			return fmt.Errorf("recover-check: want %d recovered assignments, got %d",
				*recovChk, rec.Assignments)
		}
		fmt.Fprintf(out, "recover-check ok: %d assignments\n", rec.Assignments)
		return nil
	}

	if *chaos {
		return runChaos(selector, opts, chaosConfig{
			listen:   *listen,
			duration: *chaosDur,
			aps:      *chaosAPs,
			stations: *chaosStn,
			seed:     *seed,
		}, out)
	}

	ctl, err := protocol.NewController(selector, opts...)
	if err != nil {
		return err
	}
	addr, err := ctl.Listen(*listen)
	if err != nil {
		return err
	}
	defer ctl.Close()
	fmt.Fprintf(out, "controller (%s policy) listening on %s\n", selector.Name(), addr)
	if *jsonPort != "" {
		jaddr, jerr := ctl.ListenJSON(*jsonPort)
		if jerr != nil {
			return jerr
		}
		fmt.Fprintf(out, "JSON compatibility port on %s\n", jaddr)
	}
	if rec := ctl.Recovery(); rec != nil {
		writeRecovery(out, rec)
	}

	if *demo {
		if err := runDemo(ctl, addr, out); err != nil {
			return err
		}
		if engine != nil {
			engine.Refresh()
			s := engine.Snapshot()
			fmt.Fprintf(out, "\nlive social state: snapshot #%d, %d users, %d edges, %d components\n",
				s.Seq, s.Users, s.Edges, s.NumComponents())
			writeHealth(out)
		}
		return nil
	}

	// Standalone: serve until interrupted or terminated. Close (deferred)
	// drains peers, takes a final checkpoint and flushes the journal, so
	// both SIGINT and SIGTERM are clean shutdowns.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(out, "shutting down (%v)\n", s)
	return nil
}

// clusterConfig parameterizes a federation replica.
type clusterConfig struct {
	root, nodeID, peers, ownSpec, listen string
	groups                               int
	ttl, hold                            time.Duration
	fsync                                journal.FsyncPolicy
	ckptEvery                            int
	brkFails                             int
	brkCool                              time.Duration
	verbose                              bool
}

// runCluster serves one replica of the federated controller cluster:
// every group starts as a follower tailing the shared-root journals,
// the lease loop claims this node's home groups (and any expired
// lease), and the routing front-end serves or relays every peer. The
// health banner — node identity, per-group role, ownership epoch and
// replication position — is printed once the home groups settle and
// again at shutdown, so scripts assert cluster state from stdout.
func runCluster(cfg clusterConfig, selector wlan.Selector, ctrlOpts []protocol.ControllerOption, out io.Writer) error {
	if cfg.nodeID == "" {
		return fmt.Errorf("-cluster requires -node-id")
	}
	var own *federation.Ownership
	var err error
	if cfg.ownSpec != "" {
		groups := cfg.groups
		if groups == 0 {
			groups = len(strings.Split(cfg.ownSpec, ","))
		}
		own, err = federation.ParseOwnership(cfg.ownSpec, groups)
	} else {
		var names []string
		for _, p := range strings.Split(cfg.peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				names = append(names, p)
			}
		}
		if len(names) == 0 {
			return fmt.Errorf("-cluster requires -peers or -ownership")
		}
		own, err = federation.DefaultOwnership(names, cfg.groups)
	}
	if err != nil {
		return err
	}
	home := own.HomeGroups(cfg.nodeID)
	if len(home) == 0 {
		fmt.Fprintf(out, "note: %s homes no groups; serving as router and standby only\n", cfg.nodeID)
	}

	ncfg := federation.Config{
		NodeID:      cfg.nodeID,
		Root:        cfg.root,
		Ownership:   own,
		LeaseTTL:    cfg.ttl,
		NewSelector: func() wlan.Selector { return selector },
		ControllerOpts: func(int) []protocol.ControllerOption {
			return ctrlOpts
		},
		Journal:         journal.Options{Fsync: cfg.fsync, CheckpointEvery: cfg.ckptEvery},
		BreakerFailures: cfg.brkFails,
		BreakerCooldown: cfg.brkCool,
	}
	if cfg.verbose {
		ncfg.Logger = log.New(out, "federation: ", log.Ltime)
	}
	node, err := federation.NewNode(ncfg)
	if err != nil {
		return err
	}
	addr, err := node.Listen(cfg.listen)
	if err != nil {
		node.Close()
		return err
	}
	fmt.Fprintf(out, "cluster node %s (%s policy) listening on %s: %d groups, home %v, lease TTL %v\n",
		cfg.nodeID, selector.Name(), addr, own.Groups(), home, cfg.ttl)
	for _, g := range home {
		if _, werr := node.WaitOwner(g, 4*cfg.ttl+2*time.Second); werr != nil {
			fmt.Fprintf(out, "cluster: %v\n", werr)
		}
	}
	writeFedHealth(out, node.Health())

	if cfg.hold > 0 {
		time.Sleep(cfg.hold)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Fprintf(out, "shutting down (%v)\n", s)
	}
	writeFedHealth(out, node.Health())
	writeHealth(out)
	return node.Close()
}

// writeFedHealth prints the node's federation health block as JSON.
func writeFedHealth(out io.Writer, h federation.Health) {
	data, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		fmt.Fprintf(out, "cluster health: %v\n", err)
		return
	}
	fmt.Fprintf(out, "cluster health:\n%s\n", data)
}

// runFedStatus prints a cluster root's per-group lease status as JSON:
// owner, epoch, serve address, lease age and whether it has expired.
func runFedStatus(root string, out io.Writer) error {
	leases, err := federation.ReadLeases(root)
	if err != nil {
		return err
	}
	now := time.Now().UnixMilli()
	type row struct {
		*federation.Lease
		AgeMs   int64 `json:"age_ms"`
		Expired bool  `json:"expired"`
	}
	rows := make([]row, 0, len(leases))
	for _, l := range leases {
		rows = append(rows, row{Lease: l, AgeMs: now - l.Renewed, Expired: l.Expired(now)})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// writeRecovery prints a journal-enabled controller's recovery summary.
func writeRecovery(out io.Writer, rec *protocol.RecoverySummary) {
	fmt.Fprintf(out,
		"journal recovery: checkpoint seq %d, %d records replayed, %d APs, %d assignments (corrupt skipped %d, torn tails %d, replay errors %d)\n",
		rec.Stats.CheckpointSeq, rec.Stats.RecordsReplayed, rec.APs, rec.Assignments,
		rec.Stats.CorruptSkipped, rec.Stats.TornTails, rec.ReplayErrors)
}

// runDrive is the crash-smoke load driver: a pure client that registers
// AP agents, associates stations (with a little traffic each) against a
// running controller, then holds every connection open — keeping the
// associations live on the controller — until the hold elapses or the
// controller goes away (our cue that the kill happened).
func runDrive(addr string, aps, stations int, hold time.Duration, out io.Writer) error {
	const timeout = 5 * time.Second
	agents := make([]*protocol.APAgent, 0, aps)
	for i := 0; i < aps; i++ {
		agent, err := protocol.DialAP(addr,
			trace.APID(fmt.Sprintf("ap-%d", i)), 10e6, timeout)
		if err != nil {
			return fmt.Errorf("drive: dial AP %d: %w", i, err)
		}
		defer agent.Close()
		if err := agent.Report(0); err != nil {
			return fmt.Errorf("drive: AP %d report: %w", i, err)
		}
		agents = append(agents, agent)
	}
	for i := 0; i < stations; i++ {
		st, err := protocol.DialStation(addr,
			trace.UserID(fmt.Sprintf("user-%04d", i)), timeout)
		if err != nil {
			return fmt.Errorf("drive: dial station %d: %w", i, err)
		}
		defer st.Close()
		ap, err := st.Associate(50e3)
		if err != nil {
			return fmt.Errorf("drive: associate station %d: %w", i, err)
		}
		if err := st.SendTraffic(1 << 16); err != nil {
			return fmt.Errorf("drive: traffic station %d: %w", i, err)
		}
		fmt.Fprintf(out, "drive: user-%04d -> %s\n", i, ap)
	}
	fmt.Fprintf(out, "drive: %d APs registered, %d stations associated; holding %v\n",
		aps, stations, hold)

	deadline := time.Now().Add(hold)
	for time.Now().Before(deadline) {
		time.Sleep(250 * time.Millisecond)
		// Heartbeat reports keep AP leases fresh; a failed report means
		// the controller is gone, which ends the hold.
		for _, agent := range agents {
			if err := agent.Report(1e6); err != nil {
				fmt.Fprintln(out, "drive: controller gone, exiting")
				return nil
			}
		}
	}
	return nil
}

// buildSelector returns the requested policy. The S³ policies are primed
// on a small generated campus so the demo has a sociality model to work
// with; a production deployment would train on the site's own history.
// For s3-live the returned engine is non-nil and must be wired to the
// controller as observer and refresher: it serves the batch-trained type
// prior immediately and learns P(L|E) from the live association stream.
func buildSelector(policy string, refreshEvents int) (wlan.Selector, *incremental.Engine, error) {
	switch policy {
	case "llf":
		return baseline.LLF{}, nil, nil
	case "s3":
		model, err := trainDemoModel()
		if err != nil {
			return nil, nil, err
		}
		sel, err := core.NewSelector(model, core.DefaultSelectorConfig())
		return sel, nil, err
	case "s3-live":
		model, err := trainDemoModel()
		if err != nil {
			return nil, nil, err
		}
		cfg := incremental.DefaultConfig()
		cfg.RefreshEvents = refreshEvents
		engine := incremental.New(cfg)
		engine.SetTypes(model.Types, model.TypeMatrix)
		engine.Refresh()
		sel, err := core.NewSelector(engine, core.DefaultSelectorConfig())
		return sel, engine, err
	default:
		return nil, nil, fmt.Errorf("unknown policy %q (want s3, s3-live or llf)", policy)
	}
}

// trainDemoModel batch-trains a sociality model on a generated campus.
func trainDemoModel() (*society.Model, error) {
	cfg := synth.DefaultConfig()
	cfg.Users = 120
	cfg.Buildings = 2
	cfg.APsPerBuilding = 3
	cfg.Days = 10
	tr, _, err := synth.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("generate training campus: %w", err)
	}
	profiles := apps.BuildProfiles(tr.Flows, cfg.Epoch, apps.NewClassifier())
	model, err := society.Train(tr, profiles, society.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("train sociality model: %w", err)
	}
	return model, nil
}

// runDemo registers AP agents and walks a handful of stations through the
// association lifecycle, printing the controller's state.
func runDemo(ctl *protocol.Controller, addr string, out io.Writer) error {
	const timeout = 5 * time.Second
	for i, capacity := range []float64{10e6, 10e6, 10e6} {
		agent, err := protocol.DialAP(addr,
			trace.APID(fmt.Sprintf("ap-%d", i)), capacity, timeout)
		if err != nil {
			return err
		}
		defer agent.Close()
		if err := agent.Report(0); err != nil {
			return err
		}
	}
	fmt.Fprintln(out, "registered 3 APs")

	stations := make([]*protocol.Station, 0, 6)
	for i := 0; i < 6; i++ {
		st, err := protocol.DialStation(addr,
			trace.UserID(fmt.Sprintf("user-%04d", i)), timeout)
		if err != nil {
			return err
		}
		defer st.Close()
		ap, err := st.Associate(50e3)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "station user-%04d -> %s\n", i, ap)
		if err := st.SendTraffic(1 << 20); err != nil {
			return err
		}
		stations = append(stations, st)
	}

	// Two stations leave together (a co-leaving).
	for _, st := range stations[:2] {
		if err := st.Disassociate(); err != nil {
			return err
		}
	}
	time.Sleep(100 * time.Millisecond) // let the controller settle

	fmt.Fprintln(out, "\ncontroller state after co-leaving:")
	snap := ctl.Snapshot()
	for _, id := range []trace.APID{"ap-0", "ap-1", "ap-2"} {
		st := snap[id]
		fmt.Fprintf(out, "  %s: %d users, %d bytes served\n",
			id, len(st.Users), st.ServedBytes)
	}
	return nil
}

// chaosConfig parameterizes the churn soak.
type chaosConfig struct {
	listen   string
	duration time.Duration
	aps      int
	stations int
	seed     int64
}

// runChaos soaks the live controller under churn: the listener injects
// drops, delays, torn frames and mid-stream closes into every accepted
// connection; AP agents dial through a self-destructing transport so
// they periodically lose their connection and exercise
// reconnect-with-backoff against the controller's lease machinery; and
// stations churn through associate/traffic/disassociate cycles,
// redialing whenever a fault kills their connection. At the end it
// prints the lifecycle health counters the controller exposes through
// internal/obs.
func runChaos(selector wlan.Selector, opts []protocol.ControllerOption, cfg chaosConfig, out io.Writer) error {
	const timeout = 2 * time.Second
	opts = append(opts, protocol.WithTimeout(timeout), protocol.WithLease(2))
	ctl, err := protocol.NewController(selector, opts...)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	addr := ctl.Serve(&faultconn.Listener{
		Listener: ln,
		Config: faultconn.Config{
			Seed:             cfg.seed,
			DropWriteProb:    0.01,
			PartialWriteProb: 0.01,
			ReadErrProb:      0.01,
			DelayProb:        0.05,
			MaxDelay:         2 * time.Millisecond,
			CloseAfterReads:  50,
		},
	})
	defer ctl.Close()
	fmt.Fprintf(out, "chaos soak: %s policy, %d APs, %d stations, %v, seed %d\n",
		selector.Name(), cfg.aps, cfg.stations, cfg.duration, cfg.seed)

	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	var assocOK, assocFail, agentKills atomic.Int64

	// AP agents: reconnecting clients whose own transport tears itself
	// down every ~15 writes, forcing periodic redials (counted as kills).
	for i := 0; i < cfg.aps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := trace.APID(fmt.Sprintf("ap-%d", i))
			rc := protocol.DefaultReconnectConfig()
			rc.MaxAttempts = 50
			rc.BaseDelay = 10 * time.Millisecond
			rc.MaxDelay = 200 * time.Millisecond
			rc.Seed = faultconn.DeriveSeed(cfg.seed, int64(1000+i))
			var dials atomic.Int64
			rc.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
				raw, err := net.DialTimeout("tcp", addr, timeout)
				if err != nil {
					return nil, err
				}
				n := dials.Add(1)
				return faultconn.Wrap(raw, faultconn.Config{
					Seed:             faultconn.DeriveSeed(rc.Seed, n),
					CloseAfterWrites: 15,
				}), nil
			}
			agent, err := protocol.DialAPReconnecting(addr, id, 10e6, timeout, rc)
			if err != nil {
				return
			}
			defer agent.Close()
			rng := rand.New(rand.NewSource(rc.Seed))
			for time.Now().Before(deadline) {
				if err := agent.Report(rng.Float64() * 5e6); err != nil {
					agentKills.Add(1)
				}
				time.Sleep(50 * time.Millisecond)
			}
			agentKills.Add(agent.Reconnects())
		}(i)
	}

	// Stations: churn through short association lifecycles, tolerating
	// and redialing around injected faults.
	for i := 0; i < cfg.stations; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := trace.UserID(fmt.Sprintf("user-%04d", i))
			rng := rand.New(rand.NewSource(faultconn.DeriveSeed(cfg.seed, int64(2000+i))))
			for time.Now().Before(deadline) {
				st, err := protocol.DialStation(addr, user, timeout)
				if err != nil {
					time.Sleep(20 * time.Millisecond)
					continue
				}
				for time.Now().Before(deadline) {
					if _, err := st.Associate(10e3 + rng.Float64()*90e3); err != nil {
						assocFail.Add(1)
						break
					}
					assocOK.Add(1)
					if err := st.SendTraffic(int64(rng.Intn(1 << 16))); err != nil {
						break
					}
					time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
					if rng.Float64() < 0.3 {
						if err := st.Disassociate(); err != nil {
							break
						}
					}
				}
				st.Close()
			}
		}(i)
	}

	wg.Wait()
	if err := ctl.Close(); err != nil {
		fmt.Fprintf(out, "controller close: %v\n", err)
	}

	snap := ctl.Snapshot()
	users := 0
	for _, st := range snap {
		users += len(st.Users)
	}
	fmt.Fprintln(out, "\nchaos summary:")
	fmt.Fprintf(out, "  associations ok/failed: %d/%d, agent connection losses: %d\n",
		assocOK.Load(), assocFail.Load(), agentKills.Load())
	fmt.Fprintf(out, "  final state: %d APs, %d associated users\n", len(snap), users)
	writeHealth(out)
	return nil
}

// writeHealth prints the protocol.*, domain.*, society.*, journal.*
// and federation.* health metrics (counters and gauges) from the obs
// registry in sorted order.
func writeHealth(out io.Writer) {
	snap := obs.TakeSnapshot()
	vals := make(map[string]int64, len(snap.Counters)+len(snap.Gauges))
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	add := func(name string, v int64) {
		if strings.HasPrefix(name, "protocol.") || strings.HasPrefix(name, "domain.") ||
			strings.HasPrefix(name, "society.") || strings.HasPrefix(name, "journal.") ||
			strings.HasPrefix(name, "federation.") {
			names = append(names, name)
			vals[name] = v
		}
	}
	for name, v := range snap.Counters {
		add(name, v)
	}
	for name, v := range snap.Gauges {
		add(name, v)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(out, "  %s = %d\n", name, vals[name])
	}
}
