package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRunDemoLLF(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "llf"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "registered 3 APs") {
		t.Errorf("missing AP registration: %s", out)
	}
	if !strings.Contains(out, "controller state after co-leaving") {
		t.Errorf("missing final state: %s", out)
	}
}

func TestRunDemoS3(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "s3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S3 policy") {
		t.Errorf("missing policy banner: %s", buf.String())
	}
}

func TestRunChaosSoak(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-chaos", "-chaos-dur", "300ms", "-policy", "llf",
		"-chaos-aps", "2", "-chaos-stations", "4", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "chaos soak") || !strings.Contains(out, "chaos summary") {
		t.Errorf("missing chaos output: %s", out)
	}
	if !strings.Contains(out, "protocol.ap.registered") {
		t.Errorf("missing health counters: %s", out)
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "bogus"}, &buf); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestBuildSelector(t *testing.T) {
	if sel, eng, err := buildSelector("llf", 0); err != nil || sel.Name() != "LLF" || eng != nil {
		t.Errorf("llf selector = %v, %v, %v", sel, eng, err)
	}
	if sel, eng, err := buildSelector("s3", 0); err != nil || sel.Name() != "S3" || eng != nil {
		t.Errorf("s3 selector = %v, %v, %v", sel, eng, err)
	}
	if _, _, err := buildSelector("nope", 0); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestBuildSelectorS3Live(t *testing.T) {
	sel, eng, err := buildSelector("s3-live", 128)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name() != "S3" {
		t.Errorf("selector = %q, want S3", sel.Name())
	}
	if eng == nil {
		t.Fatal("s3-live must return the engine")
	}
	// The batch-trained type prior is already published: the initial
	// snapshot exists and carries the trained type assignment.
	if s := eng.Snapshot(); s.Seq == 0 {
		t.Error("engine should have published the seeded snapshot")
	}
}

func TestRunDemoS3Live(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "s3-live", "-refresh-every", "10ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "live social state") {
		t.Errorf("missing live engine summary: %s", out)
	}
	if !strings.Contains(out, "society.inc.refreshes") {
		t.Errorf("missing society health metrics: %s", out)
	}
}

func TestRunClusterThreeNodes(t *testing.T) {
	root := t.TempDir()
	var wg sync.WaitGroup
	bufs := make([]bytes.Buffer, 3)
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{
				"-cluster", root,
				"-node-id", fmt.Sprintf("n%d", i),
				"-peers", "n0,n1,n2",
				"-policy", "llf",
				"-lease-ttl", "250ms",
				"-cluster-hold", "2s",
				"-fsync", "off",
			}, &bufs[i])
		}(i)
	}
	wg.Wait()
	for i := range errs {
		out := bufs[i].String()
		if errs[i] != nil {
			t.Fatalf("node %d: %v\n%s", i, errs[i], out)
		}
		if !strings.Contains(out, fmt.Sprintf("cluster node n%d", i)) {
			t.Errorf("node %d missing banner:\n%s", i, out)
		}
		if !strings.Contains(out, "cluster health:") ||
			!strings.Contains(out, fmt.Sprintf("%q: %q", "node_id", fmt.Sprintf("n%d", i))) {
			t.Errorf("node %d missing health identity block:\n%s", i, out)
		}
		if !strings.Contains(out, `"role": "owner"`) {
			t.Errorf("node %d never owned its home group:\n%s", i, out)
		}
		if !strings.Contains(out, "federation.lease_renewals") {
			t.Errorf("node %d missing federation health counters:\n%s", i, out)
		}
	}

	// The lease files outlive the nodes; -fed-status reads them back.
	var sb bytes.Buffer
	if err := run([]string{"-fed-status", root}, &sb); err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Group int    `json:"group"`
		Owner string `json:"owner"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.Unmarshal(sb.Bytes(), &rows); err != nil {
		t.Fatalf("fed-status output not JSON: %v\n%s", err, sb.String())
	}
	if len(rows) != 3 {
		t.Fatalf("fed-status rows = %d, want 3:\n%s", len(rows), sb.String())
	}
	for _, r := range rows {
		if r.Owner != fmt.Sprintf("n%d", r.Group) || r.Epoch != 1 {
			t.Errorf("group %d settled on %s@%d, want its home owner at epoch 1", r.Group, r.Owner, r.Epoch)
		}
	}
}

func TestRunClusterFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-cluster", t.TempDir(), "-peers", "a,b"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "node-id") {
		t.Errorf("missing -node-id should error, got %v", err)
	}
	if err := run([]string{"-cluster", t.TempDir(), "-node-id", "a"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "peers") {
		t.Errorf("missing -peers should error, got %v", err)
	}
	if err := run([]string{"-cluster", t.TempDir(), "-node-id", "a", "-peers", "a,b",
		"-journal", t.TempDir()}, &buf); err == nil ||
		!strings.Contains(err.Error(), "journal") {
		t.Errorf("-cluster with -journal should error, got %v", err)
	}

	// An empty root has no leases yet: -fed-status prints an empty list.
	var sb bytes.Buffer
	if err := run([]string{"-fed-status", t.TempDir()}, &sb); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(sb.String()); s != "[]" {
		t.Errorf("fed-status on an empty root = %q, want []", s)
	}
}
