package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDemoLLF(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "llf"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "registered 3 APs") {
		t.Errorf("missing AP registration: %s", out)
	}
	if !strings.Contains(out, "controller state after co-leaving") {
		t.Errorf("missing final state: %s", out)
	}
}

func TestRunDemoS3(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "s3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S3 policy") {
		t.Errorf("missing policy banner: %s", buf.String())
	}
}

func TestRunChaosSoak(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-chaos", "-chaos-dur", "300ms", "-policy", "llf",
		"-chaos-aps", "2", "-chaos-stations", "4", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "chaos soak") || !strings.Contains(out, "chaos summary") {
		t.Errorf("missing chaos output: %s", out)
	}
	if !strings.Contains(out, "protocol.ap.registered") {
		t.Errorf("missing health counters: %s", out)
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "bogus"}, &buf); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestBuildSelector(t *testing.T) {
	if sel, eng, err := buildSelector("llf", 0); err != nil || sel.Name() != "LLF" || eng != nil {
		t.Errorf("llf selector = %v, %v, %v", sel, eng, err)
	}
	if sel, eng, err := buildSelector("s3", 0); err != nil || sel.Name() != "S3" || eng != nil {
		t.Errorf("s3 selector = %v, %v, %v", sel, eng, err)
	}
	if _, _, err := buildSelector("nope", 0); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestBuildSelectorS3Live(t *testing.T) {
	sel, eng, err := buildSelector("s3-live", 128)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Name() != "S3" {
		t.Errorf("selector = %q, want S3", sel.Name())
	}
	if eng == nil {
		t.Fatal("s3-live must return the engine")
	}
	// The batch-trained type prior is already published: the initial
	// snapshot exists and carries the trained type assignment.
	if s := eng.Snapshot(); s.Seq == 0 {
		t.Error("engine should have published the seeded snapshot")
	}
}

func TestRunDemoS3Live(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "s3-live", "-refresh-every", "10ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "live social state") {
		t.Errorf("missing live engine summary: %s", out)
	}
	if !strings.Contains(out, "society.inc.refreshes") {
		t.Errorf("missing society health metrics: %s", out)
	}
}
