package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDemoLLF(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "llf"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "registered 3 APs") {
		t.Errorf("missing AP registration: %s", out)
	}
	if !strings.Contains(out, "controller state after co-leaving") {
		t.Errorf("missing final state: %s", out)
	}
}

func TestRunDemoS3(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "s3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S3 policy") {
		t.Errorf("missing policy banner: %s", buf.String())
	}
}

func TestRunChaosSoak(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-chaos", "-chaos-dur", "300ms", "-policy", "llf",
		"-chaos-aps", "2", "-chaos-stations", "4", "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "chaos soak") || !strings.Contains(out, "chaos summary") {
		t.Errorf("missing chaos output: %s", out)
	}
	if !strings.Contains(out, "protocol.ap.registered") {
		t.Errorf("missing health counters: %s", out)
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo", "-policy", "bogus"}, &buf); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestBuildSelector(t *testing.T) {
	if sel, err := buildSelector("llf"); err != nil || sel.Name() != "LLF" {
		t.Errorf("llf selector = %v, %v", sel, err)
	}
	if sel, err := buildSelector("s3"); err != nil || sel.Name() != "S3" {
		t.Errorf("s3 selector = %v, %v", sel, err)
	}
	if _, err := buildSelector("nope"); err == nil {
		t.Error("unknown policy should error")
	}
}
