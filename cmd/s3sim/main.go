// Command s3sim runs the paper's evaluation (Section V): trace-driven
// simulation of S³ against LLF, reproducing Figs. 10–12, plus the
// repository's ablation studies. Sweeps and ablation grids fan out over
// a deterministic worker pool (-workers); profiling and observability
// flags expose where the time goes.
//
// Usage:
//
//	s3sim -generate -fig 12
//	s3sim -trace campus.jsonl -train 28 -all
//	s3sim -generate -ablation staleness -workers 8 -progress
//	s3sim -generate -all -cpuprofile cpu.prof -obs obs.json
//	s3sim -generate -all -flight-dir flight/   # ring for s3diag post-mortems
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/s3wlan/s3wlan/internal/experiments"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/obs/flight"
	"github.com/s3wlan/s3wlan/internal/runner"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3sim:", err)
		os.Exit(1)
	}
}

// writeObs dumps the process's observability registry as JSON to path
// ("-" writes to w, the command's stdout).
func writeObs(path string, w io.Writer) error {
	if path == "-" {
		return obs.WriteJSON(w)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("s3sim", flag.ContinueOnError)
	var (
		tracePath = fs.String("trace", "", "input trace (JSON-lines); empty with -generate")
		generate  = fs.Bool("generate", false, "generate the default synthetic campus")
		seed      = fs.Int64("seed", 1, "seed for -generate")
		users     = fs.Int("users", 600, "population for -generate")
		buildings = fs.Int("buildings", 10, "buildings for -generate")
		aps       = fs.Int("aps", 4, "APs per building for -generate")
		days      = fs.Int("days", 31, "days for -generate")
		trainDays = fs.Int("train", 28, "training days (rest is the test range)")
		fig       = fs.Int("fig", 0, "figure to reproduce (10, 11 or 12)")
		all       = fs.Bool("all", false, "run every evaluation figure")
		ablation  = fs.String("ablation", "", "ablation to run: baselines, staleness, guard, batch, metrics, temporal or all")
		csvDir    = fs.String("csvdir", "", "also write each result as CSV into this directory")
		replicate = fs.Int("replicate", 0, "replicate Fig 12 over N seeds (robustness)")

		workers    = fs.Int("workers", 0, "parallel sweep/ablation workers (0 = GOMAXPROCS; 1 = serial)")
		shards     = fs.Int("shards", 0, "association-domain shards per simulated controller (<=1 = one shard; assignments are shard-count independent)")
		progress   = fs.Bool("progress", false, "report per-cell progress to stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof and Prometheus /metrics on this address (e.g. localhost:6060)")
		obsPath    = fs.String("obs", "", `write observability counters/timers as JSON to this file ("-" = stdout)`)

		flightDir   = fs.String("flight-dir", "", "flight-recorder ring directory (empty = off); decode with s3diag")
		flightEvery = fs.Duration("flight-every", time.Second, "flight recorder sampling period")
		flightMax   = fs.Int64("flight-max-bytes", flight.DefaultMaxBytes, "flight ring disk budget in bytes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*all && *fig == 0 && *ablation == "" && *replicate == 0 {
		return errors.New("nothing to do: pass -all, -fig N, -ablation <name> or -replicate N")
	}

	stopProfiling, err := obs.StartProfiling(obs.ProfileConfig{
		CPUFile: *cpuprofile, MemFile: *memprofile, HTTPAddr: *pprofAddr,
	})
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiling(); perr != nil && err == nil {
			err = perr
		}
		if *obsPath != "" {
			if oerr := writeObs(*obsPath, out); oerr != nil && err == nil {
				err = oerr
			}
		}
	}()
	if *flightDir != "" {
		rec, ferr := flight.Start(flight.Options{
			Dir:      *flightDir,
			Every:    *flightEvery,
			MaxBytes: *flightMax,
		})
		if ferr != nil {
			return ferr
		}
		defer func() {
			if serr := rec.Stop(); serr != nil && err == nil {
				err = serr
			}
		}()
	}

	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}

	cfg := synth.DefaultConfig()
	cfg.Seed = *seed
	cfg.Users = *users
	cfg.Buildings = *buildings
	cfg.APsPerBuilding = *aps
	cfg.Days = *days

	var data *experiments.Data
	switch {
	case *generate:
		data, err = experiments.Prepare(cfg, *trainDays)
	case *tracePath != "":
		var tr *trace.Trace
		tr, err = trace.LoadFile(*tracePath)
		if err == nil {
			data, err = experiments.PrepareTrace(tr, cfg, *trainDays)
		}
	default:
		return errors.New("pass -trace <file> or -generate")
	}
	if err != nil {
		return err
	}
	data.Workers = *workers
	data.Shards = *shards
	data.Progress = progressW
	fmt.Fprintf(out, "prepared: %d training sessions, %d test sessions\n\n",
		len(data.Train.Sessions), len(data.Test.Sessions))

	runFig := func(n int) bool { return *all || *fig == n }

	writeCSV := func(name string, result interface{ WriteCSV(io.Writer) error }) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return result.WriteCSV(f)
	}

	if runFig(10) {
		res, err := experiments.Fig10(data, nil, nil)
		if err != nil {
			return fmt.Errorf("fig 10: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig10", res); err != nil {
			return fmt.Errorf("fig 10 csv: %w", err)
		}
	}
	if runFig(11) {
		res, err := experiments.Fig11(data, nil, nil)
		if err != nil {
			return fmt.Errorf("fig 11: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig11", res); err != nil {
			return fmt.Errorf("fig 11 csv: %w", err)
		}
	}
	if runFig(12) {
		res, err := experiments.Fig12(data)
		if err != nil {
			return fmt.Errorf("fig 12: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		if err := writeCSV("fig12", res); err != nil {
			return fmt.Errorf("fig 12 csv: %w", err)
		}
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, "fig12_series.csv"))
			if err != nil {
				return err
			}
			err = res.WriteSeriesCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("fig 12 series csv: %w", err)
			}
		}
	}

	if *replicate > 0 {
		seeds := make([]int64, *replicate)
		for i := range seeds {
			seeds[i] = *seed + int64(i)
		}
		rcfg := runner.Config{Workers: *workers, Progress: progressW, Seed: *seed}
		res, err := experiments.ReplicateFig12(cfg, *trainDays, seeds, rcfg)
		if err != nil {
			return fmt.Errorf("replicate: %w", err)
		}
		fmt.Fprintln(out, res.Render())
	}

	return runAblations(data, *ablation, out)
}

func runAblations(data *experiments.Data, which string, out io.Writer) error {
	want := func(name string) bool { return which == name || which == "all" }
	if which == "" {
		return nil
	}
	ran := false
	if want("baselines") {
		res, err := experiments.AblationBaselines(data)
		if err != nil {
			return fmt.Errorf("ablation baselines: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		ran = true
	}
	if want("staleness") {
		res, err := experiments.AblationStaleness(data, nil)
		if err != nil {
			return fmt.Errorf("ablation staleness: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		ran = true
	}
	if want("guard") {
		res, err := experiments.AblationGuard(data, nil)
		if err != nil {
			return fmt.Errorf("ablation guard: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		ran = true
	}
	if want("metrics") {
		res, err := experiments.MetricPanel(data)
		if err != nil {
			return fmt.Errorf("ablation metrics: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		ran = true
	}
	if want("temporal") {
		res, err := experiments.AblationTemporal(data, nil)
		if err != nil {
			return fmt.Errorf("ablation temporal: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		ran = true
	}
	if want("batch") {
		res, err := experiments.AblationBatchWindow(data, nil)
		if err != nil {
			return fmt.Errorf("ablation batch: %w", err)
		}
		fmt.Fprintln(out, res.Render())
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown ablation %q (want baselines, staleness, guard, batch, metrics, temporal or all)", which)
	}
	return nil
}
