package main

import (
	"bytes"
	"strings"
	"testing"
)

func simArgs(extra ...string) []string {
	base := []string{
		"-generate", "-users", "120", "-buildings", "3", "-aps", "3",
		"-days", "10", "-train", "7",
	}
	return append(base, extra...)
}

func TestRunFig12(t *testing.T) {
	var buf bytes.Buffer
	if err := run(simArgs("-fig", "12"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 12") {
		t.Errorf("missing Fig 12 in output: %s", buf.String())
	}
}

func TestRunAblationGuard(t *testing.T) {
	var buf bytes.Buffer
	if err := run(simArgs("-ablation", "guard"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "balance guard") {
		t.Error("missing guard ablation output")
	}
}

func TestRunUnknownAblation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(simArgs("-ablation", "bogus"), &buf); err == nil {
		t.Error("unknown ablation should error")
	}
}

func TestRunNothingToDo(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-generate"}, &buf); err == nil {
		t.Error("no action should error")
	}
}

func TestRunNoInput(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "12"}, &buf); err == nil {
		t.Error("missing input should error")
	}
}
