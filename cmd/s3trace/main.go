// Command s3trace provides trace-file utilities: summarize, validate,
// slice a time window, and export sessions/flows as CSV.
//
// Usage:
//
//	s3trace -in campus.jsonl -summary
//	s3trace -in campus.jsonl -validate
//	s3trace -in campus.jsonl -slice-start 86400 -slice-end 172800 -out day2.jsonl
//	s3trace -in campus.jsonl -sessions-csv sessions.csv -flows-csv flows.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "s3trace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("s3trace", flag.ContinueOnError)
	var (
		in          = fs.String("in", "", "input trace (JSON-lines)")
		summary     = fs.Bool("summary", false, "print a descriptive summary")
		validate    = fs.Bool("validate", false, "validate every record")
		count       = fs.Bool("count", false, "stream-count records (no full load)")
		epoch       = fs.Int64("epoch", 0, "trace epoch for hour-of-day stats")
		sliceStart  = fs.Int64("slice-start", -1, "slice window start (Unix seconds)")
		sliceEnd    = fs.Int64("slice-end", -1, "slice window end (Unix seconds)")
		outPath     = fs.String("out", "", "output trace for -slice")
		sessionsCSV = fs.String("sessions-csv", "", "export sessions as CSV to this path")
		flowsCSV    = fs.String("flows-csv", "", "export flows as CSV to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return errors.New("pass -in <trace.jsonl>")
	}
	didSomething := false

	// Streaming count works without loading the file.
	if *count {
		sessions, flows, err := trace.CountRecords(*in)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "sessions: %d\nflows: %d\n", sessions, flows)
		didSomething = true
	}

	needLoad := *summary || *validate || *sliceStart >= 0 ||
		*sessionsCSV != "" || *flowsCSV != ""
	if !needLoad {
		if !didSomething {
			return errors.New("nothing to do: pass -summary, -validate, -count, -slice-start/-slice-end or a CSV export")
		}
		return nil
	}

	tr, err := trace.LoadFile(*in)
	if err != nil {
		return err
	}

	if *validate {
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("invalid trace: %w", err)
		}
		fmt.Fprintln(out, "trace is valid")
	}
	if *summary {
		fmt.Fprint(out, tr.Summarize(*epoch).String())
		hour, n := tr.Summarize(*epoch).PeakArrivalHour()
		fmt.Fprintf(out, "peak arrival hour: %02d:00 (%d arrivals)\n", hour, n)
	}
	if *sliceStart >= 0 || *sliceEnd >= 0 {
		if *sliceStart < 0 || *sliceEnd < 0 || *outPath == "" {
			return errors.New("slicing needs -slice-start, -slice-end and -out")
		}
		sliced := tr.Slice(*sliceStart, *sliceEnd)
		if err := trace.SaveFile(*outPath, sliced); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d sessions, %d flows)\n",
			*outPath, len(sliced.Sessions), len(sliced.Flows))
	}
	if *sessionsCSV != "" {
		if err := writeCSVFile(*sessionsCSV, func(w io.Writer) error {
			return trace.WriteSessionsCSV(w, tr.Sessions)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *sessionsCSV)
	}
	if *flowsCSV != "" {
		if err := writeCSVFile(*flowsCSV, func(w io.Writer) error {
			return trace.WriteFlowsCSV(w, tr.Flows)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *flowsCSV)
	}
	return nil
}

func writeCSVFile(path string, write func(io.Writer) error) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return write(f)
}
