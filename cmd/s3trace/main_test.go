package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 40
	cfg.Buildings = 2
	cfg.APsPerBuilding = 2
	cfg.Days = 3
	tr, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if err := trace.SaveFile(path, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummaryValidateCount(t *testing.T) {
	path := writeTestTrace(t)
	var buf bytes.Buffer
	if err := run([]string{"-in", path, "-summary", "-validate", "-count"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace is valid", "sessions:", "peak arrival hour"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSliceAndCSVExports(t *testing.T) {
	path := writeTestTrace(t)
	dir := t.TempDir()
	sliced := filepath.Join(dir, "slice.jsonl")
	sessions := filepath.Join(dir, "s.csv")
	flows := filepath.Join(dir, "f.csv")
	var buf bytes.Buffer
	err := run([]string{
		"-in", path,
		"-slice-start", "0", "-slice-end", "86400", "-out", sliced,
		"-sessions-csv", sessions, "-flows-csv", flows,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.LoadFile(sliced)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) == 0 {
		t.Error("sliced trace empty")
	}
	for _, s := range got.Sessions {
		if s.ConnectAt >= 86400 {
			t.Errorf("session outside slice: %+v", s)
		}
	}
	for _, p := range []string{sessions, flows} {
		if _, err := trace.LoadFile(p); err == nil {
			t.Errorf("%s should not be a jsonl trace", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing -in should error")
	}
	path := writeTestTrace(t)
	if err := run([]string{"-in", path}, &buf); err == nil {
		t.Error("no action should error")
	}
	if err := run([]string{"-in", path, "-slice-start", "5"}, &buf); err == nil {
		t.Error("partial slice args should error")
	}
	if err := run([]string{"-in", "/nope.jsonl", "-summary"}, &buf); err == nil {
		t.Error("missing file should error")
	}
}
