package s3wlan_test

// Link check: every relative markdown link in the user-facing docs must
// point at a file or directory that exists in the repository, so docs
// renames can't silently orphan references.

import (
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var docFiles = []string{
	"README.md",
	"DESIGN.md",
	"EXPERIMENTS.md",
	"docs/ARCHITECTURE.md",
	"docs/OBSERVABILITY.md",
}

// mdLink matches inline links [text](target), skipping images by
// requiring the match not be preceded by "!" (checked in code).
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocLinksResolve(t *testing.T) {
	for _, doc := range docFiles {
		raw, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("doc %s listed in docFiles but unreadable: %v", doc, err)
			continue
		}
		text := string(raw)
		for _, m := range mdLink.FindAllStringSubmatchIndex(text, -1) {
			target := text[m[2]:m[3]]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external; not checked offline
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // intra-document anchor
			}
			if unescaped, err := url.PathUnescape(target); err == nil {
				target = unescaped
			}
			resolved := filepath.Join(filepath.Dir(doc), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q but %s does not exist", doc, target, resolved)
			}
		}
	}
}
