package s3wlan_test

import (
	"fmt"
	"log"

	s3wlan "github.com/s3wlan/s3wlan"
)

// Example demonstrates the full S³ workflow: generate (or load) a trace,
// learn sociality from history, and place live traffic with the S³ policy.
func Example() {
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 80
	cfg.Buildings = 2
	cfg.APsPerBuilding = 2
	cfg.Days = 8

	tr, _, err := s3wlan.GenerateCampus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	train, test := tr.SplitAt(cfg.Epoch + 6*86400)

	model, err := s3wlan.TrainModel(train, cfg.Epoch, s3wlan.DefaultSocietyConfig())
	if err != nil {
		log.Fatal(err)
	}
	selector, err := s3wlan.NewSelector(model, s3wlan.DefaultSelectorConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := s3wlan.Simulate(test, s3wlan.SimConfig{
		SelectorFor: func(s3wlan.ControllerID, []s3wlan.AP) s3wlan.Policy {
			return selector
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy:", res.Policy)
	fmt.Println("domains:", len(res.Controllers()))
	// Output:
	// policy: S3
	// domains: 2
}

// ExampleBalanceIndex shows the Chiu–Jain balance index on a load vector.
func ExampleBalanceIndex() {
	even, _ := s3wlan.BalanceIndex([]float64{10, 10, 10, 10})
	skewed, _ := s3wlan.BalanceIndex([]float64{40, 0, 0, 0})
	fmt.Printf("even: %.2f skewed: %.2f\n", even, skewed)
	// Output:
	// even: 1.00 skewed: 0.25
}

// ExampleNormalizedBalanceIndex maps the index onto [0, 1].
func ExampleNormalizedBalanceIndex() {
	v, _ := s3wlan.NormalizedBalanceIndex([]float64{40, 0, 0, 0})
	fmt.Printf("%.2f\n", v)
	// Output:
	// 0.00
}

// ExampleNewOnlineLearner shows the incremental learner observing an
// association lifecycle and scoring the pair afterwards.
func ExampleNewOnlineLearner() {
	cfg := s3wlan.DefaultSocietyConfig()
	cfg.MinEncounters = 1
	learner := s3wlan.NewOnlineLearner(cfg)

	// Two users share an AP for an hour and leave together.
	learner.Connect("alice", "ap-1", 0)
	learner.Connect("bob", "ap-1", 60)
	if err := learner.Disconnect("alice", "ap-1", 3600); err != nil {
		log.Fatal(err)
	}
	if err := learner.Disconnect("bob", "ap-1", 3630); err != nil {
		log.Fatal(err)
	}

	model := learner.Model()
	fmt.Printf("θ(alice, bob) = %.1f\n", model.Index("alice", "bob"))
	// Output:
	// θ(alice, bob) = 1.0
}
