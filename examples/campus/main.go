// Campus: a university-scale scenario sweeping the α coefficient of the
// social relation index θ = P(L|E) + α·T, reproducing the spirit of the
// paper's Fig. 10/11 parameter study on a single generated campus.
package main

import (
	"fmt"
	"log"

	s3wlan "github.com/s3wlan/s3wlan"
	"github.com/s3wlan/s3wlan/internal/experiments"
)

func main() {
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 500
	cfg.Buildings = 6
	cfg.APsPerBuilding = 4
	cfg.Days = 21

	data, err := experiments.Prepare(cfg, 18)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus: %d train sessions, %d test sessions, %d domains\n",
		len(data.Train.Sessions), len(data.Test.Sessions),
		len(data.Test.Topology.Controllers()))

	llfRes, err := data.RunLLF()
	if err != nil {
		log.Fatal(err)
	}
	llfMean, err := experiments.MeanBalance(llfRes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLLF baseline: %.4f\n\n", llfMean)

	fmt.Println("α sweep (co-leave window fixed at the paper's 5 minutes):")
	for _, alpha := range []float64{0, 0.1, 0.3, 0.5, 1.0} {
		societyCfg := s3wlan.DefaultSocietyConfig()
		societyCfg.Alpha = alpha
		res, err := data.RunS3(societyCfg, s3wlan.DefaultSelectorConfig())
		if err != nil {
			log.Fatal(err)
		}
		mean, err := experiments.MeanBalance(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  α = %.1f: balance %.4f (gain %+.1f%%)\n",
			alpha, mean, (mean-llfMean)/llfMean*100)
	}
}
