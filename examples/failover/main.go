// Failover: inject an AP outage halfway through the test window and watch
// both policies ride through it. S³ never migrates users — stations on
// the failed AP simply leave, and the policy steers new arrivals to the
// survivors.
package main

import (
	"fmt"
	"log"

	s3wlan "github.com/s3wlan/s3wlan"
	"github.com/s3wlan/s3wlan/internal/experiments"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

func main() {
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 250
	cfg.Buildings = 3
	cfg.APsPerBuilding = 4
	cfg.Days = 14

	data, err := experiments.Prepare(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}

	model, err := s3wlan.TrainModel(data.Train, cfg.Epoch, s3wlan.DefaultSocietyConfig())
	if err != nil {
		log.Fatal(err)
	}
	selector, err := s3wlan.NewSelector(model, s3wlan.DefaultSelectorConfig())
	if err != nil {
		log.Fatal(err)
	}

	start, end := data.Test.TimeRange()
	failed := data.Test.Topology.APs[0]
	outage := wlan.Failure{AP: failed.ID, From: (start + end) / 2, To: end}
	fmt.Printf("outage: %s down for the second half of the test window\n\n", failed.ID)

	for _, policy := range []s3wlan.Policy{selector, s3wlan.LLF{}} {
		res, err := s3wlan.Simulate(data.Test, s3wlan.SimConfig{
			SelectorFor: func(s3wlan.ControllerID, []s3wlan.AP) s3wlan.Policy {
				return policy
			},
			DemandFor: func(s s3wlan.Session) float64 {
				return data.Demands.Demand(s.User)
			},
			Failures:                  []wlan.Failure{outage},
			LoadReportIntervalSeconds: 300,
			BatchWindowSeconds:        60,
		})
		if err != nil {
			log.Fatal(err)
		}
		mean, err := experiments.MeanBalance(res)
		if err != nil {
			log.Fatal(err)
		}
		stats := res.Stats()
		fmt.Printf("%-4s balance %.4f — %d assignments, peak concurrency %d\n",
			res.Policy, mean, stats.Assignments, stats.PeakConcurrency)
		// Confirm nobody was placed on the dead AP during the outage.
		for _, c := range res.Controllers() {
			for _, a := range res.Domains[c].Assigned {
				if a.AP == failed.ID && a.Session.ConnectAt >= outage.From {
					log.Fatalf("%s placed a session on the failed AP", res.Policy)
				}
			}
		}
	}
	fmt.Println("\nno policy placed arrivals on the failed AP during the outage")
}
