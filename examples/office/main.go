// Office: an enterprise-office scenario — meeting-heavy churn, a stable
// resident workforce — comparing S³ against the full baseline panel and
// reporting behaviour through the departure peaks.
package main

import (
	"fmt"
	"log"

	s3wlan "github.com/s3wlan/s3wlan"
	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/experiments"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

func main() {
	// An office: two buildings, dense APs, strong meeting culture (three
	// scheduled activities a day), a large resident base at desks.
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 300
	cfg.Buildings = 2
	cfg.APsPerBuilding = 6
	cfg.Days = 14
	cfg.ActivitiesPerDay = 3
	cfg.ResidentFraction = 0.3
	cfg.GroupSizeMin = 4
	cfg.GroupSizeMax = 10

	data, err := experiments.Prepare(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("office: %d meetings-driven sessions to place\n\n",
		len(data.Test.Sessions))

	type row struct {
		name string
		mean float64
		peak float64
	}
	var rows []row

	evaluate := func(name string, res *wlan.Result) {
		mean, err := experiments.MeanBalance(res)
		if err != nil {
			log.Fatal(err)
		}
		peakVals, err := experiments.BalancesByHourFilter(res, cfg.Epoch,
			func(h int) bool { return experiments.LeavePeakHours[h] })
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name, mean, stats.Mean(peakVals)})
	}

	s3Res, err := data.RunS3(s3wlan.DefaultSocietyConfig(), s3wlan.DefaultSelectorConfig())
	if err != nil {
		log.Fatal(err)
	}
	evaluate("S3", s3Res)

	panel := map[string]func(trace.ControllerID, []trace.AP) wlan.Selector{
		"LLF":        func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.LLF{} },
		"LeastUsers": func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.LeastUsers{} },
		"RSSI":       func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.StrongestRSSI{} },
		"Random":     func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.NewRandom(1) },
	}
	for _, name := range []string{"LLF", "LeastUsers", "RSSI", "Random"} {
		res, err := data.RunSelector(panel[name])
		if err != nil {
			log.Fatal(err)
		}
		evaluate(name, res)
	}

	fmt.Printf("%-12s %-12s %-12s\n", "policy", "overall", "leave peaks")
	for _, r := range rows {
		fmt.Printf("%-12s %-12.4f %-12.4f\n", r.name, r.mean, r.peak)
	}
}
