// Onlinelearning: the paper's future-work deployment mode — a controller
// that learns sociality continuously instead of batch re-training. The
// example replays a campus trace as a live event stream through the
// incremental learner and shows its model converging to the batch-trained
// one.
package main

import (
	"fmt"
	"log"
	"sort"

	s3wlan "github.com/s3wlan/s3wlan"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

func main() {
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 200
	cfg.Buildings = 4
	cfg.APsPerBuilding = 3
	cfg.Days = 14
	tr, _, err := s3wlan.GenerateCampus(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Batch model: the reference.
	batch, err := s3wlan.TrainModel(tr, cfg.Epoch, s3wlan.DefaultSocietyConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Online learner: feed the same trace as a stream of connect and
	// disconnect events, in time order.
	learnerCfg := s3wlan.DefaultSocietyConfig()
	learnerCfg.HistoryDays = 0
	learner := society.NewOnlineLearner(learnerCfg)
	learner.SetTypes(batch.Types, batch.TypeMatrix) // types from periodic batch clustering

	type event struct {
		at      int64
		user    trace.UserID
		ap      trace.APID
		connect bool
	}
	events := make([]event, 0, 2*len(tr.Sessions))
	for _, s := range tr.Sessions {
		events = append(events,
			event{at: s.ConnectAt, user: s.User, ap: s.AP, connect: true},
			event{at: s.DisconnectAt, user: s.User, ap: s.AP, connect: false},
		)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return events[i].connect && !events[j].connect // connects first
	})

	days := 0
	for _, ev := range events {
		if d := int((ev.at - cfg.Epoch) / 86400); d > days {
			days = d
			if days%4 == 0 {
				report(learner, batch, days)
			}
		}
		if ev.connect {
			learner.Connect(ev.user, ev.ap, ev.at)
		} else if err := learner.Disconnect(ev.user, ev.ap, ev.at); err != nil {
			log.Fatal(err)
		}
	}
	report(learner, batch, cfg.Days)

	// The converged online model drives the same S³ selector.
	if _, err := s3wlan.NewSelector(learner.Model(), s3wlan.DefaultSelectorConfig()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nonline model plugged into the S3 selector — no batch retraining needed")
}

// report prints how well the online model agrees with the batch one on
// the batch model's strongest pairs.
func report(learner *society.OnlineLearner, batch *society.Model, day int) {
	online := learner.Model()
	top := batch.TopPairs(50)
	if len(top) == 0 {
		return
	}
	agree := 0
	for _, p := range top {
		// Agreement: the online model also rates the pair as close.
		if online.Index(p.A, p.B) > 0.3 {
			agree++
		}
	}
	_, pairs, coPairs := learner.Stats()
	fmt.Printf("day %2d: online knows %5d pairs (%4d co-leaving); agrees on %2d/%d of batch's top pairs\n",
		day, pairs, coPairs, agree, len(top))
}
