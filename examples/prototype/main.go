// Prototype: the paper's small-scale prototype as a runnable example — an
// S³ controller over loopback TCP, AP agents reporting load, and stations
// associating, sending traffic, and co-leaving.
package main

import (
	"fmt"
	"log"
	"time"

	s3wlan "github.com/s3wlan/s3wlan"
	"github.com/s3wlan/s3wlan/internal/protocol"
)

const timeout = 5 * time.Second

func main() {
	// Train an S³ model on a generated history so the controller has
	// social knowledge (a real deployment trains on its own logs).
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 100
	cfg.Buildings = 2
	cfg.APsPerBuilding = 2
	cfg.Days = 10
	history, truth, err := s3wlan.GenerateCampus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	model, err := s3wlan.TrainModel(history, cfg.Epoch, s3wlan.DefaultSocietyConfig())
	if err != nil {
		log.Fatal(err)
	}
	selector, err := s3wlan.NewSelector(model, s3wlan.DefaultSelectorConfig())
	if err != nil {
		log.Fatal(err)
	}

	ctl, err := s3wlan.NewController(selector)
	if err != nil {
		log.Fatal(err)
	}
	addr, err := ctl.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	fmt.Println("S3 controller listening on", addr)

	// Two APs come online.
	for _, ap := range []s3wlan.APID{"office-ap-1", "office-ap-2"} {
		agent, err := protocol.DialAP(addr, ap, 10e6, timeout)
		if err != nil {
			log.Fatal(err)
		}
		defer agent.Close()
	}

	// Pick a known social group from the planted ground truth and walk
	// its members through association: S³ should spread them out.
	group := truth.Groups[0]
	if len(group) > 4 {
		group = group[:4]
	}
	fmt.Printf("associating %d members of one social group\n", len(group))
	perAP := map[s3wlan.APID]int{}
	for _, u := range group {
		st, err := protocol.DialStation(addr, u, timeout)
		if err != nil {
			log.Fatal(err)
		}
		defer st.Close()
		ap, err := st.Associate(100e3)
		if err != nil {
			log.Fatal(err)
		}
		perAP[ap]++
		fmt.Printf("  %s -> %s\n", u, ap)
		if err := st.SendTraffic(2 << 20); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\ngroup dispersal per AP:")
	for ap, n := range perAP {
		fmt.Printf("  %s: %d members\n", ap, n)
	}
	fmt.Println("\nthe group co-leaves; per-AP load drops evenly — the S³ property")
}
