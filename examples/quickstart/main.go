// Quickstart: generate a small campus, learn sociality from four weeks of
// history, and compare S³ against LLF on the following days.
package main

import (
	"fmt"
	"log"

	s3wlan "github.com/s3wlan/s3wlan"
)

func main() {
	// A small campus: 200 users, 4 buildings with 3 APs each, 14 days.
	cfg := s3wlan.DefaultCampusConfig()
	cfg.Users = 200
	cfg.Buildings = 4
	cfg.APsPerBuilding = 3
	cfg.Days = 14

	tr, truth, err := s3wlan.GenerateCampus(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d sessions from %d users in %d social groups\n",
		len(tr.Sessions), len(tr.Users()), len(truth.Groups))

	// Train on the first 11 days, test on the last 3 (the paper's
	// protocol, scaled down).
	cut := cfg.Epoch + 11*86400
	train, test := tr.SplitAt(cut)

	model, err := s3wlan.TrainModel(train, cfg.Epoch, s3wlan.DefaultSocietyConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned %d close pair relationships across %d usage types\n",
		len(model.PairProb), model.K())

	selector, err := s3wlan.NewSelector(model, s3wlan.DefaultSelectorConfig())
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, policy s3wlan.Policy) float64 {
		res, err := s3wlan.Simulate(test, s3wlan.SimConfig{
			SelectorFor: func(s3wlan.ControllerID, []s3wlan.AP) s3wlan.Policy {
				return policy
			},
			BatchWindowSeconds:        60,
			LoadReportIntervalSeconds: 300,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		var n int
		for _, c := range res.Controllers() {
			series, err := res.LoadSeries(c)
			if err != nil {
				log.Fatal(err)
			}
			for _, v := range series.ActiveValues() {
				sum += v
				n++
			}
		}
		mean := sum / float64(n)
		fmt.Printf("%-4s mean normalized balance index: %.4f\n", name, mean)
		return mean
	}

	s3 := run("S3", selector)
	llf := run("LLF", s3wlan.LLF{})
	fmt.Printf("balancing gain: %+.1f%%\n", (s3-llf)/llf*100)
}
