module github.com/s3wlan/s3wlan

go 1.22
