package s3wlan_test

import (
	"path/filepath"
	"reflect"
	"testing"

	s3wlan "github.com/s3wlan/s3wlan"
	"github.com/s3wlan/s3wlan/internal/analysis"
	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/experiments"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// integrationCampus is shared by the integration tests.
func integrationCampus() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 150
	cfg.Buildings = 3
	cfg.APsPerBuilding = 3
	cfg.Days = 12
	return cfg
}

// TestFullPipelineThroughDisk exercises generate → save → load → analyze →
// train → persist model → reload → simulate, all through serialized
// artifacts, as a deployment would.
func TestFullPipelineThroughDisk(t *testing.T) {
	dir := t.TempDir()
	cfg := integrationCampus()

	// Generate and persist the trace.
	tr, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "campus.jsonl")
	if err := trace.SaveFile(tracePath, tr); err != nil {
		t.Fatal(err)
	}

	// Reload and verify identity.
	loaded, err := trace.LoadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, loaded) {
		t.Fatal("trace round trip mismatch")
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}

	// Measurement analyses run on the loaded trace.
	if _, err := analysis.Fig2(loaded, cfg.Epoch); err != nil {
		t.Fatalf("fig2: %v", err)
	}
	ps := apps.BuildProfiles(loaded.Flows, cfg.Epoch, apps.NewClassifier())
	fig8, err := analysis.Fig8(ps, 4, 1)
	if err != nil {
		t.Fatalf("fig8: %v", err)
	}
	if _, err := analysis.Table1(loaded, fig8, 300, 600); err != nil {
		t.Fatalf("table1: %v", err)
	}

	// Train, persist and reload the sociality model.
	cut := cfg.Epoch + 9*86400
	train, test := loaded.SplitAt(cut)
	trainPS := apps.BuildProfiles(train.Flows, cfg.Epoch, apps.NewClassifier())
	model, err := society.Train(train, trainPS, society.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	modelPath := filepath.Join(dir, "model.json")
	if err := society.SaveModel(modelPath, model); err != nil {
		t.Fatal(err)
	}
	reloaded, err := society.LoadModel(modelPath)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate with the reloaded model; result must match the original.
	runWith := func(m *society.Model) *wlan.Result {
		sel, err := core.NewSelector(m, core.DefaultSelectorConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := wlan.Simulate(test, wlan.Config{
			SelectorFor: func(trace.ControllerID, []trace.AP) wlan.Selector {
				return sel
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resA := runWith(model)
	resB := runWith(reloaded)
	for _, c := range resA.Controllers() {
		a, b := resA.Domains[c], resB.Domains[c]
		if !reflect.DeepEqual(a.Assigned, b.Assigned) {
			t.Fatalf("domain %s: persisted model changes behaviour", c)
		}
	}
}

// TestSimulationDeterminism verifies that the entire pipeline is
// reproducible: same seed, same assignments.
func TestSimulationDeterminism(t *testing.T) {
	run := func() *wlan.Result {
		d, err := experiments.Prepare(integrationCampus(), 9)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for _, c := range a.Controllers() {
		if !reflect.DeepEqual(a.Domains[c].Assigned, b.Domains[c].Assigned) {
			t.Fatalf("domain %s: nondeterministic assignments", c)
		}
	}
}

// TestConservationEveryArrivalAssignedOnce checks the simulator invariant
// that every session in the test trace is placed exactly once.
func TestConservationEveryArrivalAssignedOnce(t *testing.T) {
	d, err := experiments.Prepare(integrationCampus(), 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.RunLLF()
	if err != nil {
		t.Fatal(err)
	}
	placed := 0
	for _, c := range res.Controllers() {
		placed += len(res.Domains[c].Assigned)
	}
	if placed != len(d.Test.Sessions) {
		t.Errorf("placed %d sessions, trace has %d", placed, len(d.Test.Sessions))
	}
	// Served volume is conserved too (no failures injected).
	var want, got int64
	for _, s := range d.Test.Sessions {
		want += s.Bytes
	}
	for _, c := range res.Controllers() {
		for _, a := range res.Domains[c].Assigned {
			got += a.Session.Bytes
		}
	}
	if want != got {
		t.Errorf("served bytes = %d, want %d", got, want)
	}
}

// TestS3SurvivesAPFailure injects an AP outage mid-trace and verifies the
// S³ policy keeps assigning (to the surviving APs) without error.
func TestS3SurvivesAPFailure(t *testing.T) {
	d, err := experiments.Prepare(integrationCampus(), 9)
	if err != nil {
		t.Fatal(err)
	}
	model, err := society.Train(d.Train, d.Profiles, society.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := core.NewSelector(model, core.DefaultSelectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	start, end := d.Test.TimeRange()
	failedAP := d.Test.Topology.APs[0].ID
	mid := (start + end) / 2
	res, err := wlan.Simulate(d.Test, wlan.Config{
		SelectorFor: func(trace.ControllerID, []trace.AP) wlan.Selector {
			return sel
		},
		Failures: []wlan.Failure{{AP: failedAP, From: mid, To: end}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No session may be assigned to the failed AP during the outage.
	for _, c := range res.Controllers() {
		for _, a := range res.Domains[c].Assigned {
			if a.AP == failedAP && a.Session.ConnectAt >= mid {
				t.Fatalf("session assigned to failed AP at t=%d",
					a.Session.ConnectAt)
			}
		}
	}
}

// TestPublicFacadeMatchesInternals guards the alias surface: values built
// through the facade are the same types the internal packages produce.
func TestPublicFacadeMatchesInternals(t *testing.T) {
	cfg := s3wlan.DefaultCampusConfig()
	var internalCfg synth.Config = cfg // compile-time identity
	if internalCfg.Users != cfg.Users {
		t.Fatal("unreachable")
	}
	var sel s3wlan.Policy = s3wlan.LLF{}
	if sel.Name() != "LLF" {
		t.Errorf("facade LLF name = %q", sel.Name())
	}
}
