package analysis

import (
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// testTrace generates one small campus shared by the analysis tests.
func testTrace(t *testing.T) (*trace.Trace, *apps.ProfileStore) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Users = 200
	cfg.Buildings = 5
	cfg.APsPerBuilding = 3
	cfg.Days = 12
	tr, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps := apps.BuildProfiles(tr.Flows, cfg.Epoch, apps.NewClassifier())
	return tr, ps
}

func TestFig2(t *testing.T) {
	tr, _ := testTrace(t)
	res, err := Fig2(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AverageCDF.Len() == 0 {
		t.Fatal("no average-hours samples")
	}
	if res.PeakCDF.Len() == 0 {
		t.Fatal("no peak-hours samples")
	}
	if res.UnbalancedAverage < 0 || res.UnbalancedAverage > 1 {
		t.Errorf("UnbalancedAverage = %v", res.UnbalancedAverage)
	}
	if !strings.Contains(res.Render(), "Fig 2") {
		t.Error("Render missing title")
	}
}

func TestFig2EmptyTrace(t *testing.T) {
	if _, err := Fig2(&trace.Trace{}, 0); err == nil {
		t.Error("empty trace should error")
	}
}

func TestFig3(t *testing.T) {
	tr, _ := testTrace(t)
	res, err := Fig3(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range []int64{300, 600, 1200} {
		if res.CDFBySubPeriod[sp] == nil {
			t.Fatalf("missing sub-period %d", sp)
		}
	}
	// The paper's observation: with fixed users the balance barely moves.
	if res.CDFBySubPeriod[600].Len() > 0 && res.FracSmall10Min < 0.5 {
		t.Errorf("FracSmall10Min = %v, expected most variance to be small",
			res.FracSmall10Min)
	}
	if !strings.Contains(res.Render(), "Fig 3") {
		t.Error("Render missing title")
	}
}

func TestFig4(t *testing.T) {
	tr, _ := testTrace(t)
	res, err := Fig4(tr, 0, 1, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) == 0 || len(res.Times) != len(res.UserBalance) ||
		len(res.Times) != len(res.LoadBalance) {
		t.Fatalf("series lengths: %d/%d/%d",
			len(res.Times), len(res.UserBalance), len(res.LoadBalance))
	}
	// The paper's argument: the two series track each other.
	if res.Correlation <= 0 {
		t.Errorf("correlation = %v, want positive", res.Correlation)
	}
	if !strings.Contains(res.Render(), "Fig 4") {
		t.Error("Render missing title")
	}
}

func TestFig4NoData(t *testing.T) {
	tr, _ := testTrace(t)
	if _, err := Fig4(tr, 0, 9999, 600); err == nil {
		t.Error("day without sessions should error")
	}
	if _, err := Fig4(&trace.Trace{}, 0, 0, 600); err == nil {
		t.Error("empty trace should error")
	}
}

func TestFig5(t *testing.T) {
	tr, _ := testTrace(t)
	res, err := Fig5(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := res.CDFByWindow[600]
	if c == nil || c.Len() == 0 {
		t.Fatal("no 10-minute-window samples")
	}
	// Strong sociality planted: median co-leave fraction should be
	// well above zero.
	if res.MedianFraction10Min <= 0.1 {
		t.Errorf("median co-leave fraction = %v, want > 0.1 (social trace)",
			res.MedianFraction10Min)
	}
	if !strings.Contains(res.Render(), "Fig 5") {
		t.Error("Render missing title")
	}
}

func TestFig6(t *testing.T) {
	_, ps := testTrace(t)
	res, err := Fig6(ps, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ages) != 8 {
		t.Fatalf("ages = %v", res.Ages)
	}
	// Cumulative history should be at least as informative as a single
	// old day once a few days accumulate.
	last := len(res.Ages) - 1
	if res.CumulativeNMI[last] < res.PointNMI[last]-0.05 {
		t.Errorf("cumulative NMI (%v) should dominate point NMI (%v)",
			res.CumulativeNMI[last], res.PointNMI[last])
	}
	if res.PlateauAge <= 0 {
		t.Errorf("PlateauAge = %d", res.PlateauAge)
	}
	if !strings.Contains(res.Render(), "Fig 6") {
		t.Error("Render missing title")
	}
}

func TestFig6Errors(t *testing.T) {
	if _, err := Fig6(nil, 5); err == nil {
		t.Error("nil profiles should error")
	}
	empty := apps.BuildProfiles(nil, 0, apps.NewClassifier())
	if _, err := Fig6(empty, 5); err == nil {
		t.Error("empty profiles should error")
	}
}

func TestFig7FindsFourTypes(t *testing.T) {
	_, ps := testTrace(t)
	res, err := Fig7(ps, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != 8 {
		t.Fatalf("curve = %d points", len(res.Curve))
	}
	// Four archetypes planted; gap statistic should find ≈4.
	if res.OptimalK < 3 || res.OptimalK > 5 {
		t.Errorf("OptimalK = %d, want ≈4", res.OptimalK)
	}
	if !strings.Contains(res.Render(), "Fig 7") {
		t.Error("Render missing title")
	}
}

func TestFig8(t *testing.T) {
	_, ps := testTrace(t)
	res, err := Fig8(ps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || len(res.Centroids) != 4 {
		t.Fatalf("K = %d", res.K)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(res.Labels) {
		t.Errorf("sizes sum %d != labels %d", total, len(res.Labels))
	}
	// Each centroid is a distribution over six realms.
	for g, c := range res.Centroids {
		if len(c) != apps.NumRealms {
			t.Fatalf("centroid %d has dim %d", g, len(c))
		}
		var sum float64
		for _, v := range c {
			sum += v
		}
		if sum < 0.9 || sum > 1.1 {
			t.Errorf("centroid %d sums to %v", g, sum)
		}
	}
	if !strings.Contains(res.Render(), "Fig 8") {
		t.Error("Render missing title")
	}
}

func TestTable1DiagonalDominant(t *testing.T) {
	tr, ps := testTrace(t)
	fig8, err := Fig8(ps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Table1(tr, fig8, 300, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 {
		t.Fatalf("K = %d", res.K)
	}
	// The generator plants archetype-homogeneous groups, so same-type
	// pairs co-leave more: the diagonal should dominate.
	if !res.DiagonalDominant {
		t.Errorf("matrix not diagonal dominant: %v", res.Matrix)
	}
	if !strings.Contains(res.Render(), "Table I") {
		t.Error("Render missing title")
	}
}

func TestTable1Errors(t *testing.T) {
	tr, ps := testTrace(t)
	fig8, err := Fig8(ps, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Table1(&trace.Trace{}, fig8, 300, 600); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := Table1(tr, nil, 300, 600); err == nil {
		t.Error("nil clustering should error")
	}
}

func TestProfilePointsErrors(t *testing.T) {
	if _, _, err := ProfilePoints(nil); err == nil {
		t.Error("nil store should error")
	}
}

func TestPlateauAge(t *testing.T) {
	ages := []int{1, 2, 3, 4}
	// Improvement stops after age 2.
	curve := []float64{0.4, 0.5, 0.501, 0.502}
	if got := plateauAge(ages, curve); got != 2 {
		t.Errorf("plateauAge = %d, want 2", got)
	}
	// Monotone improvement: last age.
	curve = []float64{0.1, 0.2, 0.4, 0.8}
	if got := plateauAge(ages, curve); got != 4 {
		t.Errorf("plateauAge = %d, want 4", got)
	}
	if got := plateauAge(nil, nil); got != 0 {
		t.Errorf("plateauAge empty = %d, want 0", got)
	}
}

func TestBuildSocialReport(t *testing.T) {
	tr, ps := testTrace(t)
	cut := int64(9 * 86400)
	train, _ := tr.SplitAt(cut)
	trainPS := ps // full-trace profiles are fine for the report test
	model, err := society.Train(train, trainPS, society.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := BuildSocialReport(model, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Graph.Vertices == 0 || rep.Graph.Edges == 0 {
		t.Fatalf("empty social graph: %+v", rep.Graph)
	}
	// The planted group structure is cliquish: high clustering.
	if rep.Graph.ClusteringCoefficient < 0.3 {
		t.Errorf("clustering = %v, want cliquish", rep.Graph.ClusteringCoefficient)
	}
	if len(rep.TopPairs) == 0 {
		t.Error("no top pairs")
	}
	if !strings.Contains(rep.Render(), "Social graph") {
		t.Error("Render missing title")
	}
	if _, err := BuildSocialReport(nil, 0.3); err == nil {
		t.Error("nil model should error")
	}
}
