package analysis

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// CSV exports: each figure result writes a tidy table suitable for
// external plotting tools. Columns are stable and documented per method.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return fmt.Errorf("analysis: write CSV: %w", err)
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

func cdfRows(series string, c *stats.CDF, n int) [][]string {
	var rows [][]string
	for _, p := range c.Points(n) {
		rows = append(rows, []string{series, f(p.X), f(p.Y)})
	}
	return rows
}

// WriteCSV emits columns: series (peak|average), x (balance index),
// y (cumulative fraction).
func (r *Fig2Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"series", "balance_index", "cdf"}}
	rows = append(rows, cdfRows("peak", r.PeakCDF, 50)...)
	rows = append(rows, cdfRows("average", r.AverageCDF, 50)...)
	return writeAll(w, rows)
}

// WriteCSV emits columns: sub_period_seconds, s, cdf.
func (r *Fig3Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"sub_period_seconds", "s", "cdf"}}
	for _, sp := range []int64{300, 600, 1200} {
		c, ok := r.CDFBySubPeriod[sp]
		if !ok {
			continue
		}
		for _, p := range c.Points(50) {
			rows = append(rows, []string{strconv.FormatInt(sp, 10), f(p.X), f(p.Y)})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: time, user_balance, load_balance.
func (r *Fig4Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"time", "user_balance", "load_balance"}}
	for i := range r.Times {
		rows = append(rows, []string{
			trace.FormatTime(r.Times[i]),
			f(r.UserBalance[i]),
			f(r.LoadBalance[i]),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: window_seconds, fraction, cdf.
func (r *Fig5Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"window_seconds", "fraction", "cdf"}}
	for _, win := range []int64{600, 1200, 1800} {
		c, ok := r.CDFByWindow[win]
		if !ok {
			continue
		}
		for _, p := range c.Points(50) {
			rows = append(rows, []string{strconv.FormatInt(win, 10), f(p.X), f(p.Y)})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: age_days, point_nmi, cumulative_nmi.
func (r *Fig6Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"age_days", "point_nmi", "cumulative_nmi"}}
	for i, n := range r.Ages {
		rows = append(rows, []string{
			strconv.Itoa(n), f(r.PointNMI[i]), f(r.CumulativeNMI[i]),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: k, gap, sk, log_w.
func (r *Fig7Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"k", "gap", "sk", "log_w"}}
	for _, p := range r.Curve {
		rows = append(rows, []string{
			strconv.Itoa(p.K), f(p.Gap), f(p.SK), f(p.LogW),
		})
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: group, size, then one share column per realm.
func (r *Fig8Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	header := []string{"group", "size"}
	for _, realm := range apps.Realms() {
		header = append(header, realm.String())
	}
	rows := [][]string{header}
	for g := 0; g < r.K; g++ {
		row := []string{strconv.Itoa(g + 1), strconv.Itoa(r.Sizes[g])}
		for _, v := range r.Centroids[g] {
			row = append(row, f(v))
		}
		rows = append(rows, row)
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: type_i, type_j, probability.
func (r *Table1Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"type_i", "type_j", "probability"}}
	for i := 0; i < r.K; i++ {
		for j := 0; j < r.K; j++ {
			rows = append(rows, []string{
				strconv.Itoa(i + 1), strconv.Itoa(j + 1), f(r.Matrix[i][j]),
			})
		}
	}
	return writeAll(w, rows)
}
