package analysis

import (
	"bytes"
	"encoding/csv"
	"io"
	"strings"
	"testing"
)

// readCSV parses CSV output and fails on malformed content.
func readCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	r := csv.NewReader(buf)
	var rows [][]string
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("CSV parse: %v", err)
		}
		rows = append(rows, rec)
	}
	if len(rows) < 2 {
		t.Fatalf("CSV has no data rows: %v", rows)
	}
	return rows
}

func TestCSVExports(t *testing.T) {
	tr, ps := testTrace(t)

	t.Run("fig2", func(t *testing.T) {
		res, err := Fig2(tr, 0)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := readCSV(t, &buf)
		if strings.Join(rows[0], ",") != "series,balance_index,cdf" {
			t.Errorf("header = %v", rows[0])
		}
	})

	t.Run("fig3", func(t *testing.T) {
		res, err := Fig3(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		readCSV(t, &buf)
	})

	t.Run("fig4", func(t *testing.T) {
		res, err := Fig4(tr, 0, 1, 600)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := readCSV(t, &buf)
		if len(rows)-1 != len(res.Times) {
			t.Errorf("rows = %d, want %d", len(rows)-1, len(res.Times))
		}
	})

	t.Run("fig5", func(t *testing.T) {
		res, err := Fig5(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		readCSV(t, &buf)
	})

	t.Run("fig6", func(t *testing.T) {
		res, err := Fig6(ps, 5)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := readCSV(t, &buf)
		if len(rows)-1 != 5 {
			t.Errorf("rows = %d, want 5", len(rows)-1)
		}
	})

	t.Run("fig7", func(t *testing.T) {
		res, err := Fig7(ps, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		readCSV(t, &buf)
	})

	t.Run("fig8 and table1", func(t *testing.T) {
		fig8, err := Fig8(ps, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig8.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := readCSV(t, &buf)
		if len(rows)-1 != 4 {
			t.Errorf("fig8 rows = %d, want 4", len(rows)-1)
		}
		tab, err := Table1(tr, fig8, 300, 600)
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows = readCSV(t, &buf)
		if len(rows)-1 != 16 {
			t.Errorf("table1 rows = %d, want 16", len(rows)-1)
		}
	})
}
