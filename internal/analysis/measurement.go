// Package analysis reproduces the paper's measurement study (Section III):
// the load-imbalance evidence (Figs. 2–4), the co-leaving sociality
// evidence (Fig. 5), the application-profile temporal analysis (Fig. 6),
// the cluster-count selection (Fig. 7), the cluster centroids (Fig. 8) and
// the type co-leave matrix (Table I). Each function returns a structured
// result with a Render method producing the harness's textual figure.
package analysis

import (
	"errors"
	"fmt"
	"strings"

	"github.com/s3wlan/s3wlan/internal/metrics"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// PeakHours are the paper's network-throughput peak hours (10:00–11:00 and
// 15:00–16:00).
var PeakHours = map[int]bool{10: true, 15: true}

// ErrEmptyTrace is returned when an analysis receives no sessions.
var ErrEmptyTrace = errors.New("analysis: empty trace")

// Fig2Result is the CDF of the normalized balance index over all
// controllers, split into peak hours and all (average) hours.
type Fig2Result struct {
	// PeakCDF and AverageCDF are the empirical distributions.
	PeakCDF, AverageCDF *stats.CDF
	// UnbalancedPeak and UnbalancedAverage are the fractions of time with
	// index < 0.5 — the paper reports ≈20% (peak) and ≈60% (average,
	// including idle off-hours).
	UnbalancedPeak, UnbalancedAverage float64
	// KS quantifies how different the peak and average distributions are
	// (two-sample Kolmogorov–Smirnov).
	KS stats.KSResult
}

// Fig2 computes the balance-index CDFs under the trace's recorded (LLF)
// assignments, one sample per (controller, hour) with any traffic.
func Fig2(tr *trace.Trace, epoch int64) (*Fig2Result, error) {
	if len(tr.Sessions) == 0 {
		return nil, ErrEmptyTrace
	}
	res := &Fig2Result{PeakCDF: &stats.CDF{}, AverageCDF: &stats.CDF{}}
	start, end := tr.TimeRange()
	var unbalPeak, totPeak, unbalAvg, totAvg int
	for _, c := range tr.Topology.Controllers() {
		aps := tr.Topology.APsOf(c)
		if len(aps) < 2 {
			continue
		}
		apIDs := make([]trace.APID, len(aps))
		for i, ap := range aps {
			apIDs[i] = ap.ID
		}
		sessions := tr.SessionsOfController(c)
		loads, err := trace.BinLoads(sessions, apIDs, start, end, 3600)
		if err != nil {
			return nil, err
		}
		for bin, row := range loads {
			total := 0.0
			for _, v := range row {
				total += v
			}
			if total == 0 {
				continue // idle hour: no balance sample
			}
			v, err := metrics.NormalizedBalanceIndex(row)
			if err != nil {
				return nil, err
			}
			hour := trace.HourOfDay(epoch, start+int64(bin)*3600)
			res.AverageCDF.Add(v)
			totAvg++
			if v < 0.5 {
				unbalAvg++
			}
			if PeakHours[hour] {
				res.PeakCDF.Add(v)
				totPeak++
				if v < 0.5 {
					unbalPeak++
				}
			}
		}
	}
	if totAvg == 0 {
		return nil, errors.New("analysis: no active hours found")
	}
	if totPeak > 0 {
		res.UnbalancedPeak = float64(unbalPeak) / float64(totPeak)
	}
	res.UnbalancedAverage = float64(unbalAvg) / float64(totAvg)
	if res.PeakCDF.Len() > 0 && res.AverageCDF.Len() > 0 {
		peakVals := make([]float64, 0, res.PeakCDF.Len())
		avgVals := make([]float64, 0, res.AverageCDF.Len())
		for _, p := range res.PeakCDF.Points(res.PeakCDF.Len()) {
			peakVals = append(peakVals, p.X)
		}
		for _, p := range res.AverageCDF.Points(res.AverageCDF.Len()) {
			avgVals = append(avgVals, p.X)
		}
		ks, err := stats.KolmogorovSmirnov(peakVals, avgVals)
		if err == nil {
			res.KS = ks
		}
	}
	return res, nil
}

// Render formats the figure as text.
func (r *Fig2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 2: CDF of normalized balance index over all controllers (LLF)\n")
	fmt.Fprintf(&sb, "  unbalanced (<0.5): peak hours %.1f%%, average hours %.1f%%\n",
		r.UnbalancedPeak*100, r.UnbalancedAverage*100)
	fmt.Fprintf(&sb, "  peak vs average KS: D=%.3f p=%.2g\n", r.KS.Statistic, r.KS.PValue)
	sb.WriteString("  peak-hours CDF:\n")
	writeCDF(&sb, r.PeakCDF)
	sb.WriteString("  average-hours CDF:\n")
	writeCDF(&sb, r.AverageCDF)
	return sb.String()
}

func writeCDF(sb *strings.Builder, c *stats.CDF) {
	for _, p := range c.Points(10) {
		fmt.Fprintf(sb, "    %.3f -> %.3f\n", p.X, p.Y)
	}
}

// Fig3Result holds the CDFs of the variance-of-balance statistic S for
// each sub-period length, computed over resident users only (churn
// removed), as in the paper's application-dynamics analysis.
type Fig3Result struct {
	// CDFBySubPeriod maps sub-period length (seconds) to the CDF of S.
	CDFBySubPeriod map[int64]*stats.CDF
	// FracSmall10Min is the fraction of ten-minute-sub-period samples
	// with S < 0.02; the paper reports more than 80%.
	FracSmall10Min float64
}

// Fig3 computes S over hour-long periods using the given sub-period
// lengths (paper: 300, 600, 1200 seconds). Within-hour traffic variation
// comes from the flow records: session records only carry a total volume
// (a constant within-session rate), so sub-period application dynamics are
// visible only at flow granularity.
func Fig3(tr *trace.Trace, subPeriods []int64) (*Fig3Result, error) {
	if len(tr.Sessions) == 0 {
		return nil, ErrEmptyTrace
	}
	if len(subPeriods) == 0 {
		subPeriods = []int64{300, 600, 1200}
	}
	res := &Fig3Result{CDFBySubPeriod: make(map[int64]*stats.CDF, len(subPeriods))}
	for _, sp := range subPeriods {
		res.CDFBySubPeriod[sp] = &stats.CDF{}
	}
	flowsByUser := make(map[trace.UserID][]trace.Flow)
	for _, f := range tr.Flows {
		flowsByUser[f.User] = append(flowsByUser[f.User], f)
	}
	start, end := tr.TimeRange()
	var small, total int
	for _, c := range tr.Topology.Controllers() {
		aps := tr.Topology.APsOf(c)
		if len(aps) < 2 {
			continue
		}
		apIDs := make([]trace.APID, len(aps))
		for i, ap := range aps {
			apIDs[i] = ap.ID
		}
		sessions := tr.SessionsOfController(c)
		for hourStart := start; hourStart+3600 <= end; hourStart += 3600 {
			// Remove churn: keep only sessions spanning the whole hour.
			resident := trace.ResidentSessions(sessions, hourStart, hourStart+3600)
			if len(resident) == 0 {
				continue
			}
			pseudo := residentFlowSessions(resident, flowsByUser, hourStart, hourStart+3600)
			if len(pseudo) == 0 {
				continue
			}
			for _, sp := range subPeriods {
				loads, err := trace.BinLoads(pseudo, apIDs, hourStart, hourStart+3600, sp)
				if err != nil {
					return nil, err
				}
				values := make([]float64, 0, len(loads))
				active := false
				for _, row := range loads {
					v, err := metrics.NormalizedBalanceIndex(row)
					if err != nil {
						return nil, err
					}
					for _, x := range row {
						if x > 0 {
							active = true
						}
					}
					values = append(values, v)
				}
				if !active {
					continue
				}
				s := metrics.VarianceOfBalance(values)
				res.CDFBySubPeriod[sp].Add(s)
				if sp == 600 {
					total++
					if s < 0.02 {
						small++
					}
				}
			}
		}
	}
	if total > 0 {
		res.FracSmall10Min = float64(small) / float64(total)
	}
	return res, nil
}

// residentFlowSessions projects resident users' flow records onto their
// hour-long sessions' APs: each flow becomes a pseudo-session on the AP
// the user occupied, preserving the flow's own timing so sub-period
// traffic variation is visible.
func residentFlowSessions(resident []trace.Session,
	flowsByUser map[trace.UserID][]trace.Flow, hourStart, hourEnd int64) []trace.Session {
	apOf := make(map[trace.UserID]trace.APID, len(resident))
	for _, s := range resident {
		apOf[s.User] = s.AP
	}
	var out []trace.Session
	for u, ap := range apOf {
		for _, f := range flowsByUser[u] {
			if f.End <= hourStart || f.Start >= hourEnd || f.Bytes == 0 {
				continue
			}
			out = append(out, trace.Session{
				User:         u,
				AP:           ap,
				ConnectAt:    f.Start,
				DisconnectAt: f.End,
				Bytes:        f.Bytes,
			})
		}
	}
	return out
}

// Render formats the figure as text.
func (r *Fig3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 3: CDF of variance of balance index S (churn removed)\n")
	fmt.Fprintf(&sb, "  S < 0.02 with 10-minute sub-periods: %.1f%%\n",
		r.FracSmall10Min*100)
	for _, sp := range []int64{300, 600, 1200} {
		if c, ok := r.CDFBySubPeriod[sp]; ok && c.Len() > 0 {
			fmt.Fprintf(&sb, "  sub-period %d min:\n", sp/60)
			writeCDF(&sb, c)
		}
	}
	return sb.String()
}

// Fig4Result is one example day in one controller domain: the balance
// index of the number of users and of the traffic load, per bin, plus
// their correlation — the paper's visual argument that user churn drives
// load imbalance.
type Fig4Result struct {
	Controller  trace.ControllerID
	BinSeconds  int64
	Times       []int64
	UserBalance []float64
	LoadBalance []float64
	// Correlation is the Pearson correlation between the two series; the
	// paper's two plots are "very similar in layout", i.e. strongly
	// positively correlated.
	Correlation float64
}

// Fig4 computes the paired series for the controller with the most
// sessions, over dayIndex (relative to epoch), from 8:00 to 24:00.
func Fig4(tr *trace.Trace, epoch int64, dayIndex int, binSeconds int64) (*Fig4Result, error) {
	if len(tr.Sessions) == 0 {
		return nil, ErrEmptyTrace
	}
	if binSeconds <= 0 {
		binSeconds = 600
	}
	// Pick the busiest controller that day.
	dayStart := epoch + int64(dayIndex)*86400
	winStart := dayStart + 8*3600
	winEnd := dayStart + 24*3600
	counts := make(map[trace.ControllerID]int)
	for _, s := range tr.Sessions {
		if s.ConnectAt < winEnd && s.DisconnectAt > winStart {
			counts[s.Controller]++
		}
	}
	var best trace.ControllerID
	bestN := 0
	for _, c := range tr.Topology.Controllers() {
		if counts[c] > bestN && len(tr.Topology.APsOf(c)) >= 2 {
			best, bestN = c, counts[c]
		}
	}
	if bestN == 0 {
		return nil, errors.New("analysis: no controller with sessions on that day")
	}
	aps := tr.Topology.APsOf(best)
	apIDs := make([]trace.APID, len(aps))
	for i, ap := range aps {
		apIDs[i] = ap.ID
	}
	sessions := tr.SessionsOfController(best)
	loads, err := trace.BinLoads(sessions, apIDs, winStart, winEnd, binSeconds)
	if err != nil {
		return nil, err
	}
	users, err := trace.ConcurrentUsers(sessions, apIDs, winStart, winEnd, binSeconds)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Controller: best, BinSeconds: binSeconds}
	for i := range loads {
		lb, err := metrics.NormalizedBalanceIndex(loads[i])
		if err != nil {
			return nil, err
		}
		ub, err := metrics.NormalizedBalanceIndex(users[i])
		if err != nil {
			return nil, err
		}
		res.Times = append(res.Times, winStart+int64(i)*binSeconds)
		res.LoadBalance = append(res.LoadBalance, lb)
		res.UserBalance = append(res.UserBalance, ub)
	}
	res.Correlation, err = stats.PearsonCorrelation(res.UserBalance, res.LoadBalance)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the figure as text.
func (r *Fig4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 4: balance of user count vs traffic load, controller %s (bin %d min)\n",
		r.Controller, r.BinSeconds/60)
	fmt.Fprintf(&sb, "  Pearson correlation: %.3f\n", r.Correlation)
	fmt.Fprintf(&sb, "  %-22s %-8s %-8s\n", "time", "β_users", "β_load")
	for i := range r.Times {
		fmt.Fprintf(&sb, "  %-22s %-8.3f %-8.3f\n",
			trace.FormatTime(r.Times[i]), r.UserBalance[i], r.LoadBalance[i])
	}
	return sb.String()
}

// Fig5Result holds the CDFs of per-user co-leaving fractions for each
// extraction window.
type Fig5Result struct {
	// CDFByWindow maps window length (seconds) to the CDF over users of
	// the fraction of leavings that are co-leavings.
	CDFByWindow map[int64]*stats.CDF
	// MedianFraction10Min is the median co-leave fraction with the
	// ten-minute window.
	MedianFraction10Min float64
}

// Fig5 computes co-leave fraction CDFs (paper windows: 600, 1200, 1800
// seconds).
func Fig5(tr *trace.Trace, windows []int64) (*Fig5Result, error) {
	if len(tr.Sessions) == 0 {
		return nil, ErrEmptyTrace
	}
	if len(windows) == 0 {
		windows = []int64{600, 1200, 1800}
	}
	res := &Fig5Result{CDFByWindow: make(map[int64]*stats.CDF, len(windows))}
	for _, w := range windows {
		fr := society.CoLeaveFractionPerUser(tr.Sessions, w)
		c := &stats.CDF{}
		for _, v := range fr {
			c.Add(v)
		}
		res.CDFByWindow[w] = c
		if w == 600 && c.Len() > 0 {
			m, err := c.Quantile(0.5)
			if err != nil {
				return nil, err
			}
			res.MedianFraction10Min = m
		}
	}
	return res, nil
}

// Render formats the figure as text.
func (r *Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 5: CDF of co-leaving fraction per user\n")
	fmt.Fprintf(&sb, "  median fraction (10-minute window): %.3f\n",
		r.MedianFraction10Min)
	for _, w := range []int64{600, 1200, 1800} {
		if c, ok := r.CDFByWindow[w]; ok && c.Len() > 0 {
			fmt.Fprintf(&sb, "  window %d min:\n", w/60)
			writeCDF(&sb, c)
		}
	}
	return sb.String()
}
