package analysis

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/cluster"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Fig6Result is the temporal-correlation analysis of application profiles:
// mean NMI between the day-x profile and history at age n, for point
// (single-day) and cumulative (aggregated-history) variants.
type Fig6Result struct {
	// Ages lists the history ages n evaluated (days).
	Ages []int
	// PointNMI[i] is the mean NMI(T_x, T_{x−Ages[i]}) over users and days.
	PointNMI []float64
	// CumulativeNMI[i] is the mean NMI(T_x, Σ_{j=1..Ages[i]} T_{x−j}).
	CumulativeNMI []float64
	// PlateauAge is the first age whose cumulative NMI reaches 99% of the
	// curve's maximum; the paper finds ≈15 days.
	PlateauAge int
}

// Fig6 evaluates NMI for n = 1..maxAge using every user-day with data.
func Fig6(ps *apps.ProfileStore, maxAge int) (*Fig6Result, error) {
	if ps == nil || len(ps.Users()) == 0 {
		return nil, errors.New("analysis: no profiles")
	}
	if maxAge <= 0 {
		maxAge = 30
	}
	res := &Fig6Result{}
	users := ps.Users()
	for n := 1; n <= maxAge; n++ {
		var point, cum stats.Welford
		for _, u := range users {
			for _, x := range ps.Days(u) {
				if v, ok := ps.NMIPoint(u, x, n); ok {
					point.Add(v)
				}
				if v, ok := ps.NMICumulative(u, x, n); ok {
					cum.Add(v)
				}
			}
		}
		res.Ages = append(res.Ages, n)
		res.PointNMI = append(res.PointNMI, point.Mean())
		res.CumulativeNMI = append(res.CumulativeNMI, cum.Mean())
	}
	res.PlateauAge = plateauAge(res.Ages, res.CumulativeNMI)
	return res, nil
}

// plateauAge returns the first age whose cumulative-NMI value reaches 99%
// of the curve's maximum — the point past which more history "does not
// help (but does not hurt either)".
func plateauAge(ages []int, curve []float64) int {
	if len(ages) == 0 {
		return 0
	}
	max := curve[0]
	for _, v := range curve {
		if v > max {
			max = v
		}
	}
	for i, v := range curve {
		if v >= 0.99*max {
			return ages[i]
		}
	}
	return ages[len(ages)-1]
}

// Render formats the figure as text.
func (r *Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 6: mean NMI vs history age n (point and cumulative)\n")
	fmt.Fprintf(&sb, "  cumulative NMI plateaus at n ≈ %d days\n", r.PlateauAge)
	fmt.Fprintf(&sb, "  %-5s %-10s %-10s\n", "n", "point", "cumulative")
	for i, n := range r.Ages {
		fmt.Fprintf(&sb, "  %-5d %-10.4f %-10.4f\n",
			n, r.PointNMI[i], r.CumulativeNMI[i])
	}
	return sb.String()
}

// ProfilePoints extracts the normalized mean application profiles used for
// clustering, with a stable user order.
func ProfilePoints(ps *apps.ProfileStore) ([]trace.UserID, [][]float64, error) {
	if ps == nil {
		return nil, nil, errors.New("analysis: nil profile store")
	}
	var ids []trace.UserID
	var points [][]float64
	for _, u := range ps.Users() {
		if vec, ok := ps.MeanNormalized(u); ok {
			ids = append(ids, u)
			points = append(points, vec)
		}
	}
	if len(points) == 0 {
		return nil, nil, errors.New("analysis: no usable profiles")
	}
	return ids, points, nil
}

// Fig7Result is the gap-statistic curve over user profiles.
type Fig7Result struct {
	Curve    []cluster.GapPoint
	OptimalK int
	// SilhouetteBestK cross-checks the gap statistic with silhouette
	// analysis over the same profiles (0 when too few points).
	SilhouetteBestK int
}

// Fig7 computes the gap statistic for k = 1..maxK (paper: 10) over the
// users' application profiles.
func Fig7(ps *apps.ProfileStore, maxK int, seed int64) (*Fig7Result, error) {
	_, points, err := ProfilePoints(ps)
	if err != nil {
		return nil, err
	}
	if maxK <= 0 {
		maxK = 10
	}
	rng := rand.New(rand.NewSource(seed))
	gap, err := cluster.GapStatistic(points, rng, cluster.GapConfig{
		MaxK:          maxK,
		ReferenceSets: 10,
		KMeans:        cluster.Config{Restarts: 6},
	})
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{Curve: gap.Points, OptimalK: gap.OptimalK}
	if len(points) > 2 {
		if _, bestK, err := cluster.SilhouetteCurve(points, maxK, rng,
			cluster.Config{Restarts: 4}); err == nil {
			res.SilhouetteBestK = bestK
		}
	}
	return res, nil
}

// Render formats the figure as text.
func (r *Fig7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 7: gap statistic for varying k\n")
	fmt.Fprintf(&sb, "  optimal k = %d (silhouette cross-check: k = %d)\n",
		r.OptimalK, r.SilhouetteBestK)
	fmt.Fprintf(&sb, "  %-4s %-10s %-10s\n", "k", "Gap(k)", "s_k")
	for _, p := range r.Curve {
		fmt.Fprintf(&sb, "  %-4d %-10.4f %-10.4f\n", p.K, p.Gap, p.SK)
	}
	return sb.String()
}

// Fig8Result holds the k-means centroids of the user groups over the six
// application realms.
type Fig8Result struct {
	K         int
	Centroids [][]float64 // K × NumRealms
	Sizes     []int
	// Labels maps each clustered user to their group.
	Labels map[trace.UserID]int
}

// Fig8 clusters the profiles into k groups (paper: 4).
func Fig8(ps *apps.ProfileStore, k int, seed int64) (*Fig8Result, error) {
	ids, points, err := ProfilePoints(ps)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 4
	}
	if k > len(points) {
		k = len(points)
	}
	rng := rand.New(rand.NewSource(seed))
	res, err := cluster.KMeans(points, k, rng, cluster.Config{Restarts: 8})
	if err != nil {
		return nil, err
	}
	out := &Fig8Result{
		K:         k,
		Centroids: res.Centroids,
		Sizes:     make([]int, k),
		Labels:    make(map[trace.UserID]int, len(ids)),
	}
	for i, lbl := range res.Labels {
		out.Sizes[lbl]++
		out.Labels[ids[i]] = lbl
	}
	return out, nil
}

// Render formats the figure as text.
func (r *Fig8Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 8: cluster centroids of user groups (normalized traffic shares)\n")
	fmt.Fprintf(&sb, "  %-8s %-6s", "group", "size")
	for _, realm := range apps.Realms() {
		fmt.Fprintf(&sb, " %-8s", realm)
	}
	sb.WriteString("\n")
	for g := 0; g < r.K; g++ {
		fmt.Fprintf(&sb, "  type%-4d %-6d", g+1, r.Sizes[g])
		for _, v := range r.Centroids[g] {
			fmt.Fprintf(&sb, " %-8.3f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Table1Result is the co-leave probability matrix between usage types.
type Table1Result struct {
	K      int
	Matrix [][]float64
	// DiagonalDominant reports whether every diagonal entry exceeds every
	// off-diagonal entry in its row — the paper's key observation.
	DiagonalDominant bool
}

// Table1 estimates T(type_i, type_j) from the trace's encounters and
// co-leavings using the Fig. 8 clustering.
func Table1(tr *trace.Trace, fig8 *Fig8Result, coLeaveWindow, minEncounter int64) (*Table1Result, error) {
	if len(tr.Sessions) == 0 {
		return nil, ErrEmptyTrace
	}
	if fig8 == nil {
		return nil, errors.New("analysis: nil clustering")
	}
	if coLeaveWindow <= 0 {
		coLeaveWindow = 300
	}
	if minEncounter <= 0 {
		minEncounter = 600
	}
	encounters := society.ExtractEncounters(tr.Sessions, minEncounter)
	coLeaves := make(map[society.Pair]int)
	for _, ev := range society.ExtractCoLeavings(tr.Sessions, coLeaveWindow) {
		coLeaves[ev.Pair]++
	}
	matrix := society.BuildTypeMatrix(encounters, coLeaves, fig8.Labels, fig8.K)
	res := &Table1Result{K: fig8.K, Matrix: matrix, DiagonalDominant: true}
	for i := 0; i < fig8.K; i++ {
		for j := 0; j < fig8.K; j++ {
			if i != j && matrix[i][i] <= matrix[i][j] {
				res.DiagonalDominant = false
			}
		}
	}
	return res, nil
}

// Render formats the table as text.
func (r *Table1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table I: co-leaving probability between usage types\n")
	fmt.Fprintf(&sb, "  diagonal dominant: %v\n  %-8s", r.DiagonalDominant, "T")
	for j := 0; j < r.K; j++ {
		fmt.Fprintf(&sb, " type%-4d", j+1)
	}
	sb.WriteString("\n")
	for i := 0; i < r.K; i++ {
		fmt.Fprintf(&sb, "  type%-4d", i+1)
		for j := 0; j < r.K; j++ {
			fmt.Fprintf(&sb, " %-8.3f", r.Matrix[i][j])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
