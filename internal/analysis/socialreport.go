package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// SocialReport summarizes the structure of the learned θ-graph — the
// small-world questions the paper's related work (Hsu & Helmy) asks of
// WLAN encounter graphs, answered for the relationship graph S³ actually
// uses.
type SocialReport struct {
	// Threshold is the θ cut used to build the graph.
	Threshold float64
	// Graph is the structural report (degree, clustering, path length).
	Graph socialgraph.Report
	// DegreeHistogram maps degree -> user count.
	DegreeHistogram map[int]int
	// TopPairs lists the strongest relationships.
	TopPairs []PairStrength
}

// PairStrength pairs users with their θ value.
type PairStrength struct {
	A, B  trace.UserID
	Theta float64
}

// BuildSocialReport constructs the θ > threshold graph over every user the
// model knows and analyzes it.
func BuildSocialReport(m *society.Model, threshold float64) (*SocialReport, error) {
	if m == nil {
		return nil, errors.New("analysis: nil model")
	}
	if threshold <= 0 {
		threshold = 0.3
	}
	// Users: anyone appearing in pair statistics or typed.
	seen := make(map[trace.UserID]bool)
	for p := range m.PairProb {
		seen[p.A] = true
		seen[p.B] = true
	}
	for u := range m.Types {
		seen[u] = true
	}
	users := make([]trace.UserID, 0, len(seen))
	for u := range seen {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	// Build edges from pair statistics only: iterating all O(n²) pairs is
	// wasteful since θ > threshold requires pair history for any
	// realistic α·T.
	g := socialgraph.New()
	for _, u := range users {
		g.AddVertex(u)
	}
	var top []PairStrength
	for p := range m.PairProb {
		theta := m.Index(p.A, p.B)
		if theta > threshold {
			g.AddEdge(p.A, p.B, theta)
			top = append(top, PairStrength{A: p.A, B: p.B, Theta: theta})
		}
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Theta != top[j].Theta {
			return top[i].Theta > top[j].Theta
		}
		if top[i].A != top[j].A {
			return top[i].A < top[j].A
		}
		return top[i].B < top[j].B
	})
	if len(top) > 10 {
		top = top[:10]
	}
	return &SocialReport{
		Threshold:       threshold,
		Graph:           g.Analyze(),
		DegreeHistogram: g.DegreeHistogram(),
		TopPairs:        top,
	}, nil
}

// Render formats the report as text.
func (r *SocialReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Social graph (θ > %.2f)\n", r.Threshold)
	fmt.Fprintf(&sb, "  users: %d   relationships: %d   components: %d (largest %d)\n",
		r.Graph.Vertices, r.Graph.Edges, r.Graph.Components, r.Graph.LargestComponent)
	fmt.Fprintf(&sb, "  mean degree: %.2f   clustering coefficient: %.3f   avg path length: %.2f\n",
		r.Graph.MeanDegree, r.Graph.ClusteringCoefficient, r.Graph.AveragePathLength)
	sb.WriteString("  strongest pairs:\n")
	for _, p := range r.TopPairs {
		fmt.Fprintf(&sb, "    %s — %s  θ=%.3f\n", p.A, p.B, p.Theta)
	}
	return sb.String()
}
