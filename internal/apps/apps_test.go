package apps

import (
	"math"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func TestRealmString(t *testing.T) {
	tests := []struct {
		r    Realm
		want string
	}{
		{RealmIM, "IM"}, {RealmP2P, "P2P"}, {RealmMusic, "music"},
		{RealmEmail, "email"}, {RealmVideo, "video"}, {RealmWeb, "web"},
		{RealmUnknown, "unknown"}, {Realm(99), "Realm(99)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Realm(%d).String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestRealmIndexRoundTrip(t *testing.T) {
	for i, r := range Realms() {
		if r.Index() != i {
			t.Errorf("%v.Index() = %d, want %d", r, r.Index(), i)
		}
		back, err := RealmFromIndex(i)
		if err != nil || back != r {
			t.Errorf("RealmFromIndex(%d) = %v, %v", i, back, err)
		}
	}
	if RealmUnknown.Index() != -1 {
		t.Error("unknown realm should have index -1")
	}
	if _, err := RealmFromIndex(6); err == nil {
		t.Error("index 6 should error")
	}
	if _, err := RealmFromIndex(-1); err == nil {
		t.Error("index -1 should error")
	}
}

func TestClassifyWellKnownPorts(t *testing.T) {
	c := NewClassifier()
	tests := []struct {
		name string
		f    trace.Flow
		want Realm
	}{
		{"https", trace.Flow{Proto: "tcp", SrcPort: 52000, DstPort: 443}, RealmWeb},
		{"http reversed", trace.Flow{Proto: "tcp", SrcPort: 80, DstPort: 52000}, RealmWeb},
		{"dns", trace.Flow{Proto: "udp", SrcPort: 40000, DstPort: 53}, RealmWeb},
		{"smtp", trace.Flow{Proto: "tcp", SrcPort: 52000, DstPort: 25}, RealmEmail},
		{"imaps", trace.Flow{Proto: "TCP", SrcPort: 52000, DstPort: 993}, RealmEmail},
		{"bittorrent", trace.Flow{Proto: "tcp", SrcPort: 52000, DstPort: 6881}, RealmP2P},
		{"msn", trace.Flow{Proto: "tcp", SrcPort: 52000, DstPort: 1863}, RealmIM},
		{"qq udp", trace.Flow{Proto: "udp", SrcPort: 40000, DstPort: 8000}, RealmIM},
		{"rtmp", trace.Flow{Proto: "tcp", SrcPort: 52000, DstPort: 1935}, RealmVideo},
		{"rtsp", trace.Flow{Proto: "tcp", SrcPort: 52000, DstPort: 554}, RealmMusic},
		{"ephemeral p2p", trace.Flow{Proto: "tcp", SrcPort: 50000, DstPort: 51000}, RealmP2P},
		{"unknown low ports", trace.Flow{Proto: "tcp", SrcPort: 1234, DstPort: 2345}, RealmUnknown},
		{"unknown proto", trace.Flow{Proto: "icmp", SrcPort: 0, DstPort: 0}, RealmUnknown},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.Classify(tt.f); got != tt.want {
				t.Errorf("Classify(%+v) = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestClassifierOptions(t *testing.T) {
	c := NewClassifier(
		WithRule("tcp", 9999, RealmVideo),
		WithRule("udp", 9999, RealmMusic),
		WithoutEphemeralP2PHeuristic(),
	)
	if got := c.Classify(trace.Flow{Proto: "tcp", DstPort: 9999}); got != RealmVideo {
		t.Errorf("custom tcp rule = %v, want video", got)
	}
	if got := c.Classify(trace.Flow{Proto: "udp", DstPort: 9999}); got != RealmMusic {
		t.Errorf("custom udp rule = %v, want music", got)
	}
	f := trace.Flow{Proto: "tcp", SrcPort: 50000, DstPort: 51000}
	if got := c.Classify(f); got != RealmUnknown {
		t.Errorf("ephemeral heuristic should be disabled, got %v", got)
	}
	// Unknown proto in WithRule is silently ignored.
	c2 := NewClassifier(WithRule("bogus", 1, RealmIM))
	if got := c2.Classify(trace.Flow{Proto: "tcp", DstPort: 1}); got != RealmUnknown {
		t.Errorf("bogus-proto rule should not apply, got %v", got)
	}
}

func TestVolumeByRealm(t *testing.T) {
	c := NewClassifier()
	flows := []trace.Flow{
		{Proto: "tcp", DstPort: 443, Bytes: 100},
		{Proto: "tcp", DstPort: 80, Bytes: 50},
		{Proto: "tcp", DstPort: 6881, Bytes: 200},
		{Proto: "tcp", DstPort: 1234, SrcPort: 4321, Bytes: 30}, // unknown
	}
	vec, unknown := c.VolumeByRealm(flows)
	if vec[RealmWeb.Index()] != 150 {
		t.Errorf("web volume = %v, want 150", vec[RealmWeb.Index()])
	}
	if vec[RealmP2P.Index()] != 200 {
		t.Errorf("p2p volume = %v, want 200", vec[RealmP2P.Index()])
	}
	if unknown != 30 {
		t.Errorf("unknown volume = %v, want 30", unknown)
	}
}

func buildTestProfiles(t *testing.T) *ProfileStore {
	t.Helper()
	const epoch = int64(0)
	day := int64(86400)
	flows := []trace.Flow{
		// Day 0: u1 is web-heavy.
		{User: "u1", Start: 100, End: 200, Proto: "tcp", DstPort: 443, Bytes: 800},
		{User: "u1", Start: 300, End: 400, Proto: "tcp", DstPort: 25, Bytes: 200},
		// Day 1: u1 same mix.
		{User: "u1", Start: day + 100, End: day + 200, Proto: "tcp", DstPort: 80, Bytes: 400},
		{User: "u1", Start: day + 300, End: day + 400, Proto: "tcp", DstPort: 110, Bytes: 100},
		// Day 0: u2 is P2P-heavy.
		{User: "u2", Start: 50, End: 60, Proto: "tcp", DstPort: 6881, Bytes: 1000},
		// Unknown traffic ignored in profiles.
		{User: "u2", Start: 70, End: 80, Proto: "tcp", SrcPort: 1111, DstPort: 2222, Bytes: 5},
	}
	return BuildProfiles(flows, epoch, NewClassifier())
}

func TestBuildProfiles(t *testing.T) {
	ps := buildTestProfiles(t)
	users := ps.Users()
	if len(users) != 2 || users[0] != "u1" || users[1] != "u2" {
		t.Fatalf("Users = %v", users)
	}
	if ps.UnknownVolume() != 5 {
		t.Errorf("UnknownVolume = %v, want 5", ps.UnknownVolume())
	}
	days := ps.Days("u1")
	if len(days) != 2 || days[0] != 0 || days[1] != 1 {
		t.Errorf("Days(u1) = %v", days)
	}
	vec, ok := ps.Day("u1", 0)
	if !ok {
		t.Fatal("Day(u1, 0) missing")
	}
	if vec[RealmWeb.Index()] != 800 || vec[RealmEmail.Index()] != 200 {
		t.Errorf("day-0 vector = %v", vec)
	}
	if _, ok := ps.Day("u1", 5); ok {
		t.Error("day 5 should be absent")
	}
	if _, ok := ps.Day("ghost", 0); ok {
		t.Error("unknown user should be absent")
	}
}

func TestCumulative(t *testing.T) {
	ps := buildTestProfiles(t)
	vec, ok := ps.Cumulative("u1", 0, 1)
	if !ok {
		t.Fatal("cumulative missing")
	}
	if vec[RealmWeb.Index()] != 1200 || vec[RealmEmail.Index()] != 300 {
		t.Errorf("cumulative = %v", vec)
	}
	if _, ok := ps.Cumulative("u1", 5, 9); ok {
		t.Error("empty range should report false")
	}
}

func TestMeanNormalized(t *testing.T) {
	ps := buildTestProfiles(t)
	vec, ok := ps.MeanNormalized("u1")
	if !ok {
		t.Fatal("MeanNormalized missing")
	}
	var sum float64
	for _, x := range vec {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("profile sums to %v, want 1", sum)
	}
	// u1 is 80% web both days.
	if math.Abs(vec[RealmWeb.Index()]-0.8) > 1e-9 {
		t.Errorf("web share = %v, want 0.8", vec[RealmWeb.Index()])
	}
	if _, ok := ps.MeanNormalized("ghost"); ok {
		t.Error("unknown user should report false")
	}
}

func TestNMIPointAndCumulative(t *testing.T) {
	ps := buildTestProfiles(t)
	// u1 has identical normalized mixes on day 0 and day 1 ⇒ NMI = 1.
	nmi, ok := ps.NMIPoint("u1", 1, 1)
	if !ok {
		t.Fatal("NMIPoint missing")
	}
	if math.Abs(nmi-1) > 1e-9 {
		t.Errorf("NMIPoint = %v, want 1", nmi)
	}
	nmi, ok = ps.NMICumulative("u1", 1, 1)
	if !ok {
		t.Fatal("NMICumulative missing")
	}
	if math.Abs(nmi-1) > 1e-9 {
		t.Errorf("NMICumulative = %v, want 1", nmi)
	}
	// Missing history day.
	if _, ok := ps.NMIPoint("u1", 1, 7); ok {
		t.Error("missing history should report false")
	}
	if _, ok := ps.NMICumulative("u2", 3, 2); ok {
		t.Error("missing current day should report false")
	}
}

func TestProfileStoreEpoch(t *testing.T) {
	ps := BuildProfiles(nil, 12345, NewClassifier())
	if ps.Epoch() != 12345 {
		t.Errorf("Epoch = %d, want 12345", ps.Epoch())
	}
}

func TestRealmReport(t *testing.T) {
	c := NewClassifier()
	flows := []trace.Flow{
		{Proto: "tcp", DstPort: 443, Bytes: 600},                  // web
		{Proto: "tcp", DstPort: 6881, Bytes: 300},                 // p2p
		{Proto: "tcp", DstPort: 25, Bytes: 100},                   // email
		{Proto: "tcp", SrcPort: 1234, DstPort: 2345, Bytes: 1000}, // unknown
	}
	shares, unknown := c.RealmReport(flows)
	if len(shares) != NumRealms {
		t.Fatalf("shares = %d, want %d", len(shares), NumRealms)
	}
	if shares[0].Realm != RealmWeb || math.Abs(shares[0].Share-0.6) > 1e-9 {
		t.Errorf("top share = %+v, want web 0.6", shares[0])
	}
	if shares[1].Realm != RealmP2P {
		t.Errorf("second = %+v, want p2p", shares[1])
	}
	if math.Abs(unknown-0.5) > 1e-9 {
		t.Errorf("unknown share = %v, want 0.5", unknown)
	}
	// Empty input: zero shares, no division by zero.
	shares, unknown = c.RealmReport(nil)
	if unknown != 0 {
		t.Errorf("empty unknown = %v", unknown)
	}
	for _, s := range shares {
		if s.Share != 0 {
			t.Errorf("empty share = %+v", s)
		}
	}
}

func TestTemporalSignature(t *testing.T) {
	flows := []trace.Flow{
		// Morning (slot 2: 08:00–12:00) web, evening (slot 5: 20:00–24:00) video.
		{User: "u1", Start: 9 * 3600, End: 9*3600 + 10, Proto: "tcp", DstPort: 443, Bytes: 300},
		{User: "u1", Start: 21 * 3600, End: 21*3600 + 10, Proto: "tcp", DstPort: 1935, Bytes: 100},
	}
	ps := BuildProfiles(flows, 0, NewClassifier())
	if _, ok := ps.TemporalSignature("u1"); ok {
		t.Error("signature should be absent before attaching")
	}
	ps.AttachTemporalSignatures(flows)
	sig, ok := ps.TemporalSignature("u1")
	if !ok {
		t.Fatal("signature missing after attaching")
	}
	if len(sig) != TemporalSlots {
		t.Fatalf("slots = %d, want %d", len(sig), TemporalSlots)
	}
	if math.Abs(sig[2]-0.75) > 1e-9 || math.Abs(sig[5]-0.25) > 1e-9 {
		t.Errorf("signature = %v, want 0.75 in slot 2 and 0.25 in slot 5", sig)
	}
	if _, ok := ps.TemporalSignature("ghost"); ok {
		t.Error("unknown user should report false")
	}
}

func TestExtendedFeature(t *testing.T) {
	flows := []trace.Flow{
		{User: "u1", Start: 9 * 3600, End: 9*3600 + 10, Proto: "tcp", DstPort: 443, Bytes: 400},
	}
	ps := BuildProfiles(flows, 0, NewClassifier())
	base, ok := ps.ExtendedFeature("u1", 0)
	if !ok || len(base) != NumRealms {
		t.Fatalf("base feature = %v, %v", base, ok)
	}
	// Weight without attached signatures degrades to the base feature.
	same, _ := ps.ExtendedFeature("u1", 1)
	if len(same) != NumRealms {
		t.Errorf("without signatures feature dim = %d", len(same))
	}
	ps.AttachTemporalSignatures(flows)
	ext, ok := ps.ExtendedFeature("u1", 0.5)
	if !ok || len(ext) != NumRealms+TemporalSlots {
		t.Fatalf("extended dim = %d, want %d", len(ext), NumRealms+TemporalSlots)
	}
	// Temporal components carry the weight.
	if math.Abs(ext[NumRealms+2]-0.5) > 1e-9 {
		t.Errorf("weighted slot = %v, want 0.5", ext[NumRealms+2])
	}
	if _, ok := ps.ExtendedFeature("ghost", 0.5); ok {
		t.Error("unknown user should report false")
	}
}
