package apps

import (
	"sort"
	"strings"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// Classifier maps flow records to application realms using port/protocol
// heuristics, the approach the paper cites for identifying concrete
// applications from transport- and application-layer ports.
//
// The zero value is not usable; construct with NewClassifier. Custom rules
// can be layered on top of the built-in well-known-port table.
type Classifier struct {
	tcp map[int]Realm
	udp map[int]Realm
	// ephemeralP2P marks the high-port heuristic: flows where both
	// endpoints use ephemeral ports are attributed to P2P, a standard
	// port-based heuristic for swarm protocols.
	ephemeralP2P bool
}

// ClassifierOption customizes a Classifier.
type ClassifierOption func(*Classifier)

// WithRule adds or overrides the mapping of one (proto, port) to a realm.
// proto is "tcp" or "udp" (case-insensitive).
func WithRule(proto string, port int, realm Realm) ClassifierOption {
	return func(c *Classifier) {
		switch strings.ToLower(proto) {
		case "tcp":
			c.tcp[port] = realm
		case "udp":
			c.udp[port] = realm
		}
	}
}

// WithoutEphemeralP2PHeuristic disables the both-ports-ephemeral ⇒ P2P
// rule.
func WithoutEphemeralP2PHeuristic() ClassifierOption {
	return func(c *Classifier) { c.ephemeralP2P = false }
}

// NewClassifier builds a classifier with the built-in well-known-port
// table.
func NewClassifier(opts ...ClassifierOption) *Classifier {
	c := &Classifier{
		tcp:          make(map[int]Realm, 64),
		udp:          make(map[int]Realm, 32),
		ephemeralP2P: true,
	}
	c.installDefaults()
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// installDefaults loads the well-known port table. Ports follow IANA
// assignments plus the de-facto ports of the applications dominant in a
// 2012 Chinese campus network (QQ, Thunder/Xunlei, PPLive, …), which is
// the population the paper measured.
func (c *Classifier) installDefaults() {
	// IM: QQ (8000/udp, 443 fallback excluded), MSN 1863, XMPP 5222/5269,
	// IRC 6667, AIM/ICQ 5190.
	for _, p := range []int{1863, 5222, 5269, 6667, 5190} {
		c.tcp[p] = RealmIM
	}
	c.udp[8000] = RealmIM // QQ
	c.udp[4000] = RealmIM // older QQ client port

	// P2P: BitTorrent 6881-6889, eMule 4662/4672, Thunder/Xunlei 15000.
	for p := 6881; p <= 6889; p++ {
		c.tcp[p] = RealmP2P
	}
	c.tcp[4662] = RealmP2P
	c.udp[4672] = RealmP2P
	c.tcp[15000] = RealmP2P

	// Music streaming: RTSP 554, Shoutcast 8001, QQ Music 3478 region.
	c.tcp[554] = RealmMusic
	c.tcp[8001] = RealmMusic
	c.udp[554] = RealmMusic

	// E-mail: SMTP 25/465/587, POP3 110/995, IMAP 143/993.
	for _, p := range []int{25, 465, 587, 110, 995, 143, 993} {
		c.tcp[p] = RealmEmail
	}

	// Video: RTMP 1935, PPLive 3908, PPStream 7786, MMS 1755.
	c.tcp[1935] = RealmVideo
	c.tcp[3908] = RealmVideo
	c.udp[7786] = RealmVideo
	c.tcp[1755] = RealmVideo
	c.udp[1755] = RealmVideo

	// Web: HTTP(S) and proxies. DNS rides along with browsing and is
	// grouped into web per the paper's port-combination heuristics.
	for _, p := range []int{80, 443, 8080, 3128} {
		c.tcp[p] = RealmWeb
	}
	c.udp[53] = RealmWeb
	c.tcp[53] = RealmWeb
}

// ephemeralPortFloor is the conventional start of the ephemeral range.
const ephemeralPortFloor = 49152

// Classify returns the realm of one flow. Either endpoint port may match;
// the server side of a flow can be the source or destination depending on
// direction. Unmatched flows fall to the ephemeral-P2P heuristic, then to
// RealmUnknown.
func (c *Classifier) Classify(f trace.Flow) Realm {
	var table map[int]Realm
	switch strings.ToLower(f.Proto) {
	case "tcp":
		table = c.tcp
	case "udp":
		table = c.udp
	default:
		return RealmUnknown
	}
	if r, ok := table[f.DstPort]; ok {
		return r
	}
	if r, ok := table[f.SrcPort]; ok {
		return r
	}
	if c.ephemeralP2P &&
		f.SrcPort >= ephemeralPortFloor && f.DstPort >= ephemeralPortFloor {
		return RealmP2P
	}
	return RealmUnknown
}

// VolumeByRealm aggregates the flows' volumes into a 6-dimensional vector
// in canonical realm order. Unknown-realm volume is returned separately.
func (c *Classifier) VolumeByRealm(flows []trace.Flow) (vec [NumRealms]float64, unknown float64) {
	for _, f := range flows {
		r := c.Classify(f)
		if idx := r.Index(); idx >= 0 {
			vec[idx] += float64(f.Bytes)
		} else {
			unknown += float64(f.Bytes)
		}
	}
	return vec, unknown
}

// RealmShare is one realm's slice of the total classified volume.
type RealmShare struct {
	Realm Realm
	Bytes float64
	// Share is the fraction of the classified (non-unknown) volume.
	Share float64
}

// RealmReport ranks the realms by total volume — the trace-level view
// behind the paper's "top applications constitute the vast majority of
// all data traffic" observation. UnknownShare is the fraction of ALL
// volume the heuristics could not attribute.
func (c *Classifier) RealmReport(flows []trace.Flow) (shares []RealmShare, unknownShare float64) {
	vec, unknown := c.VolumeByRealm(flows)
	var classified float64
	for _, v := range vec {
		classified += v
	}
	shares = make([]RealmShare, 0, NumRealms)
	for i, v := range vec {
		realm, _ := RealmFromIndex(i)
		share := 0.0
		if classified > 0 {
			share = v / classified
		}
		shares = append(shares, RealmShare{Realm: realm, Bytes: v, Share: share})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Bytes != shares[j].Bytes {
			return shares[i].Bytes > shares[j].Bytes
		}
		return shares[i].Realm < shares[j].Realm
	})
	if total := classified + unknown; total > 0 {
		unknownShare = unknown / total
	}
	return shares, unknownShare
}
