// Package apps implements the application-identification pipeline of the S³
// study: classifying core-router flow records into the paper's six
// application realms via port/protocol heuristics, and building the
// normalized per-user application profiles (daily 6-category traffic
// vectors) that drive sociality learning.
package apps

import "fmt"

// Realm is one of the paper's six application categories. The paper
// examines the top-30 applications by volume and groups them into these
// realms.
type Realm int

// Application realms, matching the paper's enumeration. Realms start at 1
// so the zero value is recognizably "unset"; RealmUnknown collects flows
// the heuristics cannot attribute (the long tail the paper deems
// non-critical for network engineering).
const (
	RealmIM Realm = iota + 1
	RealmP2P
	RealmMusic
	RealmEmail
	RealmVideo
	RealmWeb
	RealmUnknown
)

// NumRealms is the number of modeled realms (excluding RealmUnknown); the
// application-profile vectors have this dimension.
const NumRealms = 6

// Realms lists the six modeled realms in canonical (profile-vector) order.
func Realms() [NumRealms]Realm {
	return [NumRealms]Realm{RealmIM, RealmP2P, RealmMusic, RealmEmail, RealmVideo, RealmWeb}
}

// String returns the realm's display name.
func (r Realm) String() string {
	switch r {
	case RealmIM:
		return "IM"
	case RealmP2P:
		return "P2P"
	case RealmMusic:
		return "music"
	case RealmEmail:
		return "email"
	case RealmVideo:
		return "video"
	case RealmWeb:
		return "web"
	case RealmUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Realm(%d)", int(r))
	}
}

// Index returns the realm's position in the profile vector, or -1 for
// realms outside the modeled six.
func (r Realm) Index() int {
	if r >= RealmIM && r <= RealmWeb {
		return int(r) - 1
	}
	return -1
}

// RealmFromIndex is the inverse of Index.
func RealmFromIndex(i int) (Realm, error) {
	if i < 0 || i >= NumRealms {
		return RealmUnknown, fmt.Errorf("apps: realm index %d out of range", i)
	}
	return Realm(i + 1), nil
}
