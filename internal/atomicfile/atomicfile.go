package atomicfile

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile writes the output of write to path atomically: write
// receives a buffered writer to a temporary file in path's directory;
// on success the temp file is flushed, fsynced, closed and renamed onto
// path. On any failure the temp file is removed and path is untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicfile: create temp for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicfile: flush %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("atomicfile: rename %s: %w", path, err)
	}
	return nil
}
