package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "second")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Errorf("content = %q, want %q", got, "second")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("leftover temp files: %v", ents)
	}
}

// TestWriteFileFailureLeavesOldContent fails the write callback midway
// and verifies the destination keeps its previous content and no temp
// file survives.
func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "good")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, strings.Repeat("partial", 1000))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "good" {
		t.Errorf("content after failed save = %q, want %q", got, "good")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("leftover temp files after failure: %v", ents)
	}
}
