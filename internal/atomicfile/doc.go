// Package atomicfile writes files so that a crash mid-save can never
// leave a truncated or half-written result in place: content is staged
// to a temporary file in the destination directory, flushed and fsynced,
// and only then renamed over the destination. Rename within one
// directory is atomic on POSIX systems, so readers observe either the
// old file or the complete new one — never a torn state.
//
// It backs every "save" path in the repository that a restart depends
// on: trace.SaveFile, society.SaveModel, and the journal's checkpoint
// snapshots.
//
// The package deliberately has no configuration and no metrics: it is
// the bottom of the durability stack and must stay obviously correct.
package atomicfile
