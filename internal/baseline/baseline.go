// Package baseline implements the comparison association policies of the
// S³ evaluation: Least Loaded First (the paper's state-of-the-art
// baseline, LLF), the strongest-RSSI default every 802.11 client ships
// with, plus random and round-robin controls.
package baseline

import (
	"errors"
	"math/rand"

	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// ErrNoAPs is returned when a selector is called with no candidate APs.
var ErrNoAPs = errors.New("baseline: no candidate APs")

// LLF is the Least Loaded First policy: a new user is assigned to the AP
// with the least current traffic load, the strategy the paper attributes
// to enterprise WLAN controllers (Judd & Steenkiste). Ties break on the
// smaller user count, then AP ID for determinism.
type LLF struct{}

var _ wlan.Selector = LLF{}

// Name implements wlan.Selector.
func (LLF) Name() string { return "LLF" }

// Select implements wlan.Selector.
func (LLF) Select(_ wlan.Request, aps []wlan.APView) (trace.APID, error) {
	if len(aps) == 0 {
		return "", ErrNoAPs
	}
	best := aps[0]
	for _, ap := range aps[1:] {
		if less(ap, best) {
			best = ap
		}
	}
	return best.ID, nil
}

func less(a, b wlan.APView) bool {
	if a.LoadBps != b.LoadBps {
		return a.LoadBps < b.LoadBps
	}
	if len(a.Users) != len(b.Users) {
		return len(a.Users) < len(b.Users)
	}
	return a.ID < b.ID
}

// LeastUsers assigns to the AP with the fewest associated users — the
// "least number of users" variant the paper mentions controllers also
// use. Ties break on load, then ID.
type LeastUsers struct{}

var _ wlan.Selector = LeastUsers{}

// Name implements wlan.Selector.
func (LeastUsers) Name() string { return "LeastUsers" }

// Select implements wlan.Selector.
func (LeastUsers) Select(_ wlan.Request, aps []wlan.APView) (trace.APID, error) {
	if len(aps) == 0 {
		return "", ErrNoAPs
	}
	best := aps[0]
	for _, ap := range aps[1:] {
		if len(ap.Users) < len(best.Users) ||
			(len(ap.Users) == len(best.Users) && less(ap, best)) {
			best = ap
		}
	}
	return best.ID, nil
}

// StrongestRSSI is the 802.11 client default: associate with the AP whose
// signal is strongest, ignoring load — the behaviour whose imbalance
// motivates the paper.
type StrongestRSSI struct{}

var _ wlan.Selector = StrongestRSSI{}

// Name implements wlan.Selector.
func (StrongestRSSI) Name() string { return "StrongestRSSI" }

// Select implements wlan.Selector.
func (StrongestRSSI) Select(_ wlan.Request, aps []wlan.APView) (trace.APID, error) {
	if len(aps) == 0 {
		return "", ErrNoAPs
	}
	best := aps[0]
	for _, ap := range aps[1:] {
		if ap.RSSI > best.RSSI ||
			(ap.RSSI == best.RSSI && ap.ID < best.ID) {
			best = ap
		}
	}
	return best.ID, nil
}

// Random assigns uniformly at random (seeded, for reproducibility).
type Random struct {
	rng *rand.Rand
}

var _ wlan.Selector = (*Random)(nil)

// NewRandom returns a Random selector seeded with seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements wlan.Selector.
func (*Random) Name() string { return "Random" }

// Select implements wlan.Selector.
func (r *Random) Select(_ wlan.Request, aps []wlan.APView) (trace.APID, error) {
	if len(aps) == 0 {
		return "", ErrNoAPs
	}
	return aps[r.rng.Intn(len(aps))].ID, nil
}

// RoundRobin cycles through APs in order, a load-oblivious control.
type RoundRobin struct {
	next int
}

var _ wlan.Selector = (*RoundRobin)(nil)

// Name implements wlan.Selector.
func (*RoundRobin) Name() string { return "RoundRobin" }

// Select implements wlan.Selector.
func (rr *RoundRobin) Select(_ wlan.Request, aps []wlan.APView) (trace.APID, error) {
	if len(aps) == 0 {
		return "", ErrNoAPs
	}
	ap := aps[rr.next%len(aps)]
	rr.next++
	return ap.ID, nil
}
