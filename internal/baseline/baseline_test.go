package baseline

import (
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

func views() []wlan.APView {
	return []wlan.APView{
		{ID: "ap1", LoadBps: 100, Users: []trace.UserID{"a", "b"}, RSSI: -60},
		{ID: "ap2", LoadBps: 50, Users: []trace.UserID{"c"}, RSSI: -40},
		{ID: "ap3", LoadBps: 200, Users: []trace.UserID{}, RSSI: -80},
	}
}

func TestLLF(t *testing.T) {
	got, err := LLF{}.Select(wlan.Request{}, views())
	if err != nil || got != "ap2" {
		t.Errorf("LLF = %v, %v; want ap2", got, err)
	}
	if _, err := (LLF{}).Select(wlan.Request{}, nil); err == nil {
		t.Error("empty APs should error")
	}
	if (LLF{}).Name() == "" {
		t.Error("name empty")
	}
}

func TestLLFTieBreak(t *testing.T) {
	aps := []wlan.APView{
		{ID: "b", LoadBps: 10, Users: []trace.UserID{"x"}},
		{ID: "a", LoadBps: 10, Users: []trace.UserID{"y"}},
	}
	got, err := LLF{}.Select(wlan.Request{}, aps)
	if err != nil || got != "a" {
		t.Errorf("tie-break = %v, want a", got)
	}
	// User count breaks the load tie first.
	aps = []wlan.APView{
		{ID: "a", LoadBps: 10, Users: []trace.UserID{"x", "y"}},
		{ID: "b", LoadBps: 10, Users: []trace.UserID{"z"}},
	}
	got, _ = LLF{}.Select(wlan.Request{}, aps)
	if got != "b" {
		t.Errorf("user-count tie-break = %v, want b", got)
	}
}

func TestLeastUsers(t *testing.T) {
	got, err := LeastUsers{}.Select(wlan.Request{}, views())
	if err != nil || got != "ap3" {
		t.Errorf("LeastUsers = %v, %v; want ap3", got, err)
	}
	if _, err := (LeastUsers{}).Select(wlan.Request{}, nil); err == nil {
		t.Error("empty APs should error")
	}
}

func TestStrongestRSSI(t *testing.T) {
	got, err := StrongestRSSI{}.Select(wlan.Request{}, views())
	if err != nil || got != "ap2" {
		t.Errorf("StrongestRSSI = %v, %v; want ap2 (-40 dBm)", got, err)
	}
	// Deterministic tie-break by ID.
	aps := []wlan.APView{
		{ID: "z", RSSI: -50},
		{ID: "a", RSSI: -50},
	}
	got, _ = StrongestRSSI{}.Select(wlan.Request{}, aps)
	if got != "a" {
		t.Errorf("RSSI tie-break = %v, want a", got)
	}
	if _, err := (StrongestRSSI{}).Select(wlan.Request{}, nil); err == nil {
		t.Error("empty APs should error")
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	a := NewRandom(7)
	b := NewRandom(7)
	for i := 0; i < 20; i++ {
		ga, err := a.Select(wlan.Request{}, views())
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := b.Select(wlan.Request{}, views())
		if ga != gb {
			t.Fatal("same seed should give same sequence")
		}
	}
	if _, err := NewRandom(1).Select(wlan.Request{}, nil); err == nil {
		t.Error("empty APs should error")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	rr := &RoundRobin{}
	want := []trace.APID{"ap1", "ap2", "ap3", "ap1"}
	for i, w := range want {
		got, err := rr.Select(wlan.Request{}, views())
		if err != nil || got != w {
			t.Errorf("call %d = %v, want %v", i, got, w)
		}
	}
	if _, err := (&RoundRobin{}).Select(wlan.Request{}, nil); err == nil {
		t.Error("empty APs should error")
	}
}

func TestSelectorNames(t *testing.T) {
	names := map[string]wlan.Selector{
		"LLF":           LLF{},
		"LeastUsers":    LeastUsers{},
		"StrongestRSSI": StrongestRSSI{},
		"Random":        NewRandom(1),
		"RoundRobin":    &RoundRobin{},
	}
	for want, sel := range names {
		if got := sel.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
