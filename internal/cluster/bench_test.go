package cluster

import (
	"math/rand"
	"testing"
)

func benchPoints(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(5))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func BenchmarkKMeans600x6K4(b *testing.B) {
	pts := benchPoints(600, 6)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, 4, rng, Config{Restarts: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGapStatistic(b *testing.B) {
	pts := benchPoints(200, 6)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GapStatistic(pts, rng, GapConfig{
			MaxK: 6, ReferenceSets: 5, KMeans: Config{Restarts: 2},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSilhouette(b *testing.B) {
	pts := benchPoints(300, 6)
	rng := rand.New(rand.NewSource(3))
	res, err := KMeans(pts, 4, rng, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Silhouette(pts, res.Labels, 4); err != nil {
			b.Fatal(err)
		}
	}
}
