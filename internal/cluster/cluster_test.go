package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fourBlobs generates n points around four well-separated centers in 2D.
func fourBlobs(n int, rng *rand.Rand) ([][]float64, []int) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	points := make([][]float64, 0, n)
	truth := make([]int, 0, n)
	for i := 0; i < n; i++ {
		c := i % len(centers)
		points = append(points, []float64{
			centers[c][0] + rng.NormFloat64()*0.5,
			centers[c][1] + rng.NormFloat64()*0.5,
		})
		truth = append(truth, c)
	}
	return points, truth
}

// gapFriendlyBlobs generates four tight 1D clusters with unequal spacing
// (0, 1, 3, 9). Each successive split up to k = 4 shrinks the observed
// dispersion faster than a uniform reference shrinks (∝ 1/k²), so the gap
// statistic rises monotonically to the true k = 4 and then flattens — the
// geometry Tibshirani's selection rule assumes (and the shape of the
// paper's Fig. 7).
func gapFriendlyBlobs(n int, rng *rand.Rand) [][]float64 {
	centers := []float64{0, 1, 3, 9}
	points := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		points = append(points, []float64{c + rng.NormFloat64()*0.1})
	}
	return points
}

func TestKMeansRecoverBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := fourBlobs(200, rng)
	res, err := KMeans(points, 4, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Each true blob should map to exactly one cluster label.
	blobToLabel := map[int]int{}
	for i, lbl := range res.Labels {
		b := truth[i]
		if prev, ok := blobToLabel[b]; ok {
			if prev != lbl {
				t.Fatalf("blob %d split across labels %d and %d", b, prev, lbl)
			}
		} else {
			blobToLabel[b] = lbl
		}
	}
	if len(blobToLabel) != 4 {
		t.Errorf("recovered %d blobs, want 4", len(blobToLabel))
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KMeans(nil, 1, rng, Config{}); err == nil {
		t.Error("no points should error")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, rng, Config{}); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMeans(pts, 3, rng, Config{}); err == nil {
		t.Error("k>n should error")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := KMeans(ragged, 1, rng, Config{}); err == nil {
		t.Error("ragged data should error")
	}
}

func TestKMeansK1CentroidIsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	res, err := KMeans(points, 1, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4}
	for d := range want {
		if math.Abs(res.Centroids[0][d]-want[d]) > 1e-9 {
			t.Errorf("centroid = %v, want %v", res.Centroids[0], want)
		}
	}
}

func TestKMeansDuplicatePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, 2, rng, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %v, want 0 for identical points", res.Inertia)
	}
}

// Properties: labels are in range, centroids are member means, and inertia
// matches Dispersion.
func TestKMeansInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func() bool {
		n := 5 + rng.Intn(40)
		k := 1 + rng.Intn(4)
		if k > n {
			k = n
		}
		dim := 1 + rng.Intn(5)
		points := make([][]float64, n)
		for i := range points {
			p := make([]float64, dim)
			for d := range p {
				p[d] = rng.Float64() * 10
			}
			points[i] = p
		}
		res, err := KMeans(points, k, rng, Config{Restarts: 2})
		if err != nil {
			return false
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, lbl := range res.Labels {
			if lbl < 0 || lbl >= k {
				return false
			}
			counts[lbl]++
			for d, x := range points[i] {
				sums[lbl][d] += x
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for d := 0; d < dim; d++ {
				want := sums[c][d] / float64(counts[c])
				if math.Abs(res.Centroids[c][d]-want) > 1e-6 {
					return false
				}
			}
		}
		w := Dispersion(points, res.Labels, k)
		return math.Abs(w-res.Inertia) < 1e-6*(1+w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDispersionDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, _ := fourBlobs(100, rng)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := KMeans(points, k, rng, Config{})
		if err != nil {
			t.Fatal(err)
		}
		w := Dispersion(points, res.Labels, k)
		if w > prev+1e-9 {
			t.Errorf("W_%d = %v exceeds W_%d = %v", k, w, k-1, prev)
		}
		prev = w
	}
}

func TestGapStatisticFindsFourBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points := gapFriendlyBlobs(160, rng)
	res, err := GapStatistic(points, rng, GapConfig{
		MaxK:          8,
		ReferenceSets: 8,
		KMeans:        Config{Restarts: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OptimalK != 4 {
		t.Errorf("OptimalK = %d, want 4 (gap curve: %+v)", res.OptimalK, res.Points)
	}
	if len(res.Points) != 8 {
		t.Errorf("curve length = %d, want 8", len(res.Points))
	}
}

func TestGapStatisticErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := GapStatistic(nil, rng, GapConfig{}); err == nil {
		t.Error("empty points should error")
	}
	if _, err := GapStatistic([][]float64{{1}}, rng, GapConfig{}); err == nil {
		t.Error("single point should error")
	}
}

func TestSelectK(t *testing.T) {
	if _, err := SelectK(nil); err == nil {
		t.Error("empty curve should error")
	}
	// Constructed curve: rule fires at k=2.
	curve := []GapPoint{
		{K: 1, Gap: 0.2},
		{K: 2, Gap: 0.9, SK: 0.05},
		{K: 3, Gap: 0.92, SK: 0.05},
	}
	k, err := SelectK(curve)
	if err != nil || k != 2 {
		t.Errorf("SelectK = %d, %v; want 2", k, err)
	}
	// Monotone-increasing gap with tiny SK: no k satisfies, last wins.
	curve = []GapPoint{
		{K: 1, Gap: 0.1}, {K: 2, Gap: 0.5, SK: 0.001}, {K: 3, Gap: 0.9, SK: 0.001},
	}
	k, err = SelectK(curve)
	if err != nil || k != 3 {
		t.Errorf("SelectK = %d, %v; want 3", k, err)
	}
}
