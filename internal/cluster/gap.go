package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// GapPoint is the gap statistic evaluated at one k.
type GapPoint struct {
	K int
	// Gap is Gap(k) = (1/B) Σ_b log(W_kb) − log(W_k).
	Gap float64
	// SK is the reference-set standard deviation s_k (already scaled by
	// sqrt(1 + 1/B) per Tibshirani et al.).
	SK float64
	// LogW is log(W_k) on the observed data.
	LogW float64
}

// GapResult holds the gap-statistic curve and the selected k.
type GapResult struct {
	Points []GapPoint
	// OptimalK is the smallest k with Gap(k) >= Gap(k+1) − s_{k+1}; if no
	// k satisfies the rule, the last evaluated k is returned.
	OptimalK int
}

// GapConfig controls the gap-statistic computation.
type GapConfig struct {
	// MaxK is the largest k to evaluate (default 10).
	MaxK int
	// ReferenceSets is B, the number of uniform reference datasets
	// (default 10).
	ReferenceSets int
	// KMeans configures the underlying clustering runs.
	KMeans Config
}

func (c GapConfig) withDefaults() GapConfig {
	if c.MaxK <= 0 {
		c.MaxK = 10
	}
	if c.ReferenceSets <= 0 {
		c.ReferenceSets = 10
	}
	return c
}

// GapStatistic evaluates Gap(k) for k = 1..MaxK following Tibshirani,
// Walther & Hastie (2001): reference sets are drawn uniformly over the
// bounding box of the observed data, and the optimal k is the smallest k
// with Gap(k) ≥ Gap(k+1) − s_{k+1}.
func GapStatistic(points [][]float64, rng *rand.Rand, cfg GapConfig) (*GapResult, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	cfg = cfg.withDefaults()
	if cfg.MaxK >= len(points) {
		cfg.MaxK = len(points) - 1
	}
	if cfg.MaxK < 1 {
		return nil, fmt.Errorf("cluster: too few points (%d) for gap statistic", len(points))
	}
	dim := len(points[0])
	lo, hi, err := boundingBox(points)
	if err != nil {
		return nil, err
	}

	res := &GapResult{Points: make([]GapPoint, 0, cfg.MaxK)}
	for k := 1; k <= cfg.MaxK; k++ {
		obs, err := KMeans(points, k, rng, cfg.KMeans)
		if err != nil {
			return nil, err
		}
		logW := safeLog(Dispersion(points, obs.Labels, k))

		refLogs := make([]float64, cfg.ReferenceSets)
		for b := 0; b < cfg.ReferenceSets; b++ {
			ref := uniformReference(len(points), dim, lo, hi, rng)
			rres, err := KMeans(ref, k, rng, cfg.KMeans)
			if err != nil {
				return nil, err
			}
			refLogs[b] = safeLog(Dispersion(ref, rres.Labels, k))
		}
		meanRef := mean(refLogs)
		sd := stddev(refLogs, meanRef)
		sk := sd * math.Sqrt(1+1/float64(cfg.ReferenceSets))
		res.Points = append(res.Points, GapPoint{
			K:    k,
			Gap:  meanRef - logW,
			SK:   sk,
			LogW: logW,
		})
	}

	res.OptimalK = res.Points[len(res.Points)-1].K
	for i := 0; i+1 < len(res.Points); i++ {
		cur, next := res.Points[i], res.Points[i+1]
		if cur.Gap >= next.Gap-next.SK {
			res.OptimalK = cur.K
			break
		}
	}
	return res, nil
}

func boundingBox(points [][]float64) (lo, hi []float64, err error) {
	dim := len(points[0])
	lo = append([]float64(nil), points[0]...)
	hi = append([]float64(nil), points[0]...)
	for _, p := range points {
		if len(p) != dim {
			return nil, nil, ErrRaggedData
		}
		for d, x := range p {
			if x < lo[d] {
				lo[d] = x
			}
			if x > hi[d] {
				hi[d] = x
			}
		}
	}
	return lo, hi, nil
}

func uniformReference(n, dim int, lo, hi []float64, rng *rand.Rand) [][]float64 {
	ref := make([][]float64, n)
	for i := range ref {
		p := make([]float64, dim)
		for d := 0; d < dim; d++ {
			p[d] = lo[d] + rng.Float64()*(hi[d]-lo[d])
		}
		ref[i] = p
	}
	return ref
}

// safeLog guards against log(0) when a clustering collapses to zero
// dispersion (e.g. duplicate points); it substitutes a tiny floor.
func safeLog(w float64) float64 {
	const floor = 1e-12
	if w < floor {
		w = floor
	}
	return math.Log(w)
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64, m float64) float64 {
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// ErrNoGapCurve is returned by SelectK when the curve is empty.
var ErrNoGapCurve = errors.New("cluster: empty gap curve")

// SelectK re-applies the Tibshirani rule to an existing curve. Exposed so
// analysis code can render the curve and the decision separately.
func SelectK(points []GapPoint) (int, error) {
	if len(points) == 0 {
		return 0, ErrNoGapCurve
	}
	for i := 0; i+1 < len(points); i++ {
		if points[i].Gap >= points[i+1].Gap-points[i+1].SK {
			return points[i].K, nil
		}
	}
	return points[len(points)-1].K, nil
}
