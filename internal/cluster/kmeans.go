// Package cluster implements the unsupervised-learning substrate of the S³
// study: k-means clustering (k-means++ seeding, multiple restarts) over
// user application profiles, intra-cluster dispersion, and the Tibshirani
// gap statistic used by the paper to select k (it finds k = 4).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Result is a completed clustering: assignments, centroids, and the
// within-cluster dispersion.
type Result struct {
	// K is the number of clusters.
	K int
	// Labels[i] is the cluster (0..K-1) of point i.
	Labels []int
	// Centroids[c] is the mean of cluster c's members.
	Centroids [][]float64
	// Inertia is the total squared distance of points to their centroid.
	Inertia float64
}

// Config controls the k-means run. The zero value is completed with
// sensible defaults by KMeans.
type Config struct {
	// MaxIterations bounds the Lloyd iterations per restart (default 100).
	MaxIterations int
	// Restarts is the number of independent seedings; the best inertia
	// wins (default 8).
	Restarts int
	// Tolerance stops iteration when inertia improves by less than this
	// fraction (default 1e-6).
	Tolerance float64
}

func (c Config) withDefaults() Config {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 100
	}
	if c.Restarts <= 0 {
		c.Restarts = 8
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
	return c
}

// Errors returned by KMeans.
var (
	ErrNoPoints   = errors.New("cluster: no points")
	ErrBadK       = errors.New("cluster: k must be in [1, len(points)]")
	ErrRaggedData = errors.New("cluster: points have differing dimensions")
)

// KMeans clusters points into k groups using Lloyd's algorithm with
// k-means++ seeding and multiple restarts. rng drives all randomness so
// runs are reproducible.
func KMeans(points [][]float64, k int, rng *rand.Rand, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, ErrNoPoints
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d",
				ErrRaggedData, i, len(p), dim)
		}
	}
	cfg = cfg.withDefaults()

	best := &Result{Inertia: math.Inf(1)}
	for r := 0; r < cfg.Restarts; r++ {
		res := lloyd(points, k, rng, cfg)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func lloyd(points [][]float64, k int, rng *rand.Rand, cfg Config) *Result {
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, rng)
	labels := make([]int, len(points))
	counts := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}

	prevInertia := math.Inf(1)
	var inertia float64
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		inertia = 0
		for c := 0; c < k; c++ {
			counts[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c, d2 := nearestCentroid(p, centroids)
			labels[i] = c
			inertia += d2
			counts[c]++
			for d, x := range p {
				sums[c][d] += x
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to avoid dead centroids.
				centroids[c] = append([]float64(nil), farthestPoint(points, centroids, labels)...)
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if prevInertia-inertia <= cfg.Tolerance*math.Max(prevInertia, 1) {
			break
		}
		prevInertia = inertia
	}

	// Final consistency pass: assign against the last centroids, then set
	// each centroid to the exact mean of its members and measure inertia
	// against those means. This guarantees the returned invariants
	// (centroid == member mean, Inertia == Dispersion) even when the loop
	// exits on the iteration cap or tolerance.
	for c := 0; c < k; c++ {
		counts[c] = 0
		for d := range sums[c] {
			sums[c][d] = 0
		}
	}
	for i, p := range points {
		c, _ := nearestCentroid(p, centroids)
		labels[i] = c
		counts[c]++
		for d, x := range p {
			sums[c][d] += x
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue // keep the stale centroid; it has no members
		}
		for d := range centroids[c] {
			centroids[c][d] = sums[c][d] / float64(counts[c])
		}
	}
	inertia = 0
	for i, p := range points {
		inertia += sqDist(p, centroids[labels[i]])
	}
	return &Result{K: k, Labels: labels, Centroids: centroids, Inertia: inertia}
}

// seedPlusPlus picks k initial centroids via k-means++: the first uniformly
// at random, the rest proportional to squared distance from the nearest
// chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centroids = append(centroids, append([]float64(nil), first...))

	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			_, dist := nearestCentroid(p, centroids)
			d2[i] = dist
			total += dist
		}
		var next []float64
		if total == 0 {
			// All points coincide with a centroid; pick any.
			next = points[rng.Intn(n)]
		} else {
			target := rng.Float64() * total
			var acc float64
			idx := n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
			next = points[idx]
		}
		centroids = append(centroids, append([]float64(nil), next...))
	}
	return centroids
}

func nearestCentroid(p []float64, centroids [][]float64) (int, float64) {
	bestC, bestD := 0, math.Inf(1)
	for c, cen := range centroids {
		d := sqDist(p, cen)
		if d < bestD {
			bestC, bestD = c, d
		}
	}
	return bestC, bestD
}

func farthestPoint(points [][]float64, centroids [][]float64, labels []int) []float64 {
	bestI, bestD := 0, -1.0
	for i, p := range points {
		d := sqDist(p, centroids[labels[i]])
		if d > bestD {
			bestI, bestD = i, d
		}
	}
	return points[bestI]
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Dispersion returns W_k, the pooled within-cluster dispersion used by the
// gap statistic: Σ_r (1/(2 n_r)) Σ_{i,j∈r} ‖x_i − x_j‖², which equals
// Σ_r Σ_{i∈r} ‖x_i − μ_r‖² — i.e. the inertia.
func Dispersion(points [][]float64, labels []int, k int) float64 {
	dim := 0
	if len(points) > 0 {
		dim = len(points[0])
	}
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	counts := make([]int, k)
	for i, p := range points {
		c := labels[i]
		counts[c]++
		for d, x := range p {
			sums[c][d] += x
		}
	}
	var w float64
	for i, p := range points {
		c := labels[i]
		if counts[c] == 0 {
			continue
		}
		for d, x := range p {
			mu := sums[c][d] / float64(counts[c])
			diff := x - mu
			w += diff * diff
		}
	}
	return w
}
