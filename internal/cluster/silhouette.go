package cluster

import (
	"errors"
	"math"
	"math/rand"
)

// Silhouette analysis — an alternative cluster-count heuristic to the gap
// statistic (the paper notes k selection "is an open research problem"
// with several heuristics; this one cross-checks Fig. 7's choice).

// ErrSilhouetteK is returned when silhouette is requested for k < 2.
var ErrSilhouetteK = errors.New("cluster: silhouette needs k >= 2")

// Silhouette returns the mean silhouette coefficient of a clustering:
// s(i) = (b(i) − a(i)) / max(a(i), b(i)), where a is the mean distance to
// the point's own cluster and b the smallest mean distance to another
// cluster. Range [−1, 1]; higher is better. Points alone in their
// cluster contribute 0.
func Silhouette(points [][]float64, labels []int, k int) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, ErrNoPoints
	}
	if k < 2 {
		return 0, ErrSilhouetteK
	}
	if len(labels) != n {
		return 0, errors.New("cluster: labels/points length mismatch")
	}
	counts := make([]int, k)
	for _, l := range labels {
		if l < 0 || l >= k {
			return 0, errors.New("cluster: label out of range")
		}
		counts[l]++
	}

	var total float64
	sums := make([]float64, k) // reused per point: Σ dist to each cluster
	for i := 0; i < n; i++ {
		for c := range sums {
			sums[c] = 0
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sums[labels[j]] += math.Sqrt(sqDist(points[i], points[j]))
		}
		own := labels[i]
		if counts[own] <= 1 {
			continue // singleton: s = 0 by convention
		}
		a := sums[own] / float64(counts[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue // no other non-empty cluster
		}
		if denom := math.Max(a, b); denom > 0 {
			total += (b - a) / denom
		}
	}
	return total / float64(n), nil
}

// SilhouetteCurve clusters points for each k in [2, maxK] and returns the
// mean silhouette per k plus the best k. Complexity is O(maxK · n²); use
// on samples, not full traces.
func SilhouetteCurve(points [][]float64, maxK int, rng *rand.Rand, cfg Config) (scores []float64, bestK int, err error) {
	if len(points) == 0 {
		return nil, 0, ErrNoPoints
	}
	if maxK < 2 {
		return nil, 0, ErrSilhouetteK
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	best := math.Inf(-1)
	for k := 2; k <= maxK; k++ {
		res, err := KMeans(points, k, rng, cfg)
		if err != nil {
			return nil, 0, err
		}
		s, err := Silhouette(points, res.Labels, k)
		if err != nil {
			return nil, 0, err
		}
		scores = append(scores, s)
		if s > best {
			best = s
			bestK = k
		}
	}
	return scores, bestK, nil
}
