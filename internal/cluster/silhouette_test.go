package cluster

import (
	"math/rand"
	"testing"
)

func TestSilhouetteSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	points, truth := fourBlobs(120, rng)
	s, err := Silhouette(points, truth, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.8 {
		t.Errorf("well-separated blobs silhouette = %v, want > 0.8", s)
	}
	// A deliberately wrong labeling (consecutive blocks mix all four
	// blobs into each label) scores much worse.
	bad := make([]int, len(truth))
	for i := range bad {
		bad[i] = (i / 4) % 4
	}
	sBad, err := Silhouette(points, bad, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sBad >= s {
		t.Errorf("bad labels (%v) should score below truth (%v)", sBad, s)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	if _, err := Silhouette(nil, nil, 2); err == nil {
		t.Error("empty points should error")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := Silhouette(pts, []int{0, 0}, 1); err == nil {
		t.Error("k < 2 should error")
	}
	if _, err := Silhouette(pts, []int{0}, 2); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Silhouette(pts, []int{0, 5}, 2); err == nil {
		t.Error("label out of range should error")
	}
}

func TestSilhouetteSingletons(t *testing.T) {
	// One singleton cluster: its point contributes 0, not NaN.
	pts := [][]float64{{0}, {0.1}, {10}}
	s, err := Silhouette(pts, []int{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 || s > 1 {
		t.Errorf("silhouette = %v out of range", s)
	}
}

func TestSilhouetteCurveFindsFour(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points, _ := fourBlobs(120, rng)
	scores, bestK, err := SilhouetteCurve(points, 7, rng, Config{Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 6 { // k = 2..7
		t.Fatalf("scores = %v", scores)
	}
	if bestK != 4 {
		t.Errorf("bestK = %d, want 4 (scores %v)", bestK, scores)
	}
}

func TestSilhouetteCurveErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := SilhouetteCurve(nil, 4, rng, Config{}); err == nil {
		t.Error("empty points should error")
	}
	if _, _, err := SilhouetteCurve([][]float64{{1}, {2}}, 1, rng, Config{}); err == nil {
		t.Error("maxK < 2 should error")
	}
}
