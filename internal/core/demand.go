// Package core implements the paper's primary contribution: the S³
// (Social-aware AP Selection Scheme) association policy. It combines a
// trained sociality model (internal/society) with live AP state to place
// each arriving user so that socially-tight users — those likely to leave
// together — end up on different APs, keeping load balanced through churn
// without ever migrating an associated user.
package core

import (
	"errors"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// DemandEstimator predicts a user's bandwidth demand w(u) from their
// session history, per the paper's reference to multiscale traffic
// predictability: the mean observed per-session throughput, falling back
// to the population mean for unseen users.
type DemandEstimator struct {
	perUser map[trace.UserID]float64
	global  float64
}

// ErrNoHistory is returned when an estimator is built with no usable
// sessions.
var ErrNoHistory = errors.New("core: no history sessions with positive duration")

// NewDemandEstimator trains an estimator from historical sessions.
// Zero-duration sessions are skipped.
func NewDemandEstimator(history []trace.Session) (*DemandEstimator, error) {
	sums := make(map[trace.UserID]float64)
	counts := make(map[trace.UserID]int)
	var globalSum float64
	var globalN int
	for _, s := range history {
		tp := s.Throughput()
		if s.Duration() <= 0 {
			continue
		}
		sums[s.User] += tp
		counts[s.User]++
		globalSum += tp
		globalN++
	}
	if globalN == 0 {
		return nil, ErrNoHistory
	}
	perUser := make(map[trace.UserID]float64, len(sums))
	for u, sum := range sums {
		perUser[u] = sum / float64(counts[u])
	}
	return &DemandEstimator{
		perUser: perUser,
		global:  globalSum / float64(globalN),
	}, nil
}

// Demand returns the estimated bytes/second for user u.
func (d *DemandEstimator) Demand(u trace.UserID) float64 {
	if v, ok := d.perUser[u]; ok {
		return v
	}
	return d.global
}

// Known reports whether u has personal history.
func (d *DemandEstimator) Known(u trace.UserID) bool {
	_, ok := d.perUser[u]
	return ok
}

// GlobalMean returns the population mean throughput.
func (d *DemandEstimator) GlobalMean() float64 { return d.global }
