package core

import (
	"math"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func TestNewDemandEstimator(t *testing.T) {
	history := []trace.Session{
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 100, Bytes: 1000},  // 10 B/s
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 100, Bytes: 3000},  // 30 B/s
		{User: "u2", AP: "a", ConnectAt: 0, DisconnectAt: 100, Bytes: 10000}, // 100 B/s
		{User: "u3", AP: "a", ConnectAt: 50, DisconnectAt: 50, Bytes: 999},   // skipped
	}
	d, err := NewDemandEstimator(history)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Demand("u1"); math.Abs(got-20) > 1e-9 {
		t.Errorf("Demand(u1) = %v, want 20", got)
	}
	if got := d.Demand("u2"); math.Abs(got-100) > 1e-9 {
		t.Errorf("Demand(u2) = %v, want 100", got)
	}
	// Unknown user gets the population mean (10+30+100)/3.
	want := (10.0 + 30.0 + 100.0) / 3.0
	if got := d.Demand("ghost"); math.Abs(got-want) > 1e-9 {
		t.Errorf("Demand(ghost) = %v, want %v", got, want)
	}
	if !d.Known("u1") || d.Known("ghost") || d.Known("u3") {
		t.Error("Known() wrong")
	}
	if math.Abs(d.GlobalMean()-want) > 1e-9 {
		t.Errorf("GlobalMean = %v, want %v", d.GlobalMean(), want)
	}
}

func TestNewDemandEstimatorEmpty(t *testing.T) {
	if _, err := NewDemandEstimator(nil); err == nil {
		t.Error("empty history should error")
	}
	onlyZero := []trace.Session{
		{User: "u", AP: "a", ConnectAt: 5, DisconnectAt: 5, Bytes: 10},
	}
	if _, err := NewDemandEstimator(onlyZero); err == nil {
		t.Error("zero-duration-only history should error")
	}
}
