package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// friendMapIndex wraps mapIndex with precomputed close-friend lists,
// satisfying FriendIndex at a given threshold.
type friendMapIndex struct {
	mapIndex
	threshold float64
	friends   map[trace.UserID][]trace.UserID
}

func newFriendMapIndex(idx mapIndex, threshold float64) *friendMapIndex {
	f := &friendMapIndex{mapIndex: idx, threshold: threshold, friends: map[trace.UserID][]trace.UserID{}}
	for p, w := range idx {
		if w > threshold {
			f.friends[p[0]] = append(f.friends[p[0]], p[1])
			f.friends[p[1]] = append(f.friends[p[1]], p[0])
		}
	}
	for u := range f.friends {
		fs := f.friends[u]
		sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	}
	return f
}

func (f *friendMapIndex) CloseFriends(u trace.UserID) []trace.UserID { return f.friends[u] }
func (f *friendMapIndex) FriendThreshold() float64                   { return f.threshold }

// TestFriendFastPathEnablement: the merge fast path engages only when
// the index is a FriendIndex whose threshold matches the selector's.
func TestFriendFastPathEnablement(t *testing.T) {
	idx := newFriendMapIndex(mapIndex{pair("u", "w"): 0.9}, 0.3)
	s, err := NewSelector(idx, SelectorConfig{EdgeThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if s.friends == nil {
		t.Error("matching threshold: fast path not enabled")
	}
	s, err = NewSelector(idx, SelectorConfig{EdgeThreshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.friends != nil {
		t.Error("mismatched threshold: fast path must stay off (rankings would diverge)")
	}
	s, err = NewSelector(idx.mapIndex, SelectorConfig{EdgeThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if s.friends != nil {
		t.Error("plain SocialIndex: fast path must stay off")
	}
}

// TestFriendFastPathParity: with and without the precomputed friend
// lists, Select must return the identical AP for randomized view sets —
// the merge is an optimization, never a ranking change.
func TestFriendFastPathParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	users := make([]trace.UserID, 24)
	for i := range users {
		users[i] = trace.UserID(fmt.Sprintf("u%02d", i))
	}
	idx := mapIndex{}
	for i := range users {
		for j := i + 1; j < len(users); j++ {
			if rng.Float64() < 0.3 {
				idx[pair(users[i], users[j])] = rng.Float64() // some above, some below 0.3
			}
		}
	}
	fidx := newFriendMapIndex(idx, 0.3)
	fast, err := NewSelector(fidx, SelectorConfig{EdgeThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if fast.friends == nil {
		t.Fatal("fast path not enabled")
	}
	slow, err := NewSelector(idx, SelectorConfig{EdgeThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 200; trial++ {
		nAPs := 2 + rng.Intn(5)
		aps := make([]wlan.APView, nAPs)
		perm := rng.Perm(len(users))
		at := 0
		for i := range aps {
			n := rng.Intn(6)
			var members []trace.UserID
			for k := 0; k < n && at < len(perm); k++ {
				members = append(members, users[perm[at]])
				at++
			}
			sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
			aps[i] = wlan.APView{
				ID:          trace.APID(fmt.Sprintf("ap%d", i)),
				CapacityBps: 1e6,
				LoadBps:     float64(rng.Intn(500)),
				Users:       members,
			}
		}
		req := wlan.Request{User: users[rng.Intn(len(users))], DemandBps: float64(1 + rng.Intn(100))}
		a, errA := fast.Select(req, aps)
		b, errB := slow.Select(req, aps)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("trial %d: fast = %v (%v), slow = %v (%v)\nreq %+v\naps %+v",
				trial, a, errA, b, errB, req, aps)
		}
	}
}
