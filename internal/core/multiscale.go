package core

import (
	"errors"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// MultiscaleEstimator refines the plain per-user mean with the multiscale
// structure the paper cites (Qiao et al., "multiscale predictability of
// network traffic"): per-user demand varies systematically with the hour
// of day, so the estimator keeps an hour-of-day profile per user and
// blends it with the user's overall mean and the population mean in
// proportion to available evidence.
type MultiscaleEstimator struct {
	epoch   int64
	base    *DemandEstimator
	byHour  map[trace.UserID]*hourProfile
	shrinkN float64 // pseudo-count for shrinkage toward the user mean
}

type hourProfile struct {
	sum   [24]float64
	count [24]int
}

// NewMultiscaleEstimator trains from history sessions. epoch anchors the
// hour-of-day computation (the trace's day-0 midnight).
func NewMultiscaleEstimator(history []trace.Session, epoch int64) (*MultiscaleEstimator, error) {
	base, err := NewDemandEstimator(history)
	if err != nil {
		return nil, err
	}
	m := &MultiscaleEstimator{
		epoch:   epoch,
		base:    base,
		byHour:  make(map[trace.UserID]*hourProfile),
		shrinkN: 3,
	}
	for _, s := range history {
		if s.Duration() <= 0 {
			continue
		}
		hp := m.byHour[s.User]
		if hp == nil {
			hp = &hourProfile{}
			m.byHour[s.User] = hp
		}
		h := trace.HourOfDay(epoch, s.ConnectAt)
		hp.sum[h] += s.Throughput()
		hp.count[h]++
	}
	return m, nil
}

// ErrBadHour is returned for hours outside [0, 24).
var ErrBadHour = errors.New("core: hour out of range")

// DemandAt estimates user u's demand for an arrival at timestamp ts,
// shrinking the hour-of-day estimate toward the user's overall mean when
// that hour has little evidence.
func (m *MultiscaleEstimator) DemandAt(u trace.UserID, ts int64) float64 {
	userMean := m.base.Demand(u)
	hp := m.byHour[u]
	if hp == nil {
		return userMean
	}
	h := trace.HourOfDay(m.epoch, ts)
	n := float64(hp.count[h])
	if n == 0 {
		return userMean
	}
	hourMean := hp.sum[h] / n
	// Bayesian-style shrinkage: few observations lean on the user mean.
	return (n*hourMean + m.shrinkN*userMean) / (n + m.shrinkN)
}

// Demand returns the hour-agnostic estimate (the base estimator).
func (m *MultiscaleEstimator) Demand(u trace.UserID) float64 {
	return m.base.Demand(u)
}

// HourObservations reports how many history sessions back the (user,
// hour) cell — exposed for diagnostics.
func (m *MultiscaleEstimator) HourObservations(u trace.UserID, hour int) (int, error) {
	if hour < 0 || hour > 23 {
		return 0, ErrBadHour
	}
	hp := m.byHour[u]
	if hp == nil {
		return 0, nil
	}
	return hp.count[hour], nil
}
