package core

import (
	"math"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func multiscaleHistory() []trace.Session {
	// u1: light in the morning (hour 9), heavy in the evening (hour 20),
	// several observations each so shrinkage barely matters.
	var out []trace.Session
	for d := int64(0); d < 10; d++ {
		base := d * 86400
		out = append(out,
			trace.Session{User: "u1", AP: "a",
				ConnectAt: base + 9*3600, DisconnectAt: base + 9*3600 + 100, Bytes: 1000}, // 10 B/s
			trace.Session{User: "u1", AP: "a",
				ConnectAt: base + 20*3600, DisconnectAt: base + 20*3600 + 100, Bytes: 100000}, // 1000 B/s
		)
	}
	return out
}

func TestMultiscaleEstimatorHourly(t *testing.T) {
	m, err := NewMultiscaleEstimator(multiscaleHistory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	morning := m.DemandAt("u1", 9*3600+50)
	evening := m.DemandAt("u1", 20*3600+50)
	if morning >= evening {
		t.Errorf("morning %v should be far below evening %v", morning, evening)
	}
	// With 10 observations and shrinkN = 3, estimates sit between the
	// hour mean and the overall mean (505 B/s), close to the hour mean.
	if morning < 10 || morning > 200 {
		t.Errorf("morning = %v, want near 10 with shrinkage toward 505", morning)
	}
	if evening < 800 || evening > 1000 {
		t.Errorf("evening = %v, want near 1000", evening)
	}
	// Hour-agnostic estimate is the plain mean.
	if got := m.Demand("u1"); math.Abs(got-505) > 1e-9 {
		t.Errorf("Demand = %v, want 505", got)
	}
}

func TestMultiscaleEstimatorFallbacks(t *testing.T) {
	m, err := NewMultiscaleEstimator(multiscaleHistory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Unseen hour: the user mean.
	if got := m.DemandAt("u1", 3*3600); math.Abs(got-505) > 1e-9 {
		t.Errorf("unseen hour = %v, want user mean 505", got)
	}
	// Unknown user: the population mean at any hour.
	pop := m.Demand("ghost")
	if got := m.DemandAt("ghost", 9*3600); got != pop {
		t.Errorf("unknown user = %v, want population mean %v", got, pop)
	}
}

func TestMultiscaleEstimatorEmptyHistory(t *testing.T) {
	if _, err := NewMultiscaleEstimator(nil, 0); err == nil {
		t.Error("empty history should error")
	}
}

func TestHourObservations(t *testing.T) {
	m, err := NewMultiscaleEstimator(multiscaleHistory(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.HourObservations("u1", 9)
	if err != nil || n != 10 {
		t.Errorf("HourObservations(9) = %d, %v; want 10", n, err)
	}
	n, err = m.HourObservations("u1", 3)
	if err != nil || n != 0 {
		t.Errorf("HourObservations(3) = %d, %v; want 0", n, err)
	}
	if _, err := m.HourObservations("u1", 24); err == nil {
		t.Error("hour 24 should error")
	}
	n, err = m.HourObservations("ghost", 5)
	if err != nil || n != 0 {
		t.Errorf("unknown user observations = %d, %v", n, err)
	}
}
