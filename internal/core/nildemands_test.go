package core

import (
	"testing"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// allFriends marks every pair socially close, forcing friendLoadBuckets
// to walk each view's full user list — the only code path that indexes
// UserDemands.
type allFriends struct{}

func (allFriends) Index(u, v trace.UserID) float64 {
	if u == v {
		return 0
	}
	return 1
}

// TestNilUserDemandsViews is the APView.UserDemands nil-handling
// regression test: a view may legitimately carry Users without
// UserDemands (callers that do not track per-user demand), or a
// UserDemands slice shorter than Users (the batch path's projectView
// appends projected users to Users only). Every selector must treat the
// missing entries as one requester-demand unit instead of panicking.
func TestNilUserDemandsViews(t *testing.T) {
	views := []wlan.APView{
		{
			ID:          "ap-nil",
			CapacityBps: 1000,
			LoadBps:     10,
			Users:       []trace.UserID{"a", "b", "c"},
			UserDemands: nil, // no per-user demand tracked
			RSSI:        -40,
		},
		{
			ID:          "ap-short",
			CapacityBps: 1000,
			LoadBps:     5,
			Users:       []trace.UserID{"d", "e"},
			UserDemands: []float64{7}, // shorter than Users
			RSSI:        -60,
		},
	}
	req := wlan.Request{User: "u", At: 100, DemandBps: 3}

	sel, err := NewSelector(allFriends{}, DefaultSelectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sel.Select(req, views); err != nil {
		t.Fatalf("S3 Select with nil UserDemands: %v", err)
	}
	reqs := []wlan.Request{
		{User: "u", At: 100, DemandBps: 3},
		{User: "v", At: 100, DemandBps: 4},
		{User: "w", At: 100, DemandBps: 5},
	}
	placed, err := sel.SelectBatch(reqs, views)
	if err != nil {
		t.Fatalf("S3 SelectBatch with nil UserDemands: %v", err)
	}
	if len(placed) != len(reqs) {
		t.Fatalf("SelectBatch placed %d of %d users", len(placed), len(reqs))
	}

	selectors := []wlan.Selector{
		baseline.LLF{},
		baseline.LeastUsers{},
		baseline.StrongestRSSI{},
		baseline.NewRandom(1),
		&baseline.RoundRobin{},
	}
	for _, s := range selectors {
		if _, err := s.Select(req, views); err != nil {
			t.Errorf("%s with nil UserDemands: %v", s.Name(), err)
		}
	}
}
