package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// randomIndex builds a random symmetric social index over a user universe.
func randomIndex(rng *rand.Rand, users []trace.UserID, density float64) mapIndex {
	idx := mapIndex{}
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			if rng.Float64() < density {
				idx[pair(users[i], users[j])] = rng.Float64()
			}
		}
	}
	return idx
}

// TestSelectNeverViolatesCapacityWhenFeasible: whenever at least one AP
// can absorb the demand, S³ must not pick an AP that cannot.
func TestSelectNeverViolatesCapacityWhenFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	universe := make([]trace.UserID, 20)
	for i := range universe {
		universe[i] = trace.UserID(fmt.Sprintf("u%02d", i))
	}
	f := func() bool {
		idx := randomIndex(rng, universe, 0.3)
		s, err := NewSelector(idx, SelectorConfig{})
		if err != nil {
			return false
		}
		nAPs := 2 + rng.Intn(5)
		demand := 1 + rng.Float64()*100
		aps := make([]wlan.APView, 0, nAPs)
		anyFeasible := false
		for i := 0; i < nAPs; i++ {
			capacity := rng.Float64() * 300
			load := rng.Float64() * capacity
			var users []trace.UserID
			var demands []float64
			for j := 0; j < rng.Intn(5); j++ {
				users = append(users, universe[rng.Intn(len(universe))])
				demands = append(demands, rng.Float64()*50)
			}
			ap := wlan.APView{
				ID:          trace.APID(fmt.Sprintf("ap%d", i)),
				CapacityBps: capacity,
				LoadBps:     load,
				Users:       users,
				UserDemands: demands,
			}
			if ap.HasCapacityFor(demand) {
				anyFeasible = true
			}
			aps = append(aps, ap)
		}
		req := wlan.Request{User: universe[rng.Intn(len(universe))], DemandBps: demand}
		got, err := s.Select(req, aps)
		if err != nil {
			return false
		}
		if !anyFeasible {
			return true // fallback may overload; only feasibility matters here
		}
		for _, ap := range aps {
			if ap.ID == got {
				return ap.HasCapacityFor(demand)
			}
		}
		return false // chose an unknown AP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSelectBatchAssignsEveryoneToKnownAPs: batch placement must cover
// every requested user with a valid AP.
func TestSelectBatchAssignsEveryoneToKnownAPs(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	universe := make([]trace.UserID, 16)
	for i := range universe {
		universe[i] = trace.UserID(fmt.Sprintf("u%02d", i))
	}
	f := func() bool {
		idx := randomIndex(rng, universe, 0.4)
		s, err := NewSelector(idx, SelectorConfig{BeamWidth: 16})
		if err != nil {
			return false
		}
		nAPs := 2 + rng.Intn(4)
		aps := make([]wlan.APView, 0, nAPs)
		known := map[trace.APID]bool{}
		for i := 0; i < nAPs; i++ {
			id := trace.APID(fmt.Sprintf("ap%d", i))
			known[id] = true
			aps = append(aps, wlan.APView{ID: id, LoadBps: rng.Float64() * 100})
		}
		nReqs := 1 + rng.Intn(8)
		perm := rng.Perm(len(universe))
		reqs := make([]wlan.Request, 0, nReqs)
		for i := 0; i < nReqs; i++ {
			reqs = append(reqs, wlan.Request{
				User:      universe[perm[i]],
				DemandBps: rng.Float64() * 50,
			})
		}
		got, err := s.SelectBatch(reqs, aps)
		if err != nil {
			return false
		}
		if len(got) != nReqs {
			return false
		}
		for _, r := range reqs {
			ap, ok := got[r.User]
			if !ok || !known[ap] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSelectDeterministic: identical inputs give identical outputs.
func TestSelectDeterministic(t *testing.T) {
	idx := mapIndex{pair("a", "b"): 0.7, pair("a", "c"): 0.4}
	s, err := NewSelector(idx, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "x", LoadBps: 5, Users: []trace.UserID{"b"}},
		{ID: "y", LoadBps: 7, Users: []trace.UserID{"c"}},
		{ID: "z", LoadBps: 9},
	}
	req := wlan.Request{User: "a", DemandBps: 3}
	first, err := s.Select(req, aps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		got, err := s.Select(req, aps)
		if err != nil || got != first {
			t.Fatalf("iteration %d: %v, %v (first %v)", i, got, err, first)
		}
	}
}
