package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/s3wlan/s3wlan/internal/metrics"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// Observability of the selector hot path. Counters are atomic and
// always on; the histogram is observed once per batch placement, not
// per candidate, so the beam search itself stays allocation-free.
var (
	obsSelects       = obs.GetCounter("core.select.calls", "Single-user Select invocations of the S³ policy")
	obsGuardFallback = obs.GetCounter("core.select.guard_fallbacks", "Selections where the balance guard overrode the social choice")
	obsBatches       = obs.GetCounter("core.batch.calls", "Group placements via Algorithm 1 (PlaceBatch invocations)")
	obsBatchUsers    = obs.GetCounter("core.batch.users", "Users placed through batch placements")
	obsCliques       = obs.GetCounter("core.batch.cliques", "Cliques extracted across batch placements")
	obsBeamCands     = obs.GetCounter("core.beam.candidates", "Candidate distributions scored by the beam search")
	obsExhaustive    = obs.GetCounter("core.beam.exhaustive_cliques", "Cliques small enough for exhaustive distribution enumeration")
	obsBatchTime     = obs.GetHistogram("core.batch.place", "Latency of one batch placement (Algorithm 1)")
)

// SocialIndex supplies the social relation index θ(u,v) between two users.
// *society.Model satisfies this interface.
type SocialIndex interface {
	Index(u, v trace.UserID) float64
}

// FriendIndex extends SocialIndex with a precomputed close-friend list:
// CloseFriends(u) returns, sorted and read-only, exactly the users v
// with θ(u,v) > FriendThreshold(). The incremental engine
// (society/incremental) satisfies it from the θ-graph it already
// maintains. A selector whose EdgeThreshold matches FriendThreshold
// computes friend-load buckets by merging two sorted lists instead of
// evaluating Index against every user on every candidate AP.
type FriendIndex interface {
	SocialIndex
	CloseFriends(u trace.UserID) []trace.UserID
	FriendThreshold() float64
}

// SelectorConfig tunes the S³ policy.
type SelectorConfig struct {
	// EdgeThreshold is the θ value above which two users are considered
	// to have a close social relationship; the paper uses 0.3.
	EdgeThreshold float64
	// TopFraction is the share of best-cost candidate distributions kept
	// before the balance-index tie-break; the paper's Algorithm 1 keeps
	// the top 30%.
	TopFraction float64
	// BeamWidth bounds the candidate distributions explored per clique.
	// The paper "searches the solution space"; an exhaustive search is
	// exponential, so we beam-search the lowest-ΣC prefixes. Default 64.
	BeamWidth int
	// BalanceGuard bounds how far above the least-loaded AP a socially
	// preferable AP may be and still be chosen: candidates must satisfy
	// load ≤ minLoad + BalanceGuard·(mean domain load + demand). This
	// implements the paper's secondary objective — "prevent the balance
	// index from decreasing too much" — as a hard guard on the online
	// decision. Default 0.5.
	BalanceGuard float64
}

// DefaultSelectorConfig returns the paper's operating point.
func DefaultSelectorConfig() SelectorConfig {
	return SelectorConfig{
		EdgeThreshold: 0.3,
		TopFraction:   0.3,
		BeamWidth:     64,
		BalanceGuard:  0.5,
	}
}

func (c SelectorConfig) withDefaults() SelectorConfig {
	if c.EdgeThreshold <= 0 {
		c.EdgeThreshold = 0.3
	}
	if c.TopFraction <= 0 || c.TopFraction > 1 {
		c.TopFraction = 0.3
	}
	if c.BeamWidth <= 0 {
		c.BeamWidth = 64
	}
	if c.BalanceGuard <= 0 {
		c.BalanceGuard = 0.5
	}
	return c
}

// Selector is the S³ association policy. It implements both
// wlan.Selector (single arrivals) and wlan.BatchSelector (co-arriving
// groups, Algorithm 1).
type Selector struct {
	social SocialIndex
	// friends is non-nil when social also satisfies FriendIndex at the
	// selector's own edge threshold — the precondition for the merge
	// fast path to rank identically to the Index scan.
	friends FriendIndex
	cfg     SelectorConfig
}

var (
	_ wlan.Selector      = (*Selector)(nil)
	_ wlan.BatchSelector = (*Selector)(nil)
)

// NewSelector builds an S³ selector over a trained sociality model.
// When the index also satisfies FriendIndex and its threshold matches
// the selector's EdgeThreshold, Select uses the precomputed close-friend
// lists instead of rescanning every AP's users with Index.
func NewSelector(social SocialIndex, cfg SelectorConfig) (*Selector, error) {
	if social == nil {
		return nil, errors.New("core: nil social index")
	}
	s := &Selector{social: social, cfg: cfg.withDefaults()}
	if fi, ok := social.(FriendIndex); ok && fi.FriendThreshold() == s.cfg.EdgeThreshold {
		s.friends = fi
	}
	return s, nil
}

// Name implements wlan.Selector.
func (s *Selector) Name() string { return "S3" }

// ErrNoAPs is returned when Select is called with no candidates.
var ErrNoAPs = errors.New("core: no candidate APs")

// cost returns C(AP) = Σ_{w∈S(AP)} θ(u,w) over the AP's users with a
// *close* social relationship to u (θ above the edge threshold, the
// paper's 0.3 cut for recognizing real relationships), or +Inf when the
// bandwidth constraint Σw(u) ≤ W(i) would be violated. Sub-threshold θ —
// mostly the dense α·T type prior every profiled pair carries — is noise
// for placement: counting it would turn C into a user-count proxy and
// override the load-aware LLF tie-break the pseudocode prescribes.
func (s *Selector) cost(u trace.UserID, demand float64, ap wlan.APView) float64 {
	if !ap.HasCapacityFor(demand) {
		return math.Inf(1)
	}
	var c float64
	for _, w := range ap.Users {
		if theta := s.social.Index(u, w); theta > s.cfg.EdgeThreshold {
			c += theta
		}
	}
	return c
}

// Select implements wlan.Selector: pick the feasible AP that minimizes
// the social-cost increment, then fall back to least-loaded-first, per
// the pseudocode's "if S(AP) is empty or there are multiple candidate APs
// to choose, we simply apply LLF". The ranking is lexicographic:
//
//  1. fewest close social relations on the AP (disperse co-leavers),
//  2. least loaded (the paper's secondary balance objective — with equal
//     close-relation counts the θ-strength differences are weak
//     predictors, while the load difference directly moves the balance
//     index, so LLF decides).
//
// When no AP satisfies the bandwidth constraint, S³ degrades to LLF over
// all APs rather than rejecting the user (the controller must serve
// everyone; the overload is recorded by the simulator).
func (s *Selector) Select(req wlan.Request, aps []wlan.APView) (trace.APID, error) {
	if len(aps) == 0 {
		return "", ErrNoAPs
	}
	obsSelects.Inc()
	// The balance guard: social preference may not pick an AP whose load
	// is too far above the domain minimum, or the dispersal would cost
	// more instantaneous imbalance than the co-leaving resilience buys.
	minLoad := math.Inf(1)
	var totalLoad float64
	for _, ap := range aps {
		totalLoad += ap.LoadBps
		if ap.LoadBps < minLoad {
			minLoad = ap.LoadBps
		}
	}
	guard := minLoad + s.cfg.BalanceGuard*(totalLoad/float64(len(aps))+req.DemandBps)

	// Single pass, no candidate slices: track the best guarded candidate
	// (friend buckets are computed only for those), the least-loaded
	// feasible AP and — implicitly, via leastLoaded — the least-loaded AP
	// overall for the two fallbacks. Replacement is strict (cand.less /
	// apLess), so ties resolve to the earliest AP exactly as the former
	// slice-then-scan ranking did.
	bestIdx, feasIdx := -1, -1
	var bestRank rankedAP
	for i := range aps {
		ap := &aps[i]
		if !ap.HasCapacityFor(req.DemandBps) {
			continue
		}
		if feasIdx < 0 || apLess(*ap, aps[feasIdx]) {
			feasIdx = i
		}
		if ap.LoadBps > guard {
			continue
		}
		cand := rankedAP{ap: *ap, friends: s.friendLoadBuckets(req, *ap)}
		if bestIdx < 0 || cand.less(bestRank) {
			bestIdx, bestRank = i, cand
		}
	}
	if bestIdx >= 0 {
		return aps[bestIdx].ID, nil
	}
	// No AP is both feasible and within the guard: fall back to the
	// least-loaded feasible AP, and only overload when nothing can
	// absorb the demand at all.
	obsGuardFallback.Inc()
	if feasIdx >= 0 {
		return aps[feasIdx].ID, nil
	}
	return leastLoaded(aps), nil
}

// friendLoadBuckets measures how much co-leaving load already sits on the
// AP from the requester's perspective: the summed believed demand of the
// AP's users with a close (θ > threshold) relationship to the requester,
// quantized in units of the requester's own demand. Quantizing keeps the
// comparison meaningful — differences smaller than one user's demand are
// noise and must not override the LLF tie-break. When the caller supplies
// no per-user demands each friend counts as one requester-demand unit,
// reducing to a friend count.
func (s *Selector) friendLoadBuckets(req wlan.Request, ap wlan.APView) int {
	unit := req.DemandBps
	if unit <= 0 {
		unit = 1
	}
	var friendLoad float64
	if s.friends != nil {
		// Fast path: ap.Users and the close-friend list are both sorted,
		// so their intersection is one merge — no Index call per user.
		// CloseFriends lists exactly the θ > threshold partners, and never
		// the requester (the θ-graph has no self-edges), matching the
		// Index-scan semantics below.
		fs := s.friends.CloseFriends(req.User)
		i, j := 0, 0
		for i < len(ap.Users) && j < len(fs) {
			switch {
			case ap.Users[i] < fs[j]:
				i++
			case ap.Users[i] > fs[j]:
				j++
			default:
				if i < len(ap.UserDemands) {
					friendLoad += ap.UserDemands[i]
				} else {
					friendLoad += unit
				}
				i++
				j++
			}
		}
		return int(math.Floor(friendLoad / unit))
	}
	for i, w := range ap.Users {
		if s.social.Index(req.User, w) <= s.cfg.EdgeThreshold {
			continue
		}
		if i < len(ap.UserDemands) {
			friendLoad += ap.UserDemands[i]
		} else {
			friendLoad += unit
		}
	}
	return int(math.Floor(friendLoad / unit))
}

// rankedAP is an online-selection candidate.
type rankedAP struct {
	ap      wlan.APView
	friends int
}

// less orders candidates by (friend count, load, users, ID) — the
// lexicographic ranking documented on Select.
func (a rankedAP) less(b rankedAP) bool {
	if a.friends != b.friends {
		return a.friends < b.friends
	}
	return apLess(a.ap, b.ap)
}

func apLess(a, b wlan.APView) bool {
	if a.LoadBps != b.LoadBps {
		return a.LoadBps < b.LoadBps
	}
	if len(a.Users) != len(b.Users) {
		return len(a.Users) < len(b.Users)
	}
	return a.ID < b.ID
}

func leastLoaded(aps []wlan.APView) trace.APID {
	best := aps[0]
	for _, ap := range aps[1:] {
		if apLess(ap, best) {
			best = ap
		}
	}
	return best.ID
}

// SelectBatch implements Algorithm 1 for a group of simultaneous
// arrivals:
//
//  1. Build the graph G over the batch users with edges where
//     θ(u,v) > EdgeThreshold.
//  2. Repeatedly extract a maximum clique (ties: largest edge-weight
//     sum).
//  3. For each clique, search candidate distributions of its members to
//     APs, rank by ΣᵢC(APᵢ), keep the top TopFraction, and choose the one
//     whose projected load vector has the best balance index.
//  4. Update the (projected) AP states and continue until G is empty.
func (s *Selector) SelectBatch(reqs []wlan.Request, aps []wlan.APView) (map[trace.UserID]trace.APID, error) {
	if len(aps) == 0 {
		return nil, ErrNoAPs
	}
	if len(reqs) == 0 {
		return map[trace.UserID]trace.APID{}, nil
	}
	obsBatches.Inc()
	obsBatchUsers.Add(int64(len(reqs)))
	batchStart := time.Now()
	defer func() { obsBatchTime.Observe(time.Since(batchStart)) }()

	demands := make(map[trace.UserID]float64, len(reqs))
	users := make([]trace.UserID, 0, len(reqs))
	for _, r := range reqs {
		if _, dup := demands[r.User]; dup {
			return nil, fmt.Errorf("core: duplicate user %q in batch", r.User)
		}
		demands[r.User] = r.DemandBps
		users = append(users, r.User)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	g := socialgraph.FromThreshold(users, s.cfg.EdgeThreshold, s.social.Index)
	cover := socialgraph.ExtractCliqueCover(g)

	// Projected AP state, updated as cliques are placed.
	state := make([]wlan.APView, len(aps))
	copy(state, aps)
	for i := range state {
		state[i].Users = append([]trace.UserID(nil), aps[i].Users...)
	}

	obsCliques.Add(int64(len(cover)))
	out := make(map[trace.UserID]trace.APID, len(users))
	for _, clique := range cover {
		assignment, err := s.placeClique(clique, demands, state)
		if err != nil {
			return nil, err
		}
		for u, apIdx := range assignment {
			out[u] = state[apIdx].ID
			state[apIdx].LoadBps += demands[u]
			state[apIdx].Users = append(state[apIdx].Users, u)
		}
	}
	return out, nil
}

// beamCandidate is a partial distribution of a clique's members to APs.
type beamCandidate struct {
	assign []int   // assign[i] = AP index of clique member i
	cost   float64 // accumulated ΣC increment
	used   map[int]int
}

// exhaustiveLimit caps the candidate-distribution count for which
// placeClique enumerates the full solution space (the paper's "search the
// solution space of distribution users"); larger cliques use the beam.
const exhaustiveLimit = 4096

// placeClique searches distributions of the clique's members to APs.
// Members of a clique are spread over distinct APs whenever the domain
// has enough APs; otherwise AP reuse is minimized. Small cliques are
// solved exhaustively; large ones by beam search over the lowest-ΣC
// prefixes.
func (s *Selector) placeClique(clique []trace.UserID,
	demands map[trace.UserID]float64, state []wlan.APView) (map[trace.UserID]int, error) {

	// Order members by demand (desc) so the beam places heavy users
	// first; deterministic tie-break by ID.
	members := append([]trace.UserID(nil), clique...)
	sort.Slice(members, func(i, j int) bool {
		di, dj := demands[members[i]], demands[members[j]]
		if di != dj {
			return di > dj
		}
		return members[i] < members[j]
	})

	maxPerAP := (len(members) + len(state) - 1) / len(state)

	// Exhaustive when the space is small: len(state)^len(members)
	// candidates bounded by exhaustiveLimit. The beam search prunes to
	// BeamWidth per level otherwise.
	beamWidth := s.cfg.BeamWidth
	if pow := intPow(len(state), len(members)); pow > 0 && pow <= exhaustiveLimit {
		beamWidth = pow
		obsExhaustive.Inc()
	}

	// One batched counter update per clique: candidates generated across
	// all beam levels, accumulated locally to keep the loop atomic-free.
	var candsGenerated int64
	defer func() { obsBeamCands.Add(candsGenerated) }()

	beam := []beamCandidate{{assign: nil, cost: 0, used: map[int]int{}}}
	for mi, u := range members {
		var next []beamCandidate
		for _, cand := range beam {
			for apIdx, ap := range state {
				if cand.used[apIdx] >= maxPerAP {
					continue // keep clique members dispersed
				}
				// Project the AP's state after this candidate's earlier
				// placements.
				projected := s.projectView(ap, cand, members[:mi], demands, apIdx)
				c := s.cost(u, demands[u], projected)
				if math.IsInf(c, 1) {
					// Infeasible: heavily penalized but not discarded —
					// every user must land somewhere.
					c = 1e18
				}
				nc := beamCandidate{
					assign: append(append([]int(nil), cand.assign...), apIdx),
					cost:   cand.cost + c,
					used:   copyCounts(cand.used),
				}
				nc.used[apIdx]++
				next = append(next, nc)
			}
		}
		candsGenerated += int64(len(next))
		sortCandidates(next)
		if len(next) > beamWidth {
			next = next[:beamWidth]
		}
		beam = next
	}
	if len(beam) == 0 {
		return nil, fmt.Errorf("core: no distribution found for clique of %d", len(clique))
	}

	// Keep the top TopFraction by cost — tie-inclusive, so equal-cost
	// distributions (the common no-social-ties case) all reach the
	// balance tie-break — then pick the best projected balance index.
	keep := int(math.Ceil(float64(len(beam)) * s.cfg.TopFraction))
	if keep < 1 {
		keep = 1
	}
	for keep < len(beam) && beam[keep].cost == beam[keep-1].cost {
		keep++
	}
	finalists := beam[:keep]
	bestIdx, bestBeta := 0, -1.0
	for i, cand := range finalists {
		beta := s.projectedBalance(cand, members, demands, state)
		if beta > bestBeta {
			bestIdx, bestBeta = i, beta
		}
	}
	chosen := finalists[bestIdx]
	out := make(map[trace.UserID]int, len(members))
	for i, u := range members {
		out[u] = chosen.assign[i]
	}
	return out, nil
}

// projectView returns ap with the candidate's earlier same-AP placements
// folded in, so cost sees intra-clique θ too.
func (s *Selector) projectView(ap wlan.APView, cand beamCandidate,
	placed []trace.UserID, demands map[trace.UserID]float64, apIdx int) wlan.APView {
	if cand.used[apIdx] == 0 {
		return ap
	}
	view := ap
	view.Users = append([]trace.UserID(nil), ap.Users...)
	for i, u := range placed {
		if cand.assign[i] == apIdx {
			view.Users = append(view.Users, u)
			view.LoadBps += demands[u]
		}
	}
	return view
}

// projectedBalance computes the normalized balance index of the AP load
// vector after applying the candidate distribution.
func (s *Selector) projectedBalance(cand beamCandidate,
	members []trace.UserID, demands map[trace.UserID]float64,
	state []wlan.APView) float64 {
	loads := make([]float64, len(state))
	for i, ap := range state {
		loads[i] = ap.LoadBps
	}
	for i, u := range members {
		loads[cand.assign[i]] += demands[u]
	}
	beta, err := metrics.NormalizedBalanceIndex(loads)
	if err != nil {
		return 0
	}
	return beta
}

// intPow returns base^exp, or -1 once the result exceeds exhaustiveLimit
// (the caller only needs to know whether exhaustive enumeration fits).
func intPow(base, exp int) int {
	result := 1
	for i := 0; i < exp; i++ {
		result *= base
		if result < 0 || result > exhaustiveLimit {
			return -1
		}
	}
	return result
}

func copyCounts(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortCandidates(cands []beamCandidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		// Deterministic order among equal costs.
		a, b := cands[i].assign, cands[j].assign
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
