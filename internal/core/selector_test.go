package core

import (
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// mapIndex is a test SocialIndex backed by a symmetric map.
type mapIndex map[[2]trace.UserID]float64

func (m mapIndex) Index(u, v trace.UserID) float64 {
	if v < u {
		u, v = v, u
	}
	return m[[2]trace.UserID{u, v}]
}

func pair(u, v trace.UserID) [2]trace.UserID {
	if v < u {
		u, v = v, u
	}
	return [2]trace.UserID{u, v}
}

func TestNewSelectorValidation(t *testing.T) {
	if _, err := NewSelector(nil, SelectorConfig{}); err == nil {
		t.Error("nil social index should error")
	}
	s, err := NewSelector(mapIndex{}, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "S3" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.cfg.EdgeThreshold != 0.3 || s.cfg.TopFraction != 0.3 || s.cfg.BeamWidth != 64 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
}

func TestSelectAvoidsSocialFriends(t *testing.T) {
	// u's friend w sits on ap1; ap2 is slightly busier but socially
	// empty. S³ must pick ap2 (min social cost), unlike LLF which would
	// pick ap1.
	idx := mapIndex{pair("u", "w"): 0.9}
	s, err := NewSelector(idx, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "ap1", LoadBps: 10, Users: []trace.UserID{"w"}},
		{ID: "ap2", LoadBps: 20, Users: []trace.UserID{"x"}},
	}
	got, err := s.Select(wlan.Request{User: "u", DemandBps: 5}, aps)
	if err != nil || got != "ap2" {
		t.Errorf("Select = %v, %v; want ap2", got, err)
	}
}

func TestSelectBalanceGuardOverridesSociality(t *testing.T) {
	// ap2 has no friends but is far above the least-loaded AP: the
	// balance guard forbids it, so u lands next to their friend on ap1.
	idx := mapIndex{pair("u", "w"): 0.9}
	s, err := NewSelector(idx, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "ap1", LoadBps: 10, Users: []trace.UserID{"w"}},
		{ID: "ap2", LoadBps: 500, Users: []trace.UserID{"x"}},
	}
	got, err := s.Select(wlan.Request{User: "u", DemandBps: 5}, aps)
	if err != nil || got != "ap1" {
		t.Errorf("Select = %v, %v; want ap1 (guard)", got, err)
	}
}

func TestSelectFallsBackToLLFOnTies(t *testing.T) {
	s, err := NewSelector(mapIndex{}, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "ap1", LoadBps: 100, Users: []trace.UserID{"a"}},
		{ID: "ap2", LoadBps: 10, Users: []trace.UserID{"b"}},
	}
	// No social ties anywhere: both costs 0, LLF picks ap2.
	got, err := s.Select(wlan.Request{User: "u"}, aps)
	if err != nil || got != "ap2" {
		t.Errorf("Select = %v, %v; want ap2 (LLF fallback)", got, err)
	}
}

func TestSelectRespectsCapacity(t *testing.T) {
	idx := mapIndex{pair("u", "w"): 0.9}
	s, err := NewSelector(idx, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		// Socially free but full.
		{ID: "full", CapacityBps: 100, LoadBps: 99, Users: []trace.UserID{"x"}},
		// Has the friend but has room.
		{ID: "roomy", CapacityBps: 100, LoadBps: 10, Users: []trace.UserID{"w"}},
	}
	got, err := s.Select(wlan.Request{User: "u", DemandBps: 50}, aps)
	if err != nil || got != "roomy" {
		t.Errorf("Select = %v, %v; want roomy (capacity constraint)", got, err)
	}
}

func TestSelectAllInfeasibleFallsBack(t *testing.T) {
	s, err := NewSelector(mapIndex{}, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "a", CapacityBps: 10, LoadBps: 9},
		{ID: "b", CapacityBps: 10, LoadBps: 5},
	}
	got, err := s.Select(wlan.Request{User: "u", DemandBps: 50}, aps)
	if err != nil || got != "b" {
		t.Errorf("Select = %v, %v; want b (least loaded despite overload)", got, err)
	}
}

func TestSelectNoAPs(t *testing.T) {
	s, _ := NewSelector(mapIndex{}, SelectorConfig{})
	if _, err := s.Select(wlan.Request{User: "u"}, nil); err == nil {
		t.Error("no APs should error")
	}
	if _, err := s.SelectBatch([]wlan.Request{{User: "u"}}, nil); err == nil {
		t.Error("no APs should error in batch")
	}
}

func TestSelectBatchDispersesClique(t *testing.T) {
	// Three mutually-tight users (a clique) and three APs: each must land
	// on a different AP.
	idx := mapIndex{
		pair("a", "b"): 0.8,
		pair("b", "c"): 0.8,
		pair("a", "c"): 0.8,
	}
	s, err := NewSelector(idx, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "ap1"}, {ID: "ap2"}, {ID: "ap3"},
	}
	reqs := []wlan.Request{
		{User: "a", DemandBps: 10},
		{User: "b", DemandBps: 10},
		{User: "c", DemandBps: 10},
	}
	got, err := s.SelectBatch(reqs, aps)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[trace.APID]bool{}
	for u, ap := range got {
		if seen[ap] {
			t.Errorf("clique members share AP %v: %v", ap, got)
		}
		seen[ap] = true
		_ = u
	}
	if len(got) != 3 {
		t.Errorf("assignments = %v, want 3", got)
	}
}

func TestSelectBatchCliqueLargerThanAPs(t *testing.T) {
	idx := mapIndex{
		pair("a", "b"): 0.9, pair("a", "c"): 0.9, pair("a", "d"): 0.9,
		pair("b", "c"): 0.9, pair("b", "d"): 0.9, pair("c", "d"): 0.9,
	}
	s, err := NewSelector(idx, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{{ID: "ap1"}, {ID: "ap2"}}
	reqs := []wlan.Request{
		{User: "a", DemandBps: 10}, {User: "b", DemandBps: 10},
		{User: "c", DemandBps: 10}, {User: "d", DemandBps: 10},
	}
	got, err := s.SelectBatch(reqs, aps)
	if err != nil {
		t.Fatal(err)
	}
	// Four clique members over two APs: 2 + 2, never 3 + 1.
	counts := map[trace.APID]int{}
	for _, ap := range got {
		counts[ap]++
	}
	if counts["ap1"] != 2 || counts["ap2"] != 2 {
		t.Errorf("distribution = %v, want 2/2", counts)
	}
}

func TestSelectBatchUnrelatedUsersBalance(t *testing.T) {
	// No social edges: the batch degenerates to per-user placement that
	// keeps loads level.
	s, err := NewSelector(mapIndex{}, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "ap1", LoadBps: 0},
		{ID: "ap2", LoadBps: 0},
	}
	reqs := []wlan.Request{
		{User: "a", DemandBps: 10}, {User: "b", DemandBps: 10},
		{User: "c", DemandBps: 10}, {User: "d", DemandBps: 10},
	}
	got, err := s.SelectBatch(reqs, aps)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[trace.APID]int{}
	for _, ap := range got {
		counts[ap]++
	}
	if counts["ap1"] != 2 || counts["ap2"] != 2 {
		t.Errorf("distribution = %v, want 2/2", counts)
	}
}

func TestSelectBatchDuplicateUser(t *testing.T) {
	s, _ := NewSelector(mapIndex{}, SelectorConfig{})
	reqs := []wlan.Request{{User: "a"}, {User: "a"}}
	if _, err := s.SelectBatch(reqs, []wlan.APView{{ID: "ap1"}}); err == nil {
		t.Error("duplicate user should error")
	}
}

func TestSelectBatchEmptyReqs(t *testing.T) {
	s, _ := NewSelector(mapIndex{}, SelectorConfig{})
	got, err := s.SelectBatch(nil, []wlan.APView{{ID: "ap1"}})
	if err != nil || len(got) != 0 {
		t.Errorf("empty batch = %v, %v", got, err)
	}
}

func TestSelectBatchTwoCliques(t *testing.T) {
	// Two separate pairs; each pair must be split across APs.
	idx := mapIndex{
		pair("a1", "a2"): 0.9,
		pair("b1", "b2"): 0.9,
	}
	s, err := NewSelector(idx, SelectorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{{ID: "ap1"}, {ID: "ap2"}}
	reqs := []wlan.Request{
		{User: "a1", DemandBps: 10}, {User: "a2", DemandBps: 10},
		{User: "b1", DemandBps: 10}, {User: "b2", DemandBps: 10},
	}
	got, err := s.SelectBatch(reqs, aps)
	if err != nil {
		t.Fatal(err)
	}
	if got["a1"] == got["a2"] {
		t.Errorf("pair a not dispersed: %v", got)
	}
	if got["b1"] == got["b2"] {
		t.Errorf("pair b not dispersed: %v", got)
	}
}

func TestDefaultSelectorConfig(t *testing.T) {
	cfg := DefaultSelectorConfig()
	if cfg.EdgeThreshold != 0.3 || cfg.TopFraction != 0.3 || cfg.BeamWidth != 64 {
		t.Errorf("DefaultSelectorConfig = %+v", cfg)
	}
}

func TestIntPow(t *testing.T) {
	tests := []struct {
		base, exp, want int
	}{
		{3, 0, 1},
		{3, 2, 9},
		{4, 5, 1024},
		{4, 6, 4096},
		{4, 7, -1}, // beyond the exhaustive limit
		{10, 10, -1},
	}
	for _, tt := range tests {
		if got := intPow(tt.base, tt.exp); got != tt.want {
			t.Errorf("intPow(%d, %d) = %d, want %d", tt.base, tt.exp, got, tt.want)
		}
	}
}

func TestSelectBatchExhaustiveMatchesWideBeam(t *testing.T) {
	// For small cliques the exhaustive path must agree with an
	// effectively-unbounded beam (they search the same space).
	idx := mapIndex{
		pair("a", "b"): 0.9, pair("a", "c"): 0.8, pair("b", "c"): 0.7,
	}
	exhaustive, err := NewSelector(idx, SelectorConfig{BeamWidth: 1}) // widened internally
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewSelector(idx, SelectorConfig{BeamWidth: 100000})
	if err != nil {
		t.Fatal(err)
	}
	aps := []wlan.APView{
		{ID: "x", LoadBps: 3}, {ID: "y", LoadBps: 7}, {ID: "z", LoadBps: 5},
	}
	reqs := []wlan.Request{
		{User: "a", DemandBps: 10},
		{User: "b", DemandBps: 20},
		{User: "c", DemandBps: 30},
	}
	got1, err := exhaustive.SelectBatch(reqs, aps)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := wide.SelectBatch(reqs, aps)
	if err != nil {
		t.Fatal(err)
	}
	for u, ap := range got1 {
		if got2[u] != ap {
			t.Errorf("user %s: exhaustive %v vs wide beam %v", u, ap, got2[u])
		}
	}
}
