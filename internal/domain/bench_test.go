package domain

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// benchShards and benchUsers define the published sharding grid: ns/op
// for 1, 4 and 16 shards at 10k and 100k resident users. The CI step
// emits the grid as BENCH_domain.json via TestDomainBenchJSON.
var (
	benchShards = []int{1, 4, 16}
	benchUsers  = []int{10_000, 100_000}
)

const benchAPCount = 256

// newBenchDomain builds a domain with benchAPCount APs and `users`
// resident associations spread across them.
func newBenchDomain(tb testing.TB, shards, users int) (*Domain, []trace.APID) {
	tb.Helper()
	d := New(Config{Shards: shards})
	aps := make([]trace.APID, benchAPCount)
	for i := range aps {
		aps[i] = trace.APID(fmt.Sprintf("ap%03d", i))
		if err := d.AddAP(aps[i], 1e9); err != nil {
			tb.Fatal(err)
		}
	}
	ps := make([]Placement, 0, 1024)
	for i := 0; i < users; i++ {
		ps = append(ps, Placement{
			User:      trace.UserID(fmt.Sprintf("resident%06d", i)),
			AP:        aps[i%benchAPCount],
			DemandBps: 1000,
		})
		if len(ps) == cap(ps) {
			if _, err := d.Commit(ps, nil); err != nil {
				tb.Fatal(err)
			}
			ps = ps[:0]
		}
	}
	if len(ps) > 0 {
		if _, err := d.Commit(ps, nil); err != nil {
			tb.Fatal(err)
		}
	}
	return d, aps
}

// benchDomainCommit measures concurrent single-shard associations: each
// worker churns its own user across the AP ring, one forced single-
// placement commit plus the matching leave per op. With one shard every
// worker serializes on one lock; with 16 shards disjoint decisions
// proceed in parallel — the throughput ratio is the sharding win.
func benchDomainCommit(b *testing.B, shards, users int) {
	d, aps := newBenchDomain(b, shards, users)
	var ctr atomic.Int64
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ctr.Add(1)
		u := trace.UserID(fmt.Sprintf("worker%03d", id))
		i := int(id)
		for pb.Next() {
			ap := aps[i%benchAPCount]
			i++
			if _, err := d.Commit([]Placement{{User: u, AP: ap, DemandBps: 500}}, nil); err != nil {
				b.Error(err)
				return
			}
			d.Leave(u, ap, 500)
		}
	})
}

func BenchmarkDomainCommit(b *testing.B) {
	for _, shards := range benchShards {
		for _, users := range benchUsers {
			b.Run(fmt.Sprintf("shards=%d/users=%d", shards, users), func(b *testing.B) {
				benchDomainCommit(b, shards, users)
			})
		}
	}
}

// BenchmarkDomainViews measures view-snapshot assembly (the lock-free
// selection path's read side) at the same grid.
func BenchmarkDomainViews(b *testing.B) {
	for _, shards := range benchShards {
		for _, users := range benchUsers {
			b.Run(fmt.Sprintf("shards=%d/users=%d", shards, users), func(b *testing.B) {
				d, _ := newBenchDomain(b, shards, users)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if v, _ := d.Views("bench-user"); len(v) != benchAPCount {
						b.Fatalf("views = %d", len(v))
					}
				}
			})
		}
	}
}

// TestDomainBenchJSON emits the sharding grid as machine-readable JSON
// (ns/op for every shards×users cell) to the path named by the
// DOMAIN_BENCH_JSON environment variable. Skipped when unset, so plain
// `go test` stays fast; CI points it at BENCH_domain.json.
func TestDomainBenchJSON(t *testing.T) {
	path := os.Getenv("DOMAIN_BENCH_JSON")
	if path == "" {
		t.Skip("DOMAIN_BENCH_JSON not set")
	}
	type row struct {
		Name    string  `json:"name"`
		Shards  int     `json:"shards"`
		Users   int     `json:"users"`
		NsPerOp float64 `json:"ns_per_op"`
		Ops     int     `json:"ops"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		MaxProcs  int    `json:"gomaxprocs"`
		Rows      []row  `json:"rows"`
	}{Benchmark: "DomainCommit", MaxProcs: runtime.GOMAXPROCS(0)}
	for _, shards := range benchShards {
		for _, users := range benchUsers {
			shards, users := shards, users
			r := testing.Benchmark(func(b *testing.B) {
				benchDomainCommit(b, shards, users)
			})
			out.Rows = append(out.Rows, row{
				Name:    fmt.Sprintf("DomainCommit/shards=%d/users=%d", shards, users),
				Shards:  shards,
				Users:   users,
				NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
				Ops:     r.N,
			})
			t.Logf("shards=%d users=%d: %.0f ns/op (%d ops)",
				shards, users, float64(r.T.Nanoseconds())/float64(r.N), r.N)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
