// Package domain is the shared association-domain core: the one place
// in the repository that holds AP registry state, per-AP load and user
// accounting, capacity admission, view snapshotting for association
// policies, versioned check-and-retry commits, and session-log emission.
//
// Both execution paths are thin drivers over it — the batch simulator
// (internal/wlan) replays a trace through a Domain per controller, and
// the live TCP controller (internal/protocol) serves stations from one —
// so a policy decision is byte-identical in simulation and deployment by
// construction: the same view assembly, the same admission predicate,
// the same commit arithmetic.
//
// # Sharding
//
// A Domain is partitioned into a configurable number of shards by a
// stable AP→shard hash (FNV-1a of the AP ID). Each shard owns its APs
// behind its own RWMutex and carries its own version counter, bumped on
// every structural change (AP set, membership, failure state). Policy
// selection runs lock-free against a snapshot: Views collects per-shard
// read-locked copies plus the per-shard version vector, the selector
// deliberates without any lock held, and Commit re-validates only the
// versions of the shards the decision touches.
//
// A decision that lands entirely inside one shard commits on the fast
// path — one shard lock, one version check — so concurrent
// single-shard associations scale with the shard count. A placement
// set that spans shards (S³'s Algorithm 1 distributing a social clique
// across APs) takes the deterministic two-phase path: the involved
// shards are locked in ascending index order, all versions validated,
// all placements applied, then released — all-or-nothing, so a stale
// snapshot never half-commits a clique.
//
// Commit with a nil Version skips validation (the forced commit a
// caller uses after exhausting retries, and the batch simulator's
// default: single-threaded replay can never be stale).
//
// # Staleness model
//
// The version vector is collected shard-by-shard without a global lock,
// so a snapshot is not a consistent cut across shards; validation is
// per-shard. A change in a shard the decision does not touch never
// invalidates the commit. This is deliberate: membership mutation stays
// serialized per shard, so staleness can cost decision optimality but
// never state consistency — the same contract the live controller has
// always documented for its retry loop.
package domain
