package domain

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Commit-path health, exported through the obs registry. Counters are
// process-wide (they accumulate across every Domain instance, live or
// simulated); per-shard gauges are registered only for named domains
// (Config.ObsName) so parallel experiment cells do not fight over them.
var (
	obsCommitSingle = obs.GetCounter("domain.commit.single_shard", "Placement commits on the single-shard fast path")
	obsCommitMulti  = obs.GetCounter("domain.commit.multi_shard", "Placement commits through the two-phase multi-shard path")
	obsCommitStale  = obs.GetCounter("domain.commit.stale", "Commits rejected because the shard version moved (caller retries)")
	obsCommitForced = obs.GetCounter("domain.commit.forced", "Commits applied after exhausting stale retries")
	obsOverloads    = obs.GetCounter("domain.overloads", "Placements admitted beyond AP capacity (admission override)")
	obsEvictions    = obs.GetCounter("domain.evictions", "APs removed (failures, lease expiries)")
	obsViews        = obs.GetCounter("domain.views", "APView snapshots taken")
)

// Sentinel errors returned by Commit.
var (
	// ErrUnknownAP reports a placement onto an AP the domain does not
	// know (removed, expired, or a policy bug).
	ErrUnknownAP = errors.New("unknown AP")
	// ErrFailedAP reports a placement onto an AP that is marked failed.
	ErrFailedAP = errors.New("AP is failed")
	// ErrStale reports that a shard touched by the commit changed after
	// the view snapshot was taken; the caller should re-snapshot and
	// re-select, or force the commit with a nil Version.
	ErrStale = errors.New("stale view version")
)

// LoadMode selects which load figure Views exposes to policies.
type LoadMode int

const (
	// LoadBelieved exposes the live sum of believed user demands — the
	// simulator's default (the controller performs associations itself,
	// so association state is always current).
	LoadBelieved LoadMode = iota
	// LoadReported exposes the last published report snapshot
	// (PublishReports / SetReported) — the simulator's stale-report mode
	// modelling CAPWAP-style periodic statistics.
	LoadReported
	// LoadMax exposes max(reported, believed) — the live controller's
	// mode, so a silent AP agent still yields sane decisions.
	LoadMax
)

// APView is a policy's read-only view of one AP's live state. Both the
// batch simulator and the live controller hand policies exactly this
// (internal/wlan aliases the type), assembled by Domain.Views.
type APView struct {
	// ID identifies the AP.
	ID trace.APID
	// CapacityBps is the AP's bandwidth W(i) in bytes/second.
	CapacityBps float64
	// LoadBps is the AP's traffic load as selected by the domain's
	// LoadMode (believed demand sum, last report, or their max).
	LoadBps float64
	// Users are the currently associated users (sorted).
	Users []trace.UserID
	// UserDemands[i] is the believed demand (bytes/second) of Users[i].
	// May be nil when the caller does not track per-user demand;
	// consumers must guard their indexing.
	UserDemands []float64
	// RSSI is the received signal strength the requesting user sees for
	// this AP, in dBm (higher is stronger). Synthesized via the domain's
	// RSSI function; used by the strongest-signal baseline.
	RSSI float64
}

// HasCapacityFor reports whether adding demand keeps the AP within its
// bandwidth constraint Σw(u) ≤ W(i); it is the view-level face of the
// shared Admits predicate.
func (v APView) HasCapacityFor(demand float64) bool {
	return Admits(v.CapacityBps, v.LoadBps, demand)
}

// Admits is the single capacity-admission predicate: adding demandBps to
// loadBps keeps the AP within capacityBps. APs with zero capacity are
// unconstrained (capacity not modeled). Every admission check in the
// repository — selector feasibility, simulator overload accounting,
// commit overload accounting — routes through this function.
func Admits(capacityBps, loadBps, demandBps float64) bool {
	if capacityBps <= 0 {
		return true
	}
	return loadBps+demandBps <= capacityBps
}

// FNV-1a parameters, inlined so the hot paths (per-view RSSI synthesis,
// per-placement shard routing) hash without instantiating a hash.Hash32
// — hash/fnv's New32a escapes to the heap on every call.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

func fnv32aString(h uint32, s string) uint32 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * fnvPrime32
	}
	return h
}

// Hash is the domain's stable FNV-1a string hash — the function behind
// ShardOf. Exported so higher layers that partition the same ID spaces
// (the federation ownership map splitting APs and users across
// controller replicas) stay aligned with the in-process shard routing:
// group = Hash(id) % groups, shard = Hash(ap) % shards, one hash.
func Hash(s string) uint32 {
	return fnv32aString(uint32(fnvOffset32), s)
}

// SyntheticRSSI derives a stable pseudo-random signal strength in
// [-90, -30] dBm from the (user, AP) pair. It stands in for physical
// proximity: each user consistently "hears" some APs louder than others,
// which is all the strongest-RSSI baseline needs. Simulator and live
// controller share it, so signal-driven policies decide identically in
// both. The hash is FNV-1a over user|0x00|AP, computed inline — bit
// identical to the historical hash/fnv implementation, without its
// per-call allocation.
func SyntheticRSSI(u trace.UserID, ap trace.APID) float64 {
	h := fnv32aString(uint32(fnvOffset32), string(u))
	h = (h ^ 0) * fnvPrime32
	h = fnv32aString(h, string(ap))
	return -90 + float64(h%61)
}

// Version is the per-shard version vector captured by Views. Commit
// validates only the entries of shards the placement set touches; nil
// skips validation entirely (forced commit).
type Version []uint64

// Placement asks the domain to associate one user with one AP.
type Placement struct {
	User trace.UserID
	AP   trace.APID
	// DemandBps is the user's believed bandwidth demand.
	DemandBps float64
	// Prev, when non-empty, names an AP the user must be fully removed
	// from in the same atomic commit — a re-association move. The
	// removal and the placement land under the same two-phase lock, so
	// a user is never observably on two APs or on none.
	Prev trace.APID
}

// CommitResult reports what a commit did beyond succeeding.
type CommitResult struct {
	// Overloads counts placements that violated the bandwidth constraint
	// (admission failed but the placement was applied anyway — the
	// domain must serve everyone; policies record the fallback).
	Overloads int
}

// Eviction is one user removed from an AP by a structural event (AP
// failure or removal), with the believed demand they held.
type Eviction struct {
	User      trace.UserID
	DemandBps float64
}

// APInfo is one AP's externally visible state (Snapshot/inspection).
type APInfo struct {
	CapacityBps float64
	ReportedBps float64
	BelievedBps float64
	Failed      bool
	Users       []trace.UserID // sorted
	UserDemands []float64      // aligned with Users
}

// Config configures a Domain.
type Config struct {
	// Shards is the number of AP-partitioned lock domains; <= 1 keeps a
	// single shard. The AP→shard mapping is a stable hash, so a given
	// topology shards identically across runs.
	Shards int
	// Mode selects the load figure views expose (default LoadBelieved).
	Mode LoadMode
	// RSSI supplies the per-(user, AP) signal strength views carry;
	// defaults to SyntheticRSSI.
	RSSI func(u trace.UserID, ap trace.APID) float64
	// SessionLog, when non-nil, receives one JSON record per completed
	// association through LogSession — the "back-end data center" login
	// log the paper's measurement study is built from.
	SessionLog io.Writer
	// ObsName, when non-empty, registers per-shard gauges
	// (domain.<name>.shard<i>.aps / .users) kept current on every
	// structural change. Leave empty for throwaway domains (experiment
	// cells) that would otherwise fight over the process-wide registry.
	ObsName string
}

// apState is one AP's accounting. users is the authoritative map;
// sortedU/sortedD mirror it in sorted order and are maintained
// incrementally at every mutation point, so view snapshots copy flat
// arrays instead of re-sorting the membership on every policy decision.
type apState struct {
	id          trace.APID
	capacityBps float64
	reportedBps float64
	believedBps float64
	users       map[trace.UserID]float64 // user -> believed demand
	sortedU     []trace.UserID           // users, sorted ascending
	sortedD     []float64                // sortedD[i] = users[sortedU[i]]
	failed      bool
}

// userIndex returns the sorted-slice position of u (or its insertion
// point when absent).
func (st *apState) userIndex(u trace.UserID) int {
	return sort.Search(len(st.sortedU), func(i int) bool { return st.sortedU[i] >= u })
}

// bumpUser adds delta to u's believed demand, inserting u when new, and
// keeps the sorted mirror current. Reports whether u was newly inserted.
func (st *apState) bumpUser(u trace.UserID, delta float64) bool {
	at := st.userIndex(u)
	if at < len(st.sortedU) && st.sortedU[at] == u {
		st.users[u] += delta
		st.sortedD[at] = st.users[u]
		return false
	}
	st.users[u] = delta
	st.sortedU = append(st.sortedU, "")
	copy(st.sortedU[at+1:], st.sortedU[at:])
	st.sortedU[at] = u
	st.sortedD = append(st.sortedD, 0)
	copy(st.sortedD[at+1:], st.sortedD[at:])
	st.sortedD[at] = delta
	return true
}

// dropUser removes u from the map and the sorted mirror.
func (st *apState) dropUser(u trace.UserID) {
	delete(st.users, u)
	if at := st.userIndex(u); at < len(st.sortedU) && st.sortedU[at] == u {
		st.sortedU = append(st.sortedU[:at], st.sortedU[at+1:]...)
		st.sortedD = append(st.sortedD[:at], st.sortedD[at+1:]...)
	}
}

// shard owns a partition of the AP set behind its own lock.
type shard struct {
	mu      sync.RWMutex
	version uint64
	aps     map[trace.APID]*apState
	ids     []trace.APID // sorted
	entries int          // total user entries across the shard's APs

	gaugeAPs   *obs.Gauge // nil unless ObsName set
	gaugeUsers *obs.Gauge
}

// syncGauges publishes the shard's sizes; must run with sh.mu held.
func (sh *shard) syncGauges() {
	if sh.gaugeAPs != nil {
		sh.gaugeAPs.Set(int64(len(sh.ids)))
		sh.gaugeUsers.Set(int64(sh.entries))
	}
}

// Domain is the sharded association-domain state machine.
type Domain struct {
	shards []*shard
	mode   LoadMode
	rssi   func(trace.UserID, trace.APID) float64

	logMu      sync.Mutex
	sessionLog *json.Encoder
}

// New builds a Domain.
func New(cfg Config) *Domain {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	rssi := cfg.RSSI
	if rssi == nil {
		rssi = SyntheticRSSI
	}
	d := &Domain{
		shards: make([]*shard, n),
		mode:   cfg.Mode,
		rssi:   rssi,
	}
	if cfg.SessionLog != nil {
		d.sessionLog = json.NewEncoder(cfg.SessionLog)
	}
	for i := range d.shards {
		sh := &shard{aps: make(map[trace.APID]*apState)}
		if cfg.ObsName != "" {
			sh.gaugeAPs = obs.GetGauge(fmt.Sprintf("domain.%s.shard%02d.aps", cfg.ObsName, i),
				"Registered APs on one domain shard")
			sh.gaugeUsers = obs.GetGauge(fmt.Sprintf("domain.%s.shard%02d.users", cfg.ObsName, i),
				"Associated users on one domain shard")
		}
		d.shards[i] = sh
	}
	return d
}

// Shards returns the shard count.
func (d *Domain) Shards() int { return len(d.shards) }

// ShardOf returns the shard index owning ap — a stable hash, so the
// mapping survives restarts and is identical across drivers.
func (d *Domain) ShardOf(ap trace.APID) int {
	if len(d.shards) == 1 {
		return 0
	}
	return int(fnv32aString(uint32(fnvOffset32), string(ap)) % uint32(len(d.shards)))
}

func (d *Domain) shardOf(ap trace.APID) *shard { return d.shards[d.ShardOf(ap)] }

// AddAP registers an AP. Duplicate IDs error.
func (d *Domain) AddAP(id trace.APID, capacityBps float64) error {
	if id == "" {
		return errors.New("domain: empty AP id")
	}
	sh := d.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.aps[id]; dup {
		return fmt.Errorf("domain: AP %q already registered", id)
	}
	sh.aps[id] = &apState{
		id:          id,
		capacityBps: capacityBps,
		users:       make(map[trace.UserID]float64),
	}
	at := sort.Search(len(sh.ids), func(i int) bool { return sh.ids[i] >= id })
	sh.ids = append(sh.ids, "")
	copy(sh.ids[at+1:], sh.ids[at:])
	sh.ids[at] = id
	sh.version++
	sh.syncGauges()
	return nil
}

// RemoveAP deletes an AP and returns its evicted users (sorted) for the
// caller to re-home. ok is false when the AP is unknown.
func (d *Domain) RemoveAP(id trace.APID) (evicted []Eviction, ok bool) {
	sh := d.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.aps[id]
	if !ok {
		return nil, false
	}
	evicted = drain(sh, st)
	delete(sh.aps, id)
	at := sort.Search(len(sh.ids), func(i int) bool { return sh.ids[i] >= id })
	sh.ids = append(sh.ids[:at], sh.ids[at+1:]...)
	sh.version++
	sh.syncGauges()
	return evicted, true
}

// SetFailed flips an AP's failure state. Failing an AP evicts and
// returns its users (sorted); recovery returns nil. Unknown APs no-op.
func (d *Domain) SetFailed(id trace.APID, failed bool) []Eviction {
	sh := d.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.aps[id]
	if !ok {
		return nil
	}
	st.failed = failed
	var evicted []Eviction
	if failed {
		evicted = drain(sh, st)
	}
	sh.version++
	sh.syncGauges()
	return evicted
}

// drain evicts every user from st; must run with the shard lock held.
func drain(sh *shard, st *apState) []Eviction {
	if len(st.users) == 0 {
		return nil
	}
	evicted := make([]Eviction, len(st.sortedU))
	for i, u := range st.sortedU {
		evicted[i] = Eviction{User: u, DemandBps: st.sortedD[i]}
	}
	sh.entries -= len(st.users)
	st.users = make(map[trace.UserID]float64)
	st.sortedU = st.sortedU[:0]
	st.sortedD = st.sortedD[:0]
	st.believedBps = 0
	obsEvictions.Add(int64(len(evicted)))
	return evicted
}

// SetCapacity updates an AP's capacity (an agent re-hello may revise
// it). Reports false for unknown APs.
func (d *Domain) SetCapacity(id trace.APID, capacityBps float64) bool {
	sh := d.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.aps[id]
	if !ok {
		return false
	}
	st.capacityBps = capacityBps
	sh.version++
	return true
}

// SetReported records an external load report for one AP (the live
// controller's agent reports). Reports false for unknown APs.
//
// Unlike SetCapacity this deliberately does not bump the shard version:
// load reports are advisory inputs to LoadReported/LoadMax scoring, not
// structural changes, so an in-flight decision computed from an older
// report commits without ErrStale revalidation (matching the
// pre-extraction controller, where reports never invalidated views).
func (d *Domain) SetReported(id trace.APID, loadBps float64) bool {
	sh := d.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.aps[id]
	if !ok {
		return false
	}
	st.reportedBps = loadBps
	return true
}

// PublishReports snapshots every AP's believed load into its reported
// load — the simulator's periodic report tick (LoadReported mode).
func (d *Domain) PublishReports() {
	for _, sh := range d.shards {
		sh.mu.Lock()
		for _, st := range sh.aps {
			st.reportedBps = st.believedBps
		}
		sh.mu.Unlock()
	}
}

// Size returns the registered AP count (failed APs included).
func (d *Domain) Size() int {
	n := 0
	for _, sh := range d.shards {
		sh.mu.RLock()
		n += len(sh.ids)
		sh.mu.RUnlock()
	}
	return n
}

// APs lists the registered AP IDs in sorted order.
func (d *Domain) APs() []trace.APID {
	var out []trace.APID
	for _, sh := range d.shards {
		sh.mu.RLock()
		out = append(out, sh.ids...)
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Info returns one AP's state for inspection.
func (d *Domain) Info(id trace.APID) (APInfo, bool) {
	sh := d.shardOf(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.aps[id]
	if !ok {
		return APInfo{}, false
	}
	users, demands := sortedUsers(st)
	return APInfo{
		CapacityBps: st.capacityBps,
		ReportedBps: st.reportedBps,
		BelievedBps: st.believedBps,
		Failed:      st.failed,
		Users:       users,
		UserDemands: demands,
	}, true
}

func sortedUsers(st *apState) ([]trace.UserID, []float64) {
	users := make([]trace.UserID, len(st.sortedU))
	copy(users, st.sortedU)
	demands := make([]float64, len(st.sortedD))
	copy(demands, st.sortedD)
	return users, demands
}

// ViewBuf is a reusable snapshot buffer for ViewsInto. The views' Users
// and UserDemands slices alias the buffer's flat backing arrays, so a
// caller that pools ViewBufs takes policy-decision snapshots without
// allocating once the arrays have grown to the working-set size. The
// contents are valid until the next ViewsInto call on the same buffer.
type ViewBuf struct {
	views   []APView
	ver     Version
	users   []trace.UserID
	demands []float64
	offs    []int
	sorter  viewSorter
}

// Views returns the snapshot taken by the last ViewsInto call.
func (b *ViewBuf) Views() []APView { return b.views }

// Version returns the version vector of the last ViewsInto call.
func (b *ViewBuf) Version() Version { return b.ver }

// viewSorter sorts APViews by ID without the closure+interface
// allocations sort.Slice incurs.
type viewSorter struct{ v []APView }

func (s *viewSorter) Len() int           { return len(s.v) }
func (s *viewSorter) Less(i, j int) bool { return s.v[i].ID < s.v[j].ID }
func (s *viewSorter) Swap(i, j int)      { s.v[i], s.v[j] = s.v[j], s.v[i] }

// Views snapshots the non-failed APs for a policy decision by user u,
// with the per-shard version vector the commit validates against. APs
// are returned in sorted ID order regardless of sharding, so a policy
// sees the same candidate list for any shard count.
func (d *Domain) Views(u trace.UserID) ([]APView, Version) {
	var buf ViewBuf
	d.ViewsInto(u, &buf)
	return buf.views, buf.ver
}

// ViewsInto is Views writing into a caller-owned reusable buffer — the
// zero-allocation fast path for the live controller's Associate. The
// returned slices are buf's; see ViewBuf.
func (d *Domain) ViewsInto(u trace.UserID, buf *ViewBuf) {
	obsViews.Inc()
	buf.views = buf.views[:0]
	buf.ver = buf.ver[:0]
	buf.users = buf.users[:0]
	buf.demands = buf.demands[:0]
	buf.offs = buf.offs[:0]
	for _, sh := range d.shards {
		sh.mu.RLock()
		buf.ver = append(buf.ver, sh.version)
		for _, id := range sh.ids {
			st := sh.aps[id]
			if st.failed {
				continue
			}
			var load float64
			switch d.mode {
			case LoadReported:
				load = st.reportedBps
			case LoadMax:
				load = st.believedBps
				if st.reportedBps > load {
					load = st.reportedBps
				}
			default:
				load = st.believedBps
			}
			// Copy membership into the flat arrays; the per-view slices
			// are cut after the loop, once the arrays stop moving.
			buf.offs = append(buf.offs, len(buf.users))
			buf.users = append(buf.users, st.sortedU...)
			buf.demands = append(buf.demands, st.sortedD...)
			buf.views = append(buf.views, APView{
				ID:          id,
				CapacityBps: st.capacityBps,
				LoadBps:     load,
				RSSI:        d.rssi(u, id),
			})
		}
		sh.mu.RUnlock()
	}
	buf.offs = append(buf.offs, len(buf.users))
	for i := range buf.views {
		lo, hi := buf.offs[i], buf.offs[i+1]
		buf.views[i].Users = buf.users[lo:hi:hi]
		buf.views[i].UserDemands = buf.demands[lo:hi:hi]
	}
	if len(d.shards) > 1 {
		buf.sorter.v = buf.views
		sort.Sort(&buf.sorter)
	}
}

// Commit applies a placement set atomically. Placements landing in one
// shard take the fast path (single lock, single version check); a set
// spanning shards locks the involved shards in ascending index order —
// the deterministic two-phase path — validates every involved version,
// and applies all-or-nothing. ver == nil forces the commit without
// validation. On ErrStale, ErrUnknownAP or ErrFailedAP nothing was
// applied.
func (d *Domain) Commit(ps []Placement, ver Version) (CommitResult, error) {
	var res CommitResult
	if len(ps) == 0 {
		return res, nil
	}

	// Involved shard set, in ascending index order.
	var idxs []int
	if len(d.shards) == 1 {
		idxs = []int{0}
	} else {
		seen := make([]bool, len(d.shards))
		for _, p := range ps {
			if i := d.ShardOf(p.AP); !seen[i] {
				seen[i] = true
				idxs = append(idxs, i)
			}
			if p.Prev != "" {
				if i := d.ShardOf(p.Prev); !seen[i] {
					seen[i] = true
					idxs = append(idxs, i)
				}
			}
		}
		sort.Ints(idxs)
	}
	for _, i := range idxs {
		d.shards[i].mu.Lock()
	}
	unlock := func() {
		for _, i := range idxs {
			d.shards[i].mu.Unlock()
		}
	}

	// Validate versions, then targets — all before any mutation.
	switch {
	case ver == nil:
		obsCommitForced.Inc()
	case len(ver) != len(d.shards):
		unlock()
		obsCommitStale.Inc()
		return res, ErrStale
	default:
		for _, i := range idxs {
			if d.shards[i].version != ver[i] {
				unlock()
				obsCommitStale.Inc()
				return res, ErrStale
			}
		}
	}
	for _, p := range ps {
		st, ok := d.shards[d.ShardOf(p.AP)].aps[p.AP]
		if !ok {
			unlock()
			return res, fmt.Errorf("domain: %w: %q", ErrUnknownAP, p.AP)
		}
		if st.failed {
			unlock()
			return res, fmt.Errorf("domain: %w: %q", ErrFailedAP, p.AP)
		}
	}

	// Apply in order: sequential placements see each other's load, so a
	// batch commit charges overloads exactly like sequential commits.
	for _, p := range ps {
		if p.Prev != "" {
			psh := d.shards[d.ShardOf(p.Prev)]
			if prev, ok := psh.aps[p.Prev]; ok {
				removeUser(psh, prev, p.User)
			}
		}
		sh := d.shards[d.ShardOf(p.AP)]
		st := sh.aps[p.AP]
		if !Admits(st.capacityBps, st.believedBps, p.DemandBps) {
			res.Overloads++
		}
		if st.bumpUser(p.User, p.DemandBps) {
			sh.entries++
		}
		st.believedBps += p.DemandBps
	}
	for _, i := range idxs {
		d.shards[i].version++
		d.shards[i].syncGauges()
	}
	if len(idxs) == 1 {
		obsCommitSingle.Inc()
	} else {
		obsCommitMulti.Inc()
	}
	if res.Overloads > 0 {
		obsOverloads.Add(int64(res.Overloads))
	}
	unlock()
	return res, nil
}

// removeUser fully detaches u from st; must run with the shard lock held.
func removeUser(sh *shard, st *apState, u trace.UserID) (removed float64, ok bool) {
	cur, ok := st.users[u]
	if !ok {
		return 0, false
	}
	st.dropUser(u)
	sh.entries--
	st.believedBps -= cur
	if st.believedBps < 0 {
		st.believedBps = 0
	}
	return cur, true
}

// Leave releases demand of one of u's sessions on ap — multiplicity
// semantics for the simulator, where a user may hold several concurrent
// sessions on the same AP: the believed demand is decremented and the
// user entry survives until its demand drains. Reports false when the
// AP or the user is unknown.
func (d *Domain) Leave(u trace.UserID, ap trace.APID, demandBps float64) bool {
	sh := d.shardOf(ap)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.aps[ap]
	if !ok {
		return false
	}
	cur, ok := st.users[u]
	if !ok {
		return false
	}
	// Bound the release by the user's recorded demand so a misreported
	// leave cannot erase other sessions' believed load on this AP.
	release := demandBps
	if release > cur {
		release = cur
	}
	if rem := cur - release; rem <= 1e-9 {
		st.dropUser(u)
		sh.entries--
	} else {
		st.users[u] = rem
		st.sortedD[st.userIndex(u)] = rem
	}
	st.believedBps -= release
	if st.believedBps < 0 {
		st.believedBps = 0
	}
	sh.version++
	sh.syncGauges()
	return true
}

// LeaveAll fully detaches u from ap (the live controller's
// disassociation — one assignment per user) and returns the believed
// demand released.
func (d *Domain) LeaveAll(u trace.UserID, ap trace.APID) (demandBps float64, ok bool) {
	sh := d.shardOf(ap)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.aps[ap]
	if !ok {
		return 0, false
	}
	removed, ok := removeUser(sh, st, u)
	if !ok {
		return 0, false
	}
	sh.version++
	sh.syncGauges()
	return removed, true
}

// LogSession emits one completed-association record to the configured
// session log as {"kind":"session","session":…} — parsable by
// trace.ReadJSONLines. No-op without a configured log.
func (d *Domain) LogSession(s trace.Session) error {
	if d.sessionLog == nil {
		return nil
	}
	d.logMu.Lock()
	defer d.logMu.Unlock()
	rec := struct {
		Kind    string        `json:"kind"`
		Session trace.Session `json:"session"`
	}{Kind: "session", Session: s}
	return d.sessionLog.Encode(rec)
}
