package domain

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func TestAdmits(t *testing.T) {
	cases := []struct {
		cap, load, demand float64
		want              bool
	}{
		{100, 60, 40, true},   // exactly full fits
		{100, 60, 41, false},  // over by one
		{0, 1e12, 1e12, true}, // zero capacity = unconstrained
		{-5, 10, 10, true},    // negative capacity = unconstrained
		{100, 0, 100, true},
		{100, 100, 0.001, false},
	}
	for _, c := range cases {
		if got := Admits(c.cap, c.load, c.demand); got != c.want {
			t.Errorf("Admits(%v,%v,%v) = %v, want %v", c.cap, c.load, c.demand, got, c.want)
		}
	}
	v := APView{CapacityBps: 100, LoadBps: 60}
	if !v.HasCapacityFor(40) || v.HasCapacityFor(41) {
		t.Error("HasCapacityFor must match Admits")
	}
}

func TestAddRemoveAP(t *testing.T) {
	d := New(Config{Shards: 4})
	if err := d.AddAP("", 1); err == nil {
		t.Fatal("empty AP id must error")
	}
	if err := d.AddAP("ap1", 100); err != nil {
		t.Fatal(err)
	}
	if err := d.AddAP("ap1", 100); err == nil {
		t.Fatal("duplicate AP must error")
	}
	if err := d.AddAP("ap2", 200); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d, want 2", d.Size())
	}
	if got := d.APs(); !reflect.DeepEqual(got, []trace.APID{"ap1", "ap2"}) {
		t.Fatalf("APs = %v", got)
	}

	if _, err := d.Commit([]Placement{
		{User: "u2", AP: "ap1", DemandBps: 5},
		{User: "u1", AP: "ap1", DemandBps: 3},
	}, nil); err != nil {
		t.Fatal(err)
	}
	evicted, ok := d.RemoveAP("ap1")
	if !ok {
		t.Fatal("RemoveAP(ap1) = !ok")
	}
	want := []Eviction{{User: "u1", DemandBps: 3}, {User: "u2", DemandBps: 5}}
	if !reflect.DeepEqual(evicted, want) {
		t.Fatalf("evicted = %v, want %v (sorted)", evicted, want)
	}
	if _, ok := d.RemoveAP("ap1"); ok {
		t.Fatal("removing a removed AP must report !ok")
	}
	if d.Size() != 1 {
		t.Fatalf("Size = %d, want 1", d.Size())
	}
}

func TestSetFailedEvictsAndHides(t *testing.T) {
	d := New(Config{Shards: 2})
	for _, ap := range []trace.APID{"a", "b"} {
		if err := d.AddAP(ap, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Commit([]Placement{{User: "u", AP: "a", DemandBps: 7}}, nil); err != nil {
		t.Fatal(err)
	}
	evicted := d.SetFailed("a", true)
	if !reflect.DeepEqual(evicted, []Eviction{{User: "u", DemandBps: 7}}) {
		t.Fatalf("evicted = %v", evicted)
	}
	views, _ := d.Views("u")
	if len(views) != 1 || views[0].ID != "b" {
		t.Fatalf("failed AP must be hidden from views: %v", views)
	}
	if _, err := d.Commit([]Placement{{User: "u", AP: "a", DemandBps: 1}}, nil); !errors.Is(err, ErrFailedAP) {
		t.Fatalf("commit onto failed AP: err = %v, want ErrFailedAP", err)
	}
	if ev := d.SetFailed("a", false); ev != nil {
		t.Fatalf("recovery must not evict, got %v", ev)
	}
	views, _ = d.Views("u")
	if len(views) != 2 {
		t.Fatalf("recovered AP must reappear: %v", views)
	}
	info, ok := d.Info("a")
	if !ok || info.BelievedBps != 0 || len(info.Users) != 0 {
		t.Fatalf("failure must drain load: %+v", info)
	}
}

func TestCommitStaleAndForced(t *testing.T) {
	d := New(Config{Shards: 4})
	for i := 0; i < 8; i++ {
		if err := d.AddAP(trace.APID(fmt.Sprintf("ap%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	_, ver := d.Views("u")
	// Mutate the shard owning ap0.
	if _, err := d.Commit([]Placement{{User: "x", AP: "ap0", DemandBps: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit([]Placement{{User: "u", AP: "ap0", DemandBps: 1}}, ver); !errors.Is(err, ErrStale) {
		t.Fatalf("stale commit: err = %v, want ErrStale", err)
	}
	// A change in an untouched shard must NOT invalidate the commit.
	_, ver = d.Views("u")
	other := ""
	for i := 0; i < 8; i++ {
		id := trace.APID(fmt.Sprintf("ap%d", i))
		if d.ShardOf(id) != d.ShardOf("ap0") {
			other = string(id)
			break
		}
	}
	if other == "" {
		t.Skip("all APs hashed to one shard")
	}
	if _, err := d.Commit([]Placement{{User: "y", AP: trace.APID(other), DemandBps: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit([]Placement{{User: "u", AP: "ap0", DemandBps: 1}}, ver); err != nil {
		t.Fatalf("commit invalidated by untouched shard: %v", err)
	}
	// Forced commit ignores staleness entirely.
	if _, err := d.Commit([]Placement{{User: "u2", AP: "ap0", DemandBps: 1}}, nil); err != nil {
		t.Fatalf("forced commit: %v", err)
	}
	// A version vector of the wrong width is stale by definition.
	if _, err := d.Commit([]Placement{{User: "u3", AP: "ap0", DemandBps: 1}}, Version{1}); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-width version: err = %v, want ErrStale", err)
	}
}

func TestCommitAtomicOnUnknownAP(t *testing.T) {
	d := New(Config{Shards: 4})
	if err := d.AddAP("known", 0); err != nil {
		t.Fatal(err)
	}
	_, err := d.Commit([]Placement{
		{User: "u1", AP: "known", DemandBps: 5},
		{User: "u2", AP: "ghost", DemandBps: 5},
	}, nil)
	if !errors.Is(err, ErrUnknownAP) {
		t.Fatalf("err = %v, want ErrUnknownAP", err)
	}
	info, _ := d.Info("known")
	if info.BelievedBps != 0 || len(info.Users) != 0 {
		t.Fatalf("failed commit must apply nothing: %+v", info)
	}
}

func TestCommitOverloadAccounting(t *testing.T) {
	d := New(Config{})
	if err := d.AddAP("ap", 10); err != nil {
		t.Fatal(err)
	}
	// Sequential placements inside one batch see each other's load:
	// 6 fits, 6 overloads.
	res, err := d.Commit([]Placement{
		{User: "u1", AP: "ap", DemandBps: 6},
		{User: "u2", AP: "ap", DemandBps: 6},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overloads != 1 {
		t.Fatalf("Overloads = %d, want 1", res.Overloads)
	}
}

func TestCommitMoveSemantics(t *testing.T) {
	d := New(Config{Shards: 8})
	for _, ap := range []trace.APID{"a", "b"} {
		if err := d.AddAP(ap, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Commit([]Placement{{User: "u", AP: "a", DemandBps: 4}}, nil); err != nil {
		t.Fatal(err)
	}
	// Move a -> b with a revised demand: the removal and placement are
	// one atomic commit.
	if _, err := d.Commit([]Placement{{User: "u", AP: "b", DemandBps: 9, Prev: "a"}}, nil); err != nil {
		t.Fatal(err)
	}
	ia, _ := d.Info("a")
	ib, _ := d.Info("b")
	if len(ia.Users) != 0 || ia.BelievedBps != 0 {
		t.Fatalf("source AP not drained: %+v", ia)
	}
	if !reflect.DeepEqual(ib.Users, []trace.UserID{"u"}) || ib.BelievedBps != 9 {
		t.Fatalf("move target: %+v", ib)
	}
	// Self-move (re-association to the same AP) behaves as a demand
	// update, not a double-count.
	if _, err := d.Commit([]Placement{{User: "u", AP: "b", DemandBps: 2, Prev: "b"}}, nil); err != nil {
		t.Fatal(err)
	}
	ib, _ = d.Info("b")
	if ib.BelievedBps != 2 || len(ib.Users) != 1 {
		t.Fatalf("self-move: %+v", ib)
	}
}

func TestLeaveMultiplicityAndLeaveAll(t *testing.T) {
	d := New(Config{})
	if err := d.AddAP("ap", 0); err != nil {
		t.Fatal(err)
	}
	// Two concurrent sessions by the same user (simulator semantics).
	if _, err := d.Commit([]Placement{
		{User: "u", AP: "ap", DemandBps: 3},
		{User: "u", AP: "ap", DemandBps: 4},
	}, nil); err != nil {
		t.Fatal(err)
	}
	info, _ := d.Info("ap")
	if info.BelievedBps != 7 || len(info.Users) != 1 {
		t.Fatalf("stacked sessions: %+v", info)
	}
	if !d.Leave("u", "ap", 3) {
		t.Fatal("Leave must find the user")
	}
	info, _ = d.Info("ap")
	if info.BelievedBps != 4 || len(info.Users) != 1 {
		t.Fatalf("after one leave: %+v", info)
	}
	if !d.Leave("u", "ap", 4) {
		t.Fatal("Leave must find the user")
	}
	info, _ = d.Info("ap")
	if info.BelievedBps != 0 || len(info.Users) != 0 {
		t.Fatalf("after draining: %+v", info)
	}
	if d.Leave("u", "ap", 1) {
		t.Fatal("Leave of a gone user must report false")
	}

	// LeaveAll removes the user wholesale (controller semantics).
	if _, err := d.Commit([]Placement{{User: "v", AP: "ap", DemandBps: 11}}, nil); err != nil {
		t.Fatal(err)
	}
	rel, ok := d.LeaveAll("v", "ap")
	if !ok || rel != 11 {
		t.Fatalf("LeaveAll = (%v, %v), want (11, true)", rel, ok)
	}
	if _, ok := d.LeaveAll("v", "ap"); ok {
		t.Fatal("second LeaveAll must report false")
	}
}

func TestViewsLoadModes(t *testing.T) {
	mk := func(mode LoadMode) *Domain {
		d := New(Config{Mode: mode})
		if err := d.AddAP("ap", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Commit([]Placement{{User: "u", AP: "ap", DemandBps: 10}}, nil); err != nil {
			t.Fatal(err)
		}
		d.SetReported("ap", 25)
		return d
	}
	if v, _ := mk(LoadBelieved).Views("u"); v[0].LoadBps != 10 {
		t.Errorf("LoadBelieved = %v, want 10", v[0].LoadBps)
	}
	if v, _ := mk(LoadReported).Views("u"); v[0].LoadBps != 25 {
		t.Errorf("LoadReported = %v, want 25", v[0].LoadBps)
	}
	if v, _ := mk(LoadMax).Views("u"); v[0].LoadBps != 25 {
		t.Errorf("LoadMax = %v, want 25", v[0].LoadBps)
	}

	// PublishReports snapshots believed into reported.
	d := New(Config{Mode: LoadReported})
	if err := d.AddAP("ap", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit([]Placement{{User: "u", AP: "ap", DemandBps: 10}}, nil); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Views("u"); v[0].LoadBps != 0 {
		t.Fatalf("before publish: %v, want 0", v[0].LoadBps)
	}
	d.PublishReports()
	if v, _ := d.Views("u"); v[0].LoadBps != 10 {
		t.Fatalf("after publish: %v, want 10", v[0].LoadBps)
	}
}

// TestShardCountInvariant replays identical operations through a 1-shard
// and a 16-shard domain and asserts byte-identical externally visible
// state: same views (IDs, loads, users, demands, RSSI), same AP list,
// same evictions. Sharding changes lock granularity, never results.
func TestShardCountInvariant(t *testing.T) {
	build := func(shards int) *Domain {
		d := New(Config{Shards: shards})
		for i := 0; i < 40; i++ {
			if err := d.AddAP(trace.APID(fmt.Sprintf("ap%02d", i)), float64(1000+i)); err != nil {
				t.Fatal(err)
			}
		}
		var ps []Placement
		for i := 0; i < 200; i++ {
			ps = append(ps, Placement{
				User:      trace.UserID(fmt.Sprintf("u%03d", i%60)),
				AP:        trace.APID(fmt.Sprintf("ap%02d", (i*7)%40)),
				DemandBps: float64(1 + i%13),
			})
		}
		if _, err := d.Commit(ps, nil); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			d.Leave(trace.UserID(fmt.Sprintf("u%03d", i%60)), trace.APID(fmt.Sprintf("ap%02d", (i*7)%40)), float64(1+i%13))
		}
		d.SetFailed("ap03", true)
		d.RemoveAP("ap05")
		d.PublishReports()
		return d
	}
	a, b := build(1), build(16)
	va, _ := a.Views("observer")
	vb, _ := b.Views("observer")
	if !reflect.DeepEqual(va, vb) {
		t.Fatalf("views differ between 1 and 16 shards:\n%v\nvs\n%v", va, vb)
	}
	if !reflect.DeepEqual(a.APs(), b.APs()) {
		t.Fatalf("AP lists differ: %v vs %v", a.APs(), b.APs())
	}
	for _, id := range a.APs() {
		ia, _ := a.Info(id)
		ib, _ := b.Info(id)
		if !reflect.DeepEqual(ia, ib) {
			t.Fatalf("Info(%s) differs: %+v vs %+v", id, ia, ib)
		}
	}
}

func TestViewsSortedAcrossShards(t *testing.T) {
	d := New(Config{Shards: 16})
	for i := 31; i >= 0; i-- {
		if err := d.AddAP(trace.APID(fmt.Sprintf("ap%02d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	views, ver := d.Views("u")
	if len(ver) != 16 {
		t.Fatalf("version width = %d, want 16", len(ver))
	}
	for i := 1; i < len(views); i++ {
		if views[i-1].ID >= views[i].ID {
			t.Fatalf("views not ID-sorted at %d: %v >= %v", i, views[i-1].ID, views[i].ID)
		}
	}
}

func TestSessionLog(t *testing.T) {
	var buf bytes.Buffer
	d := New(Config{SessionLog: &buf})
	if err := d.LogSession(trace.Session{
		User: "u", AP: "ap", ConnectAt: 100, DisconnectAt: 200, Bytes: 42,
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadJSONLines(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) != 1 || tr.Sessions[0].User != "u" || tr.Sessions[0].Bytes != 42 {
		t.Fatalf("round-trip: %+v", tr.Sessions)
	}
	// No log configured: no-op, no error.
	if err := New(Config{}).LogSession(trace.Session{User: "u"}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCommitsConserveLoad hammers the sharded commit path from
// many goroutines — check-and-retry commits, forced fallbacks, leaves,
// and structural churn on disjoint APs — and asserts the accounting
// drains to zero. Run under -race this covers the per-shard locking.
func TestConcurrentCommitsConserveLoad(t *testing.T) {
	d := New(Config{Shards: 8})
	const stableAPs = 24
	aps := make([]trace.APID, stableAPs)
	for i := range aps {
		aps[i] = trace.APID(fmt.Sprintf("ap%02d", i))
		if err := d.AddAP(aps[i], 0); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const opsPer = 300
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u := trace.UserID(fmt.Sprintf("user%d", w))
			for i := 0; i < opsPer; i++ {
				// Target only the stable APs: Views() transiently
				// includes churn APs while they are live, and committing
				// to one races with its removal/failure flip.
				_, ver := d.Views(u)
				ap := aps[(w*31+i)%len(aps)]
				if _, err := d.Commit([]Placement{{User: u, AP: ap, DemandBps: 1}}, ver); err != nil {
					if !errors.Is(err, ErrStale) {
						errs <- err
						return
					}
					if _, err := d.Commit([]Placement{{User: u, AP: ap, DemandBps: 1}}, nil); err != nil {
						errs <- err
						return
					}
				}
				if !d.Leave(u, ap, 1) {
					errs <- fmt.Errorf("worker %d: leave lost user on %s", w, ap)
					return
				}
			}
		}(w)
	}
	// Structural churn on APs nobody commits to: registrations, removals
	// and failure flips bump shard versions and exercise ErrStale.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			id := trace.APID(fmt.Sprintf("churn%d", i%4))
			if err := d.AddAP(id, 100); err == nil {
				d.SetFailed(id, true)
				d.RemoveAP(id)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range aps {
		info, ok := d.Info(id)
		if !ok {
			t.Fatalf("stable AP %s vanished", id)
		}
		if info.BelievedBps != 0 || len(info.Users) != 0 {
			t.Fatalf("load not conserved on %s: %+v", id, info)
		}
	}
}

// TestConcurrentMultiShardCommits drives two-phase commits whose
// placement sets span shards, concurrently, to exercise the ascending
// lock-order path (a cycle here deadlocks the test).
func TestConcurrentMultiShardCommits(t *testing.T) {
	d := New(Config{Shards: 8})
	const apCount = 32
	aps := make([]trace.APID, apCount)
	for i := range aps {
		aps[i] = trace.APID(fmt.Sprintf("ap%02d", i))
		if err := d.AddAP(aps[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				// A 4-user "clique" spread over 4 APs in varying shards.
				ps := make([]Placement, 4)
				for k := range ps {
					ps[k] = Placement{
						User:      trace.UserID(fmt.Sprintf("w%dc%d", w, k)),
						AP:        aps[(w*5+i+k*7)%apCount],
						DemandBps: 2,
					}
				}
				if _, err := d.Commit(ps, nil); err != nil {
					t.Error(err)
					return
				}
				for _, p := range ps {
					if !d.Leave(p.User, p.AP, 2) {
						t.Errorf("leave lost %s on %s", p.User, p.AP)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, id := range aps {
		info, _ := d.Info(id)
		if info.BelievedBps != 0 || len(info.Users) != 0 {
			t.Fatalf("load not conserved on %s: %+v", id, info)
		}
	}
}

func TestShardOfStable(t *testing.T) {
	a := New(Config{Shards: 16})
	b := New(Config{Shards: 16})
	for i := 0; i < 100; i++ {
		id := trace.APID(fmt.Sprintf("building-%d-floor-%d", i%10, i/10))
		if a.ShardOf(id) != b.ShardOf(id) {
			t.Fatalf("ShardOf(%s) differs across instances", id)
		}
	}
	if got := New(Config{}).Shards(); got != 1 {
		t.Fatalf("default Shards = %d, want 1", got)
	}
	if got := New(Config{Shards: -3}).Shards(); got != 1 {
		t.Fatalf("negative Shards = %d, want 1", got)
	}
}
