package domain

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// State is a Domain's complete association state in portable form — the
// checkpoint payload of the journal's durability layer. It is
// shard-layout independent: exporting a 16-shard domain and importing
// into a single-shard one (or vice versa) yields identical views,
// because the AP→shard mapping is a pure function of the AP ID.
type State struct {
	Version int       `json:"version"`
	APs     []APState `json:"aps"`
}

// APState is one AP's exported state. Users and Demands are aligned and
// sorted by user ID for deterministic serialization.
type APState struct {
	ID          trace.APID     `json:"id"`
	CapacityBps float64        `json:"capacity_bps"`
	ReportedBps float64        `json:"reported_bps,omitempty"`
	Failed      bool           `json:"failed,omitempty"`
	Users       []trace.UserID `json:"users,omitempty"`
	Demands     []float64      `json:"demands,omitempty"`
}

// stateVersion guards the serialized format.
const stateVersion = 1

// ExportState snapshots the domain's full association state: every AP
// with its capacity, report, failure flag and believed users/demands.
// Each shard is read under its lock; like Views, the snapshot is
// per-shard consistent and APs are returned in sorted ID order.
func (d *Domain) ExportState() *State {
	st := &State{Version: stateVersion}
	for _, sh := range d.shards {
		sh.mu.RLock()
		for _, id := range sh.ids {
			ap := sh.aps[id]
			users, demands := sortedUsers(ap)
			st.APs = append(st.APs, APState{
				ID:          id,
				CapacityBps: ap.capacityBps,
				ReportedBps: ap.reportedBps,
				Failed:      ap.failed,
				Users:       users,
				Demands:     demands,
			})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(st.APs, func(i, k int) bool { return st.APs[i].ID < st.APs[k].ID })
	return st
}

// ImportState loads an exported state into this domain, which must be
// empty (freshly constructed). The shard count need not match the
// exporting domain's.
func (d *Domain) ImportState(st *State) error {
	if st == nil {
		return fmt.Errorf("domain: import nil state")
	}
	if st.Version != stateVersion {
		return fmt.Errorf("domain: unsupported state version %d", st.Version)
	}
	if d.Size() != 0 {
		return fmt.Errorf("domain: import into non-empty domain (%d APs)", d.Size())
	}
	for _, ap := range st.APs {
		if len(ap.Users) != len(ap.Demands) {
			return fmt.Errorf("domain: AP %q state has %d users but %d demands",
				ap.ID, len(ap.Users), len(ap.Demands))
		}
		if err := d.AddAP(ap.ID, ap.CapacityBps); err != nil {
			return err
		}
		sh := d.shardOf(ap.ID)
		sh.mu.Lock()
		apst := sh.aps[ap.ID]
		apst.reportedBps = ap.ReportedBps
		apst.failed = ap.Failed
		for i, u := range ap.Users {
			if u == "" {
				sh.mu.Unlock()
				return fmt.Errorf("domain: AP %q state has empty user id", ap.ID)
			}
			if apst.bumpUser(u, ap.Demands[i]) {
				sh.entries++
			}
			apst.believedBps += ap.Demands[i]
		}
		sh.version++
		sh.syncGauges()
		sh.mu.Unlock()
	}
	return nil
}

// WriteState serializes the domain's exported state to w as JSON.
func (d *Domain) WriteState(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(d.ExportState()); err != nil {
		return fmt.Errorf("domain: encode state: %w", err)
	}
	return nil
}

// ReadState parses a serialized state from r.
func ReadState(r io.Reader) (*State, error) {
	var st State
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("domain: decode state: %w", err)
	}
	return &st, nil
}
