package domain

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// populateState builds a domain with a mixed population: capacities,
// reports, a failed AP, multi-session users and a user on two APs.
func populateState(t *testing.T, shards int) *Domain {
	t.Helper()
	d := New(Config{Shards: shards})
	for i := 0; i < 6; i++ {
		if err := d.AddAP(trace.APID(fmt.Sprintf("ap-%d", i)), float64(10+i)*1e6); err != nil {
			t.Fatal(err)
		}
	}
	ps := []Placement{
		{User: "u-1", AP: "ap-0", DemandBps: 100},
		{User: "u-2", AP: "ap-0", DemandBps: 200},
		{User: "u-2", AP: "ap-3", DemandBps: 300}, // same user, second AP
		{User: "u-3", AP: "ap-5", DemandBps: 400},
	}
	if _, err := d.Commit(ps, nil); err != nil {
		t.Fatal(err)
	}
	// A second session for u-1 on ap-0 (multiplicity).
	if _, err := d.Commit([]Placement{{User: "u-1", AP: "ap-0", DemandBps: 50}}, nil); err != nil {
		t.Fatal(err)
	}
	d.SetReported("ap-1", 5e6)
	d.SetFailed("ap-4", true)
	return d
}

func TestStateRoundtripAcrossShardCounts(t *testing.T) {
	for _, expShards := range []int{1, 4} {
		for _, impShards := range []int{1, 8} {
			src := populateState(t, expShards)
			var buf bytes.Buffer
			if err := src.WriteState(&buf); err != nil {
				t.Fatal(err)
			}
			st, err := ReadState(&buf)
			if err != nil {
				t.Fatal(err)
			}
			dst := New(Config{Shards: impShards})
			if err := dst.ImportState(st); err != nil {
				t.Fatal(err)
			}
			// Identical exported state (shard-layout independent).
			if !reflect.DeepEqual(src.ExportState(), dst.ExportState()) {
				t.Fatalf("export %d shards -> import %d shards: state diverged\nsrc %+v\ndst %+v",
					expShards, impShards, src.ExportState(), dst.ExportState())
			}
			// Identical policy-visible views.
			sv, _ := src.Views("u-1")
			dv, _ := dst.Views("u-1")
			if !reflect.DeepEqual(sv, dv) {
				t.Fatalf("views diverged: %+v vs %+v", sv, dv)
			}
			if src.Size() != dst.Size() {
				t.Fatalf("size %d vs %d", src.Size(), dst.Size())
			}
		}
	}
}

func TestImportStateRejectsNonEmptyDomain(t *testing.T) {
	src := populateState(t, 1)
	st := src.ExportState()
	dst := New(Config{})
	if err := dst.AddAP("existing", 1e6); err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(st); err == nil {
		t.Fatal("import into non-empty domain must fail")
	}
}

func TestImportStateRejectsDamage(t *testing.T) {
	cases := map[string]*State{
		"nil":          nil,
		"version":      {Version: 99},
		"misaligned":   {Version: stateVersion, APs: []APState{{ID: "a", Users: []trace.UserID{"u"}, Demands: nil}}},
		"empty-user":   {Version: stateVersion, APs: []APState{{ID: "a", Users: []trace.UserID{""}, Demands: []float64{1}}}},
	}
	for name, st := range cases {
		if err := New(Config{}).ImportState(st); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

// TestImportStatePreservesLeaveSemantics: multiplicity must survive the
// round trip — u-1 had two sessions on ap-0, so one LeaveAll removes the
// whole believed demand in both the original and the restored domain.
func TestImportStatePreservesLeaveSemantics(t *testing.T) {
	src := populateState(t, 2)
	var buf bytes.Buffer
	if err := src.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(Config{Shards: 2})
	if err := dst.ImportState(st); err != nil {
		t.Fatal(err)
	}
	sd, sok := src.LeaveAll("u-1", "ap-0")
	dd, dok := dst.LeaveAll("u-1", "ap-0")
	if sok != dok || sd != dd {
		t.Fatalf("LeaveAll diverged: src (%v,%v) dst (%v,%v)", sd, sok, dd, dok)
	}
	if !reflect.DeepEqual(src.ExportState(), dst.ExportState()) {
		t.Fatal("post-leave state diverged")
	}
}
