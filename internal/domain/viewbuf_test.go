package domain

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// TestViewsIntoMatchesViews: the pooled flat-array snapshot must be
// indistinguishable from the allocating Views path across mutations,
// and reusing the buffer must never let a later call alias an earlier
// view's user slice.
func TestViewsIntoMatchesViews(t *testing.T) {
	d := New(Config{Shards: 4})
	for i := 0; i < 9; i++ {
		if err := d.AddAP(trace.APID(fmt.Sprintf("ap%d", i)), 1e6); err != nil {
			t.Fatal(err)
		}
	}
	var ps []Placement
	for i := 0; i < 40; i++ {
		ps = append(ps, Placement{
			User:      trace.UserID(fmt.Sprintf("u%02d", i)),
			AP:        trace.APID(fmt.Sprintf("ap%d", i%9)),
			DemandBps: float64(10 * (i + 1)),
		})
	}
	if _, err := d.Commit(ps, nil); err != nil {
		t.Fatal(err)
	}

	var buf ViewBuf
	check := func(stage string) {
		t.Helper()
		want, wantVer := d.Views("probe")
		d.ViewsInto("probe", &buf)
		if !reflect.DeepEqual(buf.Views(), want) {
			t.Fatalf("%s: ViewsInto diverged from Views:\nwant %+v\ngot  %+v", stage, want, buf.Views())
		}
		if !reflect.DeepEqual(buf.Version(), wantVer) {
			t.Fatalf("%s: version vector diverged: %v vs %v", stage, buf.Version(), wantVer)
		}
	}
	check("initial")

	// Mutate: partial leave, full leave, a move, an AP removal.
	d.Leave("u00", "ap0", 5)
	check("partial leave")
	if _, ok := d.LeaveAll("u01", "ap1"); !ok {
		t.Fatal("LeaveAll failed")
	}
	check("full leave")
	if _, err := d.Commit([]Placement{{User: "u02", AP: "ap5", Prev: "ap2", DemandBps: 30}}, nil); err != nil {
		t.Fatal(err)
	}
	check("move")
	if _, ok := d.RemoveAP("ap8"); !ok {
		t.Fatal("RemoveAP failed")
	}
	check("AP removed")

	// Aliasing guard: snapshot, then reuse the same buffer for a bigger
	// domain state; the first snapshot's user slices must be unaffected.
	d.ViewsInto("probe", &buf)
	frozen := make([][]trace.UserID, len(buf.Views()))
	for i, v := range buf.Views() {
		frozen[i] = append([]trace.UserID(nil), v.Users...)
	}
	first := buf.Views()
	var buf2 ViewBuf
	d.ViewsInto("probe", &buf2) // independent buffer, same content
	for i := range first {
		if !reflect.DeepEqual(first[i].Users, frozen[i]) {
			t.Fatalf("view %d users mutated by later snapshot: %v vs %v", i, first[i].Users, frozen[i])
		}
	}
}

// TestSortedMirrorConsistency: the incrementally maintained sorted
// user/demand mirrors must agree with the authoritative map after every
// kind of mutation.
func TestSortedMirrorConsistency(t *testing.T) {
	d := New(Config{Shards: 1})
	if err := d.AddAP("ap", 1e6); err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		run  func()
	}{
		{"joins", func() {
			var ps []Placement
			for i := 0; i < 16; i++ {
				ps = append(ps, Placement{User: trace.UserID(fmt.Sprintf("z%02d", 15-i)), AP: "ap", DemandBps: float64(i + 1)})
			}
			if _, err := d.Commit(ps, nil); err != nil {
				t.Fatal(err)
			}
		}},
		{"demand bump", func() {
			if _, err := d.Commit([]Placement{{User: "z05", AP: "ap", DemandBps: 100}}, nil); err != nil {
				t.Fatal(err)
			}
		}},
		{"partial leave", func() { d.Leave("z05", "ap", 40) }},
		{"full leave via drain", func() { d.Leave("z06", "ap", 1e9) }},
		{"leave all", func() { d.LeaveAll("z07", "ap") }},
	}
	for _, m := range mutate {
		m.run()
		info, ok := d.Info("ap")
		if !ok {
			t.Fatalf("%s: AP vanished", m.name)
		}
		sh := d.shardOf("ap")
		sh.mu.RLock()
		st := sh.aps["ap"]
		if len(st.sortedU) != len(st.users) || len(st.sortedD) != len(st.users) {
			sh.mu.RUnlock()
			t.Fatalf("%s: mirror length %d/%d vs map %d", m.name, len(st.sortedU), len(st.sortedD), len(st.users))
		}
		for i, u := range st.sortedU {
			if i > 0 && st.sortedU[i-1] >= u {
				sh.mu.RUnlock()
				t.Fatalf("%s: mirror out of order at %d: %v", m.name, i, st.sortedU)
			}
			if st.users[u] != st.sortedD[i] {
				sh.mu.RUnlock()
				t.Fatalf("%s: demand mirror for %s = %v, map %v", m.name, u, st.sortedD[i], st.users[u])
			}
		}
		sh.mu.RUnlock()
		for i, u := range info.Users {
			if i > 0 && info.Users[i-1] >= u {
				t.Fatalf("%s: Info users out of order: %v", m.name, info.Users)
			}
			_ = info.UserDemands[i]
		}
	}
}
