// Package eventsim is a small deterministic discrete-event simulation
// engine: a time-ordered event queue with a stable tie-break (insertion
// sequence), a simulated clock, and run control. It underpins the WLAN
// simulator in internal/wlan.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"github.com/s3wlan/s3wlan/internal/obs"
)

// Observability of the engine across all instances in the process.
// Event counts are accumulated locally per RunUntil call and flushed
// once, so the dispatch loop pays no per-event atomic operation.
var (
	obsEvents  = obs.GetCounter("eventsim.events", "Discrete events dispatched by the engine")
	obsRunTime = obs.GetHistogram("eventsim.run", "Wall time of one RunUntil dispatch loop")
)

// Handler is the callback invoked when an event fires. The engine passes
// itself so handlers can schedule follow-up events.
type Handler func(e *Engine)

// event is a scheduled callback.
type event struct {
	at      int64
	seq     uint64
	handler Handler
}

// eventHeap orders events by (time, sequence) so simultaneous events fire
// in scheduling order — the property that makes runs reproducible.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. Create with New; the zero value is
// not usable.
type Engine struct {
	now     int64
	seq     uint64
	queue   eventHeap
	stopped bool
	// processed counts fired events, exposed for tests and runaway
	// detection.
	processed uint64
}

// New returns an engine whose clock starts at startTime.
func New(startTime int64) *Engine {
	return &Engine{now: startTime}
}

// Now returns the current simulated time.
func (e *Engine) Now() int64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("eventsim: cannot schedule event in the past")

// ScheduleAt enqueues handler to fire at the absolute time at.
func (e *Engine) ScheduleAt(at int64, handler Handler) error {
	if at < e.now {
		return fmt.Errorf("%w: at=%d now=%d", ErrPastEvent, at, e.now)
	}
	if handler == nil {
		return errors.New("eventsim: nil handler")
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, handler: handler})
	return nil
}

// ScheduleAfter enqueues handler to fire delay seconds from now.
func (e *Engine) ScheduleAfter(delay int64, handler Handler) error {
	if delay < 0 {
		return fmt.Errorf("%w: negative delay %d", ErrPastEvent, delay)
	}
	return e.ScheduleAt(e.now+delay, handler)
}

// Stop halts the run after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run fires events until the queue is empty or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() int64 {
	return e.RunUntil(int64(^uint64(0) >> 1)) // max int64
}

// ScheduleEvery fires handler now and then every interval seconds for as
// long as other work remains queued: the periodic chain re-arms itself
// only while it is not the sole pending event, so a simulation with
// periodic ticks still terminates when the real workload drains.
func (e *Engine) ScheduleEvery(interval int64, handler Handler) error {
	if interval <= 0 {
		return fmt.Errorf("%w: non-positive interval %d", ErrPastEvent, interval)
	}
	if handler == nil {
		return errors.New("eventsim: nil handler")
	}
	var tick Handler
	tick = func(en *Engine) {
		handler(en)
		if en.Pending() > 0 {
			// Re-arm only while other work remains; scheduling relative
			// to the current time can never be in the past.
			if err := en.ScheduleAfter(interval, tick); err != nil {
				panic(err) // unreachable: positive delay from now
			}
		}
	}
	return e.ScheduleAt(e.now, tick)
}

// RunUntil fires events with at <= horizon, advancing the clock to each
// event's time. Events beyond the horizon remain queued; the clock ends at
// min(horizon, last fired event) — it does not jump to the horizon when
// the queue drains early.
func (e *Engine) RunUntil(horizon int64) int64 {
	e.stopped = false
	start := time.Now()
	var fired int64
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		e.processed++
		fired++
		next.handler(e)
	}
	obsEvents.Add(fired)
	obsRunTime.Observe(time.Since(start))
	return e.now
}
