package eventsim

import (
	"testing"
)

func TestScheduleAndRunOrder(t *testing.T) {
	e := New(0)
	var fired []int
	if err := e.ScheduleAt(30, func(*Engine) { fired = append(fired, 30) }); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(10, func(*Engine) { fired = append(fired, 10) }); err != nil {
		t.Fatal(err)
	}
	if err := e.ScheduleAt(20, func(*Engine) { fired = append(fired, 20) }); err != nil {
		t.Fatal(err)
	}
	end := e.Run()
	if end != 30 {
		t.Errorf("end time = %d, want 30", end)
	}
	want := []int{10, 20, 30}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New(0)
	var fired []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		if err := e.ScheduleAt(5, func(*Engine) { fired = append(fired, name) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if fired[0] != "a" || fired[1] != "b" || fired[2] != "c" {
		t.Errorf("simultaneous events out of order: %v", fired)
	}
}

func TestScheduleErrors(t *testing.T) {
	e := New(100)
	if err := e.ScheduleAt(50, func(*Engine) {}); err == nil {
		t.Error("past event should error")
	}
	if err := e.ScheduleAfter(-1, func(*Engine) {}); err == nil {
		t.Error("negative delay should error")
	}
	if err := e.ScheduleAt(200, nil); err == nil {
		t.Error("nil handler should error")
	}
}

func TestHandlersCanScheduleFollowUps(t *testing.T) {
	e := New(0)
	count := 0
	var tick Handler
	tick = func(en *Engine) {
		count++
		if count < 5 {
			if err := en.ScheduleAfter(10, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := e.ScheduleAt(0, tick); err != nil {
		t.Fatal(err)
	}
	end := e.Run()
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if end != 40 {
		t.Errorf("end = %d, want 40", end)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := New(0)
	var fired []int64
	for _, at := range []int64{10, 20, 30, 40} {
		at := at
		if err := e.ScheduleAt(at, func(*Engine) { fired = append(fired, at) }); err != nil {
			t.Fatal(err)
		}
	}
	end := e.RunUntil(25)
	if end != 20 {
		t.Errorf("end = %d, want 20", end)
	}
	if len(fired) != 2 {
		t.Errorf("fired = %v, want 2 events", fired)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Resume to completion.
	e.Run()
	if len(fired) != 4 {
		t.Errorf("after resume fired = %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := New(0)
	var fired int
	for i := int64(1); i <= 10; i++ {
		if err := e.ScheduleAt(i, func(en *Engine) {
			fired++
			if fired == 3 {
				en.Stop()
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if fired != 3 {
		t.Errorf("fired = %d, want 3 after Stop", fired)
	}
	// Run resumes after a stop.
	e.Run()
	if fired != 10 {
		t.Errorf("fired = %d, want 10 after resume", fired)
	}
}

func TestNowAdvancesDuringHandlers(t *testing.T) {
	e := New(5)
	if e.Now() != 5 {
		t.Errorf("Now = %d, want 5", e.Now())
	}
	var seen int64
	if err := e.ScheduleAt(42, func(en *Engine) { seen = en.Now() }); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if seen != 42 {
		t.Errorf("handler saw Now = %d, want 42", seen)
	}
}

func TestScheduleEvery(t *testing.T) {
	e := New(0)
	ticks := 0
	if err := e.ScheduleEvery(10, func(*Engine) { ticks++ }); err != nil {
		t.Fatal(err)
	}
	// Real workload until t=35: ticks at 0, 10, 20, 30, and one final
	// re-armed tick at 40 that finds the queue empty and stops.
	for _, at := range []int64{5, 15, 35} {
		if err := e.ScheduleAt(at, func(*Engine) {}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if ticks < 4 || ticks > 5 {
		t.Errorf("ticks = %d, want 4-5 (self-terminating chain)", ticks)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d, want 0", e.Pending())
	}
	// Validation.
	if err := e.ScheduleEvery(0, func(*Engine) {}); err == nil {
		t.Error("zero interval should error")
	}
	if err := e.ScheduleEvery(5, nil); err == nil {
		t.Error("nil handler should error")
	}
}
