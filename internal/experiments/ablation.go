package experiments

import (
	"fmt"
	"strings"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out beyond the paper's own figures:
//
//   - the controller's load-report staleness (the herd-effect lever that
//     makes load-only balancing fragile),
//   - the full baseline panel (is S³'s edge really the social signal, or
//     just count-balancing?),
//   - the S³ balance guard (how much load-awareness the social dispersal
//     needs), and
//   - the co-arrival batch window (the value of Algorithm 1's joint
//     clique placement over purely online decisions).

// AblationBaselinesResult compares S³ against every baseline policy.
type AblationBaselinesResult struct {
	// Policies and Means are parallel; Means[i] is the mean normalized
	// balance index of Policies[i].
	Policies []string
	Means    []float64
	// S3Mean is the S³ result on the same data.
	S3Mean float64
}

// AblationBaselines runs the full baseline panel. The panel entries and
// the S³ run are independent simulations, so they all run concurrently
// on the experiment pool.
func AblationBaselines(d *Data) (*AblationBaselinesResult, error) {
	panel := []struct {
		name    string
		factory func(trace.ControllerID, []trace.AP) wlan.Selector
	}{
		{"LLF", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.LLF{} }},
		{"LeastUsers", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.LeastUsers{} }},
		{"StrongestRSSI", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.StrongestRSSI{} }},
		{"Random", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.NewRandom(1) }},
		{"RoundRobin", func(trace.ControllerID, []trace.AP) wlan.Selector { return &baseline.RoundRobin{} }},
		{"S3", nil}, // sentinel: runs the S³ policy
	}
	res := &AblationBaselinesResult{}
	jobs := make([]sweepJob, len(panel))
	means := make([]float64, len(panel))
	for i, p := range panel {
		i, p := i, p
		jobs[i] = sweepJob{
			name: p.name,
			run: func() (float64, error) {
				var sim *wlan.Result
				var err error
				if p.factory == nil {
					sim, err = d.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
				} else {
					sim, err = d.RunSelector(p.factory)
				}
				if err != nil {
					return 0, fmt.Errorf("ablation baseline %s: %w", p.name, err)
				}
				return MeanBalance(sim)
			},
			store: func(v float64) { means[i] = v },
		}
	}
	if err := d.runSweep("ablation-baselines", jobs); err != nil {
		return nil, err
	}
	for i, p := range panel {
		if p.factory == nil {
			res.S3Mean = means[i]
			continue
		}
		res.Policies = append(res.Policies, p.name)
		res.Means = append(res.Means, means[i])
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationBaselinesResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: S3 vs baseline panel (mean normalized balance index)\n")
	fmt.Fprintf(&sb, "  %-16s %-10s %-10s\n", "policy", "balance", "S3 gain")
	for i, p := range r.Policies {
		gain := 0.0
		if r.Means[i] > 0 {
			gain = (r.S3Mean - r.Means[i]) / r.Means[i] * 100
		}
		fmt.Fprintf(&sb, "  %-16s %-10.4f %+.1f%%\n", p, r.Means[i], gain)
	}
	fmt.Fprintf(&sb, "  %-16s %-10.4f\n", "S3", r.S3Mean)
	return sb.String()
}

// AblationStalenessResult sweeps the controller's load-report interval.
type AblationStalenessResult struct {
	// IntervalsSeconds[i] pairs with S3Means[i] and LLFMeans[i];
	// 0 means live load.
	IntervalsSeconds []int64
	S3Means          []float64
	LLFMeans         []float64
}

// AblationStaleness sweeps the report interval for both policies. Each
// cell runs on a private shallow copy of the dataset (the trace and
// training artifacts are shared read-only), so all interval × policy
// combinations execute concurrently and d itself is never mutated.
func AblationStaleness(d *Data, intervals []int64) (*AblationStalenessResult, error) {
	if len(intervals) == 0 {
		intervals = []int64{0, 60, 180, 300, 600}
	}
	res := &AblationStalenessResult{
		IntervalsSeconds: intervals,
		S3Means:          make([]float64, len(intervals)),
		LLFMeans:         make([]float64, len(intervals)),
	}
	jobs := make([]sweepJob, 0, 2*len(intervals))
	for i, iv := range intervals {
		i, iv := i, iv
		cell := *d // private copy: only the report interval differs
		cell.ReportIntervalSeconds = iv
		jobs = append(jobs, sweepJob{
			name: fmt.Sprintf("S3 interval=%ds", iv),
			run: func() (float64, error) {
				sim, err := cell.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
				if err != nil {
					return 0, fmt.Errorf("ablation staleness %ds: %w", iv, err)
				}
				return MeanBalance(sim)
			},
			store: func(v float64) { res.S3Means[i] = v },
		}, sweepJob{
			name: fmt.Sprintf("LLF interval=%ds", iv),
			run: func() (float64, error) {
				sim, err := cell.RunLLF()
				if err != nil {
					return 0, fmt.Errorf("ablation staleness %ds: %w", iv, err)
				}
				return MeanBalance(sim)
			},
			store: func(v float64) { res.LLFMeans[i] = v },
		})
	}
	if err := d.runSweep("ablation-staleness", jobs); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationStalenessResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: load-report staleness (controller polling period)\n")
	fmt.Fprintf(&sb, "  %-12s %-10s %-10s %-10s\n", "interval", "S3", "LLF", "gain")
	for i, iv := range r.IntervalsSeconds {
		gain := 0.0
		if r.LLFMeans[i] > 0 {
			gain = (r.S3Means[i] - r.LLFMeans[i]) / r.LLFMeans[i] * 100
		}
		label := "live"
		if iv > 0 {
			label = fmt.Sprintf("%ds", iv)
		}
		fmt.Fprintf(&sb, "  %-12s %-10.4f %-10.4f %+.1f%%\n",
			label, r.S3Means[i], r.LLFMeans[i], gain)
	}
	return sb.String()
}

// AblationGuardResult sweeps S³'s balance guard.
type AblationGuardResult struct {
	Guards []float64
	Means  []float64
}

// AblationGuard sweeps SelectorConfig.BalanceGuard.
func AblationGuard(d *Data, guards []float64) (*AblationGuardResult, error) {
	if len(guards) == 0 {
		guards = []float64{0.1, 0.25, 0.5, 1, 2, 100}
	}
	res := &AblationGuardResult{Guards: guards, Means: make([]float64, len(guards))}
	jobs := make([]sweepJob, len(guards))
	for i, g := range guards {
		i, g := i, g
		jobs[i] = sweepJob{
			name: fmt.Sprintf("guard=%v", g),
			run: func() (float64, error) {
				cfg := core.DefaultSelectorConfig()
				cfg.BalanceGuard = g
				sim, err := d.RunS3(society.DefaultConfig(), cfg)
				if err != nil {
					return 0, fmt.Errorf("ablation guard %v: %w", g, err)
				}
				return MeanBalance(sim)
			},
			store: func(v float64) { res.Means[i] = v },
		}
	}
	if err := d.runSweep("ablation-guard", jobs); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationGuardResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: S3 balance guard\n")
	fmt.Fprintf(&sb, "  %-10s %-10s\n", "guard", "balance")
	for i, g := range r.Guards {
		fmt.Fprintf(&sb, "  %-10.2f %-10.4f\n", g, r.Means[i])
	}
	return sb.String()
}

// AblationBatchWindowResult sweeps the co-arrival batch window.
type AblationBatchWindowResult struct {
	WindowsSeconds []int64
	Means          []float64
}

// AblationBatchWindow sweeps the Algorithm 1 batching window; 0 disables
// joint placement (purely online decisions). Each cell runs on a
// private shallow copy of the dataset, so the sweep parallelizes and d
// is never mutated.
func AblationBatchWindow(d *Data, windows []int64) (*AblationBatchWindowResult, error) {
	if len(windows) == 0 {
		windows = []int64{0, 30, 60, 120, 300}
	}
	res := &AblationBatchWindowResult{
		WindowsSeconds: windows,
		Means:          make([]float64, len(windows)),
	}
	jobs := make([]sweepJob, len(windows))
	for i, w := range windows {
		i, w := i, w
		cell := *d // private copy: only the batch window differs
		cell.BatchWindowSeconds = w
		jobs[i] = sweepJob{
			name: fmt.Sprintf("window=%ds", w),
			run: func() (float64, error) {
				sim, err := cell.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
				if err != nil {
					return 0, fmt.Errorf("ablation batch window %ds: %w", w, err)
				}
				return MeanBalance(sim)
			},
			store: func(v float64) { res.Means[i] = v },
		}
	}
	if err := d.runSweep("ablation-batch", jobs); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationBatchWindowResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: Algorithm 1 co-arrival batch window\n")
	fmt.Fprintf(&sb, "  %-10s %-10s\n", "window", "balance")
	for i, w := range r.WindowsSeconds {
		fmt.Fprintf(&sb, "  %-10d %-10.4f\n", w, r.Means[i])
	}
	return sb.String()
}

// AblationTemporalResult sweeps the temporal-feature weight — the paper's
// future-work profile extension.
type AblationTemporalResult struct {
	Weights []float64
	Means   []float64
}

// AblationTemporal sweeps society.Config.TemporalWeight (0 reproduces the
// paper's pure 6-realm profiles).
func AblationTemporal(d *Data, weights []float64) (*AblationTemporalResult, error) {
	if len(weights) == 0 {
		weights = []float64{0, 0.25, 0.5, 1}
	}
	res := &AblationTemporalResult{Weights: weights, Means: make([]float64, len(weights))}
	jobs := make([]sweepJob, len(weights))
	for i, w := range weights {
		i, w := i, w
		jobs[i] = sweepJob{
			name: fmt.Sprintf("temporal=%v", w),
			run: func() (float64, error) {
				cfg := society.DefaultConfig()
				cfg.TemporalWeight = w
				sim, err := d.RunS3(cfg, core.DefaultSelectorConfig())
				if err != nil {
					return 0, fmt.Errorf("ablation temporal %v: %w", w, err)
				}
				return MeanBalance(sim)
			},
			store: func(v float64) { res.Means[i] = v },
		}
	}
	if err := d.runSweep("ablation-temporal", jobs); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationTemporalResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: temporal profile features (future-work extension)\n")
	fmt.Fprintf(&sb, "  %-10s %-10s\n", "weight", "balance")
	for i, w := range r.Weights {
		fmt.Fprintf(&sb, "  %-10.2f %-10.4f\n", w, r.Means[i])
	}
	return sb.String()
}
