package experiments

import (
	"fmt"
	"strings"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// This file holds the ablation studies for the design choices DESIGN.md
// calls out beyond the paper's own figures:
//
//   - the controller's load-report staleness (the herd-effect lever that
//     makes load-only balancing fragile),
//   - the full baseline panel (is S³'s edge really the social signal, or
//     just count-balancing?),
//   - the S³ balance guard (how much load-awareness the social dispersal
//     needs), and
//   - the co-arrival batch window (the value of Algorithm 1's joint
//     clique placement over purely online decisions).

// AblationBaselinesResult compares S³ against every baseline policy.
type AblationBaselinesResult struct {
	// Policies and Means are parallel; Means[i] is the mean normalized
	// balance index of Policies[i].
	Policies []string
	Means    []float64
	// S3Mean is the S³ result on the same data.
	S3Mean float64
}

// AblationBaselines runs the full baseline panel.
func AblationBaselines(d *Data) (*AblationBaselinesResult, error) {
	res := &AblationBaselinesResult{}
	panel := []struct {
		name    string
		factory func(trace.ControllerID, []trace.AP) wlan.Selector
	}{
		{"LLF", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.LLF{} }},
		{"LeastUsers", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.LeastUsers{} }},
		{"StrongestRSSI", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.StrongestRSSI{} }},
		{"Random", func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.NewRandom(1) }},
		{"RoundRobin", func(trace.ControllerID, []trace.AP) wlan.Selector { return &baseline.RoundRobin{} }},
	}
	for _, p := range panel {
		sim, err := d.RunSelector(p.factory)
		if err != nil {
			return nil, fmt.Errorf("ablation baseline %s: %w", p.name, err)
		}
		mean, err := MeanBalance(sim)
		if err != nil {
			return nil, err
		}
		res.Policies = append(res.Policies, p.name)
		res.Means = append(res.Means, mean)
	}
	s3Sim, err := d.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
	if err != nil {
		return nil, err
	}
	res.S3Mean, err = MeanBalance(s3Sim)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationBaselinesResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: S3 vs baseline panel (mean normalized balance index)\n")
	fmt.Fprintf(&sb, "  %-16s %-10s %-10s\n", "policy", "balance", "S3 gain")
	for i, p := range r.Policies {
		gain := 0.0
		if r.Means[i] > 0 {
			gain = (r.S3Mean - r.Means[i]) / r.Means[i] * 100
		}
		fmt.Fprintf(&sb, "  %-16s %-10.4f %+.1f%%\n", p, r.Means[i], gain)
	}
	fmt.Fprintf(&sb, "  %-16s %-10.4f\n", "S3", r.S3Mean)
	return sb.String()
}

// AblationStalenessResult sweeps the controller's load-report interval.
type AblationStalenessResult struct {
	// IntervalsSeconds[i] pairs with S3Means[i] and LLFMeans[i];
	// 0 means live load.
	IntervalsSeconds []int64
	S3Means          []float64
	LLFMeans         []float64
}

// AblationStaleness sweeps the report interval for both policies. The
// data's interval is restored afterwards.
func AblationStaleness(d *Data, intervals []int64) (*AblationStalenessResult, error) {
	if len(intervals) == 0 {
		intervals = []int64{0, 60, 180, 300, 600}
	}
	saved := d.ReportIntervalSeconds
	defer func() { d.ReportIntervalSeconds = saved }()

	res := &AblationStalenessResult{IntervalsSeconds: intervals}
	for _, iv := range intervals {
		d.ReportIntervalSeconds = iv
		s3Sim, err := d.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
		if err != nil {
			return nil, fmt.Errorf("ablation staleness %ds: %w", iv, err)
		}
		s3Mean, err := MeanBalance(s3Sim)
		if err != nil {
			return nil, err
		}
		llfSim, err := d.RunLLF()
		if err != nil {
			return nil, err
		}
		llfMean, err := MeanBalance(llfSim)
		if err != nil {
			return nil, err
		}
		res.S3Means = append(res.S3Means, s3Mean)
		res.LLFMeans = append(res.LLFMeans, llfMean)
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationStalenessResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: load-report staleness (controller polling period)\n")
	fmt.Fprintf(&sb, "  %-12s %-10s %-10s %-10s\n", "interval", "S3", "LLF", "gain")
	for i, iv := range r.IntervalsSeconds {
		gain := 0.0
		if r.LLFMeans[i] > 0 {
			gain = (r.S3Means[i] - r.LLFMeans[i]) / r.LLFMeans[i] * 100
		}
		label := "live"
		if iv > 0 {
			label = fmt.Sprintf("%ds", iv)
		}
		fmt.Fprintf(&sb, "  %-12s %-10.4f %-10.4f %+.1f%%\n",
			label, r.S3Means[i], r.LLFMeans[i], gain)
	}
	return sb.String()
}

// AblationGuardResult sweeps S³'s balance guard.
type AblationGuardResult struct {
	Guards []float64
	Means  []float64
}

// AblationGuard sweeps SelectorConfig.BalanceGuard.
func AblationGuard(d *Data, guards []float64) (*AblationGuardResult, error) {
	if len(guards) == 0 {
		guards = []float64{0.1, 0.25, 0.5, 1, 2, 100}
	}
	res := &AblationGuardResult{Guards: guards}
	for _, g := range guards {
		cfg := core.DefaultSelectorConfig()
		cfg.BalanceGuard = g
		sim, err := d.RunS3(society.DefaultConfig(), cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation guard %v: %w", g, err)
		}
		mean, err := MeanBalance(sim)
		if err != nil {
			return nil, err
		}
		res.Means = append(res.Means, mean)
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationGuardResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: S3 balance guard\n")
	fmt.Fprintf(&sb, "  %-10s %-10s\n", "guard", "balance")
	for i, g := range r.Guards {
		fmt.Fprintf(&sb, "  %-10.2f %-10.4f\n", g, r.Means[i])
	}
	return sb.String()
}

// AblationBatchWindowResult sweeps the co-arrival batch window.
type AblationBatchWindowResult struct {
	WindowsSeconds []int64
	Means          []float64
}

// AblationBatchWindow sweeps the Algorithm 1 batching window; 0 disables
// joint placement (purely online decisions). The data's window is
// restored afterwards.
func AblationBatchWindow(d *Data, windows []int64) (*AblationBatchWindowResult, error) {
	if len(windows) == 0 {
		windows = []int64{0, 30, 60, 120, 300}
	}
	saved := d.BatchWindowSeconds
	defer func() { d.BatchWindowSeconds = saved }()

	res := &AblationBatchWindowResult{WindowsSeconds: windows}
	for _, w := range windows {
		d.BatchWindowSeconds = w
		sim, err := d.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
		if err != nil {
			return nil, fmt.Errorf("ablation batch window %ds: %w", w, err)
		}
		mean, err := MeanBalance(sim)
		if err != nil {
			return nil, err
		}
		res.Means = append(res.Means, mean)
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationBatchWindowResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: Algorithm 1 co-arrival batch window\n")
	fmt.Fprintf(&sb, "  %-10s %-10s\n", "window", "balance")
	for i, w := range r.WindowsSeconds {
		fmt.Fprintf(&sb, "  %-10d %-10.4f\n", w, r.Means[i])
	}
	return sb.String()
}

// AblationTemporalResult sweeps the temporal-feature weight — the paper's
// future-work profile extension.
type AblationTemporalResult struct {
	Weights []float64
	Means   []float64
}

// AblationTemporal sweeps society.Config.TemporalWeight (0 reproduces the
// paper's pure 6-realm profiles).
func AblationTemporal(d *Data, weights []float64) (*AblationTemporalResult, error) {
	if len(weights) == 0 {
		weights = []float64{0, 0.25, 0.5, 1}
	}
	res := &AblationTemporalResult{Weights: weights}
	for _, w := range weights {
		cfg := society.DefaultConfig()
		cfg.TemporalWeight = w
		sim, err := d.RunS3(cfg, core.DefaultSelectorConfig())
		if err != nil {
			return nil, fmt.Errorf("ablation temporal %v: %w", w, err)
		}
		mean, err := MeanBalance(sim)
		if err != nil {
			return nil, err
		}
		res.Means = append(res.Means, mean)
	}
	return res, nil
}

// Render formats the ablation as text.
func (r *AblationTemporalResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: temporal profile features (future-work extension)\n")
	fmt.Fprintf(&sb, "  %-10s %-10s\n", "weight", "balance")
	for i, w := range r.Weights {
		fmt.Fprintf(&sb, "  %-10.2f %-10.4f\n", w, r.Means[i])
	}
	return sb.String()
}
