package experiments

import (
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/runner"
)

func TestAblationBaselines(t *testing.T) {
	d := prepareSmall(t)
	res, err := AblationBaselines(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 5 || len(res.Means) != 5 {
		t.Fatalf("panel size = %d", len(res.Policies))
	}
	for i, m := range res.Means {
		if m <= 0 || m > 1 {
			t.Errorf("%s mean = %v out of range", res.Policies[i], m)
		}
	}
	// S³ must beat the stale-load LLF baseline.
	for i, p := range res.Policies {
		if p == "LLF" && res.S3Mean <= res.Means[i] {
			t.Errorf("S3 (%v) should beat LLF (%v)", res.S3Mean, res.Means[i])
		}
	}
	if !strings.Contains(res.Render(), "baseline panel") {
		t.Error("Render missing title")
	}
}

func TestAblationStaleness(t *testing.T) {
	d := prepareSmall(t)
	res, err := AblationStaleness(d, []int64{0, 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.S3Means) != 2 || len(res.LLFMeans) != 2 {
		t.Fatalf("result shape wrong: %+v", res)
	}
	// Staleness hurts LLF much more than S³: the gain at 300s must
	// exceed the gain with live load.
	gainLive := res.S3Means[0] - res.LLFMeans[0]
	gainStale := res.S3Means[1] - res.LLFMeans[1]
	if gainStale <= gainLive {
		t.Errorf("stale gain (%v) should exceed live gain (%v)",
			gainStale, gainLive)
	}
	// The sweep restores the data's interval.
	if d.ReportIntervalSeconds != 300 {
		t.Errorf("interval not restored: %d", d.ReportIntervalSeconds)
	}
	if !strings.Contains(res.Render(), "staleness") {
		t.Error("Render missing title")
	}
}

func TestAblationGuard(t *testing.T) {
	d := prepareSmall(t)
	res, err := AblationGuard(d, []float64{0.1, 0.5, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Means) != 3 {
		t.Fatalf("means = %v", res.Means)
	}
	for _, m := range res.Means {
		if m <= 0 || m > 1 {
			t.Errorf("mean %v out of range", m)
		}
	}
	if !strings.Contains(res.Render(), "balance guard") {
		t.Error("Render missing title")
	}
}

func TestAblationBatchWindow(t *testing.T) {
	d := prepareSmall(t)
	res, err := AblationBatchWindow(d, []int64{0, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Means) != 2 {
		t.Fatalf("means = %v", res.Means)
	}
	if d.BatchWindowSeconds != 60 {
		t.Errorf("batch window not restored: %d", d.BatchWindowSeconds)
	}
	if !strings.Contains(res.Render(), "batch window") {
		t.Error("Render missing title")
	}
}

func TestMetricPanel(t *testing.T) {
	d := prepareSmall(t)
	res, err := MetricPanel(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != 4 || len(res.S3) != 4 || len(res.LLF) != 4 {
		t.Fatalf("panel shape: %+v", res)
	}
	// S³ should win under every fairness metric, not just Chiu–Jain.
	for i, name := range res.Metrics {
		s3Wins := res.S3[i] > res.LLF[i]
		if name == "gini" {
			s3Wins = res.S3[i] < res.LLF[i]
		}
		if !s3Wins {
			t.Errorf("metric %s: S3 %.4f vs LLF %.4f — S3 should win",
				name, res.S3[i], res.LLF[i])
		}
	}
	if !strings.Contains(res.Render(), "fairness-metric panel") {
		t.Error("Render missing title")
	}
}

func TestReplicateFig12(t *testing.T) {
	res, err := ReplicateFig12(smallCampus(), 9, []int64{1, 2, 3}, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gains) != 3 {
		t.Fatalf("gains = %v", res.Gains)
	}
	// S³ should win on every seed at this configuration.
	if res.Wins != 3 {
		t.Errorf("wins = %d/3 (gains %v)", res.Wins, res.Gains)
	}
	if res.MeanGain <= 0 {
		t.Errorf("mean gain = %v, want positive", res.MeanGain)
	}
	if !strings.Contains(res.Render(), "replicated") {
		t.Error("Render missing title")
	}
	if _, err := ReplicateFig12(smallCampus(), 9, nil, runner.Config{}); err == nil {
		t.Error("no seeds should error")
	}
}

func TestAblationTemporal(t *testing.T) {
	d := prepareSmall(t)
	res, err := AblationTemporal(d, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Means) != 2 {
		t.Fatalf("means = %v", res.Means)
	}
	for _, m := range res.Means {
		if m <= 0 || m > 1 {
			t.Errorf("mean %v out of range", m)
		}
	}
	if !strings.Contains(res.Render(), "temporal") {
		t.Error("Render missing title")
	}
}
