package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV exports for the evaluation figures, mirroring internal/analysis.

func writeAll(w *csv.Writer, rows [][]string) error {
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return fmt.Errorf("experiments: write CSV: %w", err)
		}
	}
	w.Flush()
	return w.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// WriteCSV emits columns: interval_seconds, alpha, balance.
func (r *Fig10Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"interval_seconds", "alpha", "balance"}}
	for a, alpha := range r.Alphas {
		for i, iv := range r.Intervals {
			rows = append(rows, []string{
				strconv.FormatInt(iv, 10), f(alpha), f(r.Mean[a][i]),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: history_days, alpha, balance.
func (r *Fig11Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"history_days", "alpha", "balance"}}
	for a, alpha := range r.Alphas {
		for i, hd := range r.HistoryDays {
			rows = append(rows, []string{
				strconv.Itoa(hd), f(alpha), f(r.Mean[a][i]),
			})
		}
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: domain, policy, mean, ci95.
func (r *Fig12Result) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"domain", "policy", "mean", "ci95"}}
	for _, d := range r.Domains {
		rows = append(rows,
			[]string{string(d.Controller), "S3", f(d.MeanS3), f(d.CIS3)},
			[]string{string(d.Controller), "LLF", f(d.MeanLLF), f(d.CILLF)},
		)
	}
	return writeAll(w, rows)
}

// WriteCSV emits columns: policy, balance.
func (r *AblationBaselinesResult) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"policy", "balance"}}
	for i, p := range r.Policies {
		rows = append(rows, []string{p, f(r.Means[i])})
	}
	rows = append(rows, []string{"S3", f(r.S3Mean)})
	return writeAll(w, rows)
}

// WriteCSV emits columns: interval_seconds, s3, llf.
func (r *AblationStalenessResult) WriteCSV(out io.Writer) error {
	w := csv.NewWriter(out)
	rows := [][]string{{"interval_seconds", "s3", "llf"}}
	for i, iv := range r.IntervalsSeconds {
		rows = append(rows, []string{
			strconv.FormatInt(iv, 10), f(r.S3Means[i]), f(r.LLFMeans[i]),
		})
	}
	return writeAll(w, rows)
}

// WriteSeriesCSV writes the Fig. 12 per-bin balance time series of both
// policies side by side (time, domain, S3, LLF) — the data behind the
// paper's balance-over-a-day plot.
func (r *Fig12Result) WriteSeriesCSV(out io.Writer) error {
	if r.S3Series == nil || r.LLFSeries == nil {
		return fmt.Errorf("experiments: Fig12Result has no series")
	}
	return WriteComparisonSeriesCSV(out, r.S3Series, r.LLFSeries)
}
