package experiments

import (
	"bytes"
	"encoding/csv"
	"io"
	"testing"

	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/society"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	r := csv.NewReader(buf)
	var rows [][]string
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("CSV parse: %v", err)
		}
		rows = append(rows, rec)
	}
	if len(rows) < 2 {
		t.Fatalf("CSV has no data rows")
	}
	return rows
}

func TestExperimentCSVExports(t *testing.T) {
	d := prepareSmall(t)

	t.Run("fig10", func(t *testing.T) {
		res, err := Fig10(d, []int64{60, 300}, []float64{0.3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		if rows := parseCSV(t, &buf); len(rows)-1 != 2 {
			t.Errorf("rows = %d, want 2", len(rows)-1)
		}
	})

	t.Run("fig11", func(t *testing.T) {
		res, err := Fig11(d, []int{1, 5}, []float64{0.3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		parseCSV(t, &buf)
	})

	t.Run("fig12", func(t *testing.T) {
		res, err := Fig12(d)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		rows := parseCSV(t, &buf)
		if len(rows)-1 != 2*len(res.Domains) {
			t.Errorf("rows = %d, want %d", len(rows)-1, 2*len(res.Domains))
		}
	})

	t.Run("ablations", func(t *testing.T) {
		ab, err := AblationBaselines(d)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		parseCSV(t, &buf)
		st, err := AblationStaleness(d, []int64{0, 300})
		if err != nil {
			t.Fatal(err)
		}
		buf.Reset()
		if err := st.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		parseCSV(t, &buf)
	})
}

func TestExtractAndCompareSeries(t *testing.T) {
	d := prepareSmall(t)
	s3Res, err := d.RunS3(societyDefault(), coreDefault())
	if err != nil {
		t.Fatal(err)
	}
	llfRes, err := d.RunLLF()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExtractSeries(s3Res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtractSeries(llfRes)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy != "S3" || b.Policy != "LLF" {
		t.Errorf("policies = %q, %q", a.Policy, b.Policy)
	}
	if len(a.Times) == 0 || len(a.Times) != len(b.Times) {
		t.Fatalf("times = %d vs %d", len(a.Times), len(b.Times))
	}
	var buf bytes.Buffer
	if err := WriteComparisonSeriesCSV(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	wantRows := len(a.ByDomain) * len(a.Times)
	if len(rows)-1 != wantRows {
		t.Errorf("rows = %d, want %d", len(rows)-1, wantRows)
	}
	// Mismatched series error.
	short := &PolicySeries{Policy: "x", Times: a.Times[:1]}
	if err := WriteComparisonSeriesCSV(&buf, a, short); err == nil {
		t.Error("length mismatch should error")
	}
}

// small helpers keeping the test terse
func societyDefault() society.Config   { return society.DefaultConfig() }
func coreDefault() core.SelectorConfig { return core.DefaultSelectorConfig() }

func TestFig12SeriesCSV(t *testing.T) {
	d := prepareSmall(t)
	res, err := Fig12(d)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteSeriesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf)
	var empty Fig12Result
	if err := empty.WriteSeriesCSV(&buf); err == nil {
		t.Error("missing series should error")
	}
}
