package experiments

import (
	"testing"
)

// TestParallelDeterminism is the contract test for the runner migration:
// every sweep and ablation must render byte-identically whether it runs
// serially or fanned out over eight workers. The dataset is prepared once
// and shared read-only; each worker count gets its own shallow Data copy
// so the Workers field itself never races.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation grid is slow")
	}
	base := prepareSmall(t)

	grid := []struct {
		name string
		run  func(d *Data) (string, error)
	}{
		{"fig10", func(d *Data) (string, error) {
			r, err := Fig10(d, []int64{60, 300}, []float64{0.3})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig11", func(d *Data) (string, error) {
			r, err := Fig11(d, []int{1, 5, 9}, []float64{0.3})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig12", func(d *Data) (string, error) {
			r, err := Fig12(d)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"baselines", func(d *Data) (string, error) {
			r, err := AblationBaselines(d)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"staleness", func(d *Data) (string, error) {
			r, err := AblationStaleness(d, []int64{0, 300})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"guard", func(d *Data) (string, error) {
			r, err := AblationGuard(d, []float64{0.25, 1})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"batch", func(d *Data) (string, error) {
			r, err := AblationBatchWindow(d, []int64{0, 60})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"temporal", func(d *Data) (string, error) {
			r, err := AblationTemporal(d, []float64{0, 0.5})
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"metric-panel", func(d *Data) (string, error) {
			r, err := MetricPanel(d)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}

	for _, cell := range grid {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			serial := *base
			serial.Workers = 1
			wantOut, err := cell.run(&serial)
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			parallel := *base
			parallel.Workers = 8
			gotOut, err := cell.run(&parallel)
			if err != nil {
				t.Fatalf("workers=8: %v", err)
			}
			if wantOut != gotOut {
				t.Errorf("workers=8 output differs from workers=1\nserial:\n%s\nparallel:\n%s", wantOut, gotOut)
			}
		})
	}
}
