package experiments

import (
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// smallCampus is a reduced configuration so the experiment tests stay
// fast while preserving the group-churn structure.
func smallCampus() synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Users = 150
	cfg.Buildings = 4
	cfg.APsPerBuilding = 3
	cfg.Days = 12
	return cfg
}

func prepareSmall(t *testing.T) *Data {
	t.Helper()
	d, err := Prepare(smallCampus(), 9)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPrepare(t *testing.T) {
	d := prepareSmall(t)
	if len(d.Train.Sessions) == 0 || len(d.Test.Sessions) == 0 {
		t.Fatal("empty splits")
	}
	cut := d.Campus.Epoch + int64(d.TrainDays)*86400
	for _, s := range d.Train.Sessions {
		if s.ConnectAt >= cut {
			t.Fatal("test session leaked into training split")
		}
	}
	for _, s := range d.Test.Sessions {
		if s.ConnectAt < cut {
			t.Fatal("training session leaked into test split")
		}
	}
	if d.Profiles == nil || d.Demands == nil {
		t.Fatal("missing training artifacts")
	}
}

func TestPrepareErrors(t *testing.T) {
	cfg := smallCampus()
	if _, err := Prepare(cfg, cfg.Days); err == nil {
		t.Error("trainDays >= days should error")
	}
	bad := cfg
	bad.Users = 0
	if _, err := Prepare(bad, 5); err == nil {
		t.Error("invalid campus should error")
	}
}

func TestS3BeatsLLF(t *testing.T) {
	d := prepareSmall(t)
	s3Res, err := d.RunS3(society.DefaultConfig(), core.DefaultSelectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	llfRes, err := d.RunLLF()
	if err != nil {
		t.Fatal(err)
	}
	mS3, err := MeanBalance(s3Res)
	if err != nil {
		t.Fatal(err)
	}
	mLLF, err := MeanBalance(llfRes)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mean balance: S3 = %.4f, LLF = %.4f (gain %.1f%%)",
		mS3, mLLF, (mS3-mLLF)/mLLF*100)
	if mS3 <= mLLF {
		t.Errorf("S3 (%.4f) should beat LLF (%.4f)", mS3, mLLF)
	}
}

func TestRunSelector(t *testing.T) {
	d := prepareSmall(t)
	res, err := d.RunSelector(func(trace.ControllerID, []trace.AP) wlan.Selector {
		return baseline.StrongestRSSI{}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "StrongestRSSI" {
		t.Errorf("policy = %q", res.Policy)
	}
	if _, err := MeanBalance(res); err != nil {
		t.Fatal(err)
	}
}

func TestDomainBalances(t *testing.T) {
	d := prepareSmall(t)
	res, err := d.RunLLF()
	if err != nil {
		t.Fatal(err)
	}
	byDomain, err := DomainBalances(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(byDomain) != 4 {
		t.Errorf("domains = %d, want 4", len(byDomain))
	}
	for c, vals := range byDomain {
		for _, v := range vals {
			if v < 0 || v > 1 {
				t.Errorf("domain %s balance %v out of [0,1]", c, v)
			}
		}
	}
}

func TestBalancesByHourFilter(t *testing.T) {
	d := prepareSmall(t)
	res, err := d.RunLLF()
	if err != nil {
		t.Fatal(err)
	}
	all, err := BalancesByHourFilter(res, d.Campus.Epoch, func(int) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	none, err := BalancesByHourFilter(res, d.Campus.Epoch, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(none) != 0 {
		t.Errorf("filter results: all=%d none=%d", len(all), len(none))
	}
}

func TestFig10(t *testing.T) {
	d := prepareSmall(t)
	res, err := Fig10(d, []int64{60, 300, 900}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mean) != 1 || len(res.Mean[0]) != 3 {
		t.Fatalf("mean shape wrong: %v", res.Mean)
	}
	if res.BestInterval == 0 {
		t.Error("BestInterval unset")
	}
	for _, v := range res.Mean[0] {
		if v <= 0 || v > 1 {
			t.Errorf("balance %v out of range", v)
		}
	}
	if !strings.Contains(res.Render(), "Fig 10") {
		t.Error("Render missing title")
	}
}

func TestFig11(t *testing.T) {
	d := prepareSmall(t)
	res, err := Fig11(d, []int{1, 5, 9}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mean) != 1 || len(res.Mean[0]) != 3 {
		t.Fatalf("mean shape wrong: %v", res.Mean)
	}
	// More history should help (or at least not hurt badly).
	if res.Mean[0][2] < res.Mean[0][0]-0.05 {
		t.Errorf("more history should not hurt: %v", res.Mean[0])
	}
	if res.PlateauDays <= 0 {
		t.Error("PlateauDays unset")
	}
	if !strings.Contains(res.Render(), "Fig 11") {
		t.Error("Render missing title")
	}
}

func TestFig12(t *testing.T) {
	d := prepareSmall(t)
	res, err := Fig12(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Domains) == 0 {
		t.Fatal("no domain comparisons")
	}
	// The headline result: S³ beats LLF overall.
	if res.GainPercent <= 0 {
		t.Errorf("gain = %.1f%%, want positive", res.GainPercent)
	}
	// The across-site error-bar statistic is scale-sensitive on synthetic
	// campuses (domain composition drives both policies equally), so it is
	// reported rather than asserted; see EXPERIMENTS.md.
	t.Logf("error-bar reduction = %.1f%%", res.ErrorBarReductionPercent)
	if !strings.Contains(res.Render(), "Fig 12") {
		t.Error("Render missing title")
	}
	t.Logf("gain %.1f%%, leave-peak gain %.1f%%, error-bar reduction %.1f%%",
		res.GainPercent, res.LeavePeakGainPercent, res.ErrorBarReductionPercent)
}
