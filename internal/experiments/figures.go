package experiments

import (
	"fmt"
	"strings"

	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/metrics"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// DefaultIntervals are the co-leave extraction intervals of Fig. 10 (the
// paper sweeps one to twenty minutes in five-minute steps).
var DefaultIntervals = []int64{60, 300, 600, 900, 1200}

// DefaultAlphas are the α values swept in Figs. 10 and 11.
var DefaultAlphas = []float64{0.1, 0.3, 0.5}

// Fig10Result is the balance index as a function of the co-leaving
// extraction interval, one series per α.
type Fig10Result struct {
	Intervals []int64
	Alphas    []float64
	// Mean[a][i] is the mean normalized balance index for Alphas[a] and
	// Intervals[i].
	Mean [][]float64
	// BestInterval is the interval with the highest mean balance at
	// α = 0.3 (the paper finds five minutes).
	BestInterval int64
}

// Fig10 sweeps the co-leave extraction interval and α.
func Fig10(d *Data, intervals []int64, alphas []float64) (*Fig10Result, error) {
	if len(intervals) == 0 {
		intervals = DefaultIntervals
	}
	if len(alphas) == 0 {
		alphas = DefaultAlphas
	}
	res := &Fig10Result{Intervals: intervals, Alphas: alphas}
	res.Mean = make([][]float64, len(alphas))
	jobs := make([]sweepJob, 0, len(alphas)*len(intervals))
	for a, alpha := range alphas {
		res.Mean[a] = make([]float64, len(intervals))
		for i, iv := range intervals {
			alpha, iv := alpha, iv
			a, i := a, i
			jobs = append(jobs, sweepJob{
				name: fmt.Sprintf("interval=%ds α=%v", iv, alpha),
				run: func() (float64, error) {
					cfg := society.DefaultConfig()
					cfg.CoLeaveWindowSeconds = iv
					cfg.Alpha = alpha
					cfg.HistoryDays = 0 // full history for this sweep
					sim, err := d.RunS3(cfg, core.DefaultSelectorConfig())
					if err != nil {
						return 0, fmt.Errorf("fig10 interval=%d alpha=%v: %w", iv, alpha, err)
					}
					return MeanBalance(sim)
				},
				store: func(v float64) { res.Mean[a][i] = v },
			})
		}
	}
	if err := d.runSweep("fig10", jobs); err != nil {
		return nil, err
	}
	// Best interval at α = 0.3 (or the first swept series).
	bestRow := res.Mean[0]
	for a, alpha := range alphas {
		if alpha == 0.3 {
			bestRow = res.Mean[a]
		}
	}
	bestVal := -1.0
	for i, v := range bestRow {
		if v > bestVal {
			bestVal = v
			res.BestInterval = intervals[i]
		}
	}
	return res, nil
}

// Render formats the figure as text.
func (r *Fig10Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 10: balance index vs co-leaving extraction interval\n")
	fmt.Fprintf(&sb, "  best interval: %d min\n", r.BestInterval/60)
	fmt.Fprintf(&sb, "  %-12s", "interval")
	for _, a := range r.Alphas {
		fmt.Fprintf(&sb, " α=%-8.1f", a)
	}
	sb.WriteString("\n")
	for i, iv := range r.Intervals {
		fmt.Fprintf(&sb, "  %-10d m", iv/60)
		for a := range r.Alphas {
			fmt.Fprintf(&sb, " %-10.4f", r.Mean[a][i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Fig11Result is the balance index as a function of training-history
// length, one series per α.
type Fig11Result struct {
	HistoryDays []int
	Alphas      []float64
	// Mean[a][i] is the mean balance for Alphas[a], HistoryDays[i].
	Mean [][]float64
	// PlateauDays is the first history length whose α = 0.3 balance
	// reaches 99% of the sweep's maximum (the paper finds ≈15 days).
	PlateauDays int
}

// Fig11 sweeps the amount of training history.
func Fig11(d *Data, historyDays []int, alphas []float64) (*Fig11Result, error) {
	if len(historyDays) == 0 {
		historyDays = []int{1, 3, 5, 7, 10, 13, 15, 18, 20}
	}
	if len(alphas) == 0 {
		alphas = DefaultAlphas
	}
	res := &Fig11Result{HistoryDays: historyDays, Alphas: alphas}
	res.Mean = make([][]float64, len(alphas))
	jobs := make([]sweepJob, 0, len(alphas)*len(historyDays))
	for a, alpha := range alphas {
		res.Mean[a] = make([]float64, len(historyDays))
		for i, hd := range historyDays {
			alpha, hd := alpha, hd
			a, i := a, i
			jobs = append(jobs, sweepJob{
				name: fmt.Sprintf("history=%dd α=%v", hd, alpha),
				run: func() (float64, error) {
					cfg := society.DefaultConfig()
					cfg.Alpha = alpha
					cfg.HistoryDays = hd
					sim, err := d.RunS3(cfg, core.DefaultSelectorConfig())
					if err != nil {
						return 0, fmt.Errorf("fig11 history=%d alpha=%v: %w", hd, alpha, err)
					}
					return MeanBalance(sim)
				},
				store: func(v float64) { res.Mean[a][i] = v },
			})
		}
	}
	if err := d.runSweep("fig11", jobs); err != nil {
		return nil, err
	}
	curve03 := res.Mean[0]
	for a, alpha := range alphas {
		if alpha == 0.3 {
			curve03 = res.Mean[a]
		}
	}
	// Plateau: the first history length whose balance reaches 99% of the
	// curve's maximum — past it, older history "does not help but does
	// not hurt either".
	res.PlateauDays = historyDays[len(historyDays)-1]
	max := curve03[0]
	for _, v := range curve03 {
		if v > max {
			max = v
		}
	}
	for i, v := range curve03 {
		if v >= 0.99*max {
			res.PlateauDays = historyDays[i]
			break
		}
	}
	return res, nil
}

// Render formats the figure as text.
func (r *Fig11Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 11: balance index vs days of history\n")
	fmt.Fprintf(&sb, "  plateau at ≈ %d days\n", r.PlateauDays)
	fmt.Fprintf(&sb, "  %-12s", "days")
	for _, a := range r.Alphas {
		fmt.Fprintf(&sb, " α=%-8.1f", a)
	}
	sb.WriteString("\n")
	for i, hd := range r.HistoryDays {
		fmt.Fprintf(&sb, "  %-12d", hd)
		for a := range r.Alphas {
			fmt.Fprintf(&sb, " %-10.4f", r.Mean[a][i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// DomainComparison is one controller domain's S³-vs-LLF outcome.
type DomainComparison struct {
	Controller trace.ControllerID
	MeanS3     float64
	CIS3       float64
	MeanLLF    float64
	CILLF      float64
}

// Fig12Result is the headline comparison of S³ against LLF.
type Fig12Result struct {
	Domains []DomainComparison
	// S3Series and LLFSeries carry the per-bin balance time series of
	// both policies for plotting (see WriteSeriesCSV).
	S3Series, LLFSeries *PolicySeries
	// Overall pools all domains' active bins.
	Overall metrics.Comparison
	// GainPercent is the overall mean balance gain (paper: 41.2%).
	GainPercent float64
	// LeavePeakGainPercent is the gain restricted to departure-peak hours
	// (paper: 52.1%).
	LeavePeakGainPercent float64
	// ErrorBarReductionPercent is the reduction of the 95% confidence
	// error bar of the per-site mean balance across controller domains —
	// the paper's "error bar can be reduced by 72.1% overall" statistic
	// (S³ performs consistently across sites; LLF's quality varies with
	// each site's churn).
	ErrorBarReductionPercent float64
}

// Fig12 runs both policies over the test split (concurrently, on the
// experiment pool) and compares them.
func Fig12(d *Data) (*Fig12Result, error) {
	s3Res, llfRes, err := d.RunS3AndLLF(society.DefaultConfig(), core.DefaultSelectorConfig(), "fig12")
	if err != nil {
		return nil, err
	}
	s3Series, err := ExtractSeries(s3Res)
	if err != nil {
		return nil, err
	}
	llfSeries, err := ExtractSeries(llfRes)
	if err != nil {
		return nil, err
	}

	s3ByDomain, err := DomainBalances(s3Res)
	if err != nil {
		return nil, err
	}
	llfByDomain, err := DomainBalances(llfRes)
	if err != nil {
		return nil, err
	}

	res := &Fig12Result{S3Series: s3Series, LLFSeries: llfSeries}
	var allS3, allLLF []float64
	var domainMeansS3, domainMeansLLF []float64
	for _, c := range s3Res.Controllers() {
		s3Vals, llfVals := s3ByDomain[c], llfByDomain[c]
		if len(s3Vals) == 0 || len(llfVals) == 0 {
			continue
		}
		mS3, ciS3 := stats.MeanCI(s3Vals, 0.95)
		mLLF, ciLLF := stats.MeanCI(llfVals, 0.95)
		res.Domains = append(res.Domains, DomainComparison{
			Controller: c,
			MeanS3:     mS3, CIS3: ciS3,
			MeanLLF: mLLF, CILLF: ciLLF,
		})
		allS3 = append(allS3, s3Vals...)
		allLLF = append(allLLF, llfVals...)
		domainMeansS3 = append(domainMeansS3, mS3)
		domainMeansLLF = append(domainMeansLLF, mLLF)
	}
	if len(allS3) == 0 {
		return nil, fmt.Errorf("experiments: no balance samples")
	}
	res.Overall, err = metrics.Compare(allS3, allLLF)
	if err != nil {
		return nil, err
	}
	res.GainPercent = res.Overall.GainPercent
	_, ciAcrossS3 := stats.MeanCI(domainMeansS3, 0.95)
	_, ciAcrossLLF := stats.MeanCI(domainMeansLLF, 0.95)
	if ciAcrossLLF > 0 {
		res.ErrorBarReductionPercent = (ciAcrossLLF - ciAcrossS3) / ciAcrossLLF * 100
	}

	// Departure-peak gain.
	epoch := d.Campus.Epoch
	peakS3, err := BalancesByHourFilter(s3Res, epoch, func(h int) bool { return LeavePeakHours[h] })
	if err != nil {
		return nil, err
	}
	peakLLF, err := BalancesByHourFilter(llfRes, epoch, func(h int) bool { return LeavePeakHours[h] })
	if err != nil {
		return nil, err
	}
	if len(peakS3) > 0 && len(peakLLF) > 0 {
		mS3 := stats.Mean(peakS3)
		mLLF := stats.Mean(peakLLF)
		if mLLF > 0 {
			res.LeavePeakGainPercent = (mS3 - mLLF) / mLLF * 100
		}
	}
	return res, nil
}

// Render formats the figure as text.
func (r *Fig12Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Fig 12: S3 vs LLF, normalized balance index per controller domain (95% CI)\n")
	fmt.Fprintf(&sb, "  overall gain: %.1f%%   leave-peak gain: %.1f%%   error-bar reduction: %.1f%%\n",
		r.GainPercent, r.LeavePeakGainPercent, r.ErrorBarReductionPercent)
	fmt.Fprintf(&sb, "  %-10s %-10s %-10s %-10s %-10s\n",
		"domain", "S3", "±CI", "LLF", "±CI")
	for _, dc := range r.Domains {
		fmt.Fprintf(&sb, "  %-10s %-10.4f %-10.4f %-10.4f %-10.4f\n",
			dc.Controller, dc.MeanS3, dc.CIS3, dc.MeanLLF, dc.CILLF)
	}
	return sb.String()
}
