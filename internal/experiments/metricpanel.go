package experiments

import (
	"fmt"
	"strings"

	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/metrics"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// MetricPanelResult cross-checks the headline comparison under the
// alternative fairness metrics the paper mentions (max-min, proportional
// fairness) plus the Gini coefficient: S³'s advantage must not be an
// artifact of the Chiu–Jain index.
type MetricPanelResult struct {
	// Metrics names the rows: chiu-jain, max-min, proportional, gini.
	Metrics []string
	// S3 and LLF are the mean per-bin values under each metric. For gini,
	// lower is better; for the others, higher is better.
	S3, LLF []float64
}

// MetricPanel runs both policies once (concurrently, on the experiment
// pool) and evaluates every fairness metric over the same active bins.
func MetricPanel(d *Data) (*MetricPanelResult, error) {
	s3Res, llfRes, err := d.RunS3AndLLF(society.DefaultConfig(), core.DefaultSelectorConfig(), "metric-panel")
	if err != nil {
		return nil, err
	}
	res := &MetricPanelResult{
		Metrics: []string{"chiu-jain", "max-min", "proportional", "gini"},
	}
	evaluators := []func([]float64) (float64, error){
		metrics.NormalizedBalanceIndex,
		metrics.MaxMinRatio,
		metrics.ProportionalFairness,
		metrics.Gini,
	}
	for _, eval := range evaluators {
		s3Mean, err := meanMetric(s3Res, eval)
		if err != nil {
			return nil, err
		}
		llfMean, err := meanMetric(llfRes, eval)
		if err != nil {
			return nil, err
		}
		res.S3 = append(res.S3, s3Mean)
		res.LLF = append(res.LLF, llfMean)
	}
	return res, nil
}

// meanMetric evaluates a per-bin load metric over all active bins of all
// domains.
func meanMetric(res *wlan.Result, eval func([]float64) (float64, error)) (float64, error) {
	var w stats.Welford
	for _, c := range res.Controllers() {
		dom := res.Domains[c]
		sessions := make([]trace.Session, 0, len(dom.Assigned))
		for _, a := range dom.Assigned {
			s := a.Session
			s.AP = a.AP
			sessions = append(sessions, s)
		}
		loads, err := trace.BinLoads(sessions, dom.APs, res.Start, res.End, res.BinSeconds)
		if err != nil {
			return 0, err
		}
		for _, row := range loads {
			var total float64
			for _, v := range row {
				total += v
			}
			if total == 0 {
				continue
			}
			v, err := eval(row)
			if err != nil {
				return 0, err
			}
			w.Add(v)
		}
	}
	if w.N() == 0 {
		return 0, fmt.Errorf("experiments: no active bins")
	}
	return w.Mean(), nil
}

// Render formats the panel as text.
func (r *MetricPanelResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Ablation: fairness-metric panel (per-bin means)\n")
	fmt.Fprintf(&sb, "  %-14s %-10s %-10s %-10s\n", "metric", "S3", "LLF", "winner")
	for i, name := range r.Metrics {
		s3Wins := r.S3[i] > r.LLF[i]
		if name == "gini" {
			s3Wins = r.S3[i] < r.LLF[i] // lower Gini is better
		}
		winner := "LLF"
		if s3Wins {
			winner = "S3"
		}
		fmt.Fprintf(&sb, "  %-14s %-10.4f %-10.4f %s\n", name, r.S3[i], r.LLF[i], winner)
	}
	return sb.String()
}
