// Package experiments implements the paper's evaluation (Section V):
// trace-driven simulation of S³ against LLF with the paper's protocol —
// four weeks of training data to learn sociality, the following days for
// AP-selection experiments — and the three evaluation artifacts: the
// parameter sweeps over the co-leaving extraction interval (Fig. 10) and
// the history length (Fig. 11), and the S³-vs-LLF comparison (Fig. 12).
package experiments

import (
	"errors"
	"fmt"
	"io"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/runner"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// Data is a prepared experiment dataset: the generated campus trace split
// into training and test ranges, with profiles and demand estimates built
// from the training split only.
type Data struct {
	Campus    synth.Config
	Full      *trace.Trace
	Train     *trace.Trace
	Test      *trace.Trace
	Profiles  *apps.ProfileStore
	Demands   *core.DemandEstimator
	TrainDays int
	// ReportIntervalSeconds is the controller's AP-load polling period
	// used in simulations (default 300; 0 = live load). Exposed so the
	// staleness ablation can vary it.
	ReportIntervalSeconds int64
	// BatchWindowSeconds groups co-arrivals for Algorithm 1 (default 60).
	BatchWindowSeconds int64
	// Workers bounds the concurrent sweep/ablation cells run on the
	// experiment pool (internal/runner); <= 0 means GOMAXPROCS. Every
	// cell owns its state, so parallel results are byte-identical to a
	// serial run.
	Workers int
	// Shards is the association-domain shard count per simulated
	// controller (<= 1 keeps one shard). Assignments are independent of
	// the shard count; the knob exists to exercise and benchmark the
	// sharded domain core under the experiment workloads.
	Shards int
	// Progress, when non-nil, receives one line per completed cell
	// (typically os.Stderr behind the CLIs' -progress flag).
	Progress io.Writer
}

// Prepare generates the campus and builds the training artifacts. The
// paper trains on four weeks (July 4–24) and tests on the following days
// (July 25–27); trainDays defaults to 28 with the remaining days as test.
func Prepare(campus synth.Config, trainDays int) (*Data, error) {
	if trainDays <= 0 {
		trainDays = 28
	}
	if trainDays >= campus.Days {
		return nil, fmt.Errorf("experiments: trainDays %d must be < campus days %d",
			trainDays, campus.Days)
	}
	full, _, err := synth.Generate(campus)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate campus: %w", err)
	}
	return PrepareTrace(full, campus, trainDays)
}

// PrepareTrace builds the experiment dataset from an existing trace (e.g.
// loaded from disk) instead of generating one. campus supplies the epoch
// and is recorded for reporting; its other fields need not match the
// trace.
func PrepareTrace(full *trace.Trace, campus synth.Config, trainDays int) (*Data, error) {
	if trainDays <= 0 {
		trainDays = 28
	}
	cut := campus.Epoch + int64(trainDays)*86400
	train, test := full.SplitAt(cut)
	if len(train.Sessions) == 0 {
		return nil, errors.New("experiments: empty training split")
	}
	if len(test.Sessions) == 0 {
		return nil, errors.New("experiments: empty test split")
	}
	profiles := apps.BuildProfiles(train.Flows, campus.Epoch, apps.NewClassifier())
	profiles.AttachTemporalSignatures(train.Flows)
	demands, err := core.NewDemandEstimator(train.Sessions)
	if err != nil {
		return nil, fmt.Errorf("experiments: demand estimator: %w", err)
	}
	return &Data{
		Campus:                campus,
		Full:                  full,
		Train:                 train,
		Test:                  test,
		Profiles:              profiles,
		Demands:               demands,
		TrainDays:             trainDays,
		ReportIntervalSeconds: 300,
		BatchWindowSeconds:    60,
	}, nil
}

// simConfig builds the common simulation config: demands come from the
// history-based estimator (the controller's belief), accounting from the
// sessions themselves.
func (d *Data) simConfig(selectorFor func(trace.ControllerID, []trace.AP) wlan.Selector) wlan.Config {
	return wlan.Config{
		BinSeconds:         300, // the paper's five-minute sub-periods
		SelectorFor:        selectorFor,
		DemandFor:          func(s trace.Session) float64 { return d.Demands.Demand(s.User) },
		BatchWindowSeconds: d.BatchWindowSeconds, // co-arrivals for Algorithm 1
		// Controllers learn AP traffic from periodic reports; during an
		// arrival burst every policy that ranks on measured load sees the
		// same stale snapshot (the classic herd effect). Association
		// state stays live.
		LoadReportIntervalSeconds: d.ReportIntervalSeconds,
		Shards:                    d.Shards,
	}
}

// RunS3 trains a sociality model with the given parameters and simulates
// the test trace under the S³ policy.
func (d *Data) RunS3(societyCfg society.Config, selCfg core.SelectorConfig) (*wlan.Result, error) {
	model, err := society.Train(d.Train, d.Profiles, societyCfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: train sociality: %w", err)
	}
	sel, err := core.NewSelector(model, selCfg)
	if err != nil {
		return nil, err
	}
	return wlan.Simulate(d.Test, d.simConfig(
		func(trace.ControllerID, []trace.AP) wlan.Selector { return sel }))
}

// RunLLF simulates the test trace under the LLF baseline.
func (d *Data) RunLLF() (*wlan.Result, error) {
	return wlan.Simulate(d.Test, d.simConfig(
		func(trace.ControllerID, []trace.AP) wlan.Selector { return baseline.LLF{} }))
}

// RunS3AndLLF runs both policies concurrently on the experiment pool and
// returns their results in fixed (S³, LLF) order.
func (d *Data) RunS3AndLLF(societyCfg society.Config, selCfg core.SelectorConfig, label string) (*wlan.Result, *wlan.Result, error) {
	results, _, err := runner.Map(d.runnerConfig(label), []string{"S3", "LLF"},
		func(_ *runner.Ctx, policy string) (*wlan.Result, error) {
			if policy == "S3" {
				return d.RunS3(societyCfg, selCfg)
			}
			return d.RunLLF()
		})
	if err != nil {
		return nil, nil, err
	}
	return results[0], results[1], nil
}

// RunSelector simulates the test trace under an arbitrary policy factory.
func (d *Data) RunSelector(factory func(trace.ControllerID, []trace.AP) wlan.Selector) (*wlan.Result, error) {
	return wlan.Simulate(d.Test, d.simConfig(factory))
}

// MeanBalance returns the mean normalized balance index over all active
// bins of all controller domains of a simulation result.
func MeanBalance(res *wlan.Result) (float64, error) {
	var w stats.Welford
	for _, c := range res.Controllers() {
		series, err := res.LoadSeries(c)
		if err != nil {
			return 0, err
		}
		for _, v := range series.ActiveValues() {
			w.Add(v)
		}
	}
	if w.N() == 0 {
		return 0, errors.New("experiments: no active bins")
	}
	return w.Mean(), nil
}

// DomainBalances returns, per controller, the active-bin normalized
// balance values of a simulation result.
func DomainBalances(res *wlan.Result) (map[trace.ControllerID][]float64, error) {
	out := make(map[trace.ControllerID][]float64, len(res.Domains))
	for _, c := range res.Controllers() {
		series, err := res.LoadSeries(c)
		if err != nil {
			return nil, err
		}
		out[c] = series.ActiveValues()
	}
	return out, nil
}

// LeavePeakHours are the paper's departure-peak hours (12:00–13:00,
// 16:00–17:50, 21:00–22:00), when S³'s resilience to co-leaving shows
// most.
var LeavePeakHours = map[int]bool{12: true, 16: true, 17: true, 21: true}

// BalancesByHourFilter returns all active-bin balance values whose bin
// start falls in hours accepted by the filter.
func BalancesByHourFilter(res *wlan.Result, epoch int64, accept func(hour int) bool) ([]float64, error) {
	var out []float64
	for _, c := range res.Controllers() {
		series, err := res.LoadSeries(c)
		if err != nil {
			return nil, err
		}
		for i, v := range series.Values {
			if series.Idle[i] {
				continue
			}
			if accept(trace.HourOfDay(epoch, series.BinTime(i))) {
				out = append(out, v)
			}
		}
	}
	return out, nil
}

// runnerConfig builds the pool configuration for one named sweep or
// ablation over this dataset.
func (d *Data) runnerConfig(label string) runner.Config {
	return runner.Config{
		Workers:  d.Workers,
		Progress: d.Progress,
		Label:    label,
		Seed:     d.Campus.Seed,
	}
}

// sweepJob is one independent parameter-sweep cell: run computes a value,
// store records it into the cell's slot (called after every cell
// finished, in submission order).
type sweepJob struct {
	name  string
	run   func() (float64, error)
	store func(float64)
}

// runSweep executes the cells on the experiment pool (internal/runner).
// Each cell re-trains a sociality model and replays the test trace;
// slot-stored results keep the output identical to a serial sweep for
// any worker count.
func (d *Data) runSweep(label string, jobs []sweepJob) error {
	tasks := make([]runner.Task, len(jobs))
	vals := make([]float64, len(jobs))
	for i := range jobs {
		i := i
		tasks[i] = runner.Task{
			Name: jobs[i].name,
			Run: func(*runner.Ctx) error {
				v, err := jobs[i].run()
				if err != nil {
					return err
				}
				vals[i] = v
				return nil
			},
		}
	}
	if _, err := runner.Run(d.runnerConfig(label), tasks); err != nil {
		return err
	}
	for i, j := range jobs {
		j.store(vals[i])
	}
	return nil
}
