package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/synth"
)

// ReplicatedFig12Result aggregates the headline comparison over several
// independently generated campuses (different seeds), giving the gain a
// confidence interval instead of a single-trace point estimate.
type ReplicatedFig12Result struct {
	Seeds []int64
	// Gains and PeakGains are the per-seed percentages.
	Gains     []float64
	PeakGains []float64
	// MeanGain and GainCI95 summarize the gains.
	MeanGain, GainCI95 float64
	// MeanPeakGain and PeakGainCI95 summarize the leave-peak gains.
	MeanPeakGain, PeakGainCI95 float64
	// Wins counts seeds where S³ beat LLF overall.
	Wins int
}

// ReplicateFig12 runs the full prepare-train-simulate-compare pipeline
// once per seed.
func ReplicateFig12(campus synth.Config, trainDays int, seeds []int64) (*ReplicatedFig12Result, error) {
	if len(seeds) == 0 {
		return nil, errors.New("experiments: no seeds")
	}
	res := &ReplicatedFig12Result{Seeds: seeds}
	for _, seed := range seeds {
		cfg := campus
		cfg.Seed = seed
		d, err := Prepare(cfg, trainDays)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		fig, err := Fig12(d)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", seed, err)
		}
		res.Gains = append(res.Gains, fig.GainPercent)
		res.PeakGains = append(res.PeakGains, fig.LeavePeakGainPercent)
		if fig.GainPercent > 0 {
			res.Wins++
		}
	}
	res.MeanGain, res.GainCI95 = stats.MeanCI(res.Gains, 0.95)
	res.MeanPeakGain, res.PeakGainCI95 = stats.MeanCI(res.PeakGains, 0.95)
	return res, nil
}

// Render formats the replication as text.
func (r *ReplicatedFig12Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 12 replicated over %d seeds\n", len(r.Seeds))
	fmt.Fprintf(&sb, "  gain: %.1f%% ± %.1f%%   leave-peak gain: %.1f%% ± %.1f%%   wins: %d/%d\n",
		r.MeanGain, r.GainCI95, r.MeanPeakGain, r.PeakGainCI95, r.Wins, len(r.Seeds))
	fmt.Fprintf(&sb, "  %-8s %-10s %-10s\n", "seed", "gain", "peak gain")
	for i, seed := range r.Seeds {
		fmt.Fprintf(&sb, "  %-8d %+-9.1f%% %+-9.1f%%\n",
			seed, r.Gains[i], r.PeakGains[i])
	}
	return sb.String()
}
