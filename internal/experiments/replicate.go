package experiments

import (
	"errors"
	"fmt"
	"strings"

	"github.com/s3wlan/s3wlan/internal/runner"
	"github.com/s3wlan/s3wlan/internal/stats"
	"github.com/s3wlan/s3wlan/internal/synth"
)

// ReplicatedFig12Result aggregates the headline comparison over several
// independently generated campuses (different seeds), giving the gain a
// confidence interval instead of a single-trace point estimate.
type ReplicatedFig12Result struct {
	Seeds []int64
	// Gains and PeakGains are the per-seed percentages.
	Gains     []float64
	PeakGains []float64
	// MeanGain and GainCI95 summarize the gains.
	MeanGain, GainCI95 float64
	// MeanPeakGain and PeakGainCI95 summarize the leave-peak gains.
	MeanPeakGain, PeakGainCI95 float64
	// Wins counts seeds where S³ beat LLF overall.
	Wins int
}

// ReplicateFig12 runs the full prepare-train-simulate-compare pipeline
// once per seed. Replications are fully independent (each owns its
// generated campus), so they fan out across rcfg's worker pool; the
// per-seed results land in seed order regardless of worker count.
func ReplicateFig12(campus synth.Config, trainDays int, seeds []int64, rcfg runner.Config) (*ReplicatedFig12Result, error) {
	if len(seeds) == 0 {
		return nil, errors.New("experiments: no seeds")
	}
	if rcfg.Label == "" {
		rcfg.Label = "replicate-fig12"
	}
	type seedOutcome struct {
		gain, peakGain float64
	}
	outcomes, _, err := runner.Map(rcfg, seeds,
		func(_ *runner.Ctx, seed int64) (seedOutcome, error) {
			cfg := campus
			cfg.Seed = seed
			d, err := Prepare(cfg, trainDays)
			if err != nil {
				return seedOutcome{}, fmt.Errorf("seed %d: %w", seed, err)
			}
			// Seed replications already occupy the pool; the inner
			// S³-vs-LLF pair runs serially within its replication.
			d.Workers = 1
			fig, err := Fig12(d)
			if err != nil {
				return seedOutcome{}, fmt.Errorf("seed %d: %w", seed, err)
			}
			return seedOutcome{gain: fig.GainPercent, peakGain: fig.LeavePeakGainPercent}, nil
		})
	if err != nil {
		return nil, err
	}
	res := &ReplicatedFig12Result{Seeds: seeds}
	for _, o := range outcomes {
		res.Gains = append(res.Gains, o.gain)
		res.PeakGains = append(res.PeakGains, o.peakGain)
		if o.gain > 0 {
			res.Wins++
		}
	}
	res.MeanGain, res.GainCI95 = stats.MeanCI(res.Gains, 0.95)
	res.MeanPeakGain, res.PeakGainCI95 = stats.MeanCI(res.PeakGains, 0.95)
	return res, nil
}

// Render formats the replication as text.
func (r *ReplicatedFig12Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig 12 replicated over %d seeds\n", len(r.Seeds))
	fmt.Fprintf(&sb, "  gain: %.1f%% ± %.1f%%   leave-peak gain: %.1f%% ± %.1f%%   wins: %d/%d\n",
		r.MeanGain, r.GainCI95, r.MeanPeakGain, r.PeakGainCI95, r.Wins, len(r.Seeds))
	fmt.Fprintf(&sb, "  %-8s %-10s %-10s\n", "seed", "gain", "peak gain")
	for i, seed := range r.Seeds {
		fmt.Fprintf(&sb, "  %-8d %+-9.1f%% %+-9.1f%%\n",
			seed, r.Gains[i], r.PeakGains[i])
	}
	return sb.String()
}
