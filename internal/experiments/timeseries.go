package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// PolicySeries is one policy's balance-index time series across domains —
// the data behind the classic S³-vs-LLF-over-a-day plot.
type PolicySeries struct {
	Policy     string
	BinSeconds int64
	// Times holds the bin left edges (identical across domains).
	Times []int64
	// ByDomain maps each controller to its per-bin normalized balance
	// values (NaN-free; idle bins carry 1 per the metric's definition).
	ByDomain map[trace.ControllerID][]float64
}

// ExtractSeries pulls the per-domain time series out of a simulation
// result.
func ExtractSeries(res *wlan.Result) (*PolicySeries, error) {
	out := &PolicySeries{
		Policy:     res.Policy,
		BinSeconds: res.BinSeconds,
		ByDomain:   make(map[trace.ControllerID][]float64, len(res.Domains)),
	}
	for _, c := range res.Controllers() {
		series, err := res.LoadSeries(c)
		if err != nil {
			return nil, err
		}
		if out.Times == nil {
			out.Times = make([]int64, len(series.Values))
			for i := range series.Values {
				out.Times[i] = series.BinTime(i)
			}
		}
		out.ByDomain[c] = series.Values
	}
	return out, nil
}

// WriteComparisonSeriesCSV writes two policies' series side by side:
// columns time, domain, <policyA>, <policyB>. Both results must come from
// the same test trace (same bins).
func WriteComparisonSeriesCSV(out io.Writer, a, b *PolicySeries) error {
	if len(a.Times) != len(b.Times) {
		return fmt.Errorf("experiments: series lengths differ (%d vs %d)",
			len(a.Times), len(b.Times))
	}
	w := csv.NewWriter(out)
	header := []string{"time", "domain", a.Policy, b.Policy}
	if err := w.Write(header); err != nil {
		return err
	}
	for c, aVals := range a.ByDomain {
		bVals, ok := b.ByDomain[c]
		if !ok {
			return fmt.Errorf("experiments: domain %s missing from %s", c, b.Policy)
		}
		for i := range aVals {
			rec := []string{
				strconv.FormatInt(a.Times[i], 10),
				string(c),
				strconv.FormatFloat(aVals[i], 'g', 8, 64),
				strconv.FormatFloat(bVals[i], 'g', 8, 64),
			}
			if err := w.Write(rec); err != nil {
				return err
			}
		}
	}
	w.Flush()
	return w.Error()
}
