// Package faults is the unified fault-plan engine: it scripts the
// connection-level faults of internal/protocol/faultconn and the
// storage-level faults of internal/journal/faultfile into seeded,
// phase-based scenarios, so chaos tests and the overload soak share one
// declarative vocabulary instead of hand-rolled wrapper plumbing.
//
// A Plan is a sequence of Phases, each with a duration and a fault
// schedule; the last phase is terminal and applies forever. Plans are
// built literally or parsed from a compact spec:
//
//	clean 500ms -> storm 2s drop=0.05 delay=2ms -> stall 1s stall=1 stalldur=300ms -> clean 0
//
// An Engine animates a plan against a clock: Start pins t0, Phase()
// resolves the active phase, and the Listener / File wrappers decorate
// transports and journal segments with *dynamic* fault injection that
// consults the engine per operation — open connections and files move
// between phases without being re-wrapped. Every probabilistic decision
// comes from a per-connection (or per-file) seed derived from the plan
// seed with the splitmix64 finalizer, the same discipline as
// internal/runner.DeriveSeed, so a failing scenario replays exactly.
package faults

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3wlan/s3wlan/internal/journal/faultfile"
	"github.com/s3wlan/s3wlan/internal/protocol/faultconn"
)

// Phase is one stage of a fault scenario.
type Phase struct {
	// Name labels the phase in specs, logs and assertions ("clean",
	// "storm", "stall", …). Parse auto-names unnamed phases "phaseN".
	Name string
	// Dur is how long the phase lasts. The final phase of a plan is
	// terminal: it applies forever regardless of Dur.
	Dur time.Duration
	// Conn is the connection fault schedule while the phase is active
	// (Seed is ignored; the engine derives per-connection seeds).
	Conn faultconn.Config
	// File is the storage fault schedule while the phase is active
	// (Seed is ignored; the engine derives per-file seeds).
	File faultfile.Config
}

// Clean reports whether the phase injects nothing.
func (p Phase) Clean() bool {
	c, f := p.Conn, p.File
	c.Seed, f.Seed = 0, 0
	return c == (faultconn.Config{}) && f == (faultfile.Config{})
}

// Plan is a seeded fault scenario: phases applied in order, the last
// one forever.
type Plan struct {
	Seed   int64
	Phases []Phase
}

// PhaseAt resolves the phase active after d has elapsed since the plan
// started, and its index. An empty plan yields a permanent clean phase.
func (p *Plan) PhaseAt(d time.Duration) (int, Phase) {
	if len(p.Phases) == 0 {
		return 0, Phase{Name: "clean"}
	}
	var t time.Duration
	for i, ph := range p.Phases {
		if i == len(p.Phases)-1 {
			return i, ph // terminal
		}
		t += ph.Dur
		if d < t {
			return i, ph
		}
	}
	return 0, Phase{} // unreachable
}

// PhaseStart returns when phase i begins, as an offset from plan start.
func (p *Plan) PhaseStart(i int) time.Duration {
	var t time.Duration
	for j := 0; j < i && j < len(p.Phases); j++ {
		t += p.Phases[j].Dur
	}
	return t
}

// String renders the plan back in spec form.
func (p *Plan) String() string {
	parts := make([]string, 0, len(p.Phases))
	for _, ph := range p.Phases {
		parts = append(parts, ph.spec())
	}
	return strings.Join(parts, " -> ")
}

func (p Phase) spec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", p.Name, p.Dur)
	add := func(k string, v interface{}) {
		switch x := v.(type) {
		case float64:
			if x != 0 {
				fmt.Fprintf(&b, " %s=%g", k, x)
			}
		case int:
			if x != 0 {
				fmt.Fprintf(&b, " %s=%d", k, x)
			}
		case int64:
			if x != 0 {
				fmt.Fprintf(&b, " %s=%d", k, x)
			}
		case time.Duration:
			if x != 0 {
				fmt.Fprintf(&b, " %s=%s", k, x)
			}
		}
	}
	add("drop", p.Conn.DropWriteProb)
	add("partial", p.Conn.PartialWriteProb)
	add("werr", p.Conn.WriteErrProb)
	add("rerr", p.Conn.ReadErrProb)
	add("delayp", p.Conn.DelayProb)
	add("delay", p.Conn.MaxDelay)
	add("closew", p.Conn.CloseAfterWrites)
	add("closer", p.Conn.CloseAfterReads)
	add("stall", p.Conn.ReadStallProb)
	add("stalldur", p.Conn.StallDur)
	add("short", p.File.ShortWriteProb)
	add("torn", p.File.TornAtByte)
	add("bitflip", p.File.BitFlipProb)
	add("syncerr", p.File.SyncErrProb)
	add("failsync", p.File.FailSyncAfter)
	return b.String()
}

// Parse builds a plan from a spec: phases separated by "->" (or ";"),
// each "name dur key=val ...". The name is optional (auto "phaseN"),
// "clean" names a faultless phase, and the keys mirror the faultconn /
// faultfile schedules:
//
//	conn: drop, partial, werr, rerr, delayp, delay, closew, closer,
//	      stall, stalldur
//	file: short, torn, bitflip, syncerr, failsync
//
// Probabilities are floats in [0,1]; delay/stalldur are durations;
// closew/closer/torn/failsync are integers.
func Parse(spec string) (*Plan, error) {
	plan := &Plan{Seed: 1}
	for i, raw := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' }) {
		for _, part := range strings.Split(raw, "->") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			ph, err := parsePhase(part, len(plan.Phases))
			if err != nil {
				return nil, fmt.Errorf("faults: phase %d (%q): %w", i, part, err)
			}
			plan.Phases = append(plan.Phases, ph)
		}
	}
	if len(plan.Phases) == 0 {
		return nil, fmt.Errorf("faults: empty plan %q", spec)
	}
	return plan, nil
}

// MustParse is Parse for trusted literals; it panics on error.
func MustParse(spec string) *Plan {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func parsePhase(s string, index int) (Phase, error) {
	ph := Phase{Name: fmt.Sprintf("phase%d", index)}
	haveDur := false
	for _, tok := range strings.Fields(s) {
		if k, v, ok := strings.Cut(tok, "="); ok {
			if err := ph.set(k, v); err != nil {
				return ph, err
			}
			continue
		}
		if d, err := time.ParseDuration(tok); err == nil {
			ph.Dur, haveDur = d, true
			continue
		}
		ph.Name = tok // bare token: the phase name ("clean", "storm", …)
	}
	if !haveDur {
		return ph, fmt.Errorf("no duration")
	}
	return ph, nil
}

func (p *Phase) set(k, v string) error {
	prob := func(dst *float64) error {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("%s=%s: want probability in [0,1]", k, v)
		}
		*dst = f
		return nil
	}
	dur := func(dst *time.Duration) error {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return fmt.Errorf("%s=%s: want duration", k, v)
		}
		*dst = d
		return nil
	}
	count := func(dst *int) error {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("%s=%s: want count", k, v)
		}
		*dst = n
		return nil
	}
	switch k {
	case "drop":
		return prob(&p.Conn.DropWriteProb)
	case "partial":
		return prob(&p.Conn.PartialWriteProb)
	case "werr":
		return prob(&p.Conn.WriteErrProb)
	case "rerr":
		return prob(&p.Conn.ReadErrProb)
	case "delayp":
		return prob(&p.Conn.DelayProb)
	case "delay":
		// A max delay implies DelayProb=1 unless delayp is given too.
		if p.Conn.DelayProb == 0 {
			p.Conn.DelayProb = 1
		}
		return dur(&p.Conn.MaxDelay)
	case "closew":
		return count(&p.Conn.CloseAfterWrites)
	case "closer":
		return count(&p.Conn.CloseAfterReads)
	case "stall":
		return prob(&p.Conn.ReadStallProb)
	case "stalldur":
		return dur(&p.Conn.StallDur)
	case "short":
		return prob(&p.File.ShortWriteProb)
	case "torn":
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("torn=%s: want byte offset", v)
		}
		p.File.TornAtByte = n
		return nil
	case "bitflip":
		return prob(&p.File.BitFlipProb)
	case "syncerr":
		return prob(&p.File.SyncErrProb)
	case "failsync":
		return count(&p.File.FailSyncAfter)
	default:
		return fmt.Errorf("unknown key %q", k)
	}
}

// Engine animates a plan against a clock and hands out dynamic fault
// wrappers. Safe for concurrent use.
type Engine struct {
	plan *Plan
	now  func() time.Time // test hook; default time.Now

	mu      sync.Mutex
	start   time.Time
	connSeq int64
	fileSeq int64

	// phaseFlips counts observed phase transitions (diagnostics).
	lastPhase atomic.Int64
}

// NewEngine builds an engine for plan. The clock starts at the first
// call to Start (or lazily at the first Phase/wrapper decision).
func NewEngine(plan *Plan) *Engine {
	return &Engine{plan: plan, now: time.Now}
}

// Start pins the plan's t0. Idempotent; returns the engine.
func (e *Engine) Start() *Engine {
	e.mu.Lock()
	if e.start.IsZero() {
		e.start = e.now()
	}
	e.mu.Unlock()
	return e
}

// Elapsed reports time since Start (starting the engine if needed).
func (e *Engine) Elapsed() time.Duration {
	e.mu.Lock()
	if e.start.IsZero() {
		e.start = e.now()
	}
	d := e.now().Sub(e.start)
	e.mu.Unlock()
	return d
}

// Phase resolves the currently active phase.
func (e *Engine) Phase() Phase {
	_, ph := e.plan.PhaseAt(e.Elapsed())
	return ph
}

// PhaseIndex resolves the currently active phase's index.
func (e *Engine) PhaseIndex() int {
	i, _ := e.plan.PhaseAt(e.Elapsed())
	e.lastPhase.Store(int64(i))
	return i
}

// Plan returns the engine's plan.
func (e *Engine) Plan() *Plan { return e.plan }

// AwaitPhase sleeps until phase i begins (no-op if already past it).
// The engine must use the real clock.
func (e *Engine) AwaitPhase(i int) {
	e.Start()
	if rem := e.plan.PhaseStart(i) - e.Elapsed(); rem > 0 {
		time.Sleep(rem)
	}
}

// ConnConfig is the faultconn schedule of the active phase — the Source
// every dynamic connection wrapper reads.
func (e *Engine) ConnConfig() faultconn.Config { return e.Phase().Conn }

// FileConfig is the faultfile schedule of the active phase.
func (e *Engine) FileConfig() faultfile.Config { return e.Phase().File }

// Conn decorates conn with dynamic, engine-scheduled fault injection
// under a fresh derived seed.
func (e *Engine) Conn(conn net.Conn) net.Conn {
	e.mu.Lock()
	e.connSeq++
	seed := faultconn.DeriveSeed(e.plan.Seed, e.connSeq)
	e.mu.Unlock()
	return faultconn.WrapDynamic(conn, seed, e.ConnConfig)
}

// File decorates sink with dynamic, engine-scheduled fault injection
// under a fresh derived seed.
func (e *Engine) File(sink faultfile.Sink) faultfile.Sink {
	e.mu.Lock()
	e.fileSeq++
	seed := faultconn.DeriveSeed(e.plan.Seed, 1_000_000+e.fileSeq)
	e.mu.Unlock()
	return faultfile.WrapDynamic(sink, seed, e.FileConfig)
}

// Listener wraps ln so every accepted connection is engine-scheduled —
// the drop-in WrapListener/Serve decoration chaos harnesses use.
func (e *Engine) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, e: e}
}

type listener struct {
	net.Listener
	e *Engine
}

func (l *listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.e.Conn(conn), nil
}
