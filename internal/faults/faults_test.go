package faults

import (
	"net"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/protocol/faultconn"
)

func TestParsePlan(t *testing.T) {
	p, err := Parse("clean 500ms -> storm 2s drop=0.05 delay=2ms -> stall 1s stall=1 stalldur=300ms -> clean 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(p.Phases))
	}
	if p.Phases[0].Name != "clean" || !p.Phases[0].Clean() || p.Phases[0].Dur != 500*time.Millisecond {
		t.Fatalf("phase 0 = %+v", p.Phases[0])
	}
	storm := p.Phases[1]
	if storm.Name != "storm" || storm.Conn.DropWriteProb != 0.05 || storm.Conn.MaxDelay != 2*time.Millisecond {
		t.Fatalf("phase 1 = %+v", storm)
	}
	if storm.Conn.DelayProb != 1 {
		t.Fatalf("delay= should imply delayp=1, got %v", storm.Conn.DelayProb)
	}
	stall := p.Phases[2]
	if stall.Conn.ReadStallProb != 1 || stall.Conn.StallDur != 300*time.Millisecond {
		t.Fatalf("phase 2 = %+v", stall)
	}
	if !p.Phases[3].Clean() {
		t.Fatalf("phase 3 should be clean: %+v", p.Phases[3])
	}
}

func TestParseFileFaults(t *testing.T) {
	p, err := Parse("wal 1s short=0.1 torn=4096 bitflip=0.01 syncerr=0.2 failsync=3")
	if err != nil {
		t.Fatal(err)
	}
	f := p.Phases[0].File
	if f.ShortWriteProb != 0.1 || f.TornAtByte != 4096 || f.BitFlipProb != 0.01 ||
		f.SyncErrProb != 0.2 || f.FailSyncAfter != 3 {
		t.Fatalf("file schedule = %+v", f)
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"",                  // empty plan
		"clean",             // no duration
		"clean 1s drop=1.5", // probability out of range
		"clean 1s bogus=1",  // unknown key
		"clean 1s delay=-1s",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestPhaseAtAndTerminal(t *testing.T) {
	p := MustParse("a 100ms drop=0.1 -> b 200ms -> c 0 rerr=1")
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "a"},
		{99 * time.Millisecond, "a"},
		{100 * time.Millisecond, "b"},
		{299 * time.Millisecond, "b"},
		{300 * time.Millisecond, "c"},
		{time.Hour, "c"}, // terminal phase applies forever
	}
	for _, tc := range cases {
		if _, ph := p.PhaseAt(tc.d); ph.Name != tc.want {
			t.Errorf("PhaseAt(%v) = %q, want %q", tc.d, ph.Name, tc.want)
		}
	}
	if got := p.PhaseStart(2); got != 300*time.Millisecond {
		t.Errorf("PhaseStart(2) = %v", got)
	}
}

func TestStringRoundTrip(t *testing.T) {
	spec := "clean 500ms -> storm 2s drop=0.05 delayp=1 delay=2ms -> stall 1s stall=1 stalldur=300ms"
	p := MustParse(spec)
	q := MustParse(p.String())
	if len(q.Phases) != len(p.Phases) {
		t.Fatalf("round trip lost phases: %q", p.String())
	}
	for i := range p.Phases {
		if p.Phases[i] != q.Phases[i] {
			t.Errorf("phase %d: %+v != %+v (spec %q)", i, p.Phases[i], q.Phases[i], p.String())
		}
	}
}

// TestEnginePhaseClock drives the engine with a fake clock and checks
// the active schedule flips at phase boundaries.
func TestEnginePhaseClock(t *testing.T) {
	e := NewEngine(MustParse("clean 1s -> storm 1s drop=1 -> clean 0"))
	base := time.Unix(1000, 0)
	now := base
	e.now = func() time.Time { return now }
	e.Start()
	if e.PhaseIndex() != 0 || e.ConnConfig().DropWriteProb != 0 {
		t.Fatalf("phase at t=0: %d %+v", e.PhaseIndex(), e.ConnConfig())
	}
	now = base.Add(1500 * time.Millisecond)
	if e.PhaseIndex() != 1 || e.ConnConfig().DropWriteProb != 1 {
		t.Fatalf("phase at t=1.5s: %d %+v", e.PhaseIndex(), e.ConnConfig())
	}
	now = base.Add(5 * time.Second)
	if e.PhaseIndex() != 2 || !e.Phase().Clean() {
		t.Fatalf("phase at t=5s: %d %+v", e.PhaseIndex(), e.Phase())
	}
}

// TestEngineDynamicConn proves an engine-wrapped connection changes
// behavior across a phase flip without being re-wrapped: writes succeed
// in the clean phase, fail once the fault phase begins, and the
// connection is the same object throughout.
func TestEngineDynamicConn(t *testing.T) {
	e := NewEngine(MustParse("clean 1s -> dead 0 werr=1"))
	base := time.Unix(2000, 0)
	now := base
	e.now = func() time.Time { return now }
	e.Start()

	client, server := net.Pipe()
	defer server.Close()
	wrapped := e.Conn(client)
	defer wrapped.Close()
	go func() { // sink
		buf := make([]byte, 64)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := wrapped.Write([]byte("ok")); err != nil {
		t.Fatalf("clean-phase write: %v", err)
	}
	now = base.Add(2 * time.Second)
	if _, err := wrapped.Write([]byte("boom")); err == nil {
		t.Fatal("fault-phase write should fail")
	}
}

// TestEngineListener checks accepted connections get engine-scheduled
// wrappers with distinct derived seeds.
func TestEngineListener(t *testing.T) {
	e := NewEngine(MustParse("clean 0"))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := e.Listener(ln)
	defer wrapped.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := wrapped.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	cl, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	sv := <-done
	if sv == nil {
		t.Fatal("accept failed")
	}
	defer sv.Close()
	if _, ok := sv.(*faultconn.Conn); !ok {
		t.Fatalf("accepted conn is %T, want *faultconn.Conn", sv)
	}
}
