package federation

import (
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/obs"
)

// Relay circuit breaker: consecutive relay failures to a group's owner
// trip the group's breaker, after which stations are refused locally
// with MsgBusy in microseconds instead of each paying a dial timeout
// against a dead owner. After the cooldown one connection at a time is
// let through as a half-open probe; a probe that reaches the owner
// closes the breaker, a probe that fails re-opens it for another
// cooldown. A lease moving the owner to a new address resets the
// breaker immediately — the new owner starts with a clean slate.

var (
	obsBreakerTrips    = obs.GetCounter("federation.breaker.trips", "Relay circuit breakers tripped open (consecutive relay failures reached the budget)")
	obsBreakerRefusals = obs.GetCounter("federation.breaker.fast_refusals", "Peer connections fast-refused with MsgBusy by an open relay breaker")
	obsBreakerProbes   = obs.GetCounter("federation.breaker.probes", "Half-open probe connections admitted through a cooled-down breaker")
	obsBreakerOpen     = obs.GetGauge("federation.breaker.open", "Relay circuit breakers currently open (fast-refusing)")
)

// openBreakers tracks the process-wide open-breaker population behind
// the federation.breaker.open gauge.
var openBreakers struct {
	mu sync.Mutex
	n  int64
}

func breakerOpenDelta(d int64) {
	openBreakers.mu.Lock()
	openBreakers.n += d
	obsBreakerOpen.Set(openBreakers.n)
	openBreakers.mu.Unlock()
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one group's relay circuit breaker. Safe for concurrent
// use; the closed-state Allow path is a mutex acquisition and two
// comparisons, and an open breaker's refusal never touches the network.
type breaker struct {
	threshold int           // consecutive failures that trip it
	cooldown  time.Duration // open duration before a half-open probe
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool   // a half-open probe is in flight
	target   string // owner address the failure streak was observed on
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow decides whether a relay to the owner at target may proceed.
// A target change (the lease moved) resets the breaker to closed first.
// In the open state it returns false until the cooldown elapses, then
// admits exactly one half-open probe at a time.
func (b *breaker) Allow(target string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if target != b.target {
		b.resetLocked()
		b.target = target
	}
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		breakerOpenDelta(-1)
		fallthrough
	default: // breakerHalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		obsBreakerProbes.Inc()
		return true
	}
}

// Success records a relay that reached the owner: the breaker closes
// and the failure streak resets.
func (b *breaker) Success() {
	b.mu.Lock()
	b.resetLocked()
	b.mu.Unlock()
}

// Failure records a relay that never reached the owner (dial error,
// hello write error, or no first reply within the deadline). The
// breaker trips when the streak reaches the budget; a failed half-open
// probe re-opens immediately for another cooldown.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		if b.state != breakerOpen {
			obsBreakerTrips.Inc()
			breakerOpenDelta(1)
		}
		b.state = breakerOpen
		b.openedAt = b.now()
	}
}

// Open reports whether the breaker is currently fast-refusing.
func (b *breaker) Open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == breakerOpen && b.now().Sub(b.openedAt) < b.cooldown
}

// resetLocked returns the breaker to closed. Callers hold b.mu.
func (b *breaker) resetLocked() {
	if b.state == breakerOpen {
		breakerOpenDelta(-1)
	}
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
}
