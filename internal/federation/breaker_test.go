package federation

// Relay circuit-breaker suite: the state machine in isolation (trip
// budget, cooldown, single half-open probe, lease-move reset, gauge
// accounting) and the end-to-end story — a stalled group owner trips
// the front-end's breaker within the failure budget, open-breaker
// refusals are local and fast (<1ms Allow, MsgBusy to the peer), and a
// recovered owner closes the breaker through one half-open probe.

import (
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/protocol/faultconn"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 100*time.Millisecond)
	b.now = func() time.Time { return now }
	tripsBefore := obsBreakerTrips.Value()
	openBefore := obsBreakerOpen.Value()

	// Closed: everything flows; sub-threshold failures don't trip.
	for i := 0; i < 2; i++ {
		if !b.Allow("owner-a") {
			t.Fatal("closed breaker refused")
		}
		b.Failure()
	}
	if b.Open() {
		t.Fatal("tripped below threshold")
	}
	// Third consecutive failure trips it.
	b.Allow("owner-a")
	b.Failure()
	if !b.Open() {
		t.Fatal("not open at threshold")
	}
	if got := obsBreakerTrips.Value(); got != tripsBefore+1 {
		t.Errorf("trips = %d, want %d", got, tripsBefore+1)
	}
	if got := obsBreakerOpen.Value(); got != openBefore+1 {
		t.Errorf("open gauge = %d, want %d", got, openBefore+1)
	}
	if b.Allow("owner-a") {
		t.Fatal("open breaker admitted inside cooldown")
	}

	// Cooldown elapses: exactly one half-open probe at a time.
	now = now.Add(150 * time.Millisecond)
	if !b.Allow("owner-a") {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.Allow("owner-a") {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure re-opens for another full cooldown.
	b.Failure()
	if !b.Open() {
		t.Fatal("failed probe did not re-open")
	}
	if b.Allow("owner-a") {
		t.Fatal("re-opened breaker admitted")
	}
	// Next probe succeeds: closed, gauge restored, traffic flows freely.
	now = now.Add(150 * time.Millisecond)
	if !b.Allow("owner-a") {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.Open() || !b.Allow("owner-a") || !b.Allow("owner-a") {
		t.Fatal("closed breaker still throttling")
	}
	if got := obsBreakerOpen.Value(); got != openBefore {
		t.Errorf("open gauge after close = %d, want %d", got, openBefore)
	}
}

func TestBreakerResetsOnLeaseMove(t *testing.T) {
	now := time.Unix(2000, 0)
	b := newBreaker(2, time.Hour) // cooldown never elapses in this test
	b.now = func() time.Time { return now }
	openBefore := obsBreakerOpen.Value()
	b.Allow("owner-a")
	b.Failure()
	b.Failure()
	if !b.Open() {
		t.Fatal("not open")
	}
	// The lease moved: the new owner starts with a clean slate, no
	// cooldown to wait out, and the gauge is restored.
	if !b.Allow("owner-b") {
		t.Fatal("breaker still open against the new owner")
	}
	if b.Open() {
		t.Fatal("target change did not reset state")
	}
	if got := obsBreakerOpen.Value(); got != openBefore {
		t.Errorf("open gauge = %d, want %d", got, openBefore)
	}
}

// stallListener wraps accepted connections with a dynamically scheduled
// fault wrapper: while *stalled* is set, every read on the owner side
// hangs long enough to blow any relay deadline without closing the
// transport — the "accepts connections but never answers" failure mode.
type stallListener struct {
	net.Listener
	stalled *atomic.Bool
	seq     atomic.Uint64
}

func (l *stallListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	src := func() faultconn.Config {
		if l.stalled.Load() {
			return faultconn.Config{ReadStallProb: 1, StallDur: 2 * time.Second}
		}
		return faultconn.Config{}
	}
	return faultconn.WrapDynamic(c, int64(l.seq.Add(1)), src), nil
}

// TestBreakerTripsOnStalledOwnerAndRecovers is the end-to-end story:
// node-0 relays group-1 peers to node-1; node-1's transport starts
// stalling (alive TCP, no replies), consecutive relay failures trip
// node-0's breaker within the configured budget, an open breaker
// refuses locally with MsgBusy (Allow in well under a millisecond, no
// dial), and once the owner recovers a half-open probe closes the
// breaker and service resumes.
func TestBreakerTripsOnStalledOwnerAndRecovers(t *testing.T) {
	root := t.TempDir()
	names := []string{"node-0", "node-1"}
	own, err := DefaultOwnership(names, 2)
	if err != nil {
		t.Fatal(err)
	}
	var stalled atomic.Bool
	const relayTimeout = 600 * time.Millisecond
	const cooldown = 400 * time.Millisecond
	const threshold = 3
	mk := func(i int) (*Node, string) {
		cfg := Config{
			NodeID:          names[i],
			Root:            root,
			Ownership:       own,
			LeaseTTL:        5 * time.Second,
			NewSelector:     func() wlan.Selector { return baseline.LLF{} },
			Journal:         journal.Options{Fsync: journal.FsyncOff},
			Timeout:         relayTimeout,
			BreakerFailures: threshold,
			BreakerCooldown: cooldown,
		}
		if i == 1 {
			// The owner keeps a generous timeout so its own sessions
			// survive stalls; only the front-end's relay deadline matters.
			cfg.Timeout = 5 * time.Second
			cfg.WrapListener = func(ln net.Listener) net.Listener {
				return &stallListener{Listener: ln, stalled: &stalled}
			}
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return n, addr
	}
	n0, addr0 := mk(0)
	defer n0.Close()
	n1, addr1 := mk(1)
	defer n1.Close()
	for g := 0; g < 2; g++ {
		if _, err := n0.WaitOwner(g, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// An AP and users homed in node-1's group. The AP agent dials its
	// owner directly so the load path stays up independent of relaying;
	// stations go through node-0 so every exchange relays.
	pick := func(mk func(int) string, g int, groupOf func(string) int) string {
		for i := 0; ; i++ {
			if id := mk(i); groupOf(id) == g {
				return id
			}
		}
	}
	apID := pick(func(i int) string { return fmt.Sprintf("brk-ap-%d", i) }, 1,
		func(s string) int { return own.GroupOfAP(trace.APID(s)) })
	userOf := func(i int) trace.UserID {
		return trace.UserID(pick(func(j int) string { return fmt.Sprintf("brk-u-%d-%d", i, j) }, 1,
			func(s string) int { return own.GroupOfUser(trace.UserID(s)) }))
	}
	ap, err := protocol.DialAP(addr1, trace.APID(apID), 10e6, 5*time.Second)
	if err != nil {
		t.Fatalf("AP dial pre-stall: %v", err)
	}
	defer ap.Close()
	st, err := protocol.DialStation(addr0, userOf(0), 2*time.Second)
	if err != nil {
		t.Fatalf("relayed station dial pre-stall: %v", err)
	}
	if _, err := st.Associate(100); err != nil {
		t.Fatalf("relayed associate pre-stall: %v", err)
	}
	st.Close()

	// Owner goes dark. Each relay attempt burns the relay deadline and
	// counts a failure; the breaker must trip within the budget — after
	// at most threshold failed dials the next peer sees MsgBusy.
	stalled.Store(true)
	tripsBefore := obsBreakerTrips.Value()
	refusalsBefore := obsBreakerRefusals.Value()
	var busy *protocol.BusyError
	attempts := 0
	for attempts < threshold+2 {
		attempts++
		_, err := protocol.DialStation(addr0, userOf(attempts), 3*time.Second)
		if err == nil {
			t.Fatal("dial succeeded against a stalled owner")
		}
		if errors.As(err, &busy) {
			break
		}
	}
	if busy == nil {
		t.Fatalf("no MsgBusy after %d attempts; breaker never tripped", attempts)
	}
	if attempts > threshold+1 {
		t.Errorf("breaker tripped after %d attempts, budget is %d", attempts, threshold)
	}
	if busy.RetryAfter != cooldown {
		t.Errorf("busy retry advice = %v, want the cooldown %v", busy.RetryAfter, cooldown)
	}
	if got := obsBreakerTrips.Value(); got != tripsBefore+1 {
		t.Errorf("federation.breaker.trips rose by %d, want 1", got-tripsBefore)
	}
	if obsBreakerRefusals.Value() == refusalsBefore {
		t.Error("federation.breaker.fast_refusals never incremented")
	}

	// Open-state refusal is a local decision: Allow answers in well
	// under a millisecond and an end-to-end refused dial never pays the
	// relay deadline.
	lease, err := n0.leases.Read(1)
	if err != nil || lease == nil {
		t.Fatalf("lease read: %v", err)
	}
	start := time.Now()
	allowed := n0.breakers[1].Allow(lease.Addr)
	allowTook := time.Since(start)
	if allowed {
		t.Fatal("open breaker allowed a relay inside cooldown")
	}
	if allowTook > time.Millisecond {
		t.Errorf("open-breaker Allow took %v, want < 1ms", allowTook)
	}
	start = time.Now()
	_, err = protocol.DialStation(addr0, userOf(100), 3*time.Second)
	refusedTook := time.Since(start)
	if !errors.As(err, &busy) {
		t.Fatalf("open-breaker dial = %v, want *BusyError", err)
	}
	if refusedTook > relayTimeout/2 {
		t.Errorf("fast refusal took %v, want far under the %v relay deadline", refusedTook, relayTimeout)
	}

	// Owner recovers: after the cooldown, one half-open probe reaches it
	// and the breaker closes — peers are served again.
	stalled.Store(false)
	probesBefore := obsBreakerProbes.Value()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := protocol.DialStation(addr0, userOf(200), 2*time.Second)
		if err == nil {
			if _, err := st.Associate(100); err != nil {
				st.Close()
				t.Fatalf("associate after recovery: %v", err)
			}
			st.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after owner came back: %v", err)
		}
		time.Sleep(cooldown / 4)
	}
	if obsBreakerProbes.Value() == probesBefore {
		t.Error("federation.breaker.probes never incremented during recovery")
	}
}

// TestBreakerLearnsAtEstablishment pins *when* the relay reports to
// the breaker: success the moment the owner's first reply lands —
// never at session end. Two consequences under test. First, a session
// established before the owner went dark reports nothing when it
// tears down mid-stall, so it cannot reset a breaker that correctly
// tripped while it ran. Second, a long-lived half-open probe session
// closes the breaker at its first reply, so the rest of the group is
// served while the probe session is still alive instead of being
// fast-refused until that session ends (sessions are indefinite — the
// old session-end reporting could delay recovery forever).
func TestBreakerLearnsAtEstablishment(t *testing.T) {
	root := t.TempDir()
	names := []string{"node-0", "node-1"}
	own, err := DefaultOwnership(names, 2)
	if err != nil {
		t.Fatal(err)
	}
	var stalled atomic.Bool
	const relayTimeout = 600 * time.Millisecond
	const cooldown = 300 * time.Millisecond
	const threshold = 2
	mk := func(i int) (*Node, string) {
		cfg := Config{
			NodeID:          names[i],
			Root:            root,
			Ownership:       own,
			LeaseTTL:        5 * time.Second,
			NewSelector:     func() wlan.Selector { return baseline.LLF{} },
			Journal:         journal.Options{Fsync: journal.FsyncOff},
			Timeout:         relayTimeout,
			BreakerFailures: threshold,
			BreakerCooldown: cooldown,
		}
		if i == 1 {
			cfg.Timeout = 5 * time.Second
			cfg.WrapListener = func(ln net.Listener) net.Listener {
				return &stallListener{Listener: ln, stalled: &stalled}
			}
		}
		n, err := NewNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return n, addr
	}
	n0, addr0 := mk(0)
	defer n0.Close()
	n1, addr1 := mk(1)
	defer n1.Close()
	for g := 0; g < 2; g++ {
		if _, err := n0.WaitOwner(g, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	pick := func(mk func(int) string, g int, groupOf func(string) int) string {
		for i := 0; ; i++ {
			if id := mk(i); groupOf(id) == g {
				return id
			}
		}
	}
	apID := pick(func(i int) string { return fmt.Sprintf("est-ap-%d", i) }, 1,
		func(s string) int { return own.GroupOfAP(trace.APID(s)) })
	userOf := func(i int) trace.UserID {
		return trace.UserID(pick(func(j int) string { return fmt.Sprintf("est-u-%d-%d", i, j) }, 1,
			func(s string) int { return own.GroupOfUser(trace.UserID(s)) }))
	}
	ap, err := protocol.DialAP(addr1, trace.APID(apID), 10e6, 5*time.Second)
	if err != nil {
		t.Fatalf("AP dial: %v", err)
	}
	defer ap.Close()

	// A relayed session established while the owner is healthy, kept
	// open across the outage.
	preStall, err := protocol.DialStation(addr0, userOf(0), 2*time.Second)
	if err != nil {
		t.Fatalf("pre-stall station dial: %v", err)
	}
	if _, err := preStall.Associate(100); err != nil {
		t.Fatalf("pre-stall associate: %v", err)
	}

	// Owner goes dark; new relays fail until the breaker trips.
	stalled.Store(true)
	var busy *protocol.BusyError
	for attempts := 0; attempts < threshold+2 && busy == nil; attempts++ {
		_, err := protocol.DialStation(addr0, userOf(attempts+1), 3*time.Second)
		if err == nil {
			t.Fatal("dial succeeded against a stalled owner")
		}
		errors.As(err, &busy)
	}
	if busy == nil {
		t.Fatal("breaker never tripped")
	}

	// Session-end silence: the pre-stall session winding down mid-stall
	// must not reset the tripped breaker (its relay once returned true
	// at session end, spuriously recording a Success right here).
	preStall.Close()
	time.Sleep(relayTimeout + 200*time.Millisecond) // let its relay pumps tear down
	br := n0.breakers[1]
	br.mu.Lock()
	state := br.state
	br.mu.Unlock()
	if state != breakerOpen {
		t.Fatal("pre-stall session teardown reset the tripped breaker")
	}

	// Probe promptness: owner recovers, and the first admitted station
	// is the half-open probe. Its first reply must close the breaker
	// while its session is still open — the next station is served
	// immediately, not after the probe session ends.
	stalled.Store(false)
	var probe *protocol.Station
	deadline := time.Now().Add(10 * time.Second)
	for probe == nil {
		st, err := protocol.DialStation(addr0, userOf(100), 2*time.Second)
		if err == nil {
			if _, err := st.Associate(100); err != nil {
				st.Close()
				t.Fatalf("probe associate: %v", err)
			}
			probe = st
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery after owner came back: %v", err)
		}
		time.Sleep(cooldown / 4)
	}
	defer probe.Close()
	st2, err := protocol.DialStation(addr0, userOf(200), 2*time.Second)
	if err != nil {
		t.Fatalf("station refused while the probe session is still open: %v", err)
	}
	if _, err := st2.Associate(100); err != nil {
		t.Fatalf("associate while the probe session is still open: %v", err)
	}
	st2.Close()
}
