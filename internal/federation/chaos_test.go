package federation

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/journal/faultfile"
	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/protocol/faultconn"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// Chaos suite: the cluster under injected transport faults, a kill -9
// of a replica, storage-side torn tails, and a partitioned owner —
// always against the oracle invariant that replaying a group's journal
// into a fresh single-node controller reproduces the owner's exact
// assignment state, with no acknowledged association lost.

// dialAPRetry registers an AP through any of addrs, retrying across
// transient injected faults.
func dialAPRetry(t *testing.T, addrs []string, id trace.APID, timeout time.Duration) *protocol.APAgent {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("register %s: %v", id, lastErr)
		}
		a, err := protocol.DialAP(addrs[i%len(addrs)], id, 10e6, timeout)
		if err == nil {
			return a
		}
		lastErr = err
		time.Sleep(25 * time.Millisecond)
	}
}

// associateRetry opens a fresh station for user through any of addrs
// and associates, retrying across faults and failover windows. The
// returned ack is the association the cluster must never lose while
// the station stays connected.
func associateRetry(t *testing.T, addrs []string, user trace.UserID, timeout time.Duration) (*protocol.Station, trace.APID) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for i := 0; ; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("associate %s: %v", user, lastErr)
		}
		st, err := protocol.DialStation(addrs[i%len(addrs)], user, timeout)
		if err != nil {
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			continue
		}
		ap, err := st.Associate(64e3)
		if err != nil {
			st.Close()
			lastErr = err
			time.Sleep(25 * time.Millisecond)
			continue
		}
		return st, ap
	}
}

// assignmentsOf flattens a controller snapshot to user→AP.
func assignmentsOf(snap map[trace.APID]protocol.APStatus) map[trace.UserID]trace.APID {
	out := make(map[trace.UserID]trace.APID)
	for ap, st := range snap {
		for _, u := range st.Users {
			out[u] = ap
		}
	}
	return out
}

// copyDir snapshots a quiesced group journal directory for oracle
// replay without touching the live files.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// oracleAssignments replays a copied group journal into a fresh
// single-node controller — the ground truth the cluster's owners must
// match byte-for-byte at the assignment level.
func oracleAssignments(t *testing.T, groupDir string) map[trace.UserID]trace.APID {
	t.Helper()
	oracle, err := protocol.NewController(baseline.LLF{},
		protocol.WithJournal(copyDir(t, groupDir), journal.Options{Fsync: journal.FsyncOff}))
	if err != nil {
		t.Fatalf("oracle replay of %s: %v", groupDir, err)
	}
	defer oracle.Close()
	return assignmentsOf(oracle.Snapshot())
}

// liveOwnerCtrl finds the controller currently owning group g across
// the surviving nodes.
func liveOwnerCtrl(t *testing.T, nodes []*Node, g int) *protocol.Controller {
	t.Helper()
	for _, n := range nodes {
		if n == nil {
			continue
		}
		if c, ok := n.Controller(g); ok {
			return c
		}
	}
	t.Fatalf("no live owner for group %d", g)
	return nil
}

// TestFederationChaosKillRejoinOracle is the headline chaos scenario:
// a 3-node cluster under transport faults (injected accept failures
// and delays) serves a station workload, loses one replica to kill -9
// mid-run, fails its group over to a survivor within the lease
// interval, keeps serving, takes the dead node back as a follower, and
// at the end every group owner's assignment state is byte-identical to
// an oracle single-node replay of that group's journal — zero
// acknowledged associations lost.
func TestFederationChaosKillRejoinOracle(t *testing.T) {
	root := t.TempDir()
	const ttl = 400 * time.Millisecond
	const timeout = 15 * time.Second
	names := []string{"node-0", "node-1", "node-2"}
	own, err := DefaultOwnership(names, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 3)
	addrs := make([]string, 3)
	for i := range nodes {
		seed := int64(1000 + i)
		n, err := NewNode(Config{
			NodeID:      names[i],
			Root:        root,
			Ownership:   own,
			LeaseTTL:    ttl,
			NewSelector: func() wlan.Selector { return baseline.LLF{} },
			Journal:     journal.Options{Fsync: journal.FsyncAlways},
			Timeout:     timeout,
			WrapListener: func(ln net.Listener) net.Listener {
				return &faultconn.Listener{
					Listener: &faultconn.FlakyListener{Listener: ln, FailFirst: 1, FailEvery: 11},
					Config:   faultconn.Config{Seed: seed, DelayProb: 0.15, MaxDelay: 2 * time.Millisecond},
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], addrs[i] = n, addr
	}
	stations := map[trace.UserID]*protocol.Station{}
	defer func() {
		for _, st := range stations {
			st.Close()
		}
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	for g := 0; g < 3; g++ {
		if _, err := nodes[0].WaitOwner(g, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Two APs per group, registered through rotating front-ends so some
	// registrations relay.
	perGroup := map[int]int{}
	var aps []*protocol.APAgent
	for i := 0; perGroup[0] < 2 || perGroup[1] < 2 || perGroup[2] < 2; i++ {
		if i > 64 {
			t.Fatal("hash never gave every group two APs")
		}
		id := trace.APID(fmt.Sprintf("ap-%d", i))
		g := own.GroupOfAP(id)
		if perGroup[g] >= 2 {
			continue
		}
		aps = append(aps, dialAPRetry(t, addrs, id, timeout))
		perGroup[g]++
	}
	defer func() {
		for _, a := range aps {
			a.Close()
		}
	}()

	// Workload A: 24 stations associate across all three front-ends and
	// stay connected. acked records the last acknowledged AP per user.
	acked := map[trace.UserID]trace.APID{}
	for i := 0; i < 24; i++ {
		user := trace.UserID(fmt.Sprintf("chaos-u-%d", i))
		st, ap := associateRetry(t, addrs, user, timeout)
		stations[user] = st
		acked[user] = ap
		if own.GroupOfAP(ap) != own.GroupOfUser(user) {
			t.Fatalf("user %s of group %d acked onto AP %s of group %d",
				user, own.GroupOfUser(user), ap, own.GroupOfAP(ap))
		}
	}

	// kill -9 node-2: no graceful close, no lease release. Sessions it
	// carried die; the journal keeps only what was fsynced.
	victim := nodes[2]
	nodes[2] = nil
	killedAt := time.Now()
	victim.kill()
	survivors := addrs[:2]

	// Takeover: group 2's lease moves to a survivor. Timing is recorded
	// against the lease interval (the acceptance bound, with CI slack).
	var takeover *Lease
	for deadline := time.Now().Add(10 * ttl); ; {
		l, err := nodes[0].leases.Read(2)
		if err == nil && l != nil && l.Owner != "node-2" && !l.Expired(nodes[0].cfg.nowMs()) {
			takeover = l
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("group 2 not taken over within 10 lease TTLs")
		}
		time.Sleep(5 * time.Millisecond)
	}
	failover := time.Since(killedAt)
	t.Logf("group 2 failover in %v (lease TTL %v), epoch %d by %s", failover, ttl, takeover.Epoch, takeover.Owner)
	if takeover.Epoch < 2 {
		t.Fatalf("takeover kept epoch %d", takeover.Epoch)
	}
	if failover > 5*ttl {
		t.Fatalf("failover took %v, over 5 lease TTLs", failover)
	}

	// Workload B: every workload-A station re-homes through a survivor
	// (old conn closed first, so the re-associate is the user's final
	// journal record), and 24 new stations join.
	for i := 0; i < 24; i++ {
		user := trace.UserID(fmt.Sprintf("chaos-u-%d", i))
		stations[user].Close()
		delete(stations, user)
		st, ap := associateRetry(t, survivors, user, timeout)
		stations[user] = st
		acked[user] = ap
	}
	for i := 24; i < 48; i++ {
		user := trace.UserID(fmt.Sprintf("chaos-u-%d", i))
		st, ap := associateRetry(t, survivors, user, timeout)
		stations[user] = st
		acked[user] = ap
	}

	// Rejoin: a fresh node-2 on the same root must come back following,
	// and its group-2 standby must catch up to the new owner's head.
	re, err := NewNode(Config{
		NodeID:      "node-2",
		Root:        root,
		Ownership:   own,
		LeaseTTL:    ttl,
		NewSelector: func() wlan.Selector { return baseline.LLF{} },
		Journal:     journal.Options{Fsync: journal.FsyncAlways},
		Timeout:     timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	ownerSeq := liveOwnerCtrl(t, nodes, 2).JournalSeq()
	for deadline := time.Now().Add(5 * time.Second); ; {
		rh := re.Health()
		if len(rh.Owned) != 0 {
			t.Fatalf("rejoined node claimed %v over live leases", rh.Owned)
		}
		if rh.Groups[2].Role == RoleFollower && rh.Groups[2].FollowSeq >= ownerSeq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined follower stuck at seq %d, owner at %d", rh.Groups[2].FollowSeq, ownerSeq)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Quiesced oracle check, per group: copy the journal directory,
	// replay it into a fresh single-node controller, and compare with
	// the live owner. Every acknowledged association must be present.
	for g := 0; g < 3; g++ {
		live := assignmentsOf(liveOwnerCtrl(t, nodes, g).Snapshot())
		oracle := oracleAssignments(t, filepath.Join(root, fmt.Sprintf("group-%d", g)))
		if len(live) != len(oracle) {
			t.Fatalf("group %d: live has %d assignments, oracle %d", g, len(live), len(oracle))
		}
		for u, ap := range live {
			if oracle[u] != ap {
				t.Fatalf("group %d: live %s→%s, oracle %s→%s", g, u, ap, u, oracle[u])
			}
		}
		for u, ap := range acked {
			if own.GroupOfUser(u) != g {
				continue
			}
			if oracle[u] != ap {
				t.Fatalf("group %d: acked %s→%s lost (oracle has %q)", g, u, ap, oracle[u])
			}
		}
	}
}

// TestFederationTornTailTakeover injects a storage fault on the owner:
// past a byte offset its segment writes silently never land (the
// kill -9 page-cache race). The follower only ever sees landed bytes,
// so takeover promotes cleanly from the durable prefix and the new
// owner keeps serving.
func TestFederationTornTailTakeover(t *testing.T) {
	root := t.TempDir()
	const ttl = 300 * time.Millisecond
	names := []string{"node-0", "node-1"}
	own, err := DefaultOwnership(names, 2)
	if err != nil {
		t.Fatal(err)
	}
	build := func(id string, jopts journal.Options) *Node {
		n, err := NewNode(Config{
			NodeID:      id,
			Root:        root,
			Ownership:   own,
			LeaseTTL:    ttl,
			NewSelector: func() wlan.Selector { return baseline.LLF{} },
			Journal:     jopts,
			Timeout:     5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// node-0's journal tears at byte 600: registrations land, later
	// associations are acked but never durable.
	victim := build("node-0", journal.Options{
		Fsync: journal.FsyncOff,
		OpenFile: func(path string) (journal.File, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return faultfile.Wrap(f, faultfile.Config{TornAtByte: 600}), nil
		},
	})
	healthy := build("node-1", journal.Options{Fsync: journal.FsyncAlways})
	defer healthy.Close()
	vaddr, err := victim.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	haddr, err := healthy.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 2; g++ {
		if _, err := victim.WaitOwner(g, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Register two group-0 APs through the victim, then associate users
	// until the victim's journal head runs past the tear.
	var ids []trace.APID
	for i := 0; len(ids) < 2; i++ {
		id := trace.APID(fmt.Sprintf("torn-ap-%d", i))
		if own.GroupOfAP(id) == 0 {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		a := dialAPRetry(t, []string{vaddr}, id, 5*time.Second)
		defer a.Close()
	}
	vctrl, ok := victim.Controller(0)
	if !ok {
		t.Fatal("victim does not own group 0")
	}
	for i := 0; vctrl.JournalSeq() < 12; i++ {
		user := trace.UserID(fmt.Sprintf("torn-u-%d", i))
		if own.GroupOfUser(user) != 0 {
			continue
		}
		st, _ := associateRetry(t, []string{vaddr}, user, 5*time.Second)
		st.Close()
	}

	// The healthy follower can only have the durable prefix.
	healthy.Tick()
	followSeq := healthy.Health().Groups[0].FollowSeq
	if followSeq >= vctrl.JournalSeq() {
		t.Fatalf("follower at %d not behind torn owner at %d", followSeq, vctrl.JournalSeq())
	}

	victim.kill()
	for deadline := time.Now().Add(10 * ttl); ; {
		l, err := healthy.leases.Read(0)
		if err == nil && l != nil && l.Owner == "node-1" && !l.Expired(healthy.cfg.nowMs()) {
			if l.Epoch < 2 {
				t.Fatalf("takeover kept epoch %d", l.Epoch)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no takeover from torn-tailed owner")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The promoted owner serves from the durable prefix: a fresh
	// group-0 association lands on a recovered AP.
	var user trace.UserID
	for i := 0; ; i++ {
		user = trace.UserID(fmt.Sprintf("post-torn-u-%d", i))
		if own.GroupOfUser(user) == 0 {
			break
		}
	}
	st, ap := associateRetry(t, []string{haddr}, user, 5*time.Second)
	defer st.Close()
	if own.GroupOfAP(ap) != 0 {
		t.Fatalf("post-takeover AP %s not in group 0", ap)
	}
}

// TestRelayPartitionedOwner pins the partition behavior of the routing
// front-end: a lease naming an unreachable owner yields a fast, clean
// refusal ("owner unreachable"), never a hang or a forwarding loop.
func TestRelayPartitionedOwner(t *testing.T) {
	own, err := DefaultOwnership([]string{"node-0", "ghost"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(Config{
		NodeID:      "node-0",
		Root:        t.TempDir(),
		Ownership:   own,
		LeaseTTL:    time.Minute,
		NewSelector: func() wlan.Selector { return baseline.LLF{} },
		Journal:     journal.Options{Fsync: journal.FsyncOff},
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Tick()

	// A live lease whose owner is behind a partition: the addr is a
	// blackholed port on loopback (nothing listens there).
	dead := &Lease{Group: 1, Epoch: 3, Owner: "ghost", Addr: "127.0.0.1:1",
		Renewed: n.cfg.nowMs(), TTL: int64(time.Minute / time.Millisecond)}
	if err := n.leases.write(dead); err != nil {
		t.Fatal(err)
	}
	var user trace.UserID
	for i := 0; ; i++ {
		user = trace.UserID(fmt.Sprintf("part-u-%d", i))
		if own.GroupOfUser(user) == 1 {
			break
		}
	}
	start := time.Now()
	_, err = protocol.DialStation(addr, user, 2*time.Second)
	if err == nil {
		t.Fatal("dial through a partitioned owner succeeded")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("want an owner-unreachable refusal, got: %v", err)
	}
	if since := time.Since(start); since > 3*time.Second {
		t.Fatalf("refusal took %v", since)
	}
}

// percentile returns the p-th percentile of sorted ms samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// TestFedBenchJSON measures failover time and replication lag and
// writes them to the path in FED_BENCH_JSON. Skipped when unset; CI
// points it at BENCH_fed.json.
func TestFedBenchJSON(t *testing.T) {
	path := os.Getenv("FED_BENCH_JSON")
	if path == "" {
		t.Skip("FED_BENCH_JSON not set")
	}
	root := t.TempDir()
	const ttl = 240 * time.Millisecond
	nodes, addrs := newTestCluster(t, root, 2, ttl)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()
	for g := 0; g < 2; g++ {
		if _, err := nodes[0].WaitOwner(g, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// One group-0 AP on its home owner node-0, one long-lived station
	// re-associating; after each ack, measure how long until node-1's
	// follower has tailed the record.
	var apID trace.APID
	for i := 0; ; i++ {
		apID = trace.APID(fmt.Sprintf("bench-ap-%d", i))
		if nodes[0].cfg.Ownership.GroupOfAP(apID) == 0 {
			break
		}
	}
	a := dialAPRetry(t, addrs[:1], apID, 5*time.Second)
	defer a.Close()
	var user trace.UserID
	for i := 0; ; i++ {
		user = trace.UserID(fmt.Sprintf("bench-u-%d", i))
		if nodes[0].cfg.Ownership.GroupOfUser(user) == 0 {
			break
		}
	}
	st, _ := associateRetry(t, addrs[:1], user, 5*time.Second)
	defer st.Close()
	ctrl, ok := nodes[0].Controller(0)
	if !ok {
		t.Fatal("node-0 does not own group 0")
	}

	const samples = 100
	lags := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		if _, err := st.Associate(64e3); err != nil {
			t.Fatal(err)
		}
		target := ctrl.JournalSeq()
		start := time.Now()
		for nodes[1].Health().Groups[0].FollowSeq < target {
			time.Sleep(time.Millisecond)
		}
		lags = append(lags, float64(time.Since(start).Microseconds())/1e3)
	}
	sort.Float64s(lags)

	// Failover: kill the group-0 owner, time until node-1 holds a fresh
	// lease for it.
	victim := nodes[0]
	nodes[0] = nil
	killedAt := time.Now()
	victim.kill()
	for {
		l, err := nodes[1].leases.Read(0)
		if err == nil && l != nil && l.Owner == "node-1" && !l.Expired(nodes[1].cfg.nowMs()) {
			break
		}
		if time.Since(killedAt) > 10*time.Second {
			t.Fatal("no failover within 10s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	failoverMs := float64(time.Since(killedAt).Microseconds()) / 1e3

	out := struct {
		Benchmark  string  `json:"benchmark"`
		Nodes      int     `json:"nodes"`
		Groups     int     `json:"groups"`
		LeaseTTLMs int64   `json:"lease_ttl_ms"`
		Samples    int     `json:"samples"`
		LagP50Ms   float64 `json:"replication_lag_p50_ms"`
		LagP90Ms   float64 `json:"replication_lag_p90_ms"`
		LagP99Ms   float64 `json:"replication_lag_p99_ms"`
		LagMaxMs   float64 `json:"replication_lag_max_ms"`
		FailoverMs float64 `json:"failover_ms"`
	}{
		Benchmark:  "Federation",
		Nodes:      2,
		Groups:     2,
		LeaseTTLMs: int64(ttl / time.Millisecond),
		Samples:    samples,
		LagP50Ms:   percentile(lags, 0.50),
		LagP90Ms:   percentile(lags, 0.90),
		LagP99Ms:   percentile(lags, 0.99),
		LagMaxMs:   lags[len(lags)-1],
		FailoverMs: failoverMs,
	}
	t.Logf("replication lag p50=%.2fms p99=%.2fms max=%.2fms; failover %.0fms (TTL %v)",
		out.LagP50Ms, out.LagP99Ms, out.LagMaxMs, out.FailoverMs, ttl)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
