package federation

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

func TestParseOwnership(t *testing.T) {
	o, err := ParseOwnership("0=a,1=b,2=a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Home(0) != "a" || o.Home(1) != "b" || o.Home(2) != "a" {
		t.Fatalf("home map %v", o)
	}
	if got := o.HomeGroups("a"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("HomeGroups(a) = %v", got)
	}
	if ns := o.Nodes(); len(ns) != 2 || ns[0] != "a" || ns[1] != "b" {
		t.Fatalf("Nodes = %v", ns)
	}
	if rt, err := ParseOwnership(o.String(), 3); err != nil || rt.String() != o.String() {
		t.Fatalf("spec round-trip: %v (%v)", rt, err)
	}
	for _, bad := range []string{"", "0=a", "0=a,1=b,3=c", "0=a,0=b,1=c", "x=a,1=b,2=c"} {
		if _, err := ParseOwnership(bad, 3); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

func TestOwnershipHashMatchesDomainShards(t *testing.T) {
	// The group of an AP must be domain.Hash % groups — the same hash
	// (not merely the same family) the in-process shards use, so docs
	// and diagnostics can reason about both layers with one function.
	o, err := DefaultOwnership([]string{"a", "b", "c"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("ap-%d", i)
		if got, want := o.GroupOfAP(trace.APID(id)), int(domain.Hash(id)%3); got != want {
			t.Fatalf("GroupOfAP(%s) = %d, want %d", id, got, want)
		}
	}
}

func TestLeaseClaimRenewExpiry(t *testing.T) {
	now := int64(1_000_000)
	s, err := newLeaseStore(t.TempDir(), func() int64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	const ttl = time.Second

	// Fresh group: first claim wins epoch 1.
	l, won, err := s.Claim(0, nil, "a", "addr-a", ttl)
	if err != nil || !won || l.Epoch != 1 {
		t.Fatalf("first claim: %+v won=%v err=%v", l, won, err)
	}
	// A live lease is not claimable.
	cur, _ := s.Read(0)
	if _, won, _ := s.Claim(0, cur, "b", "addr-b", ttl); won {
		t.Fatal("claimed over a live lease")
	}
	// Renewal by the owner succeeds; by anyone else fails.
	now += 500
	if _, ok, _ := s.Renew(0, "a", 1, "addr-a", ttl); !ok {
		t.Fatal("owner renewal failed")
	}
	if _, ok, _ := s.Renew(0, "b", 1, "addr-b", ttl); ok {
		t.Fatal("non-owner renewed")
	}

	// Expiry: claimable again, epoch bumps, and the O_EXCL gate admits
	// exactly one of two racing claimants.
	now += int64(ttl/time.Millisecond) + 1
	cur, _ = s.Read(0)
	if !cur.Expired(now) {
		t.Fatal("lease not expired")
	}
	l2, won2, err := s.Claim(0, cur, "b", "addr-b", ttl)
	if err != nil || !won2 || l2.Epoch != 2 {
		t.Fatalf("takeover claim: %+v won=%v err=%v", l2, won2, err)
	}
	if _, won3, _ := s.Claim(0, cur, "c", "addr-c", ttl); won3 {
		t.Fatal("rival claim for the same epoch also won")
	}
	// The stale owner's renewal now fails: self-demotion trigger.
	if _, ok, _ := s.Renew(0, "a", 1, "addr-a", ttl); ok {
		t.Fatal("superseded owner renewed")
	}
}

// newTestCluster builds size nodes over one shared root with one group
// per node, listening on loopback, and returns them with their addrs.
func newTestCluster(t *testing.T, root string, size int, ttl time.Duration) ([]*Node, []string) {
	t.Helper()
	names := make([]string, size)
	for i := range names {
		names[i] = fmt.Sprintf("node-%d", i)
	}
	own, err := DefaultOwnership(names, size)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, size)
	addrs := make([]string, size)
	for i := range nodes {
		n, err := NewNode(Config{
			NodeID:      names[i],
			Root:        root,
			Ownership:   own,
			LeaseTTL:    ttl,
			NewSelector: func() wlan.Selector { return baseline.LLF{} },
			Journal:     journal.Options{Fsync: journal.FsyncAlways},
			Timeout:     5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i], addrs[i] = n, addr
	}
	return nodes, addrs
}

// TestClusterSettlesRoutesAndFailsOver is the in-process 3-node story:
// home owners claim their groups, peers are served through any node
// (local or relayed), killing a node moves its group to a survivor
// within the lease interval, and the rejoined node comes back as a
// follower.
func TestClusterSettlesRoutesAndFailsOver(t *testing.T) {
	root := t.TempDir()
	const ttl = 500 * time.Millisecond
	nodes, addrs := newTestCluster(t, root, 3, ttl)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Close()
			}
		}
	}()

	// Settle: every group gets an owner.
	for g := 0; g < 3; g++ {
		if _, err := nodes[0].WaitOwner(g, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	h := nodes[1].Health()
	if h.NodeID != "node-1" || len(h.Owned) != 1 || h.Owned[0] != 1 {
		t.Fatalf("node-1 health %+v", h)
	}

	// Register APs in every group through one node: AP hellos relay to
	// each AP's group owner.
	var aps []*protocol.APAgent
	byGroup := map[int]trace.APID{}
	own := nodes[0].cfg.Ownership
	for i := 0; len(byGroup) < 3 || i < 6; i++ {
		id := trace.APID(fmt.Sprintf("ap-%d", i))
		a, err := protocol.DialAP(addrs[0], id, 10e6, 5*time.Second)
		if err != nil {
			t.Fatalf("ap %s via node-0: %v", id, err)
		}
		aps = append(aps, a)
		if _, seen := byGroup[own.GroupOfAP(id)]; !seen {
			byGroup[own.GroupOfAP(id)] = id
		}
		if i > 32 {
			t.Fatal("hash never covered all groups")
		}
	}
	defer func() {
		for _, a := range aps {
			a.Close()
		}
	}()

	// A station in group 2 associates through node-0 (relay unless 2
	// is local) and lands on an AP of its own group.
	var user trace.UserID
	for i := 0; ; i++ {
		user = trace.UserID(fmt.Sprintf("u-%d", i))
		if own.GroupOfUser(user) == 2 {
			break
		}
	}
	st, err := protocol.DialStation(addrs[0], user, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := st.Associate(1e5)
	if err != nil {
		t.Fatal(err)
	}
	if own.GroupOfAP(ap) != 2 {
		t.Fatalf("user of group 2 assigned AP %s of group %d", ap, own.GroupOfAP(ap))
	}
	st.Close()

	// Kill node-2 (owner of group 2) without Close: its lease expires
	// and a survivor takes the group over within the lease interval.
	victim := nodes[2]
	nodes[2] = nil
	victim.kill()
	deadline := time.Now().Add(10 * ttl)
	var takeover *Lease
	for {
		l, err := nodes[0].leases.Read(2)
		if err == nil && l != nil && l.Owner != "node-2" && !l.Expired(nodes[0].cfg.nowMs()) {
			takeover = l
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no takeover of group 2 within 10 lease TTLs")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if takeover.Epoch < 2 {
		t.Fatalf("takeover kept epoch %d", takeover.Epoch)
	}

	// The station reconnects through node-1 and is served again —
	// same group, state preserved (its previous AP is still believed).
	st2, err := protocol.DialStation(addrs[1], user, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ap2, err := st2.Associate(1e5)
	if err != nil {
		t.Fatalf("associate after failover: %v", err)
	}
	if own.GroupOfAP(ap2) != 2 {
		t.Fatalf("post-failover AP %s in group %d", ap2, own.GroupOfAP(ap2))
	}

	// Rejoin: a fresh node-2 process on the same root must come back
	// as a follower of group 2 — the takeover lease is live.
	own2, _ := DefaultOwnership([]string{"node-0", "node-1", "node-2"}, 3)
	re, err := NewNode(Config{
		NodeID:      "node-2",
		Root:        root,
		Ownership:   own2,
		LeaseTTL:    ttl,
		NewSelector: func() wlan.Selector { return baseline.LLF{} },
		Journal:     journal.Options{Fsync: journal.FsyncAlways},
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * ttl / 2)
	rh := re.Health()
	for _, gh := range rh.Groups {
		if gh.Group == 2 && gh.Role != RoleFollower {
			t.Fatalf("rejoined node reclaimed group 2: %+v", gh)
		}
	}
	if len(rh.Owned) != 0 {
		t.Fatalf("rejoined node owns %v without any lease expiring", rh.Owned)
	}
}

// TestRouterRefusesUnownedGroup pins the no-loop rule: a node asked
// for a group with no live owner replies with an error instead of
// forwarding.
func TestRouterRefusesUnownedGroup(t *testing.T) {
	own, _ := DefaultOwnership([]string{"node-0", "ghost"}, 2)
	n, err := NewNode(Config{
		NodeID:      "node-0",
		Root:        t.TempDir(),
		Ownership:   own,
		LeaseTTL:    time.Minute, // no expiry during the test
		NewSelector: func() wlan.Selector { return baseline.LLF{} },
		Journal:     journal.Options{Fsync: journal.FsyncOff},
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.Tick() // node-0 claims group 0; group 1 stays unowned (ghost never runs)

	// An AP of the ghost's group gets a clean error, not a hang.
	var ghostAP trace.APID
	for i := 0; ; i++ {
		ghostAP = trace.APID(fmt.Sprintf("ap-%d", i))
		if own.GroupOfAP(ghostAP) == 1 {
			break
		}
	}
	if _, err := protocol.DialAP(addr, ghostAP, 1e6, 2*time.Second); err == nil {
		t.Fatal("dial into an unowned group succeeded")
	} else if !strings.Contains(err.Error(), "no live owner") {
		t.Fatalf("unexpected refusal: %v", err)
	}
}
