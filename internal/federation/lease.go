package federation

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/s3wlan/s3wlan/internal/atomicfile"
)

// Cross-process ownership arbitration on the shared cluster root.
//
// Each group has one lease file, `leases/group-<g>.json`, naming the
// current owner, its serve address, the ownership epoch and the last
// renewal time. The owner rewrites it (atomically, temp+rename) every
// renewal interval; a lease older than its TTL is expired and any
// replica may take the group over.
//
// Epoch increments are serialized by O_EXCL claim files: a claimant
// creates `leases/claim-<g>.<epoch>` before writing the lease, so two
// followers racing for the same takeover cannot both win the same
// epoch — exactly one O_EXCL create succeeds, the loser observes the
// new lease and stays a follower. A rejoining node goes through the
// same gate, and because a live owner keeps its lease fresh, the
// rejoiner finds the lease valid and comes back as a follower instead
// of reclaiming its old groups.
//
// The journal's record epochs fence the residual window this protocol
// cannot close on plain shared disk (an owner that stalls longer than
// the TTL without noticing): a superseded owner's appends carry the
// old epoch, followers drop them (journal.Follower), and the stalled
// owner demotes itself at its next renewal when it finds the epoch
// moved (node.go).

// Lease is one group's ownership record. Times are unix milliseconds:
// lease TTLs are fractions of a second in tests and single-digit
// seconds in production, so second granularity would make expiry
// decisions off by up to a full TTL.
type Lease struct {
	Group   int    `json:"group"`
	Epoch   uint64 `json:"epoch"`
	Owner   string `json:"owner"`
	Addr    string `json:"addr,omitempty"`
	Renewed int64  `json:"renewed_unix_ms"`
	TTL     int64  `json:"ttl_ms"`
}

// Expired reports whether the lease is stale at unix-millisecond now.
func (l *Lease) Expired(now int64) bool { return now-l.Renewed > l.TTL }

// leaseStore reads, renews and claims group leases under root.
type leaseStore struct {
	dir string       // <root>/leases
	now func() int64 // unix milliseconds
}

func newLeaseStore(root string, now func() int64) (*leaseStore, error) {
	dir := filepath.Join(root, "leases")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("federation: lease dir: %w", err)
	}
	return &leaseStore{dir: dir, now: now}, nil
}

func (s *leaseStore) path(group int) string {
	return filepath.Join(s.dir, fmt.Sprintf("group-%d.json", group))
}

// Read returns group's lease, or (nil, nil) when no lease exists yet.
func (s *leaseStore) Read(group int) (*Lease, error) {
	data, err := os.ReadFile(s.path(group))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("federation: read lease %d: %w", group, err)
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		// A half-written lease cannot happen (atomic rename); damaged
		// bytes mean operator error. Treat as absent so the cluster can
		// re-claim rather than wedge.
		return nil, nil
	}
	return &l, nil
}

// write rewrites group's lease atomically.
func (s *leaseStore) write(l *Lease) error {
	return atomicfile.WriteFile(s.path(l.Group), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(l)
	})
}

// Renew refreshes an owned lease. It re-reads the file first: if the
// epoch moved or the owner changed, someone took the group over and
// the caller must demote instead. The current lease (ours or the
// usurper's) is returned either way.
func (s *leaseStore) Renew(group int, owner string, epoch uint64, addr string, ttl time.Duration) (*Lease, bool, error) {
	cur, err := s.Read(group)
	if err != nil {
		return nil, false, err
	}
	if cur == nil || cur.Epoch != epoch || cur.Owner != owner {
		return cur, false, nil
	}
	l := &Lease{Group: group, Epoch: epoch, Owner: owner, Addr: addr,
		Renewed: s.now(), TTL: int64(ttl / time.Millisecond)}
	if err := s.write(l); err != nil {
		return cur, false, err
	}
	return l, true, nil
}

// ReadLeases scans a cluster root's lease directory and returns every
// group lease present, sorted by group — the status surface s3proto's
// -fed-status mode prints so scripts and the chaos CI smoke can assert
// cluster state without scraping logs. A root with no leases directory
// yields an empty slice (a cluster that has not settled yet).
func ReadLeases(root string) ([]*Lease, error) {
	dir := filepath.Join(root, "leases")
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("federation: read leases: %w", err)
	}
	s := &leaseStore{dir: dir, now: func() int64 { return time.Now().UnixMilli() }}
	var out []*Lease
	for _, e := range ents {
		var g int
		if _, err := fmt.Sscanf(e.Name(), "group-%d.json", &g); err != nil {
			continue
		}
		l, err := s.Read(g)
		if err != nil || l == nil {
			continue
		}
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}

// Claim attempts to take ownership of group at the epoch after cur
// (nil cur claims epoch 1). The O_EXCL claim file serializes rivals;
// on success the new lease is written and returned. ok=false means a
// rival won (or the lease is no longer claimable); the caller should
// re-read and follow.
func (s *leaseStore) Claim(group int, cur *Lease, owner, addr string, ttl time.Duration) (*Lease, bool, error) {
	var epoch uint64 = 1
	if cur != nil {
		if !cur.Expired(s.now()) && cur.Owner != "" {
			return nil, false, nil // live owner; nothing to claim
		}
		epoch = cur.Epoch + 1
	}
	claim := filepath.Join(s.dir, fmt.Sprintf("claim-%d.%d", group, epoch))
	f, err := os.OpenFile(claim, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, false, nil // rival claimed this epoch first
		}
		return nil, false, fmt.Errorf("federation: claim group %d epoch %d: %w", group, epoch, err)
	}
	fmt.Fprintf(f, "%s %d\n", owner, s.now())
	f.Close()

	l := &Lease{Group: group, Epoch: epoch, Owner: owner, Addr: addr,
		Renewed: s.now(), TTL: int64(ttl / time.Millisecond)}
	if err := s.write(l); err != nil {
		return nil, false, err
	}
	// Old claim files are spent tokens; reclaim the dust.
	if epoch > 1 {
		os.Remove(filepath.Join(s.dir, fmt.Sprintf("claim-%d.%d", group, epoch-1)))
	}
	return l, true, nil
}
