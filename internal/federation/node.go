package federation

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// Cluster health counters: ownership churn and replication progress.
// Outside chaos, takeovers and demotions should both be zero after the
// cluster settles, and follow records should track every owner append.
var (
	obsTakeovers   = obs.GetCounter("federation.takeovers", "Group ownership takeovers completed (expired lease claimed, standby promoted)")
	obsDemotions   = obs.GetCounter("federation.demotions", "Self-demotions: an owner found its lease epoch moved and stepped down")
	obsRenewals    = obs.GetCounter("federation.lease_renewals", "Successful owner lease renewals")
	obsClaimRaces  = obs.GetCounter("federation.claim_races", "Takeover claims lost to a rival replica (O_EXCL claim file existed)")
	obsRelays      = obs.GetCounter("federation.relays", "Peer connections relayed to a remote group owner")
	obsRelayErrors = obs.GetCounter("federation.relay_errors", "Relayed connections that failed (owner unreachable or relay I/O error)")
	obsGroupsOwned = obs.GetGauge("federation.groups_owned", "Federation groups this node currently owns")
)

// Config configures one cluster replica.
type Config struct {
	// NodeID names this replica in the ownership map and lease files.
	NodeID string
	// Root is the shared cluster directory: per-group journals live in
	// <Root>/group-<g>/, leases in <Root>/leases/. All replicas of one
	// cluster point at the same root.
	Root string
	// Ownership is the static group→home-owner map.
	Ownership *Ownership
	// LeaseTTL is how long an owner's silence lasts before a follower
	// may take its groups over (default 2s). Renewals run at TTL/4.
	LeaseTTL time.Duration
	// NewSelector builds the association policy for one group's
	// controller. Called once per group per controller incarnation.
	NewSelector func() wlan.Selector
	// ControllerOpts extends each group controller's construction (e.g.
	// lease seconds, observers). WithJournal must not be among them —
	// journals are owned by the federation lifecycle.
	ControllerOpts func(group int) []protocol.ControllerOption
	// Journal carries the owner-side journal policy (fsync, checkpoint
	// cadence). Epoch, State and FlushEachAppend are managed by the
	// node: followers tail segments between fsyncs, so every append is
	// flushed.
	Journal journal.Options
	// Timeout bounds relay and serve I/O (default 30s).
	Timeout time.Duration
	// BreakerFailures is the relay circuit breaker's budget: that many
	// consecutive relay failures to a group's owner trip the group's
	// breaker to fast local MsgBusy refusal (default 5; see breaker.go).
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker fast-refuses before
	// admitting a half-open probe (default 1s).
	BreakerCooldown time.Duration
	// WrapListener, when set, decorates the router's listener before the
	// accept loop starts — the chaos suite's injection point for
	// faultconn-wrapped transports. Production leaves it nil.
	WrapListener func(net.Listener) net.Listener
	// Logger receives lifecycle diagnostics (default: discard).
	Logger *log.Logger
	// nowMs overrides the lease clock in tests (unix milliseconds).
	nowMs func() int64
}

// Role is a node's relationship to one group.
type Role string

// Group roles.
const (
	RoleOwner    Role = "owner"
	RoleFollower Role = "follower"
)

// GroupHealth is one group's state as seen from this node — the
// health surface s3proto serves and the chaos suite asserts on.
type GroupHealth struct {
	Group int    `json:"group"`
	Role  Role   `json:"role"`
	Epoch uint64 `json:"epoch"`
	// Owner and Addr name the lease holder (possibly this node).
	Owner string `json:"owner,omitempty"`
	Addr  string `json:"addr,omitempty"`
	// Home is the group's static home owner.
	Home string `json:"home"`
	// FollowSeq is the replication position when following; the journal
	// head when owning.
	FollowSeq uint64 `json:"follow_seq"`
}

// Health is the node identity block in s3proto's health output.
type Health struct {
	NodeID string        `json:"node_id"`
	Addr   string        `json:"addr,omitempty"`
	Owned  []int         `json:"owned_groups"`
	Groups []GroupHealth `json:"groups"`
}

// group is one federation group's replica-local state machine:
// follower (standby controller + journal tail) or owner (journal-armed
// controller serving writes).
type group struct {
	mu       sync.Mutex
	id       int
	role     Role
	epoch    uint64 // owning epoch when RoleOwner
	ctrl     *protocol.Controller
	follower *journal.Follower // nil when owning
}

// Node is one replica of the federated controller cluster.
type Node struct {
	cfg      Config
	leases   *leaseStore
	groups   []*group
	breakers []*breaker // per-group relay circuit breakers

	mu        sync.Mutex
	addr      string
	ln        net.Listener
	conns     map[net.Conn]struct{}
	startedMs int64
	stop      chan struct{}
	wg        sync.WaitGroup
	closed    bool
}

// NewNode builds a replica: every group starts as a follower with a
// standby controller, even the node's home groups — ownership is only
// ever entered through the lease claim path, so a rejoining node finds
// the fresh lease of whoever took its groups over and stays a
// follower until that owner actually dies.
func NewNode(cfg Config) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("federation: empty node id")
	}
	if cfg.Root == "" {
		return nil, errors.New("federation: empty cluster root")
	}
	if cfg.Ownership == nil {
		return nil, errors.New("federation: nil ownership map")
	}
	if cfg.NewSelector == nil {
		return nil, errors.New("federation: nil selector factory")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.nowMs == nil {
		cfg.nowMs = func() int64 { return time.Now().UnixMilli() }
	}
	leases, err := newLeaseStore(cfg.Root, cfg.nowMs)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		leases:    leases,
		conns:     make(map[net.Conn]struct{}),
		startedMs: cfg.nowMs(),
		stop:      make(chan struct{}),
	}
	for g := 0; g < cfg.Ownership.Groups(); g++ {
		if err := os.MkdirAll(n.groupDir(g), 0o755); err != nil {
			return nil, fmt.Errorf("federation: group dir: %w", err)
		}
		gs := &group{id: g, role: RoleFollower}
		if err := n.resetStandby(gs); err != nil {
			return nil, err
		}
		n.groups = append(n.groups, gs)
		n.breakers = append(n.breakers, newBreaker(cfg.BreakerFailures, cfg.BreakerCooldown))
	}
	return n, nil
}

func (n *Node) groupDir(g int) string {
	return filepath.Join(n.cfg.Root, fmt.Sprintf("group-%d", g))
}

// newController builds one group controller incarnation (no journal).
func (n *Node) newController(g int) (*protocol.Controller, error) {
	opts := []protocol.ControllerOption{protocol.WithTimeout(n.cfg.Timeout)}
	if n.cfg.ControllerOpts != nil {
		opts = append(opts, n.cfg.ControllerOpts(g)...)
	}
	return protocol.NewController(n.cfg.NewSelector(), opts...)
}

// resetStandby replaces gs's controller with a fresh standby and a
// follower from sequence zero. The first Poll rebuilds state from the
// group's newest checkpoint (resync) and record tail. Callers hold
// gs.mu or have exclusive access.
func (n *Node) resetStandby(gs *group) error {
	ctrl, err := n.newController(gs.id)
	if err != nil {
		return err
	}
	gs.ctrl = ctrl
	gs.follower = journal.NewFollower(n.groupDir(gs.id), 0)
	gs.role = RoleFollower
	gs.epoch = 0
	return n.pollGroup(gs)
}

// pollGroup advances a following group's standby from the replication
// stream. Callers hold gs.mu or have exclusive access.
func (n *Node) pollGroup(gs *group) error {
	resync := func(payload []byte, seq uint64) error {
		// A resync means pruning outran this follower: wholesale state
		// replacement needs an empty controller.
		ctrl, err := n.newController(gs.id)
		if err != nil {
			return err
		}
		if err := ctrl.RestoreCheckpoint(payload); err != nil {
			return err
		}
		gs.ctrl = ctrl
		return nil
	}
	_, err := gs.follower.Poll(resync, func(r journal.Record) error {
		return gs.ctrl.ApplyRecord(r)
	})
	return err
}

// ownerJournalOpts is the journal policy an owning controller appends
// under: the configured fsync/checkpoint policy, flushed per append so
// followers tail promptly, stamped with the ownership epoch.
func (n *Node) ownerJournalOpts(epoch uint64) journal.Options {
	opts := n.cfg.Journal
	opts.Epoch = epoch
	opts.FlushEachAppend = true
	opts.State = nil
	if opts.Logger == nil {
		opts.Logger = n.cfg.Logger
	}
	return opts
}

// promote turns gs's caught-up standby into the group owner at
// l.Epoch. Callers hold gs.mu.
func (n *Node) promote(gs *group, l *Lease) error {
	// Catch the standby up to the journal head first; the previous
	// owner may have appended after our last poll.
	if err := n.pollGroup(gs); err != nil {
		return err
	}
	_, err := gs.ctrl.AttachJournal(n.groupDir(gs.id), n.ownerJournalOpts(l.Epoch), gs.follower.LastSeq())
	if err != nil {
		// Behind a checkpoint we never saw: rebuild the standby from it
		// and retry once.
		if rerr := n.resetStandby(gs); rerr != nil {
			return fmt.Errorf("federation: group %d: %v (standby rebuild: %v)", gs.id, err, rerr)
		}
		_, err = gs.ctrl.AttachJournal(n.groupDir(gs.id), n.ownerJournalOpts(l.Epoch), gs.follower.LastSeq())
		if err != nil {
			return err
		}
	}
	gs.role = RoleOwner
	gs.epoch = l.Epoch
	gs.follower = nil
	return nil
}

// demote steps gs down: detach the journal without a checkpoint (a
// superseded owner must not snapshot stale state over the new owner's
// stream) and rebuild a follower-fed standby.
func (n *Node) demote(gs *group) {
	if err := gs.ctrl.DetachJournal(); err != nil {
		n.cfg.Logger.Printf("federation: group %d: detach: %v", gs.id, err)
	}
	if err := n.resetStandby(gs); err != nil {
		n.cfg.Logger.Printf("federation: group %d: standby rebuild after demotion: %v", gs.id, err)
	}
	obsDemotions.Inc()
}

// Listen starts serving on addr: the routing front-end accepts peers
// and the lease loop begins claiming/renewing this node's groups. It
// returns the bound address (which is also published in lease files
// for peers to relay to).
func (n *Node) Listen(addr string) (string, error) {
	bound, err := n.listenRouter(addr)
	if err != nil {
		return "", err
	}
	n.mu.Lock()
	n.addr = bound
	n.mu.Unlock()
	n.wg.Add(1)
	go n.leaseLoop()
	return bound, nil
}

// leaseLoop is the ownership heartbeat: every TTL/4 it renews owned
// leases (demoting if the epoch moved), advances followers, and claims
// expired or unclaimed groups.
func (n *Node) leaseLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			n.Tick()
		}
	}
}

// Tick runs one lease-loop iteration synchronously. Exposed for
// deterministic tests; production uses the background loop.
func (n *Node) Tick() {
	n.mu.Lock()
	addr := n.addr
	n.mu.Unlock()
	owned := 0
	for _, gs := range n.groups {
		gs.mu.Lock()
		n.tickGroup(gs, addr)
		if gs.role == RoleOwner {
			owned++
		}
		gs.mu.Unlock()
	}
	obsGroupsOwned.Set(int64(owned))
}

func (n *Node) tickGroup(gs *group, addr string) {
	if gs.role == RoleOwner {
		cur, ok, err := n.leases.Renew(gs.id, n.cfg.NodeID, gs.epoch, addr, n.cfg.LeaseTTL)
		if err != nil {
			n.cfg.Logger.Printf("federation: group %d: renew: %v", gs.id, err)
			return
		}
		if !ok {
			usurper := "?"
			if cur != nil {
				usurper = fmt.Sprintf("%s@%d", cur.Owner, cur.Epoch)
			}
			n.cfg.Logger.Printf("federation: group %d: epoch moved to %s, demoting", gs.id, usurper)
			n.demote(gs)
			return
		}
		obsRenewals.Inc()
		return
	}

	// Follower: advance the standby, fence to the lease epoch, and
	// claim if the group is up for grabs.
	if err := n.pollGroup(gs); err != nil {
		n.cfg.Logger.Printf("federation: group %d: follow: %v", gs.id, err)
	}
	cur, err := n.leases.Read(gs.id)
	if err != nil {
		n.cfg.Logger.Printf("federation: group %d: lease read: %v", gs.id, err)
		return
	}
	if cur != nil {
		gs.follower.SetMinEpoch(cur.Epoch)
		if !cur.Expired(n.cfg.nowMs()) {
			return // live owner elsewhere (or racing claimant); keep following
		}
	} else if n.cfg.Ownership.Home(gs.id) != n.cfg.NodeID &&
		n.cfg.nowMs()-n.startedMs < 2*int64(n.cfg.LeaseTTL/time.Millisecond) {
		// Never-claimed group whose home owner is another node: give it
		// two TTLs to show up before claiming on its behalf, so a healthy
		// cluster boots with every group on its home owner instead of a
		// startup-order lottery. An *expired* lease is claimed by anyone
		// immediately — failover speed beats home placement.
		return
	}
	l, won, err := n.leases.Claim(gs.id, cur, n.cfg.NodeID, addr, n.cfg.LeaseTTL)
	if err != nil {
		n.cfg.Logger.Printf("federation: group %d: claim: %v", gs.id, err)
		return
	}
	if !won {
		if cur == nil || cur.Expired(n.cfg.nowMs()) {
			obsClaimRaces.Inc()
		}
		return
	}
	if err := n.promote(gs, l); err != nil {
		n.cfg.Logger.Printf("federation: group %d: promote at epoch %d: %v", gs.id, l.Epoch, err)
		// Surrender the claim: expire the lease so any replica
		// (including this one) can retry cleanly.
		l.Renewed = n.cfg.nowMs() - 100*int64(n.cfg.LeaseTTL/time.Millisecond)
		if werr := n.leases.write(l); werr != nil {
			n.cfg.Logger.Printf("federation: group %d: surrender lease: %v", gs.id, werr)
		}
		return
	}
	n.cfg.Logger.Printf("federation: group %d: owned at epoch %d (seq %d)", gs.id, l.Epoch, gs.ctrl.JournalSeq())
	obsTakeovers.Inc()
}

// Health reports this node's identity and per-group cluster state.
func (n *Node) Health() Health {
	n.mu.Lock()
	h := Health{NodeID: n.cfg.NodeID, Addr: n.addr, Owned: []int{}}
	n.mu.Unlock()
	for _, gs := range n.groups {
		gs.mu.Lock()
		gh := GroupHealth{
			Group: gs.id,
			Role:  gs.role,
			Epoch: gs.epoch,
			Home:  n.cfg.Ownership.Home(gs.id),
		}
		if gs.role == RoleOwner {
			gh.Owner = n.cfg.NodeID
			gh.Addr = h.Addr
			gh.FollowSeq = gs.ctrl.JournalSeq()
			h.Owned = append(h.Owned, gs.id)
		} else {
			gh.FollowSeq = gs.follower.LastSeq()
			if l, err := n.leases.Read(gs.id); err == nil && l != nil {
				gh.Owner, gh.Addr, gh.Epoch = l.Owner, l.Addr, l.Epoch
			}
		}
		gs.mu.Unlock()
		h.Groups = append(h.Groups, gh)
	}
	return h
}

// Controller returns the live controller for group g and whether this
// node currently owns it. Tests use it to reach group state directly.
func (n *Node) Controller(g int) (*protocol.Controller, bool) {
	gs := n.groups[g]
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.ctrl, gs.role == RoleOwner
}

// trackConn registers an accepted connection so shutdown can sever
// live sessions (their goroutines block in Receive otherwise). Returns
// false when the node is already stopping.
func (n *Node) trackConn(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrackConn(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// shutdown stops the accept loop, lease loop and every live session.
func (n *Node) shutdown() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ln := n.ln
	n.ln = nil
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	close(n.stop)
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
}

// Close stops the router and lease loop and shuts every group down.
// Owned groups release their journals through the controller's
// graceful close (final checkpoint); leases are left to expire so a
// successor claims the next epoch.
func (n *Node) Close() error {
	n.shutdown()
	var err error
	for _, gs := range n.groups {
		gs.mu.Lock()
		if cerr := gs.ctrl.Close(); cerr != nil && err == nil {
			err = cerr
		}
		gs.mu.Unlock()
	}
	return err
}

// kill simulates a crash for chaos tests: loops, listener and live
// sessions die, but group controllers and their journals are abandoned
// un-closed — no shutdown checkpoint, no lease release, exactly the
// on-disk state a kill -9 leaves.
func (n *Node) kill() { n.shutdown() }
