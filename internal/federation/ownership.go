// Package federation turns the single-process controller into an
// N-replica cluster that jointly owns the AP space.
//
// The AP and user ID spaces are partitioned into a fixed number of
// *groups* by the same FNV-1a hash the domain uses for in-process
// shards (domain.Hash). Each group has one *owner* replica at a time:
// the owner runs a journal-armed protocol.Controller for the group and
// appends every mutation to the group's journal under the cluster
// root; every other replica runs a standby controller fed by a
// journal.Follower tailing that journal. Ownership is arbitrated
// through lease files on the shared root (lease.go): a follower that
// observes an expired lease claims the next epoch, catches its standby
// up to the journal head, promotes it with AttachJournal and starts
// serving — cross-process failover built from the same pieces as the
// in-process registration generations.
//
// The routing front-end (router.go) accepts peers on each node,
// resolves the group from the hello (AP ID for agents, user ID for
// stations), serves locally owned groups through
// Controller.HandleSession and relays everything else to the owner
// named by the group's lease over the binary codec.
//
// Single-node deployments never construct a Node; the controller
// behaves exactly as before.
package federation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Ownership is the static group→home-owner map: which node is the
// preferred owner of each group when the cluster is healthy. Failover
// reassigns ownership dynamically through leases; the static map only
// decides who claims a group first and who returns to it after a
// rejoin heals.
type Ownership struct {
	groups int
	home   []string // group -> home node id
}

// GroupOfAP returns the federation group owning AP id.
func (o *Ownership) GroupOfAP(id trace.APID) int { return o.groupOf(string(id)) }

// GroupOfUser returns the federation group serving user id. Users hash
// with the same function as APs but over their own ID space: a station
// is served by one group's owner and associates among that group's
// APs.
func (o *Ownership) GroupOfUser(id trace.UserID) int { return o.groupOf(string(id)) }

func (o *Ownership) groupOf(id string) int {
	if o.groups <= 1 {
		return 0
	}
	return int(domain.Hash(id) % uint32(o.groups))
}

// Groups returns the group count.
func (o *Ownership) Groups() int { return o.groups }

// Home returns the home owner node for group g.
func (o *Ownership) Home(g int) string { return o.home[g] }

// HomeGroups returns the groups whose home owner is node, ascending.
func (o *Ownership) HomeGroups(node string) []int {
	var gs []int
	for g, n := range o.home {
		if n == node {
			gs = append(gs, g)
		}
	}
	return gs
}

// Nodes returns the distinct node IDs in the map, sorted.
func (o *Ownership) Nodes() []string {
	seen := make(map[string]bool, len(o.home))
	var ns []string
	for _, n := range o.home {
		if !seen[n] {
			seen[n] = true
			ns = append(ns, n)
		}
	}
	sort.Strings(ns)
	return ns
}

// String renders the map in ParseOwnership's spec format.
func (o *Ownership) String() string {
	parts := make([]string, o.groups)
	for g, n := range o.home {
		parts[g] = fmt.Sprintf("%d=%s", g, n)
	}
	return strings.Join(parts, ",")
}

// ParseOwnership parses an explicit "0=node-a,1=node-b,…" spec. Every
// group in [0, groups) must be assigned exactly once.
func ParseOwnership(spec string, groups int) (*Ownership, error) {
	if groups < 1 {
		return nil, fmt.Errorf("federation: ownership needs at least 1 group, got %d", groups)
	}
	home := make([]string, groups)
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 || kv[0] == "" || kv[1] == "" {
			return nil, fmt.Errorf("federation: ownership entry %q, want group=node", part)
		}
		g, err := strconv.Atoi(kv[0])
		if err != nil || g < 0 || g >= groups {
			return nil, fmt.Errorf("federation: ownership group %q out of [0,%d)", kv[0], groups)
		}
		if home[g] != "" {
			return nil, fmt.Errorf("federation: group %d assigned twice", g)
		}
		home[g] = kv[1]
	}
	for g, n := range home {
		if n == "" {
			return nil, fmt.Errorf("federation: group %d unassigned", g)
		}
	}
	return &Ownership{groups: groups, home: home}, nil
}

// DefaultOwnership assigns groups to nodes round-robin — the spec-free
// default for -peers clusters: group g is homed on nodes[g % len].
func DefaultOwnership(nodes []string, groups int) (*Ownership, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("federation: ownership needs at least one node")
	}
	if groups < 1 {
		groups = len(nodes)
	}
	home := make([]string, groups)
	for g := range home {
		home[g] = nodes[g%len(nodes)]
	}
	return &Ownership{groups: groups, home: home}, nil
}
