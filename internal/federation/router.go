package federation

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/s3wlan/s3wlan/internal/protocol"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Routing front-end: every replica accepts any peer. The hello names
// the peer (AP agent by AP ID, station by user ID), which hashes to a
// federation group; a locally owned group is served by the local
// controller via HandleSession, anything else is relayed message-wise
// over the binary codec to whichever node the group's lease names.
//
// The lease file is the routing truth: a relay target is only ever the
// current lease holder, and a node never serves a group it does not
// own — it replies with an error instead of forwarding again, so a
// misrouted connection terminates after one hop instead of looping.
// Clients retry through their normal reconnect path and land on the
// new owner once the lease settles.

// listenRouter starts the accept loop.
func (n *Node) listenRouter(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("federation: listen: %w", err)
	}
	bound := ln.Addr().String()
	if n.cfg.WrapListener != nil {
		ln = n.cfg.WrapListener(ln)
	}
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(ln)
	return bound, nil
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		raw, err := ln.Accept()
		if err != nil {
			select {
			case <-n.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if !n.trackConn(raw) {
			raw.Close()
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer n.untrackConn(raw)
			conn := protocol.NewServerConn(raw, n.cfg.Timeout)
			defer protocol.ContainPanic(n.cfg.Logger, conn)
			n.route(conn)
		}()
	}
}

// route reads the hello, resolves the owning group and either serves
// locally or relays to the lease holder. The hello runs under the same
// short deadline the controller's own accept path applies, so a peer
// that connects and says nothing cannot pin a router goroutine for the
// full relay timeout.
func (n *Node) route(conn *protocol.Conn) {
	defer conn.Close()
	full := conn.Timeout()
	if ht := protocol.DefaultHelloTimeout; full <= 0 || ht < full {
		conn.SetTimeout(ht)
	}
	hello, err := conn.Receive()
	if err != nil {
		return
	}
	conn.SetTimeout(full)
	if hello.Type != protocol.MsgHello {
		conn.Send(protocol.Message{Type: protocol.MsgError,
			Error: fmt.Sprintf("expected hello, got %s", hello.Type)})
		return
	}
	var g int
	switch hello.Role {
	case protocol.RoleAP:
		g = n.cfg.Ownership.GroupOfAP(trace.APID(hello.ID))
	case protocol.RoleStation:
		g = n.cfg.Ownership.GroupOfUser(trace.UserID(hello.ID))
	default:
		conn.Send(protocol.Message{Type: protocol.MsgError,
			Error: fmt.Sprintf("unknown role %q", hello.Role)})
		return
	}

	gs := n.groups[g]
	gs.mu.Lock()
	ctrl, owned := gs.ctrl, gs.role == RoleOwner
	gs.mu.Unlock()
	if owned {
		ctrl.HandleSession(conn, hello)
		return
	}

	l, err := n.leases.Read(g)
	if err != nil || l == nil || l.Addr == "" || l.Owner == n.cfg.NodeID {
		// No owner (yet), or the lease names us before promotion
		// finished: refuse rather than forward — one hop, never a loop.
		conn.Send(protocol.Message{Type: protocol.MsgError,
			Error: fmt.Sprintf("group %d has no live owner; retry", g)})
		return
	}
	// Circuit breaker: while the group's breaker is open, refuse locally
	// with MsgBusy in microseconds instead of paying a dial timeout per
	// peer against a dead owner. A lease move resets the breaker inside
	// Allow; a cooled-down breaker lets this connection through as its
	// half-open probe.
	br := n.breakers[g]
	if !br.Allow(l.Addr) {
		obsBreakerRefusals.Inc()
		conn.Send(protocol.Message{Type: protocol.MsgBusy,
			Error:        fmt.Sprintf("group %d owner circuit open; retry", g),
			RetryAfterMs: int64(n.breakerCooldown() / time.Millisecond)})
		return
	}
	// The breaker learns the establishment outcome, not the session
	// outcome: relay invokes br.Success the moment the owner's first
	// reply lands (sessions are long-lived — waiting for session end
	// would leave a half-open probe pinning the whole group on one
	// probe's lifetime), and only a relay that never reached that point
	// counts a Failure. A session's eventual teardown never touches the
	// breaker — pumps failing because the owner died later is the next
	// establishment attempt's news, and a long session ending cleanly
	// must not reset a breaker that tripped in the meantime.
	if !n.relay(conn, hello, l.Addr, br.Success) {
		br.Failure()
	}
}

// breakerCooldown resolves the configured breaker cooldown (the
// MsgBusy retry advice an open breaker sends).
func (n *Node) breakerCooldown() time.Duration {
	if n.cfg.BreakerCooldown > 0 {
		return n.cfg.BreakerCooldown
	}
	return time.Second
}

// relay pumps one peer connection to the group owner at addr over the
// binary codec: the hello first, then each direction batch-for-batch
// (ReceiveBatch/SendBatch preserve the peer's frame boundaries, so a
// group agent's coalesced report batch stays one frame on the owner
// side). The relay is transparent: decisions, errors and acks all come
// from the owner.
//
// The group's circuit breaker feeds off the *establishment* outcome:
// established() fires as soon as the owner produces its first reply
// batch (the hello ack or a policy error — either proves a live
// owner), and the false return marks a relay that never got there —
// the owner could not be dialed, refused the hello, or sat silent past
// the relay deadline. Waiting for the first reply is what makes a
// *stalled* owner — one that accepts connections and then hangs —
// count against the breaker budget instead of passing for healthy.
// Nothing after establishment reports to the breaker: relay() itself
// returns only at session end, far too late for a half-open probe's
// verdict, and a session outliving its owner must not reset a breaker
// that correctly tripped while the session ran.
func (n *Node) relay(client *protocol.Conn, hello protocol.Message, addr string, established func()) bool {
	obsRelays.Inc()
	raw, err := net.DialTimeout("tcp", addr, n.cfg.Timeout)
	if err != nil {
		obsRelayErrors.Inc()
		client.Send(protocol.Message{Type: protocol.MsgError,
			Error: fmt.Sprintf("group owner unreachable: %v", err)})
		return false
	}
	owner := protocol.NewConnCodec(raw, n.cfg.Timeout, protocol.CodecBinary)
	defer owner.Close()
	if err := owner.Send(hello); err != nil {
		obsRelayErrors.Inc()
		client.Send(protocol.Message{Type: protocol.MsgError,
			Error: fmt.Sprintf("relay hello: %v", err)})
		return false
	}
	first, err := owner.ReceiveBatch(nil)
	if err != nil {
		obsRelayErrors.Inc()
		client.Send(protocol.Message{Type: protocol.MsgError,
			Error: fmt.Sprintf("relay: owner unresponsive: %v", err)})
		return false
	}
	established()
	if err := client.SendBatch(first); err != nil {
		obsRelayErrors.Inc()
		return true // the owner is fine; the client side failed
	}

	// Downstream pump (owner → client) runs aside; the upstream pump
	// (client → owner) runs here. Either side closing or failing tears
	// both connections down, which unblocks the other pump.
	done := make(chan struct{})
	go func() {
		defer close(done)
		pump(owner, client)
		client.Close()
	}()
	if err := pump(client, owner); err != nil && !errors.Is(err, io.EOF) {
		obsRelayErrors.Inc()
	}
	owner.Close()
	<-done
	return true
}

// pump copies message batches from src to dst until either side fails.
func pump(src, dst *protocol.Conn) error {
	var buf []protocol.Message
	for {
		var err error
		buf, err = src.ReceiveBatch(buf)
		if err != nil {
			return err
		}
		if err := dst.SendBatch(buf); err != nil {
			return err
		}
	}
}

// WaitOwner blocks until some node owns group g's lease (fresh and
// addressed) or the deadline passes — a convenience for tests and the
// s3proto cluster bring-up to await settling.
func (n *Node) WaitOwner(g int, timeout time.Duration) (*Lease, error) {
	deadline := time.Now().Add(timeout)
	for {
		l, err := n.leases.Read(g)
		if err == nil && l != nil && l.Addr != "" && !l.Expired(n.cfg.nowMs()) {
			return l, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("federation: group %d: no owner within %v", g, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
