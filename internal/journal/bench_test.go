package journal

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// benchRecord is a realistic single-placement association record — the
// dominant journal traffic in a live controller.
func benchRecord(i int) Record {
	return Record{
		Op: OpAssoc, TS: int64(1000 + i),
		Placements: []Placement{{
			User:      trace.UserID(fmt.Sprintf("user-%06d", i%4096)),
			AP:        trace.APID(fmt.Sprintf("ap-%03d", i%64)),
			DemandBps: 50e3,
		}},
	}
}

// benchAppend measures append throughput under one fsync policy.
func benchAppend(b *testing.B, pol FsyncPolicy) {
	j, _, err := Open(b.TempDir(), Options{Fsync: pol})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalAppend publishes the durability/throughput trade-off:
// FsyncAlways pays one disk flush per record, FsyncInterval amortizes
// it onto a background tick, FsyncOff leaves flushing to the OS.
func BenchmarkJournalAppend(b *testing.B) {
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		b.Run("fsync="+pol.String(), func(b *testing.B) {
			benchAppend(b, pol)
		})
	}
}

// buildRecoverDir writes a journal with one checkpoint followed by
// `tail` record frames — the shape BenchmarkRecover replays.
func buildRecoverDir(tb testing.TB, dir string, tail int) {
	tb.Helper()
	ckpt := []byte(`{"domain":{"version":1}}`)
	j, _, err := Open(dir, Options{
		Fsync: FsyncOff,
		State: func(w io.Writer) error { _, err := w.Write(ckpt); return err },
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := j.Append(benchRecord(0)); err != nil {
		tb.Fatal(err)
	}
	if err := j.Checkpoint(); err != nil { // rotate; the rest is pure tail
		tb.Fatal(err)
	}
	for i := 0; i < tail; i++ {
		if err := j.Append(benchRecord(i + 1)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkRecover measures cold-start recovery: newest checkpoint plus
// a 100k-record tail decoded and parsed.
func BenchmarkRecover(b *testing.B) {
	const tail = 100_000
	dir := b.TempDir()
	buildRecoverDir(b, dir, tail)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := Recover(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != tail {
			b.Fatalf("recovered %d records, want %d", len(rec.Records), tail)
		}
	}
}

// TestRecover100kUnder5s pins the ISSUE budget: recovering a 100k-event
// tail from the latest checkpoint must finish in under 5 seconds.
func TestRecover100kUnder5s(t *testing.T) {
	if testing.Short() {
		t.Skip("recovery budget check skipped in -short")
	}
	const tail = 100_000
	dir := t.TempDir()
	buildRecoverDir(t, dir, tail)
	start := time.Now()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	took := time.Since(start)
	if len(rec.Records) != tail {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), tail)
	}
	if took > 5*time.Second {
		t.Fatalf("recovery of %d records took %v, budget 5s", tail, took)
	}
	t.Logf("recovered %d records in %v", tail, took)
}

// TestJournalBenchJSON emits append throughput per fsync policy and the
// 100k recovery time as machine-readable JSON to the path named by the
// JOURNAL_BENCH_JSON environment variable. Skipped when unset; CI
// points it at BENCH_journal.json.
func TestJournalBenchJSON(t *testing.T) {
	path := os.Getenv("JOURNAL_BENCH_JSON")
	if path == "" {
		t.Skip("JOURNAL_BENCH_JSON not set")
	}
	type row struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
		Ops     int     `json:"ops"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		MaxProcs  int    `json:"gomaxprocs"`
		Rows      []row  `json:"rows"`
	}{Benchmark: "Journal", MaxProcs: runtime.GOMAXPROCS(0)}
	for _, pol := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncOff} {
		pol := pol
		r := testing.Benchmark(func(b *testing.B) { benchAppend(b, pol) })
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		out.Rows = append(out.Rows, row{
			Name:    "JournalAppend/fsync=" + pol.String(),
			NsPerOp: ns,
			Ops:     r.N,
		})
		t.Logf("append fsync=%s: %.0f ns/op (%d ops)", pol, ns, r.N)
	}
	r := testing.Benchmark(func(b *testing.B) { BenchmarkRecover(b) })
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	out.Rows = append(out.Rows, row{Name: "Recover/tail=100k", NsPerOp: ns, Ops: r.N})
	t.Logf("recover 100k tail: %.2f ms/op (%d ops)", ns/1e6, r.N)

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
