// Package journal is the controller's durability layer: an append-only,
// length-prefixed, CRC32C-framed write-ahead log of association-domain
// mutations, plus periodic checkpoints and a recovery path that survives
// torn tails and corrupt frames.
//
// # Frame format
//
// Every record is one frame:
//
//	magic   uint32 LE  (0xAA57_33F5)
//	length  uint32 LE  (payload bytes, ≤ MaxRecordBytes)
//	crc     uint32 LE  (CRC-32C / Castagnoli, of the payload)
//	payload []byte     (one JSON-encoded Record)
//
// A crash can truncate the final frame at any byte offset; recovery
// treats an incomplete trailing frame as a torn tail and stops there. A
// bit flip inside an earlier frame fails its CRC; recovery skips the
// frame (re-synchronizing on the magic marker when the length field
// itself was hit) and keeps going, counting the damage instead of
// failing the restart.
//
// The framing itself is exported as EncodeFrame and DecodeFrames so
// other bounded on-disk logs can reuse it; the flight recorder
// (internal/obs/flight) frames its metric snapshots this way.
//
// # Checkpoints and rotation
//
// Every CheckpointEvery appended records the journal asks its owner for
// a full state snapshot (Options.State), writes it atomically
// (temp + fsync + rename) as ckpt-<seq>.snap, rotates to a fresh
// segment seg-<seq+1>.wal, and deletes segments and checkpoints made
// redundant by the two most recent checkpoints. Recovery loads the
// newest checkpoint that validates (falling back to its predecessor if
// the newest is damaged) and replays every surviving record with a
// sequence number beyond it.
//
// Appends are serialized by the caller's commit path; the journal adds
// only its own file-level locking, so Append is safe for concurrent use
// regardless.
//
// # Observability
//
// The package registers journal.* metrics with internal/obs (appends,
// append latency, fsyncs, checkpoints, rotations, recovery tallies);
// docs/OBSERVABILITY.md catalogs each one.
package journal
