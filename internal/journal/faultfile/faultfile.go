// Package faultfile wraps a journal segment file with seeded,
// schedulable write-path fault injection — the storage-side sibling of
// internal/protocol/faultconn. It manufactures exactly the failures a
// write-ahead log must survive: short writes, a torn tail at an
// arbitrary byte offset (everything past the offset silently never
// reaches "disk", as after a kill -9 racing the page cache), flipped
// bits, and failed fsyncs. Every probabilistic decision comes from a
// seeded generator, so a failing schedule replays exactly.
package faultfile

import (
	"errors"
	"io"
	"math/rand"
	"sync"
)

// ErrInjected marks a failure manufactured by the wrapper.
var ErrInjected = errors.New("faultfile: injected error")

// Sink is the write side faultfile decorates — the same surface the
// journal requires of its segment files.
type Sink interface {
	io.Writer
	Sync() error
	Close() error
}

// Config is a fault schedule. Zero values inject nothing, so Config{}
// is a transparent wrapper.
type Config struct {
	// Seed seeds the decision stream.
	Seed int64
	// ShortWriteProb truncates a write to a random strict prefix,
	// returning the short count with ErrInjected (the io.Writer
	// contract for incomplete writes).
	ShortWriteProb float64
	// TornAtByte, when > 0, silently discards every byte past that
	// cumulative offset: writes report success but the tail never lands,
	// leaving a torn final record for recovery to cope with.
	TornAtByte int64
	// BitFlipProb flips one random bit of a write's payload on its way
	// through — the frame lands with a CRC that cannot match.
	BitFlipProb float64
	// SyncErrProb fails a Sync call with ErrInjected.
	SyncErrProb float64
	// FailSyncAfter, when > 0, fails every Sync after that many
	// successful ones — a device that degrades mid-run.
	FailSyncAfter int
}

// Source supplies a live fault schedule, consulted once per operation —
// the hook a scenario engine (internal/faults) uses to move an open file
// between fault phases without re-wrapping it.
type Source func() Config

// File decorates a Sink with the fault schedule in Config. Safe for
// concurrent use.
type File struct {
	sink Sink
	cfg  Config
	src  Source // when set, overrides cfg per operation

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	syncs   int
}

// Wrap decorates sink with the fault schedule cfg.
func Wrap(sink Sink, cfg Config) *File {
	return &File{sink: sink, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// WrapDynamic decorates sink with a schedule read from src before every
// operation; src's Seed field is ignored (the decision stream is seeded
// once, by seed, so runs stay reproducible across phase flips).
func WrapDynamic(sink Sink, seed int64, src Source) *File {
	return &File{sink: sink, src: src, rng: rand.New(rand.NewSource(seed))}
}

// cfgLocked resolves the schedule for one operation. Callers hold f.mu.
func (f *File) cfgLocked() Config {
	if f.src != nil {
		return f.src()
	}
	return f.cfg
}

// Written returns the cumulative bytes accepted (including bytes
// silently discarded past TornAtByte, which the writer believes landed).
func (f *File) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(p) == 0 {
		return 0, nil
	}
	cfg := f.cfgLocked()
	if cfg.ShortWriteProb > 0 && f.rng.Float64() < cfg.ShortWriteProb {
		n := f.rng.Intn(len(p)) // strict prefix, possibly empty
		if n > 0 {
			if _, err := f.writeThroughLocked(cfg, p[:n]); err != nil {
				return 0, err
			}
		}
		f.written += int64(n)
		return n, ErrInjected
	}
	buf := p
	if cfg.BitFlipProb > 0 && f.rng.Float64() < cfg.BitFlipProb {
		buf = append([]byte(nil), p...)
		bit := f.rng.Intn(len(buf) * 8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
	if _, err := f.writeThroughLocked(cfg, buf); err != nil {
		return 0, err
	}
	f.written += int64(len(p))
	return len(p), nil
}

// writeThroughLocked forwards bytes to the sink, clipping everything at
// and past the torn-tail offset.
func (f *File) writeThroughLocked(cfg Config, p []byte) (int, error) {
	if cfg.TornAtByte > 0 {
		remaining := cfg.TornAtByte - f.written
		if remaining <= 0 {
			return len(p), nil // silently gone
		}
		if int64(len(p)) > remaining {
			if _, err := f.sink.Write(p[:remaining]); err != nil {
				return 0, err
			}
			return len(p), nil
		}
	}
	return f.sink.Write(p)
}

func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	cfg := f.cfgLocked()
	f.syncs++
	if cfg.FailSyncAfter > 0 && f.syncs > cfg.FailSyncAfter {
		return ErrInjected
	}
	if cfg.SyncErrProb > 0 && f.rng.Float64() < cfg.SyncErrProb {
		return ErrInjected
	}
	return f.sink.Sync()
}

func (f *File) Close() error { return f.sink.Close() }
