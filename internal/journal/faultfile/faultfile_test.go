package faultfile

import (
	"bytes"
	"errors"
	"testing"
)

// memSink is an in-memory Sink recording everything written through.
type memSink struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memSink) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memSink) Sync() error                 { m.syncs++; return nil }
func (m *memSink) Close() error                { m.closed = true; return nil }

func TestTransparentWhenZero(t *testing.T) {
	sink := &memSink{}
	f := Wrap(sink, Config{})
	n, err := f.Write([]byte("hello"))
	if n != 5 || err != nil {
		t.Fatalf("Write = %d, %v", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.buf.String() != "hello" || sink.syncs != 1 || !sink.closed {
		t.Fatalf("sink state: %q syncs=%d closed=%v", sink.buf.String(), sink.syncs, sink.closed)
	}
}

func TestTornAtByteClipsSilently(t *testing.T) {
	sink := &memSink{}
	f := Wrap(sink, Config{TornAtByte: 7})
	for _, chunk := range []string{"abcde", "fghij", "klmno"} {
		n, err := f.Write([]byte(chunk))
		if n != len(chunk) || err != nil {
			t.Fatalf("Write(%q) = %d, %v (torn writes must report success)", chunk, n, err)
		}
	}
	if sink.buf.String() != "abcdefg" {
		t.Fatalf("sink holds %q, want first 7 bytes only", sink.buf.String())
	}
	if f.Written() != 15 {
		t.Fatalf("Written = %d, want 15 (writer-believed bytes)", f.Written())
	}
}

func TestShortWriteReturnsPrefixAndError(t *testing.T) {
	sink := &memSink{}
	f := Wrap(sink, Config{Seed: 3, ShortWriteProb: 1})
	p := []byte("0123456789")
	n, err := f.Write(p)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n < 0 || n >= len(p) {
		t.Fatalf("short write count %d must be a strict prefix of %d", n, len(p))
	}
	if sink.buf.Len() != n {
		t.Fatalf("sink received %d bytes, short count was %d", sink.buf.Len(), n)
	}
}

func TestBitFlipDamagesExactlyOneBit(t *testing.T) {
	sink := &memSink{}
	f := Wrap(sink, Config{Seed: 5, BitFlipProb: 1})
	p := bytes.Repeat([]byte{0x00}, 32)
	if _, err := f.Write(p); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for _, b := range sink.buf.Bytes() {
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diff)
	}
	for i, b := range p {
		if b != 0 {
			t.Fatalf("caller's buffer mutated at %d", i)
		}
	}
}

func TestFailSyncAfter(t *testing.T) {
	sink := &memSink{}
	f := Wrap(sink, Config{FailSyncAfter: 2})
	for i := 0; i < 2; i++ {
		if err := f.Sync(); err != nil {
			t.Fatalf("sync %d: %v", i, err)
		}
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 3 = %v, want ErrInjected", err)
	}
}

// TestSeededReplay: identical seeds produce identical fault schedules.
func TestSeededReplay(t *testing.T) {
	run := func() string {
		sink := &memSink{}
		f := Wrap(sink, Config{Seed: 11, ShortWriteProb: 0.3, BitFlipProb: 0.3})
		for i := 0; i < 20; i++ {
			f.Write(bytes.Repeat([]byte{byte(i)}, 16))
		}
		return sink.buf.String()
	}
	if run() != run() {
		t.Fatal("same seed produced different byte streams")
	}
}
