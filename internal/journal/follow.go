package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"github.com/s3wlan/s3wlan/internal/obs"
)

// Follow-mode health, exported through the obs registry. Followers are
// the replication consumers of a federated cluster: every record a
// shard owner appends should eventually show up in follow.records on
// each of its followers, and fenced/seq_gaps should stay zero outside
// chaos runs.
var (
	obsFollowRecords = obs.GetCounter("journal.follow.records", "Records delivered by follow-mode readers tailing live journals")
	obsFollowResyncs = obs.GetCounter("journal.follow.resyncs", "Follow-mode checkpoint resyncs after pruning outran the reader's position")
	obsFollowFenced  = obs.GetCounter("journal.follow.fenced", "Follow-mode records dropped for carrying a stale ownership epoch")
	obsFollowGaps    = obs.GetCounter("journal.follow.seq_gaps", "Sequence discontinuities observed while tailing (lost records skipped past)")
)

// FollowStats summarizes one Follower's lifetime accounting.
type FollowStats struct {
	// Records counts records delivered exactly once, in sequence order.
	Records uint64
	// Resyncs counts checkpoint resyncs: the reader fell so far behind
	// that pruning removed segments it still needed, and it restarted
	// from the newest checkpoint instead.
	Resyncs uint64
	// Fenced counts records dropped because their epoch was below the
	// highest epoch already observed (or below SetMinEpoch) — writes by
	// a superseded owner that lost its lease.
	Fenced uint64
	// SeqGaps counts sequence discontinuities skipped past (records
	// lost to corruption or an unflushed crash; the owner's own
	// recovery tolerates exactly the same losses).
	SeqGaps uint64
	// Epoch is the highest record epoch observed in the stream.
	Epoch uint64
	// LastSeq is the sequence number of the last delivered record (or
	// the checkpoint sequence after a resync).
	LastSeq uint64
}

// Follower tails a journal directory that another process is actively
// appending to — the replication stream of a federated controller. It
// reads the same segment/checkpoint layout Recover does, but
// incrementally: each Poll delivers every record that became complete
// on disk since the previous Poll, exactly once, in sequence order,
// across segment rotations, checkpoint pruning and torn tails (an
// incomplete trailing frame is simply not ready yet; the next Poll
// picks it up once the writer finishes it).
//
// Exactly-once holds across every Poll that returns nil. When the
// apply callback fails, the reader's position stays at the last
// applied record, so the failing record is redelivered on the next
// Poll (at-least-once across failures).
//
// A Follower is not safe for concurrent use.
type Follower struct {
	dir      string
	lastSeq  uint64
	minEpoch uint64
	stats    FollowStats
}

// NewFollower tails dir, delivering records with Seq > afterSeq. A
// fresh follower that will first load the owner's checkpoint through a
// resync passes 0 and a resync callback to Poll.
func NewFollower(dir string, afterSeq uint64) *Follower {
	return &Follower{dir: dir, lastSeq: afterSeq, stats: FollowStats{LastSeq: afterSeq}}
}

// LastSeq returns the sequence number of the last delivered record.
func (f *Follower) LastSeq() uint64 { return f.lastSeq }

// Stats returns the follower's lifetime accounting.
func (f *Follower) Stats() FollowStats {
	st := f.stats
	st.LastSeq = f.lastSeq
	return st
}

// SetMinEpoch fences out records below epoch e regardless of what the
// stream itself has shown — the caller learned the authoritative
// ownership epoch out of band (from the lease) and any older writer is
// known superseded.
func (f *Follower) SetMinEpoch(e uint64) {
	if e > f.minEpoch {
		f.minEpoch = e
	}
}

// ErrResyncNeeded reports that the reader's position was pruned away
// and no valid checkpoint is available to resync from — the caller
// should retry later (the writer may be mid-checkpoint) or rebuild.
var ErrResyncNeeded = errors.New("journal: follow position pruned and no valid checkpoint to resync from")

// Poll scans the directory once. Records that became complete since
// the last Poll are handed to apply in sequence order. If pruning
// removed segments the reader still needed, Poll first hands the
// newest valid checkpoint to resync — which must replace the
// consumer's state wholesale — and continues from its sequence number;
// a nil resync callback makes that situation an error. Poll returns
// the number of records applied.
func (f *Follower) Poll(resync func(checkpoint []byte, seq uint64) error, apply func(Record) error) (int, error) {
	ckpts, segs, err := listDir(f.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil // owner has not created the journal yet
		}
		return 0, err
	}

	// Pruned past our position? The oldest surviving segment starting
	// beyond lastSeq+1 means records we never saw are gone — but the
	// pruning invariant guarantees a checkpoint covers them.
	if len(segs) > 0 && segs[0].seq > f.lastSeq+1 {
		if err := f.resyncFromCheckpoint(ckpts, resync); err != nil {
			return 0, err
		}
	}

	applied := 0
	for i, seg := range segs {
		// Skip segments every record of which is already delivered: the
		// next segment's first sequence number bounds this one's last.
		if i+1 < len(segs) && segs[i+1].seq <= f.lastSeq+1 {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(f.dir, seg.name))
		if rerr != nil {
			// Pruned between listing and reading; records it held are
			// checkpoint-covered, the next Poll resyncs if needed.
			continue
		}
		recs, _, _ := segmentRecords(data, f.lastSeq, f.fenceEpoch())
		for _, r := range recs {
			if r.Epoch < f.fenceEpoch() {
				f.stats.Fenced++
				obsFollowFenced.Inc()
				continue
			}
			if r.Seq > f.lastSeq+1 {
				f.stats.SeqGaps++
				obsFollowGaps.Inc()
			}
			if err := apply(r); err != nil {
				return applied, fmt.Errorf("journal: follow apply record %d: %w", r.Seq, err)
			}
			f.lastSeq = r.Seq
			if r.Epoch > f.stats.Epoch {
				f.stats.Epoch = r.Epoch
			}
			f.stats.Records++
			obsFollowRecords.Inc()
			applied++
		}
	}
	return applied, nil
}

// fenceEpoch is the lowest record epoch still accepted: the larger of
// the externally announced minimum and the highest epoch the stream
// itself has shown.
func (f *Follower) fenceEpoch() uint64 {
	if f.stats.Epoch > f.minEpoch {
		return f.stats.Epoch
	}
	return f.minEpoch
}

// resyncFromCheckpoint restarts the reader from the newest valid
// checkpoint, handing its payload to the caller.
func (f *Follower) resyncFromCheckpoint(ckpts []dirEntry, resync func([]byte, uint64) error) error {
	if resync == nil {
		return ErrResyncNeeded
	}
	for i := len(ckpts) - 1; i >= 0; i-- {
		if ckpts[i].seq <= f.lastSeq {
			break // older than our position: useless and a regression
		}
		data, err := os.ReadFile(filepath.Join(f.dir, ckpts[i].name))
		if err != nil {
			continue
		}
		payloads, st := DecodeFramesStats(data)
		if len(payloads) != 1 || st.Corrupt > 0 || st.Torn {
			continue
		}
		if err := resync(payloads[0], ckpts[i].seq); err != nil {
			return fmt.Errorf("journal: follow resync at %d: %w", ckpts[i].seq, err)
		}
		f.lastSeq = ckpts[i].seq
		f.stats.Resyncs++
		obsFollowResyncs.Inc()
		return nil
	}
	return ErrResyncNeeded
}

// segmentRecords decodes the records of one segment image that are not
// yet delivered (Seq > after) and not fenced (Epoch >= minEpoch),
// preserving order. It is the pure core of Poll, shared with the
// replication-stream fuzz harness; it never panics on hostile input.
func segmentRecords(data []byte, after, minEpoch uint64) (recs []Record, st FrameStats, undecodable int) {
	payloads, st := DecodeFramesStats(data)
	last := after
	for _, payload := range payloads {
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			undecodable++
			continue
		}
		if r.Seq <= last {
			continue
		}
		if r.Epoch < minEpoch {
			// Reported to the caller for fencing accounting.
			recs = append(recs, r)
			continue
		}
		recs = append(recs, r)
		last = r.Seq
	}
	return recs, st, undecodable
}
