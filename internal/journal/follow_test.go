package journal

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// followCollector gathers what a Follower delivers: applied records and
// any checkpoint resyncs.
type followCollector struct {
	recs    []Record
	ckpts   []uint64 // resync checkpoint seqs, in order
	ckptDoc []byte   // last resync payload
}

func (c *followCollector) resync(payload []byte, seq uint64) error {
	c.ckpts = append(c.ckpts, seq)
	c.ckptDoc = append([]byte(nil), payload...)
	return nil
}

func (c *followCollector) apply(r Record) error {
	c.recs = append(c.recs, r)
	return nil
}

// assertExactlyOnce fails unless the collected records are exactly the
// contiguous sequence (from, from+1, ..., to].
func assertExactlyOnce(t *testing.T, recs []Record, from, to uint64) {
	t.Helper()
	want := to - from
	if uint64(len(recs)) != want {
		t.Fatalf("delivered %d records, want %d (seqs %d..%d]", len(recs), want, from, to)
	}
	for i, r := range recs {
		if r.Seq != from+uint64(i)+1 {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, from+uint64(i)+1)
		}
	}
}

// coverageCollector enforces the replication-stream delivery contract
// as events arrive: every sequence number is covered exactly once —
// either by a record applied in strict order, or wholesale by a resync
// checkpoint that replaces all state up to its sequence. No duplicate,
// no gap, ever.
type coverageCollector struct {
	t       *testing.T
	covered uint64 // highest seq covered so far
	applied uint64 // records delivered (not via checkpoint)
	resyncs int
}

func (c *coverageCollector) resync(payload []byte, seq uint64) error {
	c.t.Helper()
	if seq <= c.covered {
		c.t.Fatalf("resync to checkpoint %d behind covered position %d", seq, c.covered)
	}
	var doc struct {
		Applied uint64 `json:"applied"`
	}
	if err := json.Unmarshal(payload, &doc); err != nil {
		c.t.Fatalf("resync payload %q: %v", payload, err)
	}
	if doc.Applied != seq {
		c.t.Fatalf("checkpoint at seq %d carries state for %d appends", seq, doc.Applied)
	}
	c.covered = seq
	c.resyncs++
	return nil
}

func (c *coverageCollector) apply(r Record) error {
	c.t.Helper()
	if r.Seq != c.covered+1 {
		c.t.Fatalf("record seq %d delivered at covered position %d (duplicate or gap)", r.Seq, c.covered)
	}
	c.covered = r.Seq
	c.applied++
	return nil
}

// TestFollowExactlyOnceLive is the replication-stream property test: a
// follower polling a live leader at random cadence observes every
// sequence number exactly once — applied in strict order, or subsumed
// wholesale by a checkpoint resync when pruning outran it — across
// segment rotations and checkpoint pruning. Swept over seeds so poll
// points land on every phase of the rotation cycle.
func TestFollowExactlyOnceLive(t *testing.T) {
	const n = 120
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			st := &checkpointState{}
			j, _, err := Open(dir, Options{
				Fsync:           FsyncOff,
				FlushEachAppend: true,
				CheckpointEvery: 7,
				State:           st.write,
				Epoch:           1,
			})
			if err != nil {
				t.Fatal(err)
			}
			f := NewFollower(dir, 0)
			col := &coverageCollector{t: t}
			rng := rand.New(rand.NewSource(seed))
			next := 1 + rng.Intn(9)
			for i := 0; i < n; i++ {
				st.n++
				if err := j.Append(testRecord(i)); err != nil {
					t.Fatal(err)
				}
				if i+1 == next {
					if _, err := f.Poll(col.resync, col.apply); err != nil {
						t.Fatalf("poll after %d appends: %v", i+1, err)
					}
					next += 1 + rng.Intn(9)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := f.Poll(col.resync, col.apply); err != nil {
				t.Fatal(err)
			}
			if col.covered != n {
				t.Fatalf("covered up to seq %d, want %d", col.covered, n)
			}
			s := f.Stats()
			if s.Records != col.applied || int(s.Resyncs) != col.resyncs {
				t.Fatalf("stats %+v disagree with collector (applied %d, resyncs %d)", s, col.applied, col.resyncs)
			}
			if s.Fenced != 0 || s.SeqGaps != 0 || s.Epoch != 1 || s.LastSeq != n {
				t.Fatalf("stats %+v", s)
			}
		})
	}
}

// TestFollowKeptUpNeverResyncs pins the no-lag guarantee: a follower
// polling after every append stays ahead of pruning and sees every
// record itself, with zero checkpoint resyncs.
func TestFollowKeptUpNeverResyncs(t *testing.T) {
	dir := t.TempDir()
	st := &checkpointState{}
	j, _, err := Open(dir, Options{
		Fsync:           FsyncOff,
		FlushEachAppend: true,
		CheckpointEvery: 5,
		State:           st.write,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 37
	f := NewFollower(dir, 0)
	col := &followCollector{}
	for i := 0; i < n; i++ {
		st.n++
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Poll(col.resync, col.apply); err != nil {
			t.Fatalf("poll after append %d: %v", i+1, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(col.ckpts) != 0 {
		t.Fatalf("kept-up follower resynced at %v", col.ckpts)
	}
	assertExactlyOnce(t, col.recs, 0, n)
}

// TestFollowCrashPointSweep reuses the PR 5 crash-point harness shape
// for the follow-mode reader: the leader's segment bytes are revealed
// to the follower one prefix at a time — every byte cut, including
// mid-header and mid-payload — and each record must be delivered
// exactly once, at precisely the first cut where its frame is complete
// (every earlier cut inside the frame is a torn tail the follower must
// wait out, never a duplicate or a skip).
func TestFollowCrashPointSweep(t *testing.T) {
	src := t.TempDir()
	j, _, err := Open(src, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := listDir(src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(src, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}
	payloads, corrupt, torn := DecodeFrames(full)
	if corrupt != 0 || torn || len(payloads) != n {
		t.Fatalf("clean segment decode: %d payloads, corrupt=%d torn=%v", len(payloads), corrupt, torn)
	}
	frameEnd := make([]int, n+1)
	for k, p := range payloads {
		frameEnd[k+1] = frameEnd[k] + frameHeader + len(p)
	}

	dir := t.TempDir()
	seg := segmentPath(dir, 1)
	f := NewFollower(dir, 0)
	col := &followCollector{}
	delivered := 0
	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(seg, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		applied, err := f.Poll(col.resync, col.apply)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		delivered += applied
		wantRecords := 0
		for wantRecords < n && frameEnd[wantRecords+1] <= cut {
			wantRecords++
		}
		if delivered != wantRecords {
			t.Fatalf("cut %d: %d records delivered, want %d", cut, delivered, wantRecords)
		}
	}
	assertExactlyOnce(t, col.recs, 0, n)
}

// TestFollowLaggedResync starts a follower against a journal whose
// early segments are already pruned: the first poll must resync from
// the newest checkpoint and deliver only the tail beyond it.
func TestFollowLaggedResync(t *testing.T) {
	dir := t.TempDir()
	st := &checkpointState{}
	j, _, err := Open(dir, Options{
		Fsync:           FsyncOff,
		FlushEachAppend: true,
		CheckpointEvery: 5,
		State:           st.write,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 23 // checkpoints at 5,10,15,20; retention keeps 15 and 20,
	// and segments covered by 15 are pruned — a fresh follower cannot
	// reach seq 1 from segments alone.
	for i := 0; i < n; i++ {
		st.n++
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f := NewFollower(dir, 0)
	col := &followCollector{}
	if _, err := f.Poll(col.resync, col.apply); err != nil {
		t.Fatal(err)
	}
	if len(col.ckpts) != 1 {
		t.Fatalf("resyncs %v, want exactly one", col.ckpts)
	}
	ckptSeq := col.ckpts[0]
	var doc struct {
		Applied int `json:"applied"`
	}
	if err := json.Unmarshal(col.ckptDoc, &doc); err != nil {
		t.Fatalf("resync payload %q: %v", col.ckptDoc, err)
	}
	if uint64(doc.Applied) != ckptSeq {
		t.Fatalf("checkpoint payload says %d applied, seq is %d", doc.Applied, ckptSeq)
	}
	assertExactlyOnce(t, col.recs, ckptSeq, n)
	if s := f.Stats(); s.Resyncs != 1 || s.LastSeq != n {
		t.Fatalf("stats %+v", s)
	}

	// A follower without a resync callback must refuse, not skip.
	bare := NewFollower(dir, 0)
	if _, err := bare.Poll(nil, col.apply); err == nil {
		t.Fatal("poll without resync callback succeeded past pruned records")
	}
}

// TestFollowEpochFencing proves a superseded owner's records are
// dropped once the follower knows a higher ownership epoch — the
// cross-process analogue of the in-process registration generations.
func TestFollowEpochFencing(t *testing.T) {
	dir := t.TempDir()
	j1, _, err := Open(dir, Options{Fsync: FsyncOff, FlushEachAppend: true, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j1.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// The follower learns epoch 2 from the lease before the takeover
	// owner writes anything: epoch-1 records already delivered stay
	// delivered, but any epoch-1 record arriving after the fence is
	// dropped.
	f := NewFollower(dir, 0)
	col := &followCollector{}
	if _, err := f.Poll(col.resync, col.apply); err != nil {
		t.Fatal(err)
	}
	assertExactlyOnce(t, col.recs, 0, 4)

	// Zombie: a writer still at epoch 1 appends two more records...
	z, _, err := Open(dir, Options{Fsync: FsyncOff, FlushEachAppend: true, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.SetMinEpoch(2)
	for i := 4; i < 6; i++ {
		if err := z.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := z.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := f.Poll(col.resync, col.apply); err != nil || n != 0 {
		t.Fatalf("poll applied %d zombie records (err %v), want 0", n, err)
	}
	if s := f.Stats(); s.Fenced != 2 {
		t.Fatalf("fenced %d records, want 2 (stats %+v)", s.Fenced, s)
	}

	// ...and the legitimate epoch-2 owner continues from seq 4.
	j2, _, err := Open(dir, Options{Fsync: FsyncOff, FlushEachAppend: true, Epoch: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The zombie's records were recovered by Open (they are valid
	// frames), so the new owner's seq continues beyond them; the
	// follower skips the fenced seqs as a counted gap.
	if err := j2.Append(testRecord(6)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	before := len(col.recs)
	if _, err := f.Poll(col.resync, col.apply); err != nil {
		t.Fatal(err)
	}
	if len(col.recs) != before+1 {
		t.Fatalf("delivered %d records after epoch-2 append, want 1", len(col.recs)-before)
	}
	last := col.recs[len(col.recs)-1]
	if last.Epoch != 2 {
		t.Fatalf("last record epoch %d, want 2", last.Epoch)
	}
	if s := f.Stats(); s.SeqGaps == 0 {
		t.Fatalf("fenced-out seqs not accounted as a gap (stats %+v)", s)
	}
}

// TestRecoverWarningAndResyncStats asserts the satellite contract:
// tolerated-corruption warnings and magic-scan resyncs are surfaced as
// RecoveryStats fields (and, via Open, the journal.recover.* counters)
// instead of living only in log lines.
func TestRecoverWarningAndResyncStats(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the first frame's magic: the decoder loses framing and must
	// magic-scan to the second frame — one corrupt skip, one resync.
	data[0] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.Resyncs == 0 {
		t.Fatalf("no resyncs counted (stats %+v)", rec.Stats)
	}
	if rec.Stats.Warnings == 0 {
		t.Fatalf("no warnings counted (stats %+v)", rec.Stats)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("recovered %d records, want 5 (first frame destroyed)", len(rec.Records))
	}

	// Open must surface the same stats through the obs counters.
	warnsBefore, resyncsBefore := obsRecWarns.Value(), obsRecResyncs.Value()
	j2, rec2, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := obsRecWarns.Value() - warnsBefore; got != int64(rec2.Stats.Warnings) || got == 0 {
		t.Fatalf("journal.recover.warnings moved by %d, stats say %d", got, rec2.Stats.Warnings)
	}
	if got := obsRecResyncs.Value() - resyncsBefore; got != int64(rec2.Stats.Resyncs) || got == 0 {
		t.Fatalf("journal.recover.resyncs moved by %d, stats say %d", got, rec2.Stats.Resyncs)
	}
}
