package journal

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the frame decoder. The
// contract under fuzz: never panic, never allocate beyond the input,
// and always satisfy the recovery invariants — every returned payload
// re-frames to bytes present in the input, and a clean re-encode of the
// payloads decodes back unchanged.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame([]byte(`{"seq":1,"op":"register","ap":"ap-0"}`)))
	f.Add(EncodeFrame([]byte(`{}`)))
	two := append(EncodeFrame([]byte(`{"seq":1,"op":"assoc"}`)), EncodeFrame([]byte(`{"seq":2,"op":"disassoc"}`))...)
	f.Add(two)
	f.Add(two[:len(two)-3])                                               // torn tail
	f.Add(append([]byte("garbage"), EncodeFrame([]byte(`{"seq":9}`))...)) // resync
	dmg := append([]byte(nil), two...)
	dmg[15] ^= 0x40 // corrupt first payload
	f.Add(dmg)

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, corrupt, torn := DecodeFrames(data)
		_, st := DecodeFramesStats(data)
		if st.Corrupt != corrupt || st.Torn != torn {
			t.Fatalf("DecodeFramesStats disagrees with DecodeFrames: %+v vs corrupt=%d torn=%v", st, corrupt, torn)
		}
		if st.Resyncs < 0 || st.Resyncs > st.Corrupt+1 {
			t.Fatalf("implausible resync count %d for %d corrupt skips", st.Resyncs, st.Corrupt)
		}
		total := 0
		for _, p := range payloads {
			if len(p) > MaxRecordBytes {
				t.Fatalf("payload of %d bytes exceeds MaxRecordBytes", len(p))
			}
			total += len(p) + frameHeader
		}
		if total > len(data) {
			t.Fatalf("decoded %d framed bytes from %d input bytes", total, len(data))
		}
		if corrupt < 0 {
			t.Fatalf("negative corrupt count %d", corrupt)
		}
		_ = torn

		// Round-trip: re-encoding the recovered payloads must decode back
		// exactly, cleanly.
		var buf bytes.Buffer
		for _, p := range payloads {
			buf.Write(EncodeFrame(p))
		}
		again, corrupt2, torn2 := DecodeFrames(buf.Bytes())
		if corrupt2 != 0 || torn2 || len(again) != len(payloads) {
			t.Fatalf("re-encode decode: %d payloads, corrupt=%d torn=%v", len(again), corrupt2, torn2)
		}
		for i := range again {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("payload %d changed across re-encode", i)
			}
		}
	})
}

// FuzzReplicationDecode throws arbitrary segment images at the
// replication-stream record decoder that follow-mode readers run on
// every Poll. Contract under fuzz: never panic, and the returned
// records satisfy the follower's delivery invariants — unfenced
// records have strictly increasing sequence numbers, all above the
// `after` cursor, and fenced records are below the epoch fence.
func FuzzReplicationDecode(f *testing.F) {
	frame := func(r Record) []byte {
		b, err := json.Marshal(r)
		if err != nil {
			f.Fatal(err)
		}
		return EncodeFrame(b)
	}
	f.Add([]byte{}, uint64(0), uint64(0))
	clean := append(frame(Record{Seq: 1, Op: OpRegister, AP: "ap-0"}),
		frame(Record{Seq: 2, Op: OpAssoc, Epoch: 1})...)
	f.Add(clean, uint64(0), uint64(0))
	f.Add(clean, uint64(1), uint64(2))                // partially consumed, fenced
	f.Add(clean[:len(clean)-5], uint64(0), uint64(0)) // torn tail
	dup := append(append([]byte(nil), clean...), frame(Record{Seq: 2, Op: OpAssoc, Epoch: 2})...)
	f.Add(dup, uint64(0), uint64(0)) // duplicate seq from retried epoch
	f.Add(append([]byte("noise"), clean...), uint64(0), uint64(0))
	f.Add(EncodeFrame([]byte("not json")), uint64(0), uint64(0))

	f.Fuzz(func(t *testing.T, data []byte, after, minEpoch uint64) {
		recs, st, undecodable := segmentRecords(data, after, minEpoch)
		if st.Corrupt < 0 || undecodable < 0 {
			t.Fatalf("negative damage counts: %+v undecodable=%d", st, undecodable)
		}
		last := after
		for i, r := range recs {
			if r.Epoch < minEpoch {
				continue // fenced: reported for accounting, no cursor movement
			}
			if r.Seq <= last {
				t.Fatalf("record %d: seq %d not beyond cursor %d", i, r.Seq, last)
			}
			last = r.Seq
		}

		// Round-trip: valid records re-encoded as a clean segment must
		// decode back identically with nothing fenced or lost.
		var buf bytes.Buffer
		n := 0
		for _, r := range recs {
			if r.Epoch < minEpoch || r.Seq <= after+uint64(n) {
				continue
			}
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			buf.Write(EncodeFrame(b))
			n++
		}
		again, st2, und2 := segmentRecords(buf.Bytes(), after, minEpoch)
		if st2.Corrupt != 0 || st2.Torn || und2 != 0 {
			t.Fatalf("re-encoded segment damaged: %+v undecodable=%d", st2, und2)
		}
		if len(again) != n {
			t.Fatalf("re-encoded segment yields %d records, want %d", len(again), n)
		}
	})
}
