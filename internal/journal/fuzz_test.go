package journal

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the frame decoder. The
// contract under fuzz: never panic, never allocate beyond the input,
// and always satisfy the recovery invariants — every returned payload
// re-frames to bytes present in the input, and a clean re-encode of the
// payloads decodes back unchanged.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame([]byte(`{"seq":1,"op":"register","ap":"ap-0"}`)))
	f.Add(EncodeFrame([]byte(`{}`)))
	two := append(EncodeFrame([]byte(`{"seq":1,"op":"assoc"}`)), EncodeFrame([]byte(`{"seq":2,"op":"disassoc"}`))...)
	f.Add(two)
	f.Add(two[:len(two)-3])              // torn tail
	f.Add(append([]byte("garbage"), EncodeFrame([]byte(`{"seq":9}`))...)) // resync
	dmg := append([]byte(nil), two...)
	dmg[15] ^= 0x40 // corrupt first payload
	f.Add(dmg)

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, corrupt, torn := DecodeFrames(data)
		total := 0
		for _, p := range payloads {
			if len(p) > MaxRecordBytes {
				t.Fatalf("payload of %d bytes exceeds MaxRecordBytes", len(p))
			}
			total += len(p) + frameHeader
		}
		if total > len(data) {
			t.Fatalf("decoded %d framed bytes from %d input bytes", total, len(data))
		}
		if corrupt < 0 {
			t.Fatalf("negative corrupt count %d", corrupt)
		}
		_ = torn

		// Round-trip: re-encoding the recovered payloads must decode back
		// exactly, cleanly.
		var buf bytes.Buffer
		for _, p := range payloads {
			buf.Write(EncodeFrame(p))
		}
		again, corrupt2, torn2 := DecodeFrames(buf.Bytes())
		if corrupt2 != 0 || torn2 || len(again) != len(payloads) {
			t.Fatalf("re-encode decode: %d payloads, corrupt=%d torn=%v", len(again), corrupt2, torn2)
		}
		for i := range again {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("payload %d changed across re-encode", i)
			}
		}
	})
}
