package journal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/atomicfile"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Journal health, exported through the obs registry (surfaced by the
// s3proto health output alongside the protocol.* and domain.* families).
var (
	obsAppends     = obs.GetCounter("journal.appends", "WAL records appended (one per journaled domain mutation)")
	obsAppendBytes = obs.GetCounter("journal.append_bytes", "Framed bytes appended to WAL segments")
	obsAppendErrs  = obs.GetCounter("journal.append_errors", "Failed appends: encode, write or fsync errors")
	obsFsyncs      = obs.GetCounter("journal.fsyncs", "Segment fsyncs (per append under FsyncAlways, per tick under FsyncInterval)")
	obsFsync       = obs.GetHistogram("journal.fsync", "Latency of one segment flush+fsync")
	obsCheckpoints = obs.GetCounter("journal.checkpoints", "Checkpoints written (every CheckpointEvery records, plus forced ones)")
	obsCkptErrs    = obs.GetCounter("journal.checkpoint_errors", "Failed checkpoints (compaction degrades, correctness unaffected)")
	obsCkptHist    = obs.GetHistogram("journal.checkpoint", "Latency of one checkpoint write + segment rotation")
	obsRotations   = obs.GetCounter("journal.rotations", "Segment rotations (one per successful checkpoint)")
	obsReplayed    = obs.GetCounter("journal.recovery.records_replayed", "Records replayed from the WAL tail at recovery")
	obsCorrupt     = obs.GetCounter("journal.recovery.corrupt_skipped", "CRC-corrupt or undecodable frames skipped at recovery")
	obsTorn        = obs.GetCounter("journal.recovery.torn_tails", "Incomplete trailing frames found at recovery (≤1 per segment)")
	obsRecWarns    = obs.GetCounter("journal.recover.warnings", "Tolerated-corruption warnings emitted during recovery (unreadable or damaged checkpoints, unreadable segments, undecodable records)")
	obsRecResyncs  = obs.GetCounter("journal.recover.resyncs", "Magic-scan re-synchronizations after lost framing during recovery")
	obsSeq         = obs.GetGauge("journal.seq", "Last assigned WAL sequence number")
)

const (
	// FrameMagic marks the start of every frame. The two high bytes are
	// non-ASCII, so a JSON payload can never contain the marker and
	// post-corruption re-synchronization is reliable. Encoded little-
	// endian, the first byte on the wire is 0xF5 — also non-ASCII, which
	// lets a shared listener distinguish a framed binary stream from a
	// JSON-lines stream by its first byte (internal/protocol reuses this
	// framing as its binary wire format).
	FrameMagic uint32 = 0xAA5733F5
	// frameMagic is the historical internal spelling.
	frameMagic = FrameMagic
	// FrameHeaderLen is the fixed frame header size: magic, length, CRC.
	FrameHeaderLen = 12
	// frameHeader is the historical internal spelling.
	frameHeader = FrameHeaderLen
	// MaxRecordBytes bounds a single record's payload; a decoded length
	// beyond it is treated as corruption, not an allocation request.
	MaxRecordBytes = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C (Castagnoli) checksum frames carry —
// exported so other framings built on EncodeFrame/AppendFrame (the
// protocol's binary codec) can validate payloads without re-deriving
// the table.
func Checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, crcTable)
}

// AppendFrame appends payload wrapped in a magic + length + CRC32C frame
// to dst and returns the extended slice — the allocation-free sibling of
// EncodeFrame for callers that reuse a scratch buffer.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [FrameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], FrameMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Op enumerates the journaled domain mutations.
type Op string

const (
	// OpRegister records an AP registration (or a re-hello renewing one:
	// replay updates capacity and last-seen time for a known AP).
	OpRegister Op = "register"
	// OpAssoc records one atomic placement commit — a single association
	// or an AssociateBatch — including any Prev moves.
	OpAssoc Op = "assoc"
	// OpDisassoc records a full disassociation (domain LeaveAll).
	OpDisassoc Op = "disassoc"
	// OpLeave records a partial leave releasing DemandBps of one of the
	// user's sessions (domain Leave multiplicity semantics).
	OpLeave Op = "leave"
	// OpExpire records a lease expiry removing an AP and re-homing its
	// believed users.
	OpExpire Op = "expire"
)

// Placement is one user placement inside an OpAssoc record.
type Placement struct {
	User      trace.UserID `json:"user"`
	AP        trace.APID   `json:"ap"`
	Prev      trace.APID   `json:"prev,omitempty"`
	DemandBps float64      `json:"demand_bps,omitempty"`
}

// Record is one journaled mutation. Seq is assigned by Append and is
// strictly increasing across segments and checkpoints. Epoch is the
// writer's ownership generation (Options.Epoch / SetEpoch): in a
// federated deployment every cross-process failover bumps it, so a
// follower tailing the stream can fence out records a superseded owner
// wrote after losing its lease. Single-owner journals leave it zero,
// which keeps their encoded records byte-identical to pre-federation
// journals.
type Record struct {
	Seq         uint64       `json:"seq"`
	Epoch       uint64       `json:"epoch,omitempty"`
	Op          Op           `json:"op"`
	TS          int64        `json:"ts,omitempty"`
	AP          trace.APID   `json:"ap,omitempty"`
	User        trace.UserID `json:"user,omitempty"`
	CapacityBps float64      `json:"capacity_bps,omitempty"`
	Static      bool         `json:"static,omitempty"`
	DemandBps   float64      `json:"demand_bps,omitempty"`
	Placements  []Placement  `json:"placements,omitempty"`
}

// FsyncPolicy selects when appended frames are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: no acknowledged record is
	// ever lost, at the cost of one disk flush per commit.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background tick (Options.FsyncInterval):
	// a crash loses at most the last interval's records.
	FsyncInterval
	// FsyncOff never fsyncs explicitly; the OS flushes at its leisure. A
	// process crash (without an OS crash) still loses nothing once the
	// bytes are written, since the page cache survives the process.
	FsyncOff
)

// ParseFsyncPolicy maps the CLI spelling (always / interval / off) to a
// policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want always, interval or off)", s)
}

// String returns the CLI spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return "always"
}

// File is the subset of *os.File the journal writes segments through.
// Options.OpenFile may substitute a fault-injecting implementation
// (see journal/faultfile).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Options configures a Journal.
type Options struct {
	// Fsync selects the durability/throughput trade-off (default
	// FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background flush period under FsyncInterval
	// (default 100ms).
	FsyncInterval time.Duration
	// CheckpointEvery rotates the journal through a checkpoint after
	// this many appended records; 0 disables checkpointing.
	CheckpointEvery int
	// State, when non-nil, writes the owner's full state snapshot for a
	// checkpoint. It is invoked synchronously from Append, so it observes
	// exactly the state as of the record that triggered the checkpoint.
	State func(w io.Writer) error
	// OpenFile creates segment files (default os.Create). Tests inject
	// fault-wrapped files here.
	OpenFile func(path string) (File, error)
	// Logger receives recovery warnings and background-flush errors
	// (default: discard).
	Logger *log.Logger
	// Epoch stamps every appended record with the writer's ownership
	// generation (see Record.Epoch). Zero for single-owner journals.
	Epoch uint64
	// FlushEachAppend flushes the buffered writer after every append
	// even when the fsync policy would not. A replicated journal needs
	// it under FsyncInterval/FsyncOff so tailing followers see records
	// as soon as they are written, not when the 4 KiB buffer happens to
	// spill. FsyncAlways flushes regardless.
	FlushEachAppend bool
}

// Journal is an open write-ahead log rooted at one directory.
type Journal struct {
	dir  string
	opts Options

	mu        sync.Mutex
	f         File
	bw        *bufio.Writer
	seq       uint64 // last assigned sequence number
	epoch     uint64 // stamped into every appended record
	sinceCkpt int
	closed    bool

	stopFlush chan struct{}
	flushDone chan struct{}
}

// RecoveryStats summarizes what Recover (or Open) found.
type RecoveryStats struct {
	// CheckpointSeq is the sequence number of the loaded checkpoint
	// (0 = no checkpoint).
	CheckpointSeq uint64
	// RecordsReplayed counts journal-tail records returned for replay.
	RecordsReplayed int
	// CorruptSkipped counts CRC-corrupt or unparsable frames skipped.
	CorruptSkipped int
	// TornTails counts incomplete trailing frames (≤1 per segment).
	TornTails int
	// Segments counts journal segments scanned.
	Segments int
	// Warnings counts the tolerated-corruption warnings recovery logged:
	// unreadable or damaged checkpoints, unreadable segments, and
	// undecodable records. Surfaced as journal.recover.warnings.
	Warnings int
	// Resyncs counts magic-scan re-synchronizations after lost framing
	// (a damaged header or length). Surfaced as journal.recover.resyncs.
	Resyncs int
}

// Recovery is the reconstructed state handed back by Open: the newest
// valid checkpoint payload (nil when none), and every decodable record
// with a sequence number beyond it, in order.
type Recovery struct {
	Checkpoint []byte
	Records    []Record
	Stats      RecoveryStats
}

// Open recovers the journal in dir (creating it if absent) and opens a
// fresh segment for appending. Appending always starts in a new segment
// so a torn tail left by a crash is never extended in place.
func Open(dir string, opts Options) (*Journal, *Recovery, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	if opts.OpenFile == nil {
		opts.OpenFile = func(path string) (File, error) { return os.Create(path) }
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: mkdir %s: %w", dir, err)
	}
	rec, err := recoverDir(dir, opts.Logger)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, opts: opts, epoch: opts.Epoch}
	j.seq = rec.Stats.CheckpointSeq
	if n := len(rec.Records); n > 0 {
		j.seq = rec.Records[n-1].Seq
	}
	if err := j.openSegmentLocked(j.seq + 1); err != nil {
		return nil, nil, err
	}
	if opts.Fsync == FsyncInterval {
		j.stopFlush = make(chan struct{})
		j.flushDone = make(chan struct{})
		go j.flushLoop()
	}
	obsReplayed.Add(int64(rec.Stats.RecordsReplayed))
	obsCorrupt.Add(int64(rec.Stats.CorruptSkipped))
	obsTorn.Add(int64(rec.Stats.TornTails))
	obsRecWarns.Add(int64(rec.Stats.Warnings))
	obsRecResyncs.Add(int64(rec.Stats.Resyncs))
	obsSeq.Set(int64(j.seq))
	return j, rec, nil
}

// Seq returns the last assigned sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Epoch returns the writer's current ownership generation.
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.epoch
}

// SetEpoch changes the ownership generation stamped into subsequent
// records — a federated owner bumps it when it re-acquires a lease at a
// higher epoch without reopening the journal.
func (j *Journal) SetEpoch(e uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.epoch = e
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Append assigns the next sequence number to rec, frames and writes it,
// applies the fsync policy, and checkpoints + rotates when due. The
// caller's record is not retained.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: append after close")
	}
	j.seq++
	rec.Seq = j.seq
	rec.Epoch = j.epoch
	payload, err := json.Marshal(rec)
	if err != nil {
		obsAppendErrs.Inc()
		return fmt.Errorf("journal: encode record %d: %w", rec.Seq, err)
	}
	frame := EncodeFrame(payload)
	if _, err := j.bw.Write(frame); err != nil {
		obsAppendErrs.Inc()
		return fmt.Errorf("journal: append record %d: %w", rec.Seq, err)
	}
	if j.opts.Fsync == FsyncAlways {
		if err := j.syncLocked(); err != nil {
			obsAppendErrs.Inc()
			return fmt.Errorf("journal: fsync record %d: %w", rec.Seq, err)
		}
	} else if j.opts.FlushEachAppend {
		if err := j.bw.Flush(); err != nil {
			obsAppendErrs.Inc()
			return fmt.Errorf("journal: flush record %d: %w", rec.Seq, err)
		}
	}
	obsAppends.Inc()
	obsAppendBytes.Add(int64(len(frame)))
	obsSeq.Set(int64(j.seq))

	j.sinceCkpt++
	if j.opts.CheckpointEvery > 0 && j.opts.State != nil && j.sinceCkpt >= j.opts.CheckpointEvery {
		j.sinceCkpt = 0
		if err := j.checkpointLocked(); err != nil {
			// A failed checkpoint degrades compaction, not correctness:
			// the tail simply stays longer. Count and carry on.
			obsCkptErrs.Inc()
			j.opts.Logger.Printf("journal: checkpoint at seq %d failed: %v", j.seq, err)
		}
	}
	return nil
}

// Checkpoint forces a checkpoint + rotation now (e.g. on graceful
// shutdown of a long-idle controller). No-op without a State callback.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: checkpoint after close")
	}
	if j.opts.State == nil {
		return nil
	}
	j.sinceCkpt = 0
	return j.checkpointLocked()
}

// Close flushes, fsyncs and closes the active segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	stop := j.stopFlush
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-j.flushDone
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.bw != nil {
		if ferr := j.bw.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}
	if j.f != nil {
		if serr := j.f.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := j.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	j.f, j.bw = nil, nil
	return err
}

// syncLocked flushes the buffered writer and fsyncs the segment.
func (j *Journal) syncLocked() error {
	if err := j.bw.Flush(); err != nil {
		return err
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	obsFsyncs.Inc()
	obsFsync.Observe(time.Since(start))
	return nil
}

// flushLoop is the FsyncInterval background flusher.
func (j *Journal) flushLoop() {
	defer close(j.flushDone)
	tick := time.NewTicker(j.opts.FsyncInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.stopFlush:
			return
		case <-tick.C:
			j.mu.Lock()
			if !j.closed && j.f != nil {
				if err := j.syncLocked(); err != nil {
					j.opts.Logger.Printf("journal: background fsync: %v", err)
				}
			}
			j.mu.Unlock()
		}
	}
}

// openSegmentLocked starts a fresh segment whose first record will carry
// firstSeq.
func (j *Journal) openSegmentLocked(firstSeq uint64) error {
	f, err := j.opts.OpenFile(segmentPath(j.dir, firstSeq))
	if err != nil {
		return fmt.Errorf("journal: open segment: %w", err)
	}
	j.f = f
	j.bw = bufio.NewWriter(f)
	return nil
}

// checkpointLocked writes the owner's state as ckpt-<seq>.snap, rotates
// to a fresh segment and prunes segments/checkpoints superseded by the
// two newest checkpoints (the second-newest is kept as the fallback for
// a damaged newest).
func (j *Journal) checkpointLocked() error {
	start := time.Now()
	seq := j.seq
	err := atomicfile.WriteFile(checkpointPath(j.dir, seq), func(w io.Writer) error {
		var buf bytes.Buffer
		if err := j.opts.State(&buf); err != nil {
			return fmt.Errorf("journal: checkpoint state: %w", err)
		}
		_, err := w.Write(EncodeFrame(buf.Bytes()))
		return err
	})
	if err != nil {
		return err
	}
	// Rotate: seal the current segment, start the next one.
	if err := j.bw.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := j.openSegmentLocked(seq + 1); err != nil {
		return err
	}
	obsRotations.Inc()
	obsCheckpoints.Inc()
	obsCkptHist.Observe(time.Since(start))
	j.pruneLocked()
	return nil
}

// pruneLocked deletes checkpoints older than the newest two, and
// segments whose every record is covered by the oldest retained
// checkpoint. Pruning is best-effort; failures only delay reclamation.
func (j *Journal) pruneLocked() {
	ckpts, segs, err := listDir(j.dir)
	if err != nil {
		j.opts.Logger.Printf("journal: prune: %v", err)
		return
	}
	if len(ckpts) > 2 {
		for _, c := range ckpts[:len(ckpts)-2] {
			os.Remove(filepath.Join(j.dir, c.name))
		}
		ckpts = ckpts[len(ckpts)-2:]
	}
	// Segment pruning waits for the second checkpoint: pruning against
	// the newest one would delete the segment holding the very record
	// that triggered it before a follow-mode reader (follow.go) could
	// tail it, forcing a full checkpoint resync every rotation. Bounding
	// by the second-newest checkpoint gives followers one whole
	// checkpoint interval of slack at the cost of one interval of disk.
	if len(ckpts) < 2 {
		return
	}
	keepFrom := ckpts[0].seq // oldest retained checkpoint
	// A segment is redundant when the next segment starts at or before
	// keepFrom+1 — i.e. every record it holds has seq ≤ keepFrom. The
	// active (last) segment is never pruned.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].seq <= keepFrom+1 {
			os.Remove(filepath.Join(j.dir, segs[i].name))
		}
	}
}

// EncodeFrame wraps payload in a magic + length + CRC32C frame.
func EncodeFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], frameMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[8:12], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	return frame
}

// FrameStats summarizes what a frame walk tolerated.
type FrameStats struct {
	// Corrupt counts CRC failures and damaged headers skipped.
	Corrupt int
	// Resyncs counts the subset of corruptions that lost framing
	// entirely (damaged magic or implausible length) and had to
	// re-synchronize on the next magic marker.
	Resyncs int
	// Torn reports an incomplete trailing frame.
	Torn bool
}

// DecodeFrames walks data frame by frame. Complete, CRC-valid payloads
// are returned in order. A CRC failure skips the frame; a damaged
// length or magic re-synchronizes on the next magic marker; an
// incomplete trailing frame stops the walk as a torn tail. DecodeFrames
// never fails: any input yields the longest decodable prefix-structure,
// which is exactly the crash-recovery contract.
func DecodeFrames(data []byte) (payloads [][]byte, corrupt int, torn bool) {
	payloads, st := DecodeFramesStats(data)
	return payloads, st.Corrupt, st.Torn
}

// DecodeFramesStats is DecodeFrames with the full damage accounting,
// distinguishing plain CRC skips from framing losses that needed a
// magic-scan resync (surfaced as journal.recover.resyncs).
func DecodeFramesStats(data []byte) (payloads [][]byte, st FrameStats) {
	var magicBytes [4]byte
	binary.LittleEndian.PutUint32(magicBytes[:], frameMagic)
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			st.Torn = true
			return
		}
		if binary.LittleEndian.Uint32(data[off:off+4]) != frameMagic {
			// Lost framing (a flipped length on the previous skip, or
			// garbage): re-synchronize on the next magic marker.
			st.Corrupt++
			st.Resyncs++
			next := bytes.Index(data[off+1:], magicBytes[:])
			if next < 0 {
				return
			}
			off += 1 + next
			continue
		}
		length := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > MaxRecordBytes {
			st.Corrupt++
			st.Resyncs++
			next := bytes.Index(data[off+4:], magicBytes[:])
			if next < 0 {
				return
			}
			off += 4 + next
			continue
		}
		end := off + frameHeader + int(length)
		if end > len(data) {
			st.Torn = true
			return
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[off+8:off+12]) {
			st.Corrupt++
			off = end // length was plausible: skip the damaged frame whole
			continue
		}
		payloads = append(payloads, payload)
		off = end
	}
	return
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("seg-%020d.wal", firstSeq))
}

func checkpointPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%020d.snap", seq))
}

// dirEntry is one parsed journal file name.
type dirEntry struct {
	name string
	seq  uint64
}

// listDir returns the checkpoints and segments in dir, each sorted by
// ascending sequence number. Unrelated files are ignored.
func listDir(dir string) (ckpts, segs []dirEntry, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: read dir %s: %w", dir, err)
	}
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case strings.HasPrefix(name, "ckpt-") && strings.HasSuffix(name, ".snap"):
			if seq, perr := strconv.ParseUint(name[5:len(name)-5], 10, 64); perr == nil {
				ckpts = append(ckpts, dirEntry{name: name, seq: seq})
			}
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".wal"):
			if seq, perr := strconv.ParseUint(name[4:len(name)-4], 10, 64); perr == nil {
				segs = append(segs, dirEntry{name: name, seq: seq})
			}
		}
	}
	sort.Slice(ckpts, func(i, k int) bool { return ckpts[i].seq < ckpts[k].seq })
	sort.Slice(segs, func(i, k int) bool { return segs[i].seq < segs[k].seq })
	return ckpts, segs, nil
}

// Recover reads the journal in dir without opening it for appending:
// the newest valid checkpoint plus the decodable record tail beyond it.
// Open wraps this; Recover alone serves inspection tooling and tests.
func Recover(dir string) (*Recovery, error) {
	return recoverDir(dir, log.New(io.Discard, "", 0))
}

func recoverDir(dir string, logger *log.Logger) (*Recovery, error) {
	rec := &Recovery{}
	ckpts, segs, err := listDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return rec, nil
		}
		return nil, err
	}

	// Newest checkpoint that validates wins; a damaged one is counted
	// and the predecessor tried.
	for i := len(ckpts) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(filepath.Join(dir, ckpts[i].name))
		if rerr != nil {
			logger.Printf("journal: checkpoint %s unreadable: %v", ckpts[i].name, rerr)
			rec.Stats.CorruptSkipped++
			rec.Stats.Warnings++
			continue
		}
		payloads, st := DecodeFramesStats(data)
		rec.Stats.Resyncs += st.Resyncs
		if len(payloads) != 1 || st.Corrupt > 0 || st.Torn {
			logger.Printf("journal: checkpoint %s damaged (frames=%d corrupt=%d torn=%v), trying older",
				ckpts[i].name, len(payloads), st.Corrupt, st.Torn)
			rec.Stats.CorruptSkipped++
			rec.Stats.Warnings++
			continue
		}
		rec.Checkpoint = payloads[0]
		rec.Stats.CheckpointSeq = ckpts[i].seq
		break
	}

	// Replay every segment in order, keeping records beyond the
	// checkpoint. Records at or below it (a crash between checkpoint
	// rename and rotation leaves some) are already part of the snapshot.
	last := rec.Stats.CheckpointSeq
	for _, seg := range segs {
		data, rerr := os.ReadFile(filepath.Join(dir, seg.name))
		if rerr != nil {
			logger.Printf("journal: segment %s unreadable: %v", seg.name, rerr)
			rec.Stats.CorruptSkipped++
			rec.Stats.Warnings++
			continue
		}
		rec.Stats.Segments++
		payloads, st := DecodeFramesStats(data)
		rec.Stats.CorruptSkipped += st.Corrupt
		rec.Stats.Resyncs += st.Resyncs
		if st.Corrupt > 0 || st.Torn {
			rec.Stats.Warnings++
		}
		if st.Torn {
			rec.Stats.TornTails++
		}
		for _, payload := range payloads {
			var r Record
			if err := json.Unmarshal(payload, &r); err != nil {
				rec.Stats.CorruptSkipped++
				rec.Stats.Warnings++
				logger.Printf("journal: segment %s: undecodable record: %v", seg.name, err)
				continue
			}
			if r.Seq <= last {
				continue
			}
			rec.Records = append(rec.Records, r)
			last = r.Seq
		}
	}
	rec.Stats.RecordsReplayed = len(rec.Records)
	if rec.Stats.CorruptSkipped > 0 || rec.Stats.TornTails > 0 {
		logger.Printf("journal: recovery skipped %d corrupt frames, %d torn tails",
			rec.Stats.CorruptSkipped, rec.Stats.TornTails)
	}
	return rec, nil
}
