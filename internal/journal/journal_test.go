package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/journal/faultfile"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// testRecord builds a deterministic record for index i (Seq is assigned
// by Append).
func testRecord(i int) Record {
	switch i % 3 {
	case 0:
		return Record{Op: OpRegister, TS: int64(1000 + i),
			AP: trace.APID(fmt.Sprintf("ap-%d", i)), CapacityBps: 10e6}
	case 1:
		return Record{Op: OpAssoc, TS: int64(1000 + i), Placements: []Placement{
			{User: trace.UserID(fmt.Sprintf("u-%d", i)), AP: "ap-0", DemandBps: 50e3},
		}}
	default:
		return Record{Op: OpDisassoc, TS: int64(1000 + i),
			User: trace.UserID(fmt.Sprintf("u-%d", i-1)), AP: "ap-0"}
	}
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, rec, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := j.Seq(); got != n {
		t.Fatalf("Seq = %d, want %d", got, n)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(got.Records), n)
	}
	for i, r := range got.Records {
		want := testRecord(i)
		want.Seq = uint64(i + 1)
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(r)
		if !bytes.Equal(wb, gb) {
			t.Fatalf("record %d: got %s, want %s", i, gb, wb)
		}
	}
	if got.Stats.CorruptSkipped != 0 || got.Stats.TornTails != 0 {
		t.Fatalf("clean journal reported damage: %+v", got.Stats)
	}
}

// TestReopenContinuesSequence checks that a reopened journal continues
// numbering after the recovered tail and starts a fresh segment (never
// appending in place after a potential torn tail).
func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, rec, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 7 {
		t.Fatalf("recovered %d records, want 7", len(rec.Records))
	}
	if err := j2.Append(testRecord(7)); err != nil {
		t.Fatal(err)
	}
	if got := j2.Seq(); got != 8 {
		t.Fatalf("Seq after reopen = %d, want 8", got)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2 (fresh segment per open)", len(segs))
	}
	got, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != 8 || got.Records[7].Seq != 8 {
		t.Fatalf("recovered %d records, last seq %d", len(got.Records), got.Records[len(got.Records)-1].Seq)
	}
}

// corrupt flips one byte of the (single) segment file at offset off.
func corruptSegment(t *testing.T, dir string, off int) {
	t.Helper()
	_, segs, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverSkipsCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	frameLens := make([]int, 5)
	for i := 0; i < 5; i++ {
		r := testRecord(i)
		r.Seq = uint64(i + 1)
		payload, _ := json.Marshal(r)
		frameLens[i] = frameHeader + len(payload)
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte inside frame 2 (0-based): its CRC fails, the
	// frame is skipped whole, and frames 3 and 4 still recover.
	corruptSegment(t, dir, frameLens[0]+frameLens[1]+frameHeader+3)
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.CorruptSkipped != 1 {
		t.Fatalf("CorruptSkipped = %d, want 1", rec.Stats.CorruptSkipped)
	}
	var seqs []uint64
	for _, r := range rec.Records {
		seqs = append(seqs, r.Seq)
	}
	want := []uint64{1, 2, 4, 5}
	if fmt.Sprint(seqs) != fmt.Sprint(want) {
		t.Fatalf("recovered seqs %v, want %v", seqs, want)
	}
}

func TestRecoverResyncsAfterDamagedHeader(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	r0 := testRecord(0)
	r0.Seq = 1
	p0, _ := json.Marshal(r0)
	for i := 0; i < 4; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Smash frame 1's magic marker: recovery loses framing there and must
	// re-synchronize on frame 2's magic.
	corruptSegment(t, dir, frameHeader+len(p0)+1)
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.CorruptSkipped == 0 {
		t.Fatal("expected corruption to be counted")
	}
	var seqs []uint64
	for _, r := range rec.Records {
		seqs = append(seqs, r.Seq)
	}
	if fmt.Sprint(seqs) != fmt.Sprint([]uint64{1, 3, 4}) {
		t.Fatalf("recovered seqs %v, want [1 3 4]", seqs)
	}
}

// checkpointState is a trivial owner: its state is the JSON of how many
// records it has "applied".
type checkpointState struct{ n int }

func (s *checkpointState) write(w io.Writer) error {
	_, err := fmt.Fprintf(w, `{"applied":%d}`, s.n)
	return err
}

func TestCheckpointRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	st := &checkpointState{}
	j, _, err := Open(dir, Options{
		Fsync:           FsyncOff,
		CheckpointEvery: 5,
		State:           st.write,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 23
	for i := 0; i < n; i++ {
		st.n++ // state first, then journal — the owner's commit order
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ckpts, segs, err := listDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// 4 checkpoints taken (at 5, 10, 15, 20); only the newest 2 retained.
	if len(ckpts) != 2 {
		t.Fatalf("checkpoints = %d, want 2", len(ckpts))
	}
	if ckpts[0].seq != 15 || ckpts[1].seq != 20 {
		t.Fatalf("checkpoint seqs = %d,%d, want 15,20", ckpts[0].seq, ckpts[1].seq)
	}
	// Segments covered by checkpoint 15 are pruned.
	for _, s := range segs {
		if s.seq < 16 {
			t.Fatalf("segment %s should have been pruned", s.name)
		}
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.CheckpointSeq != 20 {
		t.Fatalf("CheckpointSeq = %d, want 20", rec.Stats.CheckpointSeq)
	}
	if string(rec.Checkpoint) != `{"applied":20}` {
		t.Fatalf("checkpoint payload = %s", rec.Checkpoint)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("tail records = %d, want 3 (21..23)", len(rec.Records))
	}
	if rec.Records[0].Seq != 21 || rec.Records[2].Seq != 23 {
		t.Fatalf("tail seqs %d..%d, want 21..23", rec.Records[0].Seq, rec.Records[2].Seq)
	}
}

func TestRecoverFallsBackToOlderCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := &checkpointState{}
	j, _, err := Open(dir, Options{Fsync: FsyncOff, CheckpointEvery: 5, State: st.write})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		st.n++ // state first, then journal — the owner's commit order
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage the newest checkpoint (seq 10): recovery must fall back to
	// seq 5 and replay 6..12 from the retained segments.
	data, err := os.ReadFile(checkpointPath(dir, 10))
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xFF
	if err := os.WriteFile(checkpointPath(dir, 10), data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.CheckpointSeq != 5 {
		t.Fatalf("CheckpointSeq = %d, want fallback to 5", rec.Stats.CheckpointSeq)
	}
	if string(rec.Checkpoint) != `{"applied":5}` {
		t.Fatalf("checkpoint payload = %s", rec.Checkpoint)
	}
	if len(rec.Records) != 7 || rec.Records[0].Seq != 6 || rec.Records[6].Seq != 12 {
		t.Fatalf("tail = %d records (%v..), want 6..12", len(rec.Records), rec.Records[0].Seq)
	}
}

func TestForcedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st := &checkpointState{}
	j, _, err := Open(dir, Options{Fsync: FsyncOff, CheckpointEvery: 1000, State: st.write})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		st.n++ // state first, then journal — the owner's commit order
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.CheckpointSeq != 4 || len(rec.Records) != 0 {
		t.Fatalf("after forced checkpoint: seq %d, %d tail records",
			rec.Stats.CheckpointSeq, len(rec.Records))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"always", FsyncAlways}, {"Interval", FsyncInterval}, {"OFF", FsyncOff}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != strings.ToLower(tc.in) {
			t.Fatalf("String() = %q", got.String())
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestFsyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	// The background flusher must land the record without Close's help.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec, err := Recover(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Records) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background fsync never flushed the record")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultfileTornTail injects a torn tail at an awkward byte offset
// through the faultfile wrapper: recovery returns exactly the records
// whose frames landed in full, and reports the tear.
func TestFaultfileTornTail(t *testing.T) {
	// First pass: measure clean frame sizes.
	clean := t.TempDir()
	j, _, err := Open(clean, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := listDir(clean)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(clean, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, _ := DecodeFrames(data)
	// Tear mid-way through the 4th frame.
	tearAt := int64(0)
	for i := 0; i < 3; i++ {
		tearAt += int64(frameHeader + len(payloads[i]))
	}
	tearAt += 5

	dir := t.TempDir()
	j2, _, err := Open(dir, Options{
		Fsync: FsyncOff,
		OpenFile: func(path string) (File, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return faultfile.Wrap(f, faultfile.Config{TornAtByte: tearAt}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := j2.Append(testRecord(i)); err != nil {
			t.Fatal(err) // writes "succeed"; the tail just never lands
		}
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("recovered %d records past a tear after frame 3, want 3", len(rec.Records))
	}
	if rec.Stats.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", rec.Stats.TornTails)
	}
}

// TestFaultfileBitFlips soaks recovery against random single-bit damage:
// whatever lands, recovery must not fail, must return strictly
// increasing sequence numbers, and must account every missing record as
// corruption.
func TestFaultfileBitFlips(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		dir := t.TempDir()
		j, _, err := Open(dir, Options{
			Fsync: FsyncOff,
			OpenFile: func(path string) (File, error) {
				f, err := os.Create(path)
				if err != nil {
					return nil, err
				}
				return faultfile.Wrap(f, faultfile.Config{Seed: seed, BitFlipProb: 0.08}), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		const n = 60
		for i := 0; i < n; i++ {
			if err := j.Append(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var last uint64
		for _, r := range rec.Records {
			if r.Seq <= last {
				t.Fatalf("seed %d: non-increasing seq %d after %d", seed, r.Seq, last)
			}
			last = r.Seq
		}
		if len(rec.Records) > n {
			t.Fatalf("seed %d: recovered %d > appended %d", seed, len(rec.Records), n)
		}
		if len(rec.Records) < n && rec.Stats.CorruptSkipped == 0 && rec.Stats.TornTails == 0 {
			t.Fatalf("seed %d: lost %d records with no damage reported",
				seed, n-len(rec.Records))
		}
	}
}

// TestFaultfileShortWrite: a short write fails the append (and poisons
// the buffered writer), but everything acked before it recovers.
func TestFaultfileShortWrite(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(dir, Options{
		Fsync: FsyncAlways,
		OpenFile: func(path string) (File, error) {
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			return faultfile.Wrap(f, faultfile.Config{Seed: 7, ShortWriteProb: 0.2}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; i < 50; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			break
		}
		acked++
	}
	j.Close()
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) < acked {
		t.Fatalf("recovered %d < %d acked records", len(rec.Records), acked)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("recovered seq %d at position %d", r.Seq, i)
		}
	}
}

func TestEncodeDecodeFrameRoundtrip(t *testing.T) {
	payloads := [][]byte{[]byte("{}"), []byte(`{"op":"assoc"}`), {}, bytes.Repeat([]byte{0xAA}, 100)}
	var buf bytes.Buffer
	for _, p := range payloads {
		buf.Write(EncodeFrame(p))
	}
	got, corrupt, torn := DecodeFrames(buf.Bytes())
	if corrupt != 0 || torn {
		t.Fatalf("corrupt=%d torn=%v", corrupt, torn)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d payloads, want %d", len(got), len(payloads))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}
