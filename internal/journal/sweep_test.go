package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashPointSweep is the property test at the heart of the
// durability contract: for EVERY byte-prefix of a journal segment —
// including cuts that land mid-header and mid-payload — recovery must
// return exactly the records whose frames are complete in the prefix,
// in order, without error. A crash can stop the kernel's writeback at
// any byte; this sweep proves no cut point confuses recovery.
func TestCrashPointSweep(t *testing.T) {
	src := t.TempDir()
	j, _, err := Open(src, Options{Fsync: FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := listDir(src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(src, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: frameEnd[k] is the byte offset after the k-th
	// complete frame.
	payloads, corrupt, torn := DecodeFrames(full)
	if corrupt != 0 || torn || len(payloads) != n {
		t.Fatalf("clean segment decode: %d payloads, corrupt=%d torn=%v", len(payloads), corrupt, torn)
	}
	frameEnd := make([]int, n+1)
	for k, p := range payloads {
		frameEnd[k+1] = frameEnd[k] + frameHeader + len(p)
	}
	if frameEnd[n] != len(full) {
		t.Fatalf("frame ends %d != file size %d", frameEnd[n], len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		// Committed state at this cut: records whose frames fit entirely.
		wantRecords := 0
		for wantRecords < n && frameEnd[wantRecords+1] <= cut {
			wantRecords++
		}

		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segmentPath(dir, 1), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if len(rec.Records) != wantRecords {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(rec.Records), wantRecords)
		}
		for k, r := range rec.Records {
			if r.Seq != uint64(k+1) {
				t.Fatalf("cut %d: record %d has seq %d", cut, k, r.Seq)
			}
		}
		// A cut strictly inside a frame is a torn tail; a cut exactly on a
		// boundary is clean.
		partial := cut != frameEnd[wantRecords]
		if partial && rec.Stats.TornTails != 1 {
			t.Fatalf("cut %d: torn tail not reported (stats %+v)", cut, rec.Stats)
		}
		if !partial && rec.Stats.TornTails != 0 {
			t.Fatalf("cut %d: spurious torn tail (stats %+v)", cut, rec.Stats)
		}
		if rec.Stats.CorruptSkipped != 0 {
			t.Fatalf("cut %d: spurious corruption (stats %+v)", cut, rec.Stats)
		}
	}
}

// TestCrashPointSweepWithCheckpoint repeats the sweep across a rotation:
// the cut lands in the post-checkpoint segment, and recovery must come
// back as checkpoint state plus the committed tail prefix.
func TestCrashPointSweepWithCheckpoint(t *testing.T) {
	src := t.TempDir()
	st := &checkpointState{}
	j, _, err := Open(src, Options{Fsync: FsyncOff, CheckpointEvery: 5, State: st.write})
	if err != nil {
		t.Fatal(err)
	}
	const n = 9 // checkpoint at 5, tail 6..9
	for i := 0; i < n; i++ {
		st.n++
		if err := j.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ckpts, segs, err := listDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0].seq != 5 {
		t.Fatalf("expected one checkpoint at 5, got %+v", ckpts)
	}
	tailSeg := segs[len(segs)-1]
	if tailSeg.seq != 6 {
		t.Fatalf("tail segment starts at %d, want 6", tailSeg.seq)
	}
	full, err := os.ReadFile(filepath.Join(src, tailSeg.name))
	if err != nil {
		t.Fatal(err)
	}
	payloads, _, _ := DecodeFrames(full)
	frameEnd := make([]int, len(payloads)+1)
	for k, p := range payloads {
		frameEnd[k+1] = frameEnd[k] + frameHeader + len(p)
	}

	ckptData, err := os.ReadFile(filepath.Join(src, ckpts[0].name))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		wantTail := 0
		for wantTail < len(payloads) && frameEnd[wantTail+1] <= cut {
			wantTail++
		}
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(checkpointPath(dir, 5), ckptData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segmentPath(dir, 6), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if rec.Stats.CheckpointSeq != 5 || string(rec.Checkpoint) != `{"applied":5}` {
			t.Fatalf("cut %d: checkpoint seq %d payload %s", cut, rec.Stats.CheckpointSeq, rec.Checkpoint)
		}
		if len(rec.Records) != wantTail {
			t.Fatalf("cut %d: %d tail records, want %d", cut, len(rec.Records), wantTail)
		}
		for k, r := range rec.Records {
			if r.Seq != uint64(6+k) {
				t.Fatalf("cut %d: tail record %d has seq %d", cut, k, r.Seq)
			}
		}
	}
}
