package metrics

import (
	"errors"
	"fmt"
	"math"

	"github.com/s3wlan/s3wlan/internal/stats"
)

// ErrNoAPs is returned when a balance index is requested for zero APs.
var ErrNoAPs = errors.New("metrics: no APs")

// ErrNegativeLoad is returned when a load value is negative; throughputs
// are volumes and must be non-negative.
var ErrNegativeLoad = errors.New("metrics: negative load")

// BalanceIndex returns the Chiu–Jain fairness index of the per-AP loads:
//
//	B = (Σ T_i)² / (n · Σ T_i²)
//
// which ranges over [1/n, 1]; 1 means perfectly even load. When all loads
// are zero (an idle bin) the network is trivially balanced and B is defined
// as 1. An error is returned for an empty slice or negative loads.
func BalanceIndex(loads []float64) (float64, error) {
	n := len(loads)
	if n == 0 {
		return 0, ErrNoAPs
	}
	var sum, sumSq float64
	for _, t := range loads {
		if t < 0 || math.IsNaN(t) {
			return 0, fmt.Errorf("%w: %v", ErrNegativeLoad, t)
		}
		sum += t
		sumSq += t * t
	}
	if sum == 0 {
		return 1, nil
	}
	return sum * sum / (float64(n) * sumSq), nil
}

// NormalizedBalanceIndex maps the balance index from [1/n, 1] onto [0, 1]:
//
//	B̂ = (B − 1/n) / (1 − 1/n)
//
// For a single AP (n = 1) the index is always 1.
func NormalizedBalanceIndex(loads []float64) (float64, error) {
	n := len(loads)
	b, err := BalanceIndex(loads)
	if err != nil {
		return 0, err
	}
	if n == 1 {
		return 1, nil
	}
	inv := 1 / float64(n)
	v := (b - inv) / (1 - inv)
	// Guard floating-point slack at the boundaries.
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// Series is a time series of balance indexes, one value per time bin.
type Series struct {
	// BinSeconds is the width of each bin.
	BinSeconds int64
	// Start is the timestamp (Unix seconds) of the first bin's left edge.
	Start int64
	// Values holds one normalized balance index per bin.
	Values []float64
	// Idle marks bins where the total load was zero (B defined as 1).
	Idle []bool
}

// BinTime returns the left-edge timestamp of bin i.
func (s *Series) BinTime(i int) int64 { return s.Start + int64(i)*s.BinSeconds }

// ActiveValues returns the balance indexes of non-idle bins only.
func (s *Series) ActiveValues() []float64 {
	out := make([]float64, 0, len(s.Values))
	for i, v := range s.Values {
		if i < len(s.Idle) && s.Idle[i] {
			continue
		}
		out = append(out, v)
	}
	return out
}

// NewSeries builds a Series from per-bin per-AP load matrices.
// loads[i][j] is AP j's served volume in bin i. All rows must have the same
// number of APs.
func NewSeries(start, binSeconds int64, loads [][]float64) (*Series, error) {
	if binSeconds <= 0 {
		return nil, errors.New("metrics: non-positive bin width")
	}
	s := &Series{
		BinSeconds: binSeconds,
		Start:      start,
		Values:     make([]float64, 0, len(loads)),
		Idle:       make([]bool, 0, len(loads)),
	}
	for _, row := range loads {
		v, err := NormalizedBalanceIndex(row)
		if err != nil {
			return nil, err
		}
		var total float64
		for _, t := range row {
			total += t
		}
		s.Values = append(s.Values, v)
		s.Idle = append(s.Idle, total == 0)
	}
	return s, nil
}

// RelativeChanges returns the paper's S_i = (β_i − β_{i−1}) / β_{i−1}
// series over the given balance-index values. Bins with β_{i−1} = 0 are
// skipped (cannot be expressed as a relative change).
func RelativeChanges(values []float64) []float64 {
	out := make([]float64, 0, len(values))
	for i := 1; i < len(values); i++ {
		prev := values[i-1]
		if prev == 0 {
			continue
		}
		out = append(out, (values[i]-prev)/prev)
	}
	return out
}

// VarianceOfBalance returns the paper's Fig. 3 statistic for one
// hour-long period: the variance of the relative-change series of the
// sub-period balance indexes. It returns 0 when fewer than three
// sub-periods are available (no variability can be measured).
func VarianceOfBalance(subPeriodValues []float64) float64 {
	changes := RelativeChanges(subPeriodValues)
	if len(changes) < 2 {
		return 0
	}
	return stats.Variance(changes)
}

// Comparison summarizes one policy-vs-baseline experiment: the per-domain
// (or per-run) mean normalized balance indexes with confidence intervals,
// and the headline statistics the paper quotes in Fig. 12.
type Comparison struct {
	// MeanPolicy and MeanBaseline are overall mean normalized balance
	// indexes.
	MeanPolicy, MeanBaseline float64
	// CIPolicy and CIBaseline are the 95% confidence half-widths.
	CIPolicy, CIBaseline float64
	// GainPercent is (MeanPolicy − MeanBaseline) / MeanBaseline · 100.
	GainPercent float64
	// ErrorBarReductionPercent is (CIBaseline − CIPolicy)/CIBaseline · 100,
	// the paper's "error bar can be reduced by 72.1%" statistic.
	ErrorBarReductionPercent float64
}

// Compare computes the headline comparison statistics between a policy's
// balance-index samples and a baseline's.
func Compare(policy, baseline []float64) (Comparison, error) {
	if len(policy) == 0 || len(baseline) == 0 {
		return Comparison{}, errors.New("metrics: empty comparison input")
	}
	mp, cp := stats.MeanCI(policy, 0.95)
	mb, cb := stats.MeanCI(baseline, 0.95)
	c := Comparison{
		MeanPolicy:   mp,
		MeanBaseline: mb,
		CIPolicy:     cp,
		CIBaseline:   cb,
	}
	if mb > 0 {
		c.GainPercent = (mp - mb) / mb * 100
	}
	if cb > 0 {
		c.ErrorBarReductionPercent = (cb - cp) / cb * 100
	}
	return c, nil
}

// String renders the comparison in the style of the paper's Fig. 12 text.
func (c Comparison) String() string {
	return fmt.Sprintf(
		"policy %.4f ±%.4f vs baseline %.4f ±%.4f (gain %.1f%%, error-bar reduction %.1f%%)",
		c.MeanPolicy, c.CIPolicy, c.MeanBaseline, c.CIBaseline,
		c.GainPercent, c.ErrorBarReductionPercent)
}
