package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestBalanceIndex(t *testing.T) {
	tests := []struct {
		name    string
		loads   []float64
		want    float64
		wantErr bool
	}{
		{"empty", nil, 0, true},
		{"negative", []float64{1, -2}, 0, true},
		{"nan", []float64{math.NaN()}, 0, true},
		{"perfectly balanced", []float64{5, 5, 5, 5}, 1, false},
		{"single AP", []float64{7}, 1, false},
		{"all idle", []float64{0, 0, 0}, 1, false},
		{"one hot", []float64{10, 0, 0, 0}, 0.25, false},
		{"two of four", []float64{6, 6, 0, 0}, 0.5, false},
		{"uneven", []float64{1, 3}, 16.0 / 20.0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := BalanceIndex(tt.loads)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("BalanceIndex(%v) = %v, want %v", tt.loads, got, tt.want)
			}
		})
	}
}

func TestNormalizedBalanceIndex(t *testing.T) {
	tests := []struct {
		name  string
		loads []float64
		want  float64
	}{
		{"balanced", []float64{2, 2, 2}, 1},
		{"one hot n=4", []float64{9, 0, 0, 0}, 0}, // B = 1/n maps to 0
		{"single AP", []float64{3}, 1},
		{"idle", []float64{0, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := NormalizedBalanceIndex(tt.loads)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("NormalizedBalanceIndex(%v) = %v, want %v",
					tt.loads, got, tt.want)
			}
		})
	}
}

// Property: B ∈ [1/n, 1], invariant under permutation and positive scaling.
func TestBalanceIndexProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 1 + rng.Intn(12)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 100
		}
		b, err := BalanceIndex(loads)
		if err != nil {
			return false
		}
		if b < 1/float64(n)-1e-12 || b > 1+1e-12 {
			return false
		}
		// Permutation invariance.
		perm := rng.Perm(n)
		shuffled := make([]float64, n)
		for i, p := range perm {
			shuffled[i] = loads[p]
		}
		b2, _ := BalanceIndex(shuffled)
		if !almostEqual(b, b2, 1e-9) {
			return false
		}
		// Scale invariance.
		scale := 0.5 + rng.Float64()*10
		scaled := make([]float64, n)
		for i := range loads {
			scaled[i] = loads[i] * scale
		}
		b3, _ := BalanceIndex(scaled)
		if !almostEqual(b, b3, 1e-9) {
			return false
		}
		// Normalized form in [0, 1].
		nb, err := NormalizedBalanceIndex(loads)
		if err != nil || nb < 0 || nb > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewSeries(t *testing.T) {
	loads := [][]float64{
		{5, 5},
		{0, 0},
		{10, 0},
	}
	s, err := NewSeries(1000, 60, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 3 {
		t.Fatalf("len(Values) = %d, want 3", len(s.Values))
	}
	if !almostEqual(s.Values[0], 1, 1e-12) {
		t.Errorf("bin 0 = %v, want 1", s.Values[0])
	}
	if !s.Idle[1] || s.Idle[0] || s.Idle[2] {
		t.Errorf("Idle = %v, want [false true false]", s.Idle)
	}
	if !almostEqual(s.Values[2], 0, 1e-12) {
		t.Errorf("bin 2 = %v, want 0", s.Values[2])
	}
	if got := s.BinTime(2); got != 1120 {
		t.Errorf("BinTime(2) = %d, want 1120", got)
	}
	active := s.ActiveValues()
	if len(active) != 2 {
		t.Errorf("ActiveValues = %v, want 2 values", active)
	}
}

func TestNewSeriesErrors(t *testing.T) {
	if _, err := NewSeries(0, 0, nil); err == nil {
		t.Error("zero bin width should error")
	}
	if _, err := NewSeries(0, 60, [][]float64{{-1}}); err == nil {
		t.Error("negative load should error")
	}
}

func TestRelativeChanges(t *testing.T) {
	got := RelativeChanges([]float64{1, 1.1, 0.99, 0.99})
	want := []float64{0.1, (0.99 - 1.1) / 1.1, 0}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("RelativeChanges = %v, want %v", got, want)
		}
	}
	// Zero predecessor bins are skipped.
	got = RelativeChanges([]float64{0, 5, 10})
	if len(got) != 1 || !almostEqual(got[0], 1, 1e-12) {
		t.Errorf("RelativeChanges with zero = %v, want [1]", got)
	}
	if got := RelativeChanges(nil); len(got) != 0 {
		t.Errorf("empty input should give empty output, got %v", got)
	}
}

func TestVarianceOfBalance(t *testing.T) {
	// Constant series: no change, zero variance.
	if v := VarianceOfBalance([]float64{0.8, 0.8, 0.8, 0.8}); v != 0 {
		t.Errorf("constant variance = %v, want 0", v)
	}
	// Fluctuating series: positive variance.
	if v := VarianceOfBalance([]float64{0.5, 1.0, 0.5, 1.0}); v <= 0 {
		t.Errorf("fluctuating variance = %v, want > 0", v)
	}
	// Too few sub-periods.
	if v := VarianceOfBalance([]float64{0.5, 1.0}); v != 0 {
		t.Errorf("short series variance = %v, want 0", v)
	}
}

func TestCompare(t *testing.T) {
	policy := []float64{0.9, 0.88, 0.92, 0.91, 0.89}
	baseline := []float64{0.6, 0.5, 0.7, 0.65, 0.55}
	c, err := Compare(policy, baseline)
	if err != nil {
		t.Fatal(err)
	}
	if c.GainPercent <= 0 {
		t.Errorf("gain = %v, want > 0", c.GainPercent)
	}
	if c.ErrorBarReductionPercent <= 0 {
		t.Errorf("error-bar reduction = %v, want > 0 (policy is steadier)",
			c.ErrorBarReductionPercent)
	}
	if c.MeanPolicy <= c.MeanBaseline {
		t.Errorf("MeanPolicy %v should exceed MeanBaseline %v",
			c.MeanPolicy, c.MeanBaseline)
	}
	if s := c.String(); s == "" {
		t.Error("String should be non-empty")
	}
}

func TestCompareEmpty(t *testing.T) {
	if _, err := Compare(nil, []float64{1}); err == nil {
		t.Error("empty policy should error")
	}
	if _, err := Compare([]float64{1}, nil); err == nil {
		t.Error("empty baseline should error")
	}
}
