// Package metrics implements the load-balancing metrics of the S³ paper.
//
// The central quantity is the Chiu–Jain fairness index over per-AP
// throughputs (Section III-A), exposed both raw (BalanceIndex) and in the
// normalized form the paper plots, where 1 means perfectly balanced and
// values fall toward 1/n as load concentrates on one of n APs
// (NormalizedBalanceIndex). On top of it the package provides:
//
//   - the variance-of-balance measure S from the measurement study
//     (Fig. 3), which captures how stable the balance of a controller
//     domain is across a time window rather than at an instant;
//   - alternative fairness metrics used by the ablations to cross-check
//     that S³'s advantage is not an artifact of one index: the max-min
//     throughput ratio, proportional fairness (sum of log throughputs),
//     and the Gini coefficient;
//   - the comparison statistics quoted in the evaluation (Section V):
//     relative gain between two policies and the error-bar (variance)
//     reduction of Fig. 12.
//
// All functions are pure and deterministic; they take per-AP load slices
// produced by trace.BinLoads and never mutate their inputs.
package metrics
