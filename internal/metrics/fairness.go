package metrics

import (
	"math"
	"sort"
)

// The paper bases its balancing index on Chiu–Jain fairness and notes that
// "other fairness metrics, such as max-min and proportional fairness, may
// also be used". This file provides those alternatives plus the Gini
// coefficient, so experiments can cross-check that S³'s advantage is not
// an artifact of one metric.

// MaxMinRatio returns min(load)/max(load) ∈ [0, 1]; 1 is perfectly even.
// An all-idle vector is perfectly balanced (1). Errors match BalanceIndex.
func MaxMinRatio(loads []float64) (float64, error) {
	if _, err := BalanceIndex(loads); err != nil {
		return 0, err // reuse validation (empty / negative / NaN)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range loads {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == 0 {
		return 1, nil
	}
	return lo / hi, nil
}

// ProportionalFairness returns the normalized proportional-fairness score:
// the geometric mean of the loads divided by their arithmetic mean,
// ∈ [0, 1] with 1 perfectly even. Zero loads give 0 (log-utility is
// −∞ there); an all-idle vector is defined as 1.
func ProportionalFairness(loads []float64) (float64, error) {
	if _, err := BalanceIndex(loads); err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range loads {
		sum += v
	}
	if sum == 0 {
		return 1, nil
	}
	mean := sum / float64(len(loads))
	logSum := 0.0
	for _, v := range loads {
		if v == 0 {
			return 0, nil
		}
		logSum += math.Log(v)
	}
	geoMean := math.Exp(logSum / float64(len(loads)))
	return geoMean / mean, nil
}

// Gini returns the Gini coefficient of the loads ∈ [0, 1); 0 is perfectly
// even. An all-idle vector is 0.
func Gini(loads []float64) (float64, error) {
	if _, err := BalanceIndex(loads); err != nil {
		return 0, err
	}
	n := len(loads)
	sorted := append([]float64(nil), loads...)
	sort.Float64s(sorted)
	var cum, total float64
	for i, v := range sorted {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0, nil
	}
	return (2*cum)/(float64(n)*total) - float64(n+1)/float64(n), nil
}
