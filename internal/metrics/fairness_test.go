package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMinRatio(t *testing.T) {
	tests := []struct {
		name    string
		loads   []float64
		want    float64
		wantErr bool
	}{
		{"empty", nil, 0, true},
		{"negative", []float64{-1}, 0, true},
		{"even", []float64{4, 4, 4}, 1, false},
		{"idle", []float64{0, 0}, 1, false},
		{"half", []float64{2, 4}, 0.5, false},
		{"zero min", []float64{0, 5}, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MaxMinRatio(tt.loads)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("MaxMinRatio = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestProportionalFairness(t *testing.T) {
	tests := []struct {
		name    string
		loads   []float64
		want    float64
		wantErr bool
	}{
		{"empty", nil, 0, true},
		{"even", []float64{3, 3, 3}, 1, false},
		{"idle", []float64{0, 0}, 1, false},
		{"with zero", []float64{0, 6}, 0, false},
		{"uneven", []float64{1, 4}, 0.8, false}, // geo=2, mean=2.5
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := ProportionalFairness(tt.loads)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("ProportionalFairness = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestGini(t *testing.T) {
	tests := []struct {
		name    string
		loads   []float64
		want    float64
		wantErr bool
	}{
		{"empty", nil, 0, true},
		{"even", []float64{5, 5, 5, 5}, 0, false},
		{"idle", []float64{0, 0}, 0, false},
		// One user owns everything among two: G = 1/2 for n=2.
		{"concentrated", []float64{0, 10}, 0.5, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Gini(tt.loads)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Gini = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: all fairness metrics agree on the ordering "balanced beats
// concentrated", and ranges hold.
func TestFairnessMetricsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		n := 2 + rng.Intn(8)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = rng.Float64() * 100
		}
		mm, err1 := MaxMinRatio(loads)
		pf, err2 := ProportionalFairness(loads)
		g, err3 := Gini(loads)
		b, err4 := NormalizedBalanceIndex(loads)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if mm < 0 || mm > 1 || pf < 0 || pf > 1 || g < 0 || g >= 1 || b < 0 || b > 1 {
			return false
		}
		// A perfectly even copy scores at least as well on every metric.
		even := make([]float64, n)
		var sum float64
		for _, v := range loads {
			sum += v
		}
		for i := range even {
			even[i] = sum / float64(n)
		}
		mmE, _ := MaxMinRatio(even)
		pfE, _ := ProportionalFairness(even)
		gE, _ := Gini(even)
		bE, _ := NormalizedBalanceIndex(even)
		return mmE >= mm-1e-9 && pfE >= pf-1e-9 && gE <= g+1e-9 && bE >= b-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
