// Package obs is the repository's lightweight observability layer:
// process-wide counters, gauges, timers and duration histograms with
// atomic updates, a named registry, a deterministic JSON export, a
// Prometheus text-format exposition (served as /metrics next to the
// pprof handlers), and the flattened column view the flight recorder
// (internal/obs/flight) samples from. It is pure standard library and
// allocation-free on the hot path, so the selector beam search, the
// event engine and the synthetic generator can stay instrumented
// unconditionally.
//
// Metrics are created once (usually in package-level vars at the
// instrumentation site), carry a short help string that becomes the
// Prometheus # HELP text and the docs/OBSERVABILITY.md catalog entry,
// and are updated with atomic operations:
//
//	var selects = obs.GetCounter("core.select.calls",
//		"Selector.Select invocations (one per arriving user or group)")
//
//	func (s *Selector) Select(...) { selects.Inc(); ... }
//
// Names are dot-separated lowercase (subsystem.metric); the Prometheus
// exposition sanitizes dots to underscores. Snapshot, WriteJSON and
// WritePrometheus read a consistent-enough view for reporting (each
// metric is read atomically; the set of metrics only grows). Reset
// zeroes every registered metric, which the CLIs use to scope a report
// to one invocation and tests use for isolation.
//
// The full metric surface is cataloged in docs/OBSERVABILITY.md; a
// doc-drift test at the repository root keeps that catalog exact.
package obs
