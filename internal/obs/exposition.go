package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The Prometheus text exposition format, version 0.0.4:
// https://prometheus.io/docs/instrumenting/exposition_formats/
//
// Mapping from obs kinds:
//
//	Counter   -> counter      name value
//	Gauge     -> gauge        name value
//	Timer     -> summary      name_sum (seconds) + name_count
//	Histogram -> histogram    name_bucket{le="..."} cumulative,
//	                          name_sum (seconds) + name_count
//
// Dots in metric names become underscores; durations are exposed in
// seconds per Prometheus convention (internally they are nanoseconds).

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// SanitizeMetricName maps an obs metric name onto the Prometheus name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots (and any other invalid byte)
// become underscores, and a leading digit gains a leading underscore.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a help string for a # HELP line (backslash and
// newline, per the format spec).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatSeconds renders a nanosecond total as seconds with full float64
// precision ('g' drops trailing zeros, matching common exporters).
func formatSeconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// bucketLE returns the le label values for the histogram buckets, in
// seconds, parallel to histBounds plus "+Inf" for the overflow bucket.
func bucketLE() []string {
	les := make([]string, 0, len(histBounds)+1)
	for _, b := range histBounds {
		les = append(les, strconv.FormatFloat(b.Seconds(), 'g', -1, 64))
	}
	return append(les, "+Inf")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writeHeader writes the # HELP (when registered) and # TYPE lines.
func (r *Registry) writeHeader(w io.Writer, name, sanitized, kind string) error {
	if help := r.Help(name); help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", sanitized, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", sanitized, kind)
	return err
}

// WritePrometheus writes the registry's current state in the Prometheus
// text exposition format, metrics sorted by name within each kind so
// output is deterministic for a given state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Copy the metric maps under the lock, then format without it (the
	// metric objects themselves are read atomically).
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	timers := make(map[string]*Timer, len(r.timers))
	for n, t := range r.timers {
		timers[n] = t
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, name := range sortedKeys(counters) {
		s := SanitizeMetricName(name)
		if err := r.writeHeader(bw, name, s, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", s, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		s := SanitizeMetricName(name)
		if err := r.writeHeader(bw, name, s, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", s, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(timers) {
		s := SanitizeMetricName(name)
		t := timers[name]
		if err := r.writeHeader(bw, name, s, "summary"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s_sum %s\n", s, formatSeconds(t.nanos.Load())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s_count %d\n", s, t.Count()); err != nil {
			return err
		}
	}
	les := bucketLE()
	for _, name := range sortedKeys(histograms) {
		s := SanitizeMetricName(name)
		h := histograms[name]
		if err := r.writeHeader(bw, name, s, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", s, les[i], cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%s_sum %s\n", s, formatSeconds(h.nanos.Load())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "%s_count %d\n", s, h.Count()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePrometheus writes the default registry in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// Handler returns an http.Handler serving the registry in the
// Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// An error here means the client went away mid-write; there is
		// nothing left to report to.
		_ = r.WritePrometheus(w)
	})
}

// Handler returns the /metrics handler for the default registry.
func Handler() http.Handler { return Default.Handler() }

func init() {
	// Like the net/http/pprof import in profile.go, /metrics registers
	// on the default mux: every binary that serves -pprof gets the
	// Prometheus surface on the same port.
	http.Handle("/metrics", Handler())
}

// HistogramBounds returns the (shared) histogram bucket upper bounds;
// the final bucket is unbounded. Exposed for tooling (s3diag labels
// flight-recorder bucket columns with these).
func HistogramBounds() []time.Duration {
	out := make([]time.Duration, len(histBounds))
	copy(out, histBounds)
	return out
}
