package obs

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"core.select.calls":        "core_select_calls",
		"domain.sim.shard02.users": "domain_sim_shard02_users",
		"journal.seq":              "journal_seq",
		"already_fine:ok":          "already_fine:ok",
		"9starts.with.digit":       "_9starts_with_digit",
		"weird µ char":             "weird____char", // µ is 2 bytes, each sanitized
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promFamily is one metric family parsed back from the text exposition.
type promFamily struct {
	typ     string
	help    string
	samples map[string]float64 // sample key (name or name{le="x"}) -> value
}

// parsePrometheus is a minimal parser for the Prometheus text
// exposition format, v0.0.4: # HELP and # TYPE comment lines, plus
// "name value" and `name{le="x"} value` samples. It fails the test on
// anything it cannot parse — which is the point: the exposition must
// stay inside the subset every scraper understands.
func parsePrometheus(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	family := func(name string) *promFamily {
		// _sum/_count/_bucket samples belong to the summary or
		// histogram family with the base name, when declared.
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok {
				if f, ok := fams[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
					return f
				}
			}
		}
		if f, ok := fams[name]; ok {
			return f
		}
		f := &promFamily{samples: make(map[string]float64)}
		fams[name] = f
		return f
	}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			family(name).help = help
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			family(name).typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		// Sample: name[{labels}] value
		key, valStr, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(valStr, " ") {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label block: %q", ln+1, line)
			}
			name = key[:i]
		}
		for _, c := range name {
			valid := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
			if !valid {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		family(name).samples[key] = v
	}
	return fams
}

func TestPrometheusParseBack(t *testing.T) {
	r := &Registry{}
	r.GetCounter("demo.requests", "Requests served.").Add(42)
	r.GetGauge("demo.queue.depth", "Current queue depth.").Set(-3)
	r.GetTimer("demo.phase", "Phase wall time.").Observe(1500 * time.Millisecond)
	h := r.GetHistogram("demo.latency", "End-to-end latency.")
	h.Observe(5 * time.Microsecond)  // bucket <10µs
	h.Observe(50 * time.Millisecond) // bucket <100ms
	h.Observe(20 * time.Second)      // overflow bucket
	r.GetCounter("demo.zero", "Never incremented.")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())

	reqs := fams["demo_requests"]
	if reqs == nil || reqs.typ != "counter" || reqs.samples["demo_requests"] != 42 {
		t.Fatalf("demo_requests family = %+v", reqs)
	}
	if reqs.help != "Requests served." {
		t.Errorf("help = %q", reqs.help)
	}
	if g := fams["demo_queue_depth"]; g == nil || g.typ != "gauge" || g.samples["demo_queue_depth"] != -3 {
		t.Fatalf("demo_queue_depth family = %+v", g)
	}
	if z := fams["demo_zero"]; z == nil || z.samples["demo_zero"] != 0 {
		t.Fatalf("zero-valued counter must still be exposed, got %+v", z)
	}

	ph := fams["demo_phase"]
	if ph == nil || ph.typ != "summary" {
		t.Fatalf("demo_phase family = %+v", ph)
	}
	if got := ph.samples["demo_phase_sum"]; got != 1.5 {
		t.Errorf("summary sum = %v, want 1.5 (seconds)", got)
	}
	if got := ph.samples["demo_phase_count"]; got != 1 {
		t.Errorf("summary count = %v", got)
	}

	lat := fams["demo_latency"]
	if lat == nil || lat.typ != "histogram" {
		t.Fatalf("demo_latency family = %+v", lat)
	}
	if got := lat.samples["demo_latency_count"]; got != 3 {
		t.Errorf("histogram count = %v", got)
	}
	// Buckets are cumulative and the +Inf bucket equals the count.
	var prev float64
	var sawInf bool
	for _, le := range bucketLE() {
		key := "demo_latency_bucket{le=" + strconv.Quote(le) + "}"
		v, ok := lat.samples[key]
		if !ok {
			t.Fatalf("missing bucket %s in %v", key, lat.samples)
		}
		if v < prev {
			t.Errorf("bucket le=%s not cumulative: %v < %v", le, v, prev)
		}
		prev = v
		if le == "+Inf" {
			sawInf = true
			if v != 3 {
				t.Errorf("+Inf bucket = %v, want count 3", v)
			}
		}
	}
	if !sawInf {
		t.Error("no +Inf bucket")
	}
	if got := lat.samples["demo_latency_bucket{le=\"1e-05\"}"]; got != 1 {
		t.Errorf("le=1e-05 bucket = %v, want 1", got)
	}

	// Deterministic: same state, byte-identical output.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("exposition is not deterministic")
	}
}

func TestMetricsHandler(t *testing.T) {
	r := &Registry{}
	r.GetCounter("handler.hits", "Hits.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got := rec.Header().Get("Content-Type"); got != ContentType {
		t.Errorf("Content-Type = %q, want %q", got, ContentType)
	}
	fams := parsePrometheus(t, rec.Body.String())
	if f := fams["handler_hits"]; f == nil || f.samples["handler_hits"] != 1 {
		t.Fatalf("handler output missing handler_hits: %+v", f)
	}
}

func TestHelpRegistration(t *testing.T) {
	r := &Registry{}
	r.GetCounter("h.c", "first")
	r.GetCounter("h.c", "second") // first non-empty help wins
	if got := r.Help("h.c"); got != "first" {
		t.Errorf("Help = %q, want %q", got, "first")
	}
	r.GetGauge("h.g") // no help is fine
	if got := r.Help("h.g"); got != "" {
		t.Errorf("Help for undocumented gauge = %q", got)
	}
}

func TestColumns(t *testing.T) {
	r := &Registry{}
	r.GetCounter("c.a").Add(7)
	r.GetGauge("g.a").Set(-2)
	r.GetTimer("t.a").Observe(3 * time.Millisecond)
	r.GetHistogram("h.a").Observe(5 * time.Millisecond) // bucket index 3 (<10ms)
	cols := r.Columns()
	want := map[string]Column{
		"c.a":       {Value: 7, Cumulative: true},
		"g.a":       {Value: -2},
		"t.a#count": {Value: 1, Cumulative: true},
		"t.a#ns":    {Value: int64(3 * time.Millisecond), Cumulative: true},
		"h.a#count": {Value: 1, Cumulative: true},
		"h.a#ns":    {Value: int64(5 * time.Millisecond), Cumulative: true},
		"h.a#max":   {Value: int64(5 * time.Millisecond)},
		"h.a#b3":    {Value: 1, Cumulative: true},
	}
	for k, w := range want {
		if got, ok := cols[k]; !ok || got != w {
			t.Errorf("Columns[%q] = %+v (present %v), want %+v", k, got, ok, w)
		}
	}
	if len(cols) != len(want) {
		t.Errorf("Columns has %d entries, want %d: %v", len(cols), len(want), cols)
	}
}

func TestKinds(t *testing.T) {
	r := &Registry{}
	r.GetCounter("k.c")
	r.GetGauge("k.g")
	r.GetTimer("k.t")
	r.GetHistogram("k.h")
	kinds := r.Kinds()
	want := map[string]string{"k.c": "counter", "k.g": "gauge", "k.t": "timer", "k.h": "histogram"}
	for n, k := range want {
		if kinds[n] != k {
			t.Errorf("Kinds[%q] = %q, want %q", n, kinds[n], k)
		}
	}
}
