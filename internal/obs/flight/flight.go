// Package flight is the FTDC-style flight recorder: a background
// sampler that delta-encodes periodic snapshots of the whole obs
// registry into a bounded on-disk ring, so the counter trajectories
// leading up to any incident — a crash in a chaos soak, a stall in a
// long -drive run — can be reconstructed after the fact (cmd/s3diag
// decodes rings into per-metric time series).
//
// # On-disk format
//
// A ring is a directory of flight-<seq>.fr segment files. Every record
// is one magic|length|CRC-32C frame (the internal/journal framing, so
// torn tails and bit flips are tolerated exactly like WAL recovery)
// holding one JSON sample:
//
//	{"t": <unix ms>, "full": true, "v": {col: abs, ...}, "k": {col: "c"|"g"}}
//	{"t": <unix ms>, "v": {col: delta, ...}}
//
// The first record of every segment is a full snapshot — absolute
// values for every column plus each column's kind ("c" cumulative, "g"
// gauge-like) — making each segment self-contained. Subsequent records
// carry only the columns that changed, as signed deltas. Columns are
// the registry's flattened int64 series (obs.Columns): counters and
// gauges by name, timers as name#count/name#ns, histograms as
// name#count/name#ns/name#max/name#b<i>.
//
// Segments rotate at MaxBytes/4 and the oldest segments are deleted
// once the ring exceeds MaxBytes, so disk use is bounded no matter how
// long the process runs. Records are written straight to the file (no
// user-space buffering) and never fsynced: a kill -9 loses at most the
// record being written — which the CRC framing detects as a torn tail —
// while the page cache keeps the rest.
package flight

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
)

// Recorder health, exported through the registry it samples — so the
// flight recorder records its own vitals too.
var (
	obsSamples   = obs.GetCounter("flight.samples", "Flight-recorder samples written (full + delta records)")
	obsBytes     = obs.GetCounter("flight.sample_bytes", "Bytes appended to the flight ring, frame overhead included")
	obsRotations = obs.GetCounter("flight.rotations", "Flight ring segment rotations")
	obsErrors    = obs.GetCounter("flight.errors", "Flight-recorder write/rotate errors (recording continues)")
)

// DefaultMaxBytes bounds a ring's disk use when Options.MaxBytes is 0.
const DefaultMaxBytes = 8 << 20

// minSegmentBytes is the floor for the per-segment rotation threshold,
// so tiny MaxBytes settings still produce usable segments.
const minSegmentBytes = 64 << 10

// Options configures a Recorder. Dir is required; everything else
// defaults sensibly.
type Options struct {
	// Dir is the ring directory (created if absent).
	Dir string
	// Every is the sampling period (default 1s).
	Every time.Duration
	// MaxBytes bounds the ring's total size on disk (default
	// DefaultMaxBytes). Rotation threshold is MaxBytes/4, floored at
	// 64KiB.
	MaxBytes int64
	// Registry is the sampled registry (default obs.Default).
	Registry *obs.Registry
	// Logger receives write/rotate errors (default: discard).
	Logger *log.Logger

	// now substitutes the clock in tests.
	now func() time.Time
	// segBytes overrides the rotation threshold in tests.
	segBytes int64
}

// record is the JSON payload of one frame.
type record struct {
	T    int64             `json:"t"`              // sample time, unix milliseconds
	Full bool              `json:"full,omitempty"` // V holds absolute values for all columns
	V    map[string]int64  `json:"v"`              // full: absolutes; delta: changed columns only
	K    map[string]string `json:"k,omitempty"`    // full only: column kinds, "c"|"g"
}

// Recorder samples a registry into a ring. Start it with Start, stop it
// with Stop; a kill -9 instead of Stop leaves a decodable ring.
type Recorder struct {
	opts    Options
	segSize int64

	mu      sync.Mutex
	f       *os.File
	seq     uint64
	written int64            // bytes in the current segment
	last    map[string]int64 // previous sample's absolute values
	closed  bool

	stop chan struct{}
	done chan struct{}
}

// Start opens (or extends) the ring in opts.Dir, writes an initial full
// snapshot and begins sampling every opts.Every.
func Start(opts Options) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("flight: Dir is required")
	}
	if opts.Every <= 0 {
		opts.Every = time.Second
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultMaxBytes
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	if opts.Logger == nil {
		opts.Logger = log.New(os.Stderr, "", 0)
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: mkdir %s: %w", opts.Dir, err)
	}
	r := &Recorder{
		opts:    opts,
		segSize: opts.MaxBytes / 4,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if r.segSize < minSegmentBytes {
		r.segSize = minSegmentBytes
	}
	if opts.segBytes > 0 {
		r.segSize = opts.segBytes
	}
	// A restart continues the sequence after the surviving segments, so
	// one ring accumulates the history across process lifetimes.
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if n := len(segs); n > 0 {
		r.seq = segs[n-1].seq
	}
	r.mu.Lock()
	err = r.rotateLocked() // opens flight-<seq+1> and writes the full snapshot
	r.mu.Unlock()
	if err != nil {
		return nil, err
	}
	go r.loop()
	return r, nil
}

// Stop takes a final sample, closes the current segment and stops the
// sampler. Safe to call once.
func (r *Recorder) Stop() error {
	close(r.stop)
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampleLocked()
	r.closed = true
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// Sample records one sample immediately, outside the periodic schedule
// (tests, and a final data point on orderly shutdown paths).
func (r *Recorder) Sample() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sampleLocked()
}

func (r *Recorder) loop() {
	defer close(r.done)
	tick := time.NewTicker(r.opts.Every)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.mu.Lock()
			r.sampleLocked()
			r.mu.Unlock()
		}
	}
}

// sampleLocked writes one record: a delta against the previous sample,
// or a full snapshot right after a rotation.
func (r *Recorder) sampleLocked() {
	if r.f == nil || r.closed {
		return
	}
	if r.written >= r.segSize {
		if err := r.rotateLocked(); err != nil {
			obsErrors.Inc()
			r.opts.Logger.Printf("flight: rotate: %v", err)
			return
		}
		return // rotateLocked wrote this tick's full snapshot
	}
	cols := r.opts.Registry.Columns()
	rec := record{T: r.opts.now().UnixMilli(), V: make(map[string]int64)}
	for name, col := range cols {
		if d := col.Value - r.last[name]; d != 0 {
			rec.V[name] = d
		}
		r.last[name] = col.Value
	}
	// Columns can disappear only on registry Reset; record the drop so
	// decoded series return to zero rather than flat-lining.
	for name := range r.last {
		if _, ok := cols[name]; !ok {
			rec.V[name] = -r.last[name]
			delete(r.last, name)
		}
	}
	r.writeLocked(rec)
}

// rotateLocked seals the current segment, prunes the ring to MaxBytes
// and opens the next segment with a full snapshot as its first record.
func (r *Recorder) rotateLocked() error {
	if r.f != nil {
		if err := r.f.Close(); err != nil {
			r.opts.Logger.Printf("flight: close segment: %v", err)
		}
		r.f = nil
		obsRotations.Inc()
		r.pruneLocked()
	}
	r.seq++
	f, err := os.Create(segmentPath(r.opts.Dir, r.seq))
	if err != nil {
		return err
	}
	r.f = f
	r.written = 0
	// Full snapshot: absolute values and kinds for every column.
	cols := r.opts.Registry.Columns()
	rec := record{
		T:    r.opts.now().UnixMilli(),
		Full: true,
		V:    make(map[string]int64, len(cols)),
		K:    make(map[string]string, len(cols)),
	}
	r.last = make(map[string]int64, len(cols))
	for name, col := range cols {
		rec.V[name] = col.Value
		if col.Cumulative {
			rec.K[name] = "c"
		} else {
			rec.K[name] = "g"
		}
		r.last[name] = col.Value
	}
	r.writeLocked(rec)
	return nil
}

// writeLocked frames and appends one record; errors are counted and
// logged, never fatal — the recorder is diagnosis, not correctness.
func (r *Recorder) writeLocked(rec record) {
	payload, err := json.Marshal(rec)
	if err != nil {
		obsErrors.Inc()
		r.opts.Logger.Printf("flight: encode: %v", err)
		return
	}
	frame := journal.EncodeFrame(payload)
	n, err := r.f.Write(frame)
	r.written += int64(n)
	if err != nil {
		obsErrors.Inc()
		r.opts.Logger.Printf("flight: write: %v", err)
		return
	}
	obsSamples.Inc()
	obsBytes.Add(int64(len(frame)))
}

// pruneLocked deletes the oldest closed segments until the ring fits
// MaxBytes. Best-effort.
func (r *Recorder) pruneLocked() {
	segs, err := listSegments(r.opts.Dir)
	if err != nil {
		r.opts.Logger.Printf("flight: prune: %v", err)
		return
	}
	var total int64
	for _, s := range segs {
		total += s.size
	}
	for _, s := range segs {
		if total <= r.opts.MaxBytes || len(segs) == 1 {
			break
		}
		if err := os.Remove(filepath.Join(r.opts.Dir, s.name)); err != nil {
			r.opts.Logger.Printf("flight: prune %s: %v", s.name, err)
			break
		}
		total -= s.size
		segs = segs[1:]
	}
}

// segment is one parsed ring file.
type segment struct {
	name string
	seq  uint64
	size int64
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("flight-%010d.fr", seq))
}

// listSegments returns the ring's segments sorted by ascending
// sequence. Unrelated files are ignored.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("flight: read dir %s: %w", dir, err)
	}
	var segs []segment
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".fr") {
			continue
		}
		seq, perr := strconv.ParseUint(name[7:len(name)-3], 10, 64)
		if perr != nil {
			continue
		}
		info, ierr := ent.Info()
		if ierr != nil {
			continue
		}
		segs = append(segs, segment{name: name, seq: seq, size: info.Size()})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].seq < segs[k].seq })
	return segs, nil
}

// Sample is one decoded ring record with absolute column values.
type Sample struct {
	// T is the sample time.
	T time.Time
	// Full marks samples decoded from a full-snapshot record (segment
	// starts and process restarts); cumulative columns may legitimately
	// reset to a lower value here.
	Full bool
	// V holds the absolute value of every column known at this sample.
	V map[string]int64
}

// DecodeStats summarizes ring damage found while decoding.
type DecodeStats struct {
	Segments      int
	Records       int
	CorruptFrames int
	TornTails     int
}

// Ring is a fully decoded flight ring.
type Ring struct {
	Samples []Sample
	// Kinds maps columns to "c" (cumulative) or "g" (gauge-like), as
	// recorded in the full snapshots.
	Kinds map[string]string
	Stats DecodeStats
}

// Decode reads every segment of the ring in dir and reconstructs the
// absolute per-column time series. Torn tails and corrupt frames are
// counted and skipped, mirroring journal recovery.
func Decode(dir string) (*Ring, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	ring := &Ring{Kinds: make(map[string]string)}
	running := make(map[string]int64)
	for _, seg := range segs {
		data, err := os.ReadFile(filepath.Join(dir, seg.name))
		if err != nil {
			ring.Stats.CorruptFrames++
			continue
		}
		ring.Stats.Segments++
		payloads, corrupt, torn := journal.DecodeFrames(data)
		ring.Stats.CorruptFrames += corrupt
		if torn {
			ring.Stats.TornTails++
		}
		for _, payload := range payloads {
			var rec record
			if err := json.Unmarshal(payload, &rec); err != nil {
				ring.Stats.CorruptFrames++
				continue
			}
			if rec.Full {
				running = make(map[string]int64, len(rec.V))
				for name, v := range rec.V {
					running[name] = v
				}
				for name, k := range rec.K {
					ring.Kinds[name] = k
				}
			} else {
				for name, d := range rec.V {
					if v := running[name] + d; v == 0 {
						delete(running, name)
					} else {
						running[name] = v
					}
				}
			}
			s := Sample{
				T:    time.UnixMilli(rec.T),
				Full: rec.Full,
				V:    make(map[string]int64, len(running)),
			}
			for name, v := range running {
				s.V[name] = v
			}
			ring.Samples = append(ring.Samples, s)
			ring.Stats.Records++
		}
	}
	return ring, nil
}

// Columns returns the sorted union of column names across the ring.
func (r *Ring) Columns() []string {
	set := make(map[string]struct{})
	for _, s := range r.Samples {
		for name := range s.V {
			set[name] = struct{}{}
		}
	}
	cols := make([]string, 0, len(set))
	for name := range set {
		cols = append(cols, name)
	}
	sort.Strings(cols)
	return cols
}
