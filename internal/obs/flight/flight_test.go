package flight

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/obs"
)

// fakeClock hands out strictly increasing timestamps 1s apart.
func fakeClock() func() time.Time {
	t := time.UnixMilli(1_700_000_000_000)
	return func() time.Time {
		t = t.Add(time.Second)
		return t
	}
}

// start opens a recorder on a private registry with the periodic
// sampler effectively disabled; tests drive Sample() by hand.
func start(t *testing.T, reg *obs.Registry, dir string, opts Options) *Recorder {
	t.Helper()
	opts.Dir = dir
	opts.Registry = reg
	opts.Every = time.Hour
	if opts.now == nil {
		opts.now = fakeClock()
	}
	r, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := &obs.Registry{}
	c := reg.GetCounter("rt.count", "test counter")
	g := reg.GetGauge("rt.gauge", "test gauge")
	h := reg.GetHistogram("rt.hist", "test histogram")

	rec := start(t, reg, dir, Options{})
	c.Add(5)
	g.Set(3)
	h.Observe(2 * time.Millisecond)
	rec.Sample()
	c.Add(2)
	g.Set(-1)
	rec.Sample()
	if err := rec.Stop(); err != nil { // Stop takes a final (unchanged) sample
		t.Fatal(err)
	}

	ring, err := Decode(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Initial full snapshot + 2 manual samples + Stop's final sample.
	if len(ring.Samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(ring.Samples))
	}
	if !ring.Samples[0].Full || ring.Samples[1].Full {
		t.Errorf("full flags = %v, %v", ring.Samples[0].Full, ring.Samples[1].Full)
	}
	s1, s2 := ring.Samples[1], ring.Samples[2]
	if s1.V["rt.count"] != 5 || s2.V["rt.count"] != 7 {
		t.Errorf("rt.count series = %d, %d; want 5, 7", s1.V["rt.count"], s2.V["rt.count"])
	}
	if s1.V["rt.gauge"] != 3 || s2.V["rt.gauge"] != -1 {
		t.Errorf("rt.gauge series = %d, %d; want 3, -1", s1.V["rt.gauge"], s2.V["rt.gauge"])
	}
	if s1.V["rt.hist#count"] != 1 || s1.V["rt.hist#ns"] != int64(2*time.Millisecond) {
		t.Errorf("hist columns = %d, %d", s1.V["rt.hist#count"], s1.V["rt.hist#ns"])
	}
	if ring.Kinds["rt.count"] != "c" || ring.Kinds["rt.gauge"] != "g" || ring.Kinds["rt.hist#max"] != "g" {
		t.Errorf("kinds = %v", ring.Kinds)
	}
	// The unchanged final sample still lands, carrying the same values.
	if got := ring.Samples[3].V["rt.count"]; got != 7 {
		t.Errorf("final sample rt.count = %d, want 7", got)
	}
	// Timestamps are strictly increasing.
	for i := 1; i < len(ring.Samples); i++ {
		if !ring.Samples[i].T.After(ring.Samples[i-1].T) {
			t.Errorf("sample %d time %v not after %v", i, ring.Samples[i].T, ring.Samples[i-1].T)
		}
	}
	if ring.Stats.CorruptFrames != 0 || ring.Stats.TornTails != 0 {
		t.Errorf("clean ring decoded with damage: %+v", ring.Stats)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	reg := &obs.Registry{}
	c := reg.GetCounter("tt.count")
	rec := start(t, reg, dir, Options{})
	c.Add(9)
	rec.Sample()
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill -9 mid-write: append half a frame to the segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments = %v, err %v", segs, err)
	}
	path := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Valid magic, then truncation mid-header.
	if _, err := f.Write([]byte{0xF5, 0x33, 0x57, 0xAA, 0x10}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ring, err := Decode(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Stats.TornTails != 1 {
		t.Errorf("torn tails = %d, want 1", ring.Stats.TornTails)
	}
	last := ring.Samples[len(ring.Samples)-1]
	if last.V["tt.count"] != 9 {
		t.Errorf("decoded count = %d, want 9", last.V["tt.count"])
	}
}

func TestRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	reg := &obs.Registry{}
	c := reg.GetCounter("rp.count")
	// Tiny segments: rotate after ~1KiB, keep the ring under ~3KiB.
	rec := start(t, reg, dir, Options{MaxBytes: 3 << 10, segBytes: 1 << 10})
	for i := 0; i < 200; i++ {
		c.Inc()
		rec.Sample()
	}
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", len(segs))
	}
	var total int64
	for _, s := range segs {
		total += s.size
	}
	// Budget holds up to one segment of slack (the active segment grows
	// past the threshold before rotating).
	if total > (3<<10)+(1<<10)+512 {
		t.Errorf("ring size = %d bytes, budget 3KiB (+slack)", total)
	}

	// Pruned ring still decodes: the first surviving record is a full
	// snapshot, so absolute values are exact.
	ring, err := Decode(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ring.Samples[len(ring.Samples)-1]
	if last.V["rp.count"] != 200 {
		t.Errorf("decoded count = %d, want 200", last.V["rp.count"])
	}
	if !ring.Samples[0].Full {
		t.Error("first surviving record is not a full snapshot")
	}
	// Cumulative columns never decrease except at full snapshots.
	prev := int64(-1)
	for _, s := range ring.Samples {
		v := s.V["rp.count"]
		if !s.Full && v < prev {
			t.Errorf("rp.count decreased %d -> %d outside a full snapshot", prev, v)
		}
		prev = v
	}
}

func TestRestartContinuesRing(t *testing.T) {
	dir := t.TempDir()
	reg := &obs.Registry{}
	c := reg.GetCounter("rs.count")

	rec := start(t, reg, dir, Options{})
	c.Add(4)
	rec.Sample()
	if err := rec.Stop(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh process state (registry reset), same ring dir.
	reg.Reset()
	rec2 := start(t, reg, dir, Options{})
	c.Add(1)
	rec2.Sample()
	if err := rec2.Stop(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].seq >= segs[1].seq {
		t.Fatalf("segments after restart = %+v", segs)
	}
	ring, err := Decode(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The restart boundary is a full snapshot that resets the counter.
	last := ring.Samples[len(ring.Samples)-1]
	if last.V["rs.count"] != 1 {
		t.Errorf("post-restart count = %d, want 1", last.V["rs.count"])
	}
	first := ring.Samples[1] // first pre-restart sample after the initial full
	if first.V["rs.count"] != 4 {
		t.Errorf("pre-restart count = %d, want 4", first.V["rs.count"])
	}
}

func TestStartRequiresDir(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Fatal("Start without Dir must fail")
	}
}
