package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any non-negative increment; batching increments
// in a local variable and adding once keeps tight loops cheap).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value that can move both ways — a snapshot
// sequence number, a published-state age, a queue depth. Unlike Counter
// it is Set, not accumulated.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta atomically and returns the new value —
// the race-free way to track a population (active connections, queue
// depth) from concurrent goroutines, where interleaved read-then-Set
// pairs could publish a stale value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer accumulates total duration and call count of a code region.
type Timer struct {
	count atomic.Int64
	nanos atomic.Int64
}

// Observe records one timed region.
func (t *Timer) Observe(d time.Duration) {
	t.count.Add(1)
	t.nanos.Add(int64(d))
}

// Count returns the number of observations.
func (t *Timer) Count() int64 { return t.count.Load() }

// Total returns the accumulated duration.
func (t *Timer) Total() time.Duration { return time.Duration(t.nanos.Load()) }

// histBounds are the upper bounds (exclusive) of the histogram buckets;
// the final bucket is unbounded. Decade steps from 10µs to 10s cover
// everything from a single Select call to a full experiment sweep.
var histBounds = []time.Duration{
	10 * time.Microsecond,
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// histLabels name the buckets in exports, parallel to histBounds plus
// the overflow bucket.
var histLabels = []string{
	"<10µs", "<100µs", "<1ms", "<10ms", "<100ms", "<1s", "<10s", "≥10s",
}

// Histogram is a fixed-bucket duration histogram (decade buckets from
// 10µs to 10s) that also tracks count, total and max. It serves as the
// per-stage latency breakdown of the pipeline.
type Histogram struct {
	buckets [8]atomic.Int64
	count   atomic.Int64
	nanos   atomic.Int64
	max     atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(histBounds) && d >= histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.nanos.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Total returns the accumulated duration.
func (h *Histogram) Total() time.Duration { return time.Duration(h.nanos.Load()) }

// Registry is a named collection of metrics. The zero value is ready to
// use; most callers use the package-level default registry through
// GetCounter, GetTimer and GetHistogram.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	timers     map[string]*Timer
	histograms map[string]*Histogram
	help       map[string]string
}

// Default is the process-wide registry every Get* helper registers into.
var Default = &Registry{}

// setHelpLocked records the metric's help text (the Prometheus # HELP
// line). The first non-empty help string for a name wins.
func (r *Registry) setHelpLocked(name string, help []string) {
	if len(help) == 0 || help[0] == "" {
		return
	}
	if r.help == nil {
		r.help = make(map[string]string)
	}
	if _, ok := r.help[name]; !ok {
		r.help[name] = help[0]
	}
}

// Help returns the registered help text for a metric name ("" if none).
func (r *Registry) Help(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// GetCounter returns the registry's counter with the given name,
// creating it on first use. The optional help string documents what the
// counter counts; it becomes the Prometheus # HELP text.
func (r *Registry) GetCounter(name string, help ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	r.setHelpLocked(name, help)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// GetGauge returns the registry's gauge with the given name, creating
// it on first use. The optional help string documents what the gauge
// tracks; it becomes the Prometheus # HELP text.
func (r *Registry) GetGauge(name string, help ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	r.setHelpLocked(name, help)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GetTimer returns the registry's timer with the given name, creating
// it on first use. The optional help string documents the timed region;
// it becomes the Prometheus # HELP text.
func (r *Registry) GetTimer(name string, help ...string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timers == nil {
		r.timers = make(map[string]*Timer)
	}
	r.setHelpLocked(name, help)
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// GetHistogram returns the registry's histogram with the given name,
// creating it on first use. The optional help string documents the
// observed region; it becomes the Prometheus # HELP text.
func (r *Registry) GetHistogram(name string, help ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	r.setHelpLocked(name, help)
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered metric (the metric objects stay
// registered, so package-level vars holding them remain valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, t := range r.timers {
		t.count.Store(0)
		t.nanos.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.nanos.Store(0)
		h.max.Store(0)
	}
}

// GetCounter returns a counter from the default registry.
func GetCounter(name string, help ...string) *Counter { return Default.GetCounter(name, help...) }

// GetGauge returns a gauge from the default registry.
func GetGauge(name string, help ...string) *Gauge { return Default.GetGauge(name, help...) }

// GetTimer returns a timer from the default registry.
func GetTimer(name string, help ...string) *Timer { return Default.GetTimer(name, help...) }

// GetHistogram returns a histogram from the default registry.
func GetHistogram(name string, help ...string) *Histogram { return Default.GetHistogram(name, help...) }

// Reset zeroes the default registry.
func Reset() { Default.Reset() }

// TimerSnapshot is the exported state of a Timer.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
}

// HistogramSnapshot is the exported state of a Histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	TotalMS float64          `json:"total_ms"`
	MeanMS  float64          `json:"mean_ms"`
	MaxMS   float64          `json:"max_ms"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time view of a registry, suitable for JSON
// encoding (encoding/json sorts map keys, so output is deterministic
// for a given metric state).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// TakeSnapshot captures the registry's current metric values.
func (r *Registry) TakeSnapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.timers) > 0 {
		snap.Timers = make(map[string]TimerSnapshot, len(r.timers))
		for name, t := range r.timers {
			ts := TimerSnapshot{Count: t.Count(), TotalMS: ms(t.Total())}
			if ts.Count > 0 {
				ts.MeanMS = ts.TotalMS / float64(ts.Count)
			}
			snap.Timers[name] = ts
		}
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			hs := HistogramSnapshot{
				Count:   h.Count(),
				TotalMS: ms(h.Total()),
				MaxMS:   ms(time.Duration(h.max.Load())),
			}
			if hs.Count > 0 {
				hs.MeanMS = hs.TotalMS / float64(hs.Count)
			}
			hs.Buckets = make(map[string]int64)
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n > 0 {
					hs.Buckets[histLabels[i]] = n
				}
			}
			snap.Histograms[name] = hs
		}
	}
	return snap
}

// TakeSnapshot captures the default registry.
func TakeSnapshot() Snapshot { return Default.TakeSnapshot() }

// WriteJSON writes the registry snapshot as indented JSON with sorted
// keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.TakeSnapshot())
}

// WriteJSON writes the default registry's snapshot.
func WriteJSON(w io.Writer) error { return Default.WriteJSON(w) }

// Names returns the sorted names of all registered metrics of the
// registry (counters, timers and histograms pooled), mainly for tests.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.timers {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Kinds returns every registered metric name mapped to its kind:
// "counter", "gauge", "timer" or "histogram".
func (r *Registry) Kinds() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	kinds := make(map[string]string,
		len(r.counters)+len(r.gauges)+len(r.timers)+len(r.histograms))
	for n := range r.counters {
		kinds[n] = "counter"
	}
	for n := range r.gauges {
		kinds[n] = "gauge"
	}
	for n := range r.timers {
		kinds[n] = "timer"
	}
	for n := range r.histograms {
		kinds[n] = "histogram"
	}
	return kinds
}

// Column is one flattened int64 series of the registry: a counter or
// gauge value, or one component (count, total nanoseconds, max, bucket)
// of a timer or histogram. The flight recorder samples these.
type Column struct {
	Value int64
	// Cumulative marks series that only move up over a process's
	// lifetime (counters, timer/histogram counts, totals and buckets)
	// as opposed to point-in-time values (gauges, histogram max).
	Cumulative bool
}

// Columns flattens the registry into named int64 series. Counters and
// gauges keep their name; a timer t contributes "t#count" and "t#ns";
// a histogram h contributes "h#count", "h#ns", "h#max" and one
// "h#b<i>" per bucket (bucket i's upper bound is the i'th entry of the
// decade bounds, the last bucket unbounded). The "#" separator cannot
// appear in a metric name, so flattened names never collide with plain
// metrics.
func (r *Registry) Columns() map[string]Column {
	r.mu.Lock()
	defer r.mu.Unlock()
	cols := make(map[string]Column,
		len(r.counters)+len(r.gauges)+2*len(r.timers)+11*len(r.histograms))
	for n, c := range r.counters {
		cols[n] = Column{Value: c.Value(), Cumulative: true}
	}
	for n, g := range r.gauges {
		cols[n] = Column{Value: g.Value()}
	}
	for n, t := range r.timers {
		cols[n+"#count"] = Column{Value: t.count.Load(), Cumulative: true}
		cols[n+"#ns"] = Column{Value: t.nanos.Load(), Cumulative: true}
	}
	for n, h := range r.histograms {
		cols[n+"#count"] = Column{Value: h.count.Load(), Cumulative: true}
		cols[n+"#ns"] = Column{Value: h.nanos.Load(), Cumulative: true}
		cols[n+"#max"] = Column{Value: h.max.Load()}
		for i := range h.buckets {
			if v := h.buckets[i].Load(); v != 0 {
				cols[fmt.Sprintf("%s#b%d", n, i)] = Column{Value: v, Cumulative: true}
			}
		}
	}
	return cols
}
