package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := &Registry{}
	c := r.GetCounter("test.counter")
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestTimerAndHistogramConcurrent(t *testing.T) {
	r := &Registry{}
	tm := r.GetTimer("test.timer")
	h := r.GetHistogram("test.hist")
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tm.Observe(time.Millisecond)
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	wantN := int64(workers * perWorker)
	if tm.Count() != wantN || h.Count() != wantN {
		t.Fatalf("counts = %d/%d, want %d", tm.Count(), h.Count(), wantN)
	}
	if got := tm.Total(); got != time.Duration(wantN)*time.Millisecond {
		t.Fatalf("timer total = %v", got)
	}
	snap := r.TakeSnapshot()
	// 1ms lands in the "<10ms" bucket.
	if got := snap.Histograms["test.hist"].Buckets["<10ms"]; got != wantN {
		t.Fatalf("bucket <10ms = %d, want %d", got, wantN)
	}
}

func TestGauge(t *testing.T) {
	r := &Registry{}
	g := r.GetGauge("test.gauge")
	if g.Value() != 0 {
		t.Errorf("zero gauge = %d", g.Value())
	}
	g.Set(42)
	g.Set(7) // gauges move both ways
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	if r.GetGauge("test.gauge") != g {
		t.Error("GetGauge must return the same instance")
	}
	snap := r.TakeSnapshot()
	if snap.Gauges["test.gauge"] != 7 {
		t.Errorf("snapshot gauge = %d, want 7", snap.Gauges["test.gauge"])
	}
	r.Reset()
	if g.Value() != 0 {
		t.Errorf("gauge after reset = %d, want 0", g.Value())
	}
}

func TestGetReturnsSameMetric(t *testing.T) {
	r := &Registry{}
	if r.GetCounter("x") != r.GetCounter("x") {
		t.Error("GetCounter should return the same instance")
	}
	if r.GetTimer("x") != r.GetTimer("x") {
		t.Error("GetTimer should return the same instance")
	}
	if r.GetHistogram("x") != r.GetHistogram("x") {
		t.Error("GetHistogram should return the same instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := &Registry{}
	h := r.GetHistogram("b")
	h.Observe(time.Microsecond)        // <10µs
	h.Observe(50 * time.Microsecond)   // <100µs
	h.Observe(5 * time.Millisecond)    // <10ms
	h.Observe(2 * time.Second)         // <10s
	h.Observe(20 * time.Second)        // ≥10s
	snap := r.TakeSnapshot().Histograms["b"]
	want := map[string]int64{"<10µs": 1, "<100µs": 1, "<10ms": 1, "<10s": 1, "≥10s": 1}
	for label, n := range want {
		if snap.Buckets[label] != n {
			t.Errorf("bucket %s = %d, want %d", label, snap.Buckets[label], n)
		}
	}
	if snap.Count != 5 {
		t.Errorf("count = %d", snap.Count)
	}
	if snap.MaxMS != 20000 {
		t.Errorf("max = %v ms, want 20000", snap.MaxMS)
	}
}

func TestJSONExport(t *testing.T) {
	r := &Registry{}
	r.GetCounter("a.count").Add(7)
	r.GetTimer("b.timer").Observe(20 * time.Millisecond)
	r.GetHistogram("c.hist").Observe(time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.count"] != 7 {
		t.Errorf("counter = %d", snap.Counters["a.count"])
	}
	ts := snap.Timers["b.timer"]
	if ts.Count != 1 || ts.TotalMS != 20 || ts.MeanMS != 20 {
		t.Errorf("timer snapshot = %+v", ts)
	}
	if snap.Histograms["c.hist"].Count != 1 {
		t.Errorf("histogram snapshot = %+v", snap.Histograms["c.hist"])
	}

	// Deterministic: a second export of the same state is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("JSON export is not deterministic")
	}
}

func TestReset(t *testing.T) {
	r := &Registry{}
	c := r.GetCounter("r.count")
	tm := r.GetTimer("r.timer")
	h := r.GetHistogram("r.hist")
	c.Add(3)
	tm.Observe(time.Second)
	h.Observe(time.Second)
	r.Reset()
	if c.Value() != 0 || tm.Count() != 0 || tm.Total() != 0 || h.Count() != 0 {
		t.Error("Reset did not zero metrics")
	}
	// The instances stay registered and usable.
	c.Inc()
	if r.GetCounter("r.count").Value() != 1 {
		t.Error("metric lost after Reset")
	}
}

func TestNames(t *testing.T) {
	r := &Registry{}
	r.GetCounter("z")
	r.GetTimer("a")
	r.GetHistogram("m")
	got := r.Names()
	want := []string{"a", "m", "z"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Names = %v, want %v", got, want)
	}
}

func TestStartProfiling(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := StartProfiling(ProfileConfig{CPUFile: cpu, MemFile: mem})
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile is non-trivial.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	// No-op config: stop must be safe.
	stop2, err := StartProfiling(ProfileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}
