package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileConfig selects which profiling outputs a command should
// produce. Zero values disable each output.
type ProfileConfig struct {
	// CPUFile receives a CPU profile covering StartProfiling→stop.
	CPUFile string
	// MemFile receives a heap profile written at stop time.
	MemFile string
	// HTTPAddr starts a net/http/pprof debug server (e.g.
	// "localhost:6060") for live inspection of long runs.
	HTTPAddr string
}

// StartProfiling wires the standard pprof surfaces into a command. It
// returns a stop function that must be called before exit (it finishes
// the CPU profile and writes the heap profile); stop is safe to call
// when every field was empty.
func StartProfiling(cfg ProfileConfig) (stop func() error, err error) {
	var cpuFile *os.File
	if cfg.CPUFile != "" {
		cpuFile, err = os.Create(cfg.CPUFile)
		if err != nil {
			return nil, fmt.Errorf("obs: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
	}
	if cfg.HTTPAddr != "" {
		go func() {
			// Diagnostics only: the error (e.g. port in use) must not
			// take the run down.
			_ = http.ListenAndServe(cfg.HTTPAddr, nil)
		}()
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if cfg.MemFile != "" {
			f, err := os.Create(cfg.MemFile)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("obs: create mem profile: %w", err)
				}
				return firstErr
			}
			runtime.GC() // get up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: write mem profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}
