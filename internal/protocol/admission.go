package protocol

// Overload protection: admission control and panic containment.
//
// The controller degrades gracefully instead of melting: a connection
// cap and an association-rate token bucket shed excess demand with an
// explicit MsgBusy (retry-after) rather than silent drops or unbounded
// queueing; the hello phase runs under a short dedicated deadline so a
// half-open peer cannot pin an accept goroutine for the full session
// timeout; agent report floods drain through a bounded per-connection
// queue that drops oldest first; and a panic in one peer's handler
// closes that peer's connection instead of killing the process. Every
// shed decision is counted, so "the controller refused work" is always
// visible in /metrics.

import (
	"fmt"
	"io"
	"log"
	"runtime/debug"
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/obs"
)

// Degradation counters: every refused or contained unit of work is
// counted — shedding is never silent.
var (
	obsShedConns    = obs.GetCounter("protocol.shed.conns", "Connections refused with MsgBusy at accept (connection cap reached)")
	obsShedAssoc    = obs.GetCounter("protocol.shed.assoc", "Association requests refused with MsgBusy (token-bucket rate limit)")
	obsShedReports  = obs.GetCounter("protocol.shed.reports", "Agent load reports dropped oldest-first from a full report queue")
	obsHelloTimeout = obs.GetCounter("protocol.hello.timeout", "Peer connections closed for not completing a hello within the hello deadline")
	obsPanics       = obs.GetCounter("protocol.panics", "Panics recovered in per-connection handlers (connection closed, process survived)")
	obsConnsActive  = obs.GetGauge("protocol.conns.active", "Peer connections currently admitted and being served")
)

// DefaultHelloTimeout bounds the hello phase of an accepted connection:
// a peer that connects and then says nothing is cut loose after this
// long (slowloris guard), independent of the much longer steady-state
// conn timeout. WithHelloTimeout overrides.
const DefaultHelloTimeout = 3 * time.Second

// defaultRetryAfter is the MsgBusy retry advice when Admission leaves
// RetryAfterMs zero.
const defaultRetryAfter = 1000 * time.Millisecond

// shedTimeout bounds the whole shed exchange (codec sniff + MsgBusy
// write) so a stalled client cannot hold a shedding goroutine.
const shedTimeout = time.Second

// Admission configures the controller's overload shedding. The zero
// value admits everything (no cap, no rate limit, synchronous reports),
// matching the pre-admission behavior.
type Admission struct {
	// MaxConns caps concurrently served peer connections; excess
	// connections receive MsgBusy and are closed (0 = unlimited).
	MaxConns int
	// AssocRate limits admitted association requests per second across
	// all stations, via a token bucket; excess requests receive MsgBusy
	// on the station's open connection (0 = unlimited).
	AssocRate float64
	// AssocBurst is the token bucket depth — how many back-to-back
	// associations a quiet controller absorbs before the rate applies
	// (default: max(1, AssocRate)).
	AssocBurst int
	// RetryAfterMs is the retry advice carried in every MsgBusy
	// (default 1000).
	RetryAfterMs int64
	// ReportQueue bounds the per-agent-connection load-report queue:
	// reports apply asynchronously and a full queue drops oldest first,
	// so a report flood costs stale load estimates, never unbounded
	// memory or a wedged agent read loop (0 = apply synchronously).
	ReportQueue int
}

// retryAfter resolves the MsgBusy retry advice.
func (a Admission) retryAfter() int64 {
	if a.RetryAfterMs > 0 {
		return a.RetryAfterMs
	}
	return int64(defaultRetryAfter / time.Millisecond)
}

// WithAdmission enables overload shedding (see Admission).
func WithAdmission(a Admission) ControllerOption {
	return func(c *Controller) { c.admission = a }
}

// WithHelloTimeout overrides the hello-phase deadline (see
// DefaultHelloTimeout). d <= 0 disables the dedicated hello deadline,
// leaving the steady-state conn timeout to bound the hello too.
func WithHelloTimeout(d time.Duration) ControllerOption {
	return func(c *Controller) {
		c.helloTimeout = d
		c.helloTimeoutSet = true
	}
}

// ContainPanic recovers a panicking connection handler: the panic is
// counted, logged with its stack, and the peer's connection closed; the
// process survives. Use deferred, as the outermost frame of any
// per-connection goroutine:
//
//	defer ContainPanic(logger, conn)
//
// A panic mid-handler can strand that one peer's session state until
// its lease or deadline reaps it — the containment guarantee is process
// survival and connection closure, not transactional rollback.
func ContainPanic(logger *log.Logger, conn io.Closer) {
	r := recover()
	if r == nil {
		return
	}
	obsPanics.Inc()
	if logger != nil {
		logger.Printf("panic in connection handler (contained): %v\n%s", r, debug.Stack())
	}
	if conn != nil {
		conn.Close()
	}
}

// BusyError is the client-side spelling of a MsgBusy refusal: the
// controller shed the request for capacity, and RetryAfter advises when
// to try again.
type BusyError struct {
	RetryAfter time.Duration
	// Reason is the controller's human-readable shed reason.
	Reason string
}

// Error implements error.
func (e *BusyError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("protocol: busy (%s), retry after %v", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("protocol: busy, retry after %v", e.RetryAfter)
}

// busyError builds the client-side error for a received MsgBusy.
func busyError(m *Message) *BusyError {
	return &BusyError{
		RetryAfter: time.Duration(m.RetryAfterMs) * time.Millisecond,
		Reason:     m.Error,
	}
}

// tokenBucket is a monotonic-clock token bucket. Safe for concurrent
// use; the steady-state allow path performs no allocation.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	if burst <= 0 {
		burst = int(rate)
		if burst < 1 {
			burst = 1
		}
	}
	b := &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), now: time.Now}
	b.last = b.now()
	return b
}

// allow consumes one token if available.
func (b *tokenBucket) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.now()
	if dt := n.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = n
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// reportItem is one queued agent load report, carrying the registration
// generation the producing connection held so a stale owner's reports
// are detected at apply time, same as the synchronous path.
type reportItem struct {
	ap   string
	gen  uint64
	load float64
}

// reportQueue is a bounded channel with oldest-drop backpressure: a
// full queue evicts its oldest pending report to make room for the
// newest, because for load estimates the most recent sample is the one
// worth keeping.
type reportQueue struct {
	ch chan reportItem
}

func newReportQueue(depth int) *reportQueue {
	return &reportQueue{ch: make(chan reportItem, depth)}
}

// push enqueues, evicting oldest on a full queue. Reports dropped by
// eviction are counted in protocol.shed.reports.
func (q *reportQueue) push(it reportItem) {
	for {
		select {
		case q.ch <- it:
			return
		default:
		}
		select {
		case <-q.ch:
			obsShedReports.Inc()
		default:
		}
	}
}

// close ends the queue; the consumer's range loop then drains and exits.
func (q *reportQueue) close() { close(q.ch) }
