package protocol

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// The association E2E grid: both codecs at 10k and 100k resident users.
// CI emits it as BENCH_assoc.json via TestAssocBenchJSON.
var (
	assocBenchCodecs = []Codec{CodecBinary, CodecJSON}
	assocBenchUsers  = []int{10_000, 100_000}
)

const assocBenchAPs = 64

// newBenchController builds a listening controller with assocBenchAPs
// registered APs and `users` resident associations. Residents are
// installed through direct domain commits and assignment-table writes —
// populating 100k users through the full policy path would be O(N²) in
// view assembly and is not what the benchmark measures.
func newBenchController(tb testing.TB, users int) (*Controller, string) {
	tb.Helper()
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout))
	if err != nil {
		tb.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { c.Close() })
	aps := make([]trace.APID, assocBenchAPs)
	for i := range aps {
		aps[i] = trace.APID(fmt.Sprintf("ap%03d", i))
		if err := c.RegisterAP(aps[i], 1e9); err != nil {
			tb.Fatal(err)
		}
	}
	ps := make([]domain.Placement, 0, 1024)
	flush := func() {
		if len(ps) == 0 {
			return
		}
		if _, err := c.dom.Commit(ps, nil); err != nil {
			tb.Fatal(err)
		}
		c.mu.Lock()
		for _, p := range ps {
			c.assignments[p.User] = p.AP
			c.assignedAt[p.User] = 1
		}
		c.mu.Unlock()
		ps = ps[:0]
	}
	for i := 0; i < users; i++ {
		ps = append(ps, domain.Placement{
			User:      trace.UserID(fmt.Sprintf("resident%06d", i)),
			AP:        aps[i%assocBenchAPs],
			DemandBps: 1000,
		})
		if len(ps) == cap(ps) {
			flush()
		}
	}
	flush()
	return c, addr
}

// benchAssociateE2E measures one full association round trip — station
// sends MsgAssoc, the controller snapshots views, runs the policy,
// commits and replies MsgAssign — over a real TCP connection speaking
// the given codec.
func benchAssociateE2E(b *testing.B, codec Codec, users int) {
	_, addr := newBenchController(b, users)
	st, err := DialStationCodec(defaultDial, addr, "bench-station", testTimeout, codec)
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Associate(500); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Associate(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssociateE2E(b *testing.B) {
	for _, codec := range assocBenchCodecs {
		for _, users := range assocBenchUsers {
			b.Run(fmt.Sprintf("%s/users=%d", codec, users), func(b *testing.B) {
				benchAssociateE2E(b, codec, users)
			})
		}
	}
}

// TestAssocBenchJSON emits the association E2E grid (ns/op, B/op,
// allocs/op from testing.Benchmark plus a separately sampled p99
// round-trip latency) to the path named by ASSOC_BENCH_JSON. Skipped
// when unset so plain `go test` stays fast; CI points it at
// BENCH_assoc.json. It also enforces the wire-efficiency budget: the
// binary codec must cost at most half the JSON codec's B/op.
func TestAssocBenchJSON(t *testing.T) {
	path := os.Getenv("ASSOC_BENCH_JSON")
	if path == "" {
		t.Skip("ASSOC_BENCH_JSON not set")
	}
	type row struct {
		Name        string  `json:"name"`
		Codec       string  `json:"codec"`
		Users       int     `json:"users"`
		NsPerOp     float64 `json:"ns_per_op"`
		P99Ns       int64   `json:"p99_ns"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		Ops         int     `json:"ops"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		MaxProcs  int    `json:"gomaxprocs"`
		Rows      []row  `json:"rows"`
	}{Benchmark: "AssociateE2E", MaxProcs: runtime.GOMAXPROCS(0)}

	bytesPerOp := map[string]int64{}
	for _, codec := range assocBenchCodecs {
		for _, users := range assocBenchUsers {
			codec, users := codec, users
			r := testing.Benchmark(func(b *testing.B) {
				benchAssociateE2E(b, codec, users)
			})
			p99 := sampleAssocP99(t, codec, users)
			name := fmt.Sprintf("AssociateE2E/%s/users=%d", codec, users)
			out.Rows = append(out.Rows, row{
				Name:        name,
				Codec:       codec.String(),
				Users:       users,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				P99Ns:       p99.Nanoseconds(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				Ops:         r.N,
			})
			bytesPerOp[fmt.Sprintf("%s/%d", codec, users)] = r.AllocedBytesPerOp()
			t.Logf("%s: %.0f ns/op, p99 %v, %d B/op, %d allocs/op (%d ops)",
				name, float64(r.T.Nanoseconds())/float64(r.N), p99,
				r.AllocedBytesPerOp(), r.AllocsPerOp(), r.N)
		}
	}
	for _, users := range assocBenchUsers {
		bin := bytesPerOp[fmt.Sprintf("%s/%d", CodecBinary, users)]
		js := bytesPerOp[fmt.Sprintf("%s/%d", CodecJSON, users)]
		if bin*2 > js {
			t.Errorf("users=%d: binary B/op %d is not >= 2x lower than JSON B/op %d", users, bin, js)
		}
	}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// sampleAssocP99 measures individual association round trips and
// returns the 99th-percentile latency.
func sampleAssocP99(t *testing.T, codec Codec, users int) time.Duration {
	t.Helper()
	const rounds = 1500
	_, addr := newBenchController(t, users)
	st, err := DialStationCodec(defaultDial, addr, "bench-station", testTimeout, codec)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 50; i++ { // warmup
		if _, err := st.Associate(500); err != nil {
			t.Fatal(err)
		}
	}
	samples := make([]time.Duration, rounds)
	for i := range samples {
		start := time.Now()
		if _, err := st.Associate(500); err != nil {
			t.Fatal(err)
		}
		samples[i] = time.Since(start)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[rounds*99/100]
}
