package protocol

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// APAgent is the client side of a registered access point: it announces
// the AP to the controller and streams load reports.
type APAgent struct {
	conn *Conn
	id   trace.APID
}

// DialAP connects an AP agent and registers the AP.
func DialAP(addr string, id trace.APID, capacityBps float64, timeout time.Duration) (*APAgent, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial: %w", err)
	}
	conn := NewConn(raw, timeout)
	if err := conn.Send(Message{
		Type:        MsgHello,
		Role:        RoleAP,
		ID:          string(id),
		CapacityBps: capacityBps,
	}); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := conn.Receive()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if reply.Type == MsgError {
		conn.Close()
		return nil, fmt.Errorf("protocol: register AP: %s", reply.Error)
	}
	if reply.Type != MsgHelloOK {
		conn.Close()
		return nil, fmt.Errorf("protocol: unexpected reply %s", reply.Type)
	}
	return &APAgent{conn: conn, id: id}, nil
}

// Report sends one load report.
func (a *APAgent) Report(loadBps float64) error {
	return a.conn.Send(Message{Type: MsgReport, AP: string(a.id), LoadBps: loadBps})
}

// Close disconnects the agent.
func (a *APAgent) Close() error { return a.conn.Close() }

// Station is the client side of a WLAN user.
type Station struct {
	conn *Conn
	user trace.UserID
	ap   trace.APID
}

// DialStation connects and registers a station.
func DialStation(addr string, user trace.UserID, timeout time.Duration) (*Station, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial: %w", err)
	}
	conn := NewConn(raw, timeout)
	if err := conn.Send(Message{Type: MsgHello, Role: RoleStation, ID: string(user)}); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := conn.Receive()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if reply.Type == MsgError {
		conn.Close()
		return nil, fmt.Errorf("protocol: register station: %s", reply.Error)
	}
	if reply.Type != MsgHelloOK {
		conn.Close()
		return nil, fmt.Errorf("protocol: unexpected reply %s", reply.Type)
	}
	return &Station{conn: conn, user: user}, nil
}

// Associate requests an AP and returns the controller's assignment.
func (s *Station) Associate(demandBps float64) (trace.APID, error) {
	if err := s.conn.Send(Message{
		Type:      MsgAssoc,
		User:      string(s.user),
		DemandBps: demandBps,
	}); err != nil {
		return "", err
	}
	reply, err := s.conn.Receive()
	if err != nil {
		return "", err
	}
	switch reply.Type {
	case MsgAssign:
		s.ap = trace.APID(reply.AP)
		return s.ap, nil
	case MsgError:
		return "", fmt.Errorf("protocol: associate: %s", reply.Error)
	default:
		return "", fmt.Errorf("protocol: unexpected reply %s", reply.Type)
	}
}

// AP returns the station's current assignment ("" before Associate).
func (s *Station) AP() trace.APID { return s.ap }

// SendTraffic reports served bytes on the station's current AP.
func (s *Station) SendTraffic(bytes int64) error {
	if s.ap == "" {
		return errors.New("protocol: station not associated")
	}
	return s.conn.Send(Message{Type: MsgTraffic, AP: string(s.ap), Bytes: bytes})
}

// Disassociate announces departure; the connection stays open so the
// station can re-associate later.
func (s *Station) Disassociate() error {
	if s.ap == "" {
		return nil
	}
	s.ap = ""
	return s.conn.Send(Message{Type: MsgDisassoc, User: string(s.user)})
}

// Close disconnects the station (an implicit disassociation server-side).
func (s *Station) Close() error { return s.conn.Close() }
