package protocol

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// obsAgentReconnects counts successful AP-agent reconnections (client
// side), part of the protocol health counter set.
var obsAgentReconnects = obs.GetCounter("protocol.agent.reconnects",
	"Successful AP-agent reconnections after a lost connection")

// Dialer opens the transport connection for a client. Overriding it lets
// tests and the chaos demo inject faulty transports (e.g. faultconn).
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

func defaultDial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// ReconnectConfig governs an AP agent's redial behavior after a dropped
// controller connection: exponential backoff from BaseDelay to MaxDelay
// with ±Jitter relative randomization (seeded, so tests are
// deterministic). The zero value disables reconnection.
type ReconnectConfig struct {
	// MaxAttempts is the number of redials tried per failed operation
	// (0 disables reconnection).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 2s).
	MaxDelay time.Duration
	// Jitter is the relative randomization of each delay in [0,1]:
	// 0.2 yields delays in [0.8d, 1.2d]. Desynchronizes agent herds
	// reconnecting after a controller restart.
	Jitter float64
	// Seed seeds the jitter source.
	Seed int64
	// Dial overrides the transport dialer (default TCP).
	Dial Dialer
	// Codec selects the wire encoding (zero value: binary).
	Codec Codec
}

// DefaultReconnectConfig is a sensible starting point: 8 attempts,
// 25ms → 2s backoff, 20% jitter.
func DefaultReconnectConfig() ReconnectConfig {
	return ReconnectConfig{
		MaxAttempts: 8,
		BaseDelay:   25 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Jitter:      0.2,
		Seed:        1,
	}
}

// APAgent is the client side of a registered access point: it announces
// the AP to the controller and streams load reports. Agents built with
// DialAPReconnecting transparently re-dial and re-hello (renewing their
// lease server-side) when the controller connection drops.
type APAgent struct {
	conn *Conn
	id   trace.APID

	addr        string
	capacityBps float64
	timeout     time.Duration
	rc          ReconnectConfig
	rng         *rand.Rand
	reconnects  int64
}

// dialAP opens one agent connection and performs the hello handshake.
func dialAP(dial Dialer, addr string, id trace.APID, capacityBps float64, timeout time.Duration, codec Codec) (*Conn, error) {
	raw, err := dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial: %w", err)
	}
	conn := NewConnCodec(raw, timeout, codec)
	if err := helloAP(conn, id, capacityBps); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// helloAP performs one AP hello exchange on an open connection.
func helloAP(conn *Conn, id trace.APID, capacityBps float64) error {
	if err := conn.Send(Message{
		Type:        MsgHello,
		Role:        RoleAP,
		ID:          string(id),
		CapacityBps: capacityBps,
	}); err != nil {
		return err
	}
	reply, err := conn.Receive()
	if err != nil {
		return err
	}
	if reply.Type == MsgBusy {
		return busyError(&reply)
	}
	if reply.Type == MsgError {
		return fmt.Errorf("protocol: register AP: %s", reply.Error)
	}
	if reply.Type != MsgHelloOK {
		return fmt.Errorf("protocol: unexpected reply %s", reply.Type)
	}
	return nil
}

// DialAP connects an AP agent over the binary codec and registers the AP
// (no reconnection; see DialAPReconnecting for the resilient variant).
func DialAP(addr string, id trace.APID, capacityBps float64, timeout time.Duration) (*APAgent, error) {
	return DialAPCodec(addr, id, capacityBps, timeout, CodecBinary)
}

// DialAPCodec is DialAP with an explicit wire codec — CodecJSON speaks
// to the compatibility port or exercises the JSON path end to end.
func DialAPCodec(addr string, id trace.APID, capacityBps float64, timeout time.Duration, codec Codec) (*APAgent, error) {
	conn, err := dialAP(defaultDial, addr, id, capacityBps, timeout, codec)
	if err != nil {
		return nil, err
	}
	return &APAgent{
		conn:        conn,
		id:          id,
		addr:        addr,
		capacityBps: capacityBps,
		timeout:     timeout,
		rc:          ReconnectConfig{Codec: codec},
	}, nil
}

// DialAPReconnecting connects an AP agent that survives controller
// connection drops: a failed Report redials with exponential backoff and
// jitter per rc and re-hellos, which the controller treats as a lease
// renewal of the same registration. The initial dial is retried the same
// way.
func DialAPReconnecting(addr string, id trace.APID, capacityBps float64, timeout time.Duration, rc ReconnectConfig) (*APAgent, error) {
	a := &APAgent{
		id:          id,
		addr:        addr,
		capacityBps: capacityBps,
		timeout:     timeout,
		rc:          rc,
		rng:         rand.New(rand.NewSource(rc.Seed)),
	}
	conn, err := dialAP(a.dialer(), addr, id, capacityBps, timeout, rc.Codec)
	if err != nil {
		if rerr := a.redial(); rerr != nil {
			return nil, err
		}
		return a, nil
	}
	a.conn = conn
	return a, nil
}

func (a *APAgent) dialer() Dialer {
	if a.rc.Dial != nil {
		return a.rc.Dial
	}
	return defaultDial
}

// redial re-establishes the agent connection with backoff and jitter.
func (a *APAgent) redial() error {
	if a.conn != nil {
		a.conn.Close()
		a.conn = nil
	}
	delay := a.rc.BaseDelay
	if delay <= 0 {
		delay = 25 * time.Millisecond
	}
	maxDelay := a.rc.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	var lastErr error
	for attempt := 0; attempt < a.rc.MaxAttempts; attempt++ {
		conn, err := dialAP(a.dialer(), a.addr, a.id, a.capacityBps, a.timeout, a.rc.Codec)
		if err == nil {
			a.conn = conn
			a.reconnects++
			obsAgentReconnects.Inc()
			return nil
		}
		lastErr = err
		d := delay
		if a.rc.Jitter > 0 && a.rng != nil {
			d = time.Duration(float64(d) * (1 + a.rc.Jitter*(2*a.rng.Float64()-1)))
		}
		time.Sleep(d)
		delay *= 2
		if delay > maxDelay {
			delay = maxDelay
		}
	}
	if lastErr == nil {
		lastErr = errors.New("protocol: reconnect disabled")
	}
	return fmt.Errorf("protocol: reconnect %s: %w", a.id, lastErr)
}

// Report sends one load report. A reconnecting agent treats a send
// failure as a dropped connection: it redials (renewing its lease via a
// fresh hello) and retries the report once on the new connection.
func (a *APAgent) Report(loadBps float64) error {
	m := Message{Type: MsgReport, AP: string(a.id), LoadBps: loadBps}
	var err error
	if a.conn != nil {
		if err = a.conn.Send(m); err == nil {
			return nil
		}
	} else {
		err = errors.New("protocol: agent not connected")
	}
	if a.rc.MaxAttempts <= 0 {
		return err
	}
	if rerr := a.redial(); rerr != nil {
		return fmt.Errorf("%w (after report error: %v)", rerr, err)
	}
	return a.conn.Send(m)
}

// Reconnects returns how many times the agent re-established its
// controller connection.
func (a *APAgent) Reconnects() int64 { return a.reconnects }

// Close disconnects the agent.
func (a *APAgent) Close() error {
	if a.conn == nil {
		return nil
	}
	return a.conn.Close()
}

// APGroup is a single-connection agent fronting several APs: one hello
// per AP registers them all on the same connection, and batched load
// reports travel as one binary frame (one length, one CRC, one write).
// This is the batched-report path for deployments where one agent
// process manages a hardware group of APs.
type APGroup struct {
	conn  *Conn
	ids   []trace.APID
	batch []Message // reusable report batch
}

// APSpec declares one AP of a group agent.
type APSpec struct {
	ID          trace.APID
	CapacityBps float64
}

// DialAPGroup connects one agent connection and registers every AP in
// aps over it (binary codec). Reports are sent with ReportAll.
func DialAPGroup(addr string, aps []APSpec, timeout time.Duration) (*APGroup, error) {
	if len(aps) == 0 {
		return nil, errors.New("protocol: empty AP group")
	}
	raw, err := defaultDial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial: %w", err)
	}
	conn := NewConnCodec(raw, timeout, CodecBinary)
	g := &APGroup{conn: conn}
	for _, ap := range aps {
		if err := helloAP(conn, ap.ID, ap.CapacityBps); err != nil {
			conn.Close()
			return nil, err
		}
		g.ids = append(g.ids, ap.ID)
	}
	return g, nil
}

// IDs returns the group's registered AP IDs in registration order.
func (g *APGroup) IDs() []trace.APID { return g.ids }

// ReportAll sends one load report per AP in a single coalesced frame;
// loads is indexed like IDs.
func (g *APGroup) ReportAll(loads []float64) error {
	if len(loads) != len(g.ids) {
		return fmt.Errorf("protocol: group report: %d loads for %d APs", len(loads), len(g.ids))
	}
	g.batch = g.batch[:0]
	for i, id := range g.ids {
		g.batch = append(g.batch, Message{Type: MsgReport, AP: string(id), LoadBps: loads[i]})
	}
	return g.conn.SendBatch(g.batch)
}

// Close disconnects the group agent.
func (g *APGroup) Close() error { return g.conn.Close() }

// Station is the client side of a WLAN user.
type Station struct {
	conn *Conn
	user trace.UserID
	ap   trace.APID
}

// DialStation connects and registers a station over the binary codec.
func DialStation(addr string, user trace.UserID, timeout time.Duration) (*Station, error) {
	return DialStationWith(defaultDial, addr, user, timeout)
}

// DialStationWith is DialStation with an explicit transport dialer
// (tests and chaos harnesses inject faulty transports here).
func DialStationWith(dial Dialer, addr string, user trace.UserID, timeout time.Duration) (*Station, error) {
	return DialStationCodec(dial, addr, user, timeout, CodecBinary)
}

// DialStationCodec is DialStationWith with an explicit wire codec.
func DialStationCodec(dial Dialer, addr string, user trace.UserID, timeout time.Duration, codec Codec) (*Station, error) {
	raw, err := dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("protocol: dial: %w", err)
	}
	conn := NewConnCodec(raw, timeout, codec)
	if err := conn.Send(Message{Type: MsgHello, Role: RoleStation, ID: string(user)}); err != nil {
		conn.Close()
		return nil, err
	}
	reply, err := conn.Receive()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if reply.Type == MsgBusy {
		conn.Close()
		return nil, busyError(&reply)
	}
	if reply.Type == MsgError {
		conn.Close()
		return nil, fmt.Errorf("protocol: register station: %s", reply.Error)
	}
	if reply.Type != MsgHelloOK {
		conn.Close()
		return nil, fmt.Errorf("protocol: unexpected reply %s", reply.Type)
	}
	return &Station{conn: conn, user: user}, nil
}

// Associate requests an AP and returns the controller's assignment.
func (s *Station) Associate(demandBps float64) (trace.APID, error) {
	if err := s.conn.Send(Message{
		Type:      MsgAssoc,
		User:      string(s.user),
		DemandBps: demandBps,
	}); err != nil {
		return "", err
	}
	reply, err := s.conn.Receive()
	if err != nil {
		return "", err
	}
	switch reply.Type {
	case MsgAssign:
		s.ap = trace.APID(reply.AP)
		return s.ap, nil
	case MsgBusy:
		// Shed, not failed: the connection stays usable and the returned
		// *BusyError carries the controller's retry advice.
		return "", busyError(&reply)
	case MsgError:
		return "", fmt.Errorf("protocol: associate: %s", reply.Error)
	default:
		return "", fmt.Errorf("protocol: unexpected reply %s", reply.Type)
	}
}

// AP returns the station's current assignment ("" before Associate).
func (s *Station) AP() trace.APID { return s.ap }

// SendTraffic reports served bytes on the station's current AP.
func (s *Station) SendTraffic(bytes int64) error {
	if s.ap == "" {
		return errors.New("protocol: station not associated")
	}
	return s.conn.Send(Message{Type: MsgTraffic, AP: string(s.ap), Bytes: bytes})
}

// Disassociate announces departure; the connection stays open so the
// station can re-associate later.
func (s *Station) Disassociate() error {
	if s.ap == "" {
		return nil
	}
	s.ap = ""
	return s.conn.Send(Message{Type: MsgDisassoc, User: string(s.user)})
}

// Close disconnects the station (an implicit disassociation server-side).
func (s *Station) Close() error { return s.conn.Close() }
