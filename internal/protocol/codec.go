package protocol

// Binary wire codec. The controller's data plane reuses the journal's
// magic|length|CRC-32C framing (internal/journal): one frame carries a
// batch of compactly encoded Messages, so a client can coalesce several
// messages (e.g. an AP group's load reports) into a single write and a
// single checksum. The frame magic's first byte on the wire (0xF5) is
// non-ASCII, so a listener serving both codecs tells a binary peer from
// a JSON-lines peer by peeking one byte: no JSON document can begin
// with 0xF5.
//
// Message layout inside a frame payload:
//
//	uvarint  message count
//	per message:
//	  byte    type  (wireType enum)
//	  byte    flags (bit0 CapacityBps, bit1 LoadBps, bit2 DemandBps,
//	                 bit3 Bytes, bit4 RetryAfterMs)
//	  string  Role, ID, User, AP, Error   (uvarint length + raw bytes)
//	  float64 CapacityBps, LoadBps, DemandBps (8-byte LE bits, if flagged)
//	  varint  Bytes, RetryAfterMs (zigzag, if flagged)
//
// Absent numeric fields cost one flag bit; absent strings cost one byte.
// The encoding is deliberately order-fixed and versionless: the framing
// (magic + CRC) already rejects foreign bytes, and the hello exchange
// pins both ends to the same repository version in this prototype.
// Versionless cuts both ways: a wire type or flag bit an older peer
// does not know (e.g. MsgBusy / RetryAfterMs, added with overload
// protection) is a hard decode error there, so in a mixed-version
// cluster upgrade relays and clients before enabling the features that
// emit new vocabulary — see the mixed-version rollout note in
// docs/ARCHITECTURE.md.

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
)

// Codec-boundary health counters: how peers negotiated their codec, and
// what the ingress validation rejected.
var (
	obsConnsJSON   = obs.GetCounter("protocol.conns.json", "Server connections speaking the JSON-lines codec (sniffed or JSON-only port)")
	obsConnsBinary = obs.GetCounter("protocol.conns.binary", "Server connections speaking the binary framed codec (sniffed by first byte)")
	obsCRCErrors   = obs.GetCounter("protocol.codec.crc_errors", "Binary frames dropped for a CRC-32C mismatch")
	obsMsgRejected = obs.GetCounter("protocol.msg.rejected", "Messages rejected at the codec boundary (hostile numerics or malformed fields)")
)

// Codec selects a Conn's wire encoding.
type Codec int

const (
	// CodecBinary is the framed binary encoding — the data-plane default
	// and the zero value, so client dials and ReconnectConfig default to
	// it.
	CodecBinary Codec = iota
	// CodecJSON is the line-delimited JSON encoding — the debugging and
	// backward-compatibility codec (-json-port).
	CodecJSON
)

// String returns the CLI/log spelling.
func (c Codec) String() string {
	if c == CodecJSON {
		return "json"
	}
	return "binary"
}

// binaryFirstByte is the first wire byte of every binary frame: the
// little-endian low byte of journal.FrameMagic.
const binaryFirstByte = byte(journal.FrameMagic & 0xFF)

// maxWireBytes bounds one frame payload (and one JSON line) — matches
// the 1 MiB line cap the JSON scanner always had.
const maxWireBytes = 1 << 20

// wireType is the binary spelling of MsgType.
var wireTypes = [...]MsgType{
	1: MsgHello,
	2: MsgHelloOK,
	3: MsgReport,
	4: MsgAssoc,
	5: MsgAssign,
	6: MsgTraffic,
	7: MsgDisassoc,
	8: MsgError,
	9: MsgBusy,
}

func wireTypeOf(t MsgType) (byte, bool) {
	for i := 1; i < len(wireTypes); i++ {
		if wireTypes[i] == t {
			return byte(i), true
		}
	}
	return 0, false
}

// Field-presence flags.
const (
	flagCapacity = 1 << iota
	flagLoad
	flagDemand
	flagBytes
	flagRetry
)

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendMessage appends one encoded message to dst.
func appendMessage(dst []byte, m *Message) ([]byte, error) {
	wt, ok := wireTypeOf(m.Type)
	if !ok {
		return dst, fmt.Errorf("protocol: encode: unknown message type %q", m.Type)
	}
	var flags byte
	if m.CapacityBps != 0 {
		flags |= flagCapacity
	}
	if m.LoadBps != 0 {
		flags |= flagLoad
	}
	if m.DemandBps != 0 {
		flags |= flagDemand
	}
	if m.Bytes != 0 {
		flags |= flagBytes
	}
	if m.RetryAfterMs != 0 {
		flags |= flagRetry
	}
	dst = append(dst, wt, flags)
	dst = appendString(dst, string(m.Role))
	dst = appendString(dst, m.ID)
	dst = appendString(dst, m.User)
	dst = appendString(dst, m.AP)
	dst = appendString(dst, m.Error)
	if flags&flagCapacity != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.CapacityBps))
	}
	if flags&flagLoad != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.LoadBps))
	}
	if flags&flagDemand != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.DemandBps))
	}
	if flags&flagBytes != 0 {
		dst = binary.AppendVarint(dst, m.Bytes)
	}
	if flags&flagRetry != 0 {
		dst = binary.AppendVarint(dst, m.RetryAfterMs)
	}
	return dst, nil
}

// encodePayload appends the frame payload (count + messages) for ms.
func encodePayload(dst []byte, ms []Message) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(ms)))
	var err error
	for i := range ms {
		if dst, err = appendMessage(dst, &ms[i]); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

func decodeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, fmt.Errorf("protocol: decode: truncated string")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

func decodeFloat(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("protocol: decode: truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// decodeMessage decodes one message from b, returning the remainder.
func decodeMessage(b []byte) (Message, []byte, error) {
	var m Message
	if len(b) < 2 {
		return m, nil, fmt.Errorf("protocol: decode: truncated message header")
	}
	wt, flags := b[0], b[1]
	if int(wt) >= len(wireTypes) || wt == 0 {
		return m, nil, fmt.Errorf("protocol: decode: unknown message type %d", wt)
	}
	m.Type = wireTypes[wt]
	b = b[2:]
	var role string
	var err error
	if role, b, err = decodeString(b); err != nil {
		return m, nil, err
	}
	m.Role = Role(role)
	if m.ID, b, err = decodeString(b); err != nil {
		return m, nil, err
	}
	if m.User, b, err = decodeString(b); err != nil {
		return m, nil, err
	}
	if m.AP, b, err = decodeString(b); err != nil {
		return m, nil, err
	}
	if m.Error, b, err = decodeString(b); err != nil {
		return m, nil, err
	}
	if flags&flagCapacity != 0 {
		if m.CapacityBps, b, err = decodeFloat(b); err != nil {
			return m, nil, err
		}
	}
	if flags&flagLoad != 0 {
		if m.LoadBps, b, err = decodeFloat(b); err != nil {
			return m, nil, err
		}
	}
	if flags&flagDemand != 0 {
		if m.DemandBps, b, err = decodeFloat(b); err != nil {
			return m, nil, err
		}
	}
	if flags&flagBytes != 0 {
		v, sz := binary.Varint(b)
		if sz <= 0 {
			return m, nil, fmt.Errorf("protocol: decode: truncated varint")
		}
		m.Bytes = v
		b = b[sz:]
	}
	if flags&flagRetry != 0 {
		v, sz := binary.Varint(b)
		if sz <= 0 {
			return m, nil, fmt.Errorf("protocol: decode: truncated varint")
		}
		m.RetryAfterMs = v
		b = b[sz:]
	}
	return m, b, nil
}

// decodePayload decodes a frame payload into queue (appended) and
// returns the extended queue. Trailing garbage after the declared
// message count is an error — a CRC-valid frame is all or nothing.
func decodePayload(payload []byte, queue []Message) ([]Message, error) {
	count, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return queue, fmt.Errorf("protocol: decode: truncated message count")
	}
	b := payload[sz:]
	// Each message costs ≥ 7 bytes; a count beyond that is hostile.
	if count > uint64(len(b)/7)+1 {
		return queue, fmt.Errorf("protocol: decode: implausible message count %d", count)
	}
	for i := uint64(0); i < count; i++ {
		m, rest, err := decodeMessage(b)
		if err != nil {
			return queue, err
		}
		if m.Type == "" {
			return queue, fmt.Errorf("protocol: message without type")
		}
		queue = append(queue, m)
		b = rest
	}
	if len(b) != 0 {
		return queue, fmt.Errorf("protocol: decode: %d trailing bytes after %d messages", len(b), count)
	}
	return queue, nil
}

// validNumber reports whether v is a usable non-negative finite number.
func validNumber(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// validateMessage is the server's ingress gate, applied identically on
// the JSON and binary ports: every numeric field a peer can send must be
// finite and non-negative before it reaches load or served-byte
// accounting. A negative Bytes would decrement served counters; a
// NaN/Inf/negative rate would poison domain load state and every policy
// comparison downstream.
func validateMessage(m *Message) error {
	if !validNumber(m.CapacityBps) {
		return fmt.Errorf("invalid capacity_bps %v", m.CapacityBps)
	}
	if !validNumber(m.LoadBps) {
		return fmt.Errorf("invalid load_bps %v", m.LoadBps)
	}
	if !validNumber(m.DemandBps) {
		return fmt.Errorf("invalid demand_bps %v", m.DemandBps)
	}
	if m.Bytes < 0 {
		return fmt.Errorf("invalid bytes %d", m.Bytes)
	}
	if m.RetryAfterMs < 0 {
		return fmt.Errorf("invalid retry_after_ms %d", m.RetryAfterMs)
	}
	return nil
}
