package protocol

import (
	"bytes"
	"math"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// codecMessages is a corpus covering every message type and field shape.
var codecMessages = []Message{
	{Type: MsgHello, Role: RoleAP, ID: "ap-1", CapacityBps: 5e6},
	{Type: MsgHello, Role: RoleStation, ID: "u-1"},
	{Type: MsgHelloOK, ID: "ap-1"},
	{Type: MsgReport, LoadBps: 1234.5},
	{Type: MsgReport, AP: "ap-7", LoadBps: 0},
	{Type: MsgAssoc, DemandBps: 100},
	{Type: MsgAssign, User: "u-1", AP: "ap-2", DemandBps: 42.5},
	{Type: MsgTraffic, Bytes: 1 << 40},
	{Type: MsgTraffic, Bytes: 0},
	{Type: MsgDisassoc},
	{Type: MsgError, Error: "boom with spaces and \x00 bytes"},
	{Type: MsgAssign, User: strings.Repeat("u", 300), AP: "ap"},
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	for _, want := range codecMessages {
		payload, err := encodePayload(nil, []Message{want})
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		queue, err := decodePayload(payload, nil)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if len(queue) != 1 || queue[0] != want {
			t.Errorf("round trip = %+v, want %+v", queue, want)
		}
	}
	// All messages in one payload.
	payload, err := encodePayload(nil, codecMessages)
	if err != nil {
		t.Fatal(err)
	}
	queue, err := decodePayload(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(queue) != len(codecMessages) {
		t.Fatalf("decoded %d messages, want %d", len(queue), len(codecMessages))
	}
	for i := range queue {
		if queue[i] != codecMessages[i] {
			t.Errorf("message %d = %+v, want %+v", i, queue[i], codecMessages[i])
		}
	}
}

func TestBinaryConnRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		c := NewConnCodec(server, 0, CodecBinary)
		for {
			m, err := c.Receive()
			if err != nil {
				return
			}
			_ = c.Send(m)
		}
	}()
	c := NewConnCodec(client, 0, CodecBinary)
	for _, want := range codecMessages {
		if err := c.Send(want); err != nil {
			t.Fatal(err)
		}
		got, err := c.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("round trip = %+v, want %+v", got, want)
		}
	}
}

// TestSendBatchCoalesces: a batch travels as ONE framed write and is
// received message by message in order.
func TestSendBatchCoalesces(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	writes := &countingConn{Conn: client}
	recvd := make(chan []Message, 1)
	go func() {
		c := NewConnCodec(server, 0, CodecBinary)
		var got []Message
		for len(got) < len(codecMessages) {
			m, err := c.Receive()
			if err != nil {
				return
			}
			got = append(got, m)
		}
		recvd <- got
	}()
	c := NewConnCodec(writes, 0, CodecBinary)
	if err := c.SendBatch(codecMessages); err != nil {
		t.Fatal(err)
	}
	got := <-recvd
	for i := range got {
		if got[i] != codecMessages[i] {
			t.Errorf("message %d = %+v, want %+v", i, got[i], codecMessages[i])
		}
	}
	if n := writes.writes.Load(); n != 1 {
		t.Errorf("batch of %d messages took %d writes, want 1", len(codecMessages), n)
	}
}

// TestCodecSniffing: the main port serves binary and JSON peers side by
// side; the JSON-only port rejects binary frames.
func TestCodecSniffing(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}
	jaddr, err := c.ListenJSON("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Binary station on the sniffing port.
	bs, err := DialStation(addr, "u-bin", testTimeout)
	if err != nil {
		t.Fatalf("binary station on main port: %v", err)
	}
	defer bs.Close()
	if _, err := bs.Associate(10); err != nil {
		t.Fatal(err)
	}
	// JSON station on the sniffing port.
	js, err := DialStationCodec(defaultDial, addr, "u-json", testTimeout, CodecJSON)
	if err != nil {
		t.Fatalf("JSON station on main port: %v", err)
	}
	defer js.Close()
	if _, err := js.Associate(10); err != nil {
		t.Fatal(err)
	}
	// JSON station on the JSON-only port.
	cs, err := DialStationCodec(defaultDial, jaddr, "u-compat", testTimeout, CodecJSON)
	if err != nil {
		t.Fatalf("JSON station on JSON port: %v", err)
	}
	defer cs.Close()
	if _, err := cs.Associate(10); err != nil {
		t.Fatal(err)
	}
	// Binary frames on the JSON-only port are refused.
	if st, err := DialStationCodec(defaultDial, jaddr, "u-nope", testTimeout, CodecBinary); err == nil {
		st.Close()
		t.Error("binary station accepted on JSON-only port")
	}
}

// TestAPGroupBatchedReports: one connection registers several APs and a
// single ReportAll lands one load on each.
func TestAPGroupBatchedReports(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	g, err := DialAPGroup(addr, []APSpec{
		{ID: "g-ap1", CapacityBps: 1e6},
		{ID: "g-ap2", CapacityBps: 2e6},
		{ID: "g-ap3", CapacityBps: 3e6},
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.ReportAll([]float64{111, 222, 333}); err != nil {
		t.Fatal(err)
	}
	want := map[trace.APID]float64{"g-ap1": 111, "g-ap2": 222, "g-ap3": 333}
	deadline := time.Now().Add(testTimeout)
	for {
		snap := c.Snapshot()
		ok := len(snap) == 3
		for id, load := range want {
			st, present := snap[id]
			ok = ok && present && st.ReportedBps == load
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group reports not applied: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := g.ReportAll([]float64{1}); err == nil {
		t.Error("mismatched ReportAll length should error")
	}
}

// TestHostileNumericsRejected drives NaN/Inf/negative rates and negative
// byte counts at the controller over both codecs and requires an
// explicit rejection (MsgError + protocol.msg.rejected) instead of the
// value reaching load or served-byte accounting. JSON cannot spell
// NaN/Inf, so its rows cover the negative cases; the binary codec can
// carry any bit pattern and covers all of them.
func TestHostileNumericsRejected(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}

	type step struct {
		hello Message // valid session hello, zero Type = the hostile one IS the hello
		msg   Message
	}
	cases := []struct {
		name   string
		codecs []Codec
		step   step
	}{
		{"hello-negative-capacity", []Codec{CodecBinary, CodecJSON},
			step{msg: Message{Type: MsgHello, Role: RoleAP, ID: "evil", CapacityBps: -1}}},
		{"hello-nan-capacity", []Codec{CodecBinary},
			step{msg: Message{Type: MsgHello, Role: RoleAP, ID: "evil", CapacityBps: math.NaN()}}},
		{"report-negative-load", []Codec{CodecBinary, CodecJSON},
			step{hello: Message{Type: MsgHello, Role: RoleAP, ID: "ap-agent", CapacityBps: 1e6},
				msg: Message{Type: MsgReport, LoadBps: -5}}},
		{"report-inf-load", []Codec{CodecBinary},
			step{hello: Message{Type: MsgHello, Role: RoleAP, ID: "ap-agent", CapacityBps: 1e6},
				msg: Message{Type: MsgReport, LoadBps: math.Inf(1)}}},
		{"assoc-nan-demand", []Codec{CodecBinary},
			step{hello: Message{Type: MsgHello, Role: RoleStation, ID: "u-hostile"},
				msg: Message{Type: MsgAssoc, DemandBps: math.NaN()}}},
		{"assoc-negative-demand", []Codec{CodecBinary, CodecJSON},
			step{hello: Message{Type: MsgHello, Role: RoleStation, ID: "u-hostile"},
				msg: Message{Type: MsgAssoc, DemandBps: -100}}},
		{"traffic-negative-bytes", []Codec{CodecBinary, CodecJSON},
			step{hello: Message{Type: MsgHello, Role: RoleStation, ID: "u-hostile"},
				msg: Message{Type: MsgTraffic, Bytes: -1 << 20}}},
	}

	for _, tc := range cases {
		for _, codec := range tc.codecs {
			t.Run(tc.name+"/"+codec.String(), func(t *testing.T) {
				before := obs.Default.GetCounter("protocol.msg.rejected").Value()
				raw, err := net.Dial("tcp", addr)
				if err != nil {
					t.Fatal(err)
				}
				defer raw.Close()
				conn := NewConnCodec(raw, testTimeout, codec)
				if tc.step.hello.Type != "" {
					if err := conn.Send(tc.step.hello); err != nil {
						t.Fatal(err)
					}
					ok, err := conn.Receive()
					if err != nil || ok.Type != MsgHelloOK {
						t.Fatalf("hello reply = %+v, %v", ok, err)
					}
				}
				if err := conn.Send(tc.step.msg); err != nil {
					t.Fatal(err)
				}
				reply, err := conn.Receive()
				if err != nil {
					t.Fatalf("want MsgError reply, got %v", err)
				}
				if reply.Type != MsgError || !strings.Contains(reply.Error, "invalid") {
					t.Errorf("reply = %+v, want invalid-field MsgError", reply)
				}
				if after := obs.Default.GetCounter("protocol.msg.rejected").Value(); after <= before {
					t.Errorf("protocol.msg.rejected did not increase (%d -> %d)", before, after)
				}
			})
		}
	}

	// None of the hostile values reached accounting.
	snap := c.Snapshot()
	if st := snap["ap1"]; st.ReportedBps != 0 || len(st.Users) != 0 || st.ServedBytes != 0 {
		t.Errorf("hostile values leaked into state: %+v", st)
	}
	if _, ok := snap["evil"]; ok {
		t.Error("AP with hostile capacity was registered")
	}
}

// TestBinaryCRCMismatchDrops: a bit-flipped frame is refused with a CRC
// error and counted, never decoded.
func TestBinaryCRCMismatchDrops(t *testing.T) {
	payload, err := encodePayload(nil, []Message{{Type: MsgReport, LoadBps: 7}})
	if err != nil {
		t.Fatal(err)
	}
	frame := journal.AppendFrame(nil, payload)
	frame[len(frame)-1] ^= 0x01 // corrupt the payload, keep the header

	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	errs := make(chan error, 1)
	go func() {
		c := NewConnCodec(server, 0, CodecBinary)
		_, err := c.Receive()
		errs <- err
	}()
	before := obs.Default.GetCounter("protocol.codec.crc_errors").Value()
	if _, err := client.Write(frame); err != nil {
		t.Fatal(err)
	}
	recvErr := <-errs
	if recvErr == nil || !strings.Contains(strings.ToLower(recvErr.Error()), "crc") {
		t.Errorf("corrupt frame error = %v, want CRC mismatch", recvErr)
	}
	if after := obs.Default.GetCounter("protocol.codec.crc_errors").Value(); after <= before {
		t.Errorf("protocol.codec.crc_errors did not increase (%d -> %d)", before, after)
	}
}

// countingConn counts Write calls to observe coalescing.
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

func FuzzWireDecode(f *testing.F) {
	for _, m := range codecMessages {
		payload, err := encodePayload(nil, []Message{m})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	all, err := encodePayload(nil, codecMessages)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(all)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // hostile uvarint count
	f.Add([]byte{0x01, 0x01})                                                 // truncated message
	f.Add(all[:len(all)/2])                                                   // truncated mid-stream

	f.Fuzz(func(t *testing.T, data []byte) {
		queue, err := decodePayload(data, nil)
		if err != nil {
			return // rejected is fine; panics and hangs are the bug class
		}
		// Whatever decoded must survive a re-encode/re-decode round trip.
		// The comparison is over re-encoded bytes, not Message equality:
		// a fuzzed frame may carry NaN float bits, and NaN != NaN.
		re, err := encodePayload(nil, queue)
		if err != nil {
			t.Fatalf("decoded messages failed to re-encode: %v (%+v)", err, queue)
		}
		back, err := decodePayload(re, nil)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		re2, err := encodePayload(nil, back)
		if err != nil {
			t.Fatalf("re-decoded messages failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, re2) {
			t.Fatalf("round trip diverged:\n%x\n%x", re, re2)
		}
	})
}
