package protocol

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// apEntry is the controller's live view of one registered AP.
type apEntry struct {
	id          trace.APID
	capacityBps float64
	reportedBps float64
	users       map[trace.UserID]float64 // user -> believed demand
}

// AssociationObserver receives association lifecycle events — e.g. a
// society.OnlineLearner learning sociality continuously from the live
// controller, the paper's future-work deployment mode.
type AssociationObserver interface {
	// Connect fires after a user is associated with an AP.
	Connect(u trace.UserID, ap trace.APID, ts int64)
	// Disconnect fires after a user leaves an AP. Implementations must
	// tolerate out-of-order or unknown users (the controller retries
	// nothing).
	Disconnect(u trace.UserID, ap trace.APID, ts int64) error
}

// Controller is the prototype WLAN controller: a TCP server that
// registers AP agents, receives their load reports, and answers stations'
// association requests by running the configured policy.
type Controller struct {
	selector wlan.Selector
	logger   *log.Logger
	timeout  time.Duration
	observer AssociationObserver
	now      func() int64

	mu          sync.Mutex
	aps         map[trace.APID]*apEntry
	assignments map[trace.UserID]trace.APID
	assignedAt  map[trace.UserID]int64
	servedByUsr map[trace.UserID]int64
	served      map[trace.APID]int64 // bytes reported by stations
	sessionLog  *json.Encoder

	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
}

// ControllerOption customizes a Controller.
type ControllerOption func(*Controller)

// WithLogger routes controller diagnostics to logger (default: discard).
func WithLogger(logger *log.Logger) ControllerOption {
	return func(c *Controller) { c.logger = logger }
}

// WithTimeout bounds each peer read/write (default 30s).
func WithTimeout(d time.Duration) ControllerOption {
	return func(c *Controller) { c.timeout = d }
}

// WithObserver attaches an association observer (e.g. an online
// sociality learner).
func WithObserver(o AssociationObserver) ControllerOption {
	return func(c *Controller) { c.observer = o }
}

// WithClock overrides the controller's time source (tests).
func WithClock(now func() int64) ControllerOption {
	return func(c *Controller) { c.now = now }
}

// WithSessionLog makes the controller record every completed association
// as a trace.Session JSON document on w — the "back-end data center"
// login log the paper's measurement study is built from. The emitted
// lines parse with trace.ReadJSONLines/trace.Stream when wrapped as
// {"kind":"session","session":…}, which is exactly what is written.
func WithSessionLog(w io.Writer) ControllerOption {
	return func(c *Controller) { c.sessionLog = json.NewEncoder(w) }
}

// NewController builds a controller around an association policy.
func NewController(selector wlan.Selector, opts ...ControllerOption) (*Controller, error) {
	if selector == nil {
		return nil, errors.New("protocol: nil selector")
	}
	c := &Controller{
		selector:    selector,
		logger:      log.New(io.Discard, "", 0),
		timeout:     30 * time.Second,
		now:         func() int64 { return time.Now().Unix() },
		aps:         make(map[trace.APID]*apEntry),
		assignments: make(map[trace.UserID]trace.APID),
		assignedAt:  make(map[trace.UserID]int64),
		servedByUsr: make(map[trace.UserID]int64),
		served:      make(map[trace.APID]int64),
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// RegisterAP adds an AP directly (without an agent connection). Useful for
// static topologies and tests.
func (c *Controller) RegisterAP(id trace.APID, capacityBps float64) error {
	if id == "" {
		return errors.New("protocol: empty AP id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.aps[id]; dup {
		return fmt.Errorf("protocol: AP %q already registered", id)
	}
	c.aps[id] = &apEntry{
		id:          id,
		capacityBps: capacityBps,
		users:       make(map[trace.UserID]float64),
	}
	return nil
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Serve loops run in background goroutines until Close.
func (c *Controller) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("protocol: listen: %w", err)
	}
	c.mu.Lock()
	c.listener = ln
	c.closed = false
	c.mu.Unlock()
	c.wg.Add(1)
	go c.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (c *Controller) acceptLoop(ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return
			}
			c.logger.Printf("accept: %v", err)
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handle(NewConn(conn, c.timeout))
		}()
	}
}

// Close stops the listener and waits for peer goroutines to finish.
func (c *Controller) Close() error {
	c.mu.Lock()
	c.closed = true
	ln := c.listener
	c.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	c.wg.Wait()
	return err
}

// handle runs one peer session.
func (c *Controller) handle(conn *Conn) {
	defer conn.Close()
	hello, err := conn.Receive()
	if err != nil {
		c.logger.Printf("peer hello: %v", err)
		return
	}
	if hello.Type != MsgHello {
		c.replyError(conn, fmt.Sprintf("expected hello, got %s", hello.Type))
		return
	}
	switch hello.Role {
	case RoleAP:
		c.handleAP(conn, hello)
	case RoleStation:
		c.handleStation(conn, hello)
	default:
		c.replyError(conn, fmt.Sprintf("unknown role %q", hello.Role))
	}
}

func (c *Controller) replyError(conn *Conn, msg string) {
	if err := conn.Send(Message{Type: MsgError, Error: msg}); err != nil {
		c.logger.Printf("reply error: %v", err)
	}
}

// handleAP registers an AP agent and consumes its load reports.
func (c *Controller) handleAP(conn *Conn, hello Message) {
	id := trace.APID(hello.ID)
	if err := c.RegisterAP(id, hello.CapacityBps); err != nil {
		c.replyError(conn, err.Error())
		return
	}
	if err := conn.Send(Message{Type: MsgHelloOK, ID: hello.ID}); err != nil {
		c.logger.Printf("ap %s: %v", id, err)
		return
	}
	c.logger.Printf("ap %s registered (capacity %.0f B/s)", id, hello.CapacityBps)
	for {
		m, err := conn.Receive()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				c.logger.Printf("ap %s: %v", id, err)
			}
			return
		}
		if m.Type != MsgReport {
			c.replyError(conn, fmt.Sprintf("unexpected %s from AP", m.Type))
			return
		}
		c.mu.Lock()
		if entry, ok := c.aps[id]; ok {
			entry.reportedBps = m.LoadBps
		}
		c.mu.Unlock()
	}
}

// handleStation serves one station's association lifecycle.
func (c *Controller) handleStation(conn *Conn, hello Message) {
	user := trace.UserID(hello.ID)
	if user == "" {
		c.replyError(conn, "station hello without id")
		return
	}
	if err := conn.Send(Message{Type: MsgHelloOK, ID: hello.ID}); err != nil {
		return
	}
	for {
		m, err := conn.Receive()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				c.logger.Printf("station %s: %v", user, err)
			}
			c.disassociate(user)
			return
		}
		switch m.Type {
		case MsgAssoc:
			ap, err := c.Associate(user, m.DemandBps)
			if err != nil {
				c.replyError(conn, err.Error())
				continue
			}
			if err := conn.Send(Message{Type: MsgAssign, User: string(user), AP: string(ap)}); err != nil {
				c.disassociate(user)
				return
			}
		case MsgTraffic:
			c.mu.Lock()
			c.served[trace.APID(m.AP)] += m.Bytes
			c.servedByUsr[user] += m.Bytes
			c.mu.Unlock()
		case MsgDisassoc:
			c.disassociate(user)
		default:
			c.replyError(conn, fmt.Sprintf("unexpected %s from station", m.Type))
		}
	}
}

// Associate runs the policy for one user and records the assignment.
func (c *Controller) Associate(user trace.UserID, demandBps float64) (trace.APID, error) {
	c.mu.Lock()
	ts := c.now()
	if len(c.aps) == 0 {
		c.mu.Unlock()
		return "", errors.New("protocol: no APs registered")
	}
	views := c.viewsLocked()
	ap, err := c.selector.Select(wlan.Request{
		User:      user,
		At:        ts,
		DemandBps: demandBps,
	}, views)
	if err != nil {
		c.mu.Unlock()
		return "", fmt.Errorf("protocol: policy: %w", err)
	}
	entry, ok := c.aps[ap]
	if !ok {
		c.mu.Unlock()
		return "", fmt.Errorf("protocol: policy chose unknown AP %q", ap)
	}
	// Re-associating moves the user (a fresh request supersedes).
	var prevAP trace.APID
	hadPrev := false
	if prev, ok := c.assignments[user]; ok {
		if prevEntry, ok := c.aps[prev]; ok {
			delete(prevEntry.users, user)
		}
		prevAP, hadPrev = prev, true
	}
	entry.users[user] = demandBps
	c.assignments[user] = ap
	c.assignedAt[user] = ts
	c.servedByUsr[user] = 0
	c.logger.Printf("assoc %s -> %s (demand %.0f B/s)", user, ap, demandBps)
	obs := c.observer
	c.mu.Unlock()

	// Notify outside the lock: observers may be slow.
	if obs != nil {
		if hadPrev {
			if err := obs.Disconnect(user, prevAP, ts); err != nil {
				c.logger.Printf("observer disconnect %s: %v", user, err)
			}
		}
		obs.Connect(user, ap, ts)
	}
	return ap, nil
}

func (c *Controller) disassociate(user trace.UserID) {
	c.mu.Lock()
	ts := c.now()
	ap, ok := c.assignments[user]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(c.assignments, user)
	if entry, ok := c.aps[ap]; ok {
		delete(entry.users, user)
	}
	c.logger.Printf("disassoc %s from %s", user, ap)
	if c.sessionLog != nil {
		rec := struct {
			Kind    string        `json:"kind"`
			Session trace.Session `json:"session"`
		}{
			Kind: "session",
			Session: trace.Session{
				User:         user,
				AP:           ap,
				ConnectAt:    c.assignedAt[user],
				DisconnectAt: ts,
				Bytes:        c.servedByUsr[user],
			},
		}
		if err := c.sessionLog.Encode(rec); err != nil {
			c.logger.Printf("session log: %v", err)
		}
	}
	delete(c.assignedAt, user)
	delete(c.servedByUsr, user)
	obs := c.observer
	c.mu.Unlock()

	if obs != nil {
		if err := obs.Disconnect(user, ap, ts); err != nil {
			c.logger.Printf("observer disconnect %s: %v", user, err)
		}
	}
}

// viewsLocked snapshots AP state for the policy. Load is the max of the
// agent-reported load and the sum of believed demands, so a silent agent
// still yields sane decisions.
func (c *Controller) viewsLocked() []wlan.APView {
	ids := make([]trace.APID, 0, len(c.aps))
	for id := range c.aps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	views := make([]wlan.APView, 0, len(ids))
	for _, id := range ids {
		entry := c.aps[id]
		users := make([]trace.UserID, 0, len(entry.users))
		for u := range entry.users {
			users = append(users, u)
		}
		sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
		demands := make([]float64, len(users))
		var believed float64
		for i, u := range users {
			demands[i] = entry.users[u]
			believed += demands[i]
		}
		load := entry.reportedBps
		if believed > load {
			load = believed
		}
		views = append(views, wlan.APView{
			ID:          id,
			CapacityBps: entry.capacityBps,
			LoadBps:     load,
			Users:       users,
			UserDemands: demands,
			RSSI:        -50,
		})
	}
	return views
}

// Snapshot reports the controller's current state for inspection: per-AP
// associated users and served volume.
func (c *Controller) Snapshot() map[trace.APID]APStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[trace.APID]APStatus, len(c.aps))
	for id, entry := range c.aps {
		users := make([]trace.UserID, 0, len(entry.users))
		for u := range entry.users {
			users = append(users, u)
		}
		sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
		out[id] = APStatus{
			CapacityBps: entry.capacityBps,
			ReportedBps: entry.reportedBps,
			Users:       users,
			ServedBytes: c.served[id],
		}
	}
	return out
}

// APStatus is one AP's externally visible state.
type APStatus struct {
	CapacityBps float64
	ReportedBps float64
	Users       []trace.UserID
	ServedBytes int64
}
