package protocol

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// Controller health counters, exported through the obs registry so the
// chaos demo and operators can watch lifecycle churn: registrations and
// renewals, lease expiries, accept-loop retries, selection retries after
// a stale snapshot, and rejected traffic reports.
var (
	obsAPRegistered    = obs.GetCounter("protocol.ap.registered", "First-time AP registrations (hello from an unknown AP)")
	obsAPRenewed       = obs.GetCounter("protocol.ap.renewed", "AP re-hellos renewing a lease or superseding a half-open agent connection")
	obsLeaseExpired    = obs.GetCounter("protocol.ap.lease_expired", "AP leases expired after silence; believed users re-homed")
	obsAcceptRetries   = obs.GetCounter("protocol.accept.retries", "Accept-loop retries after transient listener errors")
	obsSelectRetries   = obs.GetCounter("protocol.select.retries", "Association decisions recomputed after a stale snapshot at commit")
	obsAssocMoves      = obs.GetCounter("protocol.assoc.moves", "Re-associations that moved a user between APs")
	obsTrafficRejected = obs.GetCounter("protocol.traffic.rejected", "Traffic reports rejected (unassociated user or mismatched AP claim)")
)

// maxSelectRetries bounds the lock-free selection retry loop: after this
// many stale snapshots the decision is committed against the current
// state anyway (membership mutations are always serialized per domain
// shard, so a stale commit is at worst suboptimal, never corrupting).
const maxSelectRetries = 3

// apMeta is the controller's protocol-level metadata for one registered
// AP: the lease/agent-connection lifecycle. All load and membership
// accounting lives in the shared association-domain core (c.dom).
type apMeta struct {
	// static entries come from RegisterAP (no agent connection) and are
	// exempt from lease expiry.
	static bool
	// lastSeen is the unix time of the agent's last hello or report.
	lastSeen int64
	// gen is the registration generation, bumped on every re-hello so a
	// superseded agent connection can detect it lost ownership.
	gen uint64
	// agentConn is the live agent connection, if any; a takeover or
	// lease expiry closes it.
	agentConn *Conn
}

// AssociationObserver receives association lifecycle events — e.g. a
// society.OnlineLearner learning sociality continuously from the live
// controller, the paper's future-work deployment mode.
type AssociationObserver interface {
	// Connect fires after a user is associated with an AP.
	Connect(u trace.UserID, ap trace.APID, ts int64)
	// Disconnect fires after a user leaves an AP. Implementations must
	// tolerate out-of-order or unknown users (the controller retries
	// nothing).
	Disconnect(u trace.UserID, ap trace.APID, ts int64) error
}

// lifecycleEvent is a deferred observer notification gathered under the
// lock and emitted after it is released.
type lifecycleEvent struct {
	user trace.UserID
	ap   trace.APID
	ts   int64
}

// Controller is the prototype WLAN controller: a TCP server that
// registers AP agents, receives their load reports, and answers stations'
// association requests by running the configured policy.
//
// All association state — AP registry, per-AP load/user accounting,
// capacity admission, view snapshots, versioned commits, session-log
// emission — lives in the shared association-domain core
// (internal/domain), the same state machine the batch simulator replays
// traces through; the controller layers the protocol lifecycle (leases,
// agent connections, station sessions, served-byte accounting) on top.
// Lock order is always c.mu before domain shard locks, never the
// reverse.
type Controller struct {
	selector wlan.Selector
	logger   *log.Logger
	timeout  time.Duration
	observer AssociationObserver
	now      func() int64

	// dom owns all AP association state, sharded by AP (WithShards).
	dom       *domain.Domain
	shards    int
	sessionLW io.Writer

	// refreshFn, when set, runs every refreshEvery while serving (see
	// WithRefresher).
	refreshFn    func()
	refreshEvery time.Duration

	// leaseSeconds is how long an agent-registered AP survives without a
	// hello or report before it is expired (0 = leases disabled).
	leaseSeconds int64

	// Overload shedding (admission.go). active counts admitted peer
	// connections against admission.MaxConns; assocBucket rate-limits
	// admitted associations when admission.AssocRate > 0.
	admission       Admission
	helloTimeout    time.Duration
	helloTimeoutSet bool
	assocBucket     *tokenBucket
	active          atomic.Int64

	// Journal wiring (see journal.go): jn is nil while replaying during
	// construction and whenever journaling is disabled, so the append
	// hooks below are free no-ops in both cases.
	journalDir  string
	journalOpts journal.Options
	jn          *journal.Journal
	recovered   *RecoverySummary

	mu          sync.Mutex
	meta        map[trace.APID]*apMeta
	assignments map[trace.UserID]trace.APID
	assignedAt  map[trace.UserID]int64
	servedByUsr map[trace.UserID]int64
	served      map[trace.APID]int64 // bytes reported by stations

	listeners []net.Listener
	stop      chan struct{}
	wg        sync.WaitGroup
	closed    bool

	// logEnabled gates the hot-path Printf calls: when the logger is the
	// default discard sink, skipping the call avoids materializing the
	// variadic argument slice on every association.
	logEnabled bool
}

// ControllerOption customizes a Controller.
type ControllerOption func(*Controller)

// WithLogger routes controller diagnostics to logger (default: discard).
func WithLogger(logger *log.Logger) ControllerOption {
	return func(c *Controller) {
		c.logger = logger
		c.logEnabled = true
	}
}

// WithTimeout bounds each peer read/write (default 30s).
func WithTimeout(d time.Duration) ControllerOption {
	return func(c *Controller) { c.timeout = d }
}

// WithObserver attaches an association observer (e.g. an online
// sociality learner).
func WithObserver(o AssociationObserver) ControllerOption {
	return func(c *Controller) { c.observer = o }
}

// WithClock overrides the controller's time source (tests).
func WithClock(now func() int64) ControllerOption {
	return func(c *Controller) { c.now = now }
}

// WithShards partitions the association domain into n AP-sharded lock
// domains (stable AP→shard hashing), so concurrent associations that
// land in different shards commit without contending on one lock.
// n <= 1 keeps a single shard. Policy output is unchanged by the shard
// count: views are ID-sorted for any n.
func WithShards(n int) ControllerOption {
	return func(c *Controller) { c.shards = n }
}

// WithLease enables lease-based AP registration: an agent-registered AP
// whose agent has been silent (no hello, no report) for more than
// seconds is expired — removed from the policy's view, its believed
// users disassociated through the observer and the session log. APs
// added with RegisterAP are static and never expire.
func WithLease(seconds int64) ControllerOption {
	return func(c *Controller) { c.leaseSeconds = seconds }
}

// WithRefresher runs fn every interval on a background goroutine while
// the controller is serving — the hook that keeps an incremental
// social-state engine (society/incremental) publishing fresh snapshots
// under a live controller. The goroutine starts with Serve/Listen and
// stops with Close.
func WithRefresher(fn func(), every time.Duration) ControllerOption {
	return func(c *Controller) {
		c.refreshFn = fn
		c.refreshEvery = every
	}
}

// WithSessionLog makes the controller record every completed association
// as a trace.Session JSON document on w — the "back-end data center"
// login log the paper's measurement study is built from. A completed
// association is any departure from an AP: an explicit disassociation, a
// dropped station connection, a re-association that moves the user, or a
// lease expiry of the serving AP. The emitted lines parse with
// trace.ReadJSONLines/trace.Stream when wrapped as
// {"kind":"session","session":…}, which is exactly what is written.
func WithSessionLog(w io.Writer) ControllerOption {
	return func(c *Controller) { c.sessionLW = w }
}

// NewController builds a controller around an association policy.
func NewController(selector wlan.Selector, opts ...ControllerOption) (*Controller, error) {
	if selector == nil {
		return nil, errors.New("protocol: nil selector")
	}
	c := &Controller{
		selector:    selector,
		logger:      log.New(io.Discard, "", 0),
		timeout:     30 * time.Second,
		now:         func() int64 { return time.Now().Unix() },
		meta:        make(map[trace.APID]*apMeta),
		assignments: make(map[trace.UserID]trace.APID),
		assignedAt:  make(map[trace.UserID]int64),
		servedByUsr: make(map[trace.UserID]int64),
		served:      make(map[trace.APID]int64),
	}
	for _, opt := range opts {
		opt(c)
	}
	if !c.helloTimeoutSet {
		c.helloTimeout = DefaultHelloTimeout
	}
	if c.admission.AssocRate > 0 {
		c.assocBucket = newTokenBucket(c.admission.AssocRate, c.admission.AssocBurst)
	}
	c.dom = domain.New(domain.Config{
		Shards: c.shards,
		// max(reported, believed): a silent agent still yields sane
		// decisions.
		Mode:       domain.LoadMax,
		SessionLog: c.sessionLW,
		ObsName:    "live",
	})
	if c.journalDir != "" {
		if err := c.openJournal(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Shards reports the association domain's shard count.
func (c *Controller) Shards() int { return c.dom.Shards() }

// RegisterAP adds a static AP directly (without an agent connection).
// Static APs never expire. Useful for fixed topologies and tests.
func (c *Controller) RegisterAP(id trace.APID, capacityBps float64) error {
	if id == "" {
		return errors.New("protocol: empty AP id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.meta[id]; dup {
		return fmt.Errorf("protocol: AP %q already registered", id)
	}
	if err := c.dom.AddAP(id, capacityBps); err != nil {
		return fmt.Errorf("protocol: %v", err)
	}
	c.meta[id] = &apMeta{static: true}
	c.journalAppendLocked(journal.Record{
		Op: journal.OpRegister, TS: c.now(), AP: id,
		CapacityBps: capacityBps, Static: true,
	})
	return nil
}

// registerAgent registers (or, on a re-hello, renews) an agent-backed AP.
// A renewal bumps the registration generation and supersedes any previous
// agent connection, which is returned for closing outside the lock — a
// reconnecting agent must not be locked out by its own half-dead
// predecessor.
func (c *Controller) registerAgent(conn *Conn, id trace.APID, capacityBps float64) (uint64, *Conn, error) {
	if id == "" {
		return 0, nil, errors.New("protocol: empty AP id")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ts := c.now()
	if m, ok := c.meta[id]; ok {
		if m.static {
			return 0, nil, fmt.Errorf("protocol: AP %q statically registered", id)
		}
		old := m.agentConn
		c.dom.SetCapacity(id, capacityBps)
		m.lastSeen = ts
		m.gen++
		m.agentConn = conn
		obsAPRenewed.Inc()
		c.journalAppendLocked(journal.Record{
			Op: journal.OpRegister, TS: ts, AP: id, CapacityBps: capacityBps,
		})
		return m.gen, old, nil
	}
	if err := c.dom.AddAP(id, capacityBps); err != nil {
		return 0, nil, fmt.Errorf("protocol: %v", err)
	}
	c.meta[id] = &apMeta{lastSeen: ts, gen: 1, agentConn: conn}
	obsAPRegistered.Inc()
	c.journalAppendLocked(journal.Record{
		Op: journal.OpRegister, TS: ts, AP: id, CapacityBps: capacityBps,
	})
	return 1, nil, nil
}

// Listen starts serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address. Serve loops run in background goroutines until Close. The
// listener negotiates the codec per connection (binary by first byte,
// JSON otherwise).
func (c *Controller) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("protocol: listen: %w", err)
	}
	return c.Serve(ln), nil
}

// ListenJSON starts a JSON-only listener on addr — the debugging and
// backward-compatibility port (-json-port). Binary frames are rejected
// with a clear error instead of being sniffed.
func (c *Controller) ListenJSON(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("protocol: listen: %w", err)
	}
	return c.ServeJSON(ln), nil
}

// Serve starts accepting peers on an externally created listener and
// returns its address. It allows wrapping the listener (e.g. with
// faultconn fault injection) before handing it to the controller. Each
// connection's codec is sniffed from its first byte: the journal frame
// magic selects the binary codec, anything else is JSON lines.
func (c *Controller) Serve(ln net.Listener) string { return c.serve(ln, true) }

// ServeJSON is Serve for a JSON-only listener (see ListenJSON). A
// controller may serve a negotiated port and a JSON-only port at once;
// Close stops both.
func (c *Controller) ServeJSON(ln net.Listener) string { return c.serve(ln, false) }

func (c *Controller) serve(ln net.Listener, allowBinary bool) string {
	c.mu.Lock()
	if c.stop == nil || c.closed {
		// First listener of a serving epoch: fresh stop channel, fresh
		// listener set, and the refresher if configured.
		c.stop = make(chan struct{})
		c.closed = false
		c.listeners = c.listeners[:0]
		if c.refreshFn != nil && c.refreshEvery > 0 {
			c.wg.Add(1)
			go c.refreshLoop(c.stop)
		}
	}
	stop := c.stop
	c.listeners = append(c.listeners, ln)
	c.mu.Unlock()
	c.wg.Add(1)
	go c.acceptLoop(ln, stop, allowBinary)
	return ln.Addr().String()
}

// refreshLoop drives the WithRefresher hook until the controller closes.
func (c *Controller) refreshLoop(stop chan struct{}) {
	defer c.wg.Done()
	tick := time.NewTicker(c.refreshEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			c.refreshFn()
		}
	}
}

// acceptLoop accepts peers until the listener is closed. Transient
// accept errors (ECONNABORTED, EMFILE, injected chaos, …) are retried
// with capped exponential backoff instead of killing the listener: the
// loop exits only when the controller is closed or the listener reports
// it is no longer usable.
func (c *Controller) acceptLoop(ln net.Listener, stop chan struct{}, allowBinary bool) {
	defer c.wg.Done()
	const (
		baseBackoff = 5 * time.Millisecond
		maxBackoff  = time.Second
	)
	backoff := baseBackoff
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			obsAcceptRetries.Inc()
			c.logger.Printf("accept (retry in %v): %v", backoff, err)
			select {
			case <-stop:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = baseBackoff
		// Admission: over the connection cap the peer is shed with an
		// explicit MsgBusy in its own goroutine — the accept loop never
		// blocks on a refused peer's socket, and the shed is never a
		// silent close.
		if max := c.admission.MaxConns; max > 0 && c.active.Load() >= int64(max) {
			obsShedConns.Inc()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				sc := newServerConn(conn, shedTimeout, allowBinary)
				defer ContainPanic(c.logger, sc)
				c.shed(sc, "connection limit reached")
			}()
			continue
		}
		// The gauge moves by atomic deltas, never Set-after-Add: two
		// goroutines interleaving an Add with a Set could publish the
		// older (higher) value and leave the gauge wrong until the next
		// connection event.
		c.active.Add(1)
		obsConnsActive.Add(1)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			defer func() {
				c.active.Add(-1)
				obsConnsActive.Add(-1)
			}()
			sc := newServerConn(conn, c.timeout, allowBinary)
			defer ContainPanic(c.logger, sc)
			c.handle(sc)
		}()
	}
}

// shed refuses one connection with MsgBusy and closes it. The peer's
// codec is sniffed first (under the shed deadline) so the refusal is
// legible on both ports; a peer that sends nothing just gets the close.
// The MsgBusy write runs under the same deadline, so a stalled client
// cannot block the shedding goroutine.
func (c *Controller) shed(conn *Conn, reason string) {
	defer conn.Close()
	if err := conn.Sniff(); err != nil {
		return
	}
	if err := conn.Send(Message{
		Type:         MsgBusy,
		Error:        reason,
		RetryAfterMs: c.admission.retryAfter(),
	}); err != nil {
		c.logger.Printf("shed: %v", err)
	}
}

// Close stops the listener and waits for peer goroutines to finish.
func (c *Controller) Close() error {
	c.mu.Lock()
	var stop chan struct{}
	if !c.closed {
		c.closed = true
		stop = c.stop
	}
	lns := c.listeners
	c.listeners = nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	var err error
	for _, ln := range lns {
		if cerr := ln.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.wg.Wait()
	if jerr := c.closeJournal(); jerr != nil && err == nil {
		err = jerr
	}
	return err
}

// handle runs one peer session: read the hello, then dispatch through
// the same entry point the federation router uses (federation.go). The
// hello itself runs under the short hello deadline — a peer that
// connects and says nothing is cut loose in seconds, not the full
// steady-state conn timeout (slowloris guard).
func (c *Controller) handle(conn *Conn) {
	defer conn.Close()
	full := conn.Timeout()
	if ht := c.helloTimeout; ht > 0 && (full <= 0 || ht < full) {
		conn.SetTimeout(ht)
	}
	hello, err := conn.Receive()
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			obsHelloTimeout.Inc()
			c.logger.Printf("peer hello timeout after %v", c.helloTimeout)
			return
		}
		c.logger.Printf("peer hello: %v", err)
		return
	}
	conn.SetTimeout(full)
	c.HandleSession(conn, hello)
}

func (c *Controller) replyError(conn *Conn, msg string) {
	if err := conn.Send(Message{Type: MsgError, Error: msg}); err != nil {
		c.logger.Printf("reply error: %v", err)
	}
}

// handleAP registers an AP agent and consumes its load reports, each of
// which renews the owning AP's lease. A group agent may register further
// APs with in-loop hellos on the same connection and address its reports
// with the AP field. The loop exits when the connection drops (the
// registrations then ride out their leases awaiting a reconnect) or
// when a newer agent connection takes over the primary AP; every exit
// path detaches all owned registrations from this connection, so a
// later supersede never "closes" a connection that is already gone.
func (c *Controller) handleAP(conn *Conn, hello Message) {
	id := trace.APID(hello.ID)
	gen, old, err := c.registerAgent(conn, id, hello.CapacityBps)
	if err != nil {
		c.replyError(conn, err.Error())
		return
	}
	if old != nil {
		old.Close()
		c.logger.Printf("ap %s re-hello: superseding previous agent connection", id)
	}
	// owned maps every AP registered over this connection to the
	// generation it was granted; the deferred detach covers every exit.
	owned := map[trace.APID]uint64{id: gen}
	defer func() {
		for oid, ogen := range owned {
			c.agentGone(oid, ogen)
		}
	}()
	if err := conn.Send(Message{Type: MsgHelloOK, ID: hello.ID}); err != nil {
		c.logger.Printf("ap %s: %v", id, err)
		return
	}
	c.logger.Printf("ap %s registered (capacity %.0f B/s, gen %d)", id, hello.CapacityBps, gen)
	// With admission's bounded report queue, reports apply on a consumer
	// goroutine and a flood sheds oldest-first — the agent's read loop
	// never wedges behind a contended domain lock. The consumer closes
	// the connection when the primary registration is lost, ending the
	// session the same way the synchronous path's return does.
	// lost carries apply failures from the queue consumer back to the
	// read loop, keyed by the generation that failed: a superseded or
	// expired non-primary AP must be pruned from owned (the synchronous
	// path deletes it inline), or its reports would keep passing the
	// ownership check and be queued and rejected forever. The generation
	// makes the signal precise — a marker left by a stale queued report
	// never prunes a registration the agent has since renewed with a
	// group re-hello. A failed *primary* apply instead closes the
	// connection, ending the session like the synchronous path's return.
	var (
		lostMu sync.Mutex
		lost   map[trace.APID]uint64
	)
	var rq *reportQueue
	if depth := c.admission.ReportQueue; depth > 0 {
		rq = newReportQueue(depth)
		lost = make(map[trace.APID]uint64)
		done := make(chan struct{})
		go func() {
			defer close(done)
			defer ContainPanic(c.logger, conn)
			for it := range rq.ch {
				if c.applyReport(trace.APID(it.ap), it.gen, it.load) {
					continue
				}
				if trace.APID(it.ap) == id {
					conn.Close()
					continue
				}
				lostMu.Lock()
				lost[trace.APID(it.ap)] = it.gen
				lostMu.Unlock()
			}
		}()
		defer func() { rq.close(); <-done }()
	}
	for {
		m, err := conn.Receive()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				c.logger.Printf("ap %s: %v", id, err)
			}
			return
		}
		if verr := validateMessage(&m); verr != nil {
			obsMsgRejected.Inc()
			c.replyError(conn, verr.Error())
			continue
		}
		switch m.Type {
		case MsgHello:
			// A group agent registers another AP on this connection.
			if m.Role != RoleAP {
				c.replyError(conn, fmt.Sprintf("unexpected role %q in group hello", m.Role))
				return
			}
			nid := trace.APID(m.ID)
			ngen, nold, err := c.registerAgent(conn, nid, m.CapacityBps)
			if err != nil {
				c.replyError(conn, err.Error())
				continue
			}
			if nold != nil && nold != conn {
				nold.Close()
				c.logger.Printf("ap %s group hello: superseding previous agent connection", nid)
			}
			owned[nid] = ngen
			if err := conn.Send(Message{Type: MsgHelloOK, ID: m.ID}); err != nil {
				c.logger.Printf("ap %s: %v", nid, err)
				return
			}
		case MsgReport:
			// The AP field selects the report's target for group agents;
			// empty means the primary (hello) AP.
			rid := id
			if m.AP != "" {
				rid = trace.APID(m.AP)
			}
			rgen, ok := owned[rid]
			if !ok {
				c.replyError(conn, fmt.Sprintf("report for AP %q not owned by this agent", rid))
				continue
			}
			if rq != nil {
				lostMu.Lock()
				lgen, gone := lost[rid]
				if gone {
					delete(lost, rid)
				}
				lostMu.Unlock()
				if gone && lgen == rgen {
					// The consumer saw this registration fail to apply:
					// prune it exactly as the synchronous path would.
					delete(owned, rid)
					c.replyError(conn, fmt.Sprintf("report for AP %q not owned by this agent", rid))
					continue
				}
				rq.push(reportItem{ap: string(rid), gen: rgen, load: m.LoadBps})
				continue
			}
			if !c.applyReport(rid, rgen, m.LoadBps) {
				// Expired or superseded: this connection lost that AP.
				delete(owned, rid)
				if rid == id {
					return
				}
				continue
			}
		default:
			c.replyError(conn, fmt.Sprintf("unexpected %s from AP", m.Type))
			return
		}
	}
}

// applyReport records one agent load report, renewing the AP's lease.
// It returns false when the registration is gone or was superseded —
// the reporting connection no longer owns that AP.
func (c *Controller) applyReport(rid trace.APID, gen uint64, load float64) bool {
	c.mu.Lock()
	meta, ok := c.meta[rid]
	if !ok || meta.gen != gen {
		c.mu.Unlock()
		return false
	}
	meta.lastSeen = c.now()
	c.dom.SetReported(rid, load)
	c.mu.Unlock()
	return true
}

// agentGone detaches a dropped agent connection from its AP entry. The
// registration itself survives: the lease keeps the AP (and its believed
// users) alive for a reconnect window before expiry re-homes them.
func (c *Controller) agentGone(id trace.APID, gen uint64) {
	c.mu.Lock()
	if m, ok := c.meta[id]; ok && m.gen == gen {
		m.agentConn = nil
	}
	c.mu.Unlock()
	c.logger.Printf("ap %s agent connection lost (lease pending)", id)
}

// testStationHook, when set by an in-package test, observes every
// validated station message before dispatch — the injection point the
// panic-containment tests use to detonate inside a handler goroutine.
var testStationHook func(user trace.UserID, m *Message)

// handleStation serves one station's association lifecycle.
func (c *Controller) handleStation(conn *Conn, hello Message) {
	user := trace.UserID(hello.ID)
	if user == "" {
		c.replyError(conn, "station hello without id")
		return
	}
	if err := conn.Send(Message{Type: MsgHelloOK, ID: hello.ID}); err != nil {
		return
	}
	for {
		m, err := conn.Receive()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				c.logger.Printf("station %s: %v", user, err)
			}
			c.disassociate(user)
			return
		}
		if verr := validateMessage(&m); verr != nil {
			obsMsgRejected.Inc()
			c.replyError(conn, verr.Error())
			continue
		}
		if h := testStationHook; h != nil {
			h(user, &m)
		}
		switch m.Type {
		case MsgAssoc:
			// Admission: over the association rate the request is shed
			// with MsgBusy on the open connection — the station backs off
			// and retries, it is not disconnected. The bucket gates the
			// request before the policy runs, so shedding costs
			// microseconds regardless of domain contention.
			if c.assocBucket != nil && !c.assocBucket.allow() {
				obsShedAssoc.Inc()
				if err := conn.Send(Message{
					Type:         MsgBusy,
					Error:        "association rate limit",
					RetryAfterMs: c.admission.retryAfter(),
				}); err != nil {
					c.disassociate(user)
					return
				}
				continue
			}
			ap, err := c.Associate(user, m.DemandBps)
			if err != nil {
				c.replyError(conn, err.Error())
				continue
			}
			if err := conn.Send(Message{Type: MsgAssign, User: string(user), AP: string(ap)}); err != nil {
				c.disassociate(user)
				return
			}
		case MsgTraffic:
			// Credit the controller's recorded assignment, never the
			// client-claimed AP: a stale or malicious claim must not
			// shift served volume between APs. Traffic from a user with
			// no assignment is rejected (dropped).
			c.mu.Lock()
			ap, ok := c.assignments[user]
			if ok {
				c.served[ap] += m.Bytes
				c.servedByUsr[user] += m.Bytes
			}
			c.mu.Unlock()
			if !ok {
				obsTrafficRejected.Inc()
				c.logger.Printf("station %s: rejected %d bytes of traffic without association", user, m.Bytes)
			}
		case MsgDisassoc:
			c.disassociate(user)
		default:
			c.replyError(conn, fmt.Sprintf("unexpected %s from station", m.Type))
		}
	}
}

// assocScratch holds the per-call buffers of the Associate fast path:
// the reusable view snapshot and the single-placement commit argument.
// Pooled so a steady-state association performs no heap allocation once
// the view arrays have grown to the domain's working-set size.
type assocScratch struct {
	views domain.ViewBuf
	ps    [1]domain.Placement
}

var assocPool = sync.Pool{New: func() interface{} { return new(assocScratch) }}

// Associate runs the policy for one user and records the assignment.
//
// The policy runs off every lock: the domain snapshots the AP views
// with their per-shard version vector, selector.Select runs lock-free
// (concurrent requests overlap), and the commit re-validates only the
// shards the decision touches. A stale snapshot — an AP
// registered/expired or membership changed mid-selection — re-runs the
// selection, up to maxSelectRetries times; after that the decision is
// committed against current state anyway (state mutation stays fully
// serialized per shard, so staleness can cost optimality but never
// consistency). A decision inside one shard commits on the domain's
// single-lock fast path, so disjoint associations scale with the shard
// count.
//
// A re-association that lands on the user's current AP is a demand
// refresh, not a move: the believed demand is replaced atomically, but
// the session, its served-byte tally and the association timestamp stay
// continuous, and no lifecycle events fire — the user never left.
func (c *Controller) Associate(user trace.UserID, demandBps float64) (trace.APID, error) {
	scr := assocPool.Get().(*assocScratch)
	defer assocPool.Put(scr)
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		ts := c.now()
		evs, conns := c.expireLocked(ts)
		c.mu.Unlock()
		c.emitLifecycle(evs, conns)

		c.dom.ViewsInto(user, &scr.views)
		views, ver := scr.views.Views(), scr.views.Version()
		if len(views) == 0 {
			return "", errors.New("protocol: no APs registered")
		}

		ap, err := c.selector.Select(wlan.Request{
			User:      user,
			At:        ts,
			DemandBps: demandBps,
		}, views)
		if err != nil {
			return "", fmt.Errorf("protocol: policy: %w", err)
		}

		c.mu.Lock()
		scr.ps[0] = domain.Placement{User: user, AP: ap, DemandBps: demandBps}
		prevAP, hadPrev := c.assignments[user]
		refresh := hadPrev && prevAP == ap
		if hadPrev {
			// Re-associating routes the previous assignment through Prev:
			// for a move, the removal and the new placement land in one
			// atomic domain commit; for a same-AP refresh, the commit
			// atomically replaces (rather than adds to) the believed
			// demand.
			scr.ps[0].Prev = prevAP
		}
		verArg := ver
		if attempt >= maxSelectRetries {
			verArg = nil // force: retries exhausted
		}
		if _, err := c.dom.Commit(scr.ps[:1], verArg); err != nil {
			c.mu.Unlock()
			if attempt < maxSelectRetries &&
				(errors.Is(err, domain.ErrStale) || errors.Is(err, domain.ErrUnknownAP)) {
				obsSelectRetries.Inc()
				continue
			}
			if errors.Is(err, domain.ErrUnknownAP) {
				return "", fmt.Errorf("protocol: policy chose unknown AP %q", ap)
			}
			return "", fmt.Errorf("protocol: commit: %w", err)
		}
		if hadPrev && !refresh {
			c.sessionRecordLocked(user, prevAP, ts)
			obsAssocMoves.Inc()
		}
		c.assignments[user] = ap
		if !refresh {
			c.assignedAt[user] = ts
			c.servedByUsr[user] = 0
		}
		obsv := c.observer
		if refresh {
			// Demand update only: the user never left, so no disconnect
			// and no re-connect reaches the observer.
			obsv = nil
		}
		if obsv != nil && c.jn != nil {
			// Journaled: deliver in mutation order before the append, so a
			// checkpoint triggered by this record captures the observer at
			// exactly this sequence number.
			c.notifyAssoc(obsv, user, ap, prevAP, hadPrev, ts)
			obsv = nil
		}
		if c.jn != nil {
			c.journalAppendLocked(journal.Record{
				Op: journal.OpAssoc, TS: ts,
				Placements: []journal.Placement{{User: user, AP: ap, Prev: scr.ps[0].Prev, DemandBps: demandBps}},
			})
		}
		if c.logEnabled {
			c.logger.Printf("assoc %s -> %s (demand %.0f B/s)", user, ap, demandBps)
		}
		c.mu.Unlock()

		// Unjournaled: notify outside the lock — observers may be slow.
		if obsv != nil {
			c.notifyAssoc(obsv, user, ap, prevAP, hadPrev, ts)
		}
		return ap, nil
	}
}

// AssociateBatch runs the policy once for a group of co-arriving users
// and commits every placement in one atomic domain commit — S³'s
// Algorithm 1 distributing a socially-tight clique across APs in a
// single decision. When the clique's APs span domain shards, the commit
// takes the deterministic two-phase path (involved shards locked in
// ascending order, all-or-nothing), so a concurrent association never
// observes half a clique placed.
//
// Requests should carry one entry per user; duplicates beyond the first
// fall back to individual Associate calls, as do users the batch
// decision leaves unplaced and all requests when the policy is not a
// wlan.BatchSelector or the group has fewer than two members. The
// returned map records every user's final AP, keyed as placed so far
// even when an error aborts the remainder.
func (c *Controller) AssociateBatch(reqs []wlan.Request) (map[trace.UserID]trace.APID, error) {
	out := make(map[trace.UserID]trace.APID, len(reqs))
	bs, ok := c.selector.(wlan.BatchSelector)
	if !ok || len(reqs) < 2 {
		for _, r := range reqs {
			ap, err := c.Associate(r.User, r.DemandBps)
			if err != nil {
				return out, err
			}
			out[r.User] = ap
		}
		return out, nil
	}
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		ts := c.now()
		evs, conns := c.expireLocked(ts)
		c.mu.Unlock()
		c.emitLifecycle(evs, conns)

		views, ver := c.dom.Views(reqs[0].User)
		if len(views) == 0 {
			return out, errors.New("protocol: no APs registered")
		}

		// One request per user joins the joint decision (mirroring the
		// simulator's batch path); duplicates fall through below.
		seen := make(map[trace.UserID]bool, len(reqs))
		batchReqs := make([]wlan.Request, 0, len(reqs))
		for _, r := range reqs {
			if seen[r.User] {
				continue
			}
			seen[r.User] = true
			batchReqs = append(batchReqs, r)
		}
		m, err := bs.SelectBatch(batchReqs, views)
		if err != nil {
			return out, fmt.Errorf("protocol: policy: %w", err)
		}

		c.mu.Lock()
		var (
			ps      []domain.Placement
			moves   []assocMove
			rest    []wlan.Request // duplicates and unplaced users
			claimed = make(map[trace.UserID]bool, len(batchReqs))
		)
		for _, r := range reqs {
			ap, placed := m[r.User]
			if !placed || claimed[r.User] {
				rest = append(rest, r)
				continue
			}
			claimed[r.User] = true
			p := domain.Placement{User: r.User, AP: ap, DemandBps: r.DemandBps}
			if prev, had := c.assignments[r.User]; had {
				p.Prev = prev
				if prev != ap {
					// Same-AP placements are demand refreshes, not moves:
					// no session split, no lifecycle events (see Associate).
					moves = append(moves, assocMove{user: r.User, prev: prev})
				}
			}
			ps = append(ps, p)
		}
		verArg := ver
		if attempt >= maxSelectRetries {
			verArg = nil // force: retries exhausted
		}
		if _, err := c.dom.Commit(ps, verArg); err != nil {
			c.mu.Unlock()
			if attempt < maxSelectRetries &&
				(errors.Is(err, domain.ErrStale) || errors.Is(err, domain.ErrUnknownAP)) {
				obsSelectRetries.Inc()
				continue
			}
			if errors.Is(err, domain.ErrUnknownAP) {
				return out, fmt.Errorf("protocol: policy chose unknown AP (%v)", err)
			}
			return out, fmt.Errorf("protocol: commit: %w", err)
		}
		for _, mv := range moves {
			c.sessionRecordLocked(mv.user, mv.prev, ts)
			obsAssocMoves.Inc()
		}
		jps := make([]journal.Placement, len(ps))
		for i, p := range ps {
			c.assignments[p.User] = p.AP
			if p.Prev != p.AP {
				// A same-AP refresh (Prev == AP) keeps the session's
				// timestamp and served-byte tally continuous.
				c.assignedAt[p.User] = ts
				c.servedByUsr[p.User] = 0
			}
			out[p.User] = p.AP
			jps[i] = journal.Placement{User: p.User, AP: p.AP, Prev: p.Prev, DemandBps: p.DemandBps}
			if c.logEnabled {
				c.logger.Printf("assoc %s -> %s (demand %.0f B/s, batch)", p.User, p.AP, p.DemandBps)
			}
		}
		obsv := c.observer
		if obsv != nil && c.jn != nil {
			// Journaled: deliver before the append so a checkpoint
			// triggered by this record includes these events (see
			// Associate).
			c.notifyBatch(obsv, moves, ps, ts)
			obsv = nil
		}
		if len(jps) > 0 {
			c.journalAppendLocked(journal.Record{Op: journal.OpAssoc, TS: ts, Placements: jps})
		}
		c.mu.Unlock()

		if obsv != nil {
			c.notifyBatch(obsv, moves, ps, ts)
		}

		for _, r := range rest {
			ap, err := c.Associate(r.User, r.DemandBps)
			if err != nil {
				return out, err
			}
			out[r.User] = ap
		}
		return out, nil
	}
}

func (c *Controller) disassociate(user trace.UserID) {
	c.mu.Lock()
	ts := c.now()
	ap, ok := c.assignments[user]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(c.assignments, user)
	c.dom.LeaveAll(user, ap)
	c.sessionRecordLocked(user, ap, ts)
	obsv := c.observer
	if obsv != nil && c.jn != nil {
		// Journaled: deliver before the append (see Associate).
		c.notifyDisconnect(obsv, user, ap, ts)
		obsv = nil
	}
	// All three bookkeeping maps must be consistent before the append: a
	// rotation-triggered checkpoint snapshots state synchronously from
	// inside journalAppendLocked, and a checkpoint keyed to this record
	// must not carry a half-deleted user (gone from assignments, still
	// in assignedAt/servedByUsr).
	delete(c.assignedAt, user)
	delete(c.servedByUsr, user)
	c.journalAppendLocked(journal.Record{Op: journal.OpDisassoc, TS: ts, User: user, AP: ap})
	if c.logEnabled {
		c.logger.Printf("disassoc %s from %s", user, ap)
	}
	c.mu.Unlock()

	if obsv != nil {
		c.notifyDisconnect(obsv, user, ap, ts)
	}
}

// sessionRecordLocked emits one completed-association record to the
// session log via the domain (if configured). Must run with c.mu held,
// before the user's assignedAt/servedByUsr bookkeeping is reset.
func (c *Controller) sessionRecordLocked(user trace.UserID, ap trace.APID, ts int64) {
	if err := c.dom.LogSession(trace.Session{
		User:         user,
		AP:           ap,
		ConnectAt:    c.assignedAt[user],
		DisconnectAt: ts,
		Bytes:        c.servedByUsr[user],
	}); err != nil {
		c.logger.Printf("session log: %v", err)
	}
}

// expireLocked removes agent-registered APs whose lease has lapsed and
// re-homes their believed users: assignments are dropped, sessions
// logged, and observer disconnects gathered for emission outside the
// lock (alongside any lingering agent connections to close). Must run
// with c.mu held. Expiry order is sorted by AP ID for determinism.
func (c *Controller) expireLocked(ts int64) ([]lifecycleEvent, []*Conn) {
	if c.leaseSeconds <= 0 {
		return nil, nil
	}
	var expired []trace.APID
	for id, m := range c.meta {
		if !m.static && ts-m.lastSeen > c.leaseSeconds {
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	var evs []lifecycleEvent
	var conns []*Conn
	inline := c.jn != nil && c.observer != nil
	for _, id := range expired {
		m := c.meta[id]
		evicted, _ := c.dom.RemoveAP(id)
		for _, ev := range evicted {
			delete(c.assignments, ev.User)
			c.sessionRecordLocked(ev.User, id, ts)
			delete(c.assignedAt, ev.User)
			delete(c.servedByUsr, ev.User)
			if inline {
				// Journaled: deliver before the append (see Associate).
				c.notifyDisconnect(c.observer, ev.User, id, ts)
			} else {
				evs = append(evs, lifecycleEvent{user: ev.User, ap: id, ts: ts})
			}
		}
		c.journalAppendLocked(journal.Record{Op: journal.OpExpire, TS: ts, AP: id})
		if m.agentConn != nil {
			conns = append(conns, m.agentConn)
		}
		c.logger.Printf("ap %s lease expired (silent %ds, %d users re-homed)",
			id, ts-m.lastSeen, len(evicted))
		delete(c.meta, id)
		obsLeaseExpired.Inc()
	}
	return evs, conns
}

// assocMove records a re-association's previous AP for observer and
// session bookkeeping.
type assocMove struct {
	user trace.UserID
	prev trace.APID
}

// notifyAssoc delivers one association's observer events: the
// disconnect from the previous AP on a move, then the connect.
func (c *Controller) notifyAssoc(obsv AssociationObserver,
	user trace.UserID, ap, prev trace.APID, moved bool, ts int64) {
	if moved {
		c.notifyDisconnect(obsv, user, prev, ts)
	}
	obsv.Connect(user, ap, ts)
}

// notifyBatch delivers a batch commit's observer events: every move's
// disconnect, then every placement's connect. Same-AP refreshes
// (Prev == AP) emit nothing — the user never left.
func (c *Controller) notifyBatch(obsv AssociationObserver,
	moves []assocMove, ps []domain.Placement, ts int64) {
	for _, mv := range moves {
		c.notifyDisconnect(obsv, mv.user, mv.prev, ts)
	}
	for _, p := range ps {
		if p.Prev == p.AP && p.Prev != "" {
			continue
		}
		obsv.Connect(p.User, p.AP, ts)
	}
}

func (c *Controller) notifyDisconnect(obsv AssociationObserver,
	user trace.UserID, ap trace.APID, ts int64) {
	if err := obsv.Disconnect(user, ap, ts); err != nil {
		c.logger.Printf("observer disconnect %s: %v", user, err)
	}
}

// emitLifecycle closes superseded connections and delivers deferred
// observer disconnects. Must run without c.mu held.
func (c *Controller) emitLifecycle(evs []lifecycleEvent, conns []*Conn) {
	for _, conn := range conns {
		conn.Close()
	}
	if c.observer == nil {
		return
	}
	for _, e := range evs {
		if err := c.observer.Disconnect(e.user, e.ap, e.ts); err != nil {
			c.logger.Printf("observer disconnect %s: %v", e.user, err)
		}
	}
}

// Snapshot reports the controller's current state for inspection: per-AP
// associated users and served volume. Taking a snapshot also sweeps
// expired leases, so it reflects only live APs.
func (c *Controller) Snapshot() map[trace.APID]APStatus {
	c.mu.Lock()
	evs, conns := c.expireLocked(c.now())
	ids := c.dom.APs()
	out := make(map[trace.APID]APStatus, len(ids))
	for _, id := range ids {
		info, ok := c.dom.Info(id)
		if !ok {
			continue
		}
		out[id] = APStatus{
			CapacityBps: info.CapacityBps,
			ReportedBps: info.ReportedBps,
			Users:       info.Users,
			ServedBytes: c.served[id],
		}
	}
	c.mu.Unlock()
	c.emitLifecycle(evs, conns)
	return out
}

// APStatus is one AP's externally visible state.
type APStatus struct {
	CapacityBps float64
	ReportedBps float64
	Users       []trace.UserID
	ServedBytes int64
}
