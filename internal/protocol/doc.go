// Package protocol implements the S³ prototype the paper validates its
// design with (Section IV): a WLAN controller as a TCP server speaking a
// JSON-lines wire protocol, AP agents that register and periodically
// report load, and stations that request association.
//
// The controller embeds any wlan.Selector — the S³ policy from
// internal/core or a baseline from internal/baseline — and makes live
// association decisions exactly as the simulator does, but over real
// sockets. That symmetry is the point: the same policy code path is
// exercised by the discrete-event simulation (internal/eventsim driving
// internal/wlan) and by this networked prototype, so simulated results
// carry over to the deployable artifact.
//
// Wire format: one JSON object per line, each carrying a Type tag
// (register, report, associate, decision, error) and the corresponding
// payload fields. The format is versioned by field presence only; unknown
// fields are ignored, which keeps old agents compatible with newer
// controllers.
//
// Lifecycle and failure model: AP registrations made by agents are
// leases — every hello and load report renews them, a re-hello from a
// reconnecting (or restarted) agent supersedes the previous connection,
// and an AP whose agent stays silent past the lease is expired, its
// believed users re-homed through the association observer and the
// session log. Agents built with DialAPReconnecting redial with
// exponential backoff and jitter when their connection drops. The
// controller's association path snapshots AP state under a short
// critical section and runs the policy lock-free, re-running stale
// decisions via a versioned check-and-retry, so concurrent stations do
// not serialize behind one beam search. Health counters (registrations,
// renewals, lease expiries, accept retries, selection retries, agent
// reconnects, rejected traffic) are exported through internal/obs under
// the protocol.* prefix.
//
// The faultconn subpackage wraps connections and listeners with seeded
// fault injection (drops, torn frames, delays, mid-stream closes,
// transient accept errors) for the lifecycle tests and the s3proto
// chaos soak.
//
// Command s3proto wraps this package into a runnable demo (controller,
// N agents and a scripted station workload in one process) and a chaos
// soak (-chaos).
package protocol
