// Package protocol implements the S³ prototype the paper validates its
// design with (Section IV): a WLAN controller as a TCP server speaking a
// JSON-lines wire protocol, AP agents that register and periodically
// report load, and stations that request association.
//
// The controller embeds any wlan.Selector — the S³ policy from
// internal/core or a baseline from internal/baseline — and makes live
// association decisions exactly as the simulator does, but over real
// sockets. That symmetry is the point: the same policy code path is
// exercised by the discrete-event simulation (internal/eventsim driving
// internal/wlan) and by this networked prototype, so simulated results
// carry over to the deployable artifact.
//
// Wire format: one JSON object per line, each carrying a Type tag
// (register, report, associate, decision, error) and the corresponding
// payload fields. The format is versioned by field presence only; unknown
// fields are ignored, which keeps old agents compatible with newer
// controllers.
//
// Command s3proto wraps this package into a runnable demo (controller,
// N agents and a scripted station workload in one process).
package protocol
