package protocol

import (
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/society/incremental"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// TestIncrementalEngineLiveLoop closes the paper's future-work loop over
// real TCP: one incremental engine learns from the controller's
// association events (AssociationObserver), publishes snapshots on the
// WithRefresher tick, and serves θ to the S³ selector lock-free
// (core.SocialIndex) — controller events in, dispersal decisions out.
func TestIncrementalEngineLiveLoop(t *testing.T) {
	cfg := incremental.DefaultConfig()
	cfg.Society.MinEncounters = 1
	cfg.RefreshEvents = 0 // only the controller's refresher publishes
	eng := incremental.New(cfg)

	// Prime the engine with history: alice and bob are tight friends.
	ts := int64(0)
	for i := 0; i < 3; i++ {
		eng.Connect("alice", "cafe", ts)
		eng.Connect("bob", "cafe", ts)
		if err := eng.Disconnect("alice", "cafe", ts+3600); err != nil {
			t.Fatal(err)
		}
		if err := eng.Disconnect("bob", "cafe", ts+3650); err != nil {
			t.Fatal(err)
		}
		ts += 8000
	}
	if got := eng.Index("alice", "bob"); got != 0 {
		t.Fatalf("θ before any refresh = %v, want 0 (stale empty snapshot)", got)
	}

	sel, err := core.NewSelector(eng, core.DefaultSelectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(sel,
		WithTimeout(testTimeout),
		WithObserver(eng),
		WithRefresher(func() { eng.Refresh() }, 2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAP("ap2", 0); err != nil {
		t.Fatal(err)
	}

	// The refresher must publish the primed history without any manual
	// Refresh call.
	deadline := time.Now().Add(testTimeout)
	for eng.Index("alice", "bob") != 1.0 {
		if time.Now().After(deadline) {
			t.Fatalf("refresher never published: θ = %v, snapshot %+v",
				eng.Index("alice", "bob"), eng.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}

	assign := func(user trace.UserID) trace.APID {
		st, err := DialStation(addr, user, testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		ap, err := st.Associate(100)
		if err != nil {
			t.Fatal(err)
		}
		return ap
	}
	if apAlice, apBob := assign("alice"), assign("bob"); apAlice == apBob {
		t.Errorf("friends colocated on %s despite θ = 1", apAlice)
	}

	// The association events flowed back into the engine: a never-before
	// seen station becomes a vertex in the next published snapshot.
	assign("carol")
	deadline = time.Now().Add(testTimeout)
	for eng.Snapshot().Users != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("observer events not learned: snapshot has %d users, want 3",
				eng.Snapshot().Users)
		}
		time.Sleep(time.Millisecond)
	}
}
