// Package faultconn wraps net.Conn and net.Listener with seeded,
// schedulable fault injection: dropped and partial writes, injected
// read/write errors, delays, mid-stream closes, and transient accept
// failures. The protocol lifecycle tests and the s3proto chaos demo use
// it to subject the live controller to exactly the churn the paper
// studies — peers that vanish, reconnect, and misbehave — while staying
// reproducible: every probabilistic decision comes from a seeded
// generator, and listener-wrapped connections derive per-connection
// seeds with a splitmix64 finalizer (same discipline as
// internal/runner's DeriveSeed).
package faultconn

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected marks a failure manufactured by the wrapper (as opposed to
// one surfaced by the real transport).
var ErrInjected = errors.New("faultconn: injected error")

// Config is a fault schedule. Probabilities are per operation in [0,1];
// zero values inject nothing, so Config{} is a transparent wrapper.
type Config struct {
	// Seed seeds the decision stream.
	Seed int64
	// DropWriteProb silently discards a write (reported as fully
	// written) — the classic lost report.
	DropWriteProb float64
	// PartialWriteProb writes only a prefix, then closes the transport
	// and returns ErrInjected — a frame torn mid-stream.
	PartialWriteProb float64
	// WriteErrProb fails a write with ErrInjected and closes the
	// transport.
	WriteErrProb float64
	// ReadErrProb fails a read with ErrInjected and closes the
	// transport.
	ReadErrProb float64
	// DelayProb stalls an operation for a uniform duration in
	// (0, MaxDelay].
	DelayProb float64
	// MaxDelay bounds injected delays (default 5ms when DelayProb > 0).
	MaxDelay time.Duration
	// CloseAfterWrites closes the transport mid-stream after that many
	// successful writes (0 = never).
	CloseAfterWrites int
	// CloseAfterReads closes the transport after that many successful
	// reads (0 = never).
	CloseAfterReads int
	// ReadStallProb stalls a read for StallDur WITHOUT closing the
	// transport — the half-open peer that holds its connection but never
	// produces bytes. Unlike an injected error the caller sees nothing
	// until its own deadline fires, which is exactly the behavior hello
	// timeouts and relay circuit breakers must be tested against.
	ReadStallProb float64
	// StallDur is how long a stalled read hangs before proceeding with
	// the real read (default 1s when ReadStallProb > 0).
	StallDur time.Duration
}

// Source supplies a live fault schedule, consulted once per operation.
// A dynamic wrapper built with WrapDynamic reads its Config through a
// Source, so a scenario engine (internal/faults) can move every open
// connection between fault phases without re-wrapping.
type Source func() Config

// Conn wraps a net.Conn with the fault schedule in Config. Safe for one
// concurrent reader plus one concurrent writer (the net.Conn contract).
type Conn struct {
	net.Conn
	cfg Config
	src Source // when set, overrides cfg per operation

	mu     sync.Mutex
	rng    *rand.Rand
	reads  int
	writes int
}

// Wrap decorates conn with the fault schedule cfg.
func Wrap(conn net.Conn, cfg Config) *Conn {
	return &Conn{
		Conn: conn,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

// WrapDynamic decorates conn with a schedule read from src before every
// operation; src's Seed field is ignored (the decision stream is seeded
// once, by seed, so runs stay reproducible across phase flips).
func WrapDynamic(conn net.Conn, seed int64, src Source) *Conn {
	return &Conn{
		Conn: conn,
		src:  src,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// decision is one sampled fault outcome.
type decision struct {
	delay   time.Duration
	stall   time.Duration // reads only: hang, then proceed (no close)
	err     bool          // inject an error and close
	partial bool          // write a prefix, then close (writes only)
	drop    bool          // discard the write, report success (writes only)
	closed  bool          // operation quota reached: close mid-stream
}

func (c *Conn) decide(write bool) decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.cfg
	if c.src != nil {
		cfg = c.src()
	}
	var d decision
	if cfg.DelayProb > 0 && c.rng.Float64() < cfg.DelayProb {
		max := cfg.MaxDelay
		if max <= 0 {
			max = 5 * time.Millisecond
		}
		d.delay = time.Duration(c.rng.Int63n(int64(max))) + 1
	}
	if write {
		c.writes++
		if cfg.CloseAfterWrites > 0 && c.writes > cfg.CloseAfterWrites {
			d.closed = true
			return d
		}
		switch {
		case cfg.DropWriteProb > 0 && c.rng.Float64() < cfg.DropWriteProb:
			d.drop = true
		case cfg.PartialWriteProb > 0 && c.rng.Float64() < cfg.PartialWriteProb:
			d.partial = true
		case cfg.WriteErrProb > 0 && c.rng.Float64() < cfg.WriteErrProb:
			d.err = true
		}
		return d
	}
	c.reads++
	if cfg.CloseAfterReads > 0 && c.reads > cfg.CloseAfterReads {
		d.closed = true
		return d
	}
	if cfg.ReadStallProb > 0 && c.rng.Float64() < cfg.ReadStallProb {
		d.stall = cfg.StallDur
		if d.stall <= 0 {
			d.stall = time.Second
		}
	}
	if cfg.ReadErrProb > 0 && c.rng.Float64() < cfg.ReadErrProb {
		d.err = true
	}
	return d
}

// Read applies the read-side fault schedule, then reads from the
// transport. A stalled read hangs for the scheduled duration without
// closing, then proceeds — the caller's own deadline (if any) is what
// eventually fails a stalled connection.
func (c *Conn) Read(p []byte) (int, error) {
	d := c.decide(false)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.stall > 0 {
		time.Sleep(d.stall)
	}
	if d.closed || d.err {
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

// Write applies the write-side fault schedule, then writes to the
// transport.
func (c *Conn) Write(p []byte) (int, error) {
	d := c.decide(true)
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	switch {
	case d.closed:
		c.Conn.Close()
		return 0, ErrInjected
	case d.drop:
		return len(p), nil
	case d.partial:
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, ErrInjected
	case d.err:
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(p)
}

// Listener wraps every accepted connection with Config, deriving a
// distinct per-connection seed from Config.Seed so runs stay
// reproducible without every connection sharing one fault stream.
type Listener struct {
	net.Listener
	Config Config

	mu sync.Mutex
	n  int64
}

// Accept accepts from the underlying listener and wraps the connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	n := l.n
	l.mu.Unlock()
	cfg := l.Config
	cfg.Seed = DeriveSeed(l.Config.Seed, n)
	return Wrap(conn, cfg), nil
}

// FlakyListener injects transient accept errors: the first FailFirst
// Accept calls fail, and with FailEvery > 0 every FailEvery-th call
// after that fails too. Injected errors satisfy net.Error with
// Temporary() true, mimicking ECONNABORTED/EMFILE bursts; the pending
// connection is not consumed, so a retrying accept loop eventually gets
// it.
type FlakyListener struct {
	net.Listener
	FailFirst int
	FailEvery int

	mu    sync.Mutex
	calls int
}

// Accept fails per the schedule, otherwise accepts from the underlying
// listener.
func (l *FlakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.calls++
	n := l.calls
	l.mu.Unlock()
	if n <= l.FailFirst || (l.FailEvery > 0 && n > l.FailFirst && (n-l.FailFirst)%l.FailEvery == 0) {
		return nil, tempError{}
	}
	return l.Listener.Accept()
}

// tempError is a transient net.Error.
type tempError struct{}

func (tempError) Error() string   { return "faultconn: transient accept error" }
func (tempError) Timeout() bool   { return false }
func (tempError) Temporary() bool { return true }

// DeriveSeed maps (base, i) to an independent stream seed via the
// splitmix64 finalizer.
func DeriveSeed(base, i int64) int64 {
	z := uint64(base) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
