package faultconn

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeConn is an in-memory net.Conn half for write-side tests.
type fakeConn struct {
	mu     sync.Mutex
	wrote  bytes.Buffer
	closed bool
}

func (f *fakeConn) Read(p []byte) (int, error) { return 0, io.EOF }

func (f *fakeConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return 0, net.ErrClosed
	}
	return f.wrote.Write(p)
}

func (f *fakeConn) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	return nil
}

func (f *fakeConn) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

func (f *fakeConn) written() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wrote.Len()
}

func (f *fakeConn) LocalAddr() net.Addr                { return nil }
func (f *fakeConn) RemoteAddr() net.Addr               { return nil }
func (f *fakeConn) SetDeadline(t time.Time) error      { return nil }
func (f *fakeConn) SetReadDeadline(t time.Time) error  { return nil }
func (f *fakeConn) SetWriteDeadline(t time.Time) error { return nil }

func TestTransparentWithZeroConfig(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{})
	for i := 0; i < 100; i++ {
		if n, err := c.Write([]byte("hello")); n != 5 || err != nil {
			t.Fatalf("write %d = %d, %v", i, n, err)
		}
	}
	if fc.written() != 500 {
		t.Errorf("underlying got %d bytes, want 500", fc.written())
	}
}

func TestDropWrite(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1, DropWriteProb: 1})
	n, err := c.Write([]byte("lost report"))
	if n != 11 || err != nil {
		t.Fatalf("dropped write = %d, %v; want full length, nil", n, err)
	}
	if fc.written() != 0 {
		t.Errorf("underlying got %d bytes, want 0", fc.written())
	}
}

func TestPartialWriteTearsFrame(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1, PartialWriteProb: 1})
	n, err := c.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if n != 5 || fc.written() != 5 {
		t.Errorf("prefix = %d/%d, want 5/5", n, fc.written())
	}
	if !fc.isClosed() {
		t.Error("transport should be closed after a torn frame")
	}
}

func TestCloseAfterWrites(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1, CloseAfterWrites: 2})
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write err = %v, want ErrInjected", err)
	}
	if !fc.isClosed() {
		t.Error("transport should be closed mid-stream")
	}
}

func TestReadErr(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 1, ReadErrProb: 1})
	if _, err := c.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	if !fc.isClosed() {
		t.Error("transport should be closed after injected read error")
	}
}

// TestSeededDeterminism: the same seed yields the same fault schedule.
func TestSeededDeterminism(t *testing.T) {
	run := func() []bool {
		fc := &fakeConn{}
		c := Wrap(fc, Config{Seed: 42, DropWriteProb: 0.3})
		var dropped []bool
		for i := 0; i < 200; i++ {
			before := fc.written()
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			dropped = append(dropped, fc.written() == before)
		}
		return dropped
	}
	a, b := run(), run()
	anyDrop, anyPass := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at write %d", i)
		}
		anyDrop = anyDrop || a[i]
		anyPass = anyPass || !a[i]
	}
	if !anyDrop || !anyPass {
		t.Errorf("schedule degenerate: drops=%v passes=%v", anyDrop, anyPass)
	}
}

func TestFlakyListenerSchedule(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fl := &FlakyListener{Listener: ln, FailFirst: 2}
	for i := 0; i < 2; i++ {
		_, err := fl.Accept()
		if err == nil {
			t.Fatalf("accept %d should fail", i)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Temporary() {
			t.Fatalf("accept %d error not transient: %v", i, err)
		}
	}
	done := make(chan error, 1)
	go func() {
		conn, err := fl.Accept()
		if conn != nil {
			conn.Close()
		}
		done <- err
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dial.Close()
	if err := <-done; err != nil {
		t.Fatalf("accept after schedule: %v", err)
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for i := int64(0); i < 100; i++ {
		seen[DeriveSeed(1, i)] = true
	}
	if len(seen) != 100 {
		t.Errorf("derived seeds collide: %d unique of 100", len(seen))
	}
}

// TestReadStallHangsWithoutClose: a stalled read hangs for StallDur and
// then proceeds with the real read — the transport stays open, unlike
// every error-injecting mode. This is the half-open-peer primitive the
// hello-timeout and circuit-breaker suites build on.
func TestReadStallHangsWithoutClose(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	c := Wrap(client, Config{Seed: 7, ReadStallProb: 1, StallDur: 50 * time.Millisecond})
	defer c.Close()
	go server.Write([]byte("hi"))
	buf := make([]byte, 2)
	start := time.Now()
	n, err := c.Read(buf)
	if err != nil || n != 2 {
		t.Fatalf("stalled read = %d, %v (stall must not close)", n, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("read returned after %v, want >= 50ms stall", d)
	}
}

// TestWrapDynamicFollowsSource: a dynamic wrapper consults its Source
// per operation, so flipping the schedule changes behavior mid-stream
// without re-wrapping the connection.
func TestWrapDynamicFollowsSource(t *testing.T) {
	fc := &fakeConn{}
	var mu sync.Mutex
	cfg := Config{}
	src := func() Config {
		mu.Lock()
		defer mu.Unlock()
		return cfg
	}
	c := WrapDynamic(fc, 42, src)
	if _, err := c.Write([]byte("ok")); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	mu.Lock()
	cfg.WriteErrProb = 1
	mu.Unlock()
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted write = %v, want ErrInjected", err)
	}
	if !fc.isClosed() {
		t.Error("injected write error should close the transport")
	}
}
