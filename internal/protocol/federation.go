package protocol

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/s3wlan/s3wlan/internal/journal"
)

// Federation-facing surface of the controller: the exported entry
// points internal/federation uses to run a controller as one replica of
// a shard-owning cluster.
//
//   - A *standby* controller mirrors a shard owner by applying the
//     owner's replicated journal records (RestoreCheckpoint for the
//     initial snapshot or a resync, ApplyRecord per tailed record).
//   - On failover the standby is *promoted*: AttachJournal opens the
//     shard's journal for appending at the new ownership epoch,
//     replays whatever tail the follower had not yet seen, and arms
//     the same append hooks a journal-born controller has.
//   - The routing front-end hands connections whose hello belongs to a
//     locally owned shard to HandleSession; remote shards are relayed
//     over the binary codec (Conn.ReceiveBatch / Conn.SendBatch).
//
// None of this is reachable in single-node mode: a controller built by
// NewController with WithJournal behaves exactly as before.

// HandleSession runs one peer session whose hello has already been
// read — the entry point a federation router uses to hand a routed
// connection to the local controller. Validation and dispatch are
// identical to a directly accepted connection. HandleSession does not
// close conn; the caller owns its lifecycle. It returns when the
// session ends.
func (c *Controller) HandleSession(conn *Conn, hello Message) {
	if hello.Type != MsgHello {
		c.replyError(conn, fmt.Sprintf("expected hello, got %s", hello.Type))
		return
	}
	if err := validateMessage(&hello); err != nil {
		obsMsgRejected.Inc()
		c.replyError(conn, err.Error())
		return
	}
	switch hello.Role {
	case RoleAP:
		c.handleAP(conn, hello)
	case RoleStation:
		c.handleStation(conn, hello)
	default:
		c.replyError(conn, fmt.Sprintf("unknown role %q", hello.Role))
	}
}

// RestoreCheckpoint loads a full controller checkpoint — the payload a
// shard owner's journal checkpoint holds, delivered to a follower
// through a replication-stream resync. The controller must hold no
// prior association state (a freshly constructed standby); restoring
// over existing state fails. Not valid on a journal-armed controller.
func (c *Controller) RestoreCheckpoint(payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jn != nil {
		return errors.New("protocol: RestoreCheckpoint on a journal-armed controller")
	}
	return c.restoreCheckpoint(payload)
}

// ApplyRecord applies one replicated journal record to the
// controller's state through the recovery replay path: domain commit,
// assignment bookkeeping and observer events, with no session-log or
// journal emission. This is how a standby follower mirrors a shard
// owner record by record. Not valid on a journal-armed controller —
// an owner must never re-apply its own appends.
func (c *Controller) ApplyRecord(r journal.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jn != nil {
		return errors.New("protocol: ApplyRecord on a journal-armed controller")
	}
	return c.applyRecord(r)
}

// AttachJournal promotes a standby controller to shard owner: it opens
// dir for appending (opts.Epoch carries the new ownership epoch),
// replays only the records beyond afterSeq — everything up to afterSeq
// was already applied through RestoreCheckpoint/ApplyRecord while
// following — and arms journaling so every subsequent mutation
// appends, exactly like a controller built with WithJournal.
//
// afterSeq is the promoting follower's LastSeq. If the journal's
// newest checkpoint is beyond afterSeq the follower missed pruned
// records; the caller must resync the follower first (AttachJournal
// refuses rather than replay from a checkpoint it cannot import over
// live state).
func (c *Controller) AttachJournal(dir string, opts journal.Options, afterSeq uint64) (*RecoverySummary, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jn != nil {
		return nil, errors.New("protocol: journal already attached")
	}
	opts.State = c.writeCheckpointLocked
	if opts.Logger == nil {
		opts.Logger = c.logger
	}
	j, rec, err := journal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	if rec.Checkpoint != nil && rec.Stats.CheckpointSeq > afterSeq {
		j.Close()
		return nil, fmt.Errorf("protocol: follower at seq %d behind journal checkpoint %d; resync before takeover",
			afterSeq, rec.Stats.CheckpointSeq)
	}
	sum := &RecoverySummary{Stats: rec.Stats}
	for _, r := range rec.Records {
		if r.Seq <= afterSeq {
			continue
		}
		if err := c.applyRecord(r); err != nil {
			sum.ReplayErrors++
			obsReplayErrs.Inc()
			c.logger.Printf("journal: takeover replay record %d (%s): %v", r.Seq, r.Op, err)
		}
	}
	sum.APs = c.dom.Size()
	sum.Assignments = len(c.assignments)
	c.recovered = sum
	c.jn = j
	return sum, nil
}

// DetachJournal closes the controller's journal WITHOUT the shutdown
// checkpoint Close writes — the demotion path. A superseded owner must
// not snapshot its (now stale) state into a directory the new owner is
// appending to; it just stops writing. The controller keeps serving
// in-memory only; callers are expected to discard it for a fresh
// standby.
func (c *Controller) DetachJournal() error {
	c.mu.Lock()
	j := c.jn
	c.jn = nil
	c.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// NewServerConn wraps an accepted connection with codec sniffing (the
// controller's own accept loops do the same) — the constructor the
// federation router uses for connections it accepts itself before
// deciding whether to serve or relay them.
func NewServerConn(raw net.Conn, timeout time.Duration) *Conn {
	return newServerConn(raw, timeout, true)
}

// JournalSeq reports the last sequence number this controller's
// journal assigned, or 0 without a journal — the head position a
// follower must reach before takeover completes.
func (c *Controller) JournalSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jn == nil {
		return 0
	}
	return c.jn.Seq()
}

// ReceiveBatch reads one wire unit and returns every message it
// carried: the whole frame on the binary codec (the unit SendBatch
// writes), a single message on JSON lines. Messages are appended to
// buf (reused across calls; pass nil to allocate). The relay
// front-end uses Receive/ReceiveBatch + SendBatch to forward a peer's
// traffic to a remote shard owner without re-framing message by
// message.
func (c *Conn) ReceiveBatch(buf []Message) ([]Message, error) {
	m, err := c.Receive()
	if err != nil {
		return buf, err
	}
	buf = append(buf[:0], m)
	for c.qpos < len(c.queue) {
		buf = append(buf, c.queue[c.qpos])
		c.qpos++
	}
	return buf, nil
}
