package protocol

// Federation-surface tests: a standby controller mirroring a live
// owner through the exported replication entry points, promotion via
// AttachJournal, and the ReceiveBatch relay primitive.

import (
	"fmt"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// TestStandbyMirrorsOwnerAndPromotes replicates a live journaled owner
// into a standby via Follower + ApplyRecord, kills the owner, promotes
// the standby with AttachJournal, and verifies (a) the domains match
// byte-for-byte at takeover, (b) the promoted controller serves writes
// that land in the same journal at the takeover epoch.
func TestStandbyMirrorsOwnerAndPromotes(t *testing.T) {
	dir := t.TempDir()
	owner, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{
			Fsync:           journal.FsyncOff,
			FlushEachAppend: true,
			Epoch:           1,
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := owner.RegisterAP(trace.APID(fmt.Sprintf("ap-%d", i)), float64(i+1)*1e6); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if _, err := owner.Associate(trace.UserID(fmt.Sprintf("u-%d", i)), 100); err != nil {
			t.Fatal(err)
		}
	}
	owner.disassociate("u-7")

	standby, err := NewController(baseline.LLF{})
	if err != nil {
		t.Fatal(err)
	}
	f := journal.NewFollower(dir, 0)
	restore := func(payload []byte, _ uint64) error { return standby.RestoreCheckpoint(payload) }
	if _, err := f.Poll(restore, standby.ApplyRecord); err != nil {
		t.Fatal(err)
	}
	if f.LastSeq() != owner.JournalSeq() {
		t.Fatalf("follower at seq %d, owner head at %d", f.LastSeq(), owner.JournalSeq())
	}
	if !reflect.DeepEqual(standby.dom.ExportState(), owner.dom.ExportState()) {
		t.Fatal("standby domain state diverges from owner")
	}
	if !reflect.DeepEqual(standby.assignments, owner.assignments) {
		t.Fatalf("standby assignments %v != owner %v", standby.assignments, owner.assignments)
	}

	// Owner dies (no Close — crash). The standby takes over at epoch 2.
	sum, err := standby.AttachJournal(dir, journal.Options{
		Fsync:           journal.FsyncOff,
		FlushEachAppend: true,
		Epoch:           2,
	}, f.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if sum.ReplayErrors != 0 {
		t.Fatalf("takeover replayed with %d errors", sum.ReplayErrors)
	}
	if _, err := standby.Associate("u-9", 200); err != nil {
		t.Fatal(err)
	}
	if err := standby.Close(); err != nil {
		t.Fatal(err)
	}

	// The shared journal now carries both writers' records, the tail at
	// epoch 2; a follower past the owner's head sees only the takeover's.
	tail := journal.NewFollower(dir, 0)
	var last journal.Record
	n := 0
	if _, err := tail.Poll(func([]byte, uint64) error { return nil }, func(r journal.Record) error {
		last = r
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if last.Epoch != 2 {
		t.Fatalf("journal tail at epoch %d, want takeover epoch 2", last.Epoch)
	}
	if last.Op != journal.OpAssoc {
		t.Fatalf("journal tail op %s, want the promoted controller's assoc", last.Op)
	}

	// Replaying the whole journal into a fresh controller reproduces the
	// promoted controller's final assignments — the oracle invariant the
	// chaos suite asserts across processes.
	oracle, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncOff}))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if oracle.assignments["u-9"] == "" {
		t.Fatal("oracle replay lost the promoted controller's assignment")
	}
}

// TestApplyRecordRefusedWhenArmed pins the owner/follower exclusivity:
// replication entry points must not run on a journal-armed controller.
func TestApplyRecordRefusedWhenArmed(t *testing.T) {
	dir := t.TempDir()
	c, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncOff}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ApplyRecord(journal.Record{Op: journal.OpRegister, AP: "ap-x", CapacityBps: 1e6}); err == nil {
		t.Fatal("ApplyRecord succeeded on a journal-armed controller")
	}
	if err := c.RestoreCheckpoint([]byte(`{}`)); err == nil {
		t.Fatal("RestoreCheckpoint succeeded on a journal-armed controller")
	}
	if _, err := c.AttachJournal(dir, journal.Options{}, 0); err == nil {
		t.Fatal("AttachJournal succeeded on a journal-armed controller")
	}
}

// TestReceiveBatchRoundtrip pins the relay primitive: SendBatch's
// single binary frame arrives as one ReceiveBatch unit, and the buffer
// is reused across calls.
func TestReceiveBatchRoundtrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	src := NewConnCodec(a, time.Second, CodecBinary)
	dst := newServerConn(b, time.Second, true)

	batch := []Message{
		{Type: MsgHello, Role: RoleAP, ID: "ap-1", CapacityBps: 1e6},
		{Type: MsgReport, AP: "ap-1", LoadBps: 5e5},
		{Type: MsgReport, AP: "ap-1", LoadBps: 6e5},
	}
	errc := make(chan error, 1)
	go func() { errc <- src.SendBatch(batch) }()
	got, err := dst.ReceiveBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sendErr := <-errc; sendErr != nil {
		t.Fatal(sendErr)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("batch round-trip: got %+v", got)
	}

	// Reuse: a second single-message frame lands in the same buffer.
	go func() { errc <- src.Send(Message{Type: MsgDisassoc, User: "u-1"}) }()
	again, err := dst.ReceiveBatch(got)
	if err != nil {
		t.Fatal(err)
	}
	if sendErr := <-errc; sendErr != nil {
		t.Fatal(sendErr)
	}
	if len(again) != 1 || again[0].Type != MsgDisassoc {
		t.Fatalf("second batch: %+v", again)
	}
}
