package protocol

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/s3wlan/s3wlan/internal/domain"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// Controller durability: with WithJournal, every domain mutation the
// controller commits — registrations, association commits (single and
// batch), disassociations and lease expiries — is appended to a
// write-ahead journal after it applies, and checkpoints capture the full
// controller state (domain associations, assignment bookkeeping, AP
// lease metadata, and the social observer's learned state when it can
// persist itself). A restarted controller pointed at the same directory
// recovers the newest valid checkpoint and replays the record tail, so
// believed loads, assignments and the θ-graph survive a crash.
//
// Served-byte counters (station traffic accounting) are advisory and
// only as fresh as the last checkpoint: traffic volume is not a domain
// mutation and is deliberately not journaled per report.
//
// With a journal, observer events are delivered synchronously inside
// the mutation's locked section, before the record is appended — a
// checkpoint triggered by record N then captures the observer at
// exactly sequence N, and replaying records > N through the observer
// reconstructs it losslessly. Without a journal, delivery stays outside
// the lock (observers may be slow; nothing needs the ordering).

var obsReplayErrs = obs.GetCounter("journal.recovery.replay_errors",
	"Recovered WAL records whose replay failed (skipped, recovery continues)")

// ObserverState is the optional persistence surface of an association
// observer. An observer implementing it (e.g. the incremental social
// engine) is checkpointed with the controller and restored before the
// journal tail is replayed through it.
type ObserverState interface {
	WriteState(w io.Writer) error
	ReadState(r io.Reader) error
}

// WithJournal enables crash-safe state: the controller recovers from the
// write-ahead journal in dir at construction and appends every domain
// mutation to it afterwards. opts.State and opts.OpenFile's default are
// controller-owned; the remaining options (fsync policy and interval,
// checkpoint cadence, logger) are the caller's.
func WithJournal(dir string, opts journal.Options) ControllerOption {
	return func(c *Controller) {
		c.journalDir = dir
		c.journalOpts = opts
	}
}

// RecoverySummary reports what a journal-enabled controller rebuilt at
// construction.
type RecoverySummary struct {
	// Stats is the journal layer's account: checkpoint used, records
	// replayed, corruption tolerated.
	Stats journal.RecoveryStats
	// APs and Assignments count the recovered registrations and user
	// assignments after replay.
	APs, Assignments int
	// ReplayErrors counts journal records that could not be re-applied
	// (e.g. an association whose AP registration was lost to a corrupt
	// frame). Each is logged and skipped.
	ReplayErrors int
}

// Recovery returns the construction-time recovery summary, or nil when
// the controller runs without a journal.
func (c *Controller) Recovery() *RecoverySummary { return c.recovered }

// checkpointMeta is one AP's serialized lease metadata. Agent
// connections are inherently not recoverable; an agent-backed AP
// restarts with its lease clock where the checkpoint left it and either
// re-hellos or expires through the normal observer path.
type checkpointMeta struct {
	Static   bool   `json:"static,omitempty"`
	LastSeen int64  `json:"last_seen,omitempty"`
	Gen      uint64 `json:"gen,omitempty"`
}

// checkpointDoc is the controller's full checkpoint payload.
type checkpointDoc struct {
	Domain      *domain.State                  `json:"domain"`
	Assignments map[trace.UserID]trace.APID    `json:"assignments,omitempty"`
	AssignedAt  map[trace.UserID]int64         `json:"assigned_at,omitempty"`
	ServedByUsr map[trace.UserID]int64         `json:"served_by_user,omitempty"`
	Served      map[trace.APID]int64           `json:"served,omitempty"`
	Meta        map[trace.APID]checkpointMeta  `json:"meta,omitempty"`
	Society     json.RawMessage                `json:"society,omitempty"`
}

// writeCheckpointLocked serializes the controller's complete state to w.
// It runs with c.mu held: the journal invokes its State callback
// synchronously from Append (called under c.mu on every mutation path)
// and from the forced checkpoint in Close (which takes c.mu first), so
// the snapshot is always consistent with the record that triggered it.
func (c *Controller) writeCheckpointLocked(w io.Writer) error {
	doc := checkpointDoc{
		Domain:      c.dom.ExportState(),
		Assignments: c.assignments,
		AssignedAt:  c.assignedAt,
		ServedByUsr: c.servedByUsr,
		Served:      c.served,
		Meta:        make(map[trace.APID]checkpointMeta, len(c.meta)),
	}
	for id, m := range c.meta {
		doc.Meta[id] = checkpointMeta{Static: m.static, LastSeen: m.lastSeen, Gen: m.gen}
	}
	if st, ok := c.observer.(ObserverState); ok {
		var buf bytes.Buffer
		if err := st.WriteState(&buf); err != nil {
			return fmt.Errorf("protocol: checkpoint observer state: %w", err)
		}
		doc.Society = buf.Bytes()
	}
	if err := json.NewEncoder(w).Encode(&doc); err != nil {
		return fmt.Errorf("protocol: encode checkpoint: %w", err)
	}
	return nil
}

// openJournal recovers from the configured journal directory and opens
// it for appending. Called once from NewController, after the domain is
// built and before any connection is accepted, so no locking is needed —
// but replay runs through the same locked helpers the live paths use.
func (c *Controller) openJournal() error {
	opts := c.journalOpts
	opts.State = c.writeCheckpointLocked
	if opts.Logger == nil {
		opts.Logger = c.logger
	}
	j, rec, err := journal.Open(c.journalDir, opts)
	if err != nil {
		return err
	}
	sum := &RecoverySummary{Stats: rec.Stats}

	if rec.Checkpoint != nil {
		if err := c.restoreCheckpoint(rec.Checkpoint); err != nil {
			j.Close()
			return err
		}
	}
	for _, r := range rec.Records {
		if err := c.applyRecord(r); err != nil {
			sum.ReplayErrors++
			obsReplayErrs.Inc()
			c.logger.Printf("journal: replay record %d (%s): %v", r.Seq, r.Op, err)
		}
	}
	sum.APs = c.dom.Size()
	sum.Assignments = len(c.assignments)
	c.recovered = sum
	// Arm appends only now: replaying must never re-journal.
	c.jn = j
	return nil
}

// restoreCheckpoint loads a checkpoint payload: domain associations,
// assignment bookkeeping, AP lease metadata, and the observer's learned
// state when both sides support it.
func (c *Controller) restoreCheckpoint(payload []byte) error {
	var doc checkpointDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return fmt.Errorf("protocol: decode checkpoint: %w", err)
	}
	if doc.Domain != nil {
		if err := c.dom.ImportState(doc.Domain); err != nil {
			return err
		}
	}
	for u, ap := range doc.Assignments {
		c.assignments[u] = ap
	}
	for u, ts := range doc.AssignedAt {
		c.assignedAt[u] = ts
	}
	for u, b := range doc.ServedByUsr {
		c.servedByUsr[u] = b
	}
	for ap, b := range doc.Served {
		c.served[ap] = b
	}
	for id, m := range doc.Meta {
		c.meta[id] = &apMeta{static: m.Static, lastSeen: m.LastSeen, gen: m.Gen}
	}
	if len(doc.Society) > 0 {
		if st, ok := c.observer.(ObserverState); ok {
			if err := st.ReadState(bytes.NewReader(doc.Society)); err != nil {
				return fmt.Errorf("protocol: restore observer state: %w", err)
			}
		}
	}
	return nil
}

// applyRecord re-applies one journaled mutation during recovery,
// mirroring the live mutation paths: domain commits, assignment
// bookkeeping, and observer Connect/Disconnect events (so a social
// engine restored from the checkpoint relearns exactly the tail).
// Session-log emission is suppressed — the pre-crash process already
// logged those sessions.
func (c *Controller) applyRecord(r journal.Record) error {
	switch r.Op {
	case journal.OpRegister:
		if m, ok := c.meta[r.AP]; ok {
			c.dom.SetCapacity(r.AP, r.CapacityBps)
			if !m.static {
				m.lastSeen = r.TS
				m.gen++
			}
			return nil
		}
		if err := c.dom.AddAP(r.AP, r.CapacityBps); err != nil {
			return err
		}
		m := &apMeta{static: r.Static}
		if !r.Static {
			m.lastSeen = r.TS
			m.gen = 1
		}
		c.meta[r.AP] = m
		return nil

	case journal.OpAssoc:
		ps := make([]domain.Placement, len(r.Placements))
		for i, p := range r.Placements {
			ps[i] = domain.Placement{User: p.User, AP: p.AP, Prev: p.Prev, DemandBps: p.DemandBps}
		}
		if _, err := c.dom.Commit(ps, nil); err != nil {
			return err
		}
		for _, p := range r.Placements {
			prev, hadPrev := c.assignments[p.User]
			refresh := hadPrev && prev == p.AP
			c.assignments[p.User] = p.AP
			if !refresh {
				// Mirror the live path: a same-AP refresh keeps the
				// session timestamp and served-byte tally continuous and
				// emits no lifecycle events.
				c.assignedAt[p.User] = r.TS
				c.servedByUsr[p.User] = 0
			}
			if c.observer != nil && !refresh {
				if hadPrev {
					if err := c.observer.Disconnect(p.User, prev, r.TS); err != nil {
						c.logger.Printf("journal: replay observer disconnect %s: %v", p.User, err)
					}
				}
				c.observer.Connect(p.User, p.AP, r.TS)
			}
		}
		return nil

	case journal.OpDisassoc:
		ap, ok := c.assignments[r.User]
		if !ok {
			return fmt.Errorf("protocol: disassoc replay for unassigned user %q", r.User)
		}
		delete(c.assignments, r.User)
		delete(c.assignedAt, r.User)
		delete(c.servedByUsr, r.User)
		c.dom.LeaveAll(r.User, ap)
		if c.observer != nil {
			if err := c.observer.Disconnect(r.User, ap, r.TS); err != nil {
				c.logger.Printf("journal: replay observer disconnect %s: %v", r.User, err)
			}
		}
		return nil

	case journal.OpLeave:
		if !c.dom.Leave(r.User, r.AP, r.DemandBps) {
			return fmt.Errorf("protocol: leave replay for %q on %q failed", r.User, r.AP)
		}
		return nil

	case journal.OpExpire:
		if _, ok := c.meta[r.AP]; !ok {
			return fmt.Errorf("protocol: expire replay for unknown AP %q", r.AP)
		}
		evicted, _ := c.dom.RemoveAP(r.AP)
		delete(c.meta, r.AP)
		sort.Slice(evicted, func(i, j int) bool { return evicted[i].User < evicted[j].User })
		for _, ev := range evicted {
			delete(c.assignments, ev.User)
			delete(c.assignedAt, ev.User)
			delete(c.servedByUsr, ev.User)
			if c.observer != nil {
				if err := c.observer.Disconnect(ev.User, r.AP, r.TS); err != nil {
					c.logger.Printf("journal: replay observer disconnect %s: %v", ev.User, err)
				}
			}
		}
		return nil
	}
	return fmt.Errorf("protocol: unknown journal op %q", r.Op)
}

// journalAppendLocked appends one record if journaling is enabled. Runs
// with c.mu held, after the mutation it describes has applied. An append
// failure is logged and counted (journal.append_errors) but does not
// fail the client operation: this prototype prefers availability, and a
// recovered state that is missing tail records is exactly what recovery
// is specified to tolerate.
func (c *Controller) journalAppendLocked(rec journal.Record) {
	if c.jn == nil {
		return
	}
	if err := c.jn.Append(rec); err != nil {
		c.logger.Printf("journal: %v", err)
	}
}

// closeJournal checkpoints (graceful shutdown makes restart instant) and
// closes the journal. Runs without c.mu held.
func (c *Controller) closeJournal() error {
	c.mu.Lock()
	j := c.jn
	c.jn = nil
	var err error
	if j != nil {
		err = j.Checkpoint() // State callback runs under c.mu, as always
	}
	c.mu.Unlock()
	if j != nil {
		if cerr := j.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
