package protocol

// Controller durability tests: crash-recovery roundtrips, checkpoint
// restore including the social observer's learned state, a byte-level
// crash-point sweep at the controller layer, and replay-error tolerance.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/society/incremental"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// TestJournalCrashRecoveryRoundtrip drives a journaled controller
// through registrations, associations, a move and a disassociation,
// crashes it (no Close — with FsyncAlways every acknowledged mutation
// is already durable), and verifies a second controller on the same
// directory rebuilds the identical domain. A third, gracefully
// restarted controller must come back from the shutdown checkpoint
// with nothing to replay.
func TestJournalCrashRecoveryRoundtrip(t *testing.T) {
	dir := t.TempDir()
	a, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.RegisterAP(trace.APID(fmt.Sprintf("ap-%d", i)), float64(i+1)*1e6); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := a.Associate(trace.UserID(fmt.Sprintf("u-%d", i)), 100); err != nil {
			t.Fatal(err)
		}
	}
	a.disassociate("u-4")
	a.disassociate("u-5")
	if _, err := a.Associate("u-0", 300); err != nil { // a move (or a demand change)
		t.Fatal(err)
	}
	want := a.dom.ExportState()
	wantSnap := a.Snapshot()
	// Crash: controller a is abandoned without Close. Its journal file
	// handle leaks until the test process exits; that is the point.

	b, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	rec := b.Recovery()
	if rec == nil {
		t.Fatal("journaled controller reports no recovery summary")
	}
	if rec.Stats.CheckpointSeq != 0 || rec.Stats.RecordsReplayed == 0 {
		t.Fatalf("crash recovery should be pure replay: %+v", rec.Stats)
	}
	if rec.ReplayErrors != 0 || rec.APs != 3 || rec.Assignments != 4 {
		t.Fatalf("recovery summary = %+v, want 3 APs, 4 assignments, no errors", rec)
	}
	if !reflect.DeepEqual(b.dom.ExportState(), want) {
		t.Fatalf("recovered domain diverged\nwant %+v\ngot  %+v", want, b.dom.ExportState())
	}
	if !reflect.DeepEqual(b.Snapshot(), wantSnap) {
		t.Fatalf("recovered snapshot diverged\nwant %+v\ngot  %+v", wantSnap, b.Snapshot())
	}
	// The recovered controller must keep journaling new mutations.
	if _, err := b.Associate("u-7", 50); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil { // graceful: final checkpoint
		t.Fatal(err)
	}

	c, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec = c.Recovery()
	if rec.Stats.CheckpointSeq == 0 || rec.Stats.RecordsReplayed != 0 {
		t.Fatalf("graceful restart should be pure checkpoint: %+v", rec.Stats)
	}
	if rec.APs != 3 || rec.Assignments != 5 || rec.ReplayErrors != 0 {
		t.Fatalf("post-graceful recovery = %+v, want 3 APs, 5 assignments", rec)
	}
}

// engineSnapshotsMatch compares the published social state of two
// incremental engines layer by layer.
func engineSnapshotsMatch(t *testing.T, tag string, a, b *incremental.Snapshot) {
	t.Helper()
	if !reflect.DeepEqual(a.Model().PairProb, b.Model().PairProb) {
		t.Fatalf("%s: pair probabilities diverged:\na: %v\nb: %v",
			tag, a.Model().PairProb, b.Model().PairProb)
	}
	ag, bg := a.Graph(), b.Graph()
	if ag.NumVertices() != bg.NumVertices() || ag.NumEdges() != bg.NumEdges() {
		t.Fatalf("%s: graph %d/%d vertices, %d/%d edges",
			tag, ag.NumVertices(), bg.NumVertices(), ag.NumEdges(), bg.NumEdges())
	}
	ag.ForEachEdge(func(u, v trace.UserID, w float64) {
		if bw, ok := bg.Weight(u, v); !ok || bw != w {
			t.Fatalf("%s: edge %s—%s = %v (present %v), want %v", tag, u, v, bw, ok, w)
		}
	})
	if !reflect.DeepEqual(a.Cover(), b.Cover()) {
		t.Fatalf("%s: covers diverged: %v vs %v", tag, a.Cover(), b.Cover())
	}
}

func observerEngineConfig() incremental.Config {
	cfg := incremental.DefaultConfig()
	cfg.RefreshEvents = 0
	cfg.Society.MinEncounters = 1
	cfg.Society.MinEncounterSeconds = 30
	cfg.Society.CoLeaveWindowSeconds = 150
	return cfg
}

// TestJournalCheckpointRestoresObserverState crashes a controller whose
// observer is the incremental social engine, mid-way between
// checkpoints, and verifies the restarted controller's engine publishes
// the identical social state: the checkpoint restored the learner and
// the replayed journal tail re-taught it the rest.
func TestJournalCheckpointRestoresObserverState(t *testing.T) {
	dir := t.TempDir()
	var clk atomic.Int64
	now := func() int64 { return clk.Add(50) }

	engA := incremental.New(observerEngineConfig())
	a, err := NewController(baseline.LLF{},
		WithObserver(engA),
		WithClock(now),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways, CheckpointEvery: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterAP("ap-1", 1e6); err != nil {
		t.Fatal(err)
	}
	// Two overlapping presences that co-leave, twice over — enough for a
	// real θ edge — plus tail events past the last checkpoint boundary.
	for round := 0; round < 2; round++ {
		for _, u := range []trace.UserID{"amy", "ben"} {
			if _, err := a.Associate(u, 100); err != nil {
				t.Fatal(err)
			}
		}
		a.disassociate("amy")
		a.disassociate("ben")
	}
	if _, err := a.Associate("amy", 100); err != nil {
		t.Fatal(err)
	}
	engA.Refresh()
	snapA := engA.Snapshot()
	if len(snapA.Model().PairProb) == 0 {
		t.Fatal("test vacuous: engine learned no pair statistics")
	}
	// Crash without Close: recovery must cross a checkpoint + tail.

	engB := incremental.New(observerEngineConfig())
	b, err := NewController(baseline.LLF{},
		WithObserver(engB),
		WithClock(now),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways, CheckpointEvery: 4}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := b.Recovery()
	if rec.Stats.CheckpointSeq == 0 || rec.Stats.RecordsReplayed == 0 {
		t.Fatalf("want checkpoint + tail replay, got %+v", rec.Stats)
	}
	engB.Refresh()
	engineSnapshotsMatch(t, "post-crash", snapA, engB.Snapshot())

	// Both engines see the same future → stay identical (the learner's
	// mid-presence state round-tripped through checkpoint + replay).
	ts := clk.Load()
	for _, eng := range []*incremental.Engine{engA, engB} {
		eng.Connect("cat", "ap-1", ts+10)
		if err := eng.Disconnect("amy", "ap-1", ts+60); err != nil {
			t.Fatal(err)
		}
		eng.Refresh()
	}
	engineSnapshotsMatch(t, "post-crash future", engA.Snapshot(), engB.Snapshot())
}

// TestControllerCrashPointSweep is the end-to-end durability property:
// truncate the journal of a crashed controller at EVERY byte offset and
// verify the restarted controller reconstructs exactly the mutations
// whose records survived whole — no error, no spurious state, for any
// cut.
func TestControllerCrashPointSweep(t *testing.T) {
	dir := t.TempDir()
	a, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := a.RegisterAP(trace.APID(fmt.Sprintf("ap-%d", i)), 1e6); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := a.Associate(trace.UserID(fmt.Sprintf("u-%d", i)), 100); err != nil {
			t.Fatal(err)
		}
	}
	a.disassociate("u-1")
	if _, err := a.Associate("u-2", 250); err != nil {
		t.Fatal(err)
	}
	// Crash. Read back the single segment the run produced.
	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v; want exactly one", segs, err)
	}
	full, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	payloads, corrupt, torn := journal.DecodeFrames(full)
	if corrupt != 0 || torn {
		t.Fatalf("clean journal decodes dirty: corrupt=%d torn=%v", corrupt, torn)
	}
	records := make([]journal.Record, len(payloads))
	frameEnd := make([]int, len(payloads)+1)
	for i, p := range payloads {
		if err := json.Unmarshal(p, &records[i]); err != nil {
			t.Fatal(err)
		}
		frameEnd[i+1] = frameEnd[i] + 12 + len(p)
	}

	for cut := 0; cut <= len(full); cut++ {
		committed := 0
		for committed < len(records) && frameEnd[committed+1] <= cut {
			committed++
		}
		// Reference state machine over the committed prefix.
		wantAPs := make(map[trace.APID]bool)
		wantAssign := make(map[trace.UserID]trace.APID)
		for _, r := range records[:committed] {
			switch r.Op {
			case journal.OpRegister:
				wantAPs[r.AP] = true
			case journal.OpAssoc:
				for _, p := range r.Placements {
					wantAssign[p.User] = p.AP
				}
			case journal.OpDisassoc:
				delete(wantAssign, r.User)
			}
		}

		cutDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cutDir, filepath.Base(segs[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := NewController(baseline.LLF{},
			WithJournal(cutDir, journal.Options{Fsync: journal.FsyncAlways}))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		rec := b.Recovery()
		if rec.ReplayErrors != 0 || rec.Stats.CorruptSkipped != 0 {
			t.Fatalf("cut %d: replay errors %d, corrupt %d on a pure truncation",
				cut, rec.ReplayErrors, rec.Stats.CorruptSkipped)
		}
		if rec.APs != len(wantAPs) || rec.Assignments != len(wantAssign) {
			t.Fatalf("cut %d: recovered %d APs / %d assignments, want %d / %d",
				cut, rec.APs, rec.Assignments, len(wantAPs), len(wantAssign))
		}
		snap := b.Snapshot()
		for ap := range wantAPs {
			if _, ok := snap[ap]; !ok {
				t.Fatalf("cut %d: AP %s missing from recovered snapshot", cut, ap)
			}
		}
		for u, ap := range wantAssign {
			found := false
			for _, su := range snap[ap].Users {
				if su == u {
					found = true
				}
			}
			if !found {
				t.Fatalf("cut %d: user %s not on AP %s: %+v", cut, u, ap, snap)
			}
		}
		if err := b.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestJournalReplayErrorTolerance hand-crafts a journal whose tail
// references state that never existed (as if the establishing records
// were lost to corruption) and verifies recovery skips and counts those
// records instead of refusing to start.
func TestJournalReplayErrorTolerance(t *testing.T) {
	dir := t.TempDir()
	j, _, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []journal.Record{
		{Op: journal.OpRegister, AP: "ap-1", CapacityBps: 1e6, Static: true},
		{Op: journal.OpAssoc, Placements: []journal.Placement{{User: "u-1", AP: "ap-1", DemandBps: 10}}},
		{Op: journal.OpAssoc, Placements: []journal.Placement{{User: "u-2", AP: "ap-ghost", DemandBps: 10}}},
		{Op: journal.OpDisassoc, User: "u-ghost", AP: "ap-1"},
	} {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rec := c.Recovery()
	if rec.ReplayErrors != 2 {
		t.Fatalf("replay errors = %d, want 2 (ghost AP, ghost user)", rec.ReplayErrors)
	}
	if rec.APs != 1 || rec.Assignments != 1 {
		t.Fatalf("recovery = %+v, want the one valid AP and assignment", rec)
	}
	if _, err := c.Associate("u-3", 10); err != nil {
		t.Fatalf("controller not functional after tolerant recovery: %v", err)
	}
}
