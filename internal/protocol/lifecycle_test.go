package protocol

// Controller lifecycle tests: AP leases and reconnection, session-log
// completeness across re-association, traffic crediting, accept-loop
// recovery, lock-free selection overlap, and a fault-injected race soak.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/protocol/faultconn"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// recordingObserver captures lifecycle events for assertions.
type recordingObserver struct {
	mu          sync.Mutex
	connects    []trace.UserID
	disconnects map[trace.UserID]trace.APID
}

func newRecordingObserver() *recordingObserver {
	return &recordingObserver{disconnects: make(map[trace.UserID]trace.APID)}
}

func (r *recordingObserver) Connect(u trace.UserID, ap trace.APID, ts int64) {
	r.mu.Lock()
	r.connects = append(r.connects, u)
	r.mu.Unlock()
}

func (r *recordingObserver) Disconnect(u trace.UserID, ap trace.APID, ts int64) error {
	r.mu.Lock()
	r.disconnects[u] = ap
	r.mu.Unlock()
	return nil
}

func (r *recordingObserver) disconnectedFrom(u trace.UserID) (trace.APID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ap, ok := r.disconnects[u]
	return ap, ok
}

// TestAPAgentReconnectRenewsRegistration kills the agent's transport and
// verifies the next Report transparently redials, re-hellos, and lands as
// a renewed registration instead of "already registered".
func TestAPAgentReconnectRenewsRegistration(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})

	var mu sync.Mutex
	var raws []net.Conn
	rc := DefaultReconnectConfig()
	rc.BaseDelay = 5 * time.Millisecond
	rc.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
		raw, err := net.DialTimeout("tcp", addr, timeout)
		if err == nil {
			mu.Lock()
			raws = append(raws, raw)
			mu.Unlock()
		}
		return raw, err
	}
	agent, err := DialAPReconnecting(addr, "ap1", 1e6, testTimeout, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if err := agent.Report(100); err != nil {
		t.Fatal(err)
	}

	// Kill the transport out from under the agent.
	mu.Lock()
	raws[0].Close()
	mu.Unlock()

	// The next report must ride a fresh, renewed registration.
	if err := agent.Report(4321); err != nil {
		t.Fatalf("report after kill should reconnect, got %v", err)
	}
	if agent.Reconnects() != 1 {
		t.Errorf("reconnects = %d, want 1", agent.Reconnects())
	}
	deadline := time.Now().Add(testTimeout)
	for {
		snap := c.Snapshot()
		if st, ok := snap["ap1"]; ok && st.ReportedBps == 4321 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-reconnect report not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := len(c.Snapshot()); n != 1 {
		t.Errorf("APs registered = %d, want 1 (renewal, not duplicate)", n)
	}
}

// TestLeaseExpiryRemovesSilentAP advances a fake clock past the lease of
// a silent agent-registered AP and verifies the AP leaves the policy's
// view, its believed user is re-homed through the observer, and the
// completed session is logged.
func TestLeaseExpiryRemovesSilentAP(t *testing.T) {
	var fake atomic.Int64
	fake.Store(100)
	obsRec := newRecordingObserver()
	var logBuf syncBuffer
	c, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithLease(10),
		WithClock(fake.Load),
		WithObserver(obsRec),
		WithSessionLog(&logBuf),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	agent, err := DialAP(addr, "ap1", 1e6, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	st, err := DialStation(addr, "mobile-user", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if ap, err := st.Associate(100); err != nil || ap != "ap1" {
		t.Fatalf("associate = %q, %v", ap, err)
	}
	if err := st.SendTraffic(2048); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for c.Snapshot()["ap1"].ServedBytes != 2048 {
		if time.Now().After(deadline) {
			t.Fatalf("traffic not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The agent goes silent; time passes beyond the lease.
	fake.Store(200)
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("expired AP still visible: %+v", snap)
	}
	if _, err := c.Associate("another-user", 10); err == nil {
		t.Error("associate with only an expired AP should fail")
	}
	if ap, ok := obsRec.disconnectedFrom("mobile-user"); !ok || ap != "ap1" {
		t.Errorf("observer disconnect = %q, %v; want ap1 re-homing", ap, ok)
	}
	tr, err := trace.ReadJSONLines(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(tr.Sessions))
	}
	s := tr.Sessions[0]
	if s.User != "mobile-user" || s.AP != "ap1" || s.Bytes != 2048 ||
		s.ConnectAt != 100 || s.DisconnectAt != 200 {
		t.Errorf("expiry session = %+v", s)
	}
}

// TestLeaseExpiredWhileDownRehomesOnRestart covers the recovery edge
// the journal must get right: an agent-backed AP's lease runs out while
// the controller is down. The restarted controller restores the AP and
// its believed user from the journal, then the first sweep notices the
// stale lease and re-homes the user through the observer — exactly as a
// live expiry would — and logs the completed session with the connect
// time restored from the checkpoint.
func TestLeaseExpiredWhileDownRehomesOnRestart(t *testing.T) {
	dir := t.TempDir()
	var fake atomic.Int64
	fake.Store(100)
	a, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithLease(10),
		WithClock(fake.Load),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := DialAP(addr, "ap1", 1e6, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	st, err := DialStation(addr, "mobile-user", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ap, err := st.Associate(100); err != nil || ap != "ap1" {
		t.Fatalf("associate = %q, %v", ap, err)
	}
	// Crash: controller a is abandoned with both connections still up —
	// a graceful close would disassociate the station. With FsyncAlways
	// the registration (lastSeen=100) and association are already
	// durable. The agent never comes back; the lease lapses while the
	// controller is down.
	_, _ = agent, st
	fake.Store(200)

	obsRec := newRecordingObserver()
	var logBuf syncBuffer
	b, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithLease(10),
		WithClock(fake.Load),
		WithObserver(obsRec),
		WithSessionLog(&logBuf),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := b.Recovery()
	if rec == nil || rec.APs != 1 || rec.Assignments != 1 || rec.ReplayErrors != 0 {
		t.Fatalf("recovery = %+v, want the AP and its user restored", rec)
	}

	// The first sweep must expire the AP and re-home the user.
	if snap := b.Snapshot(); len(snap) != 0 {
		t.Fatalf("expired AP survived the restart sweep: %+v", snap)
	}
	if ap, ok := obsRec.disconnectedFrom("mobile-user"); !ok || ap != "ap1" {
		t.Errorf("observer disconnect = %q, %v; want ap1 re-homing", ap, ok)
	}
	tr, err := trace.ReadJSONLines(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(tr.Sessions))
	}
	if s := tr.Sessions[0]; s.User != "mobile-user" || s.AP != "ap1" ||
		s.ConnectAt != 100 || s.DisconnectAt != 200 {
		t.Errorf("expiry session = %+v, want connect 100 / disconnect 200", s)
	}
}

// TestReassociationLogsBothSessions moves a station between APs and
// verifies the session completed by the move is logged with the same
// shape as an explicit disassociation — every completed association
// leaves a record.
func TestReassociationLogsBothSessions(t *testing.T) {
	var fakeMu sync.Mutex
	var fake int64
	var logBuf syncBuffer
	c, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithSessionLog(&logBuf),
		WithClock(func() int64 {
			fakeMu.Lock()
			defer fakeMu.Unlock()
			fake += 50
			return fake
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAP("ap2", 0); err != nil {
		t.Fatal(err)
	}

	st, err := DialStation(addr, "mover", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	first, err := st.Associate(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SendTraffic(100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for c.Snapshot()[first].ServedBytes != 100 {
		if time.Now().After(deadline) {
			t.Fatalf("traffic not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// LLF sends the re-association to the other, now-lighter AP.
	second, err := st.Associate(100)
	if err != nil {
		t.Fatal(err)
	}
	if second == first {
		t.Fatalf("expected a move, stayed on %s", first)
	}
	if err := st.Disassociate(); err != nil {
		t.Fatal(err)
	}

	for {
		tr, err := trace.ReadJSONLines(strings.NewReader(logBuf.String()))
		if err == nil && len(tr.Sessions) == 2 {
			s0, s1 := tr.Sessions[0], tr.Sessions[1]
			if s0.User != "mover" || s0.AP != first || s0.Bytes != 100 {
				t.Errorf("move session = %+v, want AP %s with 100 bytes", s0, first)
			}
			if s0.DisconnectAt <= s0.ConnectAt {
				t.Errorf("move session times = %d..%d", s0.ConnectAt, s0.DisconnectAt)
			}
			if s1.User != "mover" || s1.AP != second {
				t.Errorf("final session = %+v, want AP %s", s1, second)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want 2 logged sessions, log = %q", logBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTrafficCreditedToAssignedAP sends a traffic frame claiming a bogus
// AP and verifies the bytes land on the controller's recorded
// assignment; traffic from an unassociated user is rejected.
func TestTrafficCreditedToAssignedAP(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConn(raw, testTimeout)
	if err := conn.Send(Message{Type: MsgHello, Role: RoleStation, ID: "u1"}); err != nil {
		t.Fatal(err)
	}
	if reply, err := conn.Receive(); err != nil || reply.Type != MsgHelloOK {
		t.Fatalf("hello reply = %+v, %v", reply, err)
	}
	if err := conn.Send(Message{Type: MsgAssoc, User: "u1", DemandBps: 10}); err != nil {
		t.Fatal(err)
	}
	if reply, err := conn.Receive(); err != nil || reply.Type != MsgAssign || reply.AP != "ap1" {
		t.Fatalf("assign reply = %+v, %v", reply, err)
	}
	// Claim the bytes were served elsewhere.
	if err := conn.Send(Message{Type: MsgTraffic, AP: "ap-bogus", Bytes: 500}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for c.Snapshot()["ap1"].ServedBytes != 500 {
		if time.Now().After(deadline) {
			t.Fatalf("traffic not credited to recorded assignment: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A user with no assignment cannot credit traffic anywhere.
	before := obsTrafficRejected.Value()
	raw2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw2.Close()
	conn2 := NewConn(raw2, testTimeout)
	if err := conn2.Send(Message{Type: MsgHello, Role: RoleStation, ID: "u2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Receive(); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Send(Message{Type: MsgTraffic, AP: "ap1", Bytes: 999}); err != nil {
		t.Fatal(err)
	}
	for obsTrafficRejected.Value() < before+1 {
		if time.Now().After(deadline) {
			t.Fatal("unassociated traffic not rejected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Snapshot()["ap1"].ServedBytes; got != 500 {
		t.Errorf("served = %d after rejected traffic, want 500", got)
	}
}

// TestAcceptLoopSurvivesTransientErrors serves through a listener that
// fails its first accepts and verifies the controller retries instead of
// abandoning the listener.
func TestAcceptLoopSurvivesTransientErrors(t *testing.T) {
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	before := obsAcceptRetries.Value()
	addr := c.Serve(&faultconn.FlakyListener{Listener: ln, FailFirst: 3})
	t.Cleanup(func() { c.Close() })
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}

	// The dial only completes once the accept loop has ridden out the
	// transient errors.
	st, err := DialStation(addr, "u", testTimeout)
	if err != nil {
		t.Fatalf("dial through transient accept errors: %v", err)
	}
	defer st.Close()
	if _, err := st.Associate(10); err != nil {
		t.Fatal(err)
	}
	if got := obsAcceptRetries.Value(); got < before+3 {
		t.Errorf("accept retries = %d, want >= %d", got-before, 3)
	}
}

// overlapSelector blocks briefly inside Select and tracks the maximum
// number of concurrent invocations — proof the controller no longer
// serializes selection under its mutex.
type overlapSelector struct {
	cur, max atomic.Int64
}

func (s *overlapSelector) Name() string { return "overlap" }

func (s *overlapSelector) Select(req wlan.Request, aps []wlan.APView) (trace.APID, error) {
	n := s.cur.Add(1)
	for {
		m := s.max.Load()
		if n <= m || s.max.CompareAndSwap(m, n) {
			break
		}
	}
	time.Sleep(2 * time.Millisecond)
	s.cur.Add(-1)
	return aps[0].ID, nil
}

// TestConcurrentSelectionOverlaps runs a 100-station concurrent soak and
// asserts selector.Select invocations overlap while the final state
// stays consistent (every user assigned exactly once).
func TestConcurrentSelectionOverlaps(t *testing.T) {
	sel := &overlapSelector{}
	c, err := NewController(sel, WithTimeout(testTimeout))
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range []trace.APID{"ap1", "ap2", "ap3"} {
		if err := c.RegisterAP(ap, 0); err != nil {
			t.Fatal(err)
		}
	}

	const stations = 100
	retriesBefore := obsSelectRetries.Value()
	var wg sync.WaitGroup
	errs := make(chan error, stations)
	for i := 0; i < stations; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Associate(trace.UserID(fmt.Sprintf("user-%03d", i)), 100); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := sel.max.Load(); got < 2 {
		t.Errorf("max concurrent Select = %d, want >= 2 (selection still serialized?)", got)
	}
	// Overlapping selections commit against each other, so some must
	// observe a stale version and re-run through the retry path.
	if got := obsSelectRetries.Value(); got <= retriesBefore {
		t.Error("no selection retries under contention: versioned check-and-retry not exercised")
	}
	total := 0
	for _, st := range c.Snapshot() {
		total += len(st.Users)
	}
	if total != stations {
		t.Errorf("assigned users = %d, want %d", total, stations)
	}
}

// TestChaosSoakRace drives concurrent agents and stations through a
// fault-injecting listener for a while — reconnects, torn frames,
// dropped reports, churned associations — and verifies the controller
// neither races (run with -race) nor wedges.
func TestChaosSoakRace(t *testing.T) {
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 400 * time.Millisecond
	}
	const timeout = 2 * time.Second
	c, err := NewController(baseline.LLF{}, WithTimeout(timeout), WithLease(30))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := c.Serve(&faultconn.Listener{
		Listener: ln,
		Config: faultconn.Config{
			Seed:             42,
			DropWriteProb:    0.02,
			PartialWriteProb: 0.02,
			ReadErrProb:      0.02,
			DelayProb:        0.05,
			MaxDelay:         time.Millisecond,
			CloseAfterReads:  40,
		},
	})
	t.Cleanup(func() { c.Close() })
	// One static AP guarantees associations have a target even while
	// every agent connection happens to be down.
	if err := c.RegisterAP("ap-static", 0); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rc := DefaultReconnectConfig()
			rc.MaxAttempts = 100
			rc.BaseDelay = 2 * time.Millisecond
			rc.MaxDelay = 20 * time.Millisecond
			rc.Seed = int64(i)
			agent, err := DialAPReconnecting(addr, trace.APID(fmt.Sprintf("ap-%d", i)), 1e6, timeout, rc)
			if err != nil {
				return
			}
			defer agent.Close()
			for time.Now().Before(deadline) {
				_ = agent.Report(float64(i) * 1e5)
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := trace.UserID(fmt.Sprintf("churn-%02d", i))
			for time.Now().Before(deadline) {
				st, err := DialStation(addr, user, timeout)
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				for time.Now().Before(deadline) {
					if _, err := st.Associate(100); err != nil {
						break
					}
					if err := st.SendTraffic(4096); err != nil {
						break
					}
					if i%2 == 0 {
						if err := st.Disassociate(); err != nil {
							break
						}
					}
					time.Sleep(5 * time.Millisecond)
				}
				st.Close()
			}
		}(i)
	}
	wg.Wait()

	// The controller must still be responsive after the soak.
	if err := c.RegisterAP("ap-post", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Associate("post-soak-user", 10); err != nil {
		t.Fatalf("controller wedged after soak: %v", err)
	}
}
