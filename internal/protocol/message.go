package protocol

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// MsgType enumerates wire message types.
type MsgType string

// Wire message types.
const (
	// MsgHello registers a peer (AP agent or station) after connecting.
	MsgHello MsgType = "hello"
	// MsgHelloOK acknowledges registration.
	MsgHelloOK MsgType = "hello_ok"
	// MsgReport carries an AP agent's periodic load report.
	MsgReport MsgType = "report"
	// MsgAssoc is a station's association request.
	MsgAssoc MsgType = "assoc"
	// MsgAssign is the controller's association decision.
	MsgAssign MsgType = "assign"
	// MsgTraffic is a station's served-traffic notification.
	MsgTraffic MsgType = "traffic"
	// MsgDisassoc is a station's departure notification.
	MsgDisassoc MsgType = "disassoc"
	// MsgError reports a protocol or policy failure.
	MsgError MsgType = "error"
)

// Role identifies the peer kind in a hello.
type Role string

// Peer roles.
const (
	RoleAP      Role = "ap"
	RoleStation Role = "station"
)

// Message is the single wire frame. Fields are used depending on Type;
// unused fields are omitted from the encoding.
type Message struct {
	Type MsgType `json:"type"`
	// Role and ID identify the peer in a hello.
	Role Role   `json:"role,omitempty"`
	ID   string `json:"id,omitempty"`
	// CapacityBps is the AP's bandwidth in a hello (role=ap).
	CapacityBps float64 `json:"capacity_bps,omitempty"`
	// LoadBps is the measured load in a report.
	LoadBps float64 `json:"load_bps,omitempty"`
	// User and DemandBps describe an association request.
	User      string  `json:"user,omitempty"`
	DemandBps float64 `json:"demand_bps,omitempty"`
	// AP is the assigned AP in an assign, or the reporting AP.
	AP string `json:"ap,omitempty"`
	// Bytes is the served volume in a traffic message.
	Bytes int64 `json:"bytes,omitempty"`
	// Error carries the failure description in an error message.
	Error string `json:"error,omitempty"`
}

// Conn wraps a net.Conn with JSON-lines framing and I/O deadlines.
type Conn struct {
	raw     net.Conn
	enc     *json.Encoder
	scanner *bufio.Scanner
	timeout time.Duration
}

// NewConn wraps raw. timeout bounds each read/write (0 = no deadline).
func NewConn(raw net.Conn, timeout time.Duration) *Conn {
	sc := bufio.NewScanner(raw)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Conn{
		raw:     raw,
		enc:     json.NewEncoder(raw),
		scanner: sc,
		timeout: timeout,
	}
}

// Send writes one message.
func (c *Conn) Send(m Message) error {
	if c.timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("protocol: set write deadline: %w", err)
		}
	}
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("protocol: send %s: %w", m.Type, err)
	}
	return nil
}

// Receive reads one message. io.EOF is returned verbatim on clean close.
func (c *Conn) Receive() (Message, error) {
	if c.timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return Message{}, fmt.Errorf("protocol: set read deadline: %w", err)
		}
	}
	if !c.scanner.Scan() {
		if err := c.scanner.Err(); err != nil {
			return Message{}, fmt.Errorf("protocol: receive: %w", err)
		}
		return Message{}, io.EOF
	}
	var m Message
	if err := json.Unmarshal(c.scanner.Bytes(), &m); err != nil {
		return Message{}, fmt.Errorf("protocol: decode: %w", err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("protocol: message without type")
	}
	return m, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }
