package protocol

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"github.com/s3wlan/s3wlan/internal/journal"
)

// MsgType enumerates wire message types.
type MsgType string

// Wire message types.
const (
	// MsgHello registers a peer (AP agent or station) after connecting.
	// An AP agent may send further hellos on the same connection to
	// register additional APs it fronts (an AP group).
	MsgHello MsgType = "hello"
	// MsgHelloOK acknowledges registration.
	MsgHelloOK MsgType = "hello_ok"
	// MsgReport carries an AP agent's periodic load report. On a group
	// connection the AP field names which registered AP it concerns.
	MsgReport MsgType = "report"
	// MsgAssoc is a station's association request.
	MsgAssoc MsgType = "assoc"
	// MsgAssign is the controller's association decision.
	MsgAssign MsgType = "assign"
	// MsgTraffic is a station's served-traffic notification.
	MsgTraffic MsgType = "traffic"
	// MsgDisassoc is a station's departure notification.
	MsgDisassoc MsgType = "disassoc"
	// MsgError reports a protocol or policy failure.
	MsgError MsgType = "error"
	// MsgBusy is the controller's explicit shed signal: the peer was
	// refused for capacity (connection cap, association rate limit, or an
	// open federation circuit breaker), not for a protocol error.
	// RetryAfterMs advises when to try again. Shedding is never silent —
	// a refused peer always gets one of these before close.
	MsgBusy MsgType = "busy"
)

// Role identifies the peer kind in a hello.
type Role string

// Peer roles.
const (
	RoleAP      Role = "ap"
	RoleStation Role = "station"
)

// Message is the single wire message. Fields are used depending on Type;
// unused fields are omitted from both encodings.
type Message struct {
	Type MsgType `json:"type"`
	// Role and ID identify the peer in a hello.
	Role Role   `json:"role,omitempty"`
	ID   string `json:"id,omitempty"`
	// CapacityBps is the AP's bandwidth in a hello (role=ap).
	CapacityBps float64 `json:"capacity_bps,omitempty"`
	// LoadBps is the measured load in a report.
	LoadBps float64 `json:"load_bps,omitempty"`
	// User and DemandBps describe an association request.
	User      string  `json:"user,omitempty"`
	DemandBps float64 `json:"demand_bps,omitempty"`
	// AP is the assigned AP in an assign, or the reporting AP.
	AP string `json:"ap,omitempty"`
	// Bytes is the served volume in a traffic message.
	Bytes int64 `json:"bytes,omitempty"`
	// Error carries the failure description in an error message.
	Error string `json:"error,omitempty"`
	// RetryAfterMs advises a shed peer (MsgBusy) when to retry.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// connMode selects how a Conn resolves its codec.
type connMode int

const (
	// modeClient speaks the codec it was constructed with.
	modeClient connMode = iota
	// modeServerSniff detects the peer's codec from the first byte: a
	// binary frame always starts with 0xF5 (non-ASCII, impossible as the
	// first byte of a JSON document).
	modeServerSniff
	// modeServerJSON is a JSON-only server port (-json-port): a binary
	// first byte is rejected with a clear error instead of a JSON parse
	// failure.
	modeServerJSON
)

// Conn wraps a net.Conn with message framing and I/O deadlines. It
// speaks one of two codecs: line-delimited JSON (debugging, backward
// compatibility) or the framed binary codec (the data-plane default;
// see codec.go). Server-side conns sniff the codec from the peer's
// first byte; client conns choose at dial time. Read and write buffers
// and the binary encode scratch live on the Conn and are reused across
// messages, so a steady-state send or receive performs no allocation
// beyond the decoded strings themselves.
type Conn struct {
	raw     net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	enc     *json.Encoder
	timeout time.Duration

	codec Codec
	mode  connMode

	queue   []Message // decoded messages of the current binary frame
	qpos    int       // next undelivered index into queue
	scratch []byte    // binary payload scratch
	out     []byte    // framed output scratch
	lineBuf []byte    // JSON line scratch
	hdr     [journal.FrameHeaderLen]byte
}

// NewConn wraps raw as a JSON-lines client connection. timeout bounds
// each read/write (0 = no deadline). Kept for backward compatibility;
// NewConnCodec selects the codec explicitly.
func NewConn(raw net.Conn, timeout time.Duration) *Conn {
	return NewConnCodec(raw, timeout, CodecJSON)
}

// NewConnCodec wraps raw as a client connection speaking codec.
func NewConnCodec(raw net.Conn, timeout time.Duration, codec Codec) *Conn {
	return newConn(raw, timeout, codec, modeClient)
}

// newServerConn wraps an accepted connection. With allowBinary the codec
// is sniffed from the first byte; otherwise the port is JSON-only.
func newServerConn(raw net.Conn, timeout time.Duration, allowBinary bool) *Conn {
	if allowBinary {
		return newConn(raw, timeout, CodecJSON, modeServerSniff)
	}
	obsConnsJSON.Inc()
	return newConn(raw, timeout, CodecJSON, modeServerJSON)
}

func newConn(raw net.Conn, timeout time.Duration, codec Codec, mode connMode) *Conn {
	c := &Conn{
		raw:     raw,
		br:      bufio.NewReaderSize(raw, 4096),
		bw:      bufio.NewWriterSize(raw, 4096),
		timeout: timeout,
		codec:   codec,
		mode:    mode,
	}
	c.enc = json.NewEncoder(c.bw)
	return c
}

// Codec returns the connection's negotiated codec. Before a sniffing
// server connection has received its first byte this reports JSON.
func (c *Conn) Codec() Codec { return c.codec }

// SetTimeout changes the per-operation I/O deadline. The hello phase of
// a server connection runs under a shorter deadline than steady-state
// traffic (slowloris guard); the handler widens it back once the peer
// has identified itself.
func (c *Conn) SetTimeout(d time.Duration) { c.timeout = d }

// Timeout returns the per-operation I/O deadline.
func (c *Conn) Timeout() time.Duration { return c.timeout }

// Send writes one message.
func (c *Conn) Send(m Message) error {
	if err := c.writeDeadline(); err != nil {
		return err
	}
	if c.codec == CodecBinary {
		c.scratch = binary.AppendUvarint(c.scratch[:0], 1)
		var err error
		if c.scratch, err = appendMessage(c.scratch, &m); err != nil {
			return err
		}
		return c.writeFrame()
	}
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("protocol: send %s: %w", m.Type, err)
	}
	return c.flush(m.Type)
}

// SendBatch writes a batch of messages as one unit: a single frame
// (one length, one CRC, one flush) on the binary codec, a single
// buffered flush on JSON. This is the write-coalescing primitive AP
// group agents use for batched load reports.
func (c *Conn) SendBatch(ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	if err := c.writeDeadline(); err != nil {
		return err
	}
	if c.codec == CodecBinary {
		var err error
		if c.scratch, err = encodePayload(c.scratch[:0], ms); err != nil {
			return err
		}
		if len(c.scratch) > maxWireBytes {
			return fmt.Errorf("protocol: send batch: frame of %d bytes exceeds %d", len(c.scratch), maxWireBytes)
		}
		return c.writeFrame()
	}
	for i := range ms {
		if err := c.enc.Encode(ms[i]); err != nil {
			return fmt.Errorf("protocol: send %s: %w", ms[i].Type, err)
		}
	}
	return c.flush(ms[0].Type)
}

// writeFrame frames c.scratch and flushes it.
func (c *Conn) writeFrame() error {
	c.out = journal.AppendFrame(c.out[:0], c.scratch)
	if _, err := c.bw.Write(c.out); err != nil {
		return fmt.Errorf("protocol: send: %w", err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("protocol: send: %w", err)
	}
	return nil
}

func (c *Conn) flush(t MsgType) error {
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("protocol: send %s: %w", t, err)
	}
	return nil
}

func (c *Conn) writeDeadline() error {
	if c.timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("protocol: set write deadline: %w", err)
		}
	}
	return nil
}

// Receive reads one message. io.EOF is returned verbatim on clean close.
// A multi-message binary frame is delivered one message per call; the
// rest queue on the Conn.
func (c *Conn) Receive() (Message, error) {
	if c.qpos < len(c.queue) {
		m := c.queue[c.qpos]
		c.qpos++
		return m, nil
	}
	if c.timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return Message{}, fmt.Errorf("protocol: set read deadline: %w", err)
		}
	}
	if c.mode != modeClient {
		if err := c.resolveCodec(); err != nil {
			return Message{}, err
		}
	}
	if c.codec == CodecBinary {
		return c.receiveBinary()
	}
	return c.receiveJSON()
}

// Sniff resolves a server connection's codec from the peer's first byte
// without consuming a message, under the conn's read deadline. The shed
// path uses it so a MsgBusy refusal is written in the codec the peer
// actually speaks. No-op on client conns and after the codec resolved.
func (c *Conn) Sniff() error {
	if c.mode == modeClient {
		return nil
	}
	if c.timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return fmt.Errorf("protocol: set read deadline: %w", err)
		}
	}
	return c.resolveCodec()
}

// resolveCodec sniffs (or, on a JSON-only port, polices) the peer's
// codec from its first byte. Runs once per connection.
func (c *Conn) resolveCodec() error {
	first, err := c.br.Peek(1)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("protocol: receive: %w", err)
	}
	isBinary := first[0] == binaryFirstByte
	switch c.mode {
	case modeServerSniff:
		if isBinary {
			c.codec = CodecBinary
			obsConnsBinary.Inc()
		} else {
			obsConnsJSON.Inc()
		}
	case modeServerJSON:
		if isBinary {
			return fmt.Errorf("protocol: binary frame on JSON-only port")
		}
	}
	c.mode = modeClient
	return nil
}

// receiveBinary reads one frame, validates magic/length/CRC, decodes its
// messages into the queue and pops the first.
func (c *Conn) receiveBinary() (Message, error) {
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		if err == io.EOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("protocol: receive frame header: %w", err)
	}
	if binary.LittleEndian.Uint32(c.hdr[0:4]) != journal.FrameMagic {
		return Message{}, fmt.Errorf("protocol: receive: bad frame magic")
	}
	length := binary.LittleEndian.Uint32(c.hdr[4:8])
	if length > maxWireBytes {
		return Message{}, fmt.Errorf("protocol: receive: frame of %d bytes exceeds %d", length, maxWireBytes)
	}
	if cap(c.scratch) < int(length) {
		c.scratch = make([]byte, length)
	}
	payload := c.scratch[:length]
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return Message{}, fmt.Errorf("protocol: receive frame payload: %w", err)
	}
	if journal.Checksum(payload) != binary.LittleEndian.Uint32(c.hdr[8:12]) {
		obsCRCErrors.Inc()
		return Message{}, fmt.Errorf("protocol: receive: frame CRC mismatch")
	}
	queue, err := decodePayload(payload, c.queue[:0])
	if err != nil {
		return Message{}, err
	}
	c.queue, c.qpos = queue, 0
	if len(c.queue) == 0 {
		return Message{}, fmt.Errorf("protocol: receive: empty frame")
	}
	c.qpos = 1
	return c.queue[0], nil
}

// receiveJSON reads one newline-terminated JSON document.
func (c *Conn) receiveJSON() (Message, error) {
	line, err := c.readLine()
	if err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("protocol: decode: %w", err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("protocol: message without type")
	}
	return m, nil
}

// readLine reads one line into the reused line buffer, capped at
// maxWireBytes (the cap the JSON scanner always imposed). io.EOF is
// returned verbatim when the stream ends cleanly between lines.
func (c *Conn) readLine() ([]byte, error) {
	c.lineBuf = c.lineBuf[:0]
	for {
		frag, err := c.br.ReadSlice('\n')
		c.lineBuf = append(c.lineBuf, frag...)
		if len(c.lineBuf) > maxWireBytes {
			return nil, fmt.Errorf("protocol: receive: line exceeds %d bytes", maxWireBytes)
		}
		switch err {
		case nil:
			return c.lineBuf[:len(c.lineBuf)-1], nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(c.lineBuf) > 0 {
				return c.lineBuf, nil
			}
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("protocol: receive: %w", err)
		}
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }
