package protocol

// Overload and graceful-degradation suite: admission shedding (connection
// cap, association rate limit), the hello slowloris guard, per-connection
// panic containment, and the overload soak that drives a flash crowd
// through a scripted fault plan (internal/faults) and asserts the SLOs
// from ISSUE 10: zero uninjected panics, explicit shedding with load
// conservation intact, bounded association latency while shedding, and
// recovery to clean-phase latency within 5s of the fault clearing. The
// shed-conservation property is proved against an uncapped oracle: a
// fresh controller replaying the capped run's journal must reach
// byte-identical domain state.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/faults"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// waitQuiet polls until every admitted connection's handler has exited,
// so domain state is stable for invariant checks.
func waitQuiet(t *testing.T, c *Controller) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for c.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still active", c.active.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// assertConservation checks the domain's load-conservation invariant:
// every AP's believed load is exactly the sum of its users' demands,
// and the domain's membership matches the controller's assignment map —
// shed and panicked connections must never break either.
func assertConservation(t *testing.T, c *Controller) {
	t.Helper()
	c.mu.Lock()
	assigned := make(map[trace.UserID]trace.APID, len(c.assignments))
	for u, ap := range c.assignments {
		assigned[u] = ap
	}
	c.mu.Unlock()
	users := 0
	for _, id := range c.dom.APs() {
		info, ok := c.dom.Info(id)
		if !ok {
			continue
		}
		sum := 0.0
		for _, d := range info.UserDemands {
			sum += d
		}
		if math.Abs(info.BelievedBps-sum) > 1e-3 {
			t.Errorf("ap %s: believed %v != demand sum %v", id, info.BelievedBps, sum)
		}
		for _, u := range info.Users {
			if assigned[u] != id {
				t.Errorf("domain holds %s on %s, assignments say %q", u, id, assigned[u])
			}
		}
		users += len(info.Users)
	}
	if users != len(assigned) {
		t.Errorf("domain holds %d users, assignment map %d", users, len(assigned))
	}
}

func TestAdmissionConnCap(t *testing.T) {
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout),
		WithAdmission(Admission{MaxConns: 2, RetryAfterMs: 250}))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	shedBefore := obsShedConns.Value()
	st1, err := DialStation(addr, "u-1", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	st2, err := DialStationCodec(defaultDial, addr, "u-2", testTimeout, CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// Both slots taken: the third dial must get an explicit MsgBusy with
	// the configured retry advice — on the JSON codec too, since the
	// shed path sniffs before replying.
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		_, err = DialStationCodec(defaultDial, addr, "u-3", testTimeout, codec)
		var be *BusyError
		if !errors.As(err, &be) {
			t.Fatalf("over-cap %s dial = %v, want *BusyError", codec, err)
		}
		if be.RetryAfter != 250*time.Millisecond {
			t.Errorf("retry advice = %v, want 250ms", be.RetryAfter)
		}
	}
	if got := obsShedConns.Value(); got < shedBefore+2 {
		t.Errorf("protocol.shed.conns = %d, want >= %d", got, shedBefore+2)
	}
	// Freeing a slot re-admits: the handler exits asynchronously after
	// the close, so poll.
	st1.Close()
	deadline := time.Now().Add(testTimeout)
	for {
		st4, err := DialStation(addr, "u-4", testTimeout)
		if err == nil {
			st4.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dial after freeing a slot: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShedSilentPeer: a shed connection whose peer never sends a byte
// must not pin the shedding goroutine — the sniff runs under the shed
// deadline and the admitted population is unaffected throughout.
func TestShedSilentPeer(t *testing.T) {
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout),
		WithAdmission(Admission{MaxConns: 1}))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	st, err := DialStation(addr, "u-1", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Over-cap peer that connects and sits silent: the server must close
	// it within the shed deadline (not the 5s conn timeout).
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(shedTimeout + 2*time.Second))
	start := time.Now()
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent shed peer should be closed, got bytes")
	}
	if d := time.Since(start); d > shedTimeout+time.Second {
		t.Errorf("silent shed peer held %v, want <= ~%v", d, shedTimeout)
	}
	// The admitted station is untouched by the shed churn.
	if _, err := st.Associate(100); err != nil {
		t.Fatalf("admitted station after shed: %v", err)
	}
}

func TestAdmissionAssocRate(t *testing.T) {
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout),
		WithAdmission(Admission{AssocRate: 1, AssocBurst: 2, RetryAfterMs: 100}))
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic bucket: freeze its clock before any traffic.
	var fakeNs atomic.Int64
	c.assocBucket.mu.Lock()
	c.assocBucket.now = func() time.Time { return time.Unix(0, fakeNs.Load()) }
	c.assocBucket.last = time.Unix(0, 0)
	c.assocBucket.tokens = 2
	c.assocBucket.mu.Unlock()
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	st, err := DialStation(addr, "u-1", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	shedBefore := obsShedAssoc.Value()
	for i := 0; i < 2; i++ {
		if _, err := st.Associate(100); err != nil {
			t.Fatalf("burst associate %d: %v", i, err)
		}
	}
	_, err = st.Associate(100)
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("over-rate associate = %v, want *BusyError", err)
	}
	if be.RetryAfter != 100*time.Millisecond {
		t.Errorf("retry advice = %v, want 100ms", be.RetryAfter)
	}
	if got := obsShedAssoc.Value(); got != shedBefore+1 {
		t.Errorf("protocol.shed.assoc = %d, want %d", got, shedBefore+1)
	}
	// Shedding left the connection usable: refill the bucket (2s at
	// 1 token/s) and the same station is admitted again.
	fakeNs.Store(2e9)
	if _, err := st.Associate(100); err != nil {
		t.Fatalf("post-refill associate: %v", err)
	}
	assertConservation(t, c)
}

// TestReportQueuePrunesLostOwnership: with the bounded report queue,
// apply failures surface on the consumer goroutine, not in the read
// loop — the read loop must still learn that a non-primary AP's
// registration moved on and prune it from the connection's owned set,
// exactly as the synchronous path does inline. Pre-fix, a superseded
// AP's reports kept passing the ownership check and were queued and
// rejected silently for the life of the connection.
func TestReportQueuePrunesLostOwnership(t *testing.T) {
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout),
		WithAdmission(Admission{ReportQueue: 8}))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	g, err := DialAPGroup(addr, []APSpec{
		{ID: "rq-a", CapacityBps: 1e6},
		{ID: "rq-b", CapacityBps: 1e6},
	}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// rq-b's registration moves on (a superseding agent whose close has
	// not reached this connection yet): the generation this connection
	// holds is now stale, so its rq-b reports fail to apply — on the
	// consumer goroutine, out of the read loop's sight.
	c.mu.Lock()
	c.meta["rq-b"].gen++
	c.mu.Unlock()

	// Keep reporting for rq-b: the consumer flags the lost registration
	// and the read loop prunes it, answering with an explicit not-owned
	// error. Reports are otherwise unacknowledged, so any reply is that
	// refusal.
	g.conn.SetTimeout(100 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := g.conn.Send(Message{Type: MsgReport, AP: "rq-b", LoadBps: 5}); err != nil {
			t.Fatalf("report send: %v", err)
		}
		m, rerr := g.conn.Receive()
		if rerr == nil {
			if m.Type != MsgError {
				t.Fatalf("reply = %s, want %s", m.Type, MsgError)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale rq-b reports were never refused: the read loop did not learn the lost registration")
		}
	}

	// The primary registration is untouched: rq-a reports still apply on
	// this same connection.
	if err := g.conn.Send(Message{Type: MsgReport, AP: "rq-a", LoadBps: 4242}); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for c.Snapshot()["rq-a"].ReportedBps != 4242 {
		if time.Now().After(deadline) {
			t.Fatal("rq-a report never applied after pruning rq-b")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHelloTimeoutGuard(t *testing.T) {
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout),
		WithHelloTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	before := obsHelloTimeout.Value()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Say nothing: the server must cut the connection on the hello
	// deadline, far inside the 5s conn timeout.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	start := time.Now()
	if _, err := raw.Read(make([]byte, 1)); err == nil {
		t.Fatal("silent peer got bytes, want close")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("silent peer held for %v, want ~100ms", d)
	}
	deadline := time.Now().Add(testTimeout)
	for obsHelloTimeout.Value() < before+1 {
		if time.Now().After(deadline) {
			t.Fatal("protocol.hello.timeout never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A prompt peer is unaffected by the short hello deadline.
	if err := c.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	st, err := DialStation(addr, "u-1", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
}

func TestPanicContainment(t *testing.T) {
	testStationHook = func(user trace.UserID, m *Message) {
		if user == "boom" && m.Type == MsgTraffic {
			panic("injected handler panic")
		}
	}
	defer func() { testStationHook = nil }()
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	before := obsPanics.Value()
	st, err := DialStation(addr, "boom", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Associate(100); err != nil {
		t.Fatal(err)
	}
	if err := st.SendTraffic(1); err != nil {
		t.Fatal(err)
	}
	// The panic is contained: counted once, the panicking connection
	// closed, the process (and every other session) alive.
	deadline := time.Now().Add(testTimeout)
	for obsPanics.Value() < before+1 {
		if time.Now().After(deadline) {
			t.Fatal("protocol.panics never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := obsPanics.Value(); got != before+1 {
		t.Errorf("protocol.panics = %d, want exactly %d", got, before+1)
	}
	st.conn.raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := st.conn.Receive(); err == nil {
		t.Error("panicked handler should have closed the station's connection")
	}
	st2, err := DialStation(addr, "survivor", testTimeout)
	if err != nil {
		t.Fatalf("controller dead after contained panic: %v", err)
	}
	defer st2.Close()
	if _, err := st2.Associate(100); err != nil {
		t.Fatalf("associate after contained panic: %v", err)
	}
	assertConservation(t, c)
}

// TestShedConservationOracle is the byte-identical shedding property: a
// flash crowd hits a capped, rate-limited, journaled controller (with
// one injected handler panic riding along); whatever subset was
// admitted, an uncapped oracle controller replaying the journal must
// reconstruct the exact same domain state — shedding and panics drop
// work, never corrupt it.
func TestShedConservationOracle(t *testing.T) {
	testStationHook = func(user trace.UserID, m *Message) {
		if user == "crowd-00" && m.Type == MsgTraffic {
			panic("injected crowd panic")
		}
	}
	defer func() { testStationHook = nil }()
	dir := t.TempDir()
	c, err := NewController(baseline.LLF{}, WithTimeout(testTimeout),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}),
		WithAdmission(Admission{MaxConns: 8, AssocRate: 150, AssocBurst: 4, RetryAfterMs: 20}))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for i := 0; i < 3; i++ {
		if err := c.RegisterAP(trace.APID(fmt.Sprintf("ap-%d", i)), 1e6); err != nil {
			t.Fatal(err)
		}
	}
	shedBefore := obsShedConns.Value() + obsShedAssoc.Value()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := trace.UserID(fmt.Sprintf("crowd-%02d", i))
			for attempt := 0; attempt < 10; attempt++ {
				st, err := DialStation(addr, user, testTimeout)
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				for k := 0; k < 3; k++ {
					if _, err := st.Associate(float64(100 + i)); err != nil {
						var be *BusyError
						if errors.As(err, &be) {
							time.Sleep(be.RetryAfter / 4)
							continue
						}
						break
					}
					st.SendTraffic(64)
				}
				if i%4 == 0 {
					st.Disassociate()
				}
				st.Close()
				return
			}
		}(i)
	}
	wg.Wait()
	waitQuiet(t, c)
	if got := obsShedConns.Value() + obsShedAssoc.Value(); got <= shedBefore {
		t.Errorf("flash crowd shed nothing (%d); cap/rate not exercised", got-shedBefore)
	}
	want := c.dom.ExportState()

	// Uncapped oracle: replay the admitted subset from the journal.
	oracle, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if rec := oracle.Recovery(); rec == nil || rec.ReplayErrors != 0 {
		t.Fatalf("oracle replay errors: %+v", rec)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(oracle.dom.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("shed run diverged from oracle replay\ncapped: %s\noracle: %s", wantJSON, gotJSON)
	}
	assertConservation(t, c)
}

// soakResult is the overload soak's measured outcome (also emitted as
// BENCH_overload.json by TestOverloadBenchJSON).
type soakResult struct {
	AssocOK    int64 `json:"assoc_ok"`
	AssocShed  int64 `json:"assoc_shed"`
	DialShed   int64 `json:"dial_shed"`
	ShedConns  int64 `json:"shed_conns"`
	ShedAssoc  int64 `json:"shed_assoc"`
	Panics     int64 `json:"panics"`
	P99FaultNs int64 `json:"p99_fault_ns"`
	RecoveryMs int64 `json:"recovery_ms"`
}

// runOverloadSoak drives a flash crowd against a capped controller
// through a scripted fault plan and asserts the ISSUE 10 SLOs. Shared
// by TestOverloadSoak and the BENCH_overload.json emitter.
func runOverloadSoak(t *testing.T) soakResult {
	t.Helper()
	plan := faults.MustParse(
		"clean 300ms -> storm 500ms drop=0.02 delayp=0.1 delay=1ms -> stall 400ms stall=0.3 stalldur=100ms -> clean 0")
	plan.Seed = 42
	eng := faults.NewEngine(plan)
	c, err := NewController(baseline.LLF{},
		WithTimeout(time.Second),
		WithHelloTimeout(500*time.Millisecond),
		WithAdmission(Admission{MaxConns: 12, AssocRate: 150, AssocBurst: 8, RetryAfterMs: 20}))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := c.Serve(eng.Listener(ln))
	t.Cleanup(func() { c.Close() })
	for i := 0; i < 4; i++ {
		if err := c.RegisterAP(trace.APID(fmt.Sprintf("ap-%d", i)), 1e6); err != nil {
			t.Fatal(err)
		}
	}
	panicsBefore := obsPanics.Value()
	shedConnsBefore, shedAssocBefore := obsShedConns.Value(), obsShedAssoc.Value()

	var assocOK, assocShed, dialShed atomic.Int64
	var latMu sync.Mutex
	var faultLat []time.Duration
	stop := make(chan struct{})
	var wg sync.WaitGroup
	eng.Start()
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			user := trace.UserID(fmt.Sprintf("soak-%03d", i))
			var st *Station
			defer func() {
				if st != nil {
					st.Close()
				}
			}()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st == nil {
					s, err := DialStation(addr, user, time.Second)
					if err != nil {
						var be *BusyError
						if errors.As(err, &be) {
							dialShed.Add(1)
						}
						time.Sleep(10 * time.Millisecond)
						continue
					}
					st = s
				}
				phase := eng.PhaseIndex()
				start := time.Now()
				_, err := st.Associate(1e4)
				lat := time.Since(start)
				switch {
				case err == nil:
					assocOK.Add(1)
					if phase == 1 || phase == 2 {
						latMu.Lock()
						faultLat = append(faultLat, lat)
						latMu.Unlock()
					}
					if i%3 == 0 {
						st.SendTraffic(512)
					}
					time.Sleep(2 * time.Millisecond)
				default:
					var be *BusyError
					if errors.As(err, &be) {
						assocShed.Add(1)
						time.Sleep(5 * time.Millisecond)
						continue
					}
					st.Close()
					st = nil
				}
			}
		}(i)
	}

	// Ride the plan out to its terminal clean phase, then stop the crowd
	// and measure recovery.
	eng.AwaitPhase(3)
	faultCleared := time.Now()
	close(stop)
	wg.Wait()

	// SLO: recovery — clean-phase association latency must return to its
	// bound within 5s of the fault phases ending. The probe paces itself
	// under the configured association rate (shedding a compliant client
	// is not a recovery failure) and evaluates the p99 of a sliding
	// window of successful decisions.
	recoveryMs := int64(-1)
	const recoveryP99Bound = 100 * time.Millisecond
	var probe *Station
	var window []time.Duration
	for time.Since(faultCleared) < 5*time.Second {
		if probe == nil {
			p, err := DialStation(addr, "probe", time.Second)
			if err != nil {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			probe = p
		}
		start := time.Now()
		_, err := probe.Associate(1e3)
		if err != nil {
			var be *BusyError
			if errors.As(err, &be) {
				time.Sleep(20 * time.Millisecond)
				continue
			}
			probe.Close()
			probe = nil
			continue
		}
		window = append(window, time.Since(start))
		if len(window) > 30 {
			window = window[1:]
		}
		if len(window) == 30 && p99(window) < recoveryP99Bound {
			recoveryMs = time.Since(faultCleared).Milliseconds()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if probe != nil {
		probe.Close()
	}
	if recoveryMs < 0 {
		t.Errorf("no recovery to p99 < %v within 5s of fault clear", recoveryP99Bound)
	}
	waitQuiet(t, c)

	res := soakResult{
		AssocOK:    assocOK.Load(),
		AssocShed:  assocShed.Load(),
		DialShed:   dialShed.Load(),
		ShedConns:  obsShedConns.Value() - shedConnsBefore,
		ShedAssoc:  obsShedAssoc.Value() - shedAssocBefore,
		Panics:     obsPanics.Value() - panicsBefore,
		RecoveryMs: recoveryMs,
	}
	latMu.Lock()
	if len(faultLat) > 0 {
		res.P99FaultNs = p99(faultLat).Nanoseconds()
	}
	latMu.Unlock()

	// SLO: zero panics under overload + faults.
	if res.Panics != 0 {
		t.Errorf("protocol.panics rose by %d during soak, want 0", res.Panics)
	}
	// SLO: shedding happened and was explicit (16 stations vs cap 12
	// guarantees connection sheds; the rate limit sheds associations).
	if res.ShedConns+res.ShedAssoc == 0 {
		t.Error("soak shed nothing; overload not exercised")
	}
	if res.AssocOK == 0 {
		t.Error("no association succeeded during soak")
	}
	// SLO: p99 association latency bounded while shedding — a successful
	// decision never waits behind the shed queue or a dead peer.
	if res.P99FaultNs > (1500 * time.Millisecond).Nanoseconds() {
		t.Errorf("fault-phase p99 = %v, want <= 1.5s", time.Duration(res.P99FaultNs))
	}
	// SLO: load conservation with shedding and churn.
	assertConservation(t, c)
	return res
}

func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * 99 / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestOverloadSoak(t *testing.T) {
	res := runOverloadSoak(t)
	t.Logf("overload soak: %d ok, %d assoc shed, %d dial shed, fault p99 %v, recovery %dms",
		res.AssocOK, res.AssocShed, res.DialShed, time.Duration(res.P99FaultNs), res.RecoveryMs)
}

// TestOverloadBenchJSON emits the overload soak's measured SLOs to the
// path named by OVERLOAD_BENCH_JSON. Skipped when unset so plain
// `go test` runs the soak once (via TestOverloadSoak); CI points it at
// BENCH_overload.json.
func TestOverloadBenchJSON(t *testing.T) {
	path := os.Getenv("OVERLOAD_BENCH_JSON")
	if path == "" {
		t.Skip("OVERLOAD_BENCH_JSON not set")
	}
	res := runOverloadSoak(t)
	out := struct {
		Benchmark string     `json:"benchmark"`
		Result    soakResult `json:"result"`
	}{Benchmark: "OverloadSoak", Result: res}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
