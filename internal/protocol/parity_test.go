package protocol

import (
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"github.com/s3wlan/s3wlan/internal/apps"
	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/society/incremental"
	"github.com/s3wlan/s3wlan/internal/synth"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

// TestSimLiveParity replays one seeded trace through both association
// drivers — the batch simulator (internal/wlan) and the live controller
// — for four policies and asserts byte-identical assignment sequences.
// Both drivers are thin shells over the shared association-domain core
// (internal/domain), so this is the equivalence check the refactor
// promises: same views, same admission, same commits, same decisions.
//
// The live driver is exercised through the controller's public decision
// path (Associate / AssociateBatch / disassociate) with a scripted
// clock, reproducing the simulator's event order: arrivals at time t
// fire before departures at t (eventsim schedules arrivals up front, so
// they hold lower sequence numbers), and same-time departures fire in
// placement order.
func TestSimLiveParity(t *testing.T) {
	tr, par, ctrl := parityFixture(t)
	aps := tr.Topology.APsOf(ctrl)

	model := parityModel(t, tr)
	liveEngineCfg := func() incremental.Config {
		cfg := incremental.DefaultConfig()
		// Small event window so snapshot refreshes actually interleave
		// with decisions; both drivers see identical event streams, so
		// refresh points coincide.
		cfg.RefreshEvents = 16
		return cfg
	}
	newS3Live := func() (wlan.Selector, *incremental.Engine) {
		eng := incremental.New(liveEngineCfg())
		eng.SetTypes(model.Types, model.TypeMatrix)
		eng.Refresh()
		sel, err := core.NewSelector(eng, core.DefaultSelectorConfig())
		if err != nil {
			t.Fatal(err)
		}
		return sel, eng
	}

	cases := []struct {
		name  string
		build func() (wlan.Selector, *incremental.Engine)
	}{
		{"LLF", func() (wlan.Selector, *incremental.Engine) {
			return baseline.LLF{}, nil
		}},
		{"StrongestRSSI", func() (wlan.Selector, *incremental.Engine) {
			return baseline.StrongestRSSI{}, nil
		}},
		{"S3-batch", func() (wlan.Selector, *incremental.Engine) {
			sel, err := core.NewSelector(model, core.DefaultSelectorConfig())
			if err != nil {
				t.Fatal(err)
			}
			return sel, nil
		}},
		{"S3-live", newS3Live},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// --- Simulator driver.
			simSel, simEng := tc.build()
			simCfg := wlan.Config{
				SelectorFor: func(trace.ControllerID, []trace.AP) wlan.Selector {
					return simSel
				},
			}
			if simEng != nil {
				simCfg.Observer = simEng
			}
			simRes, err := wlan.Simulate(par, simCfg)
			if err != nil {
				t.Fatalf("simulate: %v", err)
			}
			simSeq := make([]parityRecord, 0, len(simRes.Domains[ctrl].Assigned))
			for _, a := range simRes.Domains[ctrl].Assigned {
				simSeq = append(simSeq, parityRecord{
					User: a.Session.User, At: a.Session.ConnectAt, AP: a.AP,
				})
			}

			// --- Live controller driver.
			liveSel, liveEng := tc.build()
			var clock atomic.Int64
			opts := []ControllerOption{
				WithClock(func() int64 { return clock.Load() }),
				WithShards(4),
			}
			if liveEng != nil {
				opts = append(opts, WithObserver(liveEng))
			}
			c, err := NewController(liveSel, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for _, ap := range aps {
				if err := c.RegisterAP(ap.ID, ap.CapacityBps); err != nil {
					t.Fatal(err)
				}
			}
			liveSeq := replayLive(t, c, &clock, par.Sessions)

			if !reflect.DeepEqual(simSeq, liveSeq) {
				for i := range simSeq {
					if i >= len(liveSeq) || simSeq[i] != liveSeq[i] {
						t.Fatalf("policy %s diverges at decision %d: sim %+v, live %+v",
							tc.name, i, simSeq[i], at(liveSeq, i))
					}
				}
				t.Fatalf("policy %s: sim made %d decisions, live %d",
					tc.name, len(simSeq), len(liveSeq))
			}
			if len(simSeq) == 0 {
				t.Fatal("parity fixture produced no decisions")
			}
		})
	}
}

type parityRecord struct {
	User trace.UserID
	At   int64
	AP   trace.APID
}

func at(seq []parityRecord, i int) any {
	if i >= len(seq) {
		return "<missing>"
	}
	return seq[i]
}

// replayLive feeds the sanitized sessions through the controller in the
// simulator's exact event order and returns the assignment sequence.
func replayLive(t *testing.T, c *Controller, clock *atomic.Int64, sessions []trace.Session) []parityRecord {
	t.Helper()
	// Sort exactly like the simulator orders its arrival stream.
	sorted := append([]trace.Session(nil), sessions...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.ConnectAt != b.ConnectAt {
			return a.ConnectAt < b.ConnectAt
		}
		if a.Controller != b.Controller {
			return a.Controller < b.Controller
		}
		if a.User != b.User {
			return a.User < b.User
		}
		return a.DisconnectAt < b.DisconnectAt
	})

	// Departures ordered by (time, placement order); placement order is
	// the sorted index, because the simulator schedules each departure
	// when it places the session.
	type departure struct {
		at  int64
		idx int
	}
	deps := make([]departure, len(sorted))
	for i, s := range sorted {
		deps[i] = departure{at: s.DisconnectAt, idx: i}
	}
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].at != deps[j].at {
			return deps[i].at < deps[j].at
		}
		return deps[i].idx < deps[j].idx
	})

	// Distinct event times, ascending.
	timeSet := make(map[int64]bool, 2*len(sorted))
	for _, s := range sorted {
		timeSet[s.ConnectAt] = true
		timeSet[s.DisconnectAt] = true
	}
	times := make([]int64, 0, len(timeSet))
	for ts := range timeSet {
		times = append(times, ts)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	var out []parityRecord
	ai, di := 0, 0
	for _, now := range times {
		clock.Store(now)
		// Arrivals at `now` first (they hold lower event sequence
		// numbers than any departure), batched per identical timestamp
		// like the simulator with BatchWindowSeconds = 0.
		start := ai
		for ai < len(sorted) && sorted[ai].ConnectAt == now {
			ai++
		}
		if batch := sorted[start:ai]; len(batch) > 0 {
			reqs := make([]wlan.Request, len(batch))
			for i, s := range batch {
				reqs[i] = wlan.Request{User: s.User, At: s.ConnectAt, DemandBps: s.Throughput()}
			}
			got, err := c.AssociateBatch(reqs)
			if err != nil {
				t.Fatalf("live associate at t=%d: %v", now, err)
			}
			for _, s := range batch {
				ap, ok := got[s.User]
				if !ok {
					t.Fatalf("live driver left %s unplaced at t=%d", s.User, now)
				}
				out = append(out, parityRecord{User: s.User, At: s.ConnectAt, AP: ap})
			}
		}
		// Then departures at `now`, in placement order.
		for di < len(deps) && deps[di].at == now {
			c.disassociate(sorted[deps[di].idx].User)
			di++
		}
	}
	return out
}

// parityFixture generates a seeded campus, picks its first controller
// domain, and sanitizes that domain's sessions for the replay: connect
// times snapped to a 30 s grid (creating genuine co-arrival batches) and
// per-user sessions made strictly non-overlapping (the live controller
// holds one association per user — a fresh request supersedes — while
// the simulator stacks concurrent sessions, so overlap is out of scope
// for parity). Returns the full trace (for model training), the
// sanitized replay trace, and the chosen controller.
func parityFixture(t *testing.T) (*trace.Trace, *trace.Trace, trace.ControllerID) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = 7
	cfg.Users = 60
	cfg.Buildings = 2
	cfg.APsPerBuilding = 4
	cfg.Days = 3
	tr, _, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := tr.Topology.Controllers()[0]

	perUser := make(map[trace.UserID][]trace.Session)
	for _, s := range tr.Sessions {
		if s.Controller == ctrl {
			perUser[s.User] = append(perUser[s.User], s)
		}
	}
	users := make([]trace.UserID, 0, len(perUser))
	for u := range perUser {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	const maxSessions = 300
	var kept []trace.Session
	for _, u := range users {
		list := perUser[u]
		sort.Slice(list, func(i, j int) bool { return list[i].ConnectAt < list[j].ConnectAt })
		lastEnd := int64(-1 << 62)
		for _, s := range list {
			connect := s.ConnectAt - mod(s.ConnectAt, 30)
			if connect <= lastEnd {
				continue // overlap with the user's previous session: drop
			}
			dur := s.DisconnectAt - s.ConnectAt
			if dur < 30 {
				dur = 30
			}
			s.ConnectAt = connect
			s.DisconnectAt = connect + dur
			kept = append(kept, s)
			lastEnd = s.DisconnectAt
		}
	}
	if len(kept) > maxSessions {
		sort.Slice(kept, func(i, j int) bool { return kept[i].ConnectAt < kept[j].ConnectAt })
		kept = kept[:maxSessions]
	}
	if len(kept) < 50 {
		t.Fatalf("parity fixture too small: %d sessions", len(kept))
	}
	par := &trace.Trace{
		Topology: trace.Topology{APs: tr.Topology.APsOf(ctrl)},
		Sessions: kept,
	}
	return tr, par, ctrl
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// parityModel batch-trains the sociality model both S³ variants start
// from, on the full generated campus.
func parityModel(t *testing.T, tr *trace.Trace) *society.Model {
	t.Helper()
	profiles := apps.BuildProfiles(tr.Flows, trainEpoch(tr), apps.NewClassifier())
	model, err := society.Train(tr, profiles, society.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func trainEpoch(tr *trace.Trace) int64 {
	start, _ := tr.TimeRange()
	return start - mod(start, 86400)
}

// TestSimLiveParityShardInvariance re-runs the live half of the parity
// check at several shard counts and asserts the assignment sequence
// never changes: sharding alters lock granularity, not decisions.
func TestSimLiveParityShardInvariance(t *testing.T) {
	_, par, ctrl := parityFixture(t)
	aps := par.Topology.APsOf(ctrl)

	var base []parityRecord
	for _, shards := range []int{1, 4, 16} {
		var clock atomic.Int64
		c, err := NewController(baseline.LLF{},
			WithClock(func() int64 { return clock.Load() }),
			WithShards(shards))
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Shards(); got != maxInt(shards, 1) {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		for _, ap := range aps {
			if err := c.RegisterAP(ap.ID, ap.CapacityBps); err != nil {
				t.Fatal(err)
			}
		}
		seq := replayLive(t, c, &clock, par.Sessions)
		if base == nil {
			base = seq
			continue
		}
		if !reflect.DeepEqual(base, seq) {
			t.Fatalf("assignments changed between 1 and %d shards", shards)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
