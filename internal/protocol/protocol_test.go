package protocol

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/core"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
	"github.com/s3wlan/s3wlan/internal/wlan"
)

const testTimeout = 5 * time.Second

// mapIndex is a symmetric test SocialIndex.
type mapIndex map[[2]trace.UserID]float64

func (m mapIndex) Index(u, v trace.UserID) float64 {
	if v < u {
		u, v = v, u
	}
	return m[[2]trace.UserID{u, v}]
}

func startController(t *testing.T, sel wlan.Selector) (*Controller, string) {
	t.Helper()
	c, err := NewController(sel, WithTimeout(testTimeout))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, addr
}

func TestControllerRequiresSelector(t *testing.T) {
	if _, err := NewController(nil); err == nil {
		t.Error("nil selector should error")
	}
}

func TestAPRegistrationAndReports(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	agent, err := DialAP(addr, "ap1", 1e6, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	if err := agent.Report(1234); err != nil {
		t.Fatal(err)
	}
	// Reports are applied asynchronously; poll the snapshot.
	deadline := time.Now().Add(testTimeout)
	for {
		snap := c.Snapshot()
		if st, ok := snap["ap1"]; ok && st.ReportedBps == 1234 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("report not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDuplicateAPTakesOver: a second agent hello for the same AP is a
// renewal that supersedes the previous connection (a half-open TCP
// session is indistinguishable from a live one, so the newest agent
// wins), never a permanent "already registered" rejection.
func TestDuplicateAPTakesOver(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	a1, err := DialAP(addr, "ap1", 1e6, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	a2, err := DialAP(addr, "ap1", 2e6, testTimeout)
	if err != nil {
		t.Fatalf("re-hello should take over, got %v", err)
	}
	defer a2.Close()
	if err := a2.Report(777); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for {
		snap := c.Snapshot()
		if st, ok := snap["ap1"]; ok && st.ReportedBps == 777 && st.CapacityBps == 2e6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("takeover not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(c.Snapshot()) != 1 {
		t.Errorf("AP registered more than once: %+v", c.Snapshot())
	}
	// A static registration is not up for takeover by agents.
	if err := c.RegisterAP("ap-static", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := DialAP(addr, "ap-static", 1e6, testTimeout); err == nil {
		t.Error("agent hello for a statically registered AP should fail")
	}
}

func TestStationAssociationLifecycle(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	if err := c.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAP("ap2", 1e6); err != nil {
		t.Fatal(err)
	}

	st, err := DialStation(addr, "user-1", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ap, err := st.Associate(100)
	if err != nil {
		t.Fatal(err)
	}
	if ap != "ap1" && ap != "ap2" {
		t.Fatalf("assigned to unknown AP %q", ap)
	}
	if st.AP() != ap {
		t.Error("station should remember its AP")
	}
	if err := st.SendTraffic(5000); err != nil {
		t.Fatal(err)
	}
	if err := st.Disassociate(); err != nil {
		t.Fatal(err)
	}
	// After disassociation the user is gone from the snapshot.
	deadline := time.Now().Add(testTimeout)
	for {
		snap := c.Snapshot()
		total := 0
		for _, s := range snap {
			total += len(s.Users)
		}
		if total == 0 && snap[ap].ServedBytes == 5000 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("state not settled: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Traffic before re-association is rejected client-side.
	if err := st.SendTraffic(1); err == nil {
		t.Error("traffic without association should error")
	}
}

func TestLLFBalancesStations(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAP("ap2", 0); err != nil {
		t.Fatal(err)
	}
	var stations []*Station
	for _, u := range []trace.UserID{"u1", "u2", "u3", "u4"} {
		st, err := DialStation(addr, u, testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Associate(100); err != nil {
			t.Fatal(err)
		}
		stations = append(stations, st)
	}
	counts := map[trace.APID]int{}
	for _, st := range stations {
		counts[st.AP()]++
	}
	if counts["ap1"] != 2 || counts["ap2"] != 2 {
		t.Errorf("LLF placement = %v, want 2/2", counts)
	}
}

func TestS3DispersesFriendsOverTCP(t *testing.T) {
	// Two tight friends and an unrelated user: the S³ controller must put
	// the friends on different APs.
	idx := mapIndex{{"alice", "bob"}: 0.9}
	sel, err := core.NewSelector(idx, core.DefaultSelectorConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, addr := startController(t, sel)
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAP("ap2", 0); err != nil {
		t.Fatal(err)
	}

	assign := func(user trace.UserID) trace.APID {
		st, err := DialStation(addr, user, testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		ap, err := st.Associate(100)
		if err != nil {
			t.Fatal(err)
		}
		return ap
	}
	apAlice := assign("alice")
	apBob := assign("bob")
	if apAlice == apBob {
		t.Errorf("friends colocated on %s", apAlice)
	}
}

func TestAssociateWithoutAPs(t *testing.T) {
	_, addr := startController(t, baseline.LLF{})
	st, err := DialStation(addr, "u", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Associate(10); err == nil {
		t.Error("association without APs should fail")
	}
}

func TestBadHello(t *testing.T) {
	_, addr := startController(t, baseline.LLF{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConn(raw, testTimeout)
	// Wrong first message type.
	if err := conn.Send(Message{Type: MsgReport}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgError {
		t.Errorf("reply = %s, want error", reply.Type)
	}
}

func TestUnknownRoleRejected(t *testing.T) {
	_, addr := startController(t, baseline.LLF{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConn(raw, testTimeout)
	if err := conn.Send(Message{Type: MsgHello, Role: "bogus", ID: "x"}); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgError || !strings.Contains(reply.Error, "unknown role") {
		t.Errorf("reply = %+v", reply)
	}
}

func TestMalformedFrame(t *testing.T) {
	_, addr := startController(t, baseline.LLF{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	// The controller drops the connection; a follow-up read sees EOF.
	buf := make([]byte, 64)
	raw.SetReadDeadline(time.Now().Add(testTimeout))
	if _, err := raw.Read(buf); err == nil {
		// Either an error frame or a close is acceptable; a successful
		// read must carry an error message.
		if !strings.Contains(string(buf), "error") {
			t.Errorf("unexpected reply to garbage: %q", buf)
		}
	}
}

func TestControllerReassociation(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterAP("ap2", 0); err != nil {
		t.Fatal(err)
	}
	st, err := DialStation(addr, "u", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Associate(100); err != nil {
		t.Fatal(err)
	}
	// Re-associate: the user must exist exactly once.
	if _, err := st.Associate(100); err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot()
	total := 0
	for _, s := range snap {
		total += len(s.Users)
	}
	if total != 1 {
		t.Errorf("user present %d times after re-association", total)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		c := NewConn(server, 0)
		m, err := c.Receive()
		if err != nil {
			return
		}
		_ = c.Send(m) // echo
	}()
	c := NewConn(client, 0)
	want := Message{Type: MsgAssign, User: "u", AP: "ap1", DemandBps: 42.5}
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := c.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

// TestOnlineLearnerIntegration wires a society.OnlineLearner into the
// controller and verifies the live association lifecycle feeds it.
func TestOnlineLearnerIntegration(t *testing.T) {
	learnerCfg := society.DefaultConfig()
	learnerCfg.MinEncounters = 1
	learnerCfg.MinEncounterSeconds = 10
	learner := society.NewOnlineLearner(learnerCfg)

	var fake int64
	c, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithObserver(learner),
		WithClock(func() int64 { fake += 100; return fake }),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}

	// Two stations associate on the same AP, then leave back to back.
	var stations []*Station
	for _, u := range []trace.UserID{"a", "b"} {
		st, err := DialStation(addr, u, testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Associate(10); err != nil {
			t.Fatal(err)
		}
		stations = append(stations, st)
	}
	for _, st := range stations {
		if err := st.Disassociate(); err != nil {
			t.Fatal(err)
		}
	}
	// Disassociations are handled asynchronously; wait for both.
	deadline := time.Now().Add(testTimeout)
	for {
		open, pairs, _ := learner.Stats()
		if open == 0 && pairs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("learner did not settle: open=%d pairs=%d", open, pairs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := learner.Model()
	p := society.MakePair("a", "b")
	if m.Encounters[p] == 0 {
		t.Error("learner should have recorded the encounter")
	}
	if m.CoLeaves[p] == 0 {
		t.Error("learner should have recorded the co-leaving")
	}
}

// TestSessionLogProducesParsableTrace verifies the controller's login log
// round-trips through the trace codec — the prototype collects the same
// records the paper's data center did.
func TestSessionLogProducesParsableTrace(t *testing.T) {
	var logBuf syncBuffer
	var fake int64
	c, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithSessionLog(&logBuf),
		WithClock(func() int64 { fake += 50; return fake }),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}

	st, err := DialStation(addr, "logger-user", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Associate(10); err != nil {
		t.Fatal(err)
	}
	if err := st.SendTraffic(4096); err != nil {
		t.Fatal(err)
	}
	if err := st.Disassociate(); err != nil {
		t.Fatal(err)
	}
	// The log is written on the station goroutine; wait for it.
	deadline := time.Now().Add(testTimeout)
	for logBuf.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no session logged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tr, err := trace.ReadJSONLines(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1", len(tr.Sessions))
	}
	s := tr.Sessions[0]
	if s.User != "logger-user" || s.AP != "ap1" || s.Bytes != 4096 {
		t.Errorf("logged session = %+v", s)
	}
	if s.DisconnectAt <= s.ConnectAt {
		t.Errorf("session times = %d..%d", s.ConnectAt, s.DisconnectAt)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the session log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
