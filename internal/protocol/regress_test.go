package protocol

import (
	"encoding/json"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/s3wlan/s3wlan/internal/baseline"
	"github.com/s3wlan/s3wlan/internal/journal"
	"github.com/s3wlan/s3wlan/internal/obs"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// TestSameAPReassociationKeepsSession: re-associating onto the current
// AP is a demand refresh, not a move. The session stays continuous (one
// trace record at the end, carrying all served bytes), the move counter
// does not tick, and the association timestamp survives.
func TestSameAPReassociationKeepsSession(t *testing.T) {
	var fakeMu sync.Mutex
	var fake int64
	var logBuf syncBuffer
	c, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithSessionLog(&logBuf),
		WithClock(func() int64 {
			fakeMu.Lock()
			defer fakeMu.Unlock()
			fake += 50
			return fake
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := c.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// One AP: every re-association necessarily lands on the same AP.
	if err := c.RegisterAP("ap1", 0); err != nil {
		t.Fatal(err)
	}

	movesBefore := obs.Default.GetCounter("protocol.assoc.moves").Value()
	st, err := DialStation(addr, "stayer", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Associate(100); err != nil {
		t.Fatal(err)
	}
	if err := st.SendTraffic(70); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(testTimeout)
	for c.Snapshot()["ap1"].ServedBytes != 70 {
		if time.Now().After(deadline) {
			t.Fatalf("traffic not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.mu.Lock()
	firstAt := c.assignedAt["stayer"]
	c.mu.Unlock()

	// Same-AP re-association with a new demand.
	if _, err := st.Associate(250); err != nil {
		t.Fatal(err)
	}
	if err := st.SendTraffic(30); err != nil {
		t.Fatal(err)
	}
	for c.Snapshot()["ap1"].ServedBytes != 100 {
		if time.Now().After(deadline) {
			t.Fatalf("post-refresh traffic not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	c.mu.Lock()
	refreshAt := c.assignedAt["stayer"]
	served := c.servedByUsr["stayer"]
	c.mu.Unlock()
	if refreshAt != firstAt {
		t.Errorf("refresh reset assignedAt: %d -> %d", firstAt, refreshAt)
	}
	if served != 100 {
		t.Errorf("refresh lost served bytes: %d, want 100", served)
	}
	if moves := obs.Default.GetCounter("protocol.assoc.moves").Value(); moves != movesBefore {
		t.Errorf("same-AP refresh counted as a move (%d -> %d)", movesBefore, moves)
	}
	// The demand update itself must land in the domain.
	if info, ok := c.dom.Info("ap1"); !ok || info.BelievedBps != 250 {
		t.Errorf("believed demand = %+v (%v), want 250", info, ok)
	}
	if logBuf.String() != "" {
		t.Errorf("refresh emitted a session record: %q", logBuf.String())
	}

	// Disassociating closes ONE session spanning both halves.
	if err := st.Disassociate(); err != nil {
		t.Fatal(err)
	}
	for {
		tr, err := trace.ReadJSONLines(strings.NewReader(logBuf.String()))
		if err == nil && len(tr.Sessions) == 1 {
			s := tr.Sessions[0]
			if s.User != "stayer" || s.AP != "ap1" || s.Bytes != 100 || s.ConnectAt != firstAt {
				t.Errorf("session = %+v, want one continuous ap1 session with 100 bytes from %d", s, firstAt)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("want exactly 1 session, log = %q", logBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSameAPRefreshJournalReplayParity: a journal replay of a same-AP
// re-association reproduces the live controller's refresh semantics —
// the session timestamp is not split on recovery either.
func TestSameAPRefreshJournalReplayParity(t *testing.T) {
	dir := t.TempDir()
	var fake int64
	clock := func() int64 { fake += 1000; return fake }
	a, err := NewController(baseline.LLF{},
		WithClock(clock),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Associate("u", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Associate("u", 300); err != nil { // same-AP refresh
		t.Fatal(err)
	}
	a.mu.Lock()
	wantAt := a.assignedAt["u"]
	a.mu.Unlock()
	wantState := a.dom.ExportState()
	wantSnap := a.Snapshot()
	// Crash (no Close); recover in a fresh controller.
	b, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if rec := b.Recovery(); rec == nil || rec.ReplayErrors != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	b.mu.Lock()
	gotAt := b.assignedAt["u"]
	b.mu.Unlock()
	if gotAt != wantAt {
		t.Errorf("replayed assignedAt = %d, want %d (refresh must not split the session)", gotAt, wantAt)
	}
	if !reflect.DeepEqual(b.dom.ExportState(), wantState) {
		t.Errorf("replayed domain state diverged")
	}
	if !reflect.DeepEqual(b.Snapshot(), wantSnap) {
		t.Errorf("replayed snapshot diverged:\nwant %+v\ngot  %+v", wantSnap, b.Snapshot())
	}
}

// TestAgentDetachedOnProtocolError: when the AP handler exits because
// the agent sent an unexpected message, the connection must be detached
// from the registration (agentConn nil) exactly as on a dropped
// connection — otherwise a later supersede closes a dangling *Conn and
// lease logic believes an agent is still attached.
func TestAgentDetachedOnProtocolError(t *testing.T) {
	c, addr := startController(t, baseline.LLF{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	conn := NewConnCodec(raw, testTimeout, CodecBinary)
	if err := conn.Send(Message{Type: MsgHello, Role: RoleAP, ID: "ap-x", CapacityBps: 1e6}); err != nil {
		t.Fatal(err)
	}
	if ok, err := conn.Receive(); err != nil || ok.Type != MsgHelloOK {
		t.Fatalf("hello reply = %+v, %v", ok, err)
	}
	// An AP has no business sending an association request.
	if err := conn.Send(Message{Type: MsgAssoc, DemandBps: 1}); err != nil {
		t.Fatal(err)
	}
	if reply, err := conn.Receive(); err != nil || reply.Type != MsgError {
		t.Fatalf("want MsgError for unexpected message, got %+v, %v", reply, err)
	}
	deadline := time.Now().Add(testTimeout)
	for {
		c.mu.Lock()
		m, ok := c.meta["ap-x"]
		detached := ok && m.agentConn == nil
		c.mu.Unlock()
		if !ok {
			t.Fatal("ap-x registration vanished")
		}
		if detached {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("agentConn still attached after protocol-error exit")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The AP survives on its lease and a fresh agent can take over.
	a2, err := DialAP(addr, "ap-x", 2e6, testTimeout)
	if err != nil {
		t.Fatalf("takeover after protocol-error exit: %v", err)
	}
	defer a2.Close()
	if err := a2.Report(55); err != nil {
		t.Fatal(err)
	}
	for c.Snapshot()["ap-x"].ReportedBps != 55 {
		if time.Now().After(deadline) {
			t.Fatalf("takeover report not applied: %+v", c.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCrossCodecAssignmentParity drives the identical workload over the
// JSON port of one controller and the binary port of another and
// requires identical assignments and domain state: the codec is a
// transport detail, never a decision input.
func TestCrossCodecAssignmentParity(t *testing.T) {
	type driven struct {
		ctl  *Controller
		addr string
	}
	controllers := map[Codec]*driven{}
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		ctl, addr := startController(t, baseline.LLF{})
		controllers[codec] = &driven{ctl, addr}
	}
	for codec, d := range controllers {
		var agents []*APAgent
		for i := 0; i < 3; i++ {
			a, err := DialAPCodec(d.addr, trace.APID(fmt.Sprintf("ap-%d", i)), float64(i+1)*1e6, testTimeout, codec)
			if err != nil {
				t.Fatal(err)
			}
			defer a.Close()
			if err := a.Report(float64(i) * 1e5); err != nil {
				t.Fatal(err)
			}
			agents = append(agents, a)
		}
		_ = agents
		// Wait for all reports so both controllers decide on equal state.
		deadline := time.Now().Add(testTimeout)
		for {
			snap := d.ctl.Snapshot()
			ok := len(snap) == 3
			for i := 0; i < 3; i++ {
				st, present := snap[trace.APID(fmt.Sprintf("ap-%d", i))]
				ok = ok && present && st.ReportedBps == float64(i)*1e5
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: reports not applied: %+v", codec, snap)
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Stations stay connected until the comparison: closing one
		// disassociates its user.
		for i := 0; i < 8; i++ {
			st, err := DialStationCodec(defaultDial, d.addr, trace.UserID(fmt.Sprintf("u-%d", i)), testTimeout, codec)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			if _, err := st.Associate(float64(100 * (i + 1))); err != nil {
				t.Fatal(err)
			}
			if err := st.SendTraffic(int64(10 * (i + 1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	bin, js := controllers[CodecBinary].ctl, controllers[CodecJSON].ctl
	bin.mu.Lock()
	binAssign := map[trace.UserID]trace.APID{}
	for u, ap := range bin.assignments {
		binAssign[u] = ap
	}
	bin.mu.Unlock()
	js.mu.Lock()
	jsAssign := map[trace.UserID]trace.APID{}
	for u, ap := range js.assignments {
		jsAssign[u] = ap
	}
	js.mu.Unlock()
	if !reflect.DeepEqual(binAssign, jsAssign) {
		t.Errorf("assignments diverged:\nbinary %+v\njson   %+v", binAssign, jsAssign)
	}
	a, _ := json.Marshal(bin.dom.ExportState())
	b, _ := json.Marshal(js.dom.ExportState())
	if string(a) != string(b) {
		t.Errorf("domain state diverged:\nbinary %s\njson   %s", a, b)
	}
}

// TestBinaryPortCrashRecovery: a journaled controller driven entirely
// over the binary wire protocol, abandoned without Close (the kill -9
// equivalent), warm-restarts with byte-identical recovered state.
func TestBinaryPortCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	a, err := NewController(baseline.LLF{},
		WithTimeout(testTimeout),
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		agent, err := DialAP(addr, trace.APID(fmt.Sprintf("ap-%d", i)), float64(i+1)*1e6, testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		defer agent.Close()
	}
	deadline := time.Now().Add(testTimeout)
	for len(a.Snapshot()) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("agent registrations not applied: %+v", a.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The stations are deliberately left open and never closed: a close
	// would disassociate the user (and journal it) — a kill -9 freezes
	// the world with every association live. The leaked connections die
	// with the test process.
	for i := 0; i < 6; i++ {
		st, err := DialStation(addr, trace.UserID(fmt.Sprintf("u-%d", i)), testTimeout)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Associate(float64(50 * (i + 1))); err != nil {
			t.Fatal(err)
		}
	}
	wantState, err := json.Marshal(a.dom.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	a.mu.Lock()
	wantAssign, _ := json.Marshal(a.assignments)
	a.mu.Unlock()
	// Crash: no Close — journal file handle abandoned, listeners leak
	// until the test process exits.

	b, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rec := b.Recovery()
	if rec == nil || rec.ReplayErrors != 0 || rec.APs != 3 || rec.Assignments != 6 {
		t.Fatalf("recovery = %+v, want 3 APs, 6 assignments, no errors", rec)
	}
	gotState, err := json.Marshal(b.dom.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if string(gotState) != string(wantState) {
		t.Fatalf("recovered domain state not byte-identical:\nwant %s\ngot  %s", wantState, gotState)
	}
	b.mu.Lock()
	gotAssign, _ := json.Marshal(b.assignments)
	b.mu.Unlock()
	if string(gotAssign) != string(wantAssign) {
		t.Fatalf("recovered assignments not byte-identical:\nwant %s\ngot  %s", wantAssign, gotAssign)
	}
}

// TestDisassocCheckpointConsistency: a checkpoint triggered by the
// disassociation record itself (checkpoint-every-1 forces rotation on
// each append) must capture the user fully removed — assignments,
// assignedAt and servedByUsr together — never a half-deleted ghost.
func TestDisassocCheckpointConsistency(t *testing.T) {
	dir := t.TempDir()
	a, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways, CheckpointEvery: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RegisterAP("ap1", 1e6); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Associate("ghost", 100); err != nil {
		t.Fatal(err)
	}
	a.disassociate("ghost")
	// Crash without Close; recover from the checkpoint keyed to the
	// disassoc record.
	b, err := NewController(baseline.LLF{},
		WithJournal(dir, journal.Options{Fsync: journal.FsyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.mu.Lock()
	_, inAssign := b.assignments["ghost"]
	_, inAt := b.assignedAt["ghost"]
	_, inServed := b.servedByUsr["ghost"]
	b.mu.Unlock()
	if inAssign || inAt || inServed {
		t.Errorf("recovered ghost user: assignments=%v assignedAt=%v servedByUsr=%v",
			inAssign, inAt, inServed)
	}
}

// TestAssociateSteadyStateAllocs gates the association fast path: a
// steady-state re-association (same user, same AP, new demand) through
// an unjournaled, log-quiet controller must not allocate — the AP views,
// the placement and the commit all run from pooled scratch.
func TestAssociateSteadyStateAllocs(t *testing.T) {
	c, err := NewController(baseline.LLF{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.RegisterAP(trace.APID(fmt.Sprintf("ap-%d", i)), 1e6); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		if _, err := c.Associate(trace.UserID(fmt.Sprintf("u-%d", i)), 100); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the pools.
	for i := 0; i < 100; i++ {
		if _, err := c.Associate("u-0", float64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	var demand float64 = 100
	allocs := testing.AllocsPerRun(200, func() {
		demand += 1
		if _, err := c.Associate("u-0", demand); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state Associate allocates %.1f objects/op, want 0", allocs)
	}
}
