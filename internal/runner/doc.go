// Package runner executes independent units of experiment work — per-seed
// replications, parameter-sweep cells, per-figure artifact jobs — on a
// bounded worker pool while keeping the output *byte-identical* to a
// serial run. Determinism rests on three rules:
//
//  1. Results are slot-stored: task i writes only into slot i, so result
//     order never depends on completion order.
//  2. Randomness is per-task: every task derives its own RNG from a
//     stable seed (DeriveSeed of the pool seed and the task index), never
//     from a shared generator whose consumption order would vary.
//  3. Errors are index-ordered: the reported error is the one from the
//     lowest-indexed failing task, which is exactly the error a serial
//     run would have surfaced first.
//
// The pool also feeds the observability layer (internal/obs): per-task
// durations land in the "runner.task" histogram, completions in
// "runner.tasks", and an optional Progress writer receives one line per
// completed task for long grids. Both metrics appear on /metrics and in
// flight-recorder rings; see docs/OBSERVABILITY.md.
package runner
