package runner

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/s3wlan/s3wlan/internal/obs"
)

var (
	obsTasks    = obs.GetCounter("runner.tasks", "Worker-pool tasks completed (sweep cells, figure jobs, replications)")
	obsTaskTime = obs.GetHistogram("runner.task", "Wall time of one worker-pool task")
)

// Config shapes one pool invocation.
type Config struct {
	// Workers bounds concurrent tasks; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per completed task
	// (typically os.Stderr behind a -progress flag).
	Progress io.Writer
	// Label prefixes progress lines and names the work in reports.
	Label string
	// Seed is the base seed tasks derive their private RNG seeds from
	// (see Ctx.RNG). Zero is a valid base.
	Seed int64
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Ctx is the per-task execution context.
type Ctx struct {
	// Index is the task's position in the submitted slice.
	Index int
	// Seed is the task's private seed, derived from the pool seed and
	// Index (or taken from Task.Seed when set).
	Seed int64

	rng *rand.Rand
}

// RNG returns the task's private deterministic generator, created
// lazily from Seed. Two runs with the same seeds produce the same
// stream regardless of worker count or scheduling.
func (c *Ctx) RNG() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(c.Seed))
	}
	return c.rng
}

// Task is one unit of work.
type Task struct {
	// Name labels the task in progress output and reports.
	Name string
	// Seed overrides the derived per-task seed when non-zero.
	Seed int64
	// Run does the work. It must not write to state shared with other
	// tasks except through its own result slot.
	Run func(*Ctx) error
}

// TaskReport records one task's outcome.
type TaskReport struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"err,omitempty"`
}

// Report summarizes a pool invocation.
type Report struct {
	Label   string        `json:"label,omitempty"`
	Workers int           `json:"workers"`
	Wall    time.Duration `json:"wall_ns"`
	Tasks   []TaskReport  `json:"tasks"`
}

// TotalTaskTime sums the per-task durations — the serial-equivalent
// cost; Wall/TotalTaskTime approximates the achieved speedup.
func (r *Report) TotalTaskTime() time.Duration {
	var total time.Duration
	for _, t := range r.Tasks {
		total += t.Duration
	}
	return total
}

// Render is a one-line human summary.
func (r *Report) Render() string {
	label := r.Label
	if label == "" {
		label = "runner"
	}
	total := r.TotalTaskTime()
	speedup := 1.0
	if r.Wall > 0 {
		speedup = float64(total) / float64(r.Wall)
	}
	return fmt.Sprintf("%s: %d tasks on %d workers in %v (serial-equivalent %v, speedup %.1fx)",
		label, len(r.Tasks), r.Workers, r.Wall.Round(time.Millisecond),
		total.Round(time.Millisecond), speedup)
}

// DeriveSeed maps (base, index) to a well-mixed per-task seed using the
// splitmix64 finalizer, so neighbouring indices get uncorrelated
// streams and the mapping is stable across runs and platforms.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Run executes the tasks on the pool and returns the per-task report.
// After the first failure no new tasks start (in-flight tasks finish);
// the returned error is the lowest-indexed task's error, matching what
// a serial run would report. The Report covers every started task.
func Run(cfg Config, tasks []Task) (*Report, error) {
	report := &Report{
		Label:   cfg.Label,
		Workers: cfg.workers(),
		Tasks:   make([]TaskReport, len(tasks)),
	}
	for i, t := range tasks {
		report.Tasks[i].Name = t.Name
	}
	if len(tasks) == 0 {
		return report, nil
	}

	n := report.Workers
	if n > len(tasks) {
		n = len(tasks)
	}
	start := time.Now()

	var (
		mu        sync.Mutex
		next      int
		done      int
		failedIdx = -1
		firstErrs = map[int]error{}
	)
	// claim hands out the next task index, or -1 when dispatch should
	// stop (exhausted, or a lower-indexed task already failed).
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= len(tasks) || failedIdx >= 0 {
			return -1
		}
		i := next
		next++
		return i
	}
	finish := func(idx int, d time.Duration, err error) {
		obsTasks.Inc()
		obsTaskTime.Observe(d)
		mu.Lock()
		defer mu.Unlock()
		done++
		report.Tasks[idx].Duration = d
		if err != nil {
			report.Tasks[idx].Err = err.Error()
			firstErrs[idx] = err
			if failedIdx < 0 || idx < failedIdx {
				failedIdx = idx
			}
		}
		if cfg.Progress != nil {
			name := report.Tasks[idx].Name
			if name == "" {
				name = fmt.Sprintf("task %d", idx)
			}
			label := cfg.Label
			if label == "" {
				label = "runner"
			}
			fmt.Fprintf(cfg.Progress, "[%s] %d/%d done (%s, %v) elapsed=%v\n",
				label, done, len(tasks), name, d.Round(time.Millisecond),
				time.Since(start).Round(time.Millisecond))
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := claim()
				if idx < 0 {
					return
				}
				ctx := &Ctx{Index: idx, Seed: tasks[idx].Seed}
				if ctx.Seed == 0 {
					ctx.Seed = DeriveSeed(cfg.Seed, idx)
				}
				t0 := time.Now()
				err := safeRun(tasks[idx].Run, ctx)
				finish(idx, time.Since(t0), err)
			}
		}()
	}
	wg.Wait()
	report.Wall = time.Since(start)

	if failedIdx >= 0 {
		return report, fmt.Errorf("runner: task %d (%s): %w",
			failedIdx, report.Tasks[failedIdx].Name, firstErrs[failedIdx])
	}
	return report, nil
}

// safeRun converts a panicking task into an error so one bad cell
// cannot take down a whole grid.
func safeRun(run func(*Ctx) error, ctx *Ctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if run == nil {
		return errors.New("nil task")
	}
	return run(ctx)
}

// Map runs f over every item on the pool and returns the results in
// item order. Slot storage keeps the output identical to a serial map
// regardless of worker count.
func Map[I, O any](cfg Config, items []I, f func(*Ctx, I) (O, error)) ([]O, *Report, error) {
	out := make([]O, len(items))
	tasks := make([]Task, len(items))
	for i := range items {
		i := i
		tasks[i] = Task{
			Name: fmt.Sprintf("%s[%d]", cfg.Label, i),
			Run: func(c *Ctx) error {
				v, err := f(c, items[i])
				if err != nil {
					return err
				}
				out[i] = v
				return nil
			},
		}
	}
	report, err := Run(cfg, tasks)
	if err != nil {
		return nil, report, err
	}
	return out, report, nil
}
