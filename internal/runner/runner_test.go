package runner

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapDeterministic: the same seeded-RNG workload must produce
// byte-identical results on one worker and on eight.
func TestMapDeterministic(t *testing.T) {
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	run := func(workers int) []float64 {
		out, _, err := Map(Config{Workers: workers, Seed: 42, Label: "det"},
			items, func(c *Ctx, item int) (float64, error) {
				// Consume the task RNG heavily: order-sensitive if shared.
				v := 0.0
				for k := 0; k < 100; k++ {
					v += c.RNG().Float64()
				}
				return v + float64(item), nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("slot %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Error("DeriveSeed not stable")
	}
	seen := map[int64]bool{}
	for i := 0; i < 100; i++ {
		s := DeriveSeed(7, i)
		if seen[s] {
			t.Fatalf("seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 3) == DeriveSeed(2, 3) {
		t.Error("different bases should give different seeds")
	}
}

func TestTaskSeedOverride(t *testing.T) {
	var got int64
	_, err := Run(Config{Workers: 2}, []Task{{
		Name: "seeded",
		Seed: 99,
		Run: func(c *Ctx) error {
			got = c.Seed
			return nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Errorf("ctx seed = %d, want 99", got)
	}
}

// TestLowestIndexError: with many workers, the reported error must be
// the lowest-indexed failure — the one a serial run would surface.
func TestLowestIndexError(t *testing.T) {
	errA := errors.New("boom-3")
	tasks := make([]Task, 16)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Name: fmt.Sprintf("t%d", i),
			Run: func(*Ctx) error {
				switch i {
				case 3:
					return errA
				case 9:
					return errors.New("boom-9")
				}
				return nil
			},
		}
	}
	for _, workers := range []int{1, 8} {
		_, err := Run(Config{Workers: workers}, tasks)
		if err == nil || !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want wrapped %v", workers, err, errA)
		}
	}
}

func TestStopsDispatchAfterError(t *testing.T) {
	var started atomic.Int64
	tasks := make([]Task, 100)
	for i := range tasks {
		i := i
		tasks[i] = Task{Run: func(*Ctx) error {
			started.Add(1)
			if i == 0 {
				return errors.New("immediate")
			}
			time.Sleep(time.Millisecond)
			return nil
		}}
	}
	if _, err := Run(Config{Workers: 2}, tasks); err == nil {
		t.Fatal("want error")
	}
	if n := started.Load(); n == 100 {
		t.Error("dispatch did not stop after failure")
	}
}

func TestPanicBecomesError(t *testing.T) {
	_, err := Run(Config{Workers: 2}, []Task{{
		Name: "explode",
		Run:  func(*Ctx) error { panic("kaboom") },
	}})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v, want panic message", err)
	}
}

func TestProgressAndReport(t *testing.T) {
	var buf bytes.Buffer
	report, err := Run(Config{Workers: 2, Progress: &buf, Label: "grid"}, []Task{
		{Name: "a", Run: func(*Ctx) error { return nil }},
		{Name: "b", Run: func(*Ctx) error { return nil }},
		{Name: "c", Run: func(*Ctx) error { return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "[grid]"); got != 3 {
		t.Errorf("progress lines = %d, want 3\n%s", got, buf.String())
	}
	if !strings.Contains(buf.String(), "3/3") {
		t.Errorf("missing final progress line:\n%s", buf.String())
	}
	if len(report.Tasks) != 3 || report.Workers != 2 {
		t.Errorf("report = %+v", report)
	}
	if report.TotalTaskTime() < 0 || report.Wall <= 0 {
		t.Errorf("durations: wall=%v total=%v", report.Wall, report.TotalTaskTime())
	}
	if !strings.Contains(report.Render(), "3 tasks on 2 workers") {
		t.Errorf("Render = %q", report.Render())
	}
}

func TestEmptyAndNil(t *testing.T) {
	report, err := Run(Config{}, nil)
	if err != nil || len(report.Tasks) != 0 {
		t.Errorf("empty run: %v %+v", err, report)
	}
	if _, err := Run(Config{}, []Task{{Name: "nil-run"}}); err == nil {
		t.Error("nil Run func should error")
	}
	out, _, err := Map(Config{}, []int{}, func(*Ctx, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty map: %v %v", err, out)
	}
}

func TestMapError(t *testing.T) {
	_, _, err := Map(Config{Workers: 4, Label: "m"}, []int{0, 1, 2, 3},
		func(c *Ctx, item int) (int, error) {
			if item == 2 {
				return 0, errors.New("cell failed")
			}
			return item, nil
		})
	if err == nil || !strings.Contains(err.Error(), "cell failed") {
		t.Errorf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "m[2]") {
		t.Errorf("error should name the failing cell: %v", err)
	}
}
