package socialgraph

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// Structural analysis of the learned social graph. The paper's related
// work (Hsu & Helmy) found small-world structure in WLAN encounter
// graphs; these helpers let the same questions be asked of the θ-graph
// this library learns.

// LocalClusteringCoefficient returns the fraction of u's neighbour pairs
// that are themselves connected (0 for degree < 2).
func (g *Graph) LocalClusteringCoefficient(u trace.UserID) float64 {
	nbrs := g.Neighbors(u)
	k := len(nbrs)
	if k < 2 {
		return 0
	}
	links := 0
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if g.HasEdge(nbrs[i], nbrs[j]) {
				links++
			}
		}
	}
	return float64(links) / float64(k*(k-1)/2)
}

// ClusteringCoefficient returns the mean local clustering coefficient
// over all vertices (0 for an empty graph). High values alongside short
// path lengths are the small-world signature.
func (g *Graph) ClusteringCoefficient() float64 {
	vs := g.Vertices()
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, u := range vs {
		sum += g.LocalClusteringCoefficient(u)
	}
	return sum / float64(len(vs))
}

// DegreeHistogram returns degree -> vertex count.
func (g *Graph) DegreeHistogram() map[int]int {
	out := make(map[int]int)
	for _, u := range g.Vertices() {
		out[g.Degree(u)]++
	}
	return out
}

// MeanDegree returns the average vertex degree.
func (g *Graph) MeanDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.NumEdges()) / float64(n)
}

// AveragePathLength returns the mean shortest-path length over all
// connected vertex pairs (hop count, unweighted), and the number of pairs
// measured. Disconnected pairs are excluded. O(V·E) via BFS per vertex.
func (g *Graph) AveragePathLength() (mean float64, pairs int) {
	vs := g.Vertices()
	idx := make(map[trace.UserID]int, len(vs))
	for i, u := range vs {
		idx[u] = i
	}
	var totalDist, totalPairs int
	dist := make([]int, len(vs))
	queue := make([]int, 0, len(vs))
	for s := range vs {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(vs[u]) {
				wi := idx[w]
				if dist[wi] == -1 {
					dist[wi] = dist[u] + 1
					queue = append(queue, wi)
				}
			}
		}
		for t := s + 1; t < len(vs); t++ {
			if dist[t] > 0 {
				totalDist += dist[t]
				totalPairs++
			}
		}
	}
	if totalPairs == 0 {
		return 0, 0
	}
	return float64(totalDist) / float64(totalPairs), totalPairs
}

// Report summarizes the graph's structure.
type Report struct {
	Vertices              int
	Edges                 int
	MeanDegree            float64
	ClusteringCoefficient float64
	AveragePathLength     float64
	ConnectedPairs        int
	Components            int
	LargestComponent      int
}

// Analyze computes the full structural report.
func (g *Graph) Analyze() Report {
	comps := g.ConnectedComponents()
	largest := 0
	for _, c := range comps {
		if len(c) > largest {
			largest = len(c)
		}
	}
	apl, pairs := g.AveragePathLength()
	return Report{
		Vertices:              g.NumVertices(),
		Edges:                 g.NumEdges(),
		MeanDegree:            g.MeanDegree(),
		ClusteringCoefficient: g.ClusteringCoefficient(),
		AveragePathLength:     apl,
		ConnectedPairs:        pairs,
		Components:            len(comps),
		LargestComponent:      largest,
	}
}

// TopDegrees returns the n highest-degree vertices, ties broken by ID.
func (g *Graph) TopDegrees(n int) []trace.UserID {
	vs := g.Vertices()
	sort.Slice(vs, func(i, j int) bool {
		di, dj := g.Degree(vs[i]), g.Degree(vs[j])
		if di != dj {
			return di > dj
		}
		return vs[i] < vs[j]
	})
	if n > len(vs) {
		n = len(vs)
	}
	return vs[:n]
}

// WriteDOT renders the graph in Graphviz DOT format with edge weights as
// labels, for visual inspection of the learned social structure.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "social"
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	for _, u := range g.Vertices() {
		fmt.Fprintf(bw, "  %q;\n", string(u))
	}
	for _, u := range g.Vertices() {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue // each undirected edge once
			}
			weight, _ := g.Weight(u, v)
			fmt.Fprintf(bw, "  %q -- %q [label=\"%.2f\"];\n",
				string(u), string(v), weight)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
