package socialgraph

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func triangleWithTail() *Graph {
	g := New()
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	g.AddEdge("a", "c", 1)
	g.AddEdge("c", "d", 1) // tail
	return g
}

func TestLocalClusteringCoefficient(t *testing.T) {
	g := triangleWithTail()
	// a's neighbours {b, c} are connected: coefficient 1.
	if got := g.LocalClusteringCoefficient("a"); got != 1 {
		t.Errorf("C(a) = %v, want 1", got)
	}
	// c's neighbours {a, b, d}: only a-b connected among 3 pairs.
	if got := g.LocalClusteringCoefficient("c"); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("C(c) = %v, want 1/3", got)
	}
	// d has degree 1: 0 by convention.
	if got := g.LocalClusteringCoefficient("d"); got != 0 {
		t.Errorf("C(d) = %v, want 0", got)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	g := triangleWithTail()
	want := (1.0 + 1.0 + 1.0/3.0 + 0.0) / 4.0
	if got := g.ClusteringCoefficient(); math.Abs(got-want) > 1e-12 {
		t.Errorf("C = %v, want %v", got, want)
	}
	if got := New().ClusteringCoefficient(); got != 0 {
		t.Errorf("empty C = %v, want 0", got)
	}
}

func TestDegreeHistogramAndMeanDegree(t *testing.T) {
	g := triangleWithTail()
	h := g.DegreeHistogram()
	if h[2] != 2 || h[3] != 1 || h[1] != 1 {
		t.Errorf("histogram = %v", h)
	}
	// 4 edges × 2 / 4 vertices = 2.
	if got := g.MeanDegree(); got != 2 {
		t.Errorf("mean degree = %v, want 2", got)
	}
	if got := New().MeanDegree(); got != 0 {
		t.Errorf("empty mean degree = %v", got)
	}
}

func TestAveragePathLength(t *testing.T) {
	g := triangleWithTail()
	// Distances: a-b 1, a-c 1, a-d 2, b-c 1, b-d 2, c-d 1 ⇒ mean 8/6.
	mean, pairs := g.AveragePathLength()
	if pairs != 6 {
		t.Fatalf("pairs = %d, want 6", pairs)
	}
	if math.Abs(mean-8.0/6.0) > 1e-12 {
		t.Errorf("APL = %v, want %v", mean, 8.0/6.0)
	}
	// Disconnected pairs excluded.
	g.AddVertex("island")
	_, pairs = g.AveragePathLength()
	if pairs != 6 {
		t.Errorf("pairs with island = %d, want 6", pairs)
	}
	// Empty graph.
	mean, pairs = New().AveragePathLength()
	if mean != 0 || pairs != 0 {
		t.Errorf("empty APL = %v, %d", mean, pairs)
	}
}

func TestAnalyzeReport(t *testing.T) {
	g := triangleWithTail()
	g.AddVertex("island")
	r := g.Analyze()
	if r.Vertices != 5 || r.Edges != 4 {
		t.Errorf("report = %+v", r)
	}
	if r.Components != 2 || r.LargestComponent != 4 {
		t.Errorf("components = %d/%d, want 2/4", r.Components, r.LargestComponent)
	}
	if r.ClusteringCoefficient <= 0 || r.AveragePathLength <= 0 {
		t.Errorf("structure stats missing: %+v", r)
	}
}

func TestTopDegrees(t *testing.T) {
	g := triangleWithTail()
	top := g.TopDegrees(2)
	if len(top) != 2 || top[0] != "c" {
		t.Errorf("TopDegrees = %v, want c first (degree 3)", top)
	}
	all := g.TopDegrees(100)
	if len(all) != 4 {
		t.Errorf("TopDegrees(100) = %v", all)
	}
}

func TestSmallWorldSignatureOnGroupGraph(t *testing.T) {
	// Groups-as-cliques plus a few random bridges: high clustering,
	// short paths — the structure the learned θ-graph exhibits.
	g := New()
	const groups, size = 6, 5
	name := func(gr, m int) trace.UserID {
		return trace.UserID(fmt.Sprintf("g%dm%d", gr, m))
	}
	for gr := 0; gr < groups; gr++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(name(gr, i), name(gr, j), 1)
			}
		}
	}
	for gr := 0; gr < groups; gr++ {
		g.AddEdge(name(gr, 0), name((gr+1)%groups, 1), 1) // bridges
	}
	r := g.Analyze()
	if r.ClusteringCoefficient < 0.5 {
		t.Errorf("clustering = %v, want high (cliquish)", r.ClusteringCoefficient)
	}
	if r.Components != 1 {
		t.Errorf("components = %d, want 1 (bridged)", r.Components)
	}
	if r.AveragePathLength <= 1 || r.AveragePathLength > 6 {
		t.Errorf("APL = %v, want short", r.AveragePathLength)
	}
}

func TestWriteDOT(t *testing.T) {
	g := triangleWithTail()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "social" {`, `"a" -- "b"`, `label="1.00"`, "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Each edge appears exactly once.
	if strings.Count(out, " -- ") != g.NumEdges() {
		t.Errorf("edge lines = %d, want %d", strings.Count(out, " -- "), g.NumEdges())
	}
}
