package socialgraph

import (
	"sort"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// This file implements the maximum-clique machinery of Algorithm 1:
//
//   - an exact branch-and-bound maximum-clique solver in the style of
//     Östergård (2002), with vertices pre-ordered by a greedy colouring
//     whose colour count bounds the attainable clique size, and
//   - the iterated extraction loop: repeatedly remove a maximum clique
//     (ties broken by the largest edge-weight sum, as the paper
//     prescribes) until the graph is empty.

// MaxClique returns a maximum clique of g. Among maximum cliques the one
// with the largest internal edge-weight sum is preferred (the paper's
// tie-break: heavier cliques are more likely to co-leave and need
// dispersing first). The result is sorted; an empty graph returns nil.
func MaxClique(g *Graph) []trace.UserID {
	vertices := g.Vertices()
	if len(vertices) == 0 {
		return nil
	}
	s := newCliqueSolver(g, vertices)
	best := s.solve()
	out := make([]trace.UserID, len(best))
	for i, idx := range best {
		out[i] = s.names[idx]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type cliqueSolver struct {
	names []trace.UserID
	adj   [][]bool
	n     int

	best       []int
	bestWeight float64
	g          *Graph
}

func newCliqueSolver(g *Graph, vertices []trace.UserID) *cliqueSolver {
	// Order vertices by a greedy colouring: sort by descending degree,
	// assign each the smallest feasible colour, then order by colour.
	// Searching in this order lets the colour number prune branches.
	order := greedyColoringOrder(g, vertices)
	n := len(order)
	idx := make(map[trace.UserID]int, n)
	names := make([]trace.UserID, n)
	for i, u := range order {
		idx[u] = i
		names[i] = u
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for i, u := range order {
		for _, v := range g.Neighbors(u) {
			adj[i][idx[v]] = true
		}
	}
	return &cliqueSolver{names: names, adj: adj, n: n, g: g}
}

// greedyColoringOrder colours vertices greedily (descending degree) and
// returns them sorted by (colour, degree desc, name) so low-colour
// vertices come first.
func greedyColoringOrder(g *Graph, vertices []trace.UserID) []trace.UserID {
	byDegree := append([]trace.UserID(nil), vertices...)
	sort.Slice(byDegree, func(i, j int) bool {
		di, dj := g.Degree(byDegree[i]), g.Degree(byDegree[j])
		if di != dj {
			return di > dj
		}
		return byDegree[i] < byDegree[j]
	})
	color := make(map[trace.UserID]int, len(vertices))
	for _, u := range byDegree {
		used := make(map[int]bool)
		for _, v := range g.Neighbors(u) {
			if c, ok := color[v]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[u] = c
	}
	out := append([]trace.UserID(nil), byDegree...)
	sort.SliceStable(out, func(i, j int) bool {
		return color[out[i]] < color[out[j]]
	})
	return out
}

// solve runs the Östergård-style search: process vertices from the end of
// the order toward the front; c[i] is the max clique size within the
// suffix {i..n-1}, used as the pruning bound.
func (s *cliqueSolver) solve() []int {
	c := make([]int, s.n+1)
	for i := s.n - 1; i >= 0; i-- {
		// Candidates: neighbours of i within the suffix.
		var cand []int
		for j := i + 1; j < s.n; j++ {
			if s.adj[i][j] {
				cand = append(cand, j)
			}
		}
		s.expand([]int{i}, cand, c)
		c[i] = len(s.best)
		if c[i] < c[i+1] {
			c[i] = c[i+1]
		}
	}
	return s.best
}

func (s *cliqueSolver) expand(current, candidates []int, c []int) {
	if len(candidates) == 0 {
		s.consider(current)
		return
	}
	for len(candidates) > 0 {
		// Bound 1: even taking every candidate cannot beat the best.
		if len(current)+len(candidates) < len(s.best) {
			return
		}
		v := candidates[0]
		// Bound 2 (Östergård): the best clique within the suffix starting
		// at v is known; adding it to current can't beat best.
		// Note both bounds use strict <: equal-size cliques must still be
		// explored because the tie-break prefers the largest edge-weight
		// sum among maximum cliques.
		if len(current)+c[v] < len(s.best) {
			return
		}
		candidates = candidates[1:]
		next := current
		next = append(next[:len(next):len(next)], v)
		var rest []int
		for _, w := range candidates {
			if s.adj[v][w] {
				rest = append(rest, w)
			}
		}
		if len(rest) == 0 {
			s.consider(next)
		} else {
			s.expand(next, rest, c)
		}
	}
	s.consider(current)
}

func (s *cliqueSolver) consider(clique []int) {
	if len(clique) < len(s.best) {
		return
	}
	w := s.weightOf(clique)
	if len(clique) > len(s.best) || w > s.bestWeight {
		s.best = append([]int(nil), clique...)
		s.bestWeight = w
	}
}

func (s *cliqueSolver) weightOf(clique []int) float64 {
	var total float64
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			if w, ok := s.g.Weight(s.names[clique[i]], s.names[clique[j]]); ok {
				total += w
			}
		}
	}
	return total
}

// ExtractCliqueCover repeatedly removes a maximum clique from (a copy of)
// g until no vertices remain, returning the cliques in extraction order.
// This is the partitioning loop of Algorithm 1: because removing a clique
// never destroys clique-ness of the remainder, the result is a partition
// of the vertex set into cliques, extracted largest-first.
func ExtractCliqueCover(g *Graph) [][]trace.UserID {
	work := g.Clone()
	var cover [][]trace.UserID
	for work.NumVertices() > 0 {
		clique := MaxClique(work)
		cover = append(cover, clique)
		for _, u := range clique {
			work.RemoveVertex(u)
		}
	}
	return cover
}

// SortCover orders a clique cover canonically in place: cliques with
// more members first, ties broken lexicographically by (member-sorted)
// contents. Extraction order carries no semantics once a cover is a
// partition, so splicing per-component covers (the incremental engine)
// and whole-graph extraction agree exactly after canonicalization.
func SortCover(cover [][]trace.UserID) {
	sort.Slice(cover, func(i, j int) bool {
		a, b := cover[i], cover[j]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
