package socialgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func TestMaxCliqueEmpty(t *testing.T) {
	if got := MaxClique(New()); got != nil {
		t.Errorf("MaxClique(empty) = %v, want nil", got)
	}
}

func TestMaxCliqueSingleVertex(t *testing.T) {
	g := New()
	g.AddVertex("solo")
	got := MaxClique(g)
	if len(got) != 1 || got[0] != "solo" {
		t.Errorf("MaxClique = %v, want [solo]", got)
	}
}

func TestMaxCliqueTriangleInPath(t *testing.T) {
	g := New()
	// Path a-b-c-d plus triangle c-d-e.
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	g.AddEdge("c", "d", 1)
	g.AddEdge("d", "e", 1)
	g.AddEdge("c", "e", 1)
	got := MaxClique(g)
	want := []trace.UserID{"c", "d", "e"}
	if len(got) != 3 {
		t.Fatalf("MaxClique = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MaxClique = %v, want %v", got, want)
		}
	}
}

func TestMaxCliqueCompleteGraph(t *testing.T) {
	g := New()
	names := []trace.UserID{"a", "b", "c", "d", "e"}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			g.AddEdge(names[i], names[j], 1)
		}
	}
	got := MaxClique(g)
	if len(got) != 5 {
		t.Errorf("complete graph clique size = %d, want 5", len(got))
	}
}

func TestMaxCliqueWeightTieBreak(t *testing.T) {
	g := New()
	// Two disjoint triangles; the second is heavier and must win.
	g.AddEdge("a", "b", 0.1)
	g.AddEdge("b", "c", 0.1)
	g.AddEdge("a", "c", 0.1)
	g.AddEdge("x", "y", 0.9)
	g.AddEdge("y", "z", 0.9)
	g.AddEdge("x", "z", 0.9)
	got := MaxClique(g)
	if len(got) != 3 || got[0] != "x" {
		t.Errorf("MaxClique = %v, want the heavy triangle [x y z]", got)
	}
}

// bruteMaxCliqueSize enumerates all subsets (n <= ~16) to find the true
// maximum clique size.
func bruteMaxCliqueSize(g *Graph) int {
	vs := g.Vertices()
	n := len(vs)
	best := 0
	for mask := 1; mask < 1<<n; mask++ {
		var set []trace.UserID
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, vs[i])
			}
		}
		if len(set) > best && g.IsClique(set) {
			best = len(set)
		}
	}
	return best
}

func TestMaxCliqueAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(9) // up to 12 vertices
		p := 0.2 + rng.Float64()*0.6
		g := New()
		for i := 0; i < n; i++ {
			g.AddVertex(trace.UserID(fmt.Sprintf("v%02d", i)))
		}
		vs := g.Vertices()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					g.AddEdge(vs[i], vs[j], rng.Float64())
				}
			}
		}
		got := MaxClique(g)
		if !g.IsClique(got) {
			t.Fatalf("trial %d: result %v is not a clique", trial, got)
		}
		want := bruteMaxCliqueSize(g)
		if len(got) != want {
			t.Fatalf("trial %d: clique size = %d, want %d (graph %v)",
				trial, len(got), want, g)
		}
	}
}

func TestExtractCliqueCoverPartitions(t *testing.T) {
	g := New()
	// Triangle + edge + isolated vertex.
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	g.AddEdge("a", "c", 1)
	g.AddEdge("x", "y", 1)
	g.AddVertex("solo")
	cover := ExtractCliqueCover(g)
	if len(cover) != 3 {
		t.Fatalf("cover = %v, want 3 cliques", cover)
	}
	if len(cover[0]) != 3 || len(cover[1]) != 2 || len(cover[2]) != 1 {
		t.Errorf("cover sizes = %d/%d/%d, want 3/2/1",
			len(cover[0]), len(cover[1]), len(cover[2]))
	}
	// Partition property: every vertex exactly once.
	seen := map[trace.UserID]int{}
	for _, cl := range cover {
		for _, u := range cl {
			seen[u]++
		}
	}
	if len(seen) != g.NumVertices() {
		t.Errorf("cover misses vertices: %v", seen)
	}
	for u, c := range seen {
		if c != 1 {
			t.Errorf("vertex %s appears %d times", u, c)
		}
	}
	// Original graph untouched.
	if g.NumVertices() != 6 {
		t.Error("ExtractCliqueCover mutated its input")
	}
}

func TestExtractCliqueCoverRandomPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	g := New()
	const n = 25
	for i := 0; i < n; i++ {
		g.AddVertex(trace.UserID(fmt.Sprintf("u%02d", i)))
	}
	vs := g.Vertices()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.AddEdge(vs[i], vs[j], rng.Float64())
			}
		}
	}
	cover := ExtractCliqueCover(g)
	seen := map[trace.UserID]bool{}
	total := 0
	prevSize := n + 1
	for _, cl := range cover {
		if !g.IsClique(cl) {
			t.Fatalf("cover element %v is not a clique", cl)
		}
		if len(cl) > prevSize {
			t.Errorf("cover not extracted largest-first: %d after %d",
				len(cl), prevSize)
		}
		prevSize = len(cl)
		for _, u := range cl {
			if seen[u] {
				t.Fatalf("vertex %s covered twice", u)
			}
			seen[u] = true
			total++
		}
	}
	if total != n {
		t.Errorf("covered %d vertices, want %d", total, n)
	}
}

func BenchmarkMaxClique50(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := New()
	const n = 50
	for i := 0; i < n; i++ {
		g.AddVertex(trace.UserID(fmt.Sprintf("u%02d", i)))
	}
	vs := g.Vertices()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.AddEdge(vs[i], vs[j], rng.Float64())
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxClique(g)
	}
}
