// Package socialgraph provides the graph substrate of the S³ scheme: a
// weighted undirected graph over users whose edges carry social-relation
// indexes, an exact maximum-clique solver (Östergård-style branch and
// bound with a greedy-colouring bound), and the iterated clique-cover
// extraction Algorithm 1 uses to peel socially-tight groups off the graph.
package socialgraph

import (
	"fmt"
	"sort"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// Graph is a weighted undirected graph over users. The zero value is an
// empty graph ready to use.
type Graph struct {
	adj map[trace.UserID]map[trace.UserID]float64
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[trace.UserID]map[trace.UserID]float64)}
}

// AddVertex ensures u exists in the graph (isolated if no edges follow).
func (g *Graph) AddVertex(u trace.UserID) {
	if g.adj == nil {
		g.adj = make(map[trace.UserID]map[trace.UserID]float64)
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[trace.UserID]float64)
	}
}

// AddEdge inserts (or overwrites) the undirected edge u—v with the given
// weight. Self-loops are ignored.
func (g *Graph) AddEdge(u, v trace.UserID, weight float64) {
	if u == v {
		return
	}
	g.AddVertex(u)
	g.AddVertex(v)
	g.adj[u][v] = weight
	g.adj[v][u] = weight
}

// RemoveEdge deletes the undirected edge u—v if present. The vertices
// remain.
func (g *Graph) RemoveEdge(u, v trace.UserID) {
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// RemoveVertex deletes u and all its incident edges.
func (g *Graph) RemoveVertex(u trace.UserID) {
	for v := range g.adj[u] {
		delete(g.adj[v], u)
	}
	delete(g.adj, u)
}

// HasEdge reports whether u—v exists.
func (g *Graph) HasEdge(u, v trace.UserID) bool {
	_, ok := g.adj[u][v]
	return ok
}

// Weight returns the weight of u—v (0 if absent) and whether it exists.
func (g *Graph) Weight(u, v trace.UserID) (float64, bool) {
	w, ok := g.adj[u][v]
	return w, ok
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, nbrs := range g.adj {
		n += len(nbrs)
	}
	return n / 2
}

// Vertices returns all vertices in sorted order (stable for determinism).
func (g *Graph) Vertices() []trace.UserID {
	out := make([]trace.UserID, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns u's neighbours in sorted order.
func (g *Graph) Neighbors(u trace.UserID) []trace.UserID {
	out := make([]trace.UserID, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Degree returns u's degree.
func (g *Graph) Degree(u trace.UserID) int { return len(g.adj[u]) }

// EdgeWeightSum returns the total weight of edges inside the vertex set s.
func (g *Graph) EdgeWeightSum(s []trace.UserID) float64 {
	var total float64
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if w, ok := g.adj[s[i]][s[j]]; ok {
				total += w
			}
		}
	}
	return total
}

// IsClique reports whether every pair in s is connected.
func (g *Graph) IsClique(s []trace.UserID) bool {
	for i := 0; i < len(s); i++ {
		for j := i + 1; j < len(s); j++ {
			if !g.HasEdge(s[i], s[j]) {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for u, nbrs := range g.adj {
		c.AddVertex(u)
		for v, w := range nbrs {
			c.adj[u][v] = w
		}
	}
	return c
}

// ConnectedComponents returns the vertex sets of the graph's connected
// components, each sorted, ordered by their smallest vertex.
func (g *Graph) ConnectedComponents() [][]trace.UserID {
	visited := make(map[trace.UserID]bool, len(g.adj))
	var comps [][]trace.UserID
	for _, start := range g.Vertices() {
		if visited[start] {
			continue
		}
		var comp []trace.UserID
		stack := []trace.UserID{start}
		visited[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !visited[v] {
					visited[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// ForEachEdge visits every undirected edge once, as (u, v, weight) with
// u < v. Visit order is unspecified; callers needing determinism must
// not depend on it.
func (g *Graph) ForEachEdge(fn func(u, v trace.UserID, w float64)) {
	for u, nbrs := range g.adj {
		for v, w := range nbrs {
			if u < v {
				fn(u, v, w)
			}
		}
	}
}

// InducedSubgraph returns a fresh graph over the given vertices with
// every edge of g whose endpoints both lie in the set. The result shares
// no storage with g.
func (g *Graph) InducedSubgraph(verts []trace.UserID) *Graph {
	in := make(map[trace.UserID]bool, len(verts))
	for _, u := range verts {
		in[u] = true
	}
	sub := New()
	for _, u := range verts {
		sub.AddVertex(u)
		for v, w := range g.adj[u] {
			if in[v] {
				sub.adj[u][v] = w
			}
		}
	}
	return sub
}

// String renders a compact summary for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("socialgraph.Graph{vertices: %d, edges: %d}",
		g.NumVertices(), g.NumEdges())
}

// FromThreshold builds the Algorithm 1 input graph: vertices are the given
// users and an edge connects every pair whose social index (per the index
// function) exceeds the threshold (the paper uses 0.3).
func FromThreshold(users []trace.UserID, threshold float64,
	index func(u, v trace.UserID) float64) *Graph {
	g := New()
	for _, u := range users {
		g.AddVertex(u)
	}
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			w := index(users[i], users[j])
			if w > threshold {
				g.AddEdge(users[i], users[j], w)
			}
		}
	}
	return g
}
