package socialgraph

import (
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func TestGraphBasics(t *testing.T) {
	g := New()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("new graph should be empty")
	}
	g.AddEdge("a", "b", 0.5)
	g.AddEdge("b", "c", 0.7)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("vertices = %d, edges = %d; want 3, 2",
			g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("edges should be undirected")
	}
	if g.HasEdge("a", "c") {
		t.Error("a-c should not exist")
	}
	w, ok := g.Weight("b", "c")
	if !ok || w != 0.7 {
		t.Errorf("Weight(b,c) = %v, %v", w, ok)
	}
	if _, ok := g.Weight("a", "c"); ok {
		t.Error("missing edge weight should report false")
	}
	if g.Degree("b") != 2 || g.Degree("a") != 1 {
		t.Error("degrees wrong")
	}
}

func TestGraphSelfLoopIgnored(t *testing.T) {
	g := New()
	g.AddEdge("a", "a", 1)
	if g.NumEdges() != 0 {
		t.Error("self-loop should be ignored")
	}
}

func TestGraphZeroValueUsable(t *testing.T) {
	var g Graph
	g.AddVertex("x")
	if g.NumVertices() != 1 {
		t.Error("zero-value graph should accept vertices")
	}
}

func TestGraphEdgeOverwrite(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 0.2)
	g.AddEdge("a", "b", 0.9)
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.NumEdges())
	}
	if w, _ := g.Weight("a", "b"); w != 0.9 {
		t.Errorf("weight = %v, want 0.9", w)
	}
}

func TestRemoveVertex(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 1)
	g.AddEdge("a", "c", 1)
	g.RemoveVertex("a")
	if g.NumVertices() != 2 || g.NumEdges() != 0 {
		t.Errorf("after removal: vertices = %d, edges = %d",
			g.NumVertices(), g.NumEdges())
	}
	if g.HasEdge("b", "a") {
		t.Error("dangling edge left behind")
	}
	// Removing an absent vertex is a no-op.
	g.RemoveVertex("ghost")
}

func TestVerticesAndNeighborsSorted(t *testing.T) {
	g := New()
	g.AddEdge("c", "a", 1)
	g.AddEdge("c", "b", 1)
	vs := g.Vertices()
	if len(vs) != 3 || vs[0] != "a" || vs[1] != "b" || vs[2] != "c" {
		t.Errorf("Vertices = %v", vs)
	}
	ns := g.Neighbors("c")
	if len(ns) != 2 || ns[0] != "a" || ns[1] != "b" {
		t.Errorf("Neighbors = %v", ns)
	}
}

func TestEdgeWeightSumAndIsClique(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 0.4)
	g.AddEdge("b", "c", 0.5)
	g.AddEdge("a", "c", 0.6)
	g.AddEdge("c", "d", 0.9)
	set := []trace.UserID{"a", "b", "c"}
	if !g.IsClique(set) {
		t.Error("a,b,c should be a clique")
	}
	if g.IsClique([]trace.UserID{"a", "b", "d"}) {
		t.Error("a,b,d should not be a clique")
	}
	if got := g.EdgeWeightSum(set); got != 1.5 {
		t.Errorf("EdgeWeightSum = %v, want 1.5", got)
	}
}

func TestClone(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 1)
	c := g.Clone()
	c.RemoveVertex("a")
	if !g.HasEdge("a", "b") {
		t.Error("mutating clone affected original")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 1)
	g.AddEdge("b", "c", 1)
	g.AddEdge("x", "y", 1)
	g.AddVertex("lonely")
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != "a" {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[1]) != 1 || comps[1][0] != "lonely" {
		t.Errorf("second component = %v", comps[1])
	}
	if len(comps[2]) != 2 || comps[2][0] != "x" {
		t.Errorf("third component = %v", comps[2])
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 0.5)
	g.AddEdge("b", "c", 0.6)
	g.AddEdge("c", "d", 0.7)
	g.AddVertex("e")
	sub := g.InducedSubgraph([]trace.UserID{"a", "b", "c", "e"})
	if sub.NumVertices() != 4 {
		t.Errorf("vertices = %d, want 4", sub.NumVertices())
	}
	if sub.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (a-b, b-c)", sub.NumEdges())
	}
	if w, ok := sub.Weight("b", "c"); !ok || w != 0.6 {
		t.Errorf("weight(b,c) = %v, %v", w, ok)
	}
	if sub.HasEdge("c", "d") {
		t.Error("edge to excluded vertex must not survive")
	}
	// The subgraph must not share storage with the original.
	sub.AddEdge("a", "e", 0.9)
	if g.HasEdge("a", "e") {
		t.Error("subgraph mutation leaked into the source graph")
	}
}

func TestSortCover(t *testing.T) {
	cover := [][]trace.UserID{
		{"x"},
		{"b", "c"},
		{"a", "d"},
		{"p", "q", "r"},
	}
	SortCover(cover)
	want := [][]trace.UserID{
		{"p", "q", "r"},
		{"a", "d"},
		{"b", "c"},
		{"x"},
	}
	for i := range want {
		if len(cover[i]) != len(want[i]) {
			t.Fatalf("cover[%d] = %v, want %v", i, cover[i], want[i])
		}
		for j := range want[i] {
			if cover[i][j] != want[i][j] {
				t.Fatalf("cover[%d] = %v, want %v", i, cover[i], want[i])
			}
		}
	}
}

func TestFromThreshold(t *testing.T) {
	users := []trace.UserID{"a", "b", "c"}
	idx := func(u, v trace.UserID) float64 {
		if (u == "a" && v == "b") || (u == "b" && v == "a") {
			return 0.8
		}
		return 0.1
	}
	g := FromThreshold(users, 0.3, idx)
	if g.NumVertices() != 3 {
		t.Errorf("vertices = %d, want 3 (isolated kept)", g.NumVertices())
	}
	if g.NumEdges() != 1 || !g.HasEdge("a", "b") {
		t.Errorf("edges wrong: %v", g)
	}
	// Exactly-threshold weights are excluded (strict >).
	gEq := FromThreshold(users, 0.1, func(u, v trace.UserID) float64 { return 0.1 })
	if gEq.NumEdges() != 0 {
		t.Error("threshold should be strict")
	}
}

func TestGraphString(t *testing.T) {
	g := New()
	g.AddEdge("a", "b", 1)
	if s := g.String(); s == "" {
		t.Error("String should be non-empty")
	}
}
