package society

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// benchSessions builds a day of sessions on a handful of APs.
func benchSessions(n int) []trace.Session {
	rng := rand.New(rand.NewSource(3))
	out := make([]trace.Session, 0, n)
	for i := 0; i < n; i++ {
		start := int64(rng.Intn(86400))
		out = append(out, trace.Session{
			User:         trace.UserID(fmt.Sprintf("u%03d", rng.Intn(200))),
			AP:           trace.APID(fmt.Sprintf("ap%d", rng.Intn(8))),
			ConnectAt:    start,
			DisconnectAt: start + int64(600+rng.Intn(7200)),
			Bytes:        int64(rng.Intn(1 << 20)),
		})
	}
	return out
}

func BenchmarkExtractCoLeavings(b *testing.B) {
	sessions := benchSessions(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractCoLeavings(sessions, 300)
	}
}

func BenchmarkExtractEncounters(b *testing.B) {
	sessions := benchSessions(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractEncounters(sessions, 600)
	}
}

func BenchmarkOnlineLearnerDisconnect(b *testing.B) {
	cfg := DefaultConfig()
	l := NewOnlineLearner(cfg)
	// 30 users resident on one AP.
	for i := 0; i < 30; i++ {
		l.Connect(trace.UserID(fmt.Sprintf("u%02d", i)), "ap", 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := trace.UserID(fmt.Sprintf("x%d", i))
		l.Connect(u, "ap", int64(i))
		if err := l.Disconnect(u, "ap", int64(i)+3600); err != nil {
			b.Fatal(err)
		}
	}
}
