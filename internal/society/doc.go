// Package society implements the sociality-learning pipeline of S³:
// extracting encounter and co-leaving events from session logs, estimating
// per-pair co-leaving probabilities P(L|E), building the type matrix
// T(type_i, type_j) from application-usage clusters, and composing the
// social relation index θ(u,v) = P(L|E) + α·T that drives AP selection.
//
// Two training modes coexist:
//
//   - Batch: Train consumes a recorded trace (the paper's back-end login
//     logs) and produces an immutable Model in one pass. Use it for
//     offline evaluation and for the periodic re-clustering that assigns
//     user types.
//
//   - Online: OnlineLearner ingests Connect/Disconnect events as they
//     happen and keeps the pair statistics current, for a controller that
//     learns continuously (the paper's future-work deployment mode).
//     Encounters are counted per presence — a user's stacked overlapping
//     sessions on one AP form a single continuous presence, so the same
//     co-presence period is never tallied twice — and co-leavings per
//     session end, matching the paper's event definitions. Model()
//     snapshots the statistics into a batch-equivalent Model.
//
// Turning online statistics into selector-ready state (θ-graph and
// clique cover) on every refresh is a full rebuild; the subpackage
// society/incremental avoids that by maintaining the θ-graph edge by
// edge and re-solving cliques only on dirty connected components. Prefer
// batch Train for reproducing the paper's figures; prefer OnlineLearner +
// incremental.Engine for live controllers where refresh cost must track
// churn, not population.
package society
