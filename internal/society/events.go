package society

import (
	"sort"

	"github.com/s3wlan/s3wlan/internal/trace"
)

// Pair is an unordered user pair in canonical (A < B) form.
type Pair struct {
	A, B trace.UserID
}

// MakePair canonicalizes the pair ordering.
func MakePair(u, v trace.UserID) Pair {
	if v < u {
		u, v = v, u
	}
	return Pair{A: u, B: v}
}

// Other returns the pair member that is not u (or "" if u is not in the
// pair).
func (p Pair) Other(u trace.UserID) trace.UserID {
	switch u {
	case p.A:
		return p.B
	case p.B:
		return p.A
	default:
		return ""
	}
}

// LeaveEvent is one user disconnecting from an AP.
type LeaveEvent struct {
	User trace.UserID
	AP   trace.APID
	At   int64
}

// CoLeaveEvent is a pair of users leaving the same AP within the
// extraction window.
type CoLeaveEvent struct {
	Pair Pair
	AP   trace.APID
	At   int64 // time of the earlier leaving
}

// ExtractLeavings lists every session end as a leaving event, sorted by
// (time, user).
func ExtractLeavings(sessions []trace.Session) []LeaveEvent {
	out := make([]LeaveEvent, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, LeaveEvent{User: s.User, AP: s.AP, At: s.DisconnectAt})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].User < out[j].User
	})
	return out
}

// ExtractCoLeavings finds all pairs of users who left the same AP within
// windowSeconds of each other. Each pair of leave events yields at most
// one co-leave event; a user leaving the same AP twice inside the window
// (reconnect churn) pairs independently per leaving. Self-pairs are
// excluded.
func ExtractCoLeavings(sessions []trace.Session, windowSeconds int64) []CoLeaveEvent {
	byAP := make(map[trace.APID][]LeaveEvent)
	for _, ev := range ExtractLeavings(sessions) {
		byAP[ev.AP] = append(byAP[ev.AP], ev)
	}
	aps := make([]trace.APID, 0, len(byAP))
	for ap := range byAP {
		aps = append(aps, ap)
	}
	sort.Slice(aps, func(i, j int) bool { return aps[i] < aps[j] })

	var out []CoLeaveEvent
	for _, ap := range aps {
		evs := byAP[ap] // already time-sorted
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				if evs[j].At-evs[i].At > windowSeconds {
					break
				}
				if evs[i].User == evs[j].User {
					continue
				}
				out = append(out, CoLeaveEvent{
					Pair: MakePair(evs[i].User, evs[j].User),
					AP:   ap,
					At:   evs[i].At,
				})
			}
		}
	}
	return out
}

// ExtractEncounters counts, per pair, how many times two users' sessions
// on the same AP overlapped for at least minOverlapSeconds — the paper's
// encountering event ("keep the connections with the same AP for a
// certain period of time").
func ExtractEncounters(sessions []trace.Session, minOverlapSeconds int64) map[Pair]int {
	byAP := make(map[trace.APID][]trace.Session)
	for _, s := range sessions {
		byAP[s.AP] = append(byAP[s.AP], s)
	}
	out := make(map[Pair]int)
	for _, group := range byAP {
		sort.Slice(group, func(i, j int) bool {
			return group[i].ConnectAt < group[j].ConnectAt
		})
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				// Sorted by connect time: once j starts after i ends,
				// no later session can overlap i either.
				if group[j].ConnectAt >= group[i].DisconnectAt {
					break
				}
				if group[i].User == group[j].User {
					continue
				}
				if group[i].Overlap(group[j]) >= minOverlapSeconds {
					out[MakePair(group[i].User, group[j].User)]++
				}
			}
		}
	}
	return out
}

// CoLeaveFractionPerUser returns, for each user, the fraction of their
// leaving events that participate in at least one co-leaving — the
// statistic behind the paper's Fig. 5. Users with no leavings are absent.
func CoLeaveFractionPerUser(sessions []trace.Session, windowSeconds int64) map[trace.UserID]float64 {
	leavings := ExtractLeavings(sessions)
	totals := make(map[trace.UserID]int)
	for _, ev := range leavings {
		totals[ev.User]++
	}

	// Mark each leave event that co-occurs with another user's leaving on
	// the same AP within the window.
	byAP := make(map[trace.APID][]LeaveEvent)
	for _, ev := range leavings {
		byAP[ev.AP] = append(byAP[ev.AP], ev)
	}
	coCount := make(map[trace.UserID]int)
	for _, evs := range byAP {
		for i := range evs {
			isCo := false
			for j := i - 1; j >= 0; j-- {
				if evs[i].At-evs[j].At > windowSeconds {
					break
				}
				if evs[j].User != evs[i].User {
					isCo = true
					break
				}
			}
			if !isCo {
				for j := i + 1; j < len(evs); j++ {
					if evs[j].At-evs[i].At > windowSeconds {
						break
					}
					if evs[j].User != evs[i].User {
						isCo = true
						break
					}
				}
			}
			if isCo {
				coCount[evs[i].User]++
			}
		}
	}

	out := make(map[trace.UserID]float64, len(totals))
	for u, total := range totals {
		out[u] = float64(coCount[u]) / float64(total)
	}
	return out
}
