package society

import (
	"math"
	"testing"

	"github.com/s3wlan/s3wlan/internal/trace"
)

func TestMakePair(t *testing.T) {
	p := MakePair("zeta", "alpha")
	if p.A != "alpha" || p.B != "zeta" {
		t.Errorf("MakePair = %+v, want canonical order", p)
	}
	if MakePair("a", "b") != MakePair("b", "a") {
		t.Error("pairs should be order-independent")
	}
}

func TestPairOther(t *testing.T) {
	p := MakePair("a", "b")
	if p.Other("a") != "b" || p.Other("b") != "a" {
		t.Error("Other wrong")
	}
	if p.Other("c") != "" {
		t.Error("Other for non-member should be empty")
	}
}

func TestExtractLeavingsSorted(t *testing.T) {
	sessions := []trace.Session{
		{User: "u2", AP: "a", ConnectAt: 0, DisconnectAt: 500},
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 300},
		{User: "u3", AP: "b", ConnectAt: 0, DisconnectAt: 300},
	}
	evs := ExtractLeavings(sessions)
	if len(evs) != 3 {
		t.Fatalf("leavings = %d, want 3", len(evs))
	}
	if evs[0].User != "u1" || evs[1].User != "u3" || evs[2].User != "u2" {
		t.Errorf("order wrong: %+v", evs)
	}
}

func TestExtractCoLeavings(t *testing.T) {
	sessions := []trace.Session{
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 1000},
		{User: "u2", AP: "a", ConnectAt: 0, DisconnectAt: 1100}, // 100s after u1
		{User: "u3", AP: "a", ConnectAt: 0, DisconnectAt: 5000}, // far away
		{User: "u4", AP: "b", ConnectAt: 0, DisconnectAt: 1050}, // other AP
	}
	evs := ExtractCoLeavings(sessions, 300)
	if len(evs) != 1 {
		t.Fatalf("co-leavings = %+v, want exactly 1", evs)
	}
	if evs[0].Pair != MakePair("u1", "u2") || evs[0].AP != "a" || evs[0].At != 1000 {
		t.Errorf("event = %+v", evs[0])
	}
	// A wider window captures u3 too (u2@1100..u3@5000 gap 3900 > 3600;
	// u1@1000..u3@5000 gap 4000): window 4000 pairs u2-u3 and u1-u3.
	evs = ExtractCoLeavings(sessions, 4000)
	if len(evs) != 3 {
		t.Errorf("wide-window co-leavings = %d, want 3", len(evs))
	}
}

func TestExtractCoLeavingsSameUserExcluded(t *testing.T) {
	sessions := []trace.Session{
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 100},
		{User: "u1", AP: "a", ConnectAt: 150, DisconnectAt: 200},
	}
	if evs := ExtractCoLeavings(sessions, 300); len(evs) != 0 {
		t.Errorf("self co-leaving should be excluded, got %+v", evs)
	}
}

func TestExtractEncounters(t *testing.T) {
	sessions := []trace.Session{
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 1000},
		{User: "u2", AP: "a", ConnectAt: 100, DisconnectAt: 900},  // 800s overlap
		{User: "u3", AP: "a", ConnectAt: 950, DisconnectAt: 2000}, // 50s with u1
		{User: "u4", AP: "b", ConnectAt: 0, DisconnectAt: 1000},   // other AP
	}
	enc := ExtractEncounters(sessions, 600)
	if len(enc) != 1 {
		t.Fatalf("encounters = %+v, want 1", enc)
	}
	if enc[MakePair("u1", "u2")] != 1 {
		t.Errorf("u1-u2 encounters = %d, want 1", enc[MakePair("u1", "u2")])
	}
	// Lower threshold admits the 50-second overlap.
	enc = ExtractEncounters(sessions, 30)
	if enc[MakePair("u1", "u3")] != 1 {
		t.Errorf("u1-u3 should encounter with low threshold: %+v", enc)
	}
}

func TestExtractEncountersRepeats(t *testing.T) {
	// Two separate overlapping session pairs count as two encounters.
	sessions := []trace.Session{
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 100},
		{User: "u2", AP: "a", ConnectAt: 0, DisconnectAt: 100},
		{User: "u1", AP: "a", ConnectAt: 500, DisconnectAt: 600},
		{User: "u2", AP: "a", ConnectAt: 500, DisconnectAt: 600},
	}
	enc := ExtractEncounters(sessions, 50)
	if enc[MakePair("u1", "u2")] != 2 {
		t.Errorf("encounters = %d, want 2", enc[MakePair("u1", "u2")])
	}
}

func TestExtractEncountersSameUserExcluded(t *testing.T) {
	sessions := []trace.Session{
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 100},
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 100},
	}
	if enc := ExtractEncounters(sessions, 10); len(enc) != 0 {
		t.Errorf("self encounters should be excluded: %+v", enc)
	}
}

func TestCoLeaveFractionPerUser(t *testing.T) {
	sessions := []trace.Session{
		// u1 leaves twice; once together with u2, once alone.
		{User: "u1", AP: "a", ConnectAt: 0, DisconnectAt: 1000},
		{User: "u2", AP: "a", ConnectAt: 0, DisconnectAt: 1010},
		{User: "u1", AP: "a", ConnectAt: 5000, DisconnectAt: 9000},
		// u3 always leaves alone.
		{User: "u3", AP: "b", ConnectAt: 0, DisconnectAt: 500},
	}
	fr := CoLeaveFractionPerUser(sessions, 300)
	if math.Abs(fr["u1"]-0.5) > 1e-9 {
		t.Errorf("u1 fraction = %v, want 0.5", fr["u1"])
	}
	if fr["u2"] != 1 {
		t.Errorf("u2 fraction = %v, want 1", fr["u2"])
	}
	if fr["u3"] != 0 {
		t.Errorf("u3 fraction = %v, want 0", fr["u3"])
	}
}
