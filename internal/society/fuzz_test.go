package society

import (
	"strings"
	"testing"
)

// FuzzReadModel hardens model deserialization: no panics, and accepted
// models must be usable (Index never panics).
func FuzzReadModel(f *testing.F) {
	f.Add(`{"version":1,"alpha":0.3,"pair_prob":{"a|b":0.8}}`)
	f.Add(`{"version":1}`)
	f.Add(`{"version":99}`)
	f.Add(`garbage`)
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadModel(strings.NewReader(input))
		if err != nil {
			return
		}
		_ = m.Index("a", "b")
		_ = m.K()
		_ = m.TopPairs(3)
	})
}
