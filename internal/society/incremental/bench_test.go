package incremental

import (
	"fmt"
	"testing"

	"github.com/s3wlan/s3wlan/internal/socialgraph"
	"github.com/s3wlan/s3wlan/internal/society"
	"github.com/s3wlan/s3wlan/internal/trace"
)

// The benchmarks quantify the engine's claim: refresh cost tracks the
// size of the churned region, not the population. A population of n
// users in tight 5-cliques sees one component churned per refresh; the
// incremental refresh should be flat in n while the batch rebuild
// (Model → FromThreshold → ExtractCliqueCover) pays O(n²) every time.

const benchGroup = 5

func benchConfig() Config {
	cfg := DefaultConfig()
	cfg.Society.MinEncounters = 1
	cfg.RefreshEvents = 0
	return cfg
}

func benchUser(i int) trace.UserID { return trace.UserID(fmt.Sprintf("u%05d", i)) }

// replayClusteredPopulation replays meet-and-co-leave cycles that weave
// n users into n/benchGroup disjoint cliques, into any event sink.
// Returns the next free timestamp.
func replayClusteredPopulation(n int, connect func(trace.UserID, trace.APID, int64),
	disconnect func(trace.UserID, trace.APID, int64) error) (int64, error) {
	ts := int64(0)
	for g := 0; g < n/benchGroup; g++ {
		ap := trace.APID(fmt.Sprintf("ap%d", g%64))
		base := g * benchGroup
		for i := 0; i < benchGroup; i++ {
			for j := i + 1; j < benchGroup; j++ {
				u, v := benchUser(base+i), benchUser(base+j)
				connect(u, ap, ts)
				connect(v, ap, ts)
				if err := disconnect(u, ap, ts+3600); err != nil {
					return ts, err
				}
				if err := disconnect(v, ap, ts+3650); err != nil {
					return ts, err
				}
				ts += 8000
			}
		}
	}
	return ts, nil
}

// churnOne perturbs a single pair in the first clique so exactly one
// component's θ moves: alternating co-leave and apart-leave cycles keep
// the edge present but shift its weight every time.
func churnOne(i int, ts int64, connect func(trace.UserID, trace.APID, int64),
	disconnect func(trace.UserID, trace.APID, int64) error) (int64, error) {
	u, v := benchUser(0), benchUser(1)
	connect(u, "churn", ts)
	connect(v, "churn", ts)
	if err := disconnect(u, "churn", ts+3600); err != nil {
		return ts, err
	}
	gap := int64(50) // inside the co-leave window: a co-leave
	if i%2 == 1 {
		gap = 1200 // outside: encounter only, diluting P(L|E)
	}
	if err := disconnect(v, "churn", ts+3600+gap); err != nil {
		return ts, err
	}
	return ts + 8000, nil
}

// BenchmarkIncrementalRefresh measures one engine refresh after
// single-component churn, across population sizes. The per-op cost
// should stay flat as n grows — the acceptance bar for the engine.
func BenchmarkIncrementalRefresh(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			e := New(benchConfig())
			ts, err := replayClusteredPopulation(n, e.Connect, e.Disconnect)
			if err != nil {
				b.Fatal(err)
			}
			e.Refresh() // solve the initial cover outside the timed loop
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ts, err = churnOne(i, ts, e.Connect, e.Disconnect)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				e.Refresh()
			}
			b.StopTimer()
			if got := e.Snapshot().Users; got != n {
				b.Fatalf("population drifted: %d users, want %d", got, n)
			}
		})
	}
}

// BenchmarkBatchRebuild is the baseline the engine replaces: a full
// Model snapshot, threshold graph and clique cover per refresh. One
// iteration at n users evaluates n²/2 θ values and re-runs iterated
// MaxClique over the whole population — at 10k users, minutes per
// iteration (each extraction rebuilds an O(V²) adjacency matrix), which
// is exactly the cost the incremental engine's dirty-component cache
// avoids. The benchmark therefore stops at 1000 users and is skipped
// under -short (CI's bench smoke); compare like for like with:
//
//	go test -bench 'Refresh|Rebuild' -benchtime 5x ./internal/society/incremental
func BenchmarkBatchRebuild(b *testing.B) {
	if testing.Short() {
		b.Skip("O(n²) per iteration; skipped under -short")
	}
	for _, n := range []int{1000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			cfg := benchConfig()
			l := society.NewOnlineLearner(cfg.Society)
			ts, err := replayClusteredPopulation(n, l.Connect, l.Disconnect)
			if err != nil {
				b.Fatal(err)
			}
			users := make([]trace.UserID, n)
			for i := range users {
				users[i] = benchUser(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ts, err = churnOne(i, ts, l.Connect, l.Disconnect)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				m := l.Model()
				g := socialgraph.FromThreshold(users, cfg.EdgeThreshold, m.Index)
				socialgraph.ExtractCliqueCover(g)
			}
		})
	}
}
